#!/usr/bin/env bash
# CI entry point: build and test under the default and the
# ASan+UBSan presets, then exercise the stats-diff regression gate
# end to end (a same-seed rerun must be drift-free, a perturbed run
# must be flagged with a non-zero exit).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

cmake --preset default
cmake --build --preset default -j"$jobs"
ctest --preset default -j"$jobs"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$jobs"
ctest --preset asan-ubsan -j"$jobs"

hccsim=build/tools/hccsim
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$hccsim" run --app gaussian --cc --stats-out "$tmp/a.json" >/dev/null
"$hccsim" run --app gaussian --cc --stats-out "$tmp/b.json" >/dev/null
"$hccsim" stats-diff "$tmp/a.json" "$tmp/b.json"

"$hccsim" run --app gaussian --cc --scale 2 \
    --stats-out "$tmp/c.json" >/dev/null
if "$hccsim" stats-diff "$tmp/a.json" "$tmp/c.json" >/dev/null; then
    echo "ERROR: stats-diff did not flag a perturbed run" >&2
    exit 1
fi

echo "ci: all checks passed"
