#!/usr/bin/env bash
# CI entry point: build and test under the default and the
# ASan+UBSan presets (the latter pinned to the portable ttable
# crypto so sanitizers cover the word-oriented hot path), smoke-run
# the crypto microbenchmarks from a Release build, then exercise the
# stats-diff regression gate end to end (a same-seed rerun must be
# drift-free, a perturbed run must be flagged with a non-zero exit).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

cmake --preset default
cmake --build --preset default -j"$jobs"
ctest --preset default -j"$jobs"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$jobs"
ctest --preset asan-ubsan -j"$jobs"

# ThreadSanitizer over the parallel engines: the sweep and fault
# campaign determinism tests race real workers over shared queues, so
# TSan gates the pool's synchronization and the per-cell isolation
# claim (each campaign cell owns its Context/Registry/Injector).
cmake --preset tsan
cmake --build --preset tsan -j"$jobs" \
    --target sweep_test fault_test critpath_test overlap_test \
        serve_test
build-tsan/tests/sweep_test
build-tsan/tests/fault_test
build-tsan/tests/critpath_test
build-tsan/tests/overlap_test
build-tsan/tests/serve_test

hccsim=build/tools/hccsim
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Crypto bench smoke: a short Release-build run proves the benchmark
# harness and its JSON export stay alive (full numbers are recorded
# manually in BENCH_crypto.json, not gated here).
cmake --preset release
cmake --build --preset release -j"$jobs" --target microbench_crypto
build-release/bench/microbench_crypto \
    --benchmark_filter='BM_GcmSeal' --benchmark_min_time=0.05 \
    --json "$tmp/bench.json" >/dev/null
test -s "$tmp/bench.json"

# Sim-throughput smoke: a short Release run of the large LLM figure
# cell proves the end-to-end simulation hot path and its JSON export
# stay alive (tracked numbers live in BENCH_sim.json, measured with
# interleaved A/B medians — shared CI hosts are too noisy to gate on
# absolute wall-clock, see docs/PERF.md).
cmake --build --preset release -j"$jobs" --target microbench_sim
build-release/bench/microbench_sim \
    --benchmark_filter='BM_LlmDecodeCell' --benchmark_min_time=0.05 \
    --benchmark_out="$tmp/bench_sim.json" \
    --benchmark_out_format=json >/dev/null
test -s "$tmp/bench_sim.json"

# Byte-identity gate for the hot-path optimizations: a fig13 cell
# (cnn --cc) must reproduce the committed baseline stats exactly —
# arena/interning/range-batching/downsampling must not shift a
# single counter or RNG draw.
"$hccsim" run --app cnn --cc --stats-out "$tmp/cnn_cc.json" >/dev/null
"$hccsim" stats-diff bench/baselines/cnn_cc_stats.json \
    "$tmp/cnn_cc.json"
cmp bench/baselines/cnn_cc_stats.json "$tmp/cnn_cc.json"

# Critical-path gate: the Fig. 14 LLM cell's stats (which embed the
# critical_path block, the critpath.* counters and so the bottleneck
# label) must reproduce the committed baseline exactly, and the
# human report must be byte-identical across repeated runs.
"$hccsim" critical --app llm --cc \
    --stats-out "$tmp/fig14.json" > "$tmp/crit1.txt"
"$hccsim" stats-diff bench/baselines/critpath_fig14.json \
    "$tmp/fig14.json"
cmp bench/baselines/critpath_fig14.json "$tmp/fig14.json"
"$hccsim" critical --app llm --cc > "$tmp/crit2.txt"
cmp "$tmp/crit1.txt" "$tmp/crit2.txt"

# The calibration subcommand must run end to end.
"$hccsim" crypto-calibrate --ms 1 >/dev/null

# Sweep smoke + the tentpole guarantee: the merged stats of the same
# grid must be byte-identical whether one worker or four ran it.
"$hccsim" sweep --apps gaussian,atax --jobs 1 \
    --out "$tmp/cells1.csv" --format csv \
    --stats-out "$tmp/sweep1.json" >/dev/null
"$hccsim" sweep --apps gaussian,atax --jobs 4 \
    --out "$tmp/cells4.csv" --format csv \
    --stats-out "$tmp/sweep4.json" >/dev/null
cmp "$tmp/cells1.csv" "$tmp/cells4.csv"
cmp "$tmp/sweep1.json" "$tmp/sweep4.json"
"$hccsim" stats-diff "$tmp/sweep1.json" "$tmp/sweep4.json" >/dev/null

"$hccsim" run --app gaussian --cc --stats-out "$tmp/a.json" >/dev/null
"$hccsim" run --app gaussian --cc --stats-out "$tmp/b.json" >/dev/null
"$hccsim" stats-diff "$tmp/a.json" "$tmp/b.json"

"$hccsim" run --app gaussian --cc --scale 2 \
    --stats-out "$tmp/c.json" >/dev/null
if "$hccsim" stats-diff "$tmp/a.json" "$tmp/c.json" >/dev/null; then
    echo "ERROR: stats-diff did not flag a perturbed run" >&2
    exit 1
fi

# Overlap ablation gate: the bigxfer grid across all three copy-
# pipeline tiers must merge byte-identically for any --jobs and
# reproduce the committed baseline exactly — the staged pipeline,
# the speculative IV engine and the per-stage counters may not shift
# a single draw (docs/OVERLAP.md).
"$hccsim" sweep --apps bigxfer --cc-modes both --overlap all \
    --jobs 1 --out "$tmp/overlap1.csv" --format csv \
    --stats-out "$tmp/overlap1.json" >/dev/null
"$hccsim" sweep --apps bigxfer --cc-modes both --overlap all \
    --jobs 4 --out "$tmp/overlap4.csv" --format csv \
    --stats-out "$tmp/overlap4.json" >/dev/null
cmp "$tmp/overlap1.csv" "$tmp/overlap4.csv"
cmp "$tmp/overlap1.json" "$tmp/overlap4.json"
"$hccsim" stats-diff bench/baselines/overlap_ablation_stats.json \
    "$tmp/overlap1.json"
cmp bench/baselines/overlap_ablation_stats.json "$tmp/overlap1.json"

# Fault-campaign smoke + determinism: the sites x rates x seeds grid
# must merge byte-identically for any --jobs, and an armed fault site
# must actually perturb the run (stats-diff flags it vs unfaulted).
"$hccsim" faults --app gaussian --rates 0.5 --seeds 42 --jobs 1 \
    --out "$tmp/faults1.csv" --format csv \
    --stats-out "$tmp/faults1.json" >/dev/null
"$hccsim" faults --app gaussian --rates 0.5 --seeds 42 --jobs 4 \
    --out "$tmp/faults4.csv" --format csv \
    --stats-out "$tmp/faults4.json" >/dev/null
cmp "$tmp/faults1.csv" "$tmp/faults4.csv"
cmp "$tmp/faults1.json" "$tmp/faults4.json"
"$hccsim" stats-diff bench/baselines/faults_gaussian_stats.json \
    "$tmp/faults1.json"
cmp bench/baselines/faults_gaussian_stats.json "$tmp/faults1.json"
"$hccsim" run --app gaussian --cc --faults channel.tag_mismatch=1 \
    --stats-out "$tmp/faulted.json" >/dev/null
if "$hccsim" stats-diff "$tmp/a.json" "$tmp/faulted.json" \
    >/dev/null; then
    echo "ERROR: injected faults did not change the run" >&2
    exit 1
fi

# Serving smoke + determinism + the saturation gate: the open-loop
# goodput curve must merge byte-identically for any --jobs and
# reproduce the committed baseline exactly — the committed stats
# embed the serve_curve, whose CC-vs-native goodput gap widens as
# offered load approaches saturation (the paper-shaped result this
# subcommand exists to produce).
"$hccsim" serve --requests 40 --loads 2,8 --prompt-len 128 \
    --gen-len 16 --max-batch 8 --kv-budget 64 --seed 42 --jobs 1 \
    --out "$tmp/serve1.csv" --format csv \
    --stats-out "$tmp/serve1.json" >/dev/null
"$hccsim" serve --requests 40 --loads 2,8 --prompt-len 128 \
    --gen-len 16 --max-batch 8 --kv-budget 64 --seed 42 --jobs 4 \
    --out "$tmp/serve4.csv" --format csv \
    --stats-out "$tmp/serve4.json" >/dev/null
cmp "$tmp/serve1.csv" "$tmp/serve4.csv"
cmp "$tmp/serve1.json" "$tmp/serve4.json"
"$hccsim" stats-diff bench/baselines/serve_llm_stats.json \
    "$tmp/serve1.json"
cmp bench/baselines/serve_llm_stats.json "$tmp/serve1.json"

# Fork-vs-cold gate: a snapshot-forked campaign must be byte-identical
# to the cold-split control (same late arming point, no shared state)
# for every output — per-cell CSV and merged stats — and across
# worker counts.  This is the hard bar of the snapshot engine: replay
# from a restored snapshot may not shift a single counter or draw.
"$hccsim" faults --app gaussian --rates 0.25,0.5 --seeds 41,42 \
    --fork-point auto --jobs 1 \
    --out "$tmp/fork.csv" --format csv \
    --stats-out "$tmp/fork.json" >/dev/null
"$hccsim" faults --app gaussian --rates 0.25,0.5 --seeds 41,42 \
    --fork-point auto --jobs 4 \
    --out "$tmp/fork4.csv" --format csv \
    --stats-out "$tmp/fork4.json" >/dev/null
"$hccsim" faults --app gaussian --rates 0.25,0.5 --seeds 41,42 \
    --fork-point auto --no-snapshot --jobs 4 \
    --out "$tmp/cold.csv" --format csv \
    --stats-out "$tmp/cold.json" >/dev/null
cmp "$tmp/fork.csv" "$tmp/fork4.csv"
cmp "$tmp/fork.json" "$tmp/fork4.json"
cmp "$tmp/fork.csv" "$tmp/cold.csv"
cmp "$tmp/fork.json" "$tmp/cold.json"
"$hccsim" stats-diff "$tmp/cold.json" "$tmp/fork.json"

# Snapshot subcommand smoke: capture a prefix snapshot to disk and
# inspect it back (the file must carry the app and section table).
"$hccsim" snapshot --app llm --cc --out "$tmp/llm.snap" >/dev/null
"$hccsim" snapshot --inspect "$tmp/llm.snap" | grep -q "app: *llm"
"$hccsim" snapshot --inspect "$tmp/llm.snap" | grep -q "trace"

# Campaign-throughput smoke: a short fork-point campaign must finish
# and its bench JSON must materialize (the tracked ≥15x fork-vs-cold
# numbers live in BENCH_campaign.json, measured on a quiet host with
# the Release binary — same policy as BENCH_sim.json).
release_hccsim=build-release/tools/hccsim
cmake --build --preset release -j"$jobs" --target hccsim
t_fork_us="$("$release_hccsim" faults --app llm --seeds 1,2,3 \
    --rates 0.1,0.5 --fork-point auto --jobs 1 \
    --out "$tmp/camp_fork.csv" --format csv \
    | sed -n 's/.*wall \([0-9.]*\) \(m\?s\)$/\1 \2/p')"
t_cold_us="$("$release_hccsim" faults --app llm --seeds 1,2,3 \
    --rates 0.1,0.5 --fork-point auto --no-snapshot --jobs 1 \
    --out "$tmp/camp_cold.csv" --format csv \
    | sed -n 's/.*wall \([0-9.]*\) \(m\?s\)$/\1 \2/p')"
cmp "$tmp/camp_fork.csv" "$tmp/camp_cold.csv"
printf '{\n  "fork_wall": "%s",\n  "cold_wall": "%s"\n}\n' \
    "$t_fork_us" "$t_cold_us" > "$tmp/bench_campaign.json"
test -s "$tmp/bench_campaign.json"

# Snapshot-tree gate: the nested 12168-cell overlap x site x rate x
# seed llm grid (the BENCH_campaign.json grid) must be byte-identical
# between fork mode and the cold-split control, stable across --jobs,
# and >= 15x faster.  Fork mode builds one cross-seed snapshot tree
# per overlap tier; cold re-simulates the full chain per cell, so
# this is the one long step of the script (~1 min of cold cells).
tree_rates="$(seq -s, 0.01 0.01 0.24)"
tree_seeds="$(seq -s, 1 24)"
# Best-of-2 for the fork arm: its ~3 s wall is where scheduler noise
# shows up; the ~55 s cold arm is long enough to be stable.
tree_fork_ms=""
for _ in 1 2; do
    ms="$("$release_hccsim" faults --app llm \
        --seeds "$tree_seeds" --rates "$tree_rates" --overlap all \
        --fork-point auto/0.99 --jobs 1 \
        --out "$tmp/tree_fork.csv" --format csv \
        --stats-out "$tmp/tree_fork.json" \
        | sed -n 's/.*wall \([0-9.]*\) ms$/\1/p')"
    tree_fork_ms="$(awk -v a="$tree_fork_ms" -v b="$ms" \
        'BEGIN { print (a == "" || b + 0 < a + 0) ? b : a }')"
done
"$release_hccsim" faults --app llm \
    --seeds "$tree_seeds" --rates "$tree_rates" --overlap all \
    --fork-point auto/0.99 --jobs 4 \
    --out "$tmp/tree_fork4.csv" --format csv \
    --stats-out "$tmp/tree_fork4.json" >/dev/null
tree_cold_ms="$("$release_hccsim" faults --app llm \
    --seeds "$tree_seeds" --rates "$tree_rates" --overlap all \
    --fork-point auto/0.99 --no-snapshot --jobs 1 \
    --out "$tmp/tree_cold.csv" --format csv \
    --stats-out "$tmp/tree_cold.json" \
    | sed -n 's/.*wall \([0-9.]*\) ms$/\1/p')"
cmp "$tmp/tree_fork.csv" "$tmp/tree_fork4.csv"
cmp "$tmp/tree_fork.json" "$tmp/tree_fork4.json"
cmp "$tmp/tree_fork.csv" "$tmp/tree_cold.csv"
cmp "$tmp/tree_fork.json" "$tmp/tree_cold.json"
"$release_hccsim" stats-diff "$tmp/tree_cold.json" \
    "$tmp/tree_fork.json"
awk -v c="$tree_cold_ms" -v f="$tree_fork_ms" 'BEGIN {
    if (!(c > 0) || !(f > 0)) {
        print "ci: could not parse tree campaign wall times";
        exit 1;
    }
    s = c / f;
    printf "ci: snapshot-tree speedup %.2fx (cold %.1f ms / fork %.1f ms)\n", s, c, f;
    exit (s >= 15.0 ? 0 : 1);
}'

echo "ci: all checks passed"
