/**
 * @file
 * Tests for the snapshot/fork layer: the archive primitives, each
 * subsystem's snapState round-trip (RNG stream position, trace
 * intern table, stats registry erase-after-capture), the EventArena
 * slab-trim hook, the snapshot file format, and the headline
 * property — a forked cell is indistinguishable from a cold run —
 * exercised over every registered workload under base, CC and UVM.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "fault/campaign.hpp"
#include "obs/registry.hpp"
#include "obs/stats_io.hpp"
#include "sim/event_queue.hpp"
#include "snap/archive.hpp"
#include "snap/fork.hpp"
#include "snap/snap.hpp"
#include "sweep/sweep.hpp"
#include "trace/critpath.hpp"
#include "trace/tracer.hpp"
#include "workloads/workload.hpp"

namespace hcc::snap {
namespace {

// -------------------------------------------------- fork-point spec

TEST(ForkPoint, ParsesTheThreeSpellings)
{
    auto none = parseForkPoint("none");
    ASSERT_TRUE(none.ok());
    EXPECT_EQ(none->mode, ForkPoint::Mode::None);

    auto aut = parseForkPoint("auto");
    ASSERT_TRUE(aut.ok());
    EXPECT_EQ(aut->mode, ForkPoint::Mode::Auto);

    auto frac = parseForkPoint("0.25");
    ASSERT_TRUE(frac.ok());
    EXPECT_EQ(frac->mode, ForkPoint::Mode::Fraction);
    EXPECT_DOUBLE_EQ(frac->fraction, 0.25);
    EXPECT_EQ(frac->str(), "0.25");
}

TEST(ForkPoint, RejectsGarbageAndOutOfRange)
{
    EXPECT_FALSE(parseForkPoint("").ok());
    EXPECT_FALSE(parseForkPoint("half").ok());
    EXPECT_FALSE(parseForkPoint("0.5x").ok());
    EXPECT_FALSE(parseForkPoint("-0.1").ok());
    EXPECT_FALSE(parseForkPoint("1.5").ok());
}

TEST(ForkPoint, NoneNeverResolves)
{
    const auto &w = workloads::WorkloadRegistry::instance().get("2mm");
    ForkPoint fp{ForkPoint::Mode::None, 0.0};
    EXPECT_LT(fp.resolve(w), 0.0);
    EXPECT_TRUE(fp.resolvePath(w).empty());
}

TEST(ForkPoint, ParsesChainedPaths)
{
    auto p = parseForkPoint("auto/0.95");
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->mode, ForkPoint::Mode::Auto);
    EXPECT_EQ(p->chain, (std::vector<double>{0.95}));
    EXPECT_EQ(p->str(), "auto/0.95");

    auto q = parseForkPoint("0.5/0.8/0.9");
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->mode, ForkPoint::Mode::Fraction);
    EXPECT_DOUBLE_EQ(q->fraction, 0.5);
    EXPECT_EQ(q->chain, (std::vector<double>{0.8, 0.9}));
    EXPECT_EQ(q->str(), "0.5/0.8/0.9");
}

TEST(ForkPoint, RejectsBadPathsWithoutClamping)
{
    // Every bad path is a hard parse error — never silently clamped
    // or reordered into something runnable.
    EXPECT_FALSE(parseForkPoint("none/0.5").ok());
    EXPECT_FALSE(parseForkPoint("0.5/").ok());
    EXPECT_FALSE(parseForkPoint("0.5/x").ok());
    EXPECT_FALSE(parseForkPoint("0.5/1.5").ok());
    EXPECT_FALSE(parseForkPoint("0.5/0.5").ok());
    const auto decreasing = parseForkPoint("0.5/0.4");
    ASSERT_FALSE(decreasing.ok());
    EXPECT_NE(decreasing.status().message().find("strictly"),
              std::string::npos);
    const auto chained_none = parseForkPoint("none/0.5");
    EXPECT_NE(chained_none.status().message().find("cannot chain"),
              std::string::npos);
}

TEST(ForkPoint, ResolvePathOrdersAutoCutPerWorkload)
{
    const auto &w = workloads::WorkloadRegistry::instance().get("2mm");
    ForkPoint fp{ForkPoint::Mode::Auto, 0.0, {0.95}};
    const auto cuts = fp.resolvePath(w);
    ASSERT_EQ(cuts.size(), 2u);
    EXPECT_DOUBLE_EQ(cuts[0], w.defaultForkPoint());
    EXPECT_DOUBLE_EQ(cuts[1], 0.95);

    // An auto head can only be ordered against the chain once the
    // workload is known; a non-increasing resolved path is fatal.
    ForkPoint bad{ForkPoint::Mode::Auto, 0.0, {0.1}};
    EXPECT_THROW(bad.resolvePath(w), FatalError);
}

// ------------------------------------------------ RNG stream position

TEST(SnapRng, RestoreReplaysTheExactDrawSequence)
{
    Rng rng(1234, 7);
    for (int i = 0; i < 17; ++i)
        (void)rng.uniform();

    Saver saver;
    rng.snapState(saver);
    const auto bytes = saver.take();

    std::vector<double> expected;
    for (int i = 0; i < 32; ++i)
        expected.push_back(rng.uniform());

    Loader loader(bytes);
    rng.snapState(loader);
    EXPECT_TRUE(loader.exhausted());
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rng.uniform(), expected[i]) << "draw " << i;
}

TEST(SnapRng, RestoreCarriesTheBoxMullerSpare)
{
    Rng rng(99);
    (void)rng.normal(); // generates a pair, caches the spare

    Saver saver;
    rng.snapState(saver);
    const auto bytes = saver.take();

    const double expected_spare = rng.normal();
    const double expected_next = rng.normal();

    Loader loader(bytes);
    rng.snapState(loader);
    EXPECT_EQ(rng.normal(), expected_spare);
    EXPECT_EQ(rng.normal(), expected_next);
}

// -------------------------------------------------- trace intern table

TEST(SnapTracer, RestoreTruncatesInternTableAndKeepsOldIds)
{
    trace::Tracer tracer;
    const auto a = tracer.intern("kernel_a");
    const auto b = tracer.intern("kernel_b");

    Saver saver;
    tracer.snapState(saver);
    const auto bytes = saver.take();

    const auto c = tracer.intern("kernel_c");
    EXPECT_NE(c, a);
    EXPECT_NE(c, b);

    Loader loader(bytes);
    tracer.snapState(loader);

    // Pre-capture ids still resolve; the post-capture label is gone
    // and a deterministic replay re-interning the same string gets
    // the same id it got the first time.
    EXPECT_EQ(tracer.labelName(a), "kernel_a");
    EXPECT_EQ(tracer.labelName(b), "kernel_b");
    EXPECT_EQ(tracer.intern("kernel_c"), c);
    EXPECT_EQ(tracer.intern("kernel_a"), a);
}

TEST(SnapTracer, RestoreRewindsEventsIntoAFreshReplay)
{
    trace::Tracer tracer;
    trace::TraceEvent ev;
    ev.start = 10;
    ev.end = 20;
    tracer.record(ev, "warmup");

    Saver saver;
    tracer.snapState(saver);
    const auto bytes = saver.take();

    for (int i = 0; i < 100; ++i) {
        ev.start = 100 + i;
        ev.end = 101 + i;
        tracer.record(ev, "suffix");
    }
    EXPECT_EQ(tracer.size(), 101u);

    Loader loader(bytes);
    tracer.snapState(loader);
    EXPECT_EQ(tracer.size(), 1u);
    EXPECT_EQ(tracer.lastEnd(), 20);
}

// --------------------------------------------------- stats registry

TEST(SnapRegistry, RestorePutsValuesBackAndKeepsHandlesValid)
{
    obs::Registry reg;
    auto &ctr = reg.counter("a.count");
    auto &gauge = reg.gauge("b.level");
    ctr.bump(5);
    gauge.set(3, 0);

    Saver saver;
    reg.snapState(saver);
    const auto bytes = saver.take();

    ctr.bump(100);
    gauge.set(42, 1);

    Loader loader(bytes);
    reg.snapState(loader);
    EXPECT_EQ(ctr.value(), 5);
    EXPECT_EQ(gauge.value(), 3);

    // The pre-capture handle still points at the live entry.
    ctr.bump(1);
    EXPECT_EQ(reg.counter("a.count").value(), 6);
}

TEST(SnapRegistry, RestoreErasesEntriesCreatedAfterCapture)
{
    obs::Registry reg;
    reg.counter("early").bump(1);

    Saver saver;
    reg.snapState(saver);
    const auto bytes = saver.take();

    reg.counter("fault.late.injected").bump(9);
    EXPECT_TRUE(reg.contains("fault.late.injected"));

    Loader loader(bytes);
    reg.snapState(loader);
    EXPECT_FALSE(reg.contains("fault.late.injected"));
    EXPECT_TRUE(reg.contains("early"));
    EXPECT_EQ(reg.size(), 1u);
}

TEST(SnapRegistry, CloneIsADeepValueCopy)
{
    obs::Registry reg;
    reg.counter("x").bump(7);
    auto clone = reg.clone();
    reg.counter("x").bump(100);
    EXPECT_EQ(clone->counter("x").value(), 7);
    EXPECT_EQ(reg.counter("x").value(), 107);
}

// ------------------------------------------- event arena slab trim

TEST(EventArena, ReleaseFreeSlabsTrimsToTheActiveSlab)
{
    sim::EventQueue q;
    // Big non-inline captures force arena slab growth.
    struct Fat
    {
        char pad[256];
        void operator()(SimTime) const {}
    };
    for (int i = 0; i < 2000; ++i)
        q.schedule(i, Fat{});
    const std::size_t peak = q.arenaSlabs();
    EXPECT_GT(peak, 1u);

    q.runAll();
    q.reset();
    EXPECT_EQ(q.arenaLiveBlocks(), 0u);

    // reset() keeps the peak watermark; the trim hook releases it.
    EXPECT_EQ(q.arenaSlabs(), peak);
    q.releaseFreeSlabs();
    EXPECT_EQ(q.arenaSlabs(), 1u);

    // The queue still works after the trim.
    int ran = 0;
    q.schedule(5, [&ran](SimTime) { ++ran; });
    q.runAll();
    EXPECT_EQ(ran, 1);
}

/** Regression: a snapshot capture trims the arena automatically, so
 *  the many Contexts a snapshot-tree campaign keeps alive hold their
 *  working set, not their historical peak. */
TEST(EventArena, SnapshotCaptureReleasesFreeSlabs)
{
    sim::EventQueue q;
    struct Fat
    {
        char pad[256];
        void operator()(SimTime) const {}
    };
    for (int i = 0; i < 2000; ++i)
        q.schedule(i, Fat{});
    q.runAll();
    q.reset();
    EXPECT_GT(q.arenaSlabs(), 1u) << "reset keeps the watermark";

    Saver saver;
    q.snapState(saver);
    EXPECT_EQ(q.arenaSlabs(), 1u)
        << "capture must invoke releaseFreeSlabs()";
}

// ------------------------------------------------ snapshot file I/O

TEST(SnapshotFile, WriteReadRoundTrip)
{
    Snapshot snap;
    snap.meta.cc = true;
    snap.meta.uvm = false;
    snap.meta.seed = 77;
    snap.meta.sim_time = 123456;
    snap.meta.app = "gaussian";
    snap.meta.fork_point = "auto";
    snap.add("runtime") = {1, 2, 3};
    snap.add("trace") = {9, 8, 7, 6};

    const std::string path =
        testing::TempDir() + "snap_roundtrip.hccsnap";
    ASSERT_TRUE(writeSnapshotFile(path, snap).ok());

    auto loaded = readSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(loaded->meta.cc, true);
    EXPECT_EQ(loaded->meta.seed, 77u);
    EXPECT_EQ(loaded->meta.sim_time, 123456);
    EXPECT_EQ(loaded->meta.app, "gaussian");
    EXPECT_EQ(loaded->meta.fork_point, "auto");
    ASSERT_EQ(loaded->sections.size(), 2u);
    EXPECT_EQ(loaded->sections[0].name, "runtime");
    EXPECT_EQ(loaded->sections[0].bytes, snap.sections[0].bytes);
    EXPECT_EQ(loaded->sections[1].bytes, snap.sections[1].bytes);

    std::ostringstream os;
    printSnapshot(os, *loaded);
    EXPECT_NE(os.str().find("gaussian"), std::string::npos);
    EXPECT_NE(os.str().find("trace"), std::string::npos);

    std::remove(path.c_str());
}

TEST(SnapshotFile, RejectsAForeignFile)
{
    const std::string path = testing::TempDir() + "not_a_snapshot";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("definitely not a snapshot", f);
        std::fclose(f);
    }
    EXPECT_FALSE(readSnapshotFile(path).ok());
    std::remove(path.c_str());
}

// ------------------------------------- the fork/replay property

/** Deterministic fingerprint of one run: the full stats dump (host.*
 *  excluded) plus the headline metric and critical-path facts.
 *  Split-mode results are light (no retained trace), so the metric
 *  accumulators and the critpath counters carry the comparison. */
std::string
fingerprint(const workloads::WorkloadResult &r)
{
    std::ostringstream os;
    os << "end_to_end=" << r.end_to_end
       << " launches=" << r.metrics.launches
       << " kernels=" << r.metrics.kernels
       << " klo_sum=" << r.metrics.sumKlo()
       << " kqt_sum=" << r.metrics.sumKqt()
       << " copy=" << r.metrics.copyTotal()
       << " sync=" << r.metrics.sync_time
       << " fault=" << r.metrics.fault_time
       << " on_path_ps=" << r.critical.on_path_ps
       << " on_path_events=" << r.critical.on_path_events
       << " bottleneck="
       << trace::bottleneckName(r.critical.bottleneck) << '\n';
    os << obs::statsJson(*r.stats, /*include_host=*/false);
    return os.str();
}

/**
 * The hard bar of the fork engine: a cell replayed from a snapshot
 * is indistinguishable from the same cell simulated from a cold
 * start.  Runs every registered workload under base and CC (and UVM
 * where supported), forks two identical cells from one prefix, and
 * requires both to match the cold-split control exactly.
 */
TEST(ForkReplay, ForkedCellsMatchColdStartForEveryWorkload)
{
    const auto all = workloads::WorkloadRegistry::instance().all();
    ASSERT_FALSE(all.empty());
    std::size_t forked_workloads = 0;

    for (const auto *w : all) {
        if (!w->forkable())
            continue;
        ++forked_workloads;
        for (const bool cc : {false, true}) {
            for (const bool uvm : {false, true}) {
                if (uvm && !w->supportsUvm())
                    continue;

                ForkGroupSpec group;
                group.app = w->name();
                group.sys.cc = cc;
                group.sys.seed = 42;
                group.params.uvm = uvm;
                group.params.seed = 42;
                group.cells.resize(2); // fault-free duplicate cells

                const ForkPoint auto_fp{ForkPoint::Mode::Auto, 0.0};
                const auto cold = runForkGroup(group, auto_fp,
                                               /*no_snapshot=*/true);
                const auto fork = runForkGroup(group, auto_fp,
                                               /*no_snapshot=*/false);

                ASSERT_EQ(cold.cells.size(), 2u);
                ASSERT_EQ(fork.cells.size(), 2u);
                EXPECT_EQ(cold.snapshot_hits, 0u);
                EXPECT_EQ(fork.snapshot_hits, 2u);

                const std::string tag = w->name()
                    + (cc ? "/cc" : "/base") + (uvm ? "/uvm" : "");
                ASSERT_TRUE(cold.cells[0].ok)
                    << tag << ": " << cold.cells[0].error;
                const std::string want =
                    fingerprint(cold.cells[0].result);
                for (const auto &cell : fork.cells) {
                    ASSERT_TRUE(cell.ok)
                        << tag << ": " << cell.error;
                    EXPECT_TRUE(cell.from_snapshot) << tag;
                    EXPECT_EQ(fingerprint(cell.result), want) << tag;
                }
            }
        }
    }
    // The suite must actually exercise the property.
    EXPECT_GT(forked_workloads, 0u);
}

/** Fractional fork points place the cut elsewhere but must preserve
 *  the identical-sequence contract. */
TEST(ForkReplay, FractionCutsProduceTheSameRun)
{
    ForkGroupSpec group;
    group.app = "gaussian";
    group.sys.cc = true;
    group.cells.resize(2);

    const auto base = runForkGroup(
        group, ForkPoint{ForkPoint::Mode::Auto, 0.0}, true);
    ASSERT_TRUE(base.cells[0].ok) << base.cells[0].error;
    const std::string want = fingerprint(base.cells[0].result);

    for (const double f : {0.0, 0.3, 1.0}) {
        const auto got = runForkGroup(
            group, ForkPoint{ForkPoint::Mode::Fraction, f}, false);
        ASSERT_TRUE(got.cells[0].ok)
            << "f=" << f << ": " << got.cells[0].error;
        EXPECT_EQ(fingerprint(got.cells[0].result), want)
            << "f=" << f;
    }
}

TEST(ForkReplay, FaultedSuffixDoesNotLeakIntoTheNextCell)
{
    ForkGroupSpec group;
    group.app = "gaussian";
    group.sys.cc = true;
    group.cells.resize(3);
    // Middle cell injects heavily; its neighbours run fault-free and
    // must be identical to each other.
    group.cells[1].faults.set(fault::Site::PcieReplay, 0.9);

    const auto out = runForkGroup(
        group, ForkPoint{ForkPoint::Mode::Auto, 0.0}, false);
    ASSERT_TRUE(out.cells[0].ok);
    ASSERT_TRUE(out.cells[1].ok);
    ASSERT_TRUE(out.cells[2].ok);
    EXPECT_EQ(fingerprint(out.cells[0].result),
              fingerprint(out.cells[2].result));
    EXPECT_NE(fingerprint(out.cells[0].result),
              fingerprint(out.cells[1].result));
}

// ---------------------------------------- cross-seed prefix sharing

/** The reseed-at-fork contract, stated on the Context itself: after
 *  reseedAtFork(s) every seed-derived stream sits exactly where a
 *  Context freshly constructed with s would start, so the two
 *  snapshots agree byte for byte, section by section. */
TEST(ReseedAtFork, MatchesFreshConstructionByteForByte)
{
    rt::SystemConfig fresh_sys;
    fresh_sys.seed = 111;
    rt::Context fresh(fresh_sys);
    Snapshot want;
    fresh.captureSnapshot(want);

    rt::SystemConfig other_sys;
    other_sys.seed = 222;
    rt::Context reseeded(other_sys);
    reseeded.reseedAtFork(111);
    Snapshot got;
    reseeded.captureSnapshot(got);

    ASSERT_EQ(got.sections.size(), want.sections.size());
    for (std::size_t i = 0; i < want.sections.size(); ++i) {
        EXPECT_EQ(got.sections[i].name, want.sections[i].name);
        EXPECT_TRUE(got.sections[i].bytes == want.sections[i].bytes)
            << "section " << want.sections[i].name << " diverged";
    }
}

TEST(ReseedAtFork, DistinctSeedsStillDiverge)
{
    rt::SystemConfig sys;
    sys.seed = 111;
    rt::Context a(sys), b(sys);
    a.reseedAtFork(5);
    b.reseedAtFork(6);
    Snapshot sa, sb;
    a.captureSnapshot(sa);
    b.captureSnapshot(sb);
    ASSERT_EQ(sa.sections.size(), sb.sections.size());
    bool all_equal = true;
    for (std::size_t i = 0; i < sa.sections.size(); ++i)
        all_equal = all_equal
            && sa.sections[i].bytes == sb.sections[i].bytes;
    EXPECT_FALSE(all_equal)
        << "reseeding to different seeds must derive different streams";
}

/** Regression: armFaults() mutates the Context's config, and
 *  reseedAtFork() re-arms the injector from it.  A restore must
 *  rewind that mutable config slice too, or a reseed after the
 *  restore re-arms the previously armed rates into state that a
 *  fresh construction would never hold. */
TEST(ReseedAtFork, RestoreRewindsArmedFaultConfig)
{
    rt::SystemConfig sys;
    sys.seed = 111;
    rt::Context fresh(sys);
    fresh.reseedAtFork(77);
    Snapshot want;
    fresh.captureSnapshot(want);

    rt::Context ctx(sys);
    Snapshot unarmed;
    ctx.captureSnapshot(unarmed);
    fault::FaultConfig armed;
    armed.set(fault::Site::SpecMiss, 0.6);
    ctx.armFaults(armed);
    ctx.restoreSnapshot(unarmed);
    ctx.reseedAtFork(77);
    Snapshot got;
    ctx.captureSnapshot(got);

    ASSERT_EQ(got.sections.size(), want.sections.size());
    for (std::size_t i = 0; i < want.sections.size(); ++i) {
        EXPECT_EQ(got.sections[i].name, want.sections[i].name);
        EXPECT_TRUE(got.sections[i].bytes == want.sections[i].bytes)
            << "section " << want.sections[i].name
            << " kept the stale armed rates across the restore";
    }
}

TEST(IdentitySeed, IgnoresSeedsButNotIdentity)
{
    ForkGroupSpec g;
    g.app = "gaussian";
    g.sys.cc = true;
    g.sys.seed = 1;
    g.params.seed = 1;
    const auto a = identitySeed(g.app, g.sys, g.params);
    g.sys.seed = 99;
    g.params.seed = 99;
    EXPECT_EQ(identitySeed(g.app, g.sys, g.params), a)
        << "per-cell seeds must not reach the identity hash";
    g.params.scale = 2.0;
    EXPECT_NE(identitySeed(g.app, g.sys, g.params), a);
    g.params.scale = 1.0;
    g.app = "atax";
    EXPECT_NE(identitySeed(g.app, g.sys, g.params), a);
}

/** Cross-seed sharing: one identity-seeded prefix serves cells with
 *  different Reseed arms, and the cold control replaying the same
 *  derivation matches byte for byte. */
TEST(ForkReplay, CrossSeedGroupMatchesColdControl)
{
    ForkGroupSpec group;
    group.app = "gaussian";
    group.sys.cc = true;
    const std::uint64_t ident =
        identitySeed(group.app, group.sys, group.params);
    group.sys.seed = ident;
    group.params.seed = ident;
    group.cells.resize(3);
    group.cells[0].arms = {ForkArm{ForkArm::Kind::Reseed, 7, {}}};
    group.cells[1].arms = {ForkArm{ForkArm::Kind::Reseed, 9, {}}};
    group.cells[2].arms = {ForkArm{ForkArm::Kind::Reseed, 7, {}}};

    const ForkPoint fp{ForkPoint::Mode::Auto, 0.0};
    const auto cold = runForkGroup(group, fp, /*no_snapshot=*/true);
    const auto fork = runForkGroup(group, fp, /*no_snapshot=*/false);
    ASSERT_EQ(cold.cells.size(), 3u);
    ASSERT_EQ(fork.cells.size(), 3u);
    EXPECT_EQ(fork.snapshot_hits, 3u)
        << "distinct seeds share one prefix now";
    EXPECT_GT(fork.peak_resident_bytes, 0u);
    EXPECT_EQ(cold.peak_resident_bytes, 0u);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(cold.cells[i].ok) << cold.cells[i].error;
        ASSERT_TRUE(fork.cells[i].ok) << fork.cells[i].error;
        EXPECT_EQ(fingerprint(fork.cells[i].result),
                  fingerprint(cold.cells[i].result))
            << "cell " << i;
    }
    // Equal seeds agree; different seeds are a genuinely different
    // run — the reseed must not collapse the seed axis.
    EXPECT_EQ(fingerprint(fork.cells[0].result),
              fingerprint(fork.cells[2].result));
    EXPECT_NE(fingerprint(fork.cells[0].result),
              fingerprint(fork.cells[1].result));
}

/** Regression: a faulted leaf runs before the next seed node of the
 *  tree materializes, on the one shared Context.  The later node's
 *  segment must not inherit the leaf's armed rates through the
 *  reseed (speculative tier: a stale spec.miss rate injects misses
 *  into the shared segment and shifts every cell of that seed). */
TEST(ForkReplay, FaultedLeafDoesNotLeakIntoSiblingSeedNode)
{
    ForkGroupSpec group;
    group.app = "llm";
    group.sys.cc = true;
    group.sys.channel.overlap = tee::OverlapMode::Speculative;
    const std::uint64_t ident =
        identitySeed(group.app, group.sys, group.params);
    group.sys.seed = ident;
    group.params.seed = ident;
    group.cells.resize(3);
    // Seed 12's leaf arms spec.miss; seed 13's node materializes
    // right after it on the same Context, and its long segment
    // seals enough chunks that a leaked rate is certain to inject.
    group.cells[0].arms = {ForkArm{ForkArm::Kind::Reseed, 12, {}}};
    group.cells[0].faults.set(fault::Site::SpecMiss, 0.24);
    group.cells[1].arms = {ForkArm{ForkArm::Kind::Reseed, 13, {}}};
    group.cells[2].arms = {ForkArm{ForkArm::Kind::Reseed, 13, {}}};
    group.cells[2].faults.set(fault::Site::PcieReplay, 0.5);

    const ForkPoint chained{ForkPoint::Mode::Auto, 0.0, {0.99}};
    const auto cold = runForkGroup(group, chained, true);
    const auto fork = runForkGroup(group, chained, false);
    ASSERT_EQ(fork.cells.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(cold.cells[i].ok) << cold.cells[i].error;
        ASSERT_TRUE(fork.cells[i].ok) << fork.cells[i].error;
        EXPECT_EQ(fingerprint(fork.cells[i].result),
                  fingerprint(cold.cells[i].result))
            << "cell " << i;
    }
}

/** Satellite property: forked-from-forked equals cold.  Chained fork
 *  points build a two-level snapshot tree (prefix -> per-seed node
 *  -> leaf); every forkable workload under base and CC (and UVM
 *  where supported) and every overlap tier must replay from it
 *  byte-identically to the cold-split control. */
TEST(ForkReplay, ChainedForksMatchColdForEveryWorkloadAndTier)
{
    const auto all = workloads::WorkloadRegistry::instance().all();
    ASSERT_FALSE(all.empty());
    const ForkPoint chained{ForkPoint::Mode::Auto, 0.0, {0.95}};
    std::size_t exercised = 0;

    for (const auto *w : all) {
        if (!w->forkable())
            continue;
        for (const tee::OverlapMode tier :
             {tee::OverlapMode::None, tee::OverlapMode::DoubleBuffer,
              tee::OverlapMode::Speculative}) {
            for (const bool uvm : {false, true}) {
                if (uvm && !w->supportsUvm())
                    continue;
                ForkGroupSpec group;
                group.app = w->name();
                group.sys.cc = true;
                group.sys.channel.overlap = tier;
                group.params.uvm = uvm;
                const std::uint64_t ident = identitySeed(
                    group.app, group.sys, group.params);
                group.sys.seed = ident;
                group.params.seed = ident;
                group.cells.resize(2);
                group.cells[0].arms = {
                    ForkArm{ForkArm::Kind::Reseed, 5, {}}};
                group.cells[1].arms = {
                    ForkArm{ForkArm::Kind::Reseed, 6, {}}};

                const auto cold =
                    runForkGroup(group, chained, true);
                const auto fork =
                    runForkGroup(group, chained, false);
                const std::string tag = w->name() + "/"
                    + tee::overlapModeName(tier)
                    + (uvm ? "/uvm" : "");
                ASSERT_EQ(fork.cells.size(), 2u) << tag;
                EXPECT_EQ(fork.snapshot_hits, 2u) << tag;
                for (std::size_t i = 0; i < 2; ++i) {
                    ASSERT_TRUE(cold.cells[i].ok)
                        << tag << ": " << cold.cells[i].error;
                    ASSERT_TRUE(fork.cells[i].ok)
                        << tag << ": " << fork.cells[i].error;
                    EXPECT_TRUE(fork.cells[i].from_snapshot) << tag;
                    EXPECT_EQ(fingerprint(fork.cells[i].result),
                              fingerprint(cold.cells[i].result))
                        << tag << " cell " << i;
                }
                ++exercised;
            }
        }
    }
    EXPECT_GT(exercised, 0u);
}

/** The snapshot budget bounds memory, never output.  Two seeds, each
 *  with two mid-run fault arms, on a three-cut chain: every seed
 *  node has two children, so a one-byte budget evicts the seed node
 *  while its first child runs and must rematerialize it from the
 *  root for the second — and the bytes still match the roomy run
 *  (and the cold-split control) exactly. */
TEST(ForkReplay, TinyBudgetEvictsWithoutChangingOutputs)
{
    ForkGroupSpec group;
    group.app = "gaussian";
    group.sys.cc = true;
    const std::uint64_t ident =
        identitySeed(group.app, group.sys, group.params);
    group.sys.seed = ident;
    group.params.seed = ident;
    group.cells.resize(4);
    for (std::size_t i = 0; i < 4; ++i) {
        ForkArm reseed{ForkArm::Kind::Reseed, 3 + i / 2, {}};
        ForkArm mid{ForkArm::Kind::Faults, 0, {}};
        if (i % 2 == 1) {
            mid.faults.set(fault::Site::PcieReplay, 0.5);
            group.cells[i].faults.set(fault::Site::PcieReplay, 0.5);
        }
        group.cells[i].arms = {reseed, mid};
    }
    const ForkPoint chained{ForkPoint::Mode::Auto, 0.0,
                            {0.93, 0.96}};

    const auto cold = runForkGroup(group, chained, true);
    const auto roomy = runForkGroup(group, chained, false);
    group.snapshot_budget_bytes = 1; // evict everything evictable
    const auto tight = runForkGroup(group, chained, false);

    ASSERT_EQ(roomy.cells.size(), tight.cells.size());
    EXPECT_GT(tight.peak_resident_bytes, 0u);
    EXPECT_LE(tight.peak_resident_bytes, roomy.peak_resident_bytes);
    EXPECT_EQ(tight.snapshot_hits, 4u);
    for (std::size_t i = 0; i < roomy.cells.size(); ++i) {
        ASSERT_TRUE(cold.cells[i].ok) << cold.cells[i].error;
        ASSERT_TRUE(roomy.cells[i].ok) << roomy.cells[i].error;
        ASSERT_TRUE(tight.cells[i].ok) << tight.cells[i].error;
        EXPECT_EQ(fingerprint(roomy.cells[i].result),
                  fingerprint(cold.cells[i].result))
            << "cell " << i;
        EXPECT_EQ(fingerprint(tight.cells[i].result),
                  fingerprint(roomy.cells[i].result))
            << "cell " << i;
    }
}

// ----------------------------------------- campaign + sweep wiring

TEST(ForkCampaign, ForkAndColdCampaignsAreIdentical)
{
    fault::CampaignSpec spec;
    spec.app = "gaussian";
    spec.sites = {fault::Site::PcieReplay,
                  fault::Site::ChannelTagMismatch};
    spec.rates = {0.5};
    spec.seeds = {1, 2};
    spec.fork_point = {ForkPoint::Mode::Auto, 0.0};

    spec.no_snapshot = false;
    const auto fork = fault::runFaultCampaign(spec, 1);
    spec.no_snapshot = true;
    const auto cold = fault::runFaultCampaign(spec, 2);

    ASSERT_EQ(fork.cells.size(), cold.cells.size());
    EXPECT_GT(fork.snapshot_hits, 0u);
    EXPECT_EQ(cold.snapshot_hits, 0u);
    for (std::size_t i = 0; i < fork.cells.size(); ++i) {
        ASSERT_TRUE(fork.cells[i].ok) << fork.cells[i].error;
        ASSERT_TRUE(cold.cells[i].ok) << cold.cells[i].error;
        EXPECT_EQ(fingerprint(fork.cells[i].result),
                  fingerprint(cold.cells[i].result))
            << "cell " << i;
    }
}

/** Regression: two pcie.replay cells in one fork group.  The first
 *  cell lazily creates pcie.link.replay_bytes_* and the next cell's
 *  restore erases that post-capture entry — the link (and likewise
 *  the channel's pipeline counters) must drop its cached handle at
 *  restore instead of writing through it on the next replay. */
TEST(ForkCampaign, LazyReplayCountersSurviveRepeatedRestores)
{
    fault::CampaignSpec spec;
    spec.app = "gaussian";
    spec.sites = {fault::Site::PcieReplay};
    spec.rates = {0.25, 0.5, 0.9};
    spec.seeds = {41};
    spec.fork_point = {ForkPoint::Mode::Auto, 0.0};

    spec.no_snapshot = false;
    const auto fork = fault::runFaultCampaign(spec, 1);
    spec.no_snapshot = true;
    const auto cold = fault::runFaultCampaign(spec, 1);
    ASSERT_EQ(fork.cells.size(), 4u); // baseline + three rates
    EXPECT_GT(fork.snapshot_hits, 0u);
    for (std::size_t i = 0; i < fork.cells.size(); ++i) {
        ASSERT_TRUE(fork.cells[i].ok) << fork.cells[i].error;
        ASSERT_TRUE(cold.cells[i].ok) << cold.cells[i].error;
        EXPECT_EQ(fingerprint(fork.cells[i].result),
                  fingerprint(cold.cells[i].result))
            << "cell " << i;
    }
}

TEST(ForkCampaign, DefaultForkPointKeepsLegacyArming)
{
    // spdm.handshake fires during Context construction — before any
    // fork point — so only construction-time arming (the default)
    // can make it fail a cell.  This pins the legacy default.
    fault::CampaignSpec spec;
    spec.app = "gaussian";
    spec.sites = {fault::Site::SpdmHandshake};
    spec.rates = {1.0};
    spec.seeds = {42};
    const auto out = fault::runFaultCampaign(spec, 1);
    ASSERT_EQ(out.cells.size(), 2u); // baseline + faulted
    EXPECT_EQ(out.snapshot_hits, 0u);
    EXPECT_TRUE(out.cells[0].ok);
    EXPECT_FALSE(out.cells[1].ok);
}

/** The overlap axis joins the byte-identity contract: a grid that
 *  spins all three pipeline tiers must merge to the same bytes
 *  whether cells replay from snapshots or cold-start. */
TEST(ForkSweep, OverlapAxisForkMatchesColdStart)
{
    sweep::GridSpec grid;
    grid.apps = {"gaussian"};
    grid.cc_modes = {true};
    grid.overlaps = {tee::OverlapMode::None,
                     tee::OverlapMode::DoubleBuffer,
                     tee::OverlapMode::Speculative};

    auto merged = [](const sweep::SweepResult &r) {
        std::ostringstream oss;
        sweep::writeMergedStats(r, oss);
        return oss.str();
    };

    grid.no_snapshot = true;
    const auto cold = sweep::runSweep(grid, 1);
    grid.no_snapshot = false;
    const auto fork = sweep::runSweep(grid, 4);
    ASSERT_EQ(cold.cells.size(), 3u);
    ASSERT_EQ(fork.cells.size(), 3u);
    for (const auto &cell : cold.cells)
        ASSERT_TRUE(cell.ok) << cell.error;
    for (const auto &cell : fork.cells)
        ASSERT_TRUE(cell.ok) << cell.error;
    EXPECT_EQ(merged(cold), merged(fork));
    // The tiers really differ: a shared snapshot must not collapse
    // the pipeline timing into one answer.
    const auto e2e = [](const sweep::SweepResult &r, std::size_t i) {
        return r.cells[i].result.end_to_end;
    };
    EXPECT_LT(e2e(fork, 2), e2e(fork, 0))
        << "speculative beats serial even under fork/replay";
    EXPECT_EQ(e2e(fork, 0), e2e(cold, 0));
    EXPECT_EQ(e2e(fork, 2), e2e(cold, 2));
}

TEST(ForkSweep, DuplicateCellsReplayFromOneSnapshot)
{
    sweep::GridSpec grid;
    grid.apps = {"gaussian"};
    grid.cc_modes = {true};
    grid.seeds = {7, 7, 7};

    const auto result = sweep::runSweep(grid, 1);
    ASSERT_EQ(result.cells.size(), 3u);
    EXPECT_EQ(result.snapshot_hits, 3u);
    for (const auto &cell : result.cells)
        ASSERT_TRUE(cell.ok) << cell.error;
    const std::string want = fingerprint(result.cells[0].result);
    EXPECT_EQ(fingerprint(result.cells[1].result), want);
    EXPECT_EQ(fingerprint(result.cells[2].result), want);

    // The unique-cell grid takes the cold path: no hits, same rows.
    grid.seeds = {7};
    const auto solo = sweep::runSweep(grid, 1);
    EXPECT_EQ(solo.snapshot_hits, 0u);
    ASSERT_TRUE(solo.cells[0].ok);
    EXPECT_EQ(fingerprint(solo.cells[0].result), want);
}

} // namespace
} // namespace hcc::snap
