/**
 * @file
 * Unit and property tests for the from-scratch crypto primitives:
 * FIPS-197 AES vectors, NIST GCM vectors, XTS structure, tampering
 * detection sweeps, and the calibrated throughput model.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/cpu_crypto_model.hpp"
#include "crypto/ctr.hpp"
#include "crypto/gcm.hpp"
#include "crypto/ghash.hpp"
#include "crypto/xts.hpp"

namespace hcc::crypto {
namespace {

std::vector<std::uint8_t>
fromHex(const std::string &hex)
{
    std::vector<std::uint8_t> out;
    out.reserve(hex.size() / 2);
    auto nibble = [](char c) -> std::uint8_t {
        if (c >= '0' && c <= '9')
            return static_cast<std::uint8_t>(c - '0');
        if (c >= 'a' && c <= 'f')
            return static_cast<std::uint8_t>(c - 'a' + 10);
        if (c >= 'A' && c <= 'F')
            return static_cast<std::uint8_t>(c - 'A' + 10);
        ADD_FAILURE() << "bad hex digit " << c;
        return 0;
    };
    for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
        out.push_back(static_cast<std::uint8_t>(
            (nibble(hex[i]) << 4) | nibble(hex[i + 1])));
    }
    return out;
}

std::string
toHex(std::span<const std::uint8_t> data)
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (auto b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

// ---------------------------------------------------------------- AES

TEST(Aes, Fips197Aes128Vector)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    Aes aes(key);
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(toHex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");

    std::uint8_t back[16];
    aes.decryptBlock(ct, back);
    EXPECT_EQ(toHex(back), toHex(pt));
}

TEST(Aes, Fips197Aes192Vector)
{
    const auto key =
        fromHex("000102030405060708090a0b0c0d0e0f1011121314151617");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    Aes aes(key);
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(toHex(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256Vector)
{
    const auto key = fromHex(
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f");
    const auto pt = fromHex("00112233445566778899aabbccddeeff");
    Aes aes(key);
    std::uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    EXPECT_EQ(toHex(ct), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, RejectsBadKeyLength)
{
    std::vector<std::uint8_t> key(17, 0);
    EXPECT_THROW(Aes{key}, FatalError);
}

TEST(Aes, EncryptDecryptRoundTripRandomKeys)
{
    Rng rng(1234);
    for (std::size_t key_len : {16u, 24u, 32u}) {
        std::vector<std::uint8_t> key(key_len);
        for (auto &b : key)
            b = static_cast<std::uint8_t>(rng.next32());
        Aes aes(key);
        for (int trial = 0; trial < 50; ++trial) {
            std::uint8_t pt[16], ct[16], back[16];
            for (auto &b : pt)
                b = static_cast<std::uint8_t>(rng.next32());
            aes.encryptBlock(pt, ct);
            aes.decryptBlock(ct, back);
            EXPECT_EQ(0, std::memcmp(pt, back, 16));
            // The permutation must not be the identity.
            EXPECT_NE(0, std::memcmp(pt, ct, 16));
        }
    }
}

TEST(Aes, InPlaceAliasing)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key);
    std::uint8_t buf[16];
    std::memcpy(buf, fromHex("00112233445566778899aabbccddeeff").data(),
                16);
    aes.encryptBlock(buf, buf);
    EXPECT_EQ(toHex(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.decryptBlock(buf, buf);
    EXPECT_EQ(toHex(buf), "00112233445566778899aabbccddeeff");
}

// ---------------------------------------------------------------- CTR

TEST(Ctr, Inc32WrapsOnlyLow32Bits)
{
    std::uint8_t ctr[16] = {};
    std::memset(ctr + 12, 0xff, 4);
    ctr[0] = 0xab;
    inc32(ctr);
    EXPECT_EQ(ctr[12], 0);
    EXPECT_EQ(ctr[13], 0);
    EXPECT_EQ(ctr[14], 0);
    EXPECT_EQ(ctr[15], 0);
    EXPECT_EQ(ctr[0], 0xab) << "bits above 32 must not carry";
}

TEST(Ctr, XcryptIsAnInvolution)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key);
    std::uint8_t ctr0[16] = {1, 2, 3, 4};
    Rng rng(7);
    std::vector<std::uint8_t> pt(1000);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> ct(pt.size());
    ctrXcrypt(aes, ctr0, pt, ct);
    EXPECT_NE(pt, ct);
    std::vector<std::uint8_t> back(pt.size());
    ctrXcrypt(aes, ctr0, ct, back);
    EXPECT_EQ(pt, back);
}

TEST(Ctr, HandlesPartialFinalBlock)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key);
    std::uint8_t ctr0[16] = {};
    std::vector<std::uint8_t> pt = {0xde, 0xad, 0xbe, 0xef, 0x01};
    std::vector<std::uint8_t> ct(pt.size());
    ctrXcrypt(aes, ctr0, pt, ct);
    std::vector<std::uint8_t> back(pt.size());
    ctrXcrypt(aes, ctr0, ct, back);
    EXPECT_EQ(pt, back);
}

// ---------------------------------------------------------------- GCM

TEST(Gcm, NistTestCase1EmptyPlaintext)
{
    std::vector<std::uint8_t> key(16, 0);
    AesGcm gcm(key);
    GcmIv iv{};  // 96 zero bits
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv, {}, {}, {}, tag);
    // Tag for the empty message is E_K(J0); value cross-checked with
    // `openssl enc -aes-128-ecb` on the J0 block.
    EXPECT_EQ(toHex(tag), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(Gcm, NistTestCase2SingleZeroBlock)
{
    std::vector<std::uint8_t> key(16, 0);
    AesGcm gcm(key);
    GcmIv iv{};
    std::vector<std::uint8_t> pt(16, 0);
    std::vector<std::uint8_t> ct(16);
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv, {}, pt, ct, tag);
    EXPECT_EQ(toHex(ct), "0388dace60b6a392f328c2b971b2fe78");
    EXPECT_EQ(toHex(tag), "ab6e47d42cec13bdf53a67b21257bddf");

    std::vector<std::uint8_t> back(16, 0xff);
    EXPECT_TRUE(gcm.open(iv, {}, ct, tag, back));
    EXPECT_EQ(back, pt);
}

TEST(Gcm, RoundTripWithAad)
{
    const auto key = fromHex(
        "feffe9928665731c6d6a8f9467308308"
        "feffe9928665731c6d6a8f9467308308");
    AesGcm gcm(key);
    GcmIvSequence ivs(42);
    const GcmIv iv = ivs.next();

    Rng rng(99);
    std::vector<std::uint8_t> pt(777);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> aad = {1, 2, 3, 4, 5};
    std::vector<std::uint8_t> ct(pt.size());
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv, aad, pt, ct, tag);

    std::vector<std::uint8_t> back(pt.size());
    EXPECT_TRUE(gcm.open(iv, aad, ct, tag, back));
    EXPECT_EQ(back, pt);
}

TEST(Gcm, DetectsCiphertextTampering)
{
    std::vector<std::uint8_t> key(32, 7);
    AesGcm gcm(key);
    GcmIv iv{};
    std::vector<std::uint8_t> pt(64, 0x5a);
    std::vector<std::uint8_t> ct(pt.size());
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv, {}, pt, ct, tag);

    // Flip every single bit position in turn: all must be caught.
    std::vector<std::uint8_t> back(pt.size());
    for (std::size_t byte = 0; byte < ct.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            ct[byte] ^= static_cast<std::uint8_t>(1 << bit);
            EXPECT_FALSE(gcm.open(iv, {}, ct, tag, back))
                << "undetected flip at byte " << byte << " bit " << bit;
            ct[byte] ^= static_cast<std::uint8_t>(1 << bit);
        }
    }
    EXPECT_TRUE(gcm.open(iv, {}, ct, tag, back));
}

TEST(Gcm, DetectsTagTampering)
{
    std::vector<std::uint8_t> key(16, 3);
    AesGcm gcm(key);
    GcmIv iv{};
    std::vector<std::uint8_t> pt(48, 0x11);
    std::vector<std::uint8_t> ct(pt.size());
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv, {}, pt, ct, tag);

    std::vector<std::uint8_t> back(pt.size(), 0xee);
    tag[0] ^= 1;
    EXPECT_FALSE(gcm.open(iv, {}, ct, tag, back));
    // Failed open must not leak plaintext.
    for (auto b : back)
        EXPECT_EQ(b, 0);
}

TEST(Gcm, DetectsAadTampering)
{
    std::vector<std::uint8_t> key(16, 9);
    AesGcm gcm(key);
    GcmIv iv{};
    std::vector<std::uint8_t> pt(20, 0x22);
    std::vector<std::uint8_t> aad = {9, 8, 7};
    std::vector<std::uint8_t> ct(pt.size());
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv, aad, pt, ct, tag);

    std::vector<std::uint8_t> back(pt.size());
    aad[1] ^= 0x80;
    EXPECT_FALSE(gcm.open(iv, aad, ct, tag, back));
}

TEST(Gcm, WrongIvFailsAuthentication)
{
    std::vector<std::uint8_t> key(16, 5);
    AesGcm gcm(key);
    GcmIvSequence ivs;
    const GcmIv iv1 = ivs.next();
    const GcmIv iv2 = ivs.next();
    EXPECT_NE(iv1, iv2);

    std::vector<std::uint8_t> pt(32, 0x77);
    std::vector<std::uint8_t> ct(pt.size());
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv1, {}, pt, ct, tag);

    std::vector<std::uint8_t> back(pt.size());
    EXPECT_FALSE(gcm.open(iv2, {}, ct, tag, back));
}

TEST(Gcm, IvSequenceEncodesChannelAndCounter)
{
    GcmIvSequence a(1), b(2);
    EXPECT_NE(a.next(), b.next()) << "channels must not collide";
    GcmIvSequence c(1);
    const GcmIv first = c.next();
    const GcmIv second = c.next();
    EXPECT_NE(first, second)
        << "same channel, different counters must not collide";
}

// Parameterized round-trip across message sizes, including awkward
// non-block-aligned lengths.
class GcmSizeSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(GcmSizeSweep, RoundTrip)
{
    const std::size_t n = GetParam();
    std::vector<std::uint8_t> key(16, 0xa5);
    AesGcm gcm(key);
    GcmIv iv{};
    iv[0] = 1;

    Rng rng(n);
    std::vector<std::uint8_t> pt(n);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> ct(n);
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv, {}, pt, ct, tag);
    std::vector<std::uint8_t> back(n);
    EXPECT_TRUE(gcm.open(iv, {}, ct, tag, back));
    EXPECT_EQ(back, pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33,
                                           63, 64, 255, 256, 1000, 4096,
                                           65536));

// --------------------------------------------------------------- GHASH

TEST(Ghash, LinearInXor)
{
    // GHASH of a single block B equals B * H; hashing B1 then B2 is
    // (B1*H + B2)*H.  Verify the defining recurrence holds against a
    // manual two-step evaluation.
    std::uint8_t h[16];
    for (int i = 0; i < 16; ++i)
        h[i] = static_cast<std::uint8_t>(i * 7 + 1);

    std::uint8_t b1[16], b2[16];
    for (int i = 0; i < 16; ++i) {
        b1[i] = static_cast<std::uint8_t>(0x10 + i);
        b2[i] = static_cast<std::uint8_t>(0xf0 - i);
    }

    Ghash g1(h);
    g1.updateBlock(b1);
    std::uint8_t y1[16];
    g1.digest(y1);

    // Manually: feed (Y1 ^ B2) into a fresh GHASH — must equal
    // feeding B1, B2 sequentially.
    std::uint8_t mixed[16];
    for (int i = 0; i < 16; ++i)
        mixed[i] = y1[i] ^ b2[i];
    Ghash g2(h);
    g2.updateBlock(mixed);
    std::uint8_t manual[16];
    g2.digest(manual);

    g1.updateBlock(b2);
    std::uint8_t chained[16];
    g1.digest(chained);

    EXPECT_EQ(0, std::memcmp(manual, chained, 16));
}

TEST(Ghash, ZeroKeyAbsorbsEverythingToZero)
{
    std::uint8_t h[16] = {};
    Ghash g(h);
    std::vector<std::uint8_t> data(64, 0xff);
    g.update(data);
    std::uint8_t out[16];
    g.digest(out);
    for (auto b : out)
        EXPECT_EQ(b, 0);
}

TEST(Ghash, ResetClearsAccumulator)
{
    std::uint8_t h[16] = {1};
    Ghash g(h);
    std::vector<std::uint8_t> data(32, 0xab);
    g.update(data);
    g.reset();
    std::uint8_t out[16];
    g.digest(out);
    for (auto b : out)
        EXPECT_EQ(b, 0);
}

// ---------------------------------------------------------------- XTS

TEST(Xts, RoundTripFullBlocks)
{
    std::vector<std::uint8_t> key(32);
    Rng rng(5);
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.next32());
    AesXts xts(key);

    std::vector<std::uint8_t> pt(256);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> ct(pt.size());
    xts.encrypt(77, pt, ct);
    EXPECT_NE(pt, ct);
    std::vector<std::uint8_t> back(pt.size());
    xts.decrypt(77, ct, back);
    EXPECT_EQ(back, pt);
}

TEST(Xts, TweakSensitivity)
{
    std::vector<std::uint8_t> key(32, 0x42);
    AesXts xts(key);
    std::vector<std::uint8_t> pt(64, 0x00);
    std::vector<std::uint8_t> c1(64), c2(64);
    xts.encrypt(0, pt, c1);
    xts.encrypt(1, pt, c2);
    EXPECT_NE(c1, c2)
        << "same plaintext at different data units must differ";
}

TEST(Xts, IdenticalBlocksWithinUnitDiffer)
{
    std::vector<std::uint8_t> key(32, 0x13);
    AesXts xts(key);
    std::vector<std::uint8_t> pt(32, 0xcc);  // two identical blocks
    std::vector<std::uint8_t> ct(32);
    xts.encrypt(9, pt, ct);
    EXPECT_NE(0, std::memcmp(ct.data(), ct.data() + 16, 16))
        << "the alpha tweak progression must break block repetition";
}

TEST(Xts, RejectsPartialBlocks)
{
    std::vector<std::uint8_t> key(32, 1);
    AesXts xts(key);
    std::vector<std::uint8_t> pt(20);
    std::vector<std::uint8_t> ct(20);
    EXPECT_THROW(xts.encrypt(0, pt, ct), FatalError);
    std::vector<std::uint8_t> empty;
    EXPECT_THROW(xts.encrypt(0, empty, empty), FatalError);
}

TEST(Xts, Xts256KeyRoundTrip)
{
    std::vector<std::uint8_t> key(64);
    Rng rng(11);
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.next32());
    AesXts xts(key);
    std::vector<std::uint8_t> pt(128, 0x3c);
    std::vector<std::uint8_t> ct(128), back(128);
    xts.encrypt(1234567, pt, ct);
    xts.decrypt(1234567, ct, back);
    EXPECT_EQ(back, pt);
}

TEST(Xts, MulAlphaMatchesBitShift)
{
    // alpha^k applied to the unit tweak 1 yields x^k: for k < 120 the
    // result should be a single bit walking through the bytes
    // little-endian.
    std::uint8_t t[16] = {1};
    for (int k = 1; k <= 100; ++k) {
        xtsMulAlpha(t);
        int set_bits = 0;
        for (auto b : t) {
            for (int i = 0; i < 8; ++i)
                set_bits += (b >> i) & 1;
        }
        EXPECT_EQ(set_bits, 1) << "at power " << k;
        const int byte = k / 8;
        EXPECT_EQ(t[byte], 1 << (k % 8)) << "at power " << k;
    }
}

// ----------------------------------------------------- throughput model

TEST(CpuCryptoModel, Fig4bOrderingOnEmr)
{
    CpuCryptoModel m(CpuKind::IntelEmr);
    // The paper's key comparisons: GHASH is the fastest (8.9 GB/s),
    // plain CTR beats GCM, and GCM-256 is slower than GCM-128.
    EXPECT_GT(m.throughputGBs(CipherAlgo::GhashOnly),
              m.throughputGBs(CipherAlgo::AesCtr128));
    EXPECT_GT(m.throughputGBs(CipherAlgo::AesCtr128),
              m.throughputGBs(CipherAlgo::AesGcm128));
    EXPECT_GT(m.throughputGBs(CipherAlgo::AesGcm128),
              m.throughputGBs(CipherAlgo::AesGcm256));
    EXPECT_NEAR(m.throughputGBs(CipherAlgo::AesGcm128), 3.36, 1e-9);
    EXPECT_NEAR(m.throughputGBs(CipherAlgo::GhashOnly), 8.9, 1e-9);
}

TEST(CpuCryptoModel, GcmBelowNonCcPcieOnBothCpus)
{
    // Observation 2: software AES-GCM cannot keep up with non-CC PCIe
    // bandwidth on either CPU.
    for (auto cpu : {CpuKind::IntelEmr, CpuKind::NvidiaGrace}) {
        CpuCryptoModel m(cpu);
        EXPECT_LT(m.throughputGBs(CipherAlgo::AesGcm128),
                  calib::kPciePinnedGBs);
    }
}

TEST(CpuCryptoModel, CostScalesLinearlyInBytes)
{
    CpuCryptoModel m;
    const SimTime t1 = m.cost(CipherAlgo::AesGcm128, size::mib(1));
    const SimTime t4 = m.cost(CipherAlgo::AesGcm128, size::mib(4));
    const double ratio = static_cast<double>(t4 - CpuCryptoModel::kSetupCost)
        / static_cast<double>(t1 - CpuCryptoModel::kSetupCost);
    EXPECT_NEAR(ratio, 4.0, 0.01);
}

TEST(CpuCryptoModel, WorkerScalingIsSubLinear)
{
    CpuCryptoModel m;
    const double one = m.effectiveGBs(CipherAlgo::AesGcm128, 1);
    const double four = m.effectiveGBs(CipherAlgo::AesGcm128, 4);
    const double eight = m.effectiveGBs(CipherAlgo::AesGcm128, 8);
    EXPECT_GT(four, one * 2.0);
    EXPECT_LT(four, one * 4.0);
    EXPECT_GT(eight, four);
    EXPECT_LT(eight, one * 8.0);
}

TEST(CpuCryptoModel, RejectsZeroWorkers)
{
    CpuCryptoModel m;
    EXPECT_THROW(m.cost(CipherAlgo::AesGcm128, 1024, 0), FatalError);
}

TEST(CpuCryptoModel, AllAlgosHaveNamesAndPositiveThroughput)
{
    for (auto cpu : {CpuKind::IntelEmr, CpuKind::NvidiaGrace}) {
        CpuCryptoModel m(cpu);
        for (auto algo : allCipherAlgos()) {
            EXPECT_FALSE(cipherAlgoName(algo).empty());
            EXPECT_GT(m.throughputGBs(algo), 0.0);
        }
    }
}

TEST(CpuCryptoModel, ThroughputOverrideReplacesTableValue)
{
    CpuCryptoModel m;
    const double table = m.throughputGBs(CipherAlgo::AesGcm128);
    EXPECT_FALSE(m.hasThroughputOverride(CipherAlgo::AesGcm128));
    m.setThroughputOverride(CipherAlgo::AesGcm128, 123.5);
    EXPECT_TRUE(m.hasThroughputOverride(CipherAlgo::AesGcm128));
    EXPECT_DOUBLE_EQ(m.throughputGBs(CipherAlgo::AesGcm128), 123.5);
    // Other algorithms are untouched.
    EXPECT_FALSE(m.hasThroughputOverride(CipherAlgo::AesXts128));
    m.clearThroughputOverride(CipherAlgo::AesGcm128);
    EXPECT_DOUBLE_EQ(m.throughputGBs(CipherAlgo::AesGcm128), table);
}

TEST(CpuCryptoModel, RejectsNonPositiveOverride)
{
    CpuCryptoModel m;
    EXPECT_THROW(m.setThroughputOverride(CipherAlgo::AesGcm128, 0.0),
                 FatalError);
    EXPECT_THROW(m.setThroughputOverride(CipherAlgo::AesGcm128, -1.0),
                 FatalError);
}

// ---------------------------------------------------- CAVP/edge vectors
//
// Vectors from NIST's CAVP gcmEncryptExtIV128.rsp: they pin this
// implementation against published answers (not just against itself)
// on the shapes the transfer path exercises least — AAD with no
// payload (GMAC) and single-block payloads.

TEST(Gcm, CavpAadOnlyGmacVector)
{
    const auto key = fromHex("77be63708971c4e240d1cb79e8d77feb");
    const auto ivb = fromHex("e0e00f19fed7ba0136a797f3");
    const auto aad = fromHex("7a43ec1d9c0a5a78a0b16533a6213cab");
    GcmIv iv{};
    std::memcpy(iv.data(), ivb.data(), iv.size());

    AesGcm gcm(key);
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv, aad, {}, {}, tag);
    EXPECT_EQ(toHex(tag), "209fcc8d3675ed938e9c7166709dd946");
    EXPECT_TRUE(gcm.open(iv, aad, {}, tag, {}));
}

TEST(Gcm, CavpSingleBlockVector)
{
    const auto key = fromHex("7fddb57453c241d03efbed3ac44e371c");
    const auto ivb = fromHex("ee283a3fc75575e33efd4887");
    const auto pt = fromHex("d5de42b461646c255c87bd2962d3b9a2");
    GcmIv iv{};
    std::memcpy(iv.data(), ivb.data(), iv.size());

    AesGcm gcm(key);
    std::vector<std::uint8_t> ct(pt.size());
    std::uint8_t tag[kGcmTagLen];
    gcm.seal(iv, {}, pt, ct, tag);
    EXPECT_EQ(toHex(ct), "2ccda4a5415cb91e135c2a0f78c9b2fd");
    EXPECT_EQ(toHex(tag), "b36d1df9b9d5e596f83e8b7f52971cb3");

    std::vector<std::uint8_t> back(pt.size());
    EXPECT_TRUE(gcm.open(iv, {}, ct, tag, back));
    EXPECT_EQ(back, pt);
}

TEST(Gcm, OnlySupports96BitIvsByConstruction)
{
    // SP 800-38D's non-96-bit IV path (GHASH-derived J0) is
    // deliberately not implemented; the GcmIv type makes other widths
    // unrepresentable at the seal/open interface.
    static_assert(std::tuple_size_v<GcmIv> == 12);
    SUCCEED();
}

TEST(Ctr, BatchedKeystreamWrapsAcrossInc32Boundary)
{
    // Start two blocks below the 32-bit counter wrap and run through
    // it: the batched ctrKeystream/inc32By path must match one
    // encryptBlock+inc32 at a time, including the wrap to 0 (not a
    // carry into byte 11).
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    Aes aes(key);
    std::uint8_t ctr0[16] = {};
    ctr0[11] = 0x7b;
    std::memset(ctr0 + 12, 0xff, 4);
    ctr0[15] = 0xfe;  // counter = 0xfffffffe

    Rng rng(4242);
    std::vector<std::uint8_t> pt(6 * 16 + 5);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> ct(pt.size());
    ctrXcrypt(aes, ctr0, pt, ct);

    std::uint8_t ctr[16];
    std::memcpy(ctr, ctr0, 16);
    std::vector<std::uint8_t> want(pt.size());
    std::uint8_t ks[16];
    for (std::size_t off = 0; off < pt.size(); off += 16) {
        aes.encryptBlock(ctr, ks);
        inc32(ctr);
        for (std::size_t i = 0; i < 16 && off + i < pt.size(); ++i)
            want[off + i] = pt[off + i] ^ ks[i];
    }
    EXPECT_EQ(ct, want);
    EXPECT_EQ(ctr[11], 0x7b) << "wrap must not carry past 32 bits";
}

TEST(Ctr, Inc32ByMatchesRepeatedInc32)
{
    std::uint8_t a[16] = {};
    std::uint8_t b[16] = {};
    std::memset(a + 12, 0xff, 4);
    a[12] = 0x12;
    std::memcpy(b, a, 16);
    inc32By(a, 1000);
    for (int i = 0; i < 1000; ++i)
        inc32(b);
    EXPECT_EQ(std::memcmp(a, b, 16), 0);
}

// ----------------------------------------------- implementation tiers

TEST(Impl, NamesParseBackToThemselves)
{
    for (auto impl : {CryptoImpl::Scalar, CryptoImpl::TTable,
                      CryptoImpl::Aesni}) {
        const auto parsed = parseCryptoImpl(cryptoImplName(impl));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, impl);
    }
    EXPECT_FALSE(parseCryptoImpl("vaes").has_value());
    EXPECT_FALSE(parseCryptoImpl("").has_value());
}

TEST(Impl, ScalarAndTTableAlwaysSupported)
{
    EXPECT_TRUE(cryptoImplSupported(CryptoImpl::Scalar));
    EXPECT_TRUE(cryptoImplSupported(CryptoImpl::TTable));
    const auto all = supportedCryptoImpls();
    ASSERT_GE(all.size(), 2u);
    EXPECT_EQ(all.front(), CryptoImpl::Scalar);
    EXPECT_TRUE(cryptoImplSupported(bestCryptoImpl()));
}

TEST(Impl, AllTiersProduceIdenticalGcmOutput)
{
    const auto key = fromHex(
        "feffe9928665731c6d6a8f9467308308"
        "feffe9928665731c6d6a8f9467308308");
    Rng rng(31337);
    std::vector<std::uint8_t> pt(5000);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    const std::vector<std::uint8_t> aad = {9, 9, 9};
    GcmIv iv{};
    iv[5] = 0x44;

    AesGcm ref(key, CryptoImpl::Scalar);
    std::vector<std::uint8_t> ref_ct(pt.size());
    std::uint8_t ref_tag[kGcmTagLen];
    ref.seal(iv, aad, pt, ref_ct, ref_tag);

    for (auto impl : supportedCryptoImpls()) {
        SCOPED_TRACE(cryptoImplName(impl));
        AesGcm gcm(key, impl);
        std::vector<std::uint8_t> ct(pt.size());
        std::uint8_t tag[kGcmTagLen];
        gcm.seal(iv, aad, pt, ct, tag);
        EXPECT_EQ(ct, ref_ct);
        EXPECT_EQ(std::memcmp(tag, ref_tag, kGcmTagLen), 0);
        std::vector<std::uint8_t> back(pt.size());
        EXPECT_TRUE(gcm.open(iv, aad, ct, tag, back));
        EXPECT_EQ(back, pt);
    }
}

TEST(Impl, AllTiersProduceIdenticalCtrAndXtsOutput)
{
    const auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    const auto xts_key = fromHex(
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f");
    Rng rng(2718);
    std::vector<std::uint8_t> pt(1024);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    std::uint8_t ctr0[16] = {};
    ctr0[15] = 0xfd;  // crosses an inc32 carry mid-message

    Aes ref_aes(key, CryptoImpl::Scalar);
    std::vector<std::uint8_t> ref_ctr(pt.size());
    ctrXcrypt(ref_aes, ctr0, pt, ref_ctr);
    AesXts ref_xts(xts_key, CryptoImpl::Scalar);
    std::vector<std::uint8_t> ref_xts_ct(pt.size());
    ref_xts.encrypt(7, pt, ref_xts_ct);

    for (auto impl : supportedCryptoImpls()) {
        SCOPED_TRACE(cryptoImplName(impl));
        Aes aes(key, impl);
        std::vector<std::uint8_t> ct(pt.size());
        ctrXcrypt(aes, ctr0, pt, ct);
        EXPECT_EQ(ct, ref_ctr);

        AesXts xts(xts_key, impl);
        std::vector<std::uint8_t> xct(pt.size());
        xts.encrypt(7, pt, xct);
        EXPECT_EQ(xct, ref_xts_ct);
    }
}

} // namespace
} // namespace hcc::crypto
