/**
 * @file
 * Tests for the from-scratch SHA-256 and HMAC-SHA-256 (vectors
 * cross-checked against openssl).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace hcc::crypto {
namespace {

std::string
toHex(const Sha256Digest &d)
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    for (auto b : d) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

TEST(Sha256Test, EmptyInput)
{
    EXPECT_EQ(toHex(Sha256::digest({})),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc)
{
    EXPECT_EQ(toHex(Sha256::digest(bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, IncrementalEqualsOneShot)
{
    Rng rng(99);
    std::vector<std::uint8_t> data(100000);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next32());

    const auto oneshot = Sha256::digest(data);
    // Feed in awkward chunk sizes.
    Sha256 inc;
    std::size_t off = 0;
    std::size_t chunk = 1;
    while (off < data.size()) {
        const std::size_t n =
            std::min(chunk, data.size() - off);
        inc.update({data.data() + off, n});
        off += n;
        chunk = (chunk * 7 + 3) % 130 + 1;
    }
    EXPECT_EQ(inc.finalize(), oneshot);
}

TEST(Sha256Test, PaddingBoundaries)
{
    // Lengths around the 55/56/64-byte padding edges must all work
    // and differ from each other.
    std::vector<Sha256Digest> digests;
    for (std::size_t n : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u,
                          120u, 121u}) {
        std::vector<std::uint8_t> data(n, 0x61);
        digests.push_back(Sha256::digest(data));
    }
    for (std::size_t i = 0; i < digests.size(); ++i) {
        for (std::size_t j = i + 1; j < digests.size(); ++j)
            EXPECT_NE(digests[i], digests[j]);
    }
}

TEST(Sha256Test, FinalizeResetsState)
{
    Sha256 h;
    h.update(bytes("abc"));
    const auto first = h.finalize();
    h.update(bytes("abc"));
    EXPECT_EQ(h.finalize(), first);
}

TEST(Sha256Test, AvalancheOnSingleBit)
{
    std::vector<std::uint8_t> a(64, 0);
    std::vector<std::uint8_t> b = a;
    b[10] ^= 1;
    const auto da = Sha256::digest(a);
    const auto db = Sha256::digest(b);
    int differing = 0;
    for (std::size_t i = 0; i < da.size(); ++i) {
        differing += __builtin_popcount(
            static_cast<unsigned>(da[i] ^ db[i]));
    }
    EXPECT_GT(differing, 80) << "roughly half of 256 bits should flip";
}

TEST(HmacSha256, Rfc4231Case2)
{
    const auto mac = hmacSha256(
        bytes("Jefe"), bytes("what do ya want for nothing?"));
    EXPECT_EQ(toHex(mac),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, KeyLongerThanBlockIsHashed)
{
    std::vector<std::uint8_t> long_key(131, 0xaa);
    const auto a = hmacSha256(long_key, bytes("msg"));
    // Hashing the key first must match using H(key) directly.
    const auto hashed = Sha256::digest(long_key);
    const auto b = hmacSha256(hashed, bytes("msg"));
    EXPECT_EQ(a, b);
}

TEST(HmacSha256, DifferentKeysDifferentMacs)
{
    const auto a = hmacSha256(bytes("k1"), bytes("m"));
    const auto b = hmacSha256(bytes("k2"), bytes("m"));
    EXPECT_NE(a, b);
}

// Parameterized length sweep: incremental == one-shot at all sizes.
class Sha256LengthSweep
    : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(Sha256LengthSweep, TwoPartSplitMatches)
{
    Rng rng(GetParam());
    std::vector<std::uint8_t> data(GetParam());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next32());
    const auto oneshot = Sha256::digest(data);
    Sha256 inc;
    const std::size_t half = data.size() / 2;
    inc.update({data.data(), half});
    inc.update({data.data() + half, data.size() - half});
    EXPECT_EQ(inc.finalize(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Sha256LengthSweep,
                         ::testing::Values(0, 1, 31, 32, 33, 63, 64,
                                           65, 127, 128, 1000, 4096));

} // namespace
} // namespace hcc::crypto
