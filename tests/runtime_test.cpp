/**
 * @file
 * Tests for the public runtime API: allocation/free accounting,
 * transfers, kernel launch semantics (KLO/LQT/KQT), streams, graphs,
 * synchronization, and the base-vs-CC cost ratios the paper reports
 * at the API level.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "runtime/context.hpp"
#include "runtime/host_costs.hpp"
#include "trace/analysis.hpp"

namespace hcc::rt {
namespace {

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.cc = false;
    cfg.seed = 7;
    return cfg;
}

SystemConfig
ccConfig()
{
    SystemConfig cfg;
    cfg.cc = true;
    cfg.seed = 7;
    return cfg;
}

/** Duration of the single event of @p kind in the trace. */
SimTime
onlyEventDuration(const Context &ctx, trace::EventKind kind)
{
    const auto evs = ctx.tracer().ofKind(kind);
    EXPECT_EQ(evs.size(), 1u) << trace::eventKindName(kind);
    return evs.empty() ? 0 : evs.front().duration();
}

// ------------------------------------------------------- allocation

TEST(ContextAlloc, DeviceAllocCcRatioInPaperBand)
{
    // Paper: cudaMalloc is 5.67x slower under CC.
    Context base(baseConfig()), cc(ccConfig());
    base.mallocDevice(size::mib(64));
    cc.mallocDevice(size::mib(64));
    const double r = static_cast<double>(
        onlyEventDuration(cc, trace::EventKind::MallocDevice))
        / static_cast<double>(
            onlyEventDuration(base, trace::EventKind::MallocDevice));
    EXPECT_NEAR(r, 5.67, 1.2);
}

TEST(ContextAlloc, HostAllocCcRatioInPaperBand)
{
    // Paper: cudaMallocHost is 5.72x slower under CC.
    Context base(baseConfig()), cc(ccConfig());
    base.mallocHost(size::mib(64));
    cc.mallocHost(size::mib(64));
    const double r = static_cast<double>(
        onlyEventDuration(cc, trace::EventKind::MallocHost))
        / static_cast<double>(
            onlyEventDuration(base, trace::EventKind::MallocHost));
    EXPECT_NEAR(r, 5.72, 1.2);
}

TEST(ContextAlloc, FreeCcRatioInPaperBand)
{
    // Paper: cudaFree is 10.54x slower under CC.
    Context base(baseConfig()), cc(ccConfig());
    auto b1 = base.mallocDevice(size::mib(64));
    auto b2 = cc.mallocDevice(size::mib(64));
    base.free(b1);
    cc.free(b2);
    const double r = static_cast<double>(
        onlyEventDuration(cc, trace::EventKind::Free))
        / static_cast<double>(
            onlyEventDuration(base, trace::EventKind::Free));
    EXPECT_NEAR(r, 10.54, 2.0);
}

TEST(ContextAlloc, ManagedAllocRatios)
{
    // Paper: managed alloc is 0.51x the non-UVM alloc (base), and
    // 5.43x slower under CC than base managed.
    Context base(baseConfig()), base2(baseConfig()), cc(ccConfig());
    base.mallocDevice(size::mib(64));
    base2.mallocManaged(size::mib(64));
    cc.mallocManaged(size::mib(64));
    const auto dev_alloc =
        onlyEventDuration(base, trace::EventKind::MallocDevice);
    const auto managed_base =
        onlyEventDuration(base2, trace::EventKind::MallocManaged);
    const auto managed_cc =
        onlyEventDuration(cc, trace::EventKind::MallocManaged);
    EXPECT_NEAR(static_cast<double>(managed_base)
                    / static_cast<double>(dev_alloc),
                0.51, 0.15);
    EXPECT_NEAR(static_cast<double>(managed_cc)
                    / static_cast<double>(managed_base),
                5.43, 1.2);
}

TEST(ContextAlloc, ManagedFreeRatios)
{
    // Paper: managed free is 3.13x the non-UVM free (base) and CC-UVM
    // free reaches 18.20x the base non-UVM free.
    Context base(baseConfig()), base2(baseConfig()), cc(ccConfig());
    auto d = base.mallocDevice(size::mib(128));
    base.free(d);
    auto m = base2.mallocManaged(size::mib(128));
    base2.free(m);
    auto mc = cc.mallocManaged(size::mib(128));
    cc.free(mc);
    const auto free_base =
        onlyEventDuration(base, trace::EventKind::Free);
    const auto free_managed =
        onlyEventDuration(base2, trace::EventKind::Free);
    const auto free_managed_cc =
        onlyEventDuration(cc, trace::EventKind::Free);
    EXPECT_NEAR(static_cast<double>(free_managed)
                    / static_cast<double>(free_base),
                3.13, 1.0);
    EXPECT_NEAR(static_cast<double>(free_managed_cc)
                    / static_cast<double>(free_base),
                18.20, 4.0);
}

TEST(ContextAlloc, PageableIsFreeAndUntracked)
{
    Context ctx(baseConfig());
    const SimTime before = ctx.now();
    auto b = ctx.hostPageable(size::gib(1));
    EXPECT_EQ(ctx.now(), before);
    EXPECT_TRUE(ctx.tracer().empty());
    ctx.free(b);
    EXPECT_EQ(ctx.now(), before);
}

TEST(ContextAlloc, DoubleFreeIsFatal)
{
    Context ctx(baseConfig());
    auto b = ctx.mallocDevice(4096);
    auto copy = b;
    ctx.free(b);
    EXPECT_THROW(ctx.free(copy), FatalError);
}

TEST(ContextAlloc, LeakAccounting)
{
    Context ctx(baseConfig());
    auto a = ctx.mallocDevice(1);
    auto b = ctx.mallocHost(1);
    auto c = ctx.mallocManaged(1);
    EXPECT_EQ(ctx.liveAllocations(), 3u);
    ctx.free(a);
    ctx.free(b);
    ctx.free(c);
    EXPECT_EQ(ctx.liveAllocations(), 0u);
}

// -------------------------------------------------------- transfers

TEST(ContextMemcpy, H2DBandwidthMatchesFig4a)
{
    Context base(baseConfig()), cc(ccConfig());
    const Bytes b = size::mib(512);

    auto bh = base.mallocHost(b);
    auto bd = base.mallocDevice(b);
    base.memcpy(bd, bh, b);
    const double base_gbps = bandwidthGBs(
        b, onlyEventDuration(base, trace::EventKind::MemcpyH2D));
    EXPECT_NEAR(base_gbps, calib::kPciePinnedGBs, 2.0);

    auto ch = cc.mallocHost(b);
    auto cd = cc.mallocDevice(b);
    cc.memcpy(cd, ch, b);
    // Pinned under CC is reclassified as managed D2D (Fig. 5).
    const double cc_gbps = bandwidthGBs(
        b, onlyEventDuration(cc, trace::EventKind::MemcpyD2D));
    EXPECT_NEAR(cc_gbps, 3.03, 0.4);
}

TEST(ContextMemcpy, BlockingSemantics)
{
    Context ctx(baseConfig());
    auto h = ctx.hostPageable(size::mib(64));
    auto d = ctx.mallocDevice(size::mib(64));
    const SimTime before = ctx.now();
    ctx.memcpy(d, h, size::mib(64));
    EXPECT_GE(ctx.now() - before, transferTime(size::mib(64),
                                               calib::kHostMemcpyGBs));
}

TEST(ContextMemcpy, AsyncReturnsImmediately)
{
    Context ctx(baseConfig());
    auto h = ctx.mallocHost(size::mib(256));
    auto d = ctx.mallocDevice(size::mib(256));
    auto s = ctx.createStream();
    const SimTime before = ctx.now();
    ctx.memcpyAsync(d, h, size::mib(256), s);
    EXPECT_LT(ctx.now() - before, time::us(50.0));
    const SimTime at_issue = ctx.now();
    ctx.streamSynchronize(s);
    EXPECT_GT(ctx.now(), at_issue);
}

TEST(ContextMemcpy, OversizeIsFatal)
{
    Context ctx(baseConfig());
    auto h = ctx.hostPageable(100);
    auto d = ctx.mallocDevice(50);
    EXPECT_THROW(ctx.memcpy(d, h, 100), FatalError);
}

TEST(ContextMemcpy, HostToHostIsFatal)
{
    Context ctx(baseConfig());
    auto a = ctx.hostPageable(100);
    auto b = ctx.hostPageable(100);
    EXPECT_THROW(ctx.memcpy(a, b, 10), FatalError);
}

TEST(ContextMemcpy, D2DStaysOnDevice)
{
    Context ctx(baseConfig());
    auto a = ctx.mallocDevice(size::mib(64));
    auto b = ctx.mallocDevice(size::mib(64));
    ctx.memcpy(b, a, size::mib(64));
    EXPECT_EQ(ctx.tracer().ofKind(trace::EventKind::MemcpyD2D).size(),
              1u);
}

TEST(ContextMemcpy, ManagedPrefetchMakesKernelFaultFree)
{
    Context ctx(baseConfig());
    auto m = ctx.mallocManaged(size::mib(8));
    // Managed data starts host-resident, so the first kernel touch
    // faults pages over; after that the next kernel is fault-free.
    gpu::KernelDesc k{"uvm_k", {}, time::us(30), size::mib(8),
                      m.uvm_handle};
    ctx.launchKernel(k);
    ctx.deviceSynchronize();
    const auto kernels = ctx.tracer().ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(kernels.size(), 1u);
    const SimTime first_ket = kernels[0].duration();

    ctx.launchKernel(k);
    ctx.deviceSynchronize();
    const auto again = ctx.tracer().ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(again.size(), 2u);
    EXPECT_LT(again[1].duration(), first_ket / 2)
        << "second touch must not re-fault";
}

// ---------------------------------------------------------- kernels

TEST(ContextLaunch, KloInPaperBands)
{
    // Warm (steady-state) KLO: base ~7us; CC/base ~1.4x.
    auto run = [](const SystemConfig &cfg) {
        Context ctx(cfg);
        gpu::KernelDesc k{"k", {}, time::us(50), 0, 0};
        for (int i = 0; i < 300; ++i)
            ctx.launchKernel(k);
        ctx.deviceSynchronize();
        auto m = trace::analyze(ctx.tracer());
        // Skip the first-launch window when averaging warm KLO.
        const auto klos = m.klo.values();
        double sum = 0.0;
        for (std::size_t i = 10; i < klos.size(); ++i)
            sum += klos[i];
        return sum / static_cast<double>(klos.size() - 10);
    };
    const double base_klo = run(baseConfig());
    const double cc_klo = run(ccConfig());
    EXPECT_NEAR(base_klo, static_cast<double>(time::us(7.0)),
                static_cast<double>(time::us(1.5)));
    EXPECT_NEAR(cc_klo / base_klo, 1.42, 0.25);
}

TEST(ContextLaunch, FirstLaunchSpikesUnderCc)
{
    // Fig. 12a: the first launches of a kernel are much slower, and
    // catastrophically so under CC (drives dwt2d's 5.31x).
    Context ctx(ccConfig());
    gpu::KernelDesc k{"fresh", {}, time::us(10), 0, 0,
                      size::mib(8)};
    for (int i = 0; i < 20; ++i)
        ctx.launchKernel(k);
    const auto launches = ctx.tracer().ofKind(trace::EventKind::Launch);
    ASSERT_EQ(launches.size(), 20u);
    EXPECT_GT(launches[0].duration(), 10 * launches[19].duration());
}

TEST(ContextLaunch, KqtHigherUnderCc)
{
    auto run = [](const SystemConfig &cfg) {
        Context ctx(cfg);
        gpu::KernelDesc k{"k", {}, time::us(5), 0, 0};
        ctx.launchKernel(k);
        ctx.launchKernel(k);
        ctx.deviceSynchronize();
        const auto m = trace::analyze(ctx.tracer());
        return m.kqt.mean();
    };
    const double base_kqt = run(baseConfig());
    const double cc_kqt = run(ccConfig());
    EXPECT_GT(cc_kqt / base_kqt, 1.8)
        << "few-launch KQT amplification (2mm-style)";
}

TEST(ContextLaunch, LaunchCorrelatesWithKernel)
{
    Context ctx(baseConfig());
    gpu::KernelDesc k{"k", {}, time::us(10), 0, 0};
    ctx.launchKernel(k);
    const auto launches = ctx.tracer().ofKind(trace::EventKind::Launch);
    const auto kernels = ctx.tracer().ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(launches.size(), 1u);
    ASSERT_EQ(kernels.size(), 1u);
    EXPECT_EQ(launches[0].correlation, kernels[0].correlation);
    EXPECT_GE(kernels[0].start, launches[0].end)
        << "kernel cannot start before its launch completes";
}

TEST(ContextLaunch, SameStreamKernelsSerialize)
{
    Context ctx(baseConfig());
    gpu::KernelDesc k{"k", {}, time::ms(1.0), 0, 0};
    ctx.launchKernel(k);
    ctx.launchKernel(k);
    const auto kernels = ctx.tracer().ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(kernels.size(), 2u);
    EXPECT_GE(kernels[1].start, kernels[0].end);
}

TEST(ContextLaunch, DifferentStreamsOverlap)
{
    Context ctx(baseConfig());
    auto s1 = ctx.createStream();
    auto s2 = ctx.createStream();
    gpu::KernelDesc k{"k", {}, time::ms(10.0), 0, 0};
    ctx.launchKernel(k, s1);
    ctx.launchKernel(k, s2);
    const auto kernels = ctx.tracer().ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(kernels.size(), 2u);
    EXPECT_LT(kernels[1].start, kernels[0].end)
        << "cross-stream kernels should overlap on the device";
}

// ----------------------------------------------------------- graphs

TEST(ContextGraph, GraphReplacesPerKernelLaunches)
{
    Context ctx(baseConfig());
    gpu::KernelDesc k{"k", {}, time::us(20), 0, 0};
    auto g = ctx.instantiateGraph("loop",
                                  std::vector<gpu::KernelDesc>(50, k));
    ctx.launchGraph(g);
    ctx.deviceSynchronize();
    const auto m = trace::analyze(ctx.tracer());
    EXPECT_EQ(m.launches, 1);
    EXPECT_EQ(m.kernels, 50);
}

TEST(ContextGraph, GraphBeatsLoopForManySmallKernels)
{
    gpu::KernelDesc k{"k", {}, time::us(4), 0, 0};
    const int n = 256;
    const int iterations = 20;  // instantiation amortizes over replays

    Context loop(ccConfig());
    for (int it = 0; it < iterations; ++it) {
        for (int i = 0; i < n; ++i)
            loop.launchKernel(k);
        loop.deviceSynchronize();
    }

    Context graphed(ccConfig());
    auto g = graphed.instantiateGraph(
        "fused", std::vector<gpu::KernelDesc>(n, k));
    for (int it = 0; it < iterations; ++it) {
        graphed.launchGraph(g);
        graphed.deviceSynchronize();
    }

    EXPECT_LT(graphed.now(), loop.now())
        << "launch fusion must win for low-KLR loops under CC";
}

TEST(ContextGraph, EmptyGraphIsFatal)
{
    Context ctx(baseConfig());
    EXPECT_THROW(ctx.instantiateGraph("empty", {}), FatalError);
}

// ------------------------------------------------------------- sync

TEST(ContextSync, DeviceSynchronizeDrainsAllStreams)
{
    Context ctx(baseConfig());
    auto s1 = ctx.createStream();
    auto s2 = ctx.createStream();
    gpu::KernelDesc k{"k", {}, time::ms(2.0), 0, 0};
    ctx.launchKernel(k, s1);
    ctx.launchKernel(k, s2);
    ctx.deviceSynchronize();
    const auto kernels = ctx.tracer().ofKind(trace::EventKind::Kernel);
    for (const auto &e : kernels)
        EXPECT_LE(e.end, ctx.now());
}

TEST(ContextSync, SyncOnIdleDeviceIsCheap)
{
    Context ctx(baseConfig());
    const SimTime before = ctx.now();
    ctx.deviceSynchronize();
    EXPECT_LT(ctx.now() - before, time::us(10.0));
}

// ----------------------------------------------------- cc lifecycle

TEST(ContextCc, SpdmHandshakePaidOnce)
{
    Context cc(ccConfig());
    EXPECT_GE(cc.now(), tee::SpdmSession::kHandshakeCost);
    Context base(baseConfig());
    EXPECT_EQ(base.now(), 0);
}

TEST(ContextCc, TdxStatsPopulatedByApiCalls)
{
    Context cc(ccConfig());
    auto d = cc.mallocDevice(size::mib(4));
    cc.free(d);
    EXPECT_GT(cc.tdx().stats().hypercalls, 0u);
    EXPECT_GT(cc.tdx().stats().pages_converted, 0u);
}

TEST(ContextCc, ChannelOnlyExistsUnderCc)
{
    Context base(baseConfig()), cc(ccConfig());
    EXPECT_EQ(base.channel(), nullptr);
    EXPECT_NE(cc.channel(), nullptr);
}

// ------------------------------------------------ end-to-end sanity

TEST(ContextEndToEnd, CopyComputeCopyAppSlowerUnderCc)
{
    auto run = [](const SystemConfig &cfg) {
        Context ctx(cfg);
        const SimTime app_start = ctx.now();
        auto h = ctx.hostPageable(size::mib(128));
        auto d = ctx.mallocDevice(size::mib(128));
        ctx.memcpy(d, h, size::mib(128));
        gpu::KernelDesc k{"work", {}, time::ms(3.0), 0, 0};
        for (int i = 0; i < 20; ++i)
            ctx.launchKernel(k);
        ctx.deviceSynchronize();
        ctx.memcpy(h, d, size::mib(128));
        ctx.free(d);
        return ctx.now() - app_start;
    };
    const SimTime base_t = run(baseConfig());
    const SimTime cc_t = run(ccConfig());
    EXPECT_GT(cc_t, base_t);
    // Compute dominates; slowdown should be bounded.
    EXPECT_LT(static_cast<double>(cc_t) / static_cast<double>(base_t),
              3.0);
}

} // namespace
} // namespace hcc::rt
