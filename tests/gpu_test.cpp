/**
 * @file
 * Tests for the GPU device model: command processor, compute engine
 * concurrency, copy paths, UVM fault economics, and kernel scheduling.
 */

#include <gtest/gtest.h>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "gpu/command_processor.hpp"
#include "gpu/compute_engine.hpp"
#include "gpu/copy_engine.hpp"
#include "gpu/gpu_device.hpp"
#include "gpu/kernel.hpp"
#include "gpu/uvm.hpp"
#include "pcie/link.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"

namespace hcc::gpu {
namespace {

/** Shared fixture wiring a link + TDX + optional channel. */
class GpuFixture : public ::testing::Test
{
  protected:
    TransferContext
    baseCtx()
    {
        return TransferContext{link_, vm_tdx_, nullptr};
    }

    TransferContext
    ccCtx()
    {
        if (!channel_) {
            channel_ = std::make_unique<tee::SecureChannel>(
                tee::ChannelConfig{}, tee::SpdmSession::establish(1));
        }
        return TransferContext{link_, td_tdx_, channel_.get()};
    }

    pcie::PcieLink link_;
    tee::TdxModule vm_tdx_{false};
    tee::TdxModule td_tdx_{true};
    std::unique_ptr<tee::SecureChannel> channel_;
};

// ------------------------------------------------------ roofline

TEST(Roofline, MemoryBoundKernel)
{
    // Stream 1 GiB through HBM with negligible compute: duration is
    // the HBM time.
    KernelDesc k;
    k.name = "streaming";
    k.dims = {1024, 1, 1, 256, 1, 1};
    k.mem_bytes = size::gib(1);
    const SimTime d = rooflineDuration(k);
    EXPECT_NEAR(bandwidthGBs(size::gib(1), d), calib::kHbmGBs,
                calib::kHbmGBs * 0.02);
}

TEST(Roofline, ComputeBoundKernel)
{
    // A dense GEMM-like kernel: 10 TFLOP at full occupancy.
    KernelDesc k;
    k.name = "gemm_like";
    k.dims = {4096, 1, 1, 256, 1, 1};
    k.gflops = 10000.0;
    k.mem_bytes = size::mib(64);
    const SimTime d = rooflineDuration(k);
    const double peak =
        static_cast<double>(calib::kNumSms) * calib::kSmGflops;
    EXPECT_NEAR(time::toSec(d), 10000.0 / peak, 0.02);
}

TEST(Roofline, SmallLaunchLosesOccupancy)
{
    KernelDesc small, big;
    small.gflops = big.gflops = 100.0;
    small.dims = {1, 1, 1, 128, 1, 1};      // one block
    big.dims = {4096, 1, 1, 256, 1, 1};     // device-filling
    EXPECT_GT(rooflineDuration(small), 10 * rooflineDuration(big));
}

TEST(Roofline, FloorForDegenerateKernels)
{
    KernelDesc k;
    EXPECT_GE(rooflineDuration(k), time::us(1.0));
}

TEST_F(GpuFixture, RooflineKernelExecutesWhenDurationOmitted)
{
    GpuDevice dev;
    auto ctx = baseCtx();
    KernelDesc k;
    k.name = "roofline_k";
    k.dims = {4096, 1, 1, 256, 1, 1};
    k.mem_bytes = size::mib(512);
    const auto s = dev.executeKernel(0, 0, k, ctx);
    EXPECT_NEAR(static_cast<double>(s.ket()),
                static_cast<double>(
                    transferTime(size::mib(512), calib::kHbmGBs)),
                static_cast<double>(time::us(20.0)));
}

// ------------------------------------------------- command processor

TEST(CommandProcessor, CcDecodeIsSlower)
{
    // Decode times are jittered; compare means over many commands.
    CommandProcessor base(false), cc(true);
    double b_sum = 0.0, c_sum = 0.0;
    SimTime b_t = 0, c_t = 0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        const auto b = base.decode(b_t, CommandKind::KernelLaunch);
        const auto c = cc.decode(c_t, CommandKind::KernelLaunch);
        b_sum += static_cast<double>(b.duration());
        c_sum += static_cast<double>(c.duration());
        b_t = b.end;
        c_t = c.end;
    }
    EXPECT_NEAR(b_sum / n,
                static_cast<double>(calib::kCmdProcDecodeBase),
                static_cast<double>(calib::kCmdProcDecodeBase) * 0.1);
    EXPECT_NEAR(c_sum / n,
                static_cast<double>(calib::kCmdProcDecodeCc),
                static_cast<double>(calib::kCmdProcDecodeCc) * 0.1);
    EXPECT_GT(c_sum, b_sum * 2.0);
}

TEST(CommandProcessor, DecoderSerializesCommands)
{
    CommandProcessor cp(false);
    const auto a = cp.decode(0, CommandKind::KernelLaunch);
    const auto b = cp.decode(0, CommandKind::CopyH2D);
    EXPECT_EQ(b.start, a.end);
    EXPECT_EQ(cp.commandsDecoded(), 2u);
}

TEST(CommandProcessor, SemaphorePacketsAreLighter)
{
    CommandProcessor cp(false);
    const auto full = cp.decode(0, CommandKind::KernelLaunch);
    const auto sem = cp.decode(full.end, CommandKind::Semaphore);
    EXPECT_LT(sem.duration(), full.duration());
}

// ---------------------------------------------------- compute engine

TEST(ComputeEngineTest, ConcurrentKernelsOverlap)
{
    ComputeEngine ce(4);
    for (int i = 0; i < 4; ++i) {
        const auto iv = ce.execute(0, time::ms(1.0));
        EXPECT_EQ(iv.start, 0) << "slot " << i << " should be free";
    }
    const auto fifth = ce.execute(0, time::ms(1.0));
    EXPECT_EQ(fifth.start, time::ms(1.0)) << "fifth kernel must queue";
}

// ------------------------------------------------------- copy engine

TEST_F(GpuFixture, PinnedBeatsPageableInBase)
{
    CopyEngine ce;
    auto ctx = baseCtx();
    const Bytes b = size::mib(256);
    const auto pinned = ce.copy(0, b, pcie::Direction::HostToDevice,
                                HostMemKind::Pinned, ctx);
    CopyEngine ce2;
    const auto pageable = ce2.copy(
        0, b, pcie::Direction::HostToDevice, HostMemKind::Pageable,
        ctx);
    EXPECT_LT(pinned.total.duration(), pageable.total.duration());
    const double pinned_gbps = bandwidthGBs(b, pinned.total.duration());
    EXPECT_NEAR(pinned_gbps, calib::kPciePinnedGBs, 1.0);
    const double pageable_gbps =
        bandwidthGBs(b, pageable.total.duration());
    EXPECT_NEAR(pageable_gbps, calib::kHostMemcpyGBs, 1.5)
        << "pageable is staged-memcpy-bound";
}

TEST_F(GpuFixture, CcErasesThePinnedAdvantage)
{
    // Observation 1: pinned == pageable bandwidth under CC.  Use
    // fully independent links/channels so the two transfers do not
    // contend.
    auto ctx = ccCtx();
    CopyEngine ce;
    const Bytes b = size::mib(256);
    const auto pinned = ce.copy(0, b, pcie::Direction::HostToDevice,
                                HostMemKind::Pinned, ctx);
    pcie::PcieLink link2;
    tee::SecureChannel ch2(tee::ChannelConfig{},
                           tee::SpdmSession::establish(2));
    TransferContext ctx2{link2, td_tdx_, &ch2};
    CopyEngine ce2;
    const auto pageable = ce2.copy(
        0, b, pcie::Direction::HostToDevice, HostMemKind::Pageable,
        ctx2);
    const double r =
        static_cast<double>(pinned.total.duration())
        / static_cast<double>(pageable.total.duration());
    EXPECT_NEAR(r, 1.0, 0.05);
}

TEST_F(GpuFixture, CcPinnedCopyFlaggedAsEncryptedPaging)
{
    auto ctx = ccCtx();
    CopyEngine ce;
    const auto pin = ce.copy(0, size::mib(1),
                             pcie::Direction::HostToDevice,
                             HostMemKind::Pinned, ctx);
    EXPECT_TRUE(pin.encrypted_paging);
    const auto page = ce.copy(pin.total.end, size::mib(1),
                              pcie::Direction::HostToDevice,
                              HostMemKind::Pageable, ctx);
    EXPECT_FALSE(page.encrypted_paging);
}

TEST_F(GpuFixture, D2DUsesHbmBandwidth)
{
    CopyEngine ce;
    auto ctx = baseCtx();
    const Bytes b = size::gib(1);
    const auto t = ce.copyD2D(0, b, ctx);
    EXPECT_GT(bandwidthGBs(b, t.total.duration()), 1000.0);
}

// -------------------------------------------------------------- uvm

TEST_F(GpuFixture, UvmFirstTouchFaultsSecondTouchFree)
{
    UvmManager uvm;
    auto ctx = baseCtx();
    const auto h = uvm.createAllocation(size::mib(16));
    const auto first = uvm.touchOnDevice(h, size::mib(16), ctx);
    EXPECT_GT(first.added, 0);
    EXPECT_GT(first.batches, 0);
    const auto second = uvm.touchOnDevice(h, size::mib(16), ctx);
    EXPECT_EQ(second.added, 0);
    EXPECT_EQ(second.batches, 0);
    EXPECT_EQ(uvm.residentBytes(h), size::mib(16));
}

TEST_F(GpuFixture, UvmInvalidateForcesRefault)
{
    UvmManager uvm;
    auto ctx = baseCtx();
    const auto h = uvm.createAllocation(size::mib(4));
    uvm.touchOnDevice(h, size::mib(4), ctx);
    uvm.invalidateDeviceResidency(h);
    const auto again = uvm.touchOnDevice(h, size::mib(4), ctx);
    EXPECT_GT(again.added, 0);
}

TEST_F(GpuFixture, UvmMarkResidentSkipsFaults)
{
    UvmManager uvm;
    auto ctx = baseCtx();
    const auto h = uvm.createAllocation(size::mib(4));
    uvm.markResident(h, size::mib(4));
    const auto svc = uvm.touchOnDevice(h, size::mib(4), ctx);
    EXPECT_EQ(svc.added, 0);
}

TEST_F(GpuFixture, EncryptedPagingIsCatastrophicallySlower)
{
    UvmManager uvm;
    auto base = baseCtx();
    auto cc = ccCtx();
    const Bytes footprint = size::mib(32);
    const auto h1 = uvm.createAllocation(footprint);
    const auto h2 = uvm.createAllocation(footprint);
    const auto b = uvm.touchOnDevice(h1, footprint, base);
    const auto c = uvm.touchOnDevice(h2, footprint, cc);
    const double ratio = static_cast<double>(c.added)
        / static_cast<double>(b.added);
    // Per-MiB: base ~ 4 batches x ~40us; CC ~ 128 batches x ~90us.
    EXPECT_GT(ratio, 20.0);
    EXPECT_GT(c.batches, b.batches * 10);
}

TEST_F(GpuFixture, UvmBatchingMatchesCalibration)
{
    UvmManager uvm;
    auto base = baseCtx();
    const Bytes bytes = size::mib(1);  // 256 pages
    const auto h = uvm.createAllocation(bytes);
    const auto svc = uvm.touchOnDevice(h, bytes, base);
    EXPECT_EQ(svc.batches, 256 / calib::kUvmBatchPagesBase);
    EXPECT_EQ(svc.migrated, bytes);
}

TEST_F(GpuFixture, UvmTouchClampedToAllocation)
{
    UvmManager uvm;
    auto ctx = baseCtx();
    const auto h = uvm.createAllocation(size::kib(8));
    const auto svc = uvm.touchOnDevice(h, size::gib(1), ctx);
    EXPECT_EQ(svc.migrated, size::kib(8));
}

TEST_F(GpuFixture, UvmUnknownHandleIsFatal)
{
    UvmManager uvm;
    auto ctx = baseCtx();
    EXPECT_THROW(uvm.touchOnDevice(999, 4096, ctx), FatalError);
    EXPECT_THROW(uvm.freeAllocation(999), FatalError);
    EXPECT_THROW(uvm.residentBytes(999), FatalError);
}

// ------------------------------------------------------- gpu device

TEST_F(GpuFixture, KernelKqtReflectsDecodeAndEngineWait)
{
    GpuDevice dev;
    auto ctx = baseCtx();
    KernelDesc k{"k", {}, time::us(100), 0, 0};
    const auto s = dev.executeKernel(0, 0, k, ctx);
    EXPECT_EQ(s.enqueued, 0);
    EXPECT_GE(s.kqt(), calib::kCmdProcDecodeBase);
    EXPECT_NEAR(static_cast<double>(s.ket()),
                static_cast<double>(time::us(100)), 1.0);
}

TEST_F(GpuFixture, StreamOrderingDelaysKernel)
{
    GpuDevice dev;
    auto ctx = baseCtx();
    KernelDesc k{"k", {}, time::us(10), 0, 0};
    const auto s = dev.executeKernel(0, time::ms(5), k, ctx);
    EXPECT_GE(s.start, time::ms(5));
}

TEST_F(GpuFixture, NonUvmKetNearlyIdenticalUnderCc)
{
    // Observation 5: +0.48% mean drift.
    GpuConfig base_cfg, cc_cfg;
    base_cfg.seed = cc_cfg.seed = 7;
    cc_cfg.cc_mode = true;
    GpuDevice base_dev{base_cfg};
    GpuDevice cc_dev{cc_cfg};
    auto bctx = baseCtx();
    auto cctx = ccCtx();
    double sum_ratio = 0.0;
    const int n = 400;
    SimTime t_base = 0, t_cc = 0;
    for (int i = 0; i < n; ++i) {
        KernelDesc k{"k", {}, time::us(200), 0, 0};
        const auto sb = base_dev.executeKernel(t_base, t_base, k, bctx);
        const auto sc = cc_dev.executeKernel(t_cc, t_cc, k, cctx);
        sum_ratio += static_cast<double>(sc.ket())
            / static_cast<double>(sb.ket());
        t_base = sb.end;
        t_cc = sc.end;
    }
    const double mean_ratio = sum_ratio / n;
    EXPECT_NEAR(mean_ratio, 1.0048, 0.003);
}

TEST_F(GpuFixture, UvmKernelKetIncludesFaultService)
{
    GpuDevice dev;
    auto ctx = baseCtx();
    const auto h = dev.uvm().createAllocation(size::mib(8));
    KernelDesc k{"uvm_k", {}, time::us(50), size::mib(8), h};
    const auto s = dev.executeKernel(0, 0, k, ctx);
    EXPECT_GT(s.uvm_service, 0);
    EXPECT_GT(s.fault_batches, 0);
    EXPECT_GE(s.ket(), s.uvm_service + time::us(50) - time::us(1));
}

TEST_F(GpuFixture, CopyThroughDeviceIncludesDecode)
{
    GpuDevice dev;
    auto ctx = baseCtx();
    const auto t = dev.executeCopy(0, size::mib(1),
                                   pcie::Direction::HostToDevice,
                                   HostMemKind::Pinned, ctx);
    EXPECT_GT(t.total.duration(),
              link_.dmaDuration(size::mib(1)));
}

} // namespace
} // namespace hcc::gpu
