/**
 * @file
 * Tests for the open-loop serving simulator: arrival-trace
 * determinism, nearest-rank percentiles, burst-window parsing and
 * shaping, continuous-batching scheduler edge cases (lone request,
 * KV-budget preemption), the paper-shaped CC-vs-native goodput gap
 * widening with load, and byte-identical output across worker
 * counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/log.hpp"
#include "serve/serve.hpp"

namespace hcc::serve {
namespace {

/** A spec small enough that a full cell serves in milliseconds. */
ServeSpec
tinySpec()
{
    ServeSpec spec;
    spec.requests = 12;
    spec.max_batch = 4;
    spec.prompt_len = 64;
    spec.gen_len = 8;
    spec.loads = {8.0};
    spec.cc_modes = {false};
    return spec;
}

// -------------------------------------------------------- arrivals

TEST(ServeArrivals, TraceIsDeterministicAndOrdered)
{
    const ServeSpec spec = tinySpec();
    const auto a = buildArrivalTrace(spec, 8.0);
    const auto b = buildArrivalTrace(spec, 8.0);
    ASSERT_EQ(a.size(), static_cast<std::size_t>(spec.requests));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, static_cast<int>(i));
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        EXPECT_EQ(a[i].gen_len, b[i].gen_len);
        if (i > 0)
            EXPECT_GE(a[i].arrival, a[i - 1].arrival);
        EXPECT_GE(a[i].prompt_len, 1);
        EXPECT_GE(a[i].gen_len, 1);
    }
}

TEST(ServeArrivals, SeedAndLoadChangeTheTrace)
{
    ServeSpec spec = tinySpec();
    const auto base = buildArrivalTrace(spec, 8.0);
    const auto faster = buildArrivalTrace(spec, 32.0);
    EXPECT_LT(faster.back().arrival, base.back().arrival)
        << "4x the offered load must compress the trace";
    spec.seed = 7;
    const auto reseeded = buildArrivalTrace(spec, 8.0);
    EXPECT_NE(reseeded.back().arrival, base.back().arrival);
}

TEST(ServeArrivals, LengthsStayAroundTheMeans)
{
    const ServeSpec spec = tinySpec();
    for (const Request &r : buildArrivalTrace(spec, 8.0)) {
        EXPECT_GE(r.prompt_len, spec.prompt_len / 2);
        EXPECT_LE(r.prompt_len, spec.prompt_len * 3 / 2);
        EXPECT_GE(r.gen_len, spec.gen_len / 2);
        EXPECT_LE(r.gen_len, spec.gen_len * 3 / 2);
    }
}

TEST(ServeArrivals, BurstWindowCompressesTheTrace)
{
    ServeSpec spec = tinySpec();
    const auto plain = buildArrivalTrace(spec, 8.0);
    spec.bursts = {{0.0, 1.0, 10.0}};
    const auto burst = buildArrivalTrace(spec, 8.0);
    EXPECT_LT(burst.back().arrival, plain.back().arrival)
        << "a whole-trace 10x burst must shorten every gap";
}

TEST(ServeArrivals, ParseBurstList)
{
    const auto one = parseBurstList("0.5:0.8:4");
    ASSERT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one[0].begin, 0.5);
    EXPECT_DOUBLE_EQ(one[0].end, 0.8);
    EXPECT_DOUBLE_EQ(one[0].multiplier, 4.0);
    EXPECT_EQ(parseBurstList("0:0.25:2,0.75:1:8").size(), 2u);

    EXPECT_THROW(parseBurstList(""), hcc::FatalError);
    EXPECT_THROW(parseBurstList("0.8:0.5:4"), hcc::FatalError);
    EXPECT_THROW(parseBurstList("0.5:0.8:0"), hcc::FatalError);
    EXPECT_THROW(parseBurstList("-0.1:0.5:2"), hcc::FatalError);
    EXPECT_THROW(parseBurstList("0.5:1.5:2"), hcc::FatalError);
    EXPECT_THROW(parseBurstList("0.5:0.8"), hcc::FatalError);
    EXPECT_THROW(parseBurstList("nonsense"), hcc::FatalError);
}

// ----------------------------------------------------- percentiles

TEST(ServePercentile, NearestRankMatchesHandComputedValues)
{
    const std::vector<SimTime> ten = {10, 20, 30, 40, 50,
                                      60, 70, 80, 90, 100};
    EXPECT_EQ(percentileNearestRank(ten, 50.0), 50);
    EXPECT_EQ(percentileNearestRank(ten, 90.0), 90);
    EXPECT_EQ(percentileNearestRank(ten, 95.0), 100);
    EXPECT_EQ(percentileNearestRank(ten, 99.0), 100);
    EXPECT_EQ(percentileNearestRank(ten, 100.0), 100);
    EXPECT_EQ(percentileNearestRank(ten, 1.0), 10);

    EXPECT_EQ(percentileNearestRank({}, 95.0), 0);
    EXPECT_EQ(percentileNearestRank({42}, 50.0), 42);
    EXPECT_EQ(percentileNearestRank({42}, 99.0), 42);
}

// ------------------------------------------------------- expansion

TEST(ServeExpand, CellsFollowInputOrderAndLabels)
{
    ServeSpec spec;
    spec.loads = {8.0, 24.0};
    spec.cc_modes = {false, true};
    spec.overlaps = {tee::OverlapMode::None,
                     tee::OverlapMode::Speculative};
    EXPECT_EQ(spec.cellCount(), 8u);
    const auto cells = expandServeCells(spec);
    ASSERT_EQ(cells.size(), 8u);
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[0].label(), "l8.base");
    EXPECT_EQ(cells[1].label(), "l8.base.speculative");
    EXPECT_EQ(cells[2].label(), "l8.cc");
    EXPECT_EQ(cells[3].label(), "l8.cc.speculative");
    EXPECT_EQ(cells[4].label(), "l24.base");
    EXPECT_DOUBLE_EQ(cells[4].load, 24.0);
    EXPECT_TRUE(cells[6].cc);
}

// ------------------------------------------------------- scheduler

TEST(ServeScheduler, LoneRequestCompletesWithoutPreemption)
{
    ServeSpec spec = tinySpec();
    spec.requests = 1;
    const auto cells = expandServeCells(spec);
    ASSERT_EQ(cells.size(), 1u);
    const ServePoint p = runServeCell(spec, cells[0]);
    EXPECT_EQ(p.requests, 1);
    EXPECT_EQ(p.completed, 1);
    EXPECT_EQ(p.preempted, 0);
    EXPECT_EQ(p.prefills, 1);
    EXPECT_GT(p.tokens, 0);
    EXPECT_GT(p.makespan, 0);
    EXPECT_GT(p.ttft_p50, 0);
    EXPECT_GT(p.tpot_p50, 0);
    EXPECT_GE(p.ttft_p99, p.ttft_p50);
    EXPECT_GE(p.tpot_p99, p.tpot_p50);
}

TEST(ServeScheduler, EveryRequestRetiresUnderContention)
{
    ServeSpec spec = tinySpec();
    spec.loads = {64.0};     // all requests queue near t=0
    const auto cells = expandServeCells(spec);
    const ServePoint p = runServeCell(spec, cells[0]);
    EXPECT_EQ(p.completed, spec.requests);
    EXPECT_GE(p.prefills, spec.requests)
        << "every request must prefill at least once";
    EXPECT_GT(p.goodput_tok_s, 0.0);
}

TEST(ServeScheduler, KvBudgetExhaustionPreemptsAndStillCompletes)
{
    ServeSpec spec = tinySpec();
    spec.requests = 8;
    spec.prompt_len = 16;
    spec.gen_len = 128;
    // Prompts are cheap (<1 MiB of KV), so a full batch admits under
    // the 4 MiB budget — but each session grows 2-6 MiB of decode KV,
    // so growth must overflow the budget and evict young sessions.
    spec.kv_budget_bytes = size::mib(4);
    spec.loads = {64.0};
    const auto cells = expandServeCells(spec);
    const ServePoint p = runServeCell(spec, cells[0]);
    EXPECT_EQ(p.completed, spec.requests);
    EXPECT_GT(p.preempted, 0)
        << "a 12 MiB budget cannot hold two 8 MiB sessions";
    EXPECT_GT(p.prefills, 0);
    EXPECT_GT(p.kv_migrated_bytes, 0u);
}

TEST(ServeScheduler, CcPaysThePagingAndLaunchTax)
{
    ServeSpec spec = tinySpec();
    spec.cc_modes = {false, true};
    const auto cells = expandServeCells(spec);
    ASSERT_EQ(cells.size(), 2u);
    const ServePoint base = runServeCell(spec, cells[0]);
    const ServePoint cc = runServeCell(spec, cells[1]);
    EXPECT_EQ(base.completed, spec.requests);
    EXPECT_EQ(cc.completed, spec.requests);
    EXPECT_GT(cc.makespan, base.makespan);
    EXPECT_GT(cc.ttft_p95, base.ttft_p95);
    EXPECT_LT(cc.goodput_tok_s, base.goodput_tok_s);
    EXPECT_GE(cc.kv_fault_batches, base.kv_fault_batches)
        << "CC bounds fault batches to 2 pages, so the same KV "
           "working set needs at least as many batches";
}

TEST(ServeScheduler, CcGoodputGapWidensTowardSaturation)
{
    ServeSpec spec;
    spec.requests = 32;
    spec.max_batch = 8;
    spec.prompt_len = 128;
    spec.gen_len = 16;
    spec.kv_budget_bytes = size::mib(64);
    spec.loads = {4.0, 16.0};
    spec.cc_modes = {false, true};
    const ServeResult r = runServe(spec, 2);
    ASSERT_TRUE(r.allOk());
    ASSERT_EQ(r.cells.size(), 4u);
    // Input order: l4.base, l4.cc, l16.base, l16.cc.
    const double gap_low = r.cells[0].point.goodput_tok_s
                           - r.cells[1].point.goodput_tok_s;
    const double gap_high = r.cells[2].point.goodput_tok_s
                            - r.cells[3].point.goodput_tok_s;
    EXPECT_GT(gap_low, 0.0);
    EXPECT_GT(gap_high, gap_low)
        << "the CC goodput deficit must widen as load approaches "
           "saturation (low " << gap_low << ", high " << gap_high
        << " tok/s)";
}

TEST(ServeScheduler, RejectsNonPositiveLoad)
{
    const ServeSpec spec = tinySpec();
    ServeCell cell;
    cell.load = 0.0;
    EXPECT_THROW(runServeCell(spec, cell), hcc::FatalError);
}

// --------------------------------------------------------- outputs

TEST(ServeOutput, ByteIdenticalAcrossWorkerCounts)
{
    ServeSpec spec = tinySpec();
    spec.loads = {8.0, 24.0};
    spec.cc_modes = {false, true};
    const ServeResult serial = runServe(spec, 1);
    const ServeResult parallel = runServe(spec, 4);
    ASSERT_TRUE(serial.allOk());
    ASSERT_TRUE(parallel.allOk());

    std::ostringstream cs, cp, js, jp, ss, sp;
    writeServeCsv(serial, cs);
    writeServeCsv(parallel, cp);
    EXPECT_EQ(cs.str(), cp.str());
    writeServeJson(serial, js);
    writeServeJson(parallel, jp);
    EXPECT_EQ(js.str(), jp.str());
    writeServeStats(serial, ss);
    writeServeStats(parallel, sp);
    EXPECT_EQ(ss.str(), sp.str());
}

TEST(ServeOutput, CsvAndJsonCarryTheSloColumns)
{
    const ServeResult r = runServe(tinySpec(), 1);
    ASSERT_TRUE(r.allOk());
    std::ostringstream csv, json, stats;
    writeServeCsv(r, csv);
    writeServeJson(r, json);
    writeServeStats(r, stats);
    EXPECT_EQ(csv.str().find("index,label,load,cc,overlap,"),
              0u);
    EXPECT_NE(csv.str().find("ttft_p95_ps"), std::string::npos);
    EXPECT_NE(csv.str().find("l8.base"), std::string::npos);
    EXPECT_NE(json.str().find("\"goodput_tok_s\""),
              std::string::npos);
    EXPECT_NE(json.str().find("\"bottleneck\""), std::string::npos);
    EXPECT_NE(stats.str().find("serve_curve"), std::string::npos);
    EXPECT_NE(stats.str().find("cell0.l8.base."),
              std::string::npos);
}

TEST(ServeOutput, FormatLoadIsShortest)
{
    EXPECT_EQ(formatLoad(8.0), "8");
    EXPECT_EQ(formatLoad(0.5), "0.5");
    EXPECT_EQ(formatLoad(24.0), "24");
}

} // namespace
} // namespace hcc::serve
