/**
 * @file
 * Integration tests: the paper's headline numbers must emerge from
 * the full simulated stack within calibrated bands, and cross-module
 * invariants (trace causality, stream ordering, TDX accounting) must
 * hold on real app runs.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/stats.hpp"
#include "perfmodel/model.hpp"
#include "runtime/context.hpp"
#include "trace/analysis.hpp"
#include "workloads/workload.hpp"

namespace hcc {
namespace {

using workloads::WorkloadParams;
using workloads::runWorkload;

rt::SystemConfig
sys(bool cc)
{
    rt::SystemConfig c;
    c.cc = cc;
    return c;
}

/** Cache of app runs shared across tests in this binary. */
struct RunCache
{
    static const workloads::WorkloadResult &
    get(const std::string &app, bool cc, bool uvm = false)
    {
        static std::map<std::string, workloads::WorkloadResult> cache;
        const std::string key =
            app + (cc ? "|cc" : "|base") + (uvm ? "|uvm" : "");
        auto it = cache.find(key);
        if (it == cache.end()) {
            WorkloadParams p;
            p.uvm = uvm;
            it = cache.emplace(key, runWorkload(app, sys(cc), p))
                     .first;
        }
        return it->second;
    }
};

// ------------------------------------------------ headline bands

TEST(PaperBands, CopyOverheadAverageAndExtremes)
{
    // Observation 3: copies average 5.80x slower under CC, max
    // 19.69x (2dconv), min 1.17x (cnn).
    std::vector<double> ratios;
    double max_r = 0.0, min_r = 1e30;
    std::string max_app, min_app;
    for (const auto &app : workloads::evaluationApps()) {
        const auto &b = RunCache::get(app, false).metrics;
        const auto &c = RunCache::get(app, true).metrics;
        const double r = static_cast<double>(c.copyTotal())
            / static_cast<double>(b.copyTotal());
        ratios.push_back(r);
        if (r > max_r) {
            max_r = r;
            max_app = app;
        }
        if (r < min_r) {
            min_r = r;
            min_app = app;
        }
    }
    EXPECT_NEAR(geomean(ratios), 5.80, 1.5);
    EXPECT_NEAR(max_r, 19.69, 4.0);
    EXPECT_EQ(max_app, "2dconv");
    EXPECT_NEAR(min_r, 1.17, 0.4);
    EXPECT_EQ(min_app, "cnn");
}

TEST(PaperBands, LaunchMetricAverages)
{
    // Observation 4: KLO 1.42x, LQT 1.43x, KQT 2.32x on average.
    std::vector<double> klo, lqt, kqt;
    for (const auto &app : workloads::evaluationApps()) {
        const auto &b = RunCache::get(app, false).metrics;
        const auto &c = RunCache::get(app, true).metrics;
        klo.push_back(c.klo.mean() / b.klo.mean());
        if (b.launches > 1) {
            lqt.push_back(c.lqt.mean() / b.lqt.mean());
            kqt.push_back(c.kqt.mean() / b.kqt.mean());
        }
    }
    EXPECT_NEAR(mean(klo), 1.42, 0.35);
    EXPECT_NEAR(mean(lqt), 1.43, 0.25);
    EXPECT_NEAR(mean(kqt), 2.32, 0.45);
}

TEST(PaperBands, Dwt2dIsTheKloOutlier)
{
    // "KLO increases by up to 5.31x in dwt2d".
    double dwt2d_r = 0.0, others_max = 0.0;
    for (const auto &app : workloads::evaluationApps()) {
        const auto &b = RunCache::get(app, false).metrics;
        const auto &c = RunCache::get(app, true).metrics;
        const double r = c.klo.mean() / b.klo.mean();
        if (app == "dwt2d")
            dwt2d_r = r;
        else
            others_max = std::max(others_max, r);
    }
    EXPECT_NEAR(dwt2d_r, 5.31, 1.3);
    EXPECT_GT(dwt2d_r, others_max);
}

TEST(PaperBands, NonUvmKetBarelyMoves)
{
    // Observation 5: +0.48% average KET under CC.
    std::vector<double> ratios;
    for (const auto &app : workloads::evaluationApps()) {
        const auto &b = RunCache::get(app, false).metrics;
        const auto &c = RunCache::get(app, true).metrics;
        ratios.push_back(c.ket.sum() / b.ket.sum());
    }
    EXPECT_NEAR(mean(ratios), 1.0048, 0.01);
}

TEST(PaperBands, UvmKetBlowup)
{
    // Observation 5: UVM base 5.29x; CC-UVM 188.87x average,
    // 1.08x (gramschm) to 164030x (2dconv).
    std::vector<double> uvm_base, uvm_cc;
    double max_cc = 0.0;
    std::string max_app;
    double gramschm_cc = 0.0;
    for (const auto &app : workloads::uvmApps()) {
        const double base_ket =
            RunCache::get(app, false).metrics.ket.sum();
        const double u =
            RunCache::get(app, false, true).metrics.ket.sum();
        const double cu =
            RunCache::get(app, true, true).metrics.ket.sum();
        uvm_base.push_back(u / base_ket);
        const double cc_r = cu / base_ket;
        uvm_cc.push_back(cc_r);
        if (cc_r > max_cc) {
            max_cc = cc_r;
            max_app = app;
        }
        if (app == "gramschm")
            gramschm_cc = cc_r;
    }
    EXPECT_NEAR(geomean(uvm_base), 5.29, 1.6);
    EXPECT_NEAR(geomean(uvm_cc), 188.87, 60.0);
    EXPECT_EQ(max_app, "2dconv");
    EXPECT_NEAR(max_cc / 164030.0, 1.0, 0.35);
    EXPECT_NEAR(gramschm_cc, 1.08, 0.06);
}

TEST(PaperBands, AllocRatiosAtApiLevel)
{
    // Fig. 6 microbenchmark multipliers.
    auto probe = [](bool cc) {
        rt::Context ctx(sys(cc));
        std::map<std::string, double> t;
        SimTime a = ctx.now();
        auto d = ctx.mallocDevice(size::mib(64));
        t["dmalloc"] = static_cast<double>(ctx.now() - a);
        a = ctx.now();
        auto h = ctx.mallocHost(size::mib(64));
        t["hmalloc"] = static_cast<double>(ctx.now() - a);
        a = ctx.now();
        ctx.free(d);
        t["free"] = static_cast<double>(ctx.now() - a);
        ctx.free(h);
        a = ctx.now();
        auto m = ctx.mallocManaged(size::mib(64));
        t["malloc_managed"] = static_cast<double>(ctx.now() - a);
        a = ctx.now();
        ctx.free(m);
        t["free_managed"] = static_cast<double>(ctx.now() - a);
        return t;
    };
    auto base = probe(false);
    auto cc = probe(true);
    EXPECT_NEAR(cc["dmalloc"] / base["dmalloc"], 5.67, 1.2);
    EXPECT_NEAR(cc["hmalloc"] / base["hmalloc"], 5.72, 1.2);
    EXPECT_NEAR(cc["free"] / base["free"], 10.54, 2.2);
    EXPECT_NEAR(cc["malloc_managed"] / base["malloc_managed"], 5.43,
                1.3);
    EXPECT_NEAR(base["malloc_managed"] / base["dmalloc"], 0.51,
                0.12);
    EXPECT_NEAR(base["free_managed"] / base["free"], 3.13, 0.8);
    // The paper's 18.20x CC-UVM free and 3.35x managed-free pair are
    // mutually inconsistent with its own 3.13x; we land between.
    EXPECT_GT(cc["free_managed"] / base["free"], 8.0);
}

TEST(PaperBands, CcTransferPeak)
{
    // Fig. 4a: 3.03 GB/s pin-h2d peak under CC; pinned == pageable.
    rt::Context cc(sys(true));
    const Bytes n = size::gib(1);
    auto pin = cc.mallocHost(n);
    auto dev = cc.mallocDevice(n);
    const SimTime t0 = cc.now();
    cc.memcpy(dev, pin, n);
    const double gbps = bandwidthGBs(n, cc.now() - t0);
    EXPECT_NEAR(gbps, 3.03, 0.25);
}

// ------------------------------------------------ trace invariants

TEST(TraceInvariants, CausalityAcrossApps)
{
    for (const auto &app : {"sc", "kmeans", "dwt2d", "2dconv"}) {
        for (bool cc : {false, true}) {
            const auto &res = RunCache::get(app, cc);
            // Kernels never start before their launch completes.
            std::map<std::uint64_t, SimTime> launch_end;
            for (const auto &e : res.trace.events()) {
                if (e.kind == trace::EventKind::Launch)
                    launch_end[e.correlation] = e.end;
            }
            for (const auto &e : res.trace.events()) {
                if (e.kind != trace::EventKind::Kernel)
                    continue;
                const auto it = launch_end.find(e.correlation);
                ASSERT_NE(it, launch_end.end());
                EXPECT_GE(e.start, it->second);
            }
        }
    }
}

TEST(TraceInvariants, SameStreamKernelsNeverOverlap)
{
    const auto &res = RunCache::get("sc", true);
    SimTime prev_end = 0;
    for (const auto &e : res.trace.events()) {
        if (e.kind != trace::EventKind::Kernel)
            continue;
        EXPECT_GE(e.start, prev_end);
        prev_end = e.end;
    }
}

TEST(TraceInvariants, NonNegativeDurationsAndWaits)
{
    for (const auto &app : workloads::evaluationApps()) {
        const auto &res = RunCache::get(app, true);
        for (const auto &e : res.trace.events()) {
            EXPECT_GE(e.duration(), 0);
            EXPECT_GE(e.queue_wait, 0);
        }
    }
}

TEST(TdxAccounting, NoTdxActivityOutsideCc)
{
    for (const auto &app : {"2mm", "sc"}) {
        const auto &base = RunCache::get(app, false);
        EXPECT_EQ(base.tdx.hypercalls, 0u) << app;
        EXPECT_EQ(base.tdx.pages_converted, 0u) << app;
        const auto &cc = RunCache::get(app, true);
        EXPECT_GT(cc.tdx.hypercalls, 0u) << app;
    }
}

TEST(EndToEnd, EveryAppSlowerUnderCc)
{
    for (const auto &app : workloads::evaluationApps()) {
        const auto &b = RunCache::get(app, false);
        const auto &c = RunCache::get(app, true);
        EXPECT_GT(c.end_to_end, b.end_to_end) << app;
    }
}

TEST(EndToEnd, HighKlrAppsBarelyAffected)
{
    // Observation 6: high kernel-to-launch-ratio apps hide the CC
    // launch taxes.
    const auto &b = RunCache::get("gramschm", false);
    const auto &c = RunCache::get("gramschm", true);
    EXPECT_GT(trace::kernelToLaunchRatio(b.metrics), 1000.0);
    const double slowdown = static_cast<double>(c.end_to_end)
        / static_cast<double>(b.end_to_end);
    EXPECT_LT(slowdown, 1.05);
}

TEST(EndToEnd, LowKlrAppsDominatedByLaunch)
{
    const auto &b = RunCache::get("sc", false);
    EXPECT_LT(trace::kernelToLaunchRatio(b.metrics), 2.0);
    const auto &c = RunCache::get("sc", true);
    const double slowdown = static_cast<double>(c.end_to_end)
        / static_cast<double>(b.end_to_end);
    EXPECT_GT(slowdown, 1.3);
}

} // namespace
} // namespace hcc
