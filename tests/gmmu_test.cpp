/**
 * @file
 * Tests for the GMMU: mapping semantics, TLB hit/miss behaviour, LRU
 * eviction, far-fault reporting, and integration with the UVM
 * manager's residency tracking.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "gpu/gmmu.hpp"
#include "gpu/uvm.hpp"
#include "pcie/link.hpp"
#include "tee/tdx.hpp"

namespace hcc::gpu {
namespace {

TEST(GmmuTest, UnmappedPageFaults)
{
    Gmmu mmu;
    const auto t = mmu.translate(100);
    EXPECT_EQ(t.result, TranslateResult::FarFault);
    EXPECT_EQ(mmu.farFaults(), 1u);
    EXPECT_GT(t.latency, Gmmu::kTlbHitLatency)
        << "a fault still pays the failed walk";
}

TEST(GmmuTest, MapThenWalkThenHit)
{
    Gmmu mmu;
    mmu.map(10, 500, 1);
    const auto first = mmu.translate(10);
    EXPECT_EQ(first.result, TranslateResult::TlbMissWalkHit);
    EXPECT_EQ(first.pfn, 500u);
    EXPECT_EQ(first.latency,
              Gmmu::kTlbHitLatency
                  + Gmmu::kWalkLevelLatency * Gmmu::kWalkLevels);

    const auto second = mmu.translate(10);
    EXPECT_EQ(second.result, TranslateResult::TlbHit);
    EXPECT_EQ(second.pfn, 500u);
    EXPECT_EQ(second.latency, Gmmu::kTlbHitLatency);
}

TEST(GmmuTest, RangeMappingIsContiguous)
{
    Gmmu mmu;
    mmu.map(0, 1000, 16);
    for (std::uint64_t i = 0; i < 16; ++i) {
        const auto t = mmu.translate(i);
        EXPECT_NE(t.result, TranslateResult::FarFault);
        EXPECT_EQ(t.pfn, 1000 + i);
    }
    EXPECT_EQ(mmu.mappedPages(), 16u);
}

TEST(GmmuTest, UnmapShootsDownTlb)
{
    Gmmu mmu;
    mmu.map(7, 70, 1);
    mmu.translate(7);  // warm the TLB
    mmu.unmap(7, 1);
    const auto t = mmu.translate(7);
    EXPECT_EQ(t.result, TranslateResult::FarFault)
        << "stale TLB entries must not survive unmap";
    EXPECT_FALSE(mmu.isMapped(7));
}

TEST(GmmuTest, LruEviction)
{
    Gmmu mmu(4);
    mmu.map(0, 100, 8);
    for (std::uint64_t i = 0; i < 5; ++i)
        mmu.translate(i);  // fills TLB; vpn 0 evicted by vpn 4
    const auto again = mmu.translate(0);
    EXPECT_EQ(again.result, TranslateResult::TlbMissWalkHit);
    // vpn 4 is still cached (most recent before the re-walk of 0).
    const auto four = mmu.translate(4);
    EXPECT_EQ(four.result, TranslateResult::TlbHit);
}

TEST(GmmuTest, LruTouchOnHit)
{
    Gmmu mmu(2);
    mmu.map(0, 100, 3);
    mmu.translate(0);
    mmu.translate(1);
    mmu.translate(0);  // touch 0: now MRU
    mmu.translate(2);  // evicts 1, not 0
    EXPECT_EQ(mmu.translate(0).result, TranslateResult::TlbHit);
    EXPECT_EQ(mmu.translate(1).result,
              TranslateResult::TlbMissWalkHit);
}

TEST(GmmuTest, StatsAccumulate)
{
    Gmmu mmu;
    mmu.map(0, 1, 1);
    mmu.translate(0);
    mmu.translate(0);
    mmu.translate(99);
    EXPECT_EQ(mmu.tlbHits(), 1u);
    EXPECT_EQ(mmu.tlbMisses(), 2u);
    EXPECT_EQ(mmu.farFaults(), 1u);
}

TEST(GmmuTest, RejectsEmptyTlb)
{
    EXPECT_THROW(Gmmu{0}, FatalError);
}

TEST(GmmuTest, RangeOpsMatchPerPageReference)
{
    // Interval-map range operations against a brute-force page map:
    // a random map/unmap workload with overlapping, splitting and
    // overwriting ranges must leave both models agreeing page by
    // page.
    Gmmu mmu;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(0x6a77);
    constexpr std::uint64_t kSpan = 512;
    std::uint64_t next_pfn = 10000;
    for (int op = 0; op < 400; ++op) {
        const auto vpn = static_cast<std::uint64_t>(
            rng.uniformInt(0, kSpan - 1));
        const auto pages = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(rng.uniformInt(1, 48)),
            kSpan - vpn);
        if (rng.uniformInt(0, 2) != 0) {
            const std::uint64_t pfn = next_pfn;
            next_pfn += pages;
            mmu.map(vpn, pfn, pages);
            for (std::uint64_t i = 0; i < pages; ++i)
                ref[vpn + i] = pfn + i;
        } else {
            mmu.unmap(vpn, pages);
            for (std::uint64_t i = 0; i < pages; ++i)
                ref.erase(vpn + i);
        }
        ASSERT_EQ(mmu.mappedPages(), ref.size()) << "after op " << op;
    }
    EXPECT_LE(mmu.mappedRanges(), mmu.mappedPages());
    for (std::uint64_t vpn = 0; vpn < kSpan; ++vpn) {
        const auto it = ref.find(vpn);
        ASSERT_EQ(mmu.isMapped(vpn), it != ref.end()) << "vpn " << vpn;
        const auto t = mmu.translate(vpn);
        if (it == ref.end()) {
            EXPECT_EQ(t.result, TranslateResult::FarFault);
        } else {
            ASSERT_NE(t.result, TranslateResult::FarFault);
            EXPECT_EQ(t.pfn, it->second) << "vpn " << vpn;
        }
    }
}

TEST(GmmuTest, CoalescesAdjacentRanges)
{
    Gmmu mmu;
    // Contiguous vpn *and* pfn: one range.
    mmu.map(0, 100, 4);
    mmu.map(4, 104, 4);
    EXPECT_EQ(mmu.mappedRanges(), 1u);
    // Contiguous vpn, discontiguous pfn: must stay separate.
    mmu.map(8, 500, 4);
    EXPECT_EQ(mmu.mappedRanges(), 2u);
    // Punch a hole: the covering range splits.
    mmu.unmap(1, 2);
    EXPECT_EQ(mmu.mappedRanges(), 3u);
    EXPECT_EQ(mmu.mappedPages(), 10u);
    EXPECT_TRUE(mmu.isMapped(0));
    EXPECT_FALSE(mmu.isMapped(1));
    EXPECT_FALSE(mmu.isMapped(2));
    EXPECT_EQ(mmu.translate(3).pfn, 103u);
}

// ---------------------------------------------- uvm integration

TEST(UvmGmmu, ResidencyDrivesMappings)
{
    UvmManager uvm;
    pcie::PcieLink link;
    tee::TdxModule tdx(false);
    TransferContext ctx{link, tdx, nullptr};

    const Bytes bytes = size::mib(8);  // 128 GMMU big pages
    const auto h = uvm.createAllocation(bytes);
    EXPECT_EQ(uvm.gmmu().mappedPages(), 0u);

    uvm.touchOnDevice(h, bytes, ctx);
    EXPECT_EQ(uvm.gmmu().mappedPages(), bytes / kGmmuPageBytes);

    uvm.invalidateDeviceResidency(h);
    EXPECT_EQ(uvm.gmmu().mappedPages(), 0u);
}

TEST(UvmGmmu, FreeUnmapsEverything)
{
    UvmManager uvm;
    pcie::PcieLink link;
    tee::TdxModule tdx(false);
    TransferContext ctx{link, tdx, nullptr};

    const auto a = uvm.createAllocation(size::mib(4));
    const auto b = uvm.createAllocation(size::mib(4));
    uvm.touchOnDevice(a, size::mib(4), ctx);
    uvm.touchOnDevice(b, size::mib(4), ctx);
    const auto mapped = uvm.gmmu().mappedPages();
    uvm.freeAllocation(a);
    EXPECT_EQ(uvm.gmmu().mappedPages(), mapped / 2);
    uvm.freeAllocation(b);
    EXPECT_EQ(uvm.gmmu().mappedPages(), 0u);
}

TEST(UvmGmmu, PartialResidencyMapsPrefixOnly)
{
    UvmManager uvm;
    pcie::PcieLink link;
    tee::TdxModule tdx(false);
    TransferContext ctx{link, tdx, nullptr};

    const auto h = uvm.createAllocation(size::mib(8));
    uvm.touchOnDevice(h, size::mib(2), ctx);
    EXPECT_EQ(uvm.gmmu().mappedPages(),
              size::mib(2) / kGmmuPageBytes);
}

TEST(UvmGmmu, AllocationsDoNotAliasPages)
{
    UvmManager uvm;
    pcie::PcieLink link;
    tee::TdxModule tdx(false);
    TransferContext ctx{link, tdx, nullptr};

    const auto a = uvm.createAllocation(size::mib(1));
    const auto b = uvm.createAllocation(size::mib(1));
    uvm.touchOnDevice(a, size::mib(1), ctx);
    uvm.touchOnDevice(b, size::mib(1), ctx);
    EXPECT_EQ(uvm.gmmu().mappedPages(),
              2 * (size::mib(1) / kGmmuPageBytes));
}

} // namespace
} // namespace hcc::gpu
