/**
 * @file
 * Tests for the staged CC copy pipeline (docs/OVERLAP.md): tier
 * parsing, per-stage occupancy identities, byte-identity of the
 * `none` tier, tier ordering, spec.miss fault economics, and the
 * speculative tier's recovery of the bounce-buffer tax on the
 * transfer-dominated bigxfer app.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "fault/fault.hpp"
#include "obs/registry.hpp"
#include "pcie/link.hpp"
#include "runtime/context.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"
#include "workloads/workload.hpp"

namespace hcc::tee {
namespace {

std::uint64_t
counterOf(const obs::Registry &reg, const std::string &name)
{
    const auto it = reg.entries().find(name);
    if (it == reg.entries().end() || !it->second.counter)
        return 0;
    return it->second.counter->value();
}

// ------------------------------------------------------------ parsing

TEST(OverlapMode, NamesRoundTrip)
{
    for (const OverlapMode m :
         {OverlapMode::None, OverlapMode::DoubleBuffer,
          OverlapMode::Speculative}) {
        const auto parsed = parseOverlapMode(overlapModeName(m));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, m);
    }
    EXPECT_FALSE(parseOverlapMode("bogus").has_value());
    EXPECT_FALSE(parseOverlapMode("").has_value());
}

// --------------------------------------------------- pipeline timing

class OverlapChannelTest : public ::testing::Test
{
  protected:
    SimTime
    transferTime(OverlapMode mode, Bytes bytes,
                 obs::Registry *reg = nullptr,
                 fault::Injector *inj = nullptr,
                 pcie::Direction dir = pcie::Direction::HostToDevice)
    {
        ChannelConfig cfg;
        cfg.overlap = mode;
        SecureChannel ch(cfg, session_, reg, inj);
        pcie::PcieLink link(pcie::LinkConfig{}, reg);
        TdxModule tdx{true};
        return ch.scheduleTransfer(0, bytes, dir, link, tdx)
            .total.duration();
    }

    SpdmSession session_ = SpdmSession::establish(7);
};

TEST_F(OverlapChannelTest, StageOccupancyIdentities)
{
    // Every pipeline counter mirrors the busy time of the timeline
    // that stage reserves on — the pipeline invents no time of its
    // own.
    obs::Registry reg;
    transferTime(OverlapMode::Speculative, size::mib(64), &reg);
    EXPECT_EQ(counterOf(reg, "tee.channel.pipeline.seal_busy_ps"),
              counterOf(reg, "sim.timeline.cc_crypto.busy_ps"));
    EXPECT_EQ(counterOf(reg, "tee.channel.pipeline.stage_busy_ps"),
              counterOf(reg, "sim.timeline.cc_stage.busy_ps"));
    EXPECT_EQ(counterOf(reg, "tee.channel.pipeline.open_busy_ps"),
              counterOf(reg, "sim.timeline.cc_gpu_crypto.busy_ps"));
    EXPECT_EQ(counterOf(reg, "tee.channel.pipeline.dma_busy_ps"),
              counterOf(reg, "pcie.link.busy_ps_h2d"));
    // 64 MiB in 4 MiB chunks: every chunk is a speculative attempt.
    EXPECT_EQ(counterOf(reg, "tee.channel.pipeline.spec_hits"), 16u);
    EXPECT_EQ(counterOf(reg, "tee.channel.pipeline.spec_misses"), 0u);
    EXPECT_LE(counterOf(reg, "tee.channel.pipeline.hidden_crypto_ps"),
              counterOf(reg, "tee.channel.pipeline.seal_busy_ps"));
    EXPECT_GT(counterOf(reg, "tee.channel.pipeline.hidden_crypto_ps"),
              0u);
}

TEST_F(OverlapChannelTest, NoneModeCreatesNoPipelineCounters)
{
    // The serial tier must leave the registry byte-identical to the
    // pre-overlap engine: no pipeline counters, no stage timeline.
    obs::Registry reg;
    transferTime(OverlapMode::None, size::mib(64), &reg);
    for (const auto &[name, entry] : reg.entries()) {
        EXPECT_EQ(name.find("tee.channel.pipeline."),
                  std::string::npos)
            << name;
        EXPECT_EQ(name.find("sim.timeline.cc_stage"),
                  std::string::npos)
            << name;
    }
}

TEST_F(OverlapChannelTest, TiersAreOrderedAtOneWorker)
{
    const Bytes b = size::mib(64);
    const SimTime none = transferTime(OverlapMode::None, b);
    const SimTime db = transferTime(OverlapMode::DoubleBuffer, b);
    const SimTime spec = transferTime(OverlapMode::Speculative, b);
    EXPECT_LT(db, none) << "double-buffer hides the bounce copy";
    EXPECT_LT(spec, db) << "speculation overlaps seals of "
                           "consecutive chunks";
}

TEST_F(OverlapChannelTest, SteadyStateMatchesTierModel)
{
    SpdmSession s = SpdmSession::establish(7);
    pcie::PcieLink link;
    const auto rate = [&](OverlapMode mode) {
        ChannelConfig cfg;
        cfg.overlap = mode;
        SecureChannel ch(cfg, s);
        return ch.steadyStateGbps(link);
    };
    EXPECT_NEAR(rate(OverlapMode::None), 3.02, 0.1);
    EXPECT_NEAR(rate(OverlapMode::DoubleBuffer),
                calib::kEmrAesGcm128GBs, 0.1);
    EXPECT_NEAR(rate(OverlapMode::Speculative),
                4 * calib::kEmrAesGcm128GBs, 0.2)
        << "depth-4 speculation quadruples the seal front-end";
}

// ------------------------------------------------- spec.miss faults

TEST_F(OverlapChannelTest, SpecMissesReSealAndSlowTheTransfer)
{
    obs::Registry reg;
    fault::FaultConfig fc;
    fc.set(fault::Site::SpecMiss, 0.5);
    fault::Injector inj(fc, 3, &reg);
    const Bytes b = size::mib(64);
    const SimTime faulted =
        transferTime(OverlapMode::Speculative, b, &reg, &inj);
    const SimTime clean = transferTime(OverlapMode::Speculative, b);
    const auto misses =
        counterOf(reg, "tee.channel.pipeline.spec_misses");
    EXPECT_GT(misses, 0u);
    EXPECT_EQ(misses, counterOf(reg, "fault.spec.miss.injected"));
    EXPECT_EQ(misses, counterOf(reg, "fault.spec.miss.recovered"))
        << "every miss re-seals and completes";
    EXPECT_EQ(counterOf(reg, "tee.channel.pipeline.spec_hits")
                  + misses,
              16u)
        << "every chunk's first attempt is a hit or a miss";
    EXPECT_GT(counterOf(reg, "fault.spec.miss.retry_time_ps"), 0u);
    EXPECT_GT(faulted, clean) << "re-seals cost pipeline time";
}

TEST_F(OverlapChannelTest, SpecMissNeverFiresOutsideSpeculative)
{
    obs::Registry reg;
    fault::FaultConfig fc;
    fc.set(fault::Site::SpecMiss, 1.0);
    fault::Injector inj(fc, 3, &reg);
    transferTime(OverlapMode::DoubleBuffer, size::mib(64), &reg,
                 &inj);
    EXPECT_EQ(reg.entries().count("fault.spec.miss.injected"), 0u)
        << "only speculative seals consult the spec.miss site";
}

// ------------------------------------------- end-to-end (bigxfer)

TEST(OverlapAblation, SpeculativeRecoversMostOfTheBounceTax)
{
    const auto e2e = [](bool cc, OverlapMode mode) {
        rt::SystemConfig sys;
        sys.cc = cc;
        sys.channel.overlap = mode;
        workloads::WorkloadParams params;
        return workloads::runWorkload("bigxfer", sys, params)
            .end_to_end;
    };
    const double base =
        static_cast<double>(e2e(false, OverlapMode::None));
    const double none =
        static_cast<double>(e2e(true, OverlapMode::None));
    const double db =
        static_cast<double>(e2e(true, OverlapMode::DoubleBuffer));
    const double spec =
        static_cast<double>(e2e(true, OverlapMode::Speculative));
    EXPECT_LT(spec, db);
    EXPECT_LT(db, none);
    EXPECT_GT(none, base);
    const double recovery = (none - spec) / (none - base);
    EXPECT_GE(recovery, 0.6)
        << "speculation must win back most of the CC "
           "large-transfer overhead (got " << recovery << ")";
}

} // namespace
} // namespace hcc::tee
