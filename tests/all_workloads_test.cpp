/**
 * @file
 * Sweep test: every registered workload (including the extra Rodinia
 * apps not in the paper's figure list) must run cleanly under base
 * and CC and satisfy the global invariants.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "trace/analysis.hpp"
#include "workloads/workload.hpp"

namespace hcc::workloads {
namespace {

class AllWorkloads : public ::testing::TestWithParam<std::string>
{};

TEST_P(AllWorkloads, RunsUnderBaseAndCc)
{
    const auto &name = GetParam();
    WorkloadParams params;
    params.scale = 0.5;  // keep the sweep fast

    rt::SystemConfig base, cc;
    cc.cc = true;
    const auto rb = runWorkload(name, base, params);
    const auto rc = runWorkload(name, cc, params);

    EXPECT_GT(rb.end_to_end, 0);
    EXPECT_GT(rc.end_to_end, rb.end_to_end)
        << "CC must never be free";
    EXPECT_GT(rb.metrics.launches, 0);
    EXPECT_EQ(rb.metrics.launches, rc.metrics.launches)
        << "launch counts are structural, not mode-dependent";
    EXPECT_EQ(rb.metrics.kernels, rb.metrics.launches);

    // TDX accounting only under CC.
    EXPECT_EQ(rb.tdx.hypercalls, 0u);
    EXPECT_GT(rc.tdx.hypercalls, 0u);

    // Trace sanity.
    for (const auto &e : rc.trace.events()) {
        EXPECT_GE(e.duration(), 0);
        EXPECT_GE(e.queue_wait, 0);
    }
}

TEST_P(AllWorkloads, UvmVariantRunsWhereSupported)
{
    const auto &name = GetParam();
    const auto &w = WorkloadRegistry::instance().get(name);
    if (!w.supportsUvm())
        GTEST_SKIP() << name << " has no UVM variant";

    WorkloadParams params;
    params.uvm = true;
    params.scale = 0.5;
    rt::SystemConfig base, cc;
    cc.cc = true;
    const auto rb = runWorkload(name, base, params);
    const auto rc = runWorkload(name, cc, params);
    EXPECT_EQ(rb.metrics.copyTotal(), 0)
        << "UVM variants use no explicit copies";
    EXPECT_GE(rc.metrics.ket.sum(), rb.metrics.ket.sum())
        << "encrypted paging cannot make kernels faster";
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto *w : WorkloadRegistry::instance().all())
        names.push_back(w->name());
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllWorkloads, ::testing::ValuesIn(allNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace hcc::workloads
