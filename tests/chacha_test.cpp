/**
 * @file
 * Tests for ChaCha20-Poly1305: RFC 8439 vectors (keystream block
 * cross-checked against openssl, Poly1305 tag from the RFC), AEAD
 * round-trip and tamper detection.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "crypto/chacha.hpp"

namespace hcc::crypto {
namespace {

std::string
toHex(std::span<const std::uint8_t> data)
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    for (auto b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

TEST(ChaCha20, Rfc8439KeystreamBlock)
{
    // RFC 8439 2.4.2 key/nonce, counter 1; keystream verified
    // against `openssl enc -chacha20`.
    std::uint8_t key[32];
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    std::uint8_t nonce[12] = {0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
    std::vector<std::uint8_t> zeros(32, 0), out(32);
    chacha20Xor(key, nonce, 1, zeros, out);
    EXPECT_EQ(toHex(out),
              "224f51f3401bd9e12fde276fb8631ded"
              "8c131f823d2c06e27e4fcaec9ef3cf78");
}

TEST(ChaCha20, XorIsAnInvolution)
{
    std::uint8_t key[32] = {1, 2, 3};
    std::uint8_t nonce[12] = {9};
    Rng rng(5);
    std::vector<std::uint8_t> pt(1000);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> ct(pt.size()), back(pt.size());
    chacha20Xor(key, nonce, 7, pt, ct);
    EXPECT_NE(pt, ct);
    chacha20Xor(key, nonce, 7, ct, back);
    EXPECT_EQ(pt, back);
}

TEST(ChaCha20, CounterAdvancesAcrossBlocks)
{
    std::uint8_t key[32] = {}, nonce[12] = {};
    std::vector<std::uint8_t> zeros(128, 0), one_shot(128);
    chacha20Xor(key, nonce, 0, zeros, one_shot);
    // Generating the two blocks separately must agree.
    std::vector<std::uint8_t> b0(64), b1(64);
    std::vector<std::uint8_t> z64(64, 0);
    chacha20Xor(key, nonce, 0, z64, b0);
    chacha20Xor(key, nonce, 1, z64, b1);
    EXPECT_EQ(0, std::memcmp(one_shot.data(), b0.data(), 64));
    EXPECT_EQ(0, std::memcmp(one_shot.data() + 64, b1.data(), 64));
}

TEST(Poly1305, Rfc8439Vector)
{
    const std::uint8_t key[32] = {
        0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33,
        0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5, 0x06, 0xa8,
        0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd,
        0x4a, 0xbf, 0xf6, 0xaf, 0x41, 0x49, 0xf5, 0x1b,
    };
    const std::string msg = "Cryptographic Forum Research Group";
    std::uint8_t tag[kPolyTagLen];
    poly1305(key,
             {reinterpret_cast<const std::uint8_t *>(msg.data()),
              msg.size()},
             tag);
    EXPECT_EQ(toHex(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, EmptyMessage)
{
    std::uint8_t key[32] = {1};
    std::uint8_t tag[kPolyTagLen];
    poly1305(key, {}, tag);
    // Empty message: tag = s (the second key half) exactly.
    std::uint8_t expect[16] = {};
    std::memcpy(expect, key + 16, 16);
    EXPECT_EQ(0, std::memcmp(tag, expect, 16));
}

TEST(ChaChaPolyAead, RoundTripWithAad)
{
    std::vector<std::uint8_t> key(32, 0x42);
    ChaChaPoly aead(key);
    std::uint8_t nonce[12] = {7};
    Rng rng(11);
    std::vector<std::uint8_t> pt(777);
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> aad = {1, 2, 3};
    std::vector<std::uint8_t> ct(pt.size()), back(pt.size());
    std::uint8_t tag[kPolyTagLen];
    aead.seal(nonce, aad, pt, ct, tag);
    EXPECT_TRUE(aead.open(nonce, aad, ct, tag, back));
    EXPECT_EQ(back, pt);
}

TEST(ChaChaPolyAead, DetectsTampering)
{
    std::vector<std::uint8_t> key(32, 9);
    ChaChaPoly aead(key);
    std::uint8_t nonce[12] = {};
    std::vector<std::uint8_t> pt(100, 0x5a);
    std::vector<std::uint8_t> ct(pt.size()), back(pt.size());
    std::uint8_t tag[kPolyTagLen];
    aead.seal(nonce, {}, pt, ct, tag);

    ct[50] ^= 1;
    EXPECT_FALSE(aead.open(nonce, {}, ct, tag, back));
    for (auto b : back)
        EXPECT_EQ(b, 0) << "failed open must not leak plaintext";
    ct[50] ^= 1;
    tag[0] ^= 0x80;
    EXPECT_FALSE(aead.open(nonce, {}, ct, tag, back));
    tag[0] ^= 0x80;
    std::vector<std::uint8_t> wrong_aad = {9};
    EXPECT_FALSE(aead.open(nonce, wrong_aad, ct, tag, back));
    EXPECT_TRUE(aead.open(nonce, {}, ct, tag, back));
}

TEST(ChaChaPolyAead, RejectsBadKeyLength)
{
    std::vector<std::uint8_t> key(16, 0);
    EXPECT_THROW(ChaChaPoly{key}, FatalError);
}

class ChaChaPolySizeSweep
    : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ChaChaPolySizeSweep, RoundTrip)
{
    std::vector<std::uint8_t> key(32, 0xa5);
    ChaChaPoly aead(key);
    std::uint8_t nonce[12] = {1};
    Rng rng(GetParam());
    std::vector<std::uint8_t> pt(GetParam());
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> ct(pt.size()), back(pt.size());
    std::uint8_t tag[kPolyTagLen];
    aead.seal(nonce, {}, pt, ct, tag);
    EXPECT_TRUE(aead.open(nonce, {}, ct, tag, back));
    EXPECT_EQ(back, pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChaChaPolySizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64,
                                           65, 255, 4096, 65536));

} // namespace
} // namespace hcc::crypto
