/**
 * @file
 * Tests for the TEE subsystem: TDX transition costs, bounce-buffer
 * pool back-pressure, TME-MK functional encryption, SPDM sessions,
 * and the secure channel's timing and integrity guarantees.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "pcie/link.hpp"
#include "tee/bounce_buffer.hpp"
#include "tee/mee.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"

namespace hcc::tee {
namespace {

// ----------------------------------------------------------------- tdx

TEST(Tdx, HypercallCostsExceedVmcallsByPaperRatio)
{
    TdxModule td(true), vm(false);
    const SimTime cc = td.guestHostRoundTrips(1);
    const SimTime base = vm.guestHostRoundTrips(1);
    // [16]: tdx_hypercall latency increases by over 470%.
    EXPECT_GT(static_cast<double>(cc) / static_cast<double>(base), 4.7);
}

TEST(Tdx, CountersTrackTransitions)
{
    TdxModule td(true);
    td.guestHostRoundTrips(3);
    td.seamcalls(2);
    td.mmioDoorbell();
    EXPECT_EQ(td.stats().hypercalls, 4u);  // 3 + doorbell
    EXPECT_EQ(td.stats().seamcalls, 2u);
    EXPECT_GT(td.stats().totalTime(), 0);
    td.resetStats();
    EXPECT_EQ(td.stats().hypercalls, 0u);
}

TEST(Tdx, NonCcChargesVmexitsNotHypercalls)
{
    TdxModule vm(false);
    vm.guestHostRoundTrips(5);
    EXPECT_EQ(vm.stats().vmexits, 5u);
    EXPECT_EQ(vm.stats().hypercalls, 0u);
}

TEST(Tdx, PageConversionOnlyUnderCc)
{
    TdxModule td(true), vm(false);
    EXPECT_GT(td.convertPages(size::mib(1)), 0);
    EXPECT_EQ(vm.convertPages(size::mib(1)), 0);
    EXPECT_EQ(td.stats().pages_converted, 256u);  // 1 MiB / 4 KiB
}

TEST(Tdx, SeamcallsFreeOutsideCc)
{
    TdxModule vm(false);
    EXPECT_EQ(vm.seamcalls(10), 0);
}

TEST(Tdx, DmaAllocIncludesConversion)
{
    TdxModule td(true);
    const SimTime t = td.dmaAlloc(size::mib(4));
    EXPECT_GT(t, calib::kDmaAllocFixed);
    EXPECT_EQ(td.stats().dma_allocs, 1u);
    EXPECT_GT(td.stats().pages_converted, 0u);
}

TEST(Tdx, DoorbellMoreExpensiveInTd)
{
    TdxModule td(true), vm(false);
    EXPECT_GT(td.mmioDoorbell(), vm.mmioDoorbell());
}

// -------------------------------------------------------------- bounce

TEST(BounceBuffer, AcquireReleaseCycle)
{
    BounceBufferPool pool(4096, 2);
    EXPECT_EQ(pool.freeSlots(), 2);
    auto a = pool.acquire(10);
    EXPECT_EQ(a.acquired_at, 10);
    EXPECT_EQ(pool.freeSlots(), 1);
    pool.release(a, 50);
    auto b = pool.acquire(20);
    EXPECT_GE(b.acquired_at, 20);
}

TEST(BounceBuffer, ExhaustionCreatesBackPressure)
{
    BounceBufferPool pool(4096, 2);
    auto a = pool.acquire(0);
    auto b = pool.acquire(0);
    pool.release(a, 100);
    pool.release(b, 200);
    const auto c = pool.acquire(0);
    EXPECT_EQ(c.acquired_at, 100) << "must wait for earliest release";
    const auto d = pool.acquire(0);
    EXPECT_EQ(d.acquired_at, 200);
    EXPECT_EQ(pool.contentionEvents(), 2u);
    EXPECT_EQ(pool.contentionTime(), 300);
}

TEST(BounceBuffer, NoContentionWhenReadyAfterRelease)
{
    BounceBufferPool pool(4096, 1);
    auto a = pool.acquire(0);
    pool.release(a, 100);
    const auto b = pool.acquire(150);
    EXPECT_EQ(b.acquired_at, 150);
    EXPECT_EQ(pool.contentionEvents(), 0u);
}

TEST(BounceBuffer, StorageIsSlotSized)
{
    BounceBufferPool pool(1024, 1);
    auto a = pool.acquire(0);
    EXPECT_EQ(pool.storage(a).size(), 1024u);
}

TEST(BounceBuffer, RejectsDegenerateConfig)
{
    EXPECT_THROW(BounceBufferPool(0, 4), FatalError);
    EXPECT_THROW(BounceBufferPool(64, 0), FatalError);
}

TEST(BounceBuffer, AllSlotsHeldAcquiresWithoutRelease)
{
    // Regression: taking more holds than slots before any release
    // used to trip the pending-release assert.  Oversubscription
    // must reuse the oldest hold instead.
    BounceBufferPool pool(4096, 2);
    auto a = pool.acquire(0);
    auto b = pool.acquire(0);
    EXPECT_EQ(pool.heldSlots(), 2u);
    const auto c = pool.acquire(10);
    EXPECT_EQ(pool.heldSlots(), 3u);
    EXPECT_EQ(c.acquired_at, 10) << "no release watermark yet";
    pool.release(a, 100);
    pool.release(b, 200);
    // a's slot is still held through c, so only b's is free-able.
    const auto d = pool.acquire(0);
    EXPECT_EQ(d.acquired_at, 200);
}

TEST(BounceBuffer, OversubscribedHoldWaitsForReleaseWatermark)
{
    BounceBufferPool pool(4096, 1);
    auto a = pool.acquire(0);
    pool.release(a, 500);
    auto b = pool.acquire(0);
    EXPECT_EQ(b.acquired_at, 500) << "waits for the pending release";
    const auto c = pool.acquire(0);
    EXPECT_EQ(c.acquired_at, 500)
        << "held path starts no earlier than the latest release";
    EXPECT_EQ(pool.heldSlots(), 2u);
    EXPECT_EQ(pool.slotCount(), 1u);
}

// ----------------------------------------------------------------- mee

TEST(Mee, PrivateLinesAreUnintelligible)
{
    MemoryEncryptionEngine mee;
    std::vector<std::uint8_t> key(32, 0x44);
    mee.provisionKey(1, key);

    std::vector<std::uint8_t> line(kMeeLineBytes, 0xaa);
    const auto wire = mee.writeLine(1, 0, line);
    EXPECT_NE(wire, line) << "DRAM bus must carry ciphertext";
    const auto back = mee.readLine(1, 0, wire);
    EXPECT_EQ(back, line);
}

TEST(Mee, BypassLeavesSharedPagesClear)
{
    MemoryEncryptionEngine mee;
    std::vector<std::uint8_t> line(kMeeLineBytes, 0x5c);
    const auto wire = mee.writeLine(0, 7, line);
    EXPECT_EQ(wire, line) << "key id 0 = shared page = plaintext";
    EXPECT_EQ(mee.linesBypassed(), 1u);
    EXPECT_EQ(mee.linesProcessed(), 0u);
}

TEST(Mee, DifferentKeyIdsProduceDifferentCiphertext)
{
    MemoryEncryptionEngine mee;
    std::vector<std::uint8_t> k1(32, 1), k2(32, 2);
    mee.provisionKey(1, k1);
    mee.provisionKey(2, k2);
    std::vector<std::uint8_t> line(kMeeLineBytes, 0x00);
    EXPECT_NE(mee.writeLine(1, 0, line), mee.writeLine(2, 0, line));
}

TEST(Mee, SameDataDifferentAddressesDiffer)
{
    MemoryEncryptionEngine mee;
    std::vector<std::uint8_t> key(32, 9);
    mee.provisionKey(3, key);
    std::vector<std::uint8_t> line(kMeeLineBytes, 0x77);
    EXPECT_NE(mee.writeLine(3, 0, line), mee.writeLine(3, 1, line))
        << "XTS tweak must bind ciphertext to the line address";
}

TEST(Mee, RejectsUnprovisionedKeyAndReservedId)
{
    MemoryEncryptionEngine mee;
    std::vector<std::uint8_t> line(kMeeLineBytes, 0);
    EXPECT_THROW(mee.writeLine(5, 0, line), FatalError);
    std::vector<std::uint8_t> key(32, 0);
    EXPECT_THROW(mee.provisionKey(0, key), FatalError);
}

TEST(Mee, RejectsUnalignedAccess)
{
    MemoryEncryptionEngine mee;
    std::vector<std::uint8_t> key(32, 0x10);
    mee.provisionKey(1, key);
    std::vector<std::uint8_t> partial(kMeeLineBytes - 1, 0);
    EXPECT_THROW(mee.writeLine(1, 0, partial), FatalError);
}

// ---------------------------------------------------------------- spdm

TEST(Spdm, DeterministicForSeed)
{
    const auto a = SpdmSession::establish(42);
    const auto b = SpdmSession::establish(42);
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.sessionId(), b.sessionId());
}

TEST(Spdm, DifferentSeedsDifferentKeys)
{
    const auto a = SpdmSession::establish(1);
    const auto b = SpdmSession::establish(2);
    EXPECT_NE(a.key(), b.key());
}

// ------------------------------------------------------ secure channel

class SecureChannelTest : public ::testing::Test
{
  protected:
    ChannelConfig cfg_;
    SpdmSession session_ = SpdmSession::establish(7);
    pcie::PcieLink link_;
    TdxModule tdx_{true};
};

TEST_F(SecureChannelTest, SteadyStateMatchesPaperCcPeak)
{
    SecureChannel ch(cfg_, session_);
    // The paper measures 3.03 GB/s peak under CC.
    EXPECT_NEAR(ch.steadyStateGbps(link_), 3.03, 0.15);
}

TEST_F(SecureChannelTest, LargeTransferHitsSteadyState)
{
    SecureChannel ch(cfg_, session_);
    const Bytes b = size::gib(1);
    const auto t = ch.scheduleTransfer(
        0, b, pcie::Direction::HostToDevice, link_, tdx_);
    const double gbps = bandwidthGBs(b, t.total.duration());
    EXPECT_NEAR(gbps, 3.03, 0.2);
    EXPECT_GT(t.chunks, 200);
}

TEST_F(SecureChannelTest, SmallTransferDominatedByFixedCosts)
{
    SecureChannel ch(cfg_, session_);
    const auto t = ch.scheduleTransfer(
        0, 64, pcie::Direction::HostToDevice, link_, tdx_);
    EXPECT_GT(t.fixed_overhead, time::us(10.0));
    EXPECT_LT(bandwidthGBs(64, t.total.duration()), 0.01);
}

TEST_F(SecureChannelTest, MoreWorkersRaiseThroughputTowardLink)
{
    cfg_.crypto_workers = 8;
    SecureChannel ch(cfg_, session_);
    const double gbps = ch.steadyStateGbps(link_);
    EXPECT_GT(gbps, 3.03 * 4);
    EXPECT_LE(gbps, link_.config().effective_gbps);
}

TEST_F(SecureChannelTest, TeeIoBypassesSoftwareCrypto)
{
    cfg_.tee_io = true;
    SecureChannel ch(cfg_, session_);
    EXPECT_NEAR(ch.steadyStateGbps(link_),
                link_.config().effective_gbps * calib::kTeeIoEfficiency,
                0.01);
    const Bytes b = size::mib(256);
    const auto t = ch.scheduleTransfer(
        0, b, pcie::Direction::HostToDevice, link_, tdx_);
    EXPECT_EQ(t.encrypt_busy, 0);
    EXPECT_GT(bandwidthGBs(b, t.total.duration()), 15.0);
}

TEST_F(SecureChannelTest, ChargesHypercallsToTdx)
{
    SecureChannel ch(cfg_, session_);
    const auto before = tdx_.stats().hypercalls;
    ch.scheduleTransfer(0, size::mib(1),
                        pcie::Direction::HostToDevice, link_, tdx_);
    EXPECT_GT(tdx_.stats().hypercalls, before);
}

TEST_F(SecureChannelTest, ZeroByteTransferOnlyFixedCost)
{
    SecureChannel ch(cfg_, session_);
    const auto t = ch.scheduleTransfer(
        0, 0, pcie::Direction::HostToDevice, link_, tdx_);
    EXPECT_EQ(t.chunks, 0);
    EXPECT_EQ(t.total.duration(), t.fixed_overhead);
}

TEST_F(SecureChannelTest, FunctionalRoundTrip)
{
    SecureChannel ch(cfg_, session_);
    Rng rng(3);
    std::vector<std::uint8_t> src(10 * 1024 * 1024);
    for (auto &b : src)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> dst(src.size());
    EXPECT_TRUE(ch.transferFunctional(src, dst).ok());
    EXPECT_EQ(src, dst);
}

TEST_F(SecureChannelTest, BounceBufferCarriesOnlyCiphertext)
{
    // A recognizable plaintext pattern must never appear in the
    // staged (hypervisor-visible) buffer.  The injector's stage hook
    // is the hypervisor's observation point.
    fault::Injector inj;
    bool saw_plaintext = false;
    inj.setStageHook([&](std::vector<std::uint8_t> &stage) {
        std::size_t run = 0;
        for (auto b : stage) {
            run = (b == 0x5a) ? run + 1 : 0;
            if (run >= 32)
                saw_plaintext = true;
        }
    });
    SecureChannel ch(cfg_, session_, nullptr, &inj);
    std::vector<std::uint8_t> src(4096, 0x5a);
    std::vector<std::uint8_t> dst(src.size());
    EXPECT_TRUE(ch.transferFunctional(src, dst).ok());
    EXPECT_FALSE(saw_plaintext);
    EXPECT_EQ(src, dst);
}

TEST_F(SecureChannelTest, RetriesKeepIvStreamAlignedAcrossWorkers)
{
    // Regression: a retried chunk used to advance the IV sequence on
    // the sequential path but not the parallel one, so later wire
    // bytes diverged between crypto_workers settings.  One sequence
    // draw per chunk (retries derive their IV from the attempt
    // ordinal) keeps both paths aligned.
    const std::size_t n = 10 * 1024 * 1024;  // three 4 MiB chunks
    Rng rng(11);
    std::vector<std::uint8_t> src(n);
    for (auto &b : src)
        b = static_cast<std::uint8_t>(rng.next32());
    const auto wireAfterRetry = [&](int workers) {
        ChannelConfig cfg = cfg_;
        cfg.crypto_workers = workers;
        fault::Injector inj;
        int seen = 0;
        inj.setStageHook([&](std::vector<std::uint8_t> &stage) {
            // Tamper the second staged chunk once: both paths must
            // re-seal it under the attempt-derived IV.
            if (++seen == 2)
                stage[0] ^= 0x80;
        });
        SecureChannel ch(cfg, session_, nullptr, &inj);
        std::vector<std::uint8_t> dst(n);
        EXPECT_TRUE(ch.transferFunctional(src, dst).ok());
        EXPECT_EQ(src, dst);
        // The next transfer's wire bytes depend only on the IV
        // stream position, so both worker counts must emit
        // byte-identical ciphertext.
        std::vector<std::uint8_t> wire;
        inj.setStageHook([&](std::vector<std::uint8_t> &stage) {
            wire.insert(wire.end(), stage.begin(), stage.end());
        });
        EXPECT_TRUE(ch.transferFunctional(src, dst).ok());
        return wire;
    };
    EXPECT_EQ(wireAfterRetry(1), wireAfterRetry(4));
}

TEST_F(SecureChannelTest, ArmedFaultsRecoverOnBothFunctionalPaths)
{
    Rng rng(5);
    std::vector<std::uint8_t> src(12 * 1024 * 1024);
    for (auto &b : src)
        b = static_cast<std::uint8_t>(rng.next32());
    for (int workers : {1, 4}) {
        ChannelConfig cfg = cfg_;
        cfg.crypto_workers = workers;
        fault::FaultConfig fc;
        fc.set(fault::Site::ChannelTagMismatch, 0.2);
        fault::Injector inj(fc, 1);
        SecureChannel ch(cfg, session_, nullptr, &inj);
        std::vector<std::uint8_t> dst(src.size());
        ASSERT_TRUE(ch.transferFunctional(src, dst).ok());
        EXPECT_EQ(src, dst) << "workers=" << workers;
    }
}

TEST_F(SecureChannelTest, HypervisorTamperingIsDetected)
{
    fault::Injector inj;
    inj.setStageHook([](std::vector<std::uint8_t> &stage) {
        stage[100] ^= 0x01;  // malicious single-bit flip
    });
    SecureChannel ch(cfg_, session_, nullptr, &inj);
    std::vector<std::uint8_t> src(8192, 0x33);
    std::vector<std::uint8_t> dst(src.size());
    const Status st = ch.transferFunctional(src, dst);
    EXPECT_FALSE(st.ok()) << "integrity violation must be detected";
    EXPECT_EQ(st.code(), ErrorCode::IntegrityError);
}

TEST_F(SecureChannelTest, RejectsBadConfig)
{
    cfg_.crypto_workers = 0;
    EXPECT_THROW(SecureChannel(cfg_, session_), FatalError);
    cfg_.crypto_workers = 1;
    cfg_.chunk_bytes = 0;
    EXPECT_THROW(SecureChannel(cfg_, session_), FatalError);
}

// Parameterized: the functional path must round-trip any size,
// including chunk-boundary straddles.
class ChannelSizeSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ChannelSizeSweep, FunctionalRoundTrip)
{
    ChannelConfig cfg;
    cfg.chunk_bytes = 4096;  // small chunks to exercise boundaries
    cfg.bounce_slots = 4;
    const auto session = SpdmSession::establish(11);
    SecureChannel ch(cfg, session);

    Rng rng(GetParam());
    std::vector<std::uint8_t> src(GetParam());
    for (auto &b : src)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> dst(src.size());
    EXPECT_TRUE(ch.transferFunctional(src, dst).ok());
    EXPECT_EQ(src, dst);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelSizeSweep,
                         ::testing::Values(1, 100, 4095, 4096, 4097,
                                           8192, 12345, 65536));

TEST_F(SecureChannelTest, EveryCorruptedByteIsDetected)
{
    // Exhaustive tamper sweep: flip each byte of the staged
    // ciphertext-plus-tag in turn; every single position must fail
    // authentication and bump the auth-failure counter.  GCM's tag
    // covers the whole chunk, so there is no "slack" byte whose
    // corruption could slip through.  The stage hook re-corrupts
    // every retry, so each transfer burns the full attempt budget
    // and counts one auth failure per attempt.
    obs::Registry reg;
    fault::Injector inj;
    cfg_.chunk_bytes = 64;  // small chunk: sweep stays fast
    SecureChannel ch(cfg_, session_, &reg, &inj);
    std::vector<std::uint8_t> src(48);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 7 + 1);
    std::vector<std::uint8_t> dst(src.size());

    // Untampered baseline: works, no failures.
    ASSERT_TRUE(ch.transferFunctional(src, dst).ok());
    ASSERT_EQ(reg.counter("crypto.aes_gcm.auth_failures").value(), 0u);

    const auto attempts =
        static_cast<std::uint64_t>(fault::kMaxTransferAttempts);
    const std::size_t staged = src.size() + crypto::kGcmTagLen;
    for (std::size_t pos = 0; pos < staged; ++pos) {
        const auto before =
            reg.counter("crypto.aes_gcm.auth_failures").value();
        inj.setStageHook([pos](std::vector<std::uint8_t> &stage) {
            ASSERT_GT(stage.size(), pos);
            stage[pos] ^= 0x80;
        });
        const Status st = ch.transferFunctional(src, dst);
        EXPECT_FALSE(st.ok()) << "corruption at byte " << pos
                              << " went undetected";
        EXPECT_EQ(st.code(), ErrorCode::IntegrityError);
        EXPECT_EQ(
            reg.counter("crypto.aes_gcm.auth_failures").value(),
            before + attempts)
            << "auth failure at byte " << pos << " not counted";
    }
}

TEST_F(SecureChannelTest, ParallelWorkersRoundTrip)
{
    // crypto_workers > 1 with several chunks takes the threaded
    // seal/open path; results must be byte-identical to the
    // sequential path (same IV assignment, same chunking).
    cfg_.crypto_workers = 4;
    cfg_.chunk_bytes = 4096;
    SecureChannel ch(cfg_, session_, nullptr);
    Rng rng(17);
    std::vector<std::uint8_t> src(10 * 4096 + 123);
    for (auto &b : src)
        b = static_cast<std::uint8_t>(rng.next32());
    std::vector<std::uint8_t> dst(src.size());
    EXPECT_TRUE(ch.transferFunctional(src, dst).ok());
    EXPECT_EQ(src, dst);

    ChannelConfig seq = cfg_;
    seq.crypto_workers = 1;
    SecureChannel ref(seq, session_);
    std::vector<std::uint8_t> dst2(src.size());
    EXPECT_TRUE(ref.transferFunctional(src, dst2).ok());
    EXPECT_EQ(dst, dst2);
}

TEST_F(SecureChannelTest, ParallelWorkersDetectTampering)
{
    obs::Registry reg;
    fault::Injector inj;
    inj.setStageHook([](std::vector<std::uint8_t> &stage) {
        stage[stage.size() / 2] ^= 0x01;
    });
    cfg_.crypto_workers = 4;
    cfg_.chunk_bytes = 4096;
    SecureChannel ch(cfg_, session_, &reg, &inj);
    std::vector<std::uint8_t> src(8 * 4096, 0x66);
    std::vector<std::uint8_t> dst(src.size());
    EXPECT_FALSE(ch.transferFunctional(src, dst).ok());
    EXPECT_GE(reg.counter("crypto.aes_gcm.auth_failures").value(), 1u);
}

TEST_F(SecureChannelTest, ParallelWorkersHideNoPlaintext)
{
    fault::Injector inj;
    bool saw_plaintext = false;
    inj.setStageHook([&](std::vector<std::uint8_t> &stage) {
        std::size_t run = 0;
        for (auto b : stage) {
            run = (b == 0x5a) ? run + 1 : 0;
            if (run >= 32)
                saw_plaintext = true;
        }
    });
    cfg_.crypto_workers = 4;
    cfg_.chunk_bytes = 4096;
    SecureChannel ch(cfg_, session_, nullptr, &inj);
    std::vector<std::uint8_t> src(6 * 4096, 0x5a);
    std::vector<std::uint8_t> dst(src.size());
    EXPECT_TRUE(ch.transferFunctional(src, dst).ok());
    EXPECT_FALSE(saw_plaintext);
    EXPECT_EQ(src, dst);
}

} // namespace
} // namespace hcc::tee
