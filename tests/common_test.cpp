/**
 * @file
 * Tests for common utilities: units, RNG determinism and moments,
 * statistics, and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace hcc {
namespace {

// --------------------------------------------------------------- units

TEST(Units, TimeConversionsRoundTrip)
{
    EXPECT_EQ(time::ns(1.0), 1000);
    EXPECT_EQ(time::us(1.0), 1000000);
    EXPECT_EQ(time::ms(1.0), 1000000000LL);
    EXPECT_DOUBLE_EQ(time::toUs(time::us(123.0)), 123.0);
    EXPECT_DOUBLE_EQ(time::toSec(time::sec(2.0)), 2.0);
}

TEST(Units, TransferTimeMatchesBandwidth)
{
    // 1 GB at 1 GB/s should take 1 second.
    const SimTime t = transferTime(1000000000ull, 1.0);
    EXPECT_NEAR(time::toSec(t), 1.0, 1e-9);
}

TEST(Units, TransferTimeNeverZeroForNonZeroBytes)
{
    EXPECT_GE(transferTime(1, 1e9), 1);
    EXPECT_EQ(transferTime(0, 10.0), 0);
}

TEST(Units, BandwidthInverseOfTransferTime)
{
    const Bytes b = size::mib(64);
    const SimTime t = transferTime(b, 12.5);
    EXPECT_NEAR(bandwidthGBs(b, t), 12.5, 0.01);
}

TEST(Units, FormatHelpers)
{
    EXPECT_EQ(formatTime(time::ms(1.5)), "1.500 ms");
    EXPECT_EQ(formatBytes(size::mib(2)), "2.00 MiB");
    EXPECT_EQ(formatBytes(100), "100 B");
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next32() == b.next32());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= (v == 2);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng r(11);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(r.normal(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMedian)
{
    Rng r(13);
    SampleSet s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.lognormal(6.0, 0.3));
    EXPECT_NEAR(s.median(), 6.0, 0.1);
    // Right-skew: mean above median.
    EXPECT_GT(s.mean(), s.median());
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(5);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next32() == b.next32());
    EXPECT_LT(same, 3);
}

// --------------------------------------------------------------- stats

TEST(RunningStatsTest, BasicMoments)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombined)
{
    RunningStats a, b, all;
    Rng r(17);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.normal(3.0, 1.5);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(SampleSetTest, PercentilesExact)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(SampleSetTest, CdfMonotoneAndEndsAtOne)
{
    SampleSet s;
    Rng r(23);
    for (int i = 0; i < 500; ++i)
        s.add(r.uniform(0.0, 10.0));
    const auto pts = s.cdf();
    ASSERT_EQ(pts.size(), 500u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_GE(pts[i].first, pts[i - 1].first);
        EXPECT_GT(pts[i].second, pts[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(SampleSetTest, CdfDropTopExcludesLargest)
{
    SampleSet s;
    for (double x : {1.0, 2.0, 3.0, 100.0, 200.0})
        s.add(x);
    const auto pts = s.cdf(2);
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_DOUBLE_EQ(pts.back().first, 3.0);
    // Mean is computed over all points regardless (paper's method).
    EXPECT_DOUBLE_EQ(s.mean(), 61.2);
}

TEST(StatsFunctions, GeomeanAndMean)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 8.0}), 5.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

// --------------------------------------------------------------- table

TEST(Table, AlignsAndCounts)
{
    TextTable t("demo");
    t.header({"app", "base", "cc"});
    t.row({"2dconv", "1.00", "19.69"});
    t.row({"cnn", "1.00", "1.17"});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("19.69"), std::string::npos);
}

TEST(Table, CsvEmission)
{
    TextTable t;
    t.header({"a", "b"});
    t.row({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsArityMismatch)
{
    TextTable t;
    t.header({"a", "b"});
    EXPECT_THROW(t.row({"only-one"}), FatalError);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::ratio(5.8), "5.80x");
    EXPECT_EQ(TextTable::pct(24.0), "24.0%");
}

// ----------------------------------------------------------------- log

TEST(Log, FatalThrows)
{
    EXPECT_THROW(fatal("bad config value %d", 42), FatalError);
}

TEST(Log, FatalMessageContainsFormat)
{
    try {
        fatal("value %d out of range", 7);
        FAIL() << "fatal must throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value 7 out of range"),
                  std::string::npos);
    }
}

} // namespace
} // namespace hcc
