/**
 * @file
 * Tests for hcc::obs: registry semantics, deterministic stat dumps,
 * the JSON parser, and the stats-diff regression gate.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/log.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/stats_io.hpp"
#include "workloads/workload.hpp"

namespace hcc::obs {
namespace {

// -------------------------------------------------------- registry

TEST(Registry, CounterHandlesAreStableAndShared)
{
    Registry reg;
    Counter &a = reg.counter("x.calls");
    a.add();
    a.add(41);
    Counter &b = reg.counter("x.calls");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 42u);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.contains("x.calls"));
    EXPECT_FALSE(reg.contains("x.other"));
}

TEST(Registry, KindConflictIsFatal)
{
    Registry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), hcc::FatalError);
    EXPECT_THROW(reg.distribution("x"), hcc::FatalError);
}

TEST(Registry, GaugeTracksWatermarksAndSamples)
{
    Registry reg;
    Gauge &g = reg.gauge("pool.occupancy");
    g.set(2, 100);
    g.adjust(3, 200);
    g.set(1, 300);
    EXPECT_EQ(g.value(), 1);
    EXPECT_EQ(g.min(), 1);
    EXPECT_EQ(g.max(), 5);
    ASSERT_EQ(g.samples().size(), 3u);
    EXPECT_EQ(g.samples()[1].ts, 200);
    EXPECT_EQ(g.samples()[1].value, 5);
}

TEST(Registry, GaugeCoalescesEqualLevelsAndUntimedUpdates)
{
    Registry reg;
    Gauge &g = reg.gauge("g");
    g.set(7, 10);
    g.set(7, 20);   // same level: coalesced away
    g.set(9);       // no timestamp: no sample
    EXPECT_EQ(g.samples().size(), 1u);
    EXPECT_EQ(g.value(), 9);
}

TEST(Registry, GaugeKeepsEveryChangeBelowCap)
{
    Registry reg;
    Gauge &g = reg.gauge("g");
    for (std::size_t i = 0; i < Gauge::kMaxSamples - 1; ++i)
        g.set(static_cast<std::int64_t>(i % 2),
              static_cast<SimTime>(i));
    EXPECT_EQ(g.samples().size(), Gauge::kMaxSamples - 1);
    EXPECT_EQ(g.droppedSamples(), 0u);
    EXPECT_EQ(g.sampleStride(), 1u);
}

TEST(Registry, GaugeDownsamplesAtCapWithDoublingStride)
{
    Registry reg;
    Gauge &g = reg.gauge("g");
    const std::size_t total = Gauge::kMaxSamples * 3;
    for (std::size_t i = 0; i < total; ++i)
        g.set(static_cast<std::int64_t>(i % 2),
              static_cast<SimTime>(i));
    // Bounded retention, coverage of the whole series.
    EXPECT_LT(g.samples().size(), Gauge::kMaxSamples);
    EXPECT_GE(g.samples().size(), Gauge::kMaxSamples / 4);
    EXPECT_EQ(g.samples().size() + g.droppedSamples(), total);
    EXPECT_GE(g.sampleStride(), 4u);
    // Retained samples stay in time order and start at the origin.
    EXPECT_EQ(g.samples().front().ts, 0);
    for (std::size_t i = 1; i < g.samples().size(); ++i)
        EXPECT_LT(g.samples()[i - 1].ts, g.samples()[i].ts);
    EXPECT_GT(g.samples().back().ts,
              static_cast<SimTime>(total / 2));
}

TEST(Registry, GaugeDownsamplingIsDeterministic)
{
    Registry reg;
    Gauge &a = reg.gauge("a");
    Gauge &b = reg.gauge("b");
    for (std::size_t i = 0; i < Gauge::kMaxSamples + 777; ++i) {
        const auto v = static_cast<std::int64_t>((i * 7) % 5);
        a.set(v, static_cast<SimTime>(i));
        b.set(v, static_cast<SimTime>(i));
    }
    ASSERT_EQ(a.samples().size(), b.samples().size());
    for (std::size_t i = 0; i < a.samples().size(); ++i) {
        EXPECT_EQ(a.samples()[i].ts, b.samples()[i].ts);
        EXPECT_EQ(a.samples()[i].value, b.samples()[i].value);
    }
}

TEST(Registry, ProfileScopeRecordsUnderHostPrefix)
{
    Registry reg;
    {
        ProfileScope scope(&reg, "unit");
    }
    ASSERT_TRUE(reg.contains("host.profile.unit_us"));
    EXPECT_EQ(reg.distribution("host.profile.unit_us").count(), 1u);
}

TEST(Registry, ProfileScopeToleratesNullRegistry)
{
    ProfileScope scope(nullptr, "ignored");  // must not crash
}

// ------------------------------------------------------ stats dump

Registry &
sampleRegistry(Registry &reg)
{
    reg.counter("tee.bounce.acquires").add(3);
    reg.gauge("tee.bounce.occupancy").set(2, 100);
    reg.distribution("x.latency").add(1.5);
    reg.distribution("x.latency").add(2.5);
    reg.distribution("host.profile.run_us").add(123.0);
    return reg;
}

TEST(StatsIo, DumpExcludesHostStatsByDefault)
{
    Registry reg;
    const auto text = statsJson(sampleRegistry(reg));
    EXPECT_EQ(text.find("host.profile"), std::string::npos);
    EXPECT_NE(statsJson(reg, true).find("host.profile"),
              std::string::npos);
}

TEST(StatsIo, DumpParsesBackWithMatchingFields)
{
    Registry reg;
    const auto map =
        parseStatsJson(statsJson(sampleRegistry(reg))).take();
    ASSERT_EQ(map.count("tee.bounce.acquires"), 1u);
    EXPECT_EQ(map.at("tee.bounce.acquires").type, "counter");
    EXPECT_EQ(map.at("tee.bounce.acquires").fields.at("value"), 3.0);
    EXPECT_EQ(map.at("tee.bounce.occupancy").type, "gauge");
    EXPECT_EQ(map.at("tee.bounce.occupancy").fields.at("max"), 2.0);
    EXPECT_EQ(map.at("x.latency").type, "distribution");
    EXPECT_EQ(map.at("x.latency").fields.at("mean"), 2.0);
    EXPECT_EQ(map.count("host.profile.run_us"), 0u);
}

workloads::WorkloadResult
runSeeded(bool cc)
{
    rt::SystemConfig sys;
    sys.cc = cc;
    sys.seed = 7;
    workloads::WorkloadParams params;
    params.seed = 7;
    return workloads::runWorkload("atax", sys, params);
}

TEST(StatsIo, SameSeedRunsDumpByteIdentically)
{
    const auto a = runSeeded(true);
    const auto b = runSeeded(true);
    ASSERT_TRUE(a.stats && b.stats);
    EXPECT_EQ(statsJson(*a.stats), statsJson(*b.stats));
}

TEST(StatsIo, CcRunCoversManyComponents)
{
    const auto res = runSeeded(true);
    const auto map = parseStatsJson(statsJson(*res.stats)).take();
    std::set<std::string> components;
    for (const auto &[name, snap] : map)
        components.insert(name.substr(0, name.find('.')));
    EXPECT_GE(map.size(), 20u);
    EXPECT_GE(components.size(), 5u) << statsJson(*res.stats);
    EXPECT_TRUE(components.count("tee"));
    EXPECT_TRUE(components.count("crypto"));
}

// ------------------------------------------------------------ json

TEST(Json, ParsesScalarsArraysAndObjects)
{
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(
        R"({"a": [1, -2.5e1, true, null], "b": "q\"uo\\te"})", v,
        err)) << err;
    ASSERT_TRUE(v.isObject());
    const json::Value *a = v.find("a");
    ASSERT_TRUE(a && a->isArray());
    ASSERT_EQ(a->array.size(), 4u);
    EXPECT_EQ(a->array[0].number, 1.0);
    EXPECT_EQ(a->array[1].number, -25.0);
    EXPECT_TRUE(a->array[2].boolean);
    EXPECT_TRUE(a->array[3].isNull());
    ASSERT_TRUE(v.find("b"));
    EXPECT_EQ(v.find("b")->string, "q\"uo\\te");
}

TEST(Json, RejectsMalformedInput)
{
    json::Value v;
    std::string err;
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"\\x\""}) {
        EXPECT_FALSE(json::parse(bad, v, err)) << bad;
        EXPECT_FALSE(err.empty());
    }
}

// ------------------------------------------------------ stats-diff

StatsMap
mapOf(Registry &reg)
{
    return parseStatsJson(statsJson(reg)).take();
}

TEST(StatsDiff, IdenticalDumpsPass)
{
    Registry a, b;
    const auto diff =
        diffStats(mapOf(sampleRegistry(a)), mapOf(sampleRegistry(b)));
    EXPECT_TRUE(diff.pass());
    EXPECT_GT(diff.compared, 0u);
    EXPECT_NE(diff.report().find("no drift"), std::string::npos);
}

TEST(StatsDiff, ValueDriftFailsAndToleranceForgives)
{
    Registry a, b;
    sampleRegistry(a);
    sampleRegistry(b);
    b.counter("tee.bounce.acquires").add(1);  // 3 -> 4
    const auto strict = diffStats(mapOf(a), mapOf(b));
    ASSERT_FALSE(strict.pass());
    EXPECT_EQ(strict.drifts.front().stat, "tee.bounce.acquires");
    EXPECT_NE(strict.report().find("tee.bounce.acquires"),
              std::string::npos);
    EXPECT_TRUE(diffStats(mapOf(a), mapOf(b), 0.5).pass());
}

TEST(StatsDiff, MissingAddedAndRetypedStatsAlwaysFail)
{
    Registry a, b;
    sampleRegistry(a);
    sampleRegistry(b);
    b.counter("x.new");
    auto diff = diffStats(mapOf(a), mapOf(b), 1e9);
    ASSERT_EQ(diff.drifts.size(), 1u);
    EXPECT_EQ(diff.drifts.front().what, "added");

    diff = diffStats(mapOf(b), mapOf(a), 1e9);
    EXPECT_EQ(diff.drifts.front().what, "missing");

    Registry c;
    sampleRegistry(c);
    c.gauge("x.new");
    diff = diffStats(mapOf(b), mapOf(c), 1e9);
    ASSERT_FALSE(diff.pass());
    EXPECT_EQ(diff.drifts.front().what, "type");
}

} // namespace
} // namespace hcc::obs
