/**
 * @file
 * Tests for the critical-path engine (trace/critpath.hpp): DAG
 * construction on hand-built multi-stream traces with known critical
 * paths, tie-breaking determinism, the exact share partition, slack,
 * the crypto/link split, the classifier rules, and the end-to-end
 * classification claim on real workload cells (native copy cells are
 * link-bound, the same cells under CC are crypto-bound, the ML cells
 * stay compute-bound — the paper's Fig. 4/13/14 story).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "obs/registry.hpp"
#include "tee/secure_channel.hpp"
#include "trace/critpath.hpp"
#include "trace/tracer.hpp"
#include "workloads/workload.hpp"

namespace hcc::trace {
namespace {

TraceEvent
mk(EventKind kind, SimTime start, SimTime end, int stream = -1,
   std::uint64_t correlation = 0, SimTime wait = 0)
{
    TraceEvent e;
    e.kind = kind;
    e.start = start;
    e.end = end;
    e.stream = stream;
    e.correlation = correlation;
    e.queue_wait = wait;
    return e;
}

SimTime
sharesSum(const CriticalPath &p)
{
    return std::accumulate(p.shares.begin(), p.shares.end(),
                           SimTime{0});
}

// ------------------------------------------------ DAG and the walk

TEST(CritPath, EmptyTraceIsComputeBoundZero)
{
    Tracer t;
    const auto a = analyzeCritical(t);
    EXPECT_EQ(a.path.end_to_end, 0);
    EXPECT_EQ(a.path.on_path_ps, 0);
    EXPECT_TRUE(a.path.segments.empty());
    EXPECT_EQ(a.path.bottleneck, Bottleneck::ComputeBound);
}

TEST(CritPath, SingleChainLaunchKernelPartitionsExactly)
{
    Tracer t;
    const auto c = t.record(mk(EventKind::Launch, 0, 10), "k");
    t.record(mk(EventKind::Kernel, 15, 115, 0, c, 5), "k");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.end_to_end, 115);
    // Kernel [15,115] bound to its launch; the [10,15] gap before a
    // Kernel is queue time (KQT -> launch); launch span [0,10].
    EXPECT_EQ(p.share(PathCategory::Compute), 100);
    EXPECT_EQ(p.share(PathCategory::Launch), 15);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
    EXPECT_EQ(p.on_path_ps, 110);
    ASSERT_EQ(p.segments.size(), 2u);
    // Segments come back in ascending time order.
    EXPECT_EQ(p.segments[0].event, 0u);
    EXPECT_EQ(p.segments[1].event, 1u);
}

TEST(CritPath, ForkJoinPicksTheLongerBranch)
{
    Tracer t;
    const auto c0 = t.record(mk(EventKind::Launch, 0, 10), "a");
    t.record(mk(EventKind::Kernel, 10, 110, 0, c0), "a"); // long
    const auto c1 = t.record(mk(EventKind::Launch, 10, 18), "b");
    t.record(mk(EventKind::Kernel, 20, 50, 1, c1), "b"); // short
    // Device-wide sync joins both streams.
    t.record(mk(EventKind::Sync, 18, 115), "sync");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.end_to_end, 115);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
    // Path: launch a -> kernel a -> sync tail; kernel b off-path.
    EXPECT_EQ(p.share(PathCategory::Compute), 100);
    EXPECT_EQ(p.share(PathCategory::Launch), 10);
    EXPECT_EQ(p.share(PathCategory::Sync), 5);
    bool kernel_b_on_path = false;
    for (const auto &seg : p.segments)
        kernel_b_on_path |= seg.event == 3;
    EXPECT_FALSE(kernel_b_on_path);
    // The critical events carry no slack.
    EXPECT_EQ(p.slack[0], 0);
    EXPECT_EQ(p.slack[1], 0);
    EXPECT_EQ(p.slack[4], 0);
}

TEST(CritPath, StreamChainSlackOnTheShorterStream)
{
    Tracer t;
    t.record(mk(EventKind::Kernel, 10, 110, 0), "long");
    t.record(mk(EventKind::Kernel, 20, 50, 1), "short");
    t.record(mk(EventKind::MemcpyD2H, 110, 120, 0), "memcpy");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.end_to_end, 110);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
    // The short kernel could grow until the run's end.
    EXPECT_EQ(p.slack[1], 70);
    EXPECT_EQ(p.slack[0], 0);
    EXPECT_EQ(p.slack[2], 0);
}

TEST(CritPath, TieBreaksToHigherIndexDeterministically)
{
    Tracer t;
    // Two async copies end at the same instant; the sync that waits
    // on both must bind to the higher event index.
    t.record(mk(EventKind::MemcpyH2D, 0, 100, 0), "memcpy");
    t.record(mk(EventKind::MemcpyH2D, 0, 100, 1), "memcpy");
    t.record(mk(EventKind::Sync, 100, 110), "sync");
    const auto p = analyzeCritical(t).path;
    ASSERT_EQ(p.segments.size(), 2u);
    EXPECT_EQ(p.segments[0].event, 1u);
    EXPECT_EQ(p.segments[1].event, 2u);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
    // Determinism: the same trace analyzes to the same JSON.
    EXPECT_EQ(criticalPathJson(p),
              criticalPathJson(analyzeCritical(t).path));
}

TEST(CritPath, ZeroDurationEventsStayWellFormed)
{
    Tracer t;
    const auto c = t.record(mk(EventKind::Launch, 10, 10), "k");
    t.record(mk(EventKind::Kernel, 10, 20, 0, c), "k");
    t.record(mk(EventKind::Sync, 20, 20), "sync");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.end_to_end, 10);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
    EXPECT_EQ(p.share(PathCategory::Compute), 10);
    // All three events appear; the zero-width ones as empty slices.
    EXPECT_EQ(p.segments.size(), 3u);
}

TEST(CritPath, OrphanLaunchAndUnmatchedKernelDoNotCrash)
{
    Tracer t;
    t.record(mk(EventKind::Launch, 0, 5, -1, 77), "orphan");
    t.record(mk(EventKind::Kernel, 10, 20, 0, 99), "stray");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.end_to_end, 20);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
    EXPECT_EQ(p.share(PathCategory::Compute), 10);
    // No correlation edge exists, so the time before the stray
    // kernel is untraced host ramp-up, not queue wait.
    EXPECT_EQ(p.share(PathCategory::Other), 10);
}

TEST(CritPath, LqtGapSplitsIntoLaunchAndOther)
{
    Tracer t;
    t.record(mk(EventKind::MallocDevice, 0, 10), "cudaMalloc");
    // Gap [10,40] before a launch with queue_wait 12: the measured
    // LQT rides the launch category, the rest is host framework time.
    const auto c =
        t.record(mk(EventKind::Launch, 40, 50, -1, 0, 12), "k");
    t.record(mk(EventKind::Kernel, 50, 90, 0, c), "k");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.end_to_end, 90);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
    EXPECT_EQ(p.share(PathCategory::Launch), 10 + 12);
    EXPECT_EQ(p.share(PathCategory::Other), 30 - 12);
    EXPECT_EQ(p.share(PathCategory::Alloc), 10);
    EXPECT_EQ(p.share(PathCategory::Compute), 40);
}

// ----------------------------------------- faults and the partition

TEST(CritPath, FaultOverlapReattributedToFault)
{
    Tracer t;
    t.record(mk(EventKind::Kernel, 0, 100, 0), "k");
    t.record(mk(EventKind::Fault, 50, 80), "fault");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.end_to_end, 100);
    EXPECT_EQ(p.share(PathCategory::Compute), 70);
    EXPECT_EQ(p.share(PathCategory::Fault), 30);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
}

TEST(CritPath, FaultTailBeyondLastEventIsOnPath)
{
    Tracer t;
    t.record(mk(EventKind::Kernel, 0, 100, 0), "k");
    t.record(mk(EventKind::Fault, 90, 130), "fault");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.end_to_end, 130);
    // [90,100] overlaps the kernel, [100,130] extends past it.
    EXPECT_EQ(p.share(PathCategory::Fault), 40);
    EXPECT_EQ(p.share(PathCategory::Compute), 90);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
}

TEST(CritPath, MessyMultiStreamTraceStillPartitionsExactly)
{
    Tracer t;
    t.record(mk(EventKind::MallocManaged, 0, 7), "cudaMallocManaged");
    TraceEvent uvm = mk(EventKind::MemcpyH2D, 10, 60, 0);
    uvm.encrypted_paging = true;
    t.record(uvm, "memcpy");
    const auto c = t.record(mk(EventKind::Launch, 7, 15), "k");
    t.record(mk(EventKind::Kernel, 60, 160, 0, c, 45), "k");
    t.record(mk(EventKind::MemcpyD2H, 160, 200, 0), "memcpy");
    t.record(mk(EventKind::Fault, 150, 170), "fault");
    t.record(mk(EventKind::Sync, 15, 205), "sync");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.end_to_end, 205);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
    EXPECT_GT(p.share(PathCategory::Fault), 0);
    EXPECT_GT(p.share(PathCategory::Uvm), 0);
}

// ------------------------------------------------ crypto/link split

TEST(CritPath, CopyTimeSplitsByRegistryBusyRatio)
{
    Tracer t;
    t.record(mk(EventKind::MemcpyH2D, 0, 100, -1), "memcpy");
    obs::Registry reg;
    reg.counter("sim.timeline.cc_crypto.busy_ps").add(3000);
    reg.counter("pcie.link.busy_ps_h2d").add(1000);
    const auto p = analyzeCritical(t, &reg).path;
    // 3:1 busy ratio -> 75 ps crypto, 25 ps link, exactly.
    EXPECT_EQ(p.share(PathCategory::Crypto), 75);
    EXPECT_EQ(p.share(PathCategory::Link), 25);
    EXPECT_EQ(sharesSum(p), p.end_to_end);
    ASSERT_EQ(p.segments.size(), 1u);
    EXPECT_EQ(p.segments[0].category, PathCategory::Crypto);
}

TEST(CritPath, NoRegistryMeansPureLink)
{
    Tracer t;
    t.record(mk(EventKind::MemcpyH2D, 0, 100, -1), "memcpy");
    const auto p = analyzeCritical(t).path;
    EXPECT_EQ(p.share(PathCategory::Link), 100);
    EXPECT_EQ(p.share(PathCategory::Crypto), 0);
}

// ------------------------------------------------------- classifier

using Shares = std::array<SimTime, kPathCategoryCount>;

Shares
shares(PathCategory c, SimTime v, SimTime rest_compute)
{
    Shares s{};
    s[static_cast<std::size_t>(c)] = v;
    s[static_cast<std::size_t>(PathCategory::Compute)] +=
        rest_compute;
    return s;
}

TEST(Classifier, RulesFireInPriorityOrder)
{
    EXPECT_EQ(classifyShares(shares(PathCategory::Fault, 10, 90),
                             100),
              Bottleneck::FaultBound);
    EXPECT_EQ(classifyShares(shares(PathCategory::Fault, 9, 91), 100),
              Bottleneck::ComputeBound);
    EXPECT_EQ(classifyShares(shares(PathCategory::Uvm, 20, 80), 100),
              Bottleneck::UvmThrash);
    // 5% UVM share alone is not thrash unless the registry saw
    // substantial in-kernel fault servicing time.
    EXPECT_EQ(classifyShares(shares(PathCategory::Uvm, 5, 95), 100),
              Bottleneck::ComputeBound);
    EXPECT_EQ(classifyShares(shares(PathCategory::Uvm, 5, 95), 100,
                             /*uvm_fault_ps=*/20),
              Bottleneck::UvmThrash);
    EXPECT_EQ(classifyShares(shares(PathCategory::Crypto, 15, 85),
                             100),
              Bottleneck::CryptoBound);
    EXPECT_EQ(classifyShares(shares(PathCategory::Link, 15, 85), 100),
              Bottleneck::LinkBound);
    EXPECT_EQ(classifyShares(shares(PathCategory::Launch, 31, 30),
                             100),
              Bottleneck::LaunchBound);
    // Launch-heavy but compute still larger -> compute-bound.
    EXPECT_EQ(classifyShares(shares(PathCategory::Launch, 31, 69),
                             100),
              Bottleneck::ComputeBound);
    EXPECT_EQ(classifyShares(Shares{}, 0), Bottleneck::ComputeBound);
}

TEST(Classifier, CryptoMustMatchOrBeatLink)
{
    Shares s{};
    s[static_cast<std::size_t>(PathCategory::Crypto)] = 20;
    s[static_cast<std::size_t>(PathCategory::Link)] = 30;
    s[static_cast<std::size_t>(PathCategory::Compute)] = 50;
    EXPECT_EQ(classifyShares(s, 100), Bottleneck::LinkBound);
    s[static_cast<std::size_t>(PathCategory::Crypto)] = 30;
    s[static_cast<std::size_t>(PathCategory::Link)] = 20;
    EXPECT_EQ(classifyShares(s, 100), Bottleneck::CryptoBound);
}

TEST(Classifier, StableCodes)
{
    EXPECT_EQ(static_cast<int>(Bottleneck::ComputeBound), 0);
    EXPECT_EQ(static_cast<int>(Bottleneck::CryptoBound), 1);
    EXPECT_EQ(static_cast<int>(Bottleneck::LinkBound), 2);
    EXPECT_EQ(static_cast<int>(Bottleneck::LaunchBound), 3);
    EXPECT_EQ(static_cast<int>(Bottleneck::UvmThrash), 4);
    EXPECT_EQ(static_cast<int>(Bottleneck::FaultBound), 5);
    EXPECT_EQ(bottleneckName(Bottleneck::CryptoBound),
              "crypto-bound");
    EXPECT_EQ(bottleneckName(Bottleneck::UvmThrash), "uvm-thrash");
}

// -------------------------------------------- metrics share the pass

TEST(CritPath, MetricsMatchLegacyAnalyze)
{
    Tracer t;
    const auto c = t.record(mk(EventKind::Launch, 0, 10, -1, 0, 2),
                            "k");
    t.record(mk(EventKind::Kernel, 12, 112, 0, c, 2), "k");
    t.record(mk(EventKind::MemcpyH2D, 112, 212, -1), "memcpy");
    t.record(mk(EventKind::Sync, 212, 222), "sync");
    const auto legacy = analyze(t);
    const auto both = analyzeCritical(t).metrics;
    EXPECT_EQ(legacy.launches, both.launches);
    EXPECT_EQ(legacy.kernels, both.kernels);
    EXPECT_EQ(legacy.sumKlo(), both.sumKlo());
    EXPECT_EQ(legacy.copy_h2d, both.copy_h2d);
    EXPECT_EQ(legacy.sync_time, both.sync_time);
    EXPECT_EQ(legacy.end_to_end, both.end_to_end);
}

// --------------------------------------------------- obs publishing

TEST(CritPath, PublishesCountersToRegistry)
{
    Tracer t;
    t.record(mk(EventKind::MemcpyH2D, 0, 100, -1), "memcpy");
    const auto p = analyzeCritical(t).path;
    obs::Registry reg;
    publishCriticalPath(p, reg);
    EXPECT_EQ(reg.counter("critpath.end_to_end_ps").value(), 100u);
    EXPECT_EQ(reg.counter("critpath.on_path_ps").value(), 100u);
    EXPECT_EQ(reg.counter("critpath.events_on_path").value(), 1u);
    EXPECT_EQ(reg.counter("critpath.bottleneck_code").value(),
              static_cast<std::uint64_t>(Bottleneck::LinkBound));
    EXPECT_EQ(reg.counter("critpath.share.link_ps").value(), 100u);
    EXPECT_EQ(reg.counter("critpath.share.compute_ps").value(), 0u);
}

// ----------------------------------------------------- report / JSON

TEST(CritPath, ReportAndJsonAreWellFormed)
{
    Tracer t;
    const auto c = t.record(mk(EventKind::Launch, 0, 10), "k");
    t.record(mk(EventKind::Kernel, 10, 110, 0, c), "k");
    t.record(mk(EventKind::Kernel, 20, 50, 1), "idle");
    const auto p = analyzeCritical(t).path;
    const auto report = criticalReport(p, t, 5);
    EXPECT_NE(report.find("critical path"), std::string::npos);
    EXPECT_NE(report.find("bottleneck"), std::string::npos);
    EXPECT_NE(report.find("top on-path contributors"),
              std::string::npos);
    EXPECT_NE(report.find("largest slack"), std::string::npos);
    const auto json = criticalPathJson(p);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"bottleneck\": \"compute-bound\""),
              std::string::npos);
    std::ostringstream full;
    writeCriticalJson(p, t, full);
    EXPECT_NE(full.str().find("\"hccsim_critical_version\": 1"),
              std::string::npos);
    EXPECT_NE(full.str().find("\"segments\""), std::string::npos);
}

// ------------------------------------- the paper's classification

workloads::WorkloadResult
runCell(const std::string &app, bool cc)
{
    rt::SystemConfig sys;
    sys.cc = cc;
    workloads::WorkloadParams params;
    return workloads::runWorkload(app, sys, params);
}

TEST(CritPathWorkloads, CopyHeavyCellFlipsLinkToCryptoUnderCC)
{
    const auto base = runCell("atax", false);
    const auto cc = runCell("atax", true);
    // Native: PCIe wire time gates the run; no crypto exists at all.
    EXPECT_EQ(base.critical.bottleneck, Bottleneck::LinkBound);
    EXPECT_EQ(base.critical.share(PathCategory::Crypto), 0);
    // CC: the same copies now pay AES-GCM; crypto takes over.
    EXPECT_EQ(cc.critical.bottleneck, Bottleneck::CryptoBound);
    EXPECT_GT(cc.critical.share(PathCategory::Crypto),
              cc.critical.share(PathCategory::Link));
    // Both partitions are exact.
    EXPECT_EQ(sharesSum(base.critical), base.critical.end_to_end);
    EXPECT_EQ(sharesSum(cc.critical), cc.critical.end_to_end);
}

TEST(CritPathWorkloads, SpeculationMovesCryptoOffTheCriticalPath)
{
    // Overlap-hidden seals must not be charged to Crypto: under the
    // speculative tier the copy-heavy cell's crypto path time
    // collapses and the crypto:link balance tilts back toward the
    // wire (docs/OVERLAP.md).
    const auto overlapped = [](tee::OverlapMode mode) {
        rt::SystemConfig sys;
        sys.cc = true;
        sys.channel.overlap = mode;
        workloads::WorkloadParams params;
        return workloads::runWorkload("atax", sys, params);
    };
    const auto serial = overlapped(tee::OverlapMode::None);
    const auto spec = overlapped(tee::OverlapMode::Speculative);
    const auto ratio = [](const CriticalPath &p) {
        return static_cast<double>(p.share(PathCategory::Crypto))
            / static_cast<double>(p.share(PathCategory::Link));
    };
    EXPECT_GT(serial.critical.share(PathCategory::Crypto),
              2 * spec.critical.share(PathCategory::Crypto));
    EXPECT_GT(spec.critical.share(PathCategory::Link), 0);
    EXPECT_GT(ratio(serial.critical), ratio(spec.critical));
    EXPECT_LT(spec.end_to_end, serial.end_to_end);
    // The partition stays exact in both tiers.
    EXPECT_EQ(sharesSum(serial.critical),
              serial.critical.end_to_end);
    EXPECT_EQ(sharesSum(spec.critical), spec.critical.end_to_end);
}

TEST(CritPathWorkloads, ComputeBoundCellStaysComputeBoundUnderCC)
{
    // Fig. 13/14: ML training/serving is compute-dominant, so CC
    // only nibbles at the edges (alloc, copies) of the path.
    const auto base = runCell("cnn", false);
    const auto cc = runCell("cnn", true);
    EXPECT_EQ(base.critical.bottleneck, Bottleneck::ComputeBound);
    EXPECT_EQ(cc.critical.bottleneck, Bottleneck::ComputeBound);
    EXPECT_EQ(base.critical.share(PathCategory::Crypto), 0);
    EXPECT_EQ(sharesSum(cc.critical), cc.critical.end_to_end);
}

TEST(CritPathWorkloads, RepeatedRunsAreByteIdentical)
{
    const auto a = runCell("atax", true);
    const auto b = runCell("atax", true);
    EXPECT_EQ(criticalPathJson(a.critical),
              criticalPathJson(b.critical));
    std::ostringstream ja, jb;
    writeCriticalJson(a.critical, a.trace, ja);
    writeCriticalJson(b.critical, b.trace, jb);
    EXPECT_EQ(ja.str(), jb.str());
}

} // namespace
} // namespace hcc::trace
