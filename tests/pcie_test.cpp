/**
 * @file
 * Tests for the PCIe link model: latency/bandwidth split, duplex
 * independence, throttling, and the small-transfer bandwidth collapse
 * that shapes Fig. 4a.
 */

#include <gtest/gtest.h>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "fault/fault.hpp"
#include "obs/registry.hpp"
#include "pcie/link.hpp"

namespace hcc::pcie {
namespace {

TEST(PcieLink, LargeTransferApproachesLineRate)
{
    PcieLink link;
    const Bytes b = size::gib(1);
    const SimTime t = link.dmaDuration(b);
    EXPECT_NEAR(bandwidthGBs(b, t), link.config().effective_gbps, 0.1);
}

TEST(PcieLink, SmallTransferIsLatencyDominated)
{
    PcieLink link;
    const SimTime t = link.dmaDuration(64);
    // 64 B at 26 GB/s is ~2.5 ns; the 1.2 us latency dominates.
    EXPECT_GT(t, time::us(1.0));
    EXPECT_LT(bandwidthGBs(64, t), 0.1);
}

TEST(PcieLink, BandwidthMonotoneInSize)
{
    PcieLink link;
    double prev = 0.0;
    for (Bytes b = 64; b <= size::gib(1); b *= 4) {
        const double bw = bandwidthGBs(b, link.dmaDuration(b));
        EXPECT_GE(bw, prev) << "at size " << b;
        prev = bw;
    }
}

TEST(PcieLink, DirectionsAreIndependent)
{
    PcieLink link;
    const auto h2d =
        link.dma(0, size::mib(256), Direction::HostToDevice);
    const auto d2h =
        link.dma(0, size::mib(256), Direction::DeviceToHost);
    EXPECT_EQ(h2d.start, 0);
    EXPECT_EQ(d2h.start, 0) << "full duplex: no cross-direction queuing";
}

TEST(PcieLink, SameDirectionSerializes)
{
    PcieLink link;
    const auto a = link.dma(0, size::mib(64), Direction::HostToDevice);
    const auto b = link.dma(0, size::mib(64), Direction::HostToDevice);
    EXPECT_EQ(b.start, a.end);
}

TEST(PcieLink, ThrottledDmaIsSlower)
{
    PcieLink link;
    const SimTime full = link.dmaDuration(size::mib(64));
    const SimTime throttled = link.dmaDuration(size::mib(64), 3.0);
    EXPECT_GT(throttled, full);
    EXPECT_NEAR(bandwidthGBs(size::mib(64), throttled), 3.0, 0.2);
}

TEST(PcieLink, ThrottleCannotExceedLineRate)
{
    PcieLink link;
    const SimTime at_line = link.dmaDuration(size::mib(64));
    const SimTime asked_faster = link.dmaDuration(size::mib(64), 999.0);
    EXPECT_EQ(at_line, asked_faster);
}

TEST(PcieLink, StatsAccumulate)
{
    PcieLink link;
    link.dma(0, 1024, Direction::HostToDevice);
    link.dma(0, 1024, Direction::HostToDevice);
    link.dma(0, 1024, Direction::DeviceToHost);
    EXPECT_EQ(link.transactions(Direction::HostToDevice), 2u);
    EXPECT_EQ(link.transactions(Direction::DeviceToHost), 1u);
    EXPECT_GT(link.busyTime(Direction::HostToDevice), 0);
    link.reset();
    EXPECT_EQ(link.transactions(Direction::HostToDevice), 0u);
}

TEST(PcieLink, RejectsNonPositiveBandwidth)
{
    LinkConfig cfg;
    cfg.effective_gbps = 0.0;
    EXPECT_THROW(PcieLink{cfg}, FatalError);
}

TEST(PcieLink, ReplayBytesAccountedSeparately)
{
    // Regression: replayed payload used to vanish from the byte
    // accounting.  It now lands in replay_bytes_* while bytes_*
    // keeps counting goodput only.
    obs::Registry reg;
    fault::FaultConfig fc;
    fc.set(fault::Site::PcieReplay, 1.0);
    fault::Injector inj(fc, 3, &reg);
    PcieLink link(LinkConfig{}, &reg, &inj);
    const Bytes b = size::mib(8);
    link.dma(0, b, Direction::HostToDevice);
    const auto &entries = reg.entries();
    const auto replay = entries.find("pcie.link.replay_bytes_h2d");
    ASSERT_NE(replay, entries.end());
    EXPECT_EQ(replay->second.counter->value(), b)
        << "one replay retransmits the whole payload once";
    const auto good = entries.find("pcie.link.bytes_h2d");
    ASSERT_NE(good, entries.end());
    EXPECT_EQ(good->second.counter->value(), b)
        << "goodput must not double-count the replayed wire bytes";
    EXPECT_EQ(entries.count("pcie.link.replay_bytes_d2h"), 0u)
        << "untouched directions create no counter";
}

TEST(PcieLink, NoReplayCounterWithoutReplays)
{
    obs::Registry reg;
    PcieLink link(LinkConfig{}, &reg);
    link.dma(0, size::mib(1), Direction::HostToDevice);
    EXPECT_EQ(reg.entries().count("pcie.link.replay_bytes_h2d"), 0u)
        << "lazy creation keeps unfaulted dumps byte-identical";
}

} // namespace
} // namespace hcc::pcie
