/**
 * @file
 * Tests for runtime events (record/elapsed/wait) and UVM
 * oversubscription/eviction behaviour.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "gpu/uvm.hpp"
#include "pcie/link.hpp"
#include "runtime/context.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"

namespace hcc {
namespace {

rt::SystemConfig
sys(bool cc)
{
    rt::SystemConfig c;
    c.cc = cc;
    return c;
}

// ---------------------------------------------------------- events

TEST(Events, ElapsedMeasuresKernelTime)
{
    rt::Context ctx(sys(false));
    const auto before = ctx.recordEvent();
    gpu::KernelDesc k{"k", {}, time::ms(5.0), 0, 0};
    ctx.launchKernel(k);
    const auto after = ctx.recordEvent();
    const SimTime elapsed = ctx.eventElapsed(before, after);
    // Elapsed covers KQT + KET (device-side completion points).
    EXPECT_GE(elapsed, time::ms(5.0));
    EXPECT_LT(elapsed, time::ms(6.0));
}

TEST(Events, ElapsedZeroOnIdleStream)
{
    rt::Context ctx(sys(false));
    const auto a = ctx.recordEvent();
    const auto b = ctx.recordEvent();
    EXPECT_EQ(ctx.eventElapsed(a, b), 0);
}

TEST(Events, ReversedOrderIsFatal)
{
    rt::Context ctx(sys(false));
    const auto a = ctx.recordEvent();
    gpu::KernelDesc k{"k", {}, time::us(10.0), 0, 0};
    ctx.launchKernel(k);
    const auto b = ctx.recordEvent();
    EXPECT_THROW(ctx.eventElapsed(b, a), FatalError);
}

TEST(Events, StreamWaitEventCreatesCrossStreamDependency)
{
    rt::Context ctx(sys(false));
    auto producer = ctx.createStream();
    auto consumer = ctx.createStream();

    gpu::KernelDesc big{"producer_k", {}, time::ms(10.0), 0, 0};
    ctx.launchKernel(big, producer);
    const auto done = ctx.recordEvent(producer);

    ctx.streamWaitEvent(consumer, done);
    gpu::KernelDesc small{"consumer_k", {}, time::us(10.0), 0, 0};
    ctx.launchKernel(small, consumer);
    ctx.deviceSynchronize();

    const auto kernels = ctx.tracer().ofKind(trace::EventKind::Kernel);
    ASSERT_EQ(kernels.size(), 2u);
    EXPECT_GE(kernels[1].start, kernels[0].end)
        << "consumer must wait for the producer's event";
}

TEST(Events, WithoutWaitStreamsOverlap)
{
    rt::Context ctx(sys(false));
    auto s1 = ctx.createStream();
    auto s2 = ctx.createStream();
    gpu::KernelDesc big{"k", {}, time::ms(10.0), 0, 0};
    ctx.launchKernel(big, s1);
    ctx.launchKernel(big, s2);
    ctx.deviceSynchronize();
    const auto kernels = ctx.tracer().ofKind(trace::EventKind::Kernel);
    EXPECT_LT(kernels[1].start, kernels[0].end);
}

TEST(Events, EventSynchronizeAdvancesHost)
{
    rt::Context ctx(sys(false));
    gpu::KernelDesc k{"k", {}, time::ms(3.0), 0, 0};
    ctx.launchKernel(k);
    const auto done = ctx.recordEvent();
    const SimTime before = ctx.now();
    ctx.eventSynchronize(done);
    EXPECT_GE(ctx.now() - before, time::ms(2.5));
}

// --------------------------------------------------------- memset

TEST(Memset, FillsAtHbmSpeed)
{
    rt::Context ctx(sys(false));
    auto d = ctx.mallocDevice(size::gib(1));
    const SimTime t0 = ctx.now();
    ctx.memsetDevice(d, size::gib(1));
    const double gbps = bandwidthGBs(size::gib(1), ctx.now() - t0);
    EXPECT_GT(gbps, 1000.0);
}

TEST(Memset, NearlyFreeUnderCc)
{
    // Device-side fills never cross the boundary: no CC tax beyond
    // the trapped doorbell.
    rt::Context base(sys(false)), cc(sys(true));
    auto db = base.mallocDevice(size::mib(256));
    auto dc = cc.mallocDevice(size::mib(256));
    const SimTime t0b = base.now();
    base.memsetDevice(db, size::mib(256));
    const SimTime tb = base.now() - t0b;
    const SimTime t0c = cc.now();
    cc.memsetDevice(dc, size::mib(256));
    const SimTime tc = cc.now() - t0c;
    EXPECT_LT(static_cast<double>(tc) / static_cast<double>(tb),
              1.2);
}

TEST(Memset, RejectsMisuse)
{
    rt::Context ctx(sys(false));
    auto h = ctx.mallocHost(1024);
    EXPECT_THROW(ctx.memsetDevice(h, 10), FatalError);
    auto d = ctx.mallocDevice(100);
    EXPECT_THROW(ctx.memsetDevice(d, 101), FatalError);
}

// ------------------------------------------------------ uvm eviction

gpu::TransferContext
baseCtx(pcie::PcieLink &link, tee::TdxModule &tdx)
{
    return gpu::TransferContext{link, tdx, nullptr};
}

TEST(UvmEviction, OversubscriptionEvictsLru)
{
    gpu::UvmConfig cfg;
    cfg.device_capacity = size::mib(10);
    gpu::UvmManager uvm(cfg);
    pcie::PcieLink link;
    tee::TdxModule tdx(false);
    auto ctx = baseCtx(link, tdx);

    const auto a = uvm.createAllocation(size::mib(6));
    const auto b = uvm.createAllocation(size::mib(6));
    uvm.touchOnDevice(a, size::mib(6), ctx);
    EXPECT_EQ(uvm.residentBytes(a), size::mib(6));

    const auto svc = uvm.touchOnDevice(b, size::mib(6), ctx);
    EXPECT_EQ(svc.evicted, size::mib(6)) << "a must be evicted";
    EXPECT_EQ(uvm.residentBytes(a), 0u);
    EXPECT_EQ(uvm.residentBytes(b), size::mib(6));
    EXPECT_LE(uvm.totalResident(), cfg.device_capacity);
}

TEST(UvmEviction, LruOrderRespectsTouches)
{
    gpu::UvmConfig cfg;
    cfg.device_capacity = size::mib(10);
    gpu::UvmManager uvm(cfg);
    pcie::PcieLink link;
    tee::TdxModule tdx(false);
    auto ctx = baseCtx(link, tdx);

    const auto a = uvm.createAllocation(size::mib(4));
    const auto b = uvm.createAllocation(size::mib(4));
    const auto c = uvm.createAllocation(size::mib(4));
    uvm.touchOnDevice(a, size::mib(4), ctx);
    uvm.touchOnDevice(b, size::mib(4), ctx);
    uvm.touchOnDevice(a, size::mib(4), ctx);  // a is now MRU
    uvm.touchOnDevice(c, size::mib(4), ctx);  // must evict b
    EXPECT_EQ(uvm.residentBytes(b), 0u);
    EXPECT_EQ(uvm.residentBytes(a), size::mib(4));
}

TEST(UvmEviction, ThrashingCostsWritebackTime)
{
    gpu::UvmConfig cfg;
    cfg.device_capacity = size::mib(8);
    gpu::UvmManager uvm(cfg);
    pcie::PcieLink link;
    tee::TdxModule tdx(false);
    auto ctx = baseCtx(link, tdx);

    const auto a = uvm.createAllocation(size::mib(6));
    const auto b = uvm.createAllocation(size::mib(6));
    const auto first = uvm.touchOnDevice(a, size::mib(6), ctx);
    const auto thrash = uvm.touchOnDevice(b, size::mib(6), ctx);
    EXPECT_GT(thrash.added, first.added)
        << "eviction writeback must add time";
    EXPECT_GT(uvm.totalEvicted(), 0u);
}

TEST(UvmEviction, CcWritebackIsMoreExpensive)
{
    auto run = [](bool cc) {
        gpu::UvmConfig cfg;
        cfg.device_capacity = size::mib(8);
        gpu::UvmManager uvm(cfg);
        pcie::PcieLink link;
        tee::TdxModule tdx(cc);
        std::unique_ptr<tee::SecureChannel> ch;
        gpu::TransferContext ctx{link, tdx, nullptr};
        if (cc) {
            ch = std::make_unique<tee::SecureChannel>(
                tee::ChannelConfig{}, tee::SpdmSession::establish(1));
            ctx.channel = ch.get();
        }
        const auto a = uvm.createAllocation(size::mib(6));
        const auto b = uvm.createAllocation(size::mib(6));
        uvm.touchOnDevice(a, size::mib(6), ctx);
        return uvm.touchOnDevice(b, size::mib(6), ctx).added;
    };
    EXPECT_GT(run(true), 10 * run(false))
        << "encrypted-paging eviction (D2H!) is the slow direction";
}

TEST(UvmEviction, NoEvictionBelowCapacity)
{
    gpu::UvmManager uvm;  // default: 94 GB capacity
    pcie::PcieLink link;
    tee::TdxModule tdx(false);
    auto ctx = baseCtx(link, tdx);
    const auto a = uvm.createAllocation(size::mib(64));
    const auto svc = uvm.touchOnDevice(a, size::mib(64), ctx);
    EXPECT_EQ(svc.evicted, 0u);
    EXPECT_EQ(uvm.totalEvicted(), 0u);
}

TEST(UvmEviction, RejectsBadBatchConfig)
{
    gpu::UvmConfig cfg;
    cfg.batch_pages_cc = 0;
    EXPECT_THROW(gpu::UvmManager{cfg}, FatalError);
}

TEST(UvmEviction, ConfigurableBatchSizeChangesServiceTime)
{
    // The ablation knob: larger CC batches amortize fault latency.
    auto service = [](int batch_pages) {
        gpu::UvmConfig cfg;
        cfg.batch_pages_cc = batch_pages;
        gpu::UvmManager uvm(cfg);
        pcie::PcieLink link;
        tee::TdxModule tdx(true);
        tee::SecureChannel ch(tee::ChannelConfig{},
                              tee::SpdmSession::establish(2));
        gpu::TransferContext ctx{link, tdx, &ch};
        const auto h = uvm.createAllocation(size::mib(16));
        return uvm.touchOnDevice(h, size::mib(16), ctx).added;
    };
    EXPECT_GT(service(2), 5 * service(64));
}

} // namespace
} // namespace hcc
