/**
 * @file
 * Tests for the ML workload models: CNN training trends (Fig. 13)
 * and LLM serving orderings (Fig. 14).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/log.hpp"
#include "ml/cnn.hpp"
#include "ml/llm.hpp"
#include "runtime/context.hpp"

namespace hcc::ml {
namespace {

rt::SystemConfig
sys(bool cc)
{
    rt::SystemConfig c;
    c.cc = cc;
    return c;
}

CnnTrainResult
train(CnnModel model, int batch, Precision prec, bool cc)
{
    rt::Context ctx(sys(cc));
    CnnTrainConfig cfg;
    cfg.model = model;
    cfg.batch_size = batch;
    cfg.precision = prec;
    return trainCnn(ctx, cfg);
}

LlmResult
serve(LlmBackend backend, LlmQuant quant, int batch, bool cc)
{
    rt::Context ctx(sys(cc));
    LlmConfig cfg;
    cfg.backend = backend;
    cfg.quant = quant;
    cfg.batch = batch;
    return serveLlm(ctx, cfg);
}

// ----------------------------------------------------------- cnn

TEST(Cnn, ThroughputGrowsWithBatch)
{
    const auto b64 = train(CnnModel::Vgg16, 64, Precision::Fp32,
                           false);
    const auto b1024 = train(CnnModel::Vgg16, 1024, Precision::Fp32,
                             false);
    EXPECT_GT(b1024.throughput, b64.throughput);
}

TEST(Cnn, CcLossShrinksWithBatch)
{
    // Paper: -24% average at batch 64, -7.3% at batch 1024.
    double loss64 = 0.0, loss1024 = 0.0;
    for (auto m : allCnnModels()) {
        loss64 += 1.0
            - train(m, 64, Precision::Fp32, true).throughput
                / train(m, 64, Precision::Fp32, false).throughput;
        loss1024 += 1.0
            - train(m, 1024, Precision::Fp32, true).throughput
                / train(m, 1024, Precision::Fp32, false).throughput;
    }
    loss64 /= static_cast<double>(allCnnModels().size());
    loss1024 /= static_cast<double>(allCnnModels().size());
    EXPECT_NEAR(loss64, 0.24, 0.10);
    EXPECT_NEAR(loss1024, 0.073, 0.06);
    EXPECT_GT(loss64, loss1024 + 0.05);
}

TEST(Cnn, AmpHurtsSmallBatchUnderCc)
{
    // Paper: AMP at batch 64 under CC reduces throughput (cast
    // kernels add launches without enough GEMM work to win back).
    int hurt = 0;
    for (auto m : allCnnModels()) {
        const auto amp = train(m, 64, Precision::Amp, true);
        const auto fp32 = train(m, 64, Precision::Fp32, true);
        if (amp.throughput < fp32.throughput)
            ++hurt;
    }
    EXPECT_GE(hurt, 4) << "AMP should hurt most models at batch 64";
}

TEST(Cnn, AmpHelpsLargeBatch)
{
    for (auto m : {CnnModel::Vgg16, CnnModel::InceptionV4}) {
        const auto amp = train(m, 1024, Precision::Amp, false);
        const auto fp32 = train(m, 1024, Precision::Fp32, false);
        EXPECT_GT(amp.throughput, fp32.throughput)
            << cnnModelName(m);
    }
}

TEST(Cnn, Fp16CutsTrainingTimeAtLargeBatch)
{
    // Paper: FP16 further cuts training time 27.7% on average
    // (less data moved + faster compute).
    double cut = 0.0;
    for (auto m : allCnnModels()) {
        const auto amp = train(m, 1024, Precision::Amp, true);
        const auto fp16 = train(m, 1024, Precision::Fp16, true);
        cut += 1.0
            - static_cast<double>(fp16.train_time_200_epochs)
                / static_cast<double>(amp.train_time_200_epochs);
    }
    cut /= static_cast<double>(allCnnModels().size());
    EXPECT_NEAR(cut, 0.277, 0.12);
}

TEST(Cnn, TrainTimeExtrapolationConsistent)
{
    const auto r = train(CnnModel::ResNet50, 64, Precision::Fp32,
                         false);
    const double steps_per_epoch = std::ceil(50000.0 / 64.0);
    EXPECT_NEAR(static_cast<double>(r.train_time_200_epochs),
                static_cast<double>(r.step_time) * steps_per_epoch
                    * 200.0,
                1e6);
}

TEST(Cnn, RejectsBadConfig)
{
    rt::Context ctx(sys(false));
    CnnTrainConfig cfg;
    cfg.batch_size = 0;
    EXPECT_THROW(trainCnn(ctx, cfg), FatalError);
}

TEST(Cnn, AllModelsHaveSpecs)
{
    for (auto m : allCnnModels()) {
        const auto &spec = cnnModelSpec(m);
        EXPECT_GT(spec.gflop_per_image, 0.0) << cnnModelName(m);
        EXPECT_GT(spec.kernels_per_step, 0);
        EXPECT_GT(spec.param_bytes, 0u);
        EXPECT_FALSE(cnnModelName(m).empty());
    }
}

// ----------------------------------------------------------- llm

TEST(Llm, VllmBeatsHfEverywhere)
{
    for (int batch : {1, 16, 128}) {
        for (auto quant : {LlmQuant::Bf16, LlmQuant::Awq4}) {
            for (bool cc : {false, true}) {
                const auto hf = serve(LlmBackend::HuggingFace, quant,
                                      batch, cc);
                const auto v = serve(LlmBackend::Vllm, quant, batch,
                                     cc);
                EXPECT_GT(v.tokens_per_s, hf.tokens_per_s)
                    << "batch " << batch << " quant "
                    << llmQuantName(quant) << " cc " << cc;
            }
        }
    }
}

TEST(Llm, CcOnIsSlower)
{
    for (int batch : {1, 64}) {
        const auto off = serve(LlmBackend::Vllm, LlmQuant::Bf16,
                               batch, false);
        const auto on = serve(LlmBackend::Vllm, LlmQuant::Bf16,
                              batch, true);
        EXPECT_LT(on.tokens_per_s, off.tokens_per_s);
    }
}

TEST(Llm, AwqWinsSmallBatchBf16WinsLarge)
{
    // The paper's Fig. 14 crossover.
    const auto awq_small = serve(LlmBackend::Vllm, LlmQuant::Awq4, 8,
                                 false);
    const auto bf16_small = serve(LlmBackend::Vllm, LlmQuant::Bf16, 8,
                                  false);
    EXPECT_GT(awq_small.tokens_per_s, bf16_small.tokens_per_s);

    for (int batch : {64, 128}) {
        const auto awq = serve(LlmBackend::Vllm, LlmQuant::Awq4,
                               batch, false);
        const auto bf16 = serve(LlmBackend::Vllm, LlmQuant::Bf16,
                                batch, false);
        EXPECT_GT(bf16.tokens_per_s, awq.tokens_per_s)
            << "batch " << batch;
    }
}

TEST(Llm, ThroughputScalesWithBatchSublinearly)
{
    const auto b1 = serve(LlmBackend::Vllm, LlmQuant::Bf16, 1, false);
    const auto b64 = serve(LlmBackend::Vllm, LlmQuant::Bf16, 64,
                           false);
    EXPECT_GT(b64.tokens_per_s, b1.tokens_per_s * 4);
    EXPECT_LT(b64.tokens_per_s, b1.tokens_per_s * 64);
}

TEST(Llm, RejectsBadConfig)
{
    rt::Context ctx(sys(false));
    LlmConfig cfg;
    cfg.batch = 0;
    EXPECT_THROW(serveLlm(ctx, cfg), FatalError);
}

TEST(Llm, NamesAreStable)
{
    EXPECT_EQ(llmBackendName(LlmBackend::Vllm), "vLLM");
    EXPECT_EQ(llmBackendName(LlmBackend::HuggingFace), "HF");
    EXPECT_EQ(llmQuantName(LlmQuant::Bf16), "BF16");
    EXPECT_EQ(llmQuantName(LlmQuant::Awq4), "AWQ");
}

} // namespace
} // namespace hcc::ml
