/**
 * @file
 * Tests for the parallel sweep engine: the work-stealing thread
 * pool, grid expansion and parsing, the determinism guarantee
 * (byte-identical merged output regardless of worker count), and
 * per-cell crash isolation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "obs/stats_io.hpp"
#include "sweep/sweep.hpp"

namespace hcc::sweep {
namespace {

// ------------------------------------------------------ thread pool

TEST(ThreadPool, ExecutesEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 100);
    EXPECT_EQ(pool.stats().executed, 100u);
}

TEST(ThreadPool, WaitWithNoTasksReturns)
{
    ThreadPool pool(2);
    pool.wait();
    EXPECT_EQ(pool.stats().executed, 0u);
}

TEST(ThreadPool, SurvivesThrowingTasks)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&, i] {
            if (i % 2 == 0)
                throw std::runtime_error("boom");
            done.fetch_add(1);
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 5);
    EXPECT_EQ(pool.stats().uncaught, 5u);
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1);
}

TEST(RunIndexed, SingleJobRunsInline)
{
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(3);
    runIndexed(3, 1, [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(RunIndexed, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    const auto stats = runIndexed(hits.size(), 8, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    EXPECT_EQ(stats.executed, hits.size());
}

// --------------------------------------------------- grid expansion

TEST(GridSpecTest, ExpandsInInputOrder)
{
    GridSpec grid;
    grid.apps = {"a", "b"};
    grid.cc_modes = {false, true};
    grid.scales = {1.0, 2.0};
    EXPECT_EQ(grid.cellCount(), 8u);
    const auto cells = expandGrid(grid);
    ASSERT_EQ(cells.size(), 8u);
    EXPECT_EQ(cells[0].app, "a");
    EXPECT_FALSE(cells[0].cc);
    EXPECT_EQ(cells[0].scale, 1.0);
    EXPECT_EQ(cells[1].scale, 2.0) << "seeds/scales are innermost";
    EXPECT_TRUE(cells[2].cc);
    EXPECT_EQ(cells[4].app, "b");
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].index, i);
}

TEST(GridSpecTest, LabelEncodesTheCell)
{
    GridSpec grid;
    grid.apps = {"2mm"};
    grid.cc_modes = {true};
    grid.uvm_modes = {true};
    grid.scales = {2.0};
    grid.seeds = {7};
    const auto cells = expandGrid(grid);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].label(), "2mm.cc.uvm.x2.s7");
}

TEST(GridSpecTest, OverlapIsTheInnermostAxis)
{
    GridSpec grid;
    grid.apps = {"a"};
    grid.cc_modes = {true};
    grid.seeds = {1, 2};
    grid.overlaps = {tee::OverlapMode::None,
                     tee::OverlapMode::Speculative};
    EXPECT_EQ(grid.cellCount(), 4u);
    const auto cells = expandGrid(grid);
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].overlap, tee::OverlapMode::None);
    EXPECT_EQ(cells[1].overlap, tee::OverlapMode::Speculative);
    EXPECT_EQ(cells[1].seed, 1u)
        << "overlap spins faster than seeds";
    EXPECT_EQ(cells[2].seed, 2u);
    EXPECT_EQ(cells[3].overlap, tee::OverlapMode::Speculative);
}

TEST(GridSpecTest, LabelAppendsOnlyPipelinedTiers)
{
    GridSpec grid;
    grid.apps = {"2mm"};
    grid.cc_modes = {true};
    grid.overlaps = {tee::OverlapMode::None,
                     tee::OverlapMode::DoubleBuffer,
                     tee::OverlapMode::Speculative};
    const auto cells = expandGrid(grid);
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_EQ(cells[0].label(), "2mm.cc.x1.s42")
        << "serial tier keeps the pre-overlap label stable";
    EXPECT_EQ(cells[1].label(), "2mm.cc.x1.s42.double-buffer");
    EXPECT_EQ(cells[2].label(), "2mm.cc.x1.s42.speculative");
}

// ------------------------------------------------------ spec parsing

TEST(ParseGridSpec, ParsesKeysAndComments)
{
    const auto grid = parseGridSpec("# comment\n"
                                    "apps = atax, bicg\n"
                                    "cc = both\n"
                                    "uvm = off\n"
                                    "scales = 0.5, 1\n"
                                    "seeds = 1, 2\n"
                                    "crypto-workers = 4\n"
                                    "tee-io = off\n").take();
    EXPECT_EQ(grid.apps, (std::vector<std::string>{"atax", "bicg"}));
    EXPECT_EQ(grid.cc_modes, (std::vector<bool>{false, true}));
    EXPECT_EQ(grid.scales, (std::vector<double>{0.5, 1.0}));
    EXPECT_EQ(grid.crypto_workers, 4);
    EXPECT_EQ(grid.cellCount(), 16u);
}

TEST(ParseGridSpec, RejectsUnknownKeys)
{
    const auto grid = parseGridSpec("bogus = 1\n");
    EXPECT_FALSE(grid.ok());
    EXPECT_EQ(grid.status().code(), ErrorCode::ParseError);
    EXPECT_NE(grid.status().message().find("bogus"),
              std::string::npos)
        << "error message names the offending key";
}

TEST(ParseGridSpec, RejectsBadValues)
{
    EXPECT_FALSE(parseGridSpec("apps = atax\nscales = -1\n").ok());
    EXPECT_FALSE(parseGridSpec("apps = atax\ncc = maybe\n").ok());
    EXPECT_THROW(parseModeList("sideways"), FatalError);
    EXPECT_THROW(parseScaleList(""), FatalError);
    EXPECT_THROW(parseAppList(""), FatalError);
}

TEST(ParseGridSpec, AllExpandsToEvaluationApps)
{
    const auto apps = parseAppList("all");
    EXPECT_GT(apps.size(), 10u);
}

TEST(ParseOverlapList, ListAllAndErrors)
{
    EXPECT_EQ(parseOverlapList("none,speculative"),
              (std::vector<tee::OverlapMode>{
                  tee::OverlapMode::None,
                  tee::OverlapMode::Speculative}));
    EXPECT_EQ(parseOverlapList("all"),
              (std::vector<tee::OverlapMode>{
                  tee::OverlapMode::None,
                  tee::OverlapMode::DoubleBuffer,
                  tee::OverlapMode::Speculative}));
    EXPECT_THROW(parseOverlapList("warp"), FatalError);
    EXPECT_THROW(parseOverlapList(""), FatalError);
}

TEST(ParseGridSpec, OverlapKey)
{
    const auto grid = parseGridSpec("apps = atax\n"
                                    "overlap = none, double-buffer\n")
                          .take();
    EXPECT_EQ(grid.overlaps,
              (std::vector<tee::OverlapMode>{
                  tee::OverlapMode::None,
                  tee::OverlapMode::DoubleBuffer}));
    EXPECT_EQ(grid.cellCount(), 4u) << "overlap multiplies cc=both";
    EXPECT_FALSE(parseGridSpec("apps = atax\noverlap = warp\n").ok());
}

// ------------------------------------------------------- determinism

/** The tentpole guarantee: merged outputs are byte-identical no
 *  matter how many workers raced over the grid. */
TEST(SweepDeterminism, MergedOutputIndependentOfJobs)
{
    GridSpec grid;
    grid.apps = {"atax", "bicg"};
    grid.cc_modes = {false, true};
    grid.seeds = {42, 7};

    const auto serial = runSweep(grid, 1);
    const auto parallel = runSweep(grid, 8);
    ASSERT_EQ(serial.cells.size(), 8u);
    ASSERT_EQ(parallel.cells.size(), 8u);
    EXPECT_TRUE(serial.allOk());
    EXPECT_TRUE(parallel.allOk());

    std::ostringstream stats1, stats8, csv1, csv8, json1, json8;
    writeMergedStats(serial, stats1);
    writeMergedStats(parallel, stats8);
    EXPECT_EQ(stats1.str(), stats8.str())
        << "merged stats must be byte-identical across --jobs";
    writeCellsCsv(serial, csv1);
    writeCellsCsv(parallel, csv8);
    EXPECT_EQ(csv1.str(), csv8.str());
    writeCellsJson(serial, json1);
    writeCellsJson(parallel, json8);
    EXPECT_EQ(json1.str(), json8.str());

    // And the dumps are stats-diff clean, the CI regression gate.
    const auto base = obs::parseStatsJson(stats1.str()).take();
    const auto cur = obs::parseStatsJson(stats8.str()).take();
    EXPECT_TRUE(obs::diffStats(base, cur, 0.0).pass());
}

TEST(SweepDeterminism, ResultsComeBackInInputOrder)
{
    GridSpec grid;
    grid.apps = {"atax", "gemm", "mvt"};
    grid.cc_modes = {false};
    const auto result = runSweep(grid, 4);
    ASSERT_EQ(result.cells.size(), 3u);
    EXPECT_EQ(result.cells[0].cell.app, "atax");
    EXPECT_EQ(result.cells[1].cell.app, "gemm");
    EXPECT_EQ(result.cells[2].cell.app, "mvt");
    for (std::size_t i = 0; i < result.cells.size(); ++i)
        EXPECT_EQ(result.cells[i].cell.index, i);
}

/** Cross-seed prefix sharing: cells differing only in their seed now
 *  share one identity-seeded prefix, so every one of them replays
 *  from the snapshot — and still matches the cold control exactly. */
TEST(SweepDeterminism, DistinctSeedsShareOnePrefix)
{
    GridSpec grid;
    grid.apps = {"gaussian"};
    grid.cc_modes = {true};
    grid.seeds = {1, 2, 3};

    const auto fork = runSweep(grid, 1);
    ASSERT_EQ(fork.cells.size(), 3u);
    EXPECT_EQ(fork.snapshot_hits, 3u)
        << "distinct seeds must fork from one shared prefix";
    EXPECT_GT(fork.peak_resident_bytes, 0u);

    grid.no_snapshot = true;
    const auto cold = runSweep(grid, 2);
    EXPECT_EQ(cold.snapshot_hits, 0u);

    std::ostringstream st_f, st_c, csv_f, csv_c;
    writeMergedStats(fork, st_f);
    writeMergedStats(cold, st_c);
    EXPECT_EQ(st_f.str(), st_c.str());
    writeCellsCsv(fork, csv_f);
    writeCellsCsv(cold, csv_c);
    EXPECT_EQ(csv_f.str(), csv_c.str());

    // The seed axis survives the sharing: rows differ across seeds.
    EXPECT_NE(fork.cells[0].result.end_to_end, 0);
    EXPECT_TRUE(fork.cells[0].result.end_to_end
                    != fork.cells[1].result.end_to_end
                || fork.cells[1].result.end_to_end
                    != fork.cells[2].result.end_to_end)
        << "reseed-at-fork must not collapse the seed axis";
}

// -------------------------------------------------- crash isolation

/** A cell that dies (FatalError) fails alone: the rest of the grid
 *  still runs and the sweep reports the failure per cell. */
TEST(SweepIsolation, FailingCellDoesNotTakeDownThePool)
{
    GridSpec grid;
    // gaussian has no UVM variant, so its uvm=on cell throws
    // FatalError inside the worker; atax supports UVM and must
    // still complete.
    grid.apps = {"gaussian", "atax"};
    grid.cc_modes = {false};
    grid.uvm_modes = {true};

    const auto result = runSweep(grid, 4);
    ASSERT_EQ(result.cells.size(), 2u);
    EXPECT_FALSE(result.cells[0].ok);
    EXPECT_FALSE(result.cells[0].error.empty());
    EXPECT_TRUE(result.cells[1].ok);
    EXPECT_EQ(result.failures(), 1u);
    EXPECT_FALSE(result.allOk());
}

TEST(SweepIsolation, UnknownAppFailsItsCellOnly)
{
    GridSpec grid;
    grid.apps = {"no-such-app", "atax"};
    grid.cc_modes = {false};
    const auto result = runSweep(grid, 2);
    ASSERT_EQ(result.cells.size(), 2u);
    EXPECT_FALSE(result.cells[0].ok);
    EXPECT_TRUE(result.cells[1].ok);
}

// ------------------------------------------------------- obs wiring

TEST(SweepObs, PublishesCountersAndUtilization)
{
    GridSpec grid;
    grid.apps = {"atax"};
    grid.cc_modes = {false, true};
    obs::Registry reg;
    const auto result = runSweep(grid, 2, &reg);
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(reg.counter("sweep.cells").value(), 2u);
    EXPECT_EQ(reg.counter("sweep.failures").value(), 0u);
    // Wall-clock lives under host.* so it never enters the
    // deterministic dumps.
    const auto dump = obs::statsJson(reg, /*include_host=*/true);
    EXPECT_NE(dump.find("host.sweep.wall_us"), std::string::npos);
    const auto det = obs::statsJson(reg, /*include_host=*/false);
    EXPECT_EQ(det.find("host.sweep"), std::string::npos);
}

} // namespace
} // namespace hcc::sweep
