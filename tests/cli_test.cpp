/**
 * @file
 * Tests for the hccsim CLI: argument parsing and command execution.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/options.hpp"
#include "common/log.hpp"
#include "crypto/impl.hpp"

namespace hcc::cli {
namespace {

std::optional<Options>
parse(std::initializer_list<const char *> args, std::string *err
      = nullptr)
{
    std::vector<std::string> v;
    for (const char *a : args)
        v.emplace_back(a);
    std::string e;
    auto r = parseArgs(v, e);
    if (err)
        *err = e;
    return r;
}

// --------------------------------------------------------- parsing

TEST(CliParse, ListCommand)
{
    const auto o = parse({"list"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::List);
}

TEST(CliParse, RunWithAllOptions)
{
    const auto o = parse({"run", "--app", "sc", "--cc", "--uvm",
                          "--scale", "2.5", "--seed", "7"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Run);
    EXPECT_EQ(o->app, "sc");
    EXPECT_TRUE(o->cc);
    EXPECT_TRUE(o->uvm);
    EXPECT_DOUBLE_EQ(o->scale, 2.5);
    EXPECT_EQ(o->seed, 7u);
}

TEST(CliParse, HelpVariants)
{
    for (const char *h : {"help", "--help", "-h"}) {
        const auto o = parse({h});
        ASSERT_TRUE(o);
        EXPECT_EQ(o->command, Command::Help);
    }
}

TEST(CliParse, MissingAppIsError)
{
    std::string err;
    EXPECT_FALSE(parse({"run"}, &err));
    EXPECT_NE(err.find("--app"), std::string::npos);
}

TEST(CliParse, UnknownCommandAndOption)
{
    std::string err;
    EXPECT_FALSE(parse({"frobnicate"}, &err));
    EXPECT_FALSE(parse({"run", "--app", "sc", "--what"}, &err));
    EXPECT_NE(err.find("--what"), std::string::npos);
}

TEST(CliParse, BadNumericValues)
{
    EXPECT_FALSE(parse({"run", "--app", "sc", "--scale", "zero"}));
    EXPECT_FALSE(parse({"run", "--app", "sc", "--scale", "-1"}));
    EXPECT_FALSE(parse({"run", "--app", "sc", "--seed", "xyz"}));
    EXPECT_FALSE(parse({"run", "--app", "sc", "--scale"}));
}

TEST(CliParse, BadFormat)
{
    EXPECT_FALSE(parse({"trace", "--app", "sc", "--format", "xml"}));
    const auto o = parse({"trace", "--app", "sc", "--format", "csv"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->format, "csv");
}

TEST(CliParse, ChannelKnobs)
{
    const auto o = parse({"compare", "--app", "gemm",
                          "--crypto-workers", "8", "--tee-io"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->crypto_workers, 8);
    EXPECT_TRUE(o->tee_io);
    EXPECT_FALSE(parse({"run", "--app", "x", "--crypto-workers",
                        "0"}));
    EXPECT_FALSE(parse({"run", "--app", "x", "--crypto-workers",
                        "many"}));
}

TEST(CliParse, OverlapFlag)
{
    const auto o =
        parse({"run", "--app", "x", "--overlap", "speculative"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->overlap, "speculative");
    // Sweep grids the axis, so it alone takes lists and `all`.
    EXPECT_TRUE(parse({"sweep", "--apps", "atax", "--overlap",
                       "none,double-buffer"}));
    EXPECT_TRUE(parse({"sweep", "--apps", "atax", "--overlap",
                       "all"}));
    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "x", "--overlap",
                        "none,speculative"}, &err));
    EXPECT_NE(err.find("single mode"), std::string::npos);
    EXPECT_FALSE(parse({"run", "--app", "x", "--overlap", "all"}));
    EXPECT_FALSE(parse({"run", "--app", "x", "--overlap", "warp"}));
    EXPECT_FALSE(parse({"list", "--overlap", "none"}))
        << "list takes no channel knobs";
}

TEST(CliParse, OverlapListOnFaults)
{
    // The faults campaign grids the overlap axis like sweep does.
    EXPECT_TRUE(parse({"faults", "--app", "atax", "--overlap",
                       "none,speculative"}));
    EXPECT_TRUE(parse({"faults", "--app", "atax", "--overlap",
                       "all"}));
    std::string err;
    EXPECT_FALSE(parse({"compare", "--app", "atax", "--overlap",
                        "all"}, &err));
    EXPECT_NE(err.find("single mode"), std::string::npos);
}

TEST(CliParse, ForkPointPathsValidateAtParseTime)
{
    const auto o = parse({"faults", "--app", "atax", "--fork-point",
                          "auto/0.95"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->fork_point_spec, "auto/0.95");

    std::string err;
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--fork-point",
                        "none/0.5"}, &err));
    EXPECT_NE(err.find("cannot chain"), std::string::npos);
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--fork-point",
                        "0.5/0.4"}, &err));
    EXPECT_NE(err.find("strictly"), std::string::npos);
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--fork-point",
                        "0.5/1.5"}, &err));
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--fork-point",
                        "0.5/"}, &err));
    EXPECT_FALSE(parse({"run", "--app", "atax", "--fork-point",
                        "auto"}, &err));
    EXPECT_NE(err.find("does not apply"), std::string::npos);
}

TEST(CliParse, SnapshotBudgetFlag)
{
    const auto o = parse({"sweep", "--apps", "atax",
                          "--snapshot-budget", "64"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->snapshot_budget_mib, 64);
    EXPECT_TRUE(parse({"faults", "--app", "atax",
                       "--snapshot-budget", "0"}));
    EXPECT_FALSE(parse({"sweep", "--apps", "a",
                        "--snapshot-budget", "-1"}));
    EXPECT_FALSE(parse({"sweep", "--apps", "a",
                        "--snapshot-budget", "much"}));
    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "sc", "--snapshot-budget",
                        "64"}, &err));
    EXPECT_NE(err.find("does not apply"), std::string::npos);
}

TEST(CliRun, WorkersReduceCcSlowdown)
{
    auto slowdown = [](int workers) {
        Options o;
        o.command = Command::Compare;
        o.app = "gemm";
        o.crypto_workers = workers;
        std::ostringstream oss;
        runCli(o, oss);
        const auto out = oss.str();
        const auto pos = out.find("CC slowdown: ");
        return std::stod(out.substr(pos + 13));
    };
    EXPECT_LT(slowdown(8), slowdown(1) * 0.7);
}

TEST(CliParse, EmptyArgsIsError)
{
    EXPECT_FALSE(parse({}));
}

TEST(CliParse, StatsDiffCommand)
{
    const auto o = parse({"stats-diff", "base.json", "cur.json",
                          "--tolerance", "0.05"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::StatsDiff);
    EXPECT_EQ(o->diff_baseline, "base.json");
    EXPECT_EQ(o->diff_current, "cur.json");
    EXPECT_DOUBLE_EQ(o->tolerance, 0.05);

    std::string err;
    EXPECT_FALSE(parse({"stats-diff", "only-one.json"}, &err));
    EXPECT_NE(err.find("CURRENT"), std::string::npos);
    EXPECT_FALSE(parse({"stats-diff", "a", "b", "c"}));
    EXPECT_FALSE(parse({"stats-diff", "a", "b", "--tolerance",
                        "-0.1"}));
    EXPECT_FALSE(parse({"stats-diff", "a", "b", "--tolerance",
                        "lots"}));
}

TEST(CliParse, StatsOutAndLogLevel)
{
    const auto o = parse({"run", "--app", "sc", "--stats-out",
                          "s.json", "--log-level", "debug"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->stats_out, "s.json");
    EXPECT_EQ(o->log_level, "debug");

    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "sc", "--log-level", "loud"},
                       &err));
    EXPECT_NE(err.find("--log-level"), std::string::npos);
    EXPECT_FALSE(parse({"list", "--stats-out", "s.json"}, &err));
    EXPECT_NE(err.find("--stats-out"), std::string::npos);
}

// ------------------------------------------------------- execution

TEST(CliRun, ListShowsKnownApps)
{
    Options o;
    o.command = Command::List;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("2dconv"), std::string::npos);
    EXPECT_NE(out.find("sc"), std::string::npos);
    EXPECT_NE(out.find("graphbig_bfs"), std::string::npos);
}

TEST(CliRun, RunPrintsSummaryAndModel)
{
    Options o;
    o.command = Command::Run;
    o.app = "2mm";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("end-to-end"), std::string::npos);
    EXPECT_NE(out.find("P (model)"), std::string::npos);
}

TEST(CliRun, CompareShowsSlowdown)
{
    Options o;
    o.command = Command::Compare;
    o.app = "atax";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    EXPECT_NE(oss.str().find("CC slowdown:"), std::string::npos);
}

TEST(CliRun, TraceJsonAndCsv)
{
    Options o;
    o.command = Command::Trace;
    o.app = "2mm";
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(o, oss), 0);
        EXPECT_EQ(oss.str().front(), '[');
    }
    o.format = "csv";
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(o, oss), 0);
        EXPECT_EQ(oss.str().find("kind,name"), 0u);
    }
}

TEST(CliRun, UnknownAppThrowsFatal)
{
    Options o;
    o.command = Command::Run;
    o.app = "not-a-workload";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, HelpMentionsAllCommands)
{
    Options o;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    for (const char *cmd :
         {"list", "run", "compare", "trace", "stats-diff"})
        EXPECT_NE(oss.str().find(cmd), std::string::npos) << cmd;
}

TEST(CliRun, LogLevelFlagSetsGlobalLevel)
{
    const LogLevel before = logLevel();
    Options o;
    o.command = Command::Help;
    o.log_level = "error";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(before);
}

/** Run a workload through runCli, dumping stats to @p path. */
void
runWithStatsOut(const std::string &path, double scale)
{
    Options o;
    o.command = Command::Run;
    o.app = "atax";
    o.cc = true;
    o.scale = scale;
    o.stats_out = path;
    std::ostringstream oss;
    ASSERT_EQ(runCli(o, oss), 0);
}

TEST(CliRun, StatsOutAndStatsDiffRoundTrip)
{
    const auto dir = ::testing::TempDir();
    const auto base = dir + "hccsim_stats_base.json";
    const auto same = dir + "hccsim_stats_same.json";
    const auto bigger = dir + "hccsim_stats_bigger.json";
    runWithStatsOut(base, 1.0);
    runWithStatsOut(same, 1.0);
    runWithStatsOut(bigger, 2.0);

    Options diff;
    diff.command = Command::StatsDiff;
    diff.diff_baseline = base;
    diff.diff_current = same;
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(diff, oss), 0);
        EXPECT_NE(oss.str().find("no drift"), std::string::npos);
    }
    diff.diff_current = bigger;
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(diff, oss), 1);
        EXPECT_NE(oss.str().find("drifting"), std::string::npos);
    }
    // A huge tolerance forgives the size change.
    diff.tolerance = 0.99;
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(diff, oss), 0);
    }
}

TEST(CliRun, StatsDiffMissingFileThrowsFatal)
{
    Options o;
    o.command = Command::StatsDiff;
    o.diff_baseline = "/nonexistent/base.json";
    o.diff_current = "/nonexistent/cur.json";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

// ------------------------------------------------- crypto selection

TEST(CliParse, CryptoImplFlag)
{
    const auto o =
        parse({"run", "--app", "sc", "--crypto-impl", "scalar"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->crypto_impl, "scalar");

    std::string err;
    EXPECT_FALSE(
        parse({"run", "--app", "sc", "--crypto-impl", "vaes"}, &err));
    EXPECT_NE(err.find("crypto-impl"), std::string::npos);
    EXPECT_FALSE(parse({"run", "--app", "sc", "--crypto-impl"}));
}

TEST(CliParse, CryptoCalibrateCommand)
{
    const auto o = parse({"crypto-calibrate", "--ms", "1"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::CryptoCalibrate);
    EXPECT_DOUBLE_EQ(o->calib_ms, 1.0);
    // No --app required for this command.
    EXPECT_FALSE(parse({"crypto-calibrate", "--ms", "0"}));
    EXPECT_FALSE(parse({"crypto-calibrate", "--ms", "fast"}));
}

TEST(CliRun, CryptoCalibratePrintsEveryAlgoAndRatio)
{
    Options o;
    o.command = Command::CryptoCalibrate;
    o.calib_ms = 1.0;  // keep the measurement loop short
    o.crypto_impl = "ttable";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("ttable"), std::string::npos);
    EXPECT_NE(out.find("aes-gcm-128"), std::string::npos)
        << "calibration table must list each algorithm:\n"
        << out;
    EXPECT_NE(out.find("host/model"), std::string::npos);
    crypto::setActiveCryptoImpl(std::nullopt);
}

// ----------------------------------------------------------- sweep

TEST(CliParse, SweepFlags)
{
    const auto o = parse({"sweep", "--apps", "atax,bicg",
                          "--cc-modes", "both", "--uvm-modes", "off",
                          "--scales", "1,2", "--seeds", "42,7",
                          "--jobs", "4", "--out", "cells.csv",
                          "--format", "csv", "--stats-out",
                          "stats.json"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Sweep);
    EXPECT_EQ(o->sweep_apps, "atax,bicg");
    EXPECT_EQ(o->sweep_scales, "1,2");
    EXPECT_EQ(o->jobs, 4);
    EXPECT_EQ(o->out_file, "cells.csv");
}

TEST(CliParse, SweepRequiresAppsOrSpec)
{
    std::string err;
    EXPECT_FALSE(parse({"sweep"}, &err));
    EXPECT_NE(err.find("--apps"), std::string::npos);
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--spec", "g.grid"},
                       &err));
    EXPECT_TRUE(parse({"sweep", "--spec", "g.grid"}));
}

TEST(CliParse, SweepRejectsBadValues)
{
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--jobs", "0"}));
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--jobs", "many"}));
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--cc-modes",
                        "sometimes"}));
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--uvm-modes",
                        "maybe"}));
}

TEST(CliParse, OutAndTraceOutAreCommandSpecific)
{
    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "sc", "--out", "x.csv"},
                       &err));
    EXPECT_NE(err.find("--out"), std::string::npos);
    EXPECT_FALSE(parse({"run", "--app", "sc", "--trace-out",
                        "t.json"}, &err));
    EXPECT_TRUE(parse({"trace", "--app", "sc", "--trace-out",
                       "t.json"}));
}

TEST(CliRun, SweepPrintsPerCellTableAndSummary)
{
    Options o;
    o.command = Command::Sweep;
    o.sweep_apps = "atax";
    o.jobs = 2;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("atax.base.x1.s42"), std::string::npos);
    EXPECT_NE(out.find("atax.cc.x1.s42"), std::string::npos);
    EXPECT_NE(out.find("2/2 cells ok"), std::string::npos);
}

TEST(CliRun, SweepFailedCellSetsExitCode)
{
    Options o;
    o.command = Command::Sweep;
    o.sweep_apps = "gaussian";    // no UVM variant
    o.sweep_uvm = "on";
    o.sweep_cc = "off";
    o.jobs = 1;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 1);
    EXPECT_NE(oss.str().find("FAIL"), std::string::npos);
}

TEST(CliRun, SweepUnwritableOutputFails)
{
    Options o;
    o.command = Command::Sweep;
    o.sweep_apps = "atax";
    o.sweep_cc = "off";
    o.jobs = 1;
    o.out_file = "/nonexistent-dir/cells.csv";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
    o.out_file.clear();
    o.stats_out = "/nonexistent-dir/stats.json";
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, RunUnwritableStatsOutFails)
{
    Options o;
    o.command = Command::Run;
    o.app = "atax";
    o.stats_out = "/nonexistent-dir/stats.json";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, TraceOutWritesFileInsteadOfStream)
{
    Options o;
    o.command = Command::Trace;
    o.app = "atax";
    o.trace_out = "trace_out_test.json";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    EXPECT_TRUE(oss.str().empty());
    std::ifstream in(o.trace_out);
    ASSERT_TRUE(in.good());
    char first = 0;
    in >> first;
    EXPECT_EQ(first, '[');
    in.close();
    std::remove(o.trace_out.c_str());

    o.trace_out = "/nonexistent-dir/trace.json";
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, CompareParallelMatchesSerial)
{
    Options o;
    o.command = Command::Compare;
    o.app = "atax";
    std::ostringstream serial, parallel;
    o.jobs = 1;
    EXPECT_EQ(runCli(o, serial), 0);
    o.jobs = 2;
    EXPECT_EQ(runCli(o, parallel), 0);
    EXPECT_EQ(serial.str(), parallel.str())
        << "compare output must not depend on --jobs";
}

// ---------------------------------------------------------- faults

TEST(CliParse, FaultsFlagOnRunLikeCommands)
{
    const auto o = parse({"run", "--app", "sc", "--faults",
                          "channel.tag_mismatch=0.05"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->fault_spec, "channel.tag_mismatch=0.05");

    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "sc", "--faults",
                        "bogus.site=0.1"}, &err));
    EXPECT_NE(err.find("--faults"), std::string::npos);
}

TEST(CliParse, FaultsCampaignFlags)
{
    const auto o = parse({"faults", "--app", "atax", "--sites",
                          "channel.tag_mismatch,pcie.replay",
                          "--rates", "0.1,0.5", "--seeds", "1,2",
                          "--jobs", "2"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Faults);
    EXPECT_EQ(o->app, "atax");
    EXPECT_EQ(o->fault_sites, "channel.tag_mismatch,pcie.replay");
    EXPECT_EQ(o->fault_rates, "0.1,0.5");
    EXPECT_EQ(o->sweep_seeds, "1,2");
    EXPECT_EQ(o->jobs, 2);
}

TEST(CliParse, FaultsRequiresAppAndValidGrid)
{
    std::string err;
    EXPECT_FALSE(parse({"faults"}, &err));
    EXPECT_NE(err.find("--app"), std::string::npos);
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--sites",
                        "bogus.site"}, &err));
    EXPECT_NE(err.find("bogus.site"), std::string::npos);
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--rates",
                        "1.5"}, &err));
    EXPECT_NE(err.find("--rates"), std::string::npos);
}

TEST(CliParse, PerCommandHelpShortCircuitsValidation)
{
    // `faults --help` must work without --app; every subcommand
    // answers --help/-h the same way.
    for (const char *h : {"--help", "-h"}) {
        const auto o = parse({"faults", h});
        ASSERT_TRUE(o);
        EXPECT_EQ(o->command, Command::Faults);
        EXPECT_TRUE(o->show_help);
    }
    const auto o = parse({"run", "--help"});
    ASSERT_TRUE(o);
    EXPECT_TRUE(o->show_help);
}

TEST(CliParse, InapplicableFlagNamesTheCommand)
{
    // Campaign cells are always CC runs; --cc belongs to run-like
    // commands only, and the error must name both sides.
    std::string err;
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--cc"}, &err));
    EXPECT_NE(err.find("--cc"), std::string::npos);
    EXPECT_NE(err.find("does not apply"), std::string::npos);
    EXPECT_NE(err.find("faults"), std::string::npos);
}

TEST(CliRun, PerCommandHelpPrintsFlagTable)
{
    Options o;
    o.command = Command::Faults;
    o.show_help = true;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("--sites"), std::string::npos);
    EXPECT_NE(out.find("--rates"), std::string::npos);
    EXPECT_NE(out.find("--jobs"), std::string::npos);
    EXPECT_EQ(out.find("--tolerance"), std::string::npos)
        << "stats-diff-only flags must not leak into faults help";
}

TEST(CliRun, FaultsCampaignPrintsSummaryTable)
{
    Options o;
    o.command = Command::Faults;
    o.app = "atax";
    o.fault_sites = "channel.tag_mismatch";
    o.fault_rates = "1";
    o.sweep_seeds = "1";
    o.jobs = 1;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("fault campaign: atax"), std::string::npos);
    EXPECT_NE(out.find("atax.baseline.s1"), std::string::npos);
    EXPECT_NE(out.find("atax.channel.tag_mismatch.r1.s1"),
              std::string::npos);
    EXPECT_NE(out.find("2/2 cells ok"), std::string::npos);
}

TEST(CliRun, FaultsCampaignFailedCellSetsExitCode)
{
    Options o;
    o.command = Command::Faults;
    o.app = "atax";
    o.fault_sites = "spdm.handshake";
    o.fault_rates = "1";   // handshake can never succeed
    o.sweep_seeds = "1";
    o.jobs = 1;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 1);
    EXPECT_NE(oss.str().find("failed"), std::string::npos);
}

TEST(CliRun, FaultedRunIsDeterministicAndSlower)
{
    Options o;
    o.command = Command::Compare;
    o.app = "atax";
    std::ostringstream base;
    EXPECT_EQ(runCli(o, base), 0);
    o.fault_spec = "channel.tag_mismatch=1";
    std::ostringstream f1, f2;
    EXPECT_EQ(runCli(o, f1), 0);
    EXPECT_EQ(runCli(o, f2), 0);
    EXPECT_EQ(f1.str(), f2.str())
        << "faulted runs must be deterministic";
    EXPECT_NE(f1.str(), base.str())
        << "a rate-1.0 fault must change the CC timing";
    EXPECT_NE(f1.str().find("fault recoveries"), std::string::npos);
}

TEST(CliParse, CriticalCommandAndFlags)
{
    const auto o = parse({"critical", "--app", "atax", "--cc",
                          "--top", "3", "--critical-out",
                          "/tmp/x.json"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Critical);
    EXPECT_EQ(o->app, "atax");
    EXPECT_TRUE(o->cc);
    EXPECT_EQ(o->top, 3);
    EXPECT_EQ(o->critical_out, "/tmp/x.json");
}

TEST(CliParse, CriticalRequiresAppAndValidTop)
{
    std::string err;
    EXPECT_FALSE(parse({"critical"}, &err));
    EXPECT_NE(err.find("--app"), std::string::npos);
    EXPECT_FALSE(parse({"critical", "--app", "atax", "--top", "0"},
                       &err));
    EXPECT_FALSE(parse({"run", "--app", "atax", "--top", "3"},
                       &err));
    EXPECT_NE(err.find("does not apply"), std::string::npos);
}

TEST(CliRun, CriticalPrintsReportAndWritesJson)
{
    Options o;
    o.command = Command::Critical;
    o.app = "atax";
    o.cc = true;
    o.top = 5;
    const std::string out_path =
        std::string(::testing::TempDir()) + "critical_out.json";
    o.critical_out = out_path;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("critical path"), std::string::npos);
    EXPECT_NE(out.find("bottleneck"), std::string::npos);
    EXPECT_NE(out.find("crypto-bound"), std::string::npos);
    std::ifstream in(out_path);
    ASSERT_TRUE(in.good());
    std::stringstream file;
    file << in.rdbuf();
    EXPECT_NE(file.str().find("\"hccsim_critical_version\": 1"),
              std::string::npos);
    EXPECT_NE(file.str().find("\"bottleneck\": \"crypto-bound\""),
              std::string::npos);
    std::remove(out_path.c_str());
}

TEST(CliRun, CriticalIsByteIdenticalAcrossRuns)
{
    Options o;
    o.command = Command::Critical;
    o.app = "gaussian";
    o.cc = true;
    std::ostringstream a, b;
    EXPECT_EQ(runCli(o, a), 0);
    EXPECT_EQ(runCli(o, b), 0);
    EXPECT_EQ(a.str(), b.str());
}

TEST(CliRun, RunMentionsBottleneckLine)
{
    Options o;
    o.command = Command::Run;
    o.app = "atax";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    EXPECT_NE(oss.str().find("critical path:"), std::string::npos);
    EXPECT_NE(oss.str().find("link-bound"), std::string::npos);
}

TEST(CliRun, CompareShowsCriticalPathDelta)
{
    Options o;
    o.command = Command::Compare;
    o.app = "atax";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("critical-path delta"), std::string::npos);
    EXPECT_NE(out.find("bottleneck: link-bound -> crypto-bound"),
              std::string::npos);
}

TEST(CliRun, SweepEmitsBottleneckColumns)
{
    Options o;
    o.command = Command::Sweep;
    o.sweep_apps = "atax";
    o.sweep_cc = "both";
    o.jobs = 1;
    const std::string out_path =
        std::string(::testing::TempDir()) + "sweep_critical.csv";
    o.out_file = out_path;
    o.format = "csv";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    std::ifstream in(out_path);
    ASSERT_TRUE(in.good());
    std::stringstream file;
    file << in.rdbuf();
    EXPECT_NE(file.str().find(",bottleneck,critical_path_ps,"),
              std::string::npos);
    EXPECT_NE(file.str().find("link-bound"), std::string::npos);
    EXPECT_NE(file.str().find("crypto-bound"), std::string::npos);
    std::remove(out_path.c_str());
}

// -------------------------------------------------------- snapshot

TEST(CliRun, SnapshotChainedCaptureRecordsParentAndSections)
{
    const auto path =
        std::string(::testing::TempDir()) + "chained.hccsnap";
    Options cap;
    cap.command = Command::Snapshot;
    cap.app = "gaussian";
    cap.cc = true;
    cap.fork_point_spec = "auto/0.95";
    cap.out_file = path;
    std::ostringstream cos;
    EXPECT_EQ(runCli(cap, cos), 0);
    EXPECT_NE(cos.str().find("wrote"), std::string::npos);

    Options ins;
    ins.command = Command::Snapshot;
    ins.snapshot_in = path;
    std::ostringstream ios;
    EXPECT_EQ(runCli(ins, ios), 0);
    const auto out = ios.str();
    EXPECT_NE(out.find("app:        gaussian"), std::string::npos);
    EXPECT_NE(out.find("fork point: auto/0.95"), std::string::npos);
    EXPECT_NE(out.find("parent:     auto"), std::string::npos)
        << "a chained capture must record the path it forks from:\n"
        << out;
    // The per-section byte-size table names each subsystem.
    EXPECT_NE(out.find("channel"), std::string::npos);
    EXPECT_NE(out.find("trace"), std::string::npos);
    EXPECT_NE(out.find("%"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliRun, SnapshotRejectsNoneForkPoint)
{
    Options o;
    o.command = Command::Snapshot;
    o.app = "gaussian";
    o.fork_point_spec = "none";
    o.out_file = std::string(::testing::TempDir()) + "none.hccsnap";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, FaultsOverlapGridPrintsTieredCellsAndForkSummary)
{
    Options o;
    o.command = Command::Faults;
    o.app = "gaussian";
    o.fault_sites = "pcie.replay";
    o.fault_rates = "0.5";
    o.sweep_seeds = "1,2";
    o.overlap = "none,speculative";
    o.fork_point_spec = "auto";
    o.jobs = 2;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("gaussian.baseline.s1"), std::string::npos);
    EXPECT_NE(out.find("gaussian.baseline.s1.speculative"),
              std::string::npos);
    EXPECT_NE(out.find("8/8 cells ok"), std::string::npos);
    EXPECT_NE(out.find("forked from snapshots"), std::string::npos);
    EXPECT_NE(out.find("resident snapshot bytes"),
              std::string::npos);
}

} // namespace
} // namespace hcc::cli
