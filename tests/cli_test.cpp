/**
 * @file
 * Tests for the hccsim CLI: argument parsing into the typed
 * per-command option structs, and command execution.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/options.hpp"
#include "common/log.hpp"
#include "crypto/impl.hpp"

namespace hcc::cli {
namespace {

std::optional<Options>
parse(std::initializer_list<const char *> args, std::string *err
      = nullptr)
{
    std::vector<std::string> v;
    for (const char *a : args)
        v.emplace_back(a);
    std::string e;
    auto r = parseArgs(v, e);
    if (err)
        *err = e;
    return r;
}

// --------------------------------------------------------- parsing

TEST(CliParse, ListCommand)
{
    const auto o = parse({"list"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::List);
}

TEST(CliParse, RunWithAllOptions)
{
    const auto o = parse({"run", "--app", "sc", "--cc", "--uvm",
                          "--scale", "2.5", "--seed", "7"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Run);
    EXPECT_EQ(o->run.workload.app, "sc");
    EXPECT_TRUE(o->run.sim.cc);
    EXPECT_TRUE(o->run.sim.uvm);
    EXPECT_DOUBLE_EQ(o->run.sim.scale, 2.5);
    EXPECT_EQ(o->run.sim.seed, 7u);
}

TEST(CliParse, HelpVariants)
{
    for (const char *h : {"help", "--help", "-h"}) {
        const auto o = parse({h});
        ASSERT_TRUE(o);
        EXPECT_EQ(o->command, Command::Help);
    }
}

TEST(CliParse, MissingAppIsError)
{
    std::string err;
    EXPECT_FALSE(parse({"run"}, &err));
    EXPECT_NE(err.find("--app"), std::string::npos);
}

TEST(CliParse, UnknownCommandAndOption)
{
    std::string err;
    EXPECT_FALSE(parse({"frobnicate"}, &err));
    EXPECT_FALSE(parse({"run", "--app", "sc", "--what"}, &err));
    EXPECT_NE(err.find("--what"), std::string::npos);
}

TEST(CliParse, BadNumericValues)
{
    EXPECT_FALSE(parse({"run", "--app", "sc", "--scale", "zero"}));
    EXPECT_FALSE(parse({"run", "--app", "sc", "--scale", "-1"}));
    EXPECT_FALSE(parse({"run", "--app", "sc", "--seed", "xyz"}));
    EXPECT_FALSE(parse({"run", "--app", "sc", "--scale"}));
}

TEST(CliParse, BadFormat)
{
    EXPECT_FALSE(parse({"trace", "--app", "sc", "--format", "xml"}));
    const auto o = parse({"trace", "--app", "sc", "--format", "csv"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->trace.format, OutputFormat::Csv);
    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "sc", "--format", "csv"},
                       &err))
        << "run has no structured output; --format must not apply";
    EXPECT_NE(err.find("does not apply"), std::string::npos);
}

TEST(CliParse, ChannelKnobs)
{
    const auto o = parse({"compare", "--app", "gemm",
                          "--crypto-workers", "8", "--tee-io"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->compare.sim.crypto_workers, 8);
    EXPECT_TRUE(o->compare.sim.tee_io);
    EXPECT_FALSE(parse({"run", "--app", "x", "--crypto-workers",
                        "0"}));
    EXPECT_FALSE(parse({"run", "--app", "x", "--crypto-workers",
                        "many"}));
}

TEST(CliParse, OverlapFlag)
{
    const auto o =
        parse({"run", "--app", "x", "--overlap", "speculative"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->run.sim.overlap, tee::OverlapMode::Speculative);
    // Sweep grids the axis, so it takes lists and `all`.
    {
        const auto s = parse({"sweep", "--apps", "atax", "--overlap",
                              "none,double-buffer"});
        ASSERT_TRUE(s);
        ASSERT_EQ(s->sweep.grid.overlaps.size(), 2u);
        EXPECT_EQ(s->sweep.grid.overlaps[1],
                  tee::OverlapMode::DoubleBuffer);
    }
    EXPECT_TRUE(parse({"sweep", "--apps", "atax", "--overlap",
                       "all"}));
    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "x", "--overlap",
                        "none,speculative"}, &err));
    EXPECT_NE(err.find("single mode"), std::string::npos);
    EXPECT_FALSE(parse({"run", "--app", "x", "--overlap", "all"}));
    EXPECT_FALSE(parse({"run", "--app", "x", "--overlap", "warp"}));
    EXPECT_FALSE(parse({"list", "--overlap", "none"}))
        << "list takes no channel knobs";
}

TEST(CliParse, OverlapListOnFaults)
{
    // The faults campaign grids the overlap axis like sweep does.
    const auto o = parse({"faults", "--app", "atax", "--overlap",
                          "none,speculative"});
    ASSERT_TRUE(o);
    ASSERT_EQ(o->faults.spec.overlaps.size(), 2u);
    EXPECT_EQ(o->faults.spec.overlaps[1],
              tee::OverlapMode::Speculative);
    EXPECT_TRUE(parse({"faults", "--app", "atax", "--overlap",
                       "all"}));
    std::string err;
    EXPECT_FALSE(parse({"compare", "--app", "atax", "--overlap",
                        "all"}, &err));
    EXPECT_NE(err.find("single mode"), std::string::npos);
}

TEST(CliParse, ForkPointPathsValidateAtParseTime)
{
    const auto o = parse({"faults", "--app", "atax", "--fork-point",
                          "auto/0.95"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->faults.spec.fork_point.str(), "auto/0.95");

    std::string err;
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--fork-point",
                        "none/0.5"}, &err));
    EXPECT_NE(err.find("cannot chain"), std::string::npos);
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--fork-point",
                        "0.5/0.4"}, &err));
    EXPECT_NE(err.find("strictly"), std::string::npos);
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--fork-point",
                        "0.5/1.5"}, &err));
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--fork-point",
                        "0.5/"}, &err));
    EXPECT_FALSE(parse({"run", "--app", "atax", "--fork-point",
                        "auto"}, &err));
    EXPECT_NE(err.find("does not apply"), std::string::npos);
}

TEST(CliParse, SnapshotBudgetFlag)
{
    const auto o = parse({"sweep", "--apps", "atax",
                          "--snapshot-budget", "64"});
    ASSERT_TRUE(o);
    ASSERT_TRUE(o->sweep.snapshot.budget_bytes.has_value());
    EXPECT_EQ(*o->sweep.snapshot.budget_bytes,
              std::size_t{64} << 20);
    {
        const auto f = parse({"faults", "--app", "atax",
                              "--snapshot-budget", "0"});
        ASSERT_TRUE(f);
        EXPECT_EQ(f->faults.spec.snapshot_budget_bytes, 0u);
    }
    EXPECT_FALSE(parse({"sweep", "--apps", "a",
                        "--snapshot-budget", "-1"}));
    EXPECT_FALSE(parse({"sweep", "--apps", "a",
                        "--snapshot-budget", "much"}));
    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "sc", "--snapshot-budget",
                        "64"}, &err));
    EXPECT_NE(err.find("does not apply"), std::string::npos);
}

TEST(CliRun, WorkersReduceCcSlowdown)
{
    auto slowdown = [](int workers) {
        Options o;
        o.command = Command::Compare;
        o.compare.workload.app = "gemm";
        o.compare.sim.crypto_workers = workers;
        std::ostringstream oss;
        runCli(o, oss);
        const auto out = oss.str();
        const auto pos = out.find("CC slowdown: ");
        return std::stod(out.substr(pos + 13));
    };
    EXPECT_LT(slowdown(8), slowdown(1) * 0.7);
}

TEST(CliParse, EmptyArgsIsError)
{
    EXPECT_FALSE(parse({}));
}

TEST(CliParse, StatsDiffCommand)
{
    const auto o = parse({"stats-diff", "base.json", "cur.json",
                          "--tolerance", "0.05"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::StatsDiff);
    EXPECT_EQ(o->stats_diff.baseline, "base.json");
    EXPECT_EQ(o->stats_diff.current, "cur.json");
    EXPECT_DOUBLE_EQ(o->stats_diff.tolerance, 0.05);

    std::string err;
    EXPECT_FALSE(parse({"stats-diff", "only-one.json"}, &err));
    EXPECT_NE(err.find("CURRENT"), std::string::npos);
    EXPECT_FALSE(parse({"stats-diff", "a", "b", "c"}));
    EXPECT_FALSE(parse({"stats-diff", "a", "b", "--tolerance",
                        "-0.1"}));
    EXPECT_FALSE(parse({"stats-diff", "a", "b", "--tolerance",
                        "lots"}));
}

TEST(CliParse, StatsOutAndLogLevel)
{
    const auto o = parse({"run", "--app", "sc", "--stats-out",
                          "s.json", "--log-level", "debug"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->run.stats_out, "s.json");
    EXPECT_EQ(o->log_level, "debug");

    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "sc", "--log-level", "loud"},
                       &err));
    EXPECT_NE(err.find("--log-level"), std::string::npos);
    EXPECT_FALSE(parse({"list", "--stats-out", "s.json"}, &err));
    EXPECT_NE(err.find("--stats-out"), std::string::npos);
}

// ------------------------------------------------------- execution

TEST(CliRun, ListShowsKnownApps)
{
    Options o;
    o.command = Command::List;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("2dconv"), std::string::npos);
    EXPECT_NE(out.find("sc"), std::string::npos);
    EXPECT_NE(out.find("graphbig_bfs"), std::string::npos);
}

TEST(CliRun, RunPrintsSummaryAndModel)
{
    Options o;
    o.command = Command::Run;
    o.run.workload.app = "2mm";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("end-to-end"), std::string::npos);
    EXPECT_NE(out.find("P (model)"), std::string::npos);
}

TEST(CliRun, CompareShowsSlowdown)
{
    Options o;
    o.command = Command::Compare;
    o.compare.workload.app = "atax";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    EXPECT_NE(oss.str().find("CC slowdown:"), std::string::npos);
}

TEST(CliRun, TraceJsonAndCsv)
{
    Options o;
    o.command = Command::Trace;
    o.trace.workload.app = "2mm";
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(o, oss), 0);
        EXPECT_EQ(oss.str().front(), '[');
    }
    o.trace.format = OutputFormat::Csv;
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(o, oss), 0);
        EXPECT_EQ(oss.str().find("kind,name"), 0u);
    }
}

TEST(CliRun, UnknownAppThrowsFatal)
{
    Options o;
    o.command = Command::Run;
    o.run.workload.app = "not-a-workload";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, HelpMentionsAllCommands)
{
    Options o;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    for (const char *cmd :
         {"list", "run", "compare", "trace", "serve", "stats-diff"})
        EXPECT_NE(oss.str().find(cmd), std::string::npos) << cmd;
}

TEST(CliRun, LogLevelFlagSetsGlobalLevel)
{
    const LogLevel before = logLevel();
    Options o;
    o.command = Command::Help;
    o.log_level = "error";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(before);
}

/** Run a workload through runCli, dumping stats to @p path. */
void
runWithStatsOut(const std::string &path, double scale)
{
    Options o;
    o.command = Command::Run;
    o.run.workload.app = "atax";
    o.run.sim.cc = true;
    o.run.sim.scale = scale;
    o.run.stats_out = path;
    std::ostringstream oss;
    ASSERT_EQ(runCli(o, oss), 0);
}

TEST(CliRun, StatsOutAndStatsDiffRoundTrip)
{
    const auto dir = ::testing::TempDir();
    const auto base = dir + "hccsim_stats_base.json";
    const auto same = dir + "hccsim_stats_same.json";
    const auto bigger = dir + "hccsim_stats_bigger.json";
    runWithStatsOut(base, 1.0);
    runWithStatsOut(same, 1.0);
    runWithStatsOut(bigger, 2.0);

    Options diff;
    diff.command = Command::StatsDiff;
    diff.stats_diff.baseline = base;
    diff.stats_diff.current = same;
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(diff, oss), 0);
        EXPECT_NE(oss.str().find("no drift"), std::string::npos);
    }
    diff.stats_diff.current = bigger;
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(diff, oss), 1);
        EXPECT_NE(oss.str().find("drifting"), std::string::npos);
    }
    // A huge tolerance forgives the size change.
    diff.stats_diff.tolerance = 0.99;
    {
        std::ostringstream oss;
        EXPECT_EQ(runCli(diff, oss), 0);
    }
}

TEST(CliRun, StatsDiffMissingFileThrowsFatal)
{
    Options o;
    o.command = Command::StatsDiff;
    o.stats_diff.baseline = "/nonexistent/base.json";
    o.stats_diff.current = "/nonexistent/cur.json";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

// ------------------------------------------------- crypto selection

TEST(CliParse, CryptoImplFlag)
{
    const auto o =
        parse({"run", "--app", "sc", "--crypto-impl", "scalar"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->crypto_impl, "scalar");

    std::string err;
    EXPECT_FALSE(
        parse({"run", "--app", "sc", "--crypto-impl", "vaes"}, &err));
    EXPECT_NE(err.find("crypto-impl"), std::string::npos);
    EXPECT_FALSE(parse({"run", "--app", "sc", "--crypto-impl"}));
}

TEST(CliParse, CryptoCalibrateCommand)
{
    const auto o = parse({"crypto-calibrate", "--ms", "1"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::CryptoCalibrate);
    EXPECT_DOUBLE_EQ(o->crypto_calibrate.budget_ms, 1.0);
    // No --app required for this command.
    EXPECT_FALSE(parse({"crypto-calibrate", "--ms", "0"}));
    EXPECT_FALSE(parse({"crypto-calibrate", "--ms", "fast"}));
}

TEST(CliRun, CryptoCalibratePrintsEveryAlgoAndRatio)
{
    Options o;
    o.command = Command::CryptoCalibrate;
    o.crypto_calibrate.budget_ms = 1.0;  // keep the loop short
    o.crypto_impl = "ttable";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("ttable"), std::string::npos);
    EXPECT_NE(out.find("aes-gcm-128"), std::string::npos)
        << "calibration table must list each algorithm:\n"
        << out;
    EXPECT_NE(out.find("host/model"), std::string::npos);
    crypto::setActiveCryptoImpl(std::nullopt);
}

// ----------------------------------------------------------- sweep

TEST(CliParse, SweepFlags)
{
    const auto o = parse({"sweep", "--apps", "atax,bicg",
                          "--cc-modes", "both", "--uvm-modes", "off",
                          "--scales", "1,2", "--seeds", "42,7",
                          "--jobs", "4", "--out", "cells.csv",
                          "--format", "csv", "--stats-out",
                          "stats.json"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Sweep);
    EXPECT_EQ(o->sweep.grid.apps,
              (std::vector<std::string>{"atax", "bicg"}));
    EXPECT_EQ(o->sweep.grid.scales, (std::vector<double>{1.0, 2.0}));
    EXPECT_EQ(o->sweep.grid.seeds,
              (std::vector<std::uint64_t>{42, 7}));
    EXPECT_EQ(o->sweep.grid.cc_modes,
              (std::vector<bool>{false, true}));
    EXPECT_EQ(o->sweep.jobs, 4);
    EXPECT_EQ(o->sweep.format, OutputFormat::Csv);
    EXPECT_EQ(o->sweep.out_file, "cells.csv");
    EXPECT_EQ(o->sweep.stats_out, "stats.json");
}

TEST(CliParse, SweepRequiresAppsOrSpec)
{
    std::string err;
    EXPECT_FALSE(parse({"sweep"}, &err));
    EXPECT_NE(err.find("--apps"), std::string::npos);
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--spec", "g.grid"},
                       &err));
    EXPECT_TRUE(parse({"sweep", "--spec", "g.grid"}));
}

TEST(CliParse, SweepRejectsBadValues)
{
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--jobs", "0"}));
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--jobs", "many"}));
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--cc-modes",
                        "sometimes"}));
    EXPECT_FALSE(parse({"sweep", "--apps", "a", "--uvm-modes",
                        "maybe"}));
}

TEST(CliParse, OutAndTraceOutAreCommandSpecific)
{
    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "sc", "--out", "x.csv"},
                       &err));
    EXPECT_NE(err.find("--out"), std::string::npos);
    EXPECT_FALSE(parse({"run", "--app", "sc", "--trace-out",
                        "t.json"}, &err));
    EXPECT_TRUE(parse({"trace", "--app", "sc", "--trace-out",
                       "t.json"}));
}

TEST(CliRun, SweepPrintsPerCellTableAndSummary)
{
    Options o;
    o.command = Command::Sweep;
    o.sweep.grid.apps = {"atax"};
    o.sweep.jobs = 2;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("atax.base.x1.s42"), std::string::npos);
    EXPECT_NE(out.find("atax.cc.x1.s42"), std::string::npos);
    EXPECT_NE(out.find("2/2 cells ok"), std::string::npos);
}

TEST(CliRun, SweepFailedCellSetsExitCode)
{
    Options o;
    o.command = Command::Sweep;
    o.sweep.grid.apps = {"gaussian"};    // no UVM variant
    o.sweep.grid.uvm_modes = {true};
    o.sweep.grid.cc_modes = {false};
    o.sweep.jobs = 1;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 1);
    EXPECT_NE(oss.str().find("FAIL"), std::string::npos);
}

TEST(CliRun, SweepUnwritableOutputFails)
{
    Options o;
    o.command = Command::Sweep;
    o.sweep.grid.apps = {"atax"};
    o.sweep.grid.cc_modes = {false};
    o.sweep.jobs = 1;
    o.sweep.out_file = "/nonexistent-dir/cells.csv";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
    o.sweep.out_file.clear();
    o.sweep.stats_out = "/nonexistent-dir/stats.json";
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, RunUnwritableStatsOutFails)
{
    Options o;
    o.command = Command::Run;
    o.run.workload.app = "atax";
    o.run.stats_out = "/nonexistent-dir/stats.json";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, TraceOutWritesFileInsteadOfStream)
{
    Options o;
    o.command = Command::Trace;
    o.trace.workload.app = "atax";
    o.trace.trace_out = "trace_out_test.json";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    EXPECT_TRUE(oss.str().empty());
    std::ifstream in(o.trace.trace_out);
    ASSERT_TRUE(in.good());
    char first = 0;
    in >> first;
    EXPECT_EQ(first, '[');
    in.close();
    std::remove(o.trace.trace_out.c_str());

    o.trace.trace_out = "/nonexistent-dir/trace.json";
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, CompareParallelMatchesSerial)
{
    Options o;
    o.command = Command::Compare;
    o.compare.workload.app = "atax";
    std::ostringstream serial, parallel;
    o.compare.jobs = 1;
    EXPECT_EQ(runCli(o, serial), 0);
    o.compare.jobs = 2;
    EXPECT_EQ(runCli(o, parallel), 0);
    EXPECT_EQ(serial.str(), parallel.str())
        << "compare output must not depend on --jobs";
}

// ---------------------------------------------------------- faults

TEST(CliParse, FaultsFlagOnRunLikeCommands)
{
    const auto o = parse({"run", "--app", "sc", "--faults",
                          "channel.tag_mismatch=0.05"});
    ASSERT_TRUE(o);
    EXPECT_TRUE(o->run.sim.faults.any());

    std::string err;
    EXPECT_FALSE(parse({"run", "--app", "sc", "--faults",
                        "bogus.site=0.1"}, &err));
    EXPECT_NE(err.find("--faults"), std::string::npos);
}

TEST(CliParse, FaultsCampaignFlags)
{
    const auto o = parse({"faults", "--app", "atax", "--sites",
                          "channel.tag_mismatch,pcie.replay",
                          "--rates", "0.1,0.5", "--seeds", "1,2",
                          "--jobs", "2"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Faults);
    EXPECT_EQ(o->faults.spec.app, "atax");
    ASSERT_EQ(o->faults.spec.sites.size(), 2u);
    EXPECT_EQ(o->faults.spec.sites[0],
              *fault::parseSite("channel.tag_mismatch"));
    EXPECT_EQ(o->faults.spec.rates, (std::vector<double>{0.1, 0.5}));
    EXPECT_EQ(o->faults.spec.seeds,
              (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(o->faults.jobs, 2);
}

TEST(CliParse, FaultsRequiresAppAndValidGrid)
{
    std::string err;
    EXPECT_FALSE(parse({"faults"}, &err));
    EXPECT_NE(err.find("--app"), std::string::npos);
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--sites",
                        "bogus.site"}, &err));
    EXPECT_NE(err.find("bogus.site"), std::string::npos);
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--rates",
                        "1.5"}, &err));
    EXPECT_NE(err.find("--rates"), std::string::npos);
}

TEST(CliParse, PerCommandHelpShortCircuitsValidation)
{
    // `faults --help` must work without --app; every subcommand
    // answers --help/-h the same way.
    for (const char *h : {"--help", "-h"}) {
        const auto o = parse({"faults", h});
        ASSERT_TRUE(o);
        EXPECT_EQ(o->command, Command::Faults);
        EXPECT_TRUE(o->show_help);
    }
    const auto o = parse({"run", "--help"});
    ASSERT_TRUE(o);
    EXPECT_TRUE(o->show_help);
}

TEST(CliParse, InapplicableFlagNamesTheCommand)
{
    // Campaign cells are always CC runs; --cc belongs to run-like
    // commands only, and the error must name both sides.
    std::string err;
    EXPECT_FALSE(parse({"faults", "--app", "atax", "--cc"}, &err));
    EXPECT_NE(err.find("--cc"), std::string::npos);
    EXPECT_NE(err.find("does not apply"), std::string::npos);
    EXPECT_NE(err.find("faults"), std::string::npos);
}

TEST(CliRun, PerCommandHelpPrintsFlagTable)
{
    Options o;
    o.command = Command::Faults;
    o.show_help = true;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("--sites"), std::string::npos);
    EXPECT_NE(out.find("--rates"), std::string::npos);
    EXPECT_NE(out.find("--jobs"), std::string::npos);
    EXPECT_EQ(out.find("--tolerance"), std::string::npos)
        << "stats-diff-only flags must not leak into faults help";
    EXPECT_EQ(out.find("--loads"), std::string::npos)
        << "serve-only flags must not leak into faults help";
}

TEST(CliRun, FaultsCampaignPrintsSummaryTable)
{
    Options o;
    o.command = Command::Faults;
    o.faults.spec.app = "atax";
    o.faults.spec.sites = {*fault::parseSite("channel.tag_mismatch")};
    o.faults.spec.rates = {1.0};
    o.faults.spec.seeds = {1};
    o.faults.jobs = 1;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("fault campaign: atax"), std::string::npos);
    EXPECT_NE(out.find("atax.baseline.s1"), std::string::npos);
    EXPECT_NE(out.find("atax.channel.tag_mismatch.r1.s1"),
              std::string::npos);
    EXPECT_NE(out.find("2/2 cells ok"), std::string::npos);
}

TEST(CliRun, FaultsCampaignFailedCellSetsExitCode)
{
    Options o;
    o.command = Command::Faults;
    o.faults.spec.app = "atax";
    o.faults.spec.sites = {*fault::parseSite("spdm.handshake")};
    o.faults.spec.rates = {1.0};   // handshake can never succeed
    o.faults.spec.seeds = {1};
    o.faults.jobs = 1;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 1);
    EXPECT_NE(oss.str().find("failed"), std::string::npos);
}

TEST(CliRun, FaultedRunIsDeterministicAndSlower)
{
    Options o;
    o.command = Command::Compare;
    o.compare.workload.app = "atax";
    std::ostringstream base;
    EXPECT_EQ(runCli(o, base), 0);
    o.compare.sim.faults =
        fault::parseFaultSpec("channel.tag_mismatch=1").value();
    std::ostringstream f1, f2;
    EXPECT_EQ(runCli(o, f1), 0);
    EXPECT_EQ(runCli(o, f2), 0);
    EXPECT_EQ(f1.str(), f2.str())
        << "faulted runs must be deterministic";
    EXPECT_NE(f1.str(), base.str())
        << "a rate-1.0 fault must change the CC timing";
    EXPECT_NE(f1.str().find("fault recoveries"), std::string::npos);
}

TEST(CliParse, CriticalCommandAndFlags)
{
    const auto o = parse({"critical", "--app", "atax", "--cc",
                          "--top", "3", "--critical-out",
                          "/tmp/x.json"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Critical);
    EXPECT_EQ(o->critical.workload.app, "atax");
    EXPECT_TRUE(o->critical.sim.cc);
    EXPECT_EQ(o->critical.top, 3);
    EXPECT_EQ(o->critical.critical_out, "/tmp/x.json");
}

TEST(CliParse, CriticalRequiresAppAndValidTop)
{
    std::string err;
    EXPECT_FALSE(parse({"critical"}, &err));
    EXPECT_NE(err.find("--app"), std::string::npos);
    EXPECT_FALSE(parse({"critical", "--app", "atax", "--top", "0"},
                       &err));
    EXPECT_FALSE(parse({"run", "--app", "atax", "--top", "3"},
                       &err));
    EXPECT_NE(err.find("does not apply"), std::string::npos);
}

TEST(CliRun, CriticalPrintsReportAndWritesJson)
{
    Options o;
    o.command = Command::Critical;
    o.critical.workload.app = "atax";
    o.critical.sim.cc = true;
    o.critical.top = 5;
    const std::string out_path =
        std::string(::testing::TempDir()) + "critical_out.json";
    o.critical.critical_out = out_path;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("critical path"), std::string::npos);
    EXPECT_NE(out.find("bottleneck"), std::string::npos);
    EXPECT_NE(out.find("crypto-bound"), std::string::npos);
    std::ifstream in(out_path);
    ASSERT_TRUE(in.good());
    std::stringstream file;
    file << in.rdbuf();
    EXPECT_NE(file.str().find("\"hccsim_critical_version\": 1"),
              std::string::npos);
    EXPECT_NE(file.str().find("\"bottleneck\": \"crypto-bound\""),
              std::string::npos);
    std::remove(out_path.c_str());
}

TEST(CliRun, CriticalIsByteIdenticalAcrossRuns)
{
    Options o;
    o.command = Command::Critical;
    o.critical.workload.app = "gaussian";
    o.critical.sim.cc = true;
    std::ostringstream a, b;
    EXPECT_EQ(runCli(o, a), 0);
    EXPECT_EQ(runCli(o, b), 0);
    EXPECT_EQ(a.str(), b.str());
}

TEST(CliRun, RunMentionsBottleneckLine)
{
    Options o;
    o.command = Command::Run;
    o.run.workload.app = "atax";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    EXPECT_NE(oss.str().find("critical path:"), std::string::npos);
    EXPECT_NE(oss.str().find("link-bound"), std::string::npos);
}

TEST(CliRun, CompareShowsCriticalPathDelta)
{
    Options o;
    o.command = Command::Compare;
    o.compare.workload.app = "atax";
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("critical-path delta"), std::string::npos);
    EXPECT_NE(out.find("bottleneck: link-bound -> crypto-bound"),
              std::string::npos);
}

TEST(CliRun, SweepEmitsBottleneckColumns)
{
    Options o;
    o.command = Command::Sweep;
    o.sweep.grid.apps = {"atax"};
    o.sweep.jobs = 1;
    const std::string out_path =
        std::string(::testing::TempDir()) + "sweep_critical.csv";
    o.sweep.out_file = out_path;
    o.sweep.format = OutputFormat::Csv;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    std::ifstream in(out_path);
    ASSERT_TRUE(in.good());
    std::stringstream file;
    file << in.rdbuf();
    EXPECT_NE(file.str().find(",bottleneck,critical_path_ps,"),
              std::string::npos);
    EXPECT_NE(file.str().find("link-bound"), std::string::npos);
    EXPECT_NE(file.str().find("crypto-bound"), std::string::npos);
    std::remove(out_path.c_str());
}

// ----------------------------------------------------------- serve

TEST(CliParse, ServeFlags)
{
    const auto o = parse({"serve", "--loads", "2,8", "--requests",
                          "40", "--max-batch", "8", "--prompt-len",
                          "128", "--gen-len", "16", "--kv-budget",
                          "64", "--kv-token-bytes", "16384",
                          "--backend", "hf", "--quant", "awq4",
                          "--cc-modes", "on", "--overlap",
                          "none,speculative", "--bursts",
                          "0.5:0.8:4", "--seed", "9", "--jobs", "2",
                          "--format", "csv", "--out", "serve.csv",
                          "--stats-out", "serve_stats.json"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Serve);
    const serve::ServeSpec &s = o->serve.spec;
    EXPECT_EQ(s.loads, (std::vector<double>{2.0, 8.0}));
    EXPECT_EQ(s.requests, 40);
    EXPECT_EQ(s.max_batch, 8);
    EXPECT_EQ(s.prompt_len, 128);
    EXPECT_EQ(s.gen_len, 16);
    EXPECT_EQ(s.kv_budget_bytes, Bytes{64} << 20);
    EXPECT_EQ(s.kv_bytes_per_token, 16384u);
    EXPECT_EQ(s.backend, ml::LlmBackend::HuggingFace);
    EXPECT_EQ(s.quant, ml::LlmQuant::Awq4);
    EXPECT_EQ(s.cc_modes, (std::vector<bool>{true}));
    ASSERT_EQ(s.overlaps.size(), 2u);
    EXPECT_EQ(s.overlaps[1], tee::OverlapMode::Speculative);
    ASSERT_EQ(s.bursts.size(), 1u);
    EXPECT_DOUBLE_EQ(s.bursts[0].begin, 0.5);
    EXPECT_DOUBLE_EQ(s.bursts[0].end, 0.8);
    EXPECT_DOUBLE_EQ(s.bursts[0].multiplier, 4.0);
    EXPECT_EQ(s.seed, 9u);
    EXPECT_EQ(o->serve.jobs, 2);
    EXPECT_EQ(o->serve.format, OutputFormat::Csv);
    EXPECT_EQ(o->serve.out_file, "serve.csv");
    EXPECT_EQ(o->serve.stats_out, "serve_stats.json");
}

TEST(CliParse, ServeNeedsNoRequiredArgs)
{
    const auto o = parse({"serve"});
    ASSERT_TRUE(o);
    EXPECT_EQ(o->command, Command::Serve);
    // Engine defaults survive parsing untouched.
    EXPECT_EQ(o->serve.spec.requests, 160);
    EXPECT_EQ(o->serve.spec.cc_modes,
              (std::vector<bool>{false, true}));
}

TEST(CliParse, ServeRejectsBadValues)
{
    EXPECT_FALSE(parse({"serve", "--loads", "0"}));
    EXPECT_FALSE(parse({"serve", "--loads", "fast"}));
    EXPECT_FALSE(parse({"serve", "--requests", "0"}));
    EXPECT_FALSE(parse({"serve", "--max-batch", "0"}));
    EXPECT_FALSE(parse({"serve", "--kv-budget", "0"}));
    EXPECT_FALSE(parse({"serve", "--backend", "pytorch"}));
    EXPECT_FALSE(parse({"serve", "--quant", "int8"}));
    EXPECT_FALSE(parse({"serve", "--bursts", "0.8:0.5:4"}));
    EXPECT_FALSE(parse({"serve", "--bursts", "nonsense"}));
    std::string err;
    EXPECT_FALSE(parse({"serve", "--app", "atax"}, &err))
        << "serve has no workload registry app";
    EXPECT_NE(err.find("does not apply"), std::string::npos);
    EXPECT_FALSE(parse({"run", "--app", "sc", "--loads", "2"},
                       &err));
    EXPECT_NE(err.find("does not apply"), std::string::npos);
}

// -------------------------------------------------------- snapshot

TEST(CliRun, SnapshotChainedCaptureRecordsParentAndSections)
{
    const auto path =
        std::string(::testing::TempDir()) + "chained.hccsnap";
    Options cap;
    cap.command = Command::Snapshot;
    cap.snapshot.app = "gaussian";
    cap.snapshot.sim.cc = true;
    cap.snapshot.fork_point =
        snap::parseForkPoint("auto/0.95").value();
    cap.snapshot.out_file = path;
    std::ostringstream cos;
    EXPECT_EQ(runCli(cap, cos), 0);
    EXPECT_NE(cos.str().find("wrote"), std::string::npos);

    Options ins;
    ins.command = Command::Snapshot;
    ins.snapshot.inspect = path;
    std::ostringstream ios;
    EXPECT_EQ(runCli(ins, ios), 0);
    const auto out = ios.str();
    EXPECT_NE(out.find("app:        gaussian"), std::string::npos);
    EXPECT_NE(out.find("fork point: auto/0.95"), std::string::npos);
    EXPECT_NE(out.find("parent:     auto"), std::string::npos)
        << "a chained capture must record the path it forks from:\n"
        << out;
    // The per-section byte-size table names each subsystem.
    EXPECT_NE(out.find("channel"), std::string::npos);
    EXPECT_NE(out.find("trace"), std::string::npos);
    EXPECT_NE(out.find("%"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliRun, SnapshotRejectsNoneForkPoint)
{
    Options o;
    o.command = Command::Snapshot;
    o.snapshot.app = "gaussian";
    o.snapshot.fork_point = snap::parseForkPoint("none").value();
    o.snapshot.out_file =
        std::string(::testing::TempDir()) + "none.hccsnap";
    std::ostringstream oss;
    EXPECT_THROW(runCli(o, oss), hcc::FatalError);
}

TEST(CliRun, FaultsOverlapGridPrintsTieredCellsAndForkSummary)
{
    Options o;
    o.command = Command::Faults;
    o.faults.spec.app = "gaussian";
    o.faults.spec.sites = {*fault::parseSite("pcie.replay")};
    o.faults.spec.rates = {0.5};
    o.faults.spec.seeds = {1, 2};
    o.faults.spec.overlaps = {tee::OverlapMode::None,
                              tee::OverlapMode::Speculative};
    o.faults.spec.fork_point = snap::parseForkPoint("auto").value();
    o.faults.jobs = 2;
    std::ostringstream oss;
    EXPECT_EQ(runCli(o, oss), 0);
    const auto out = oss.str();
    EXPECT_NE(out.find("gaussian.baseline.s1"), std::string::npos);
    EXPECT_NE(out.find("gaussian.baseline.s1.speculative"),
              std::string::npos);
    EXPECT_NE(out.find("8/8 cells ok"), std::string::npos);
    EXPECT_NE(out.find("forked from snapshots"), std::string::npos);
    EXPECT_NE(out.find("resident snapshot bytes"),
              std::string::npos);
}

} // namespace
} // namespace hcc::cli
