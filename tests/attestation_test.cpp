/**
 * @file
 * Tests for the attestation model: measurement-register semantics and
 * quote generation/verification, including rejection of tampered
 * stacks, replayed nonces and forged signatures.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tee/attestation.hpp"

namespace hcc::tee {
namespace {

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

std::vector<std::uint8_t>
key()
{
    return std::vector<std::uint8_t>(32, 0x5a);
}

struct Platform
{
    MeasurementRegister mrtd;
    MeasurementRegister rtmr;
    MeasurementRegister gpu_fw;

    void
    bootGolden()
    {
        mrtd.extendComponent("td-kernel", bytes("linux-6.2-tdx"));
        mrtd.extendComponent("td-initrd", bytes("initrd-v1"));
        rtmr.extendComponent("nvidia-driver", bytes("550.127.05"));
        rtmr.extendComponent("cuda-runtime", bytes("12.4"));
        gpu_fw.extendComponent("gsp-firmware", bytes("gsp-535.cc"));
    }
};

TEST(MeasurementRegisterTest, StartsZero)
{
    MeasurementRegister r;
    for (auto b : r.value())
        EXPECT_EQ(b, 0);
    EXPECT_EQ(r.extensions(), 0u);
}

TEST(MeasurementRegisterTest, ExtendIsOrderSensitive)
{
    MeasurementRegister ab, ba;
    ab.extend(bytes("a"));
    ab.extend(bytes("b"));
    ba.extend(bytes("b"));
    ba.extend(bytes("a"));
    EXPECT_NE(ab.value(), ba.value());
    EXPECT_EQ(ab.extensions(), 2u);
}

TEST(MeasurementRegisterTest, DeterministicReplay)
{
    Platform a, b;
    a.bootGolden();
    b.bootGolden();
    EXPECT_EQ(a.mrtd.value(), b.mrtd.value());
    EXPECT_EQ(a.rtmr.value(), b.rtmr.value());
}

TEST(MeasurementRegisterTest, ComponentNameIsMeasured)
{
    MeasurementRegister a, b;
    a.extendComponent("driver", bytes("blob"));
    b.extendComponent("rootkit", bytes("blob"));
    EXPECT_NE(a.value(), b.value());
}

TEST(AttestationTest, GoldenStackVerifies)
{
    Platform p;
    p.bootGolden();
    AttestationService svc(key());
    const auto quote =
        svc.generateQuote(p.mrtd, p.rtmr, p.gpu_fw, 777);

    Platform golden;
    golden.bootGolden();
    EXPECT_TRUE(svc.verifyQuote(quote, 777, golden.mrtd.value(),
                                golden.rtmr.value(),
                                golden.gpu_fw.value()));
}

TEST(AttestationTest, TamperedDriverIsRejected)
{
    Platform p;
    p.mrtd.extendComponent("td-kernel", bytes("linux-6.2-tdx"));
    p.mrtd.extendComponent("td-initrd", bytes("initrd-v1"));
    p.rtmr.extendComponent("nvidia-driver",
                           bytes("550.127.05-BACKDOORED"));
    p.rtmr.extendComponent("cuda-runtime", bytes("12.4"));
    p.gpu_fw.extendComponent("gsp-firmware", bytes("gsp-535.cc"));

    AttestationService svc(key());
    const auto quote =
        svc.generateQuote(p.mrtd, p.rtmr, p.gpu_fw, 1);

    Platform golden;
    golden.bootGolden();
    EXPECT_FALSE(svc.verifyQuote(quote, 1, golden.mrtd.value(),
                                 golden.rtmr.value(),
                                 golden.gpu_fw.value()));
}

TEST(AttestationTest, WrongNonceIsRejected)
{
    Platform p;
    p.bootGolden();
    AttestationService svc(key());
    const auto quote =
        svc.generateQuote(p.mrtd, p.rtmr, p.gpu_fw, 42);
    EXPECT_FALSE(svc.verifyQuote(quote, 43, p.mrtd.value(),
                                 p.rtmr.value(), p.gpu_fw.value()));
}

TEST(AttestationTest, ForgedSignatureIsRejected)
{
    Platform p;
    p.bootGolden();
    AttestationService svc(key());
    auto quote = svc.generateQuote(p.mrtd, p.rtmr, p.gpu_fw, 5);
    quote.signature[0] ^= 1;
    EXPECT_FALSE(svc.verifyQuote(quote, 5, p.mrtd.value(),
                                 p.rtmr.value(), p.gpu_fw.value()));
}

TEST(AttestationTest, MeasurementSwapAfterSigningIsRejected)
{
    // Attacker replaces the measurements inside a signed quote.
    Platform p;
    p.bootGolden();
    AttestationService svc(key());
    auto quote = svc.generateQuote(p.mrtd, p.rtmr, p.gpu_fw, 5);
    quote.rtmr[3] ^= 0xff;
    EXPECT_FALSE(svc.verifyQuote(quote, 5, p.mrtd.value(),
                                 quote.rtmr, p.gpu_fw.value()))
        << "signature must bind the measurements";
}

TEST(AttestationTest, DifferentPlatformKeyCannotVerify)
{
    Platform p;
    p.bootGolden();
    AttestationService genuine(key());
    std::vector<std::uint8_t> other_key(32, 0x11);
    AttestationService impostor(other_key);
    const auto quote =
        impostor.generateQuote(p.mrtd, p.rtmr, p.gpu_fw, 9);
    EXPECT_FALSE(genuine.verifyQuote(quote, 9, p.mrtd.value(),
                                     p.rtmr.value(),
                                     p.gpu_fw.value()));
}

TEST(AttestationTest, CostsAreModeled)
{
    EXPECT_GT(AttestationService::kQuoteGenCost, 0);
    EXPECT_GT(AttestationService::kQuoteVerifyCost, 0);
}

} // namespace
} // namespace hcc::tee
