/**
 * @file
 * Tests for the tracer and the trace analysis layer.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "trace/analysis.hpp"
#include "trace/tracer.hpp"

namespace hcc::trace {
namespace {

TraceEvent
mk(EventKind kind, SimTime start, SimTime end, SimTime wait = 0,
   Bytes bytes = 0)
{
    TraceEvent e;
    e.kind = kind;
    e.start = start;
    e.end = end;
    e.queue_wait = wait;
    e.bytes = bytes;
    return e;
}

TEST(TracerTest, RecordsAndAssignsCorrelations)
{
    Tracer t;
    const auto a = t.record(mk(EventKind::Launch, 0, 10));
    const auto b = t.record(mk(EventKind::Kernel, 12, 50));
    EXPECT_NE(a, b);
    EXPECT_EQ(t.size(), 2u);
}

TEST(TracerTest, SpanCoversAllEvents)
{
    Tracer t;
    t.record(mk(EventKind::Launch, 100, 110));
    t.record(mk(EventKind::Kernel, 50, 400));
    EXPECT_EQ(t.firstStart(), 50);
    EXPECT_EQ(t.lastEnd(), 400);
    EXPECT_EQ(t.span(), 350);
}

TEST(TracerTest, OfKindFilters)
{
    Tracer t;
    t.record(mk(EventKind::Launch, 0, 1));
    t.record(mk(EventKind::Kernel, 1, 2));
    t.record(mk(EventKind::Launch, 2, 3));
    EXPECT_EQ(t.ofKind(EventKind::Launch).size(), 2u);
    EXPECT_EQ(t.ofKind(EventKind::MemcpyH2D).size(), 0u);
}

TEST(TracerTest, RejectsNegativeDuration)
{
    Tracer t;
    auto e = mk(EventKind::Launch, 10, 5);
    EXPECT_DEATH(t.record(e), "event ends before it starts");
}

TEST(TracerTest, ClearResets)
{
    Tracer t;
    t.record(mk(EventKind::Launch, 0, 1));
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.span(), 0);
}

TEST(Analysis, MetricsAggregateByKind)
{
    Tracer t;
    t.record(mk(EventKind::Launch, 0, 10, 2));
    t.record(mk(EventKind::Kernel, 12, 112, 2));
    t.record(mk(EventKind::Launch, 112, 120, 3));
    t.record(mk(EventKind::Kernel, 125, 185, 5));
    t.record(mk(EventKind::MemcpyH2D, 200, 300, 0, 4096));
    t.record(mk(EventKind::MemcpyD2H, 300, 350));
    t.record(mk(EventKind::MemcpyD2D, 350, 360));
    t.record(mk(EventKind::MallocDevice, 360, 400));
    t.record(mk(EventKind::Free, 400, 420));
    t.record(mk(EventKind::Sync, 420, 430));

    const auto m = analyze(t);
    EXPECT_EQ(m.launches, 2);
    EXPECT_EQ(m.kernels, 2);
    EXPECT_EQ(m.sumKlo(), 18);
    EXPECT_EQ(m.sumLqt(), 5);
    EXPECT_EQ(m.sumKqt(), 7);
    EXPECT_EQ(m.sumKet(), 160);
    EXPECT_EQ(m.copy_h2d, 100);
    EXPECT_EQ(m.copy_d2h, 50);
    EXPECT_EQ(m.copy_d2d, 10);
    EXPECT_EQ(m.copyTotal(), 160);
    EXPECT_EQ(m.alloc_device, 40);
    EXPECT_EQ(m.free_time, 20);
    EXPECT_EQ(m.sync_time, 10);
    EXPECT_EQ(m.end_to_end, 430);
}

TEST(Analysis, GraphLaunchCountsAsLaunch)
{
    Tracer t;
    t.record(mk(EventKind::GraphLaunch, 0, 8, 1));
    const auto m = analyze(t);
    EXPECT_EQ(m.launches, 1);
    EXPECT_EQ(m.sumKlo(), 8);
}

TEST(Analysis, FaultOverlapNotDoubleCountedInSync)
{
    // Regression: a fault-recovery span overlapping a Sync window
    // used to be counted in both fault_time and sync_time.  The
    // recovery owns that wall time; sync keeps only the rest.
    Tracer t;
    t.record(mk(EventKind::Sync, 150, 250));
    t.record(mk(EventKind::Fault, 100, 200));
    const auto m = analyze(t);
    EXPECT_EQ(m.fault_time, 100);
    EXPECT_EQ(m.fault_recoveries, 1);
    EXPECT_EQ(m.sync_time, 50);
}

TEST(Analysis, OverlappingFaultSpansMergeBeforeSyncCorrection)
{
    Tracer t;
    t.record(mk(EventKind::Sync, 150, 250));
    // Two overlapping recoveries covering [100, 200] in union; the
    // sync overlap must be subtracted once, not twice.
    t.record(mk(EventKind::Fault, 100, 180));
    t.record(mk(EventKind::Fault, 160, 200));
    const auto m = analyze(t);
    EXPECT_EQ(m.fault_recoveries, 2);
    EXPECT_EQ(m.sync_time, 50);
}

TEST(Analysis, FaultCoveringWholeSyncZeroesIt)
{
    Tracer t;
    t.record(mk(EventKind::Sync, 150, 250));
    t.record(mk(EventKind::Fault, 100, 300));
    const auto m = analyze(t);
    EXPECT_EQ(m.sync_time, 0);
    EXPECT_EQ(m.fault_time, 200);
}

TEST(Analysis, UnionCoverageMergesOverlaps)
{
    EXPECT_EQ(unionCoverage({{0, 10}, {5, 15}}), 15);
    EXPECT_EQ(unionCoverage({{0, 10}, {20, 30}}), 20);
    EXPECT_EQ(unionCoverage({{0, 10}, {2, 3}}), 10);
    EXPECT_EQ(unionCoverage({}), 0);
}

TEST(Analysis, UnionCoverageUnsortedInput)
{
    EXPECT_EQ(unionCoverage({{20, 30}, {0, 5}, {4, 21}}), 30);
}

TEST(Analysis, OverlapWithClipsToWindow)
{
    const std::vector<std::pair<SimTime, SimTime>> spans = {
        {0, 100}, {200, 300}};
    EXPECT_EQ(overlapWith(50, 250, spans), 100);
    EXPECT_EQ(overlapWith(400, 500, spans), 0);
    EXPECT_EQ(overlapWith(100, 100, spans), 0);
}

TEST(Analysis, EventScatterDropsLongest)
{
    Tracer t;
    t.record(mk(EventKind::Kernel, 0, 1000));     // the long one
    t.record(mk(EventKind::Kernel, 1000, 1010));
    t.record(mk(EventKind::Kernel, 2000, 2020));
    const auto pts = eventScatter(t, EventKind::Kernel, 1);
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_LT(pts[0].start_us, pts[1].start_us)
        << "points sorted by start";
    for (const auto &p : pts)
        EXPECT_LT(p.duration_us, 1.0);
}

TEST(Analysis, KlrDefinition)
{
    Tracer t;
    t.record(mk(EventKind::Launch, 0, 10, 10));   // KLO 10, LQT 10
    t.record(mk(EventKind::Kernel, 10, 110, 0));  // KET 100
    const auto m = analyze(t);
    EXPECT_DOUBLE_EQ(kernelToLaunchRatio(m), 5.0);
}

TEST(Analysis, KlrInfiniteWithoutLaunches)
{
    Tracer t;
    t.record(mk(EventKind::Kernel, 0, 100));
    const auto m = analyze(t);
    EXPECT_GT(kernelToLaunchRatio(m), 1e12);
}

} // namespace
} // namespace hcc::trace
