/**
 * @file
 * Shared gtest entry point for all test binaries.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    // Keep test output clean; individual tests may raise the level.
    hcc::setLogLevel(hcc::LogLevel::Error);
    return RUN_ALL_TESTS();
}
