/**
 * @file
 * Tests for the multi-GPU model: P2P vs encrypted double-bounce,
 * collective scaling, and CC accounting.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "multigpu/multi_gpu.hpp"

namespace hcc::multigpu {
namespace {

MultiGpuConfig
cfg(bool cc, int gpus = 2)
{
    MultiGpuConfig c;
    c.cc = cc;
    c.gpus = gpus;
    return c;
}

TEST(MultiGpu, P2pRunsAtPeerBandwidth)
{
    MultiGpuSystem sys(cfg(false));
    const Bytes b = size::mib(256);
    const auto t = sys.peerCopy(0, 1, b, 0);
    EXPECT_NEAR(bandwidthGBs(b, t.total.duration()), 20.0, 1.0);
    EXPECT_EQ(t.host_staged, 0u);
}

TEST(MultiGpu, CcPeerCopyBouncesThroughHost)
{
    MultiGpuSystem sys(cfg(true));
    const Bytes b = size::mib(256);
    const auto t = sys.peerCopy(0, 1, b, 0);
    EXPECT_EQ(t.host_staged, b);
    // D2H (~1.3 GB/s) + H2D (~3 GB/s) back to back.
    const double gbps = bandwidthGBs(b, t.total.duration());
    EXPECT_LT(gbps, 1.2);
}

TEST(MultiGpu, CcPeerTaxIsLarge)
{
    MultiGpuSystem base(cfg(false)), cc(cfg(true));
    const Bytes b = size::mib(128);
    const auto tb = base.peerCopy(0, 1, b, 0);
    const auto tc = cc.peerCopy(0, 1, b, 0);
    const double ratio = static_cast<double>(tc.total.duration())
        / static_cast<double>(tb.total.duration());
    EXPECT_GT(ratio, 10.0)
        << "losing P2P plus double encryption should cost >10x";
}

TEST(MultiGpu, AllReduceMovesExpectedVolume)
{
    MultiGpuSystem sys(cfg(true, 4));
    const Bytes b = size::mib(64);
    const auto t = sys.allReduce(b, 0);
    // 2*(N-1) steps x N legs x (b/N) bytes staged per leg.
    EXPECT_EQ(t.host_staged, 2ull * 3ull * 4ull * (b / 4));
    EXPECT_GT(t.total.duration(), 0);
}

TEST(MultiGpu, AllReduceCcMuchSlower)
{
    MultiGpuSystem base(cfg(false)), cc(cfg(true));
    const Bytes b = size::mib(64);
    const auto tb = base.allReduce(b, 0);
    const auto tc = cc.allReduce(b, 0);
    EXPECT_GT(tc.total.duration(), 8 * tb.total.duration());
}

TEST(MultiGpu, BroadcastChainScalesWithGpus)
{
    MultiGpuSystem two(cfg(false, 2)), four(cfg(false, 4));
    const Bytes b = size::mib(64);
    const auto t2 = two.broadcast(b, 0);
    const auto t4 = four.broadcast(b, 0);
    EXPECT_NEAR(static_cast<double>(t4.total.duration())
                    / static_cast<double>(t2.total.duration()),
                3.0, 0.2)
        << "chain broadcast: N-1 sequential hops";
}

TEST(MultiGpu, CcChargesHypercalls)
{
    MultiGpuSystem sys(cfg(true));
    sys.peerCopy(0, 1, size::mib(8), 0);
    EXPECT_GT(sys.tdxStats().hypercalls, 0u);
}

TEST(MultiGpu, RejectsBadConfigAndArgs)
{
    EXPECT_THROW(MultiGpuSystem{cfg(false, 1)}, FatalError);
    MultiGpuSystem sys(cfg(false));
    EXPECT_THROW(sys.peerCopy(0, 0, 1024, 0), FatalError);
}

TEST(MultiGpu, ConcurrentP2pLegsOverlapAcrossSources)
{
    // Two transfers from different sources use separate lanes.
    MultiGpuSystem sys(cfg(false, 4));
    const auto a = sys.peerCopy(0, 1, size::mib(64), 0);
    const auto b = sys.peerCopy(2, 3, size::mib(64), 0);
    EXPECT_EQ(a.total.start, 0);
    EXPECT_EQ(b.total.start, 0);
}

} // namespace
} // namespace hcc::multigpu
