/**
 * @file
 * Tests for the workload framework: registry, spec driver semantics,
 * per-app event-pattern anchors from the paper, and the Fig. 12
 * microbenchmarks.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "workloads/micro.hpp"
#include "workloads/spec.hpp"
#include "workloads/workload.hpp"

namespace hcc::workloads {
namespace {

rt::SystemConfig
cfg(bool cc)
{
    rt::SystemConfig c;
    c.cc = cc;
    return c;
}

// ------------------------------------------------------- registry

TEST(Registry, AllEvaluationAppsRegistered)
{
    auto &reg = WorkloadRegistry::instance();
    for (const auto &app : evaluationApps())
        EXPECT_NE(reg.find(app), nullptr) << app;
}

TEST(Registry, UvmAppsAllSupportUvm)
{
    auto &reg = WorkloadRegistry::instance();
    for (const auto &app : uvmApps())
        EXPECT_TRUE(reg.get(app).supportsUvm()) << app;
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_THROW(WorkloadRegistry::instance().get("nonexistent"),
                 FatalError);
}

TEST(Registry, SuiteFilterWorks)
{
    auto &reg = WorkloadRegistry::instance();
    const auto poly = reg.ofSuite("polybench");
    EXPECT_GE(poly.size(), 10u);
    for (const auto *w : poly)
        EXPECT_EQ(w->suite(), "polybench");
}

TEST(Registry, DuplicateRegistrationIsFatal)
{
    AppSpec spec;
    spec.name = "2mm";  // already registered
    spec.suite = "test";
    spec.phases = {{"k", 1, time::us(1), 0.0, 0, false, 0}};
    EXPECT_THROW(registerSpec(std::move(spec)), FatalError);
}

// ------------------------------------------------ event anchors

TEST(EventAnchors, ScHas1611Launches)
{
    const auto res = runWorkload("sc", cfg(false));
    EXPECT_EQ(res.metrics.launches, 1611);
}

TEST(EventAnchors, Dwt2dHasTenLaunches)
{
    const auto res = runWorkload("dwt2d", cfg(false));
    EXPECT_EQ(res.metrics.launches, 10);
}

TEST(EventAnchors, ThreeDConvLaunchesOneKernel254Times)
{
    const auto res = runWorkload("3dconv", cfg(false));
    EXPECT_EQ(res.metrics.launches, 254);
    // All launches carry the same kernel symbol.
    for (const auto &e :
         res.trace.ofKind(trace::EventKind::Launch)) {
        EXPECT_EQ(res.trace.labelName(e.label),
                  "convolution3d_kernel");
    }
}

TEST(EventAnchors, TwoMmHasTwoLaunches)
{
    const auto res = runWorkload("2mm", cfg(false));
    EXPECT_EQ(res.metrics.launches, 2);
}

TEST(EventAnchors, CnnCopiesAreD2dDominated)
{
    const auto res = runWorkload("cnn", cfg(false));
    EXPECT_GT(res.metrics.copy_d2d,
              4 * (res.metrics.copy_h2d + res.metrics.copy_d2h));
}

TEST(EventAnchors, PinnedAppReclassifiedAsManagedUnderCc)
{
    // 2dconv uses pinned buffers: under CC its copies must show up
    // as (encrypted-paging) D2D, like Nsight reports them.
    const auto base = runWorkload("2dconv", cfg(false));
    const auto cc = runWorkload("2dconv", cfg(true));
    EXPECT_GT(base.metrics.copy_h2d + base.metrics.copy_d2h, 0);
    EXPECT_EQ(cc.metrics.copy_h2d, 0);
    EXPECT_EQ(cc.metrics.copy_d2h, 0);
    EXPECT_GT(cc.metrics.copy_d2d, 0);
}

// ------------------------------------------------- spec driver

TEST(SpecDriver, DeterministicAcrossRuns)
{
    const auto a = runWorkload("hotspot", cfg(false));
    const auto b = runWorkload("hotspot", cfg(false));
    EXPECT_EQ(a.end_to_end, b.end_to_end);
}

TEST(SpecDriver, KetsIdenticalAcrossModes)
{
    // Kernel durations are seeded identically so base/CC ratios are
    // pure CC effects (for non-UVM apps KET may only drift by the
    // small CC jitter).
    const auto base = runWorkload("gemm", cfg(false));
    const auto cc = runWorkload("gemm", cfg(true));
    ASSERT_EQ(base.metrics.kernels, cc.metrics.kernels);
    const double r = cc.metrics.ket.sum() / base.metrics.ket.sum();
    EXPECT_NEAR(r, 1.005, 0.02);
}

TEST(SpecDriver, ScaleGrowsFootprint)
{
    WorkloadParams small, big;
    small.scale = 1.0;
    big.scale = 2.0;
    const auto a = runWorkload("gemm", cfg(false), small);
    const auto b = runWorkload("gemm", cfg(false), big);
    EXPECT_GT(b.metrics.copyTotal(), a.metrics.copyTotal());
    EXPECT_GT(b.metrics.ket.sum(), a.metrics.ket.sum());
}

TEST(SpecDriver, UvmVariantHasNoExplicitCopies)
{
    WorkloadParams p;
    p.uvm = true;
    const auto res = runWorkload("gemm", cfg(false), p);
    EXPECT_EQ(res.metrics.copyTotal(), 0);
    EXPECT_GT(res.metrics.alloc_managed, 0);
    EXPECT_EQ(res.metrics.alloc_device, 0);
}

TEST(SpecDriver, UvmOnNonUvmAppIsFatal)
{
    WorkloadParams p;
    p.uvm = true;
    EXPECT_THROW(runWorkload("dwt2d", cfg(false), p), FatalError);
}

TEST(SpecDriver, NoLeaksAfterRun)
{
    rt::Context ctx(cfg(false));
    WorkloadRegistry::instance().get("kmeans").run(ctx,
                                                   WorkloadParams{});
    EXPECT_EQ(ctx.liveAllocations(), 0u);
}

TEST(SpecDriver, RejectsEmptySpec)
{
    AppSpec spec;
    spec.name = "empty";
    EXPECT_THROW(SpecWorkload{spec}, FatalError);
}

// ------------------------------------------------------- micro

TEST(Micro, LaunchIndexFirstLaunchesSpike)
{
    const auto r = runLaunchIndexMicro(true, 50);
    ASSERT_EQ(r.k0_klo.size(), 50u);
    ASSERT_EQ(r.k1_klo.size(), 50u);
    // First launch of each kernel far above its steady state.
    EXPECT_GT(r.k0_klo[0], 3 * r.k0_klo[40]);
    EXPECT_GT(r.k1_klo[0], 3 * r.k1_klo[40]);
    // K1's first launch also spikes even though K0 is warm.
    EXPECT_GT(r.k1_klo[0], 3 * r.k0_klo[49]);
}

TEST(Micro, FusionSweepKloGrowsWithLaunches)
{
    const auto pts = runFusionSweep(false, time::ms(50.0),
                                    {1, 8, 64});
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_LT(pts[0].sum_klo, pts[2].sum_klo);
    EXPECT_LT(pts[0].sum_lqt, pts[2].sum_lqt);
}

TEST(Micro, FusionSweepRejectsBadCounts)
{
    EXPECT_THROW(runFusionSweep(false, time::ms(1.0), {0}),
                 FatalError);
}

TEST(Micro, OverlapAlphaRisesWithStreams)
{
    const auto one = runOverlapMicro(false, 1, size::mib(512),
                                     time::ms(1.0));
    const auto many = runOverlapMicro(false, 16, size::mib(512),
                                      time::ms(1.0));
    EXPECT_GT(many.alpha, one.alpha);
    // End-to-end cannot get worse (the copies serialize on the link
    // either way; only the exposed tail kernel remains).
    EXPECT_LE(many.end_to_end, one.end_to_end + time::ms(1.0));
}

TEST(Micro, OverlapHarderUnderCcWithShortKernels)
{
    // Observation 8: with short KETs there is not enough compute to
    // hide the (much longer) encrypted transfers.
    const auto base = runOverlapMicro(false, 16, size::gib(1),
                                      time::ms(1.0));
    const auto cc = runOverlapMicro(true, 16, size::gib(1),
                                    time::ms(1.0));
    EXPECT_LT(cc.alpha, base.alpha);
    EXPECT_GT(cc.end_to_end, base.end_to_end);
}

TEST(Micro, LongKernelsRestoreOverlapUnderCc)
{
    const auto short_k = runOverlapMicro(true, 16, size::mib(512),
                                         time::ms(1.0));
    const auto long_k = runOverlapMicro(true, 16, size::mib(512),
                                        time::ms(100.0));
    EXPECT_GT(long_k.alpha, short_k.alpha);
}

} // namespace
} // namespace hcc::workloads
