/**
 * @file
 * Property and fuzz tests across the stack: randomized API call
 * sequences must preserve global invariants for any seed; transfer
 * costs must be monotone in size in every configuration; the CC
 * direction asymmetry must hold; runs must be reproducible.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "pcie/link.hpp"
#include "runtime/context.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"
#include "trace/analysis.hpp"

namespace hcc {
namespace {

// ----------------------------------------------------------- fuzz

/** Random but valid API call sequence driven by a seed. */
void
fuzzSequence(std::uint64_t seed, bool cc)
{
    rt::SystemConfig cfg;
    cfg.cc = cc;
    cfg.seed = seed;
    rt::Context ctx(cfg);
    Rng rng(seed, 0xf022);

    std::vector<rt::Buffer> buffers;
    std::vector<rt::Stream> streams{ctx.defaultStream()};
    SimTime last_now = ctx.now();

    for (int step = 0; step < 120; ++step) {
        // Host time must never go backwards.
        EXPECT_GE(ctx.now(), last_now);
        last_now = ctx.now();

        switch (rng.uniformInt(0, 9)) {
          case 0:
            buffers.push_back(
                ctx.mallocDevice(1 + rng.uniformInt(0, 1 << 20)));
            break;
          case 1:
            buffers.push_back(
                ctx.mallocHost(1 + rng.uniformInt(0, 1 << 20)));
            break;
          case 2:
            buffers.push_back(
                ctx.mallocManaged(1 + rng.uniformInt(0, 1 << 20)));
            break;
          case 3:
            buffers.push_back(
                ctx.hostPageable(1 + rng.uniformInt(0, 1 << 20)));
            break;
          case 4: {
            // Find a host-ish and a device buffer to copy between.
            const rt::Buffer *host = nullptr, *dev = nullptr;
            for (const auto &b : buffers) {
                if (!b.valid())
                    continue;
                if (b.space == rt::MemSpace::Device)
                    dev = &b;
                else if (b.space != rt::MemSpace::Managed)
                    host = &b;
            }
            if (host && dev) {
                const Bytes n = std::min(host->bytes, dev->bytes);
                if (rng.uniform() < 0.5)
                    ctx.memcpy(*dev, *host, n);
                else
                    ctx.memcpy(*host, *dev, n);
            }
            break;
          }
          case 5: {
            gpu::KernelDesc k;
            k.name = "fuzz_k" + std::to_string(rng.uniformInt(0, 3));
            k.duration = static_cast<SimTime>(
                rng.uniform(1e3, 1e8));  // 1 ns .. 100 us
            const auto &s = streams[static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<int>(streams.size())
                                   - 1))];
            ctx.launchKernel(k, s);
            break;
          }
          case 6:
            if (streams.size() < 4)
                streams.push_back(ctx.createStream());
            break;
          case 7:
            ctx.deviceSynchronize();
            break;
          case 8: {
            // Free a random live buffer.
            for (auto &b : buffers) {
                if (b.valid()) {
                    ctx.free(b);
                    break;
                }
            }
            break;
          }
          case 9: {
            const auto &s = streams[static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<int>(streams.size())
                                   - 1))];
            ctx.streamSynchronize(s);
            break;
          }
        }
    }
    ctx.deviceSynchronize();

    // Global invariants over the resulting trace.
    for (const auto &e : ctx.tracer().events()) {
        EXPECT_GE(e.duration(), 0);
        EXPECT_GE(e.queue_wait, 0);
        EXPECT_LE(e.end, ctx.now());
    }
    // Cleanup must succeed for every live buffer.
    for (auto &b : buffers) {
        if (b.valid())
            ctx.free(b);
    }
    EXPECT_EQ(ctx.liveAllocations(), 0u);
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzSweep, RandomSequenceHoldsInvariantsBase)
{
    fuzzSequence(GetParam(), false);
}

TEST_P(FuzzSweep, RandomSequenceHoldsInvariantsCc)
{
    fuzzSequence(GetParam(), true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

// ----------------------------------------------------- monotonicity

TEST(TransferMonotonicity, CopyTimeMonotoneInSizeAllConfigs)
{
    for (bool cc : {false, true}) {
        for (bool pinned : {false, true}) {
            rt::SystemConfig cfg;
            cfg.cc = cc;
            rt::Context ctx(cfg);
            SimTime prev = 0;
            for (Bytes n = 1024; n <= size::mib(64); n *= 8) {
                auto h = pinned ? ctx.mallocHost(n)
                                : ctx.hostPageable(n);
                auto d = ctx.mallocDevice(n);
                const SimTime t0 = ctx.now();
                ctx.memcpy(d, h, n);
                const SimTime dt = ctx.now() - t0;
                // Allow a little fixed-cost jitter (decode times are
                // lognormal); payload growth must still dominate.
                EXPECT_GE(dt, prev - time::us(3.0))
                    << "cc=" << cc << " pinned=" << pinned
                    << " size=" << n;
                prev = dt;
                ctx.free(d);
                ctx.free(h);
            }
        }
    }
}

TEST(TransferAsymmetry, CcD2hSlowerThanH2d)
{
    // The mechanism behind the 2dconv copy blowup: inbound data pays
    // per-page private-page scrubbing.
    tee::ChannelConfig cfg;
    const auto session = tee::SpdmSession::establish(4);
    tee::SecureChannel ch(cfg, session);
    pcie::PcieLink link;
    EXPECT_LT(ch.steadyStateGbps(link,
                                 pcie::Direction::DeviceToHost),
              ch.steadyStateGbps(link,
                                 pcie::Direction::HostToDevice)
                  * 0.6);
}

TEST(TransferAsymmetry, BaseDirectionsSymmetric)
{
    rt::Context ctx{rt::SystemConfig{}};
    const Bytes n = size::mib(64);
    auto h = ctx.mallocHost(n);
    auto d = ctx.mallocDevice(n);
    SimTime t0 = ctx.now();
    ctx.memcpy(d, h, n);
    const SimTime h2d = ctx.now() - t0;
    t0 = ctx.now();
    ctx.memcpy(h, d, n);
    const SimTime d2h = ctx.now() - t0;
    EXPECT_NEAR(static_cast<double>(h2d), static_cast<double>(d2h),
                static_cast<double>(h2d) * 0.05);
}

// ----------------------------------------------------- determinism

TEST(Determinism, IdenticalSeedsIdenticalTraces)
{
    auto run = [] {
        rt::SystemConfig cfg;
        cfg.cc = true;
        cfg.seed = 1234;
        rt::Context ctx(cfg);
        auto h = ctx.hostPageable(size::mib(8));
        auto d = ctx.mallocDevice(size::mib(8));
        ctx.memcpy(d, h, size::mib(8));
        for (int i = 0; i < 50; ++i) {
            gpu::KernelDesc k{"k", {}, time::us(30), 0, 0};
            ctx.launchKernel(k);
        }
        ctx.deviceSynchronize();
        const auto view = ctx.tracer().events();
        return std::vector<trace::TraceEvent>(view.begin(),
                                              view.end());
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].start, b[i].start) << i;
        EXPECT_EQ(a[i].end, b[i].end) << i;
        EXPECT_EQ(a[i].queue_wait, b[i].queue_wait) << i;
    }
}

TEST(Determinism, DifferentSeedsJitterButSameShape)
{
    auto total = [](std::uint64_t seed) {
        rt::SystemConfig cfg;
        cfg.seed = seed;
        rt::Context ctx(cfg);
        for (int i = 0; i < 100; ++i) {
            gpu::KernelDesc k{"k", {}, time::us(30), 0, 0};
            ctx.launchKernel(k);
        }
        ctx.deviceSynchronize();
        return ctx.now();
    };
    const auto a = total(1);
    const auto b = total(2);
    EXPECT_NE(a, b);
    EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b),
                static_cast<double>(a) * 0.2);
}

// ------------------------------------------------------- replay

TEST(SecureChannelReplay, ReplayedChunkFailsAuthentication)
{
    // A malicious hypervisor records an earlier ciphertext chunk and
    // substitutes it for a later one.  Per-chunk unique IVs make the
    // replay fail authentication on the receiving side.
    tee::ChannelConfig cfg;
    cfg.chunk_bytes = 4096;
    fault::Injector inj;
    tee::SecureChannel ch(cfg, tee::SpdmSession::establish(21),
                          nullptr, &inj);

    std::vector<std::uint8_t> first(4096, 0x11);
    std::vector<std::uint8_t> out(4096);
    std::vector<std::uint8_t> recorded;
    inj.setStageHook([&](std::vector<std::uint8_t> &stage) {
        recorded = stage;  // hypervisor snapshots the wire data
    });
    ASSERT_TRUE(ch.transferFunctional(first, out).ok());

    std::vector<std::uint8_t> second(4096, 0x22);
    inj.setStageHook([&](std::vector<std::uint8_t> &stage) {
        stage = recorded;  // replay the old chunk
    });
    const Status st = ch.transferFunctional(second, out);
    EXPECT_FALSE(st.ok())
        << "replayed ciphertext must not authenticate";
    EXPECT_EQ(st.code(), ErrorCode::IntegrityError);
}

TEST(SecureChannelReplay, EveryChunkGetsAFreshIv)
{
    // Two transfers of identical plaintext must produce different
    // ciphertext on the wire (IVs never repeat).
    tee::ChannelConfig cfg;
    cfg.chunk_bytes = 4096;
    fault::Injector inj;
    tee::SecureChannel ch(cfg, tee::SpdmSession::establish(22),
                          nullptr, &inj);
    std::vector<std::uint8_t> pt(4096, 0x33), out(4096);
    std::vector<std::uint8_t> wire1, wire2;
    inj.setStageHook(
        [&](std::vector<std::uint8_t> &s) { wire1 = s; });
    ASSERT_TRUE(ch.transferFunctional(pt, out).ok());
    inj.setStageHook(
        [&](std::vector<std::uint8_t> &s) { wire2 = s; });
    ASSERT_TRUE(ch.transferFunctional(pt, out).ok());
    EXPECT_NE(wire1, wire2);
}

} // namespace
} // namespace hcc
