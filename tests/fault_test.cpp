/**
 * @file
 * Tests for the hcc::fault subsystem and the Status/Result error
 * API: typed error round-trips, fault-spec parsing, injector
 * determinism and site independence, the unarmed byte-identity
 * contract, modeled recovery latencies against hand-computed
 * schedules, and campaign determinism across worker counts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "common/status.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "obs/registry.hpp"
#include "obs/stats_io.hpp"
#include "pcie/link.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"

namespace hcc {
namespace {

using fault::FaultConfig;
using fault::Injector;
using fault::Site;

// ---------------------------------------------------- Status/Result

TEST(Status, DefaultIsOk)
{
    const Status st;
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::Ok);
    EXPECT_EQ(st.toString(), "ok");
}

TEST(Status, ErrorfFormatsCodeAndMessage)
{
    const Status st =
        errorf(ErrorCode::ParseError, "line %d: %s", 3, "bad key");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::ParseError);
    EXPECT_EQ(st.message(), "line 3: bad key");
    EXPECT_EQ(st.toString(), "parse-error: line 3: bad key");
}

TEST(Status, EveryCodeHasAName)
{
    for (const auto code :
         {ErrorCode::Ok, ErrorCode::InvalidArgument,
          ErrorCode::ParseError, ErrorCode::IoError,
          ErrorCode::NotFound, ErrorCode::IntegrityError,
          ErrorCode::HandshakeError, ErrorCode::ResourceExhausted,
          ErrorCode::RetriesExhausted, ErrorCode::Internal}) {
        EXPECT_STRNE(errorCodeName(code), "?");
    }
}

TEST(Result, ValueRoundTrip)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.status().ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(*r, 42);
    EXPECT_EQ(r.take(), 42);
}

TEST(Result, ErrorPropagatesStatus)
{
    const Result<int> r(errorf(ErrorCode::NotFound, "no app '%s'",
                               "nope"));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::NotFound);
    EXPECT_NE(r.status().message().find("nope"), std::string::npos);
}

// -------------------------------------------------- site names/spec

TEST(FaultSpec, SiteNamesRoundTrip)
{
    for (const Site site : fault::allSites()) {
        const auto parsed = fault::parseSite(fault::siteName(site));
        ASSERT_TRUE(parsed.has_value()) << fault::siteName(site);
        EXPECT_EQ(*parsed, site);
    }
    EXPECT_FALSE(fault::parseSite("bogus.site").has_value());
}

TEST(FaultSpec, EmptySpecIsAllZero)
{
    const auto cfg = fault::parseFaultSpec("");
    ASSERT_TRUE(cfg.ok());
    EXPECT_FALSE(cfg.value().any());
}

TEST(FaultSpec, ParsesSiteRatePairs)
{
    const auto cfg = fault::parseFaultSpec(
        "channel.tag_mismatch=0.05,pcie.replay=0.01");
    ASSERT_TRUE(cfg.ok());
    EXPECT_DOUBLE_EQ(cfg.value().rate(Site::ChannelTagMismatch),
                     0.05);
    EXPECT_DOUBLE_EQ(cfg.value().rate(Site::PcieReplay), 0.01);
    EXPECT_DOUBLE_EQ(cfg.value().rate(Site::SpdmHandshake), 0.0);
    EXPECT_TRUE(cfg.value().any());
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"bogus.site=0.1", "channel.tag_mismatch=abc",
          "channel.tag_mismatch", "=0.5"}) {
        const auto cfg = fault::parseFaultSpec(bad);
        EXPECT_FALSE(cfg.ok()) << bad;
        EXPECT_EQ(cfg.status().code(), ErrorCode::ParseError) << bad;
    }
    // In-grammar but out-of-range rates are a different code.
    for (const char *bad :
         {"channel.tag_mismatch=1.5", "channel.tag_mismatch=-0.1"}) {
        const auto cfg = fault::parseFaultSpec(bad);
        EXPECT_FALSE(cfg.ok()) << bad;
        EXPECT_EQ(cfg.status().code(), ErrorCode::InvalidArgument)
            << bad;
    }
}

// ---------------------------------------------------- injector core

TEST(Injector, UnarmedSiteNeverDrawsAndCreatesNoStats)
{
    obs::Registry reg;
    Injector inj(FaultConfig{}, 7, &reg);
    for (int i = 0; i < 100; ++i)
        for (const Site site : fault::allSites())
            EXPECT_FALSE(inj.shouldInject(site));
    // The byte-identity contract: an unarmed run's stats dump is
    // indistinguishable from a build without the subsystem.
    EXPECT_TRUE(reg.entries().empty());
    for (const Site site : fault::allSites()) {
        EXPECT_FALSE(inj.armed(site));
        EXPECT_EQ(inj.injected(site), 0u);
    }
}

TEST(Injector, RateOneAlwaysInjectsAndCountsLazily)
{
    obs::Registry reg;
    FaultConfig fc;
    fc.set(Site::ChannelTagMismatch, 1.0);
    Injector inj(fc, 7, &reg);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(inj.shouldInject(Site::ChannelTagMismatch));
    EXPECT_EQ(inj.injected(Site::ChannelTagMismatch), 5u);
    const auto &entries = reg.entries();
    const auto it =
        entries.find("fault.channel.tag_mismatch.injected");
    ASSERT_NE(it, entries.end());
    EXPECT_EQ(it->second.counter->value(), 5u);
    // Only the armed site's counters exist.
    EXPECT_EQ(entries.count("fault.pcie.replay.injected"), 0u);
}

TEST(Injector, DrawsAreDeterministicAcrossInstances)
{
    FaultConfig fc;
    fc.set(Site::ChannelTagMismatch, 0.5);
    Injector a(fc, 11), b(fc, 11), c(fc, 12);
    std::vector<bool> sa, sb, sc;
    for (int i = 0; i < 200; ++i) {
        sa.push_back(a.shouldInject(Site::ChannelTagMismatch));
        sb.push_back(b.shouldInject(Site::ChannelTagMismatch));
        sc.push_back(c.shouldInject(Site::ChannelTagMismatch));
    }
    EXPECT_EQ(sa, sb) << "same seed must draw the same sequence";
    EXPECT_NE(sa, sc) << "different seeds must diverge";
}

TEST(Injector, ArmingOneSiteDoesNotPerturbAnother)
{
    FaultConfig only_tag;
    only_tag.set(Site::ChannelTagMismatch, 0.5);
    FaultConfig both = only_tag;
    both.set(Site::PcieReplay, 0.5);
    Injector a(only_tag, 11), b(both, 11);
    std::vector<bool> sa, sb;
    for (int i = 0; i < 200; ++i) {
        sa.push_back(a.shouldInject(Site::ChannelTagMismatch));
        sb.push_back(b.shouldInject(Site::ChannelTagMismatch));
        // Interleaved draws on the second site must not shift the
        // first site's forked stream.
        b.shouldInject(Site::PcieReplay);
    }
    EXPECT_EQ(sa, sb);
}

TEST(Injector, RecoveryAccountingReachesCountersAndAccessors)
{
    obs::Registry reg;
    FaultConfig fc;
    fc.set(Site::PcieReplay, 1.0);
    Injector inj(fc, 7, &reg);
    EXPECT_TRUE(inj.shouldInject(Site::PcieReplay));
    inj.recordRecovery(Site::PcieReplay, time::us(10));
    inj.recordRecovery(Site::PcieReplay, time::us(5));
    EXPECT_EQ(inj.recovered(Site::PcieReplay), 2u);
    EXPECT_EQ(inj.retryTime(Site::PcieReplay), time::us(15));
    const auto &entries = reg.entries();
    const auto it = entries.find("fault.pcie.replay.retry_time_ps");
    ASSERT_NE(it, entries.end());
    EXPECT_EQ(it->second.counter->value(),
              static_cast<std::uint64_t>(time::us(15)));
}

TEST(Injector, CorruptFlipsExactlyOneByteDeterministically)
{
    FaultConfig fc;
    fc.set(Site::ChannelTagMismatch, 1.0);
    Injector a(fc, 7), b(fc, 7);
    std::vector<std::uint8_t> da(4096, 0x00), db(4096, 0x00);
    a.corrupt(da);
    b.corrupt(db);
    int flipped = 0;
    for (const std::uint8_t v : da)
        flipped += v != 0x00;
    EXPECT_EQ(flipped, 1);
    EXPECT_EQ(da, db) << "corruption position/value is seed-driven";
}

TEST(Injector, BackoffDoublesPerAttempt)
{
    EXPECT_EQ(fault::retryBackoff(1), fault::kRetryBackoffBase);
    EXPECT_EQ(fault::retryBackoff(2), 2 * fault::kRetryBackoffBase);
    EXPECT_EQ(fault::retryBackoff(3), 4 * fault::kRetryBackoffBase);
}

// --------------------------------------------- wired recovery paths

TEST(FaultChannel, InjectedTagMismatchExhaustsFunctionalRetries)
{
    obs::Registry reg;
    FaultConfig fc;
    fc.set(Site::ChannelTagMismatch, 1.0);
    Injector inj(fc, 7, &reg);
    tee::ChannelConfig cfg;
    tee::SecureChannel ch(cfg, tee::SpdmSession::establish(5), &reg,
                          &inj);
    std::vector<std::uint8_t> src(4096, 0x5a), dst(4096);
    const Status st = ch.transferFunctional(src, dst);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::IntegrityError);
    // Every attempt re-seals, gets corrupted and fails to open.
    const auto &entries = reg.entries();
    const auto it = entries.find("crypto.aes_gcm.auth_failures");
    ASSERT_NE(it, entries.end());
    EXPECT_EQ(it->second.counter->value(),
              static_cast<std::uint64_t>(fault::kMaxTransferAttempts));
    EXPECT_EQ(inj.injected(Site::ChannelTagMismatch),
              static_cast<std::uint64_t>(fault::kMaxTransferAttempts));
}

TEST(FaultChannel, SingleTamperedAttemptRecoversOnRetry)
{
    obs::Registry reg;
    Injector inj;
    tee::ChannelConfig cfg;
    tee::SecureChannel ch(cfg, tee::SpdmSession::establish(5), &reg,
                          &inj);
    int calls = 0;
    inj.setStageHook([&](std::vector<std::uint8_t> &stage) {
        if (calls++ == 0)
            stage[11] ^= 0x40;  // tamper the first attempt only
    });
    std::vector<std::uint8_t> src(4096, 0x5a), dst(4096);
    EXPECT_TRUE(ch.transferFunctional(src, dst).ok());
    EXPECT_EQ(src, dst);
    const auto it = reg.entries().find("crypto.aes_gcm.auth_failures");
    ASSERT_NE(it, reg.entries().end());
    EXPECT_EQ(it->second.counter->value(), 1u);
}

TEST(FaultTiming, TagMismatchRetryMatchesHandComputedSchedule)
{
    FaultConfig fc;
    fc.set(Site::ChannelTagMismatch, 1.0);
    Injector inj(fc, 9);
    tee::ChannelConfig cfg;
    tee::SecureChannel ch(cfg, tee::SpdmSession::establish(9),
                          nullptr, &inj);
    pcie::PcieLink link;
    tee::TdxModule tdx(true);
    const Bytes bytes = size::mib(1);
    const auto timing = ch.scheduleTransfer(
        0, bytes, pcie::Direction::HostToDevice, link, tdx);
    // Rate 1.0 fails every attempt: the chunk burns the full attempt
    // budget (each attempt re-occupies all three pipeline stages),
    // waits out the exponential backoffs, and finally tears the
    // session down for a re-attestation.
    const SimTime attempt = ch.transferDuration(bytes, link);
    const SimTime expected = timing.fixed_overhead
        + fault::kMaxTransferAttempts * attempt
        + fault::retryBackoff(1) + fault::retryBackoff(2)
        + tee::SpdmSession::kHandshakeCost;
    EXPECT_EQ(timing.total.duration(), expected);
    EXPECT_EQ(inj.injected(Site::ChannelTagMismatch),
              static_cast<std::uint64_t>(fault::kMaxTransferAttempts));
    EXPECT_EQ(inj.recovered(Site::ChannelTagMismatch), 1u);
}

TEST(FaultTiming, PcieReplayResendsPayloadPlusFixedPenalty)
{
    FaultConfig fc;
    fc.set(Site::PcieReplay, 1.0);
    Injector inj(fc, 3);
    pcie::PcieLink link(pcie::LinkConfig{}, nullptr, &inj);
    const Bytes bytes = size::mib(1);
    const auto iv =
        link.dma(0, bytes, pcie::Direction::HostToDevice);
    EXPECT_EQ(iv.duration(), 2 * link.dmaDuration(bytes)
                                 + fault::kPcieReplayLatency);
    EXPECT_EQ(inj.injected(Site::PcieReplay), 1u);
    EXPECT_EQ(inj.recovered(Site::PcieReplay), 1u);
    EXPECT_EQ(inj.retryTime(Site::PcieReplay),
              link.dmaDuration(bytes) + fault::kPcieReplayLatency);
}

TEST(FaultTiming, EptStormChargesExtraRoundTrips)
{
    FaultConfig fc;
    fc.set(Site::TdxEptStorm, 1.0);
    Injector inj(fc, 3);
    tee::TdxModule tdx(true, nullptr, &inj);
    const SimTime t = tdx.guestHostRoundTrips(1);
    EXPECT_EQ(t, calib::kTdxHypercallLatency
                     * (1 + fault::kEptStormExits));
    EXPECT_EQ(inj.recovered(Site::TdxEptStorm), 1u);
}

TEST(FaultSpdm, InjectedHandshakeFailsWithTypedStatus)
{
    FaultConfig fc;
    fc.set(Site::SpdmHandshake, 1.0);
    Injector inj(fc, 3);
    const auto session = tee::SpdmSession::establish(7, &inj);
    EXPECT_FALSE(session.ok());
    EXPECT_EQ(session.status().code(), ErrorCode::HandshakeError);
}

TEST(FaultSpdm, UnarmedFallibleHandshakeMatchesInfallible)
{
    Injector inj;
    auto session = tee::SpdmSession::establish(7, &inj);
    ASSERT_TRUE(session.ok());
    EXPECT_EQ(session.value().key(),
              tee::SpdmSession::establish(7).key());
    EXPECT_EQ(session.value().sessionId(),
              tee::SpdmSession::establish(7).sessionId());
}

// -------------------------------------------------------- campaigns

fault::CampaignSpec
smallCampaign()
{
    fault::CampaignSpec spec;
    spec.app = "atax";
    spec.sites = {Site::ChannelTagMismatch, Site::PcieReplay};
    spec.rates = {1.0};
    spec.seeds = {1, 2};
    return spec;
}

TEST(Campaign, ExpandsBaselineFirstThenSiteMajor)
{
    const auto spec = smallCampaign();
    EXPECT_EQ(spec.cellCount(), 6u);
    const auto cells = fault::expandCampaign(spec);
    ASSERT_EQ(cells.size(), 6u);
    EXPECT_TRUE(cells[0].baseline);
    EXPECT_EQ(cells[0].label(spec), "atax.baseline.s1");
    EXPECT_EQ(cells[1].label(spec),
              "atax.channel.tag_mismatch.r1.s1");
    EXPECT_EQ(cells[2].label(spec), "atax.pcie.replay.r1.s1");
    EXPECT_TRUE(cells[3].baseline);
    EXPECT_EQ(cells[3].seed, 2u);
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].index, i);
}

TEST(Campaign, RejectsEmptyOrOutOfRangeGrids)
{
    auto spec = smallCampaign();
    spec.sites.clear();
    EXPECT_THROW(runFaultCampaign(spec, 1), FatalError);
    spec = smallCampaign();
    spec.rates = {0.0};
    EXPECT_THROW(runFaultCampaign(spec, 1), FatalError);
    spec = smallCampaign();
    spec.rates = {1.5};
    EXPECT_THROW(runFaultCampaign(spec, 1), FatalError);
    spec = smallCampaign();
    spec.seeds.clear();
    EXPECT_THROW(runFaultCampaign(spec, 1), FatalError);
}

/** The tentpole guarantee, campaign edition: merged outputs are a
 *  pure function of the spec, independent of the worker count. */
TEST(Campaign, OutputsAreByteIdenticalAcrossJobs)
{
    const auto spec = smallCampaign();
    const auto serial = runFaultCampaign(spec, 1);
    const auto parallel = runFaultCampaign(spec, 4);
    ASSERT_EQ(serial.cells.size(), 6u);
    EXPECT_TRUE(serial.allOk());
    EXPECT_TRUE(parallel.allOk());

    std::ostringstream csv1, csv4, json1, json4, stats1, stats4;
    writeCampaignCsv(serial, csv1);
    writeCampaignCsv(parallel, csv4);
    EXPECT_EQ(csv1.str(), csv4.str());
    writeCampaignJson(serial, json1);
    writeCampaignJson(parallel, json4);
    EXPECT_EQ(json1.str(), json4.str());
    writeCampaignStats(serial, stats1);
    writeCampaignStats(parallel, stats4);
    EXPECT_EQ(stats1.str(), stats4.str())
        << "merged stats must be byte-identical across --jobs";
}

TEST(Campaign, OverlapAxisExpandsTierOuterWithTierLabels)
{
    auto spec = smallCampaign();
    spec.overlaps = {tee::OverlapMode::None,
                     tee::OverlapMode::Speculative};
    EXPECT_EQ(spec.cellCount(), 12u);
    const auto cells = fault::expandCampaign(spec);
    ASSERT_EQ(cells.size(), 12u);
    // Tier is the outermost axis; the serial tier keeps the
    // pre-overlap labels byte-stable, pipelined tiers append their
    // name after the seed.
    EXPECT_EQ(cells[0].overlap, tee::OverlapMode::None);
    EXPECT_EQ(cells[0].label(spec), "atax.baseline.s1");
    EXPECT_EQ(cells[5].overlap, tee::OverlapMode::None);
    EXPECT_EQ(cells[6].overlap, tee::OverlapMode::Speculative);
    EXPECT_TRUE(cells[6].baseline);
    EXPECT_EQ(cells[6].label(spec), "atax.baseline.s1.speculative");
    EXPECT_EQ(cells[7].label(spec),
              "atax.channel.tag_mismatch.r1.s1.speculative");
    EXPECT_EQ(cells[9].seed, 2u) << "seed spins inside the tier";
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].index, i);
}

TEST(Campaign, RejectsEmptyOverlapList)
{
    auto spec = smallCampaign();
    spec.overlaps.clear();
    EXPECT_THROW(runFaultCampaign(spec, 1), FatalError);
}

TEST(Campaign, SlowdownAnchorsToTheSameTierBaseline)
{
    fault::CampaignSpec spec;
    spec.app = "atax";
    spec.sites = {Site::PcieReplay};
    spec.rates = {1.0};
    spec.seeds = {1};
    spec.overlaps = {tee::OverlapMode::None,
                     tee::OverlapMode::Speculative};
    const auto res = runFaultCampaign(spec, 2);
    ASSERT_TRUE(res.allOk());
    ASSERT_EQ(res.cells.size(), 4u);
    // [0]=none baseline, [1]=none faulted, [2]=spec baseline,
    // [3]=spec faulted.  Each faulted cell divides by its own
    // tier's baseline, and the tiers genuinely differ.
    const auto e2e = [&](std::size_t i) {
        return static_cast<double>(res.cells[i].result.end_to_end);
    };
    EXPECT_DOUBLE_EQ(res.cells[1].slowdown, e2e(1) / e2e(0));
    EXPECT_DOUBLE_EQ(res.cells[3].slowdown, e2e(3) / e2e(2));
    EXPECT_NE(e2e(0), e2e(2))
        << "the speculative tier must change the baseline timing";
    EXPECT_DOUBLE_EQ(res.cells[0].slowdown, 1.0);
    EXPECT_DOUBLE_EQ(res.cells[2].slowdown, 1.0);
}

/** Snapshot-tree campaign: a multi-tier, multi-seed grid with a
 *  chained fork point merges byte-identically to the cold-split
 *  control, across worker counts. */
TEST(Campaign, OverlapAxisForkMatchesColdAcrossJobs)
{
    fault::CampaignSpec spec;
    spec.app = "gaussian";
    spec.sites = {Site::PcieReplay};
    spec.rates = {0.5};
    spec.seeds = {1, 2};
    spec.overlaps = {tee::OverlapMode::None,
                     tee::OverlapMode::DoubleBuffer,
                     tee::OverlapMode::Speculative};
    spec.fork_point = {snap::ForkPoint::Mode::Auto, 0.0, {0.95}};

    spec.no_snapshot = false;
    const auto fork = runFaultCampaign(spec, 4);
    spec.no_snapshot = true;
    const auto cold = runFaultCampaign(spec, 1);

    ASSERT_EQ(fork.cells.size(), 12u);
    ASSERT_EQ(cold.cells.size(), 12u);
    EXPECT_EQ(fork.snapshot_hits, 12u)
        << "every cell of every tier forks from the tree";
    EXPECT_EQ(cold.snapshot_hits, 0u);
    EXPECT_GT(fork.peak_resident_bytes, 0u);

    std::ostringstream csv_f, csv_c, json_f, json_c, st_f, st_c;
    writeCampaignCsv(fork, csv_f);
    writeCampaignCsv(cold, csv_c);
    EXPECT_EQ(csv_f.str(), csv_c.str());
    writeCampaignJson(fork, json_f);
    writeCampaignJson(cold, json_c);
    EXPECT_EQ(json_f.str(), json_c.str());
    writeCampaignStats(fork, st_f);
    writeCampaignStats(cold, st_c);
    EXPECT_EQ(st_f.str(), st_c.str())
        << "merged stats must be byte-identical fork vs cold";
}

TEST(Campaign, PublishesSnapshotGauges)
{
    fault::CampaignSpec spec;
    spec.app = "gaussian";
    spec.sites = {Site::PcieReplay};
    spec.rates = {0.5};
    spec.seeds = {1, 2};
    spec.fork_point = {snap::ForkPoint::Mode::Auto, 0.0};
    obs::Registry reg;
    const auto res = runFaultCampaign(spec, 1, &reg);
    ASSERT_TRUE(res.allOk());
    EXPECT_GT(res.snapshot_hits, 0u);
    EXPECT_EQ(static_cast<std::size_t>(
                  reg.gauge("host.sweep.snapshot_hits").value()),
              res.snapshot_hits);
    EXPECT_EQ(
        static_cast<std::size_t>(
            reg.gauge("host.sweep.snapshot_resident_bytes").value()),
        res.peak_resident_bytes);
}

TEST(Campaign, FaultedCellsInjectAndSlowDown)
{
    const auto res = runFaultCampaign(smallCampaign(), 2);
    ASSERT_TRUE(res.allOk());
    for (const auto &cell : res.cells) {
        if (cell.cell.baseline) {
            EXPECT_EQ(cell.injected, 0u);
            EXPECT_DOUBLE_EQ(cell.slowdown, 1.0);
        } else {
            // Rate 1.0 on wired sites: every draw injects, and every
            // recovery stretches the end-to-end time.
            EXPECT_GT(cell.injected, 0u)
                << cell.cell.label(res.spec);
            EXPECT_GT(cell.slowdown, 1.0)
                << cell.cell.label(res.spec);
        }
    }
}

TEST(Campaign, FailedCellKeepsItsRowWithTheError)
{
    fault::CampaignSpec spec;
    spec.app = "atax";
    spec.sites = {Site::SpdmHandshake};
    spec.rates = {1.0};  // every handshake attempt fails: fatal
    spec.seeds = {1};
    const auto res = runFaultCampaign(spec, 1);
    EXPECT_FALSE(res.allOk());
    EXPECT_EQ(res.failures(), 1u);
    std::ostringstream csv;
    writeCampaignCsv(res, csv);
    EXPECT_NE(csv.str().find("failed"), std::string::npos);
    EXPECT_NE(csv.str().find("SPDM"), std::string::npos);
}

} // namespace
} // namespace hcc
