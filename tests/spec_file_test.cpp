/**
 * @file
 * Tests for the user workload spec-file format: literal parsing,
 * full-document parsing, error reporting, and end-to-end execution
 * of a parsed spec.
 */

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "workloads/spec_file.hpp"
#include "workloads/workload.hpp"

namespace hcc::workloads {
namespace {

// -------------------------------------------------------- literals

TEST(SpecLiterals, Sizes)
{
    EXPECT_EQ(parseSize("0"), 0u);
    EXPECT_EQ(parseSize("512"), 512u);
    EXPECT_EQ(parseSize("512B"), 512u);
    EXPECT_EQ(parseSize("4KiB"), 4096u);
    EXPECT_EQ(parseSize("2MiB"), size::mib(2));
    EXPECT_EQ(parseSize("1GiB"), size::gib(1));
    EXPECT_EQ(parseSize("1.5MiB"), size::mib(1.5));
    EXPECT_EQ(parseSize("8M"), size::mib(8));
}

TEST(SpecLiterals, SizeErrors)
{
    EXPECT_THROW(parseSize("abc"), FatalError);
    EXPECT_THROW(parseSize("12XB"), FatalError);
    EXPECT_THROW(parseSize("-4KiB"), FatalError);
}

TEST(SpecLiterals, Durations)
{
    EXPECT_EQ(parseDuration("5ns"), time::ns(5));
    EXPECT_EQ(parseDuration("45us"), time::us(45));
    EXPECT_EQ(parseDuration("2ms"), time::ms(2));
    EXPECT_EQ(parseDuration("1.5s"), time::sec(1.5));
}

TEST(SpecLiterals, DurationErrors)
{
    EXPECT_THROW(parseDuration("45"), FatalError)
        << "unit is mandatory";
    EXPECT_THROW(parseDuration("45min"), FatalError);
    EXPECT_THROW(parseDuration("fast"), FatalError);
}

// -------------------------------------------------------- documents

const char *kGood = R"(
# a complete example
name test_app
suite my_suite
pinned_host yes
input 64MiB
input 256KiB
output 8MiB
d2d 4MiB
scratch 16MiB
uvm_touch 64MiB
phase stencil_k 120 45us 0.1
phase reduce_k 12 8us 0.15 4KiB
phase final_k 1 2ms 0.05 0 6MiB
)";

TEST(SpecParse, FullDocument)
{
    const auto spec = parseSpecText(kGood).take();
    EXPECT_EQ(spec.name, "test_app");
    EXPECT_EQ(spec.suite, "my_suite");
    EXPECT_TRUE(spec.pinned_host);
    ASSERT_EQ(spec.inputs.size(), 2u);
    EXPECT_EQ(spec.inputs[0], size::mib(64));
    EXPECT_EQ(spec.inputs[1], size::kib(256));
    ASSERT_EQ(spec.outputs.size(), 1u);
    ASSERT_EQ(spec.d2d_copies.size(), 1u);
    EXPECT_EQ(spec.scratch, size::mib(16));
    EXPECT_EQ(spec.uvm_touch_override, size::mib(64));
    ASSERT_EQ(spec.phases.size(), 3u);
    EXPECT_EQ(spec.phases[0].kernel, "stencil_k");
    EXPECT_EQ(spec.phases[0].launches, 120);
    EXPECT_EQ(spec.phases[0].ket, time::us(45));
    EXPECT_DOUBLE_EQ(spec.phases[0].jitter_sigma, 0.1);
    EXPECT_EQ(spec.phases[1].d2h_per_iter, size::kib(4));
    EXPECT_EQ(spec.phases[2].module_bytes, size::mib(6));
}

TEST(SpecParse, CommentsAndBlanksIgnored)
{
    const auto spec = parseSpecText(
        "# header\n\nname x\n  # indented comment\n"
        "phase k 1 1us  # trailing comment\n").take();
    EXPECT_EQ(spec.name, "x");
    ASSERT_EQ(spec.phases.size(), 1u);
}

TEST(SpecParse, DefaultsApplied)
{
    const auto spec =
        parseSpecText("name d\nphase k 2 5us\n").take();
    EXPECT_EQ(spec.suite, "custom");
    EXPECT_FALSE(spec.pinned_host);
    EXPECT_TRUE(spec.uvm_capable);
    EXPECT_DOUBLE_EQ(spec.phases[0].jitter_sigma, 0.08);
    EXPECT_EQ(spec.phases[0].module_bytes, 0u);
}

TEST(SpecParse, Errors)
{
    const auto bad = parseSpecText("");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::ParseError);
    EXPECT_FALSE(parseSpecText("phase k 1 1us\n").ok())
        << "missing name";
    EXPECT_FALSE(parseSpecText("name x\n").ok())
        << "missing phases";
    const auto unknown =
        parseSpecText("name x\nbogus 1\nphase k 1 1us\n");
    EXPECT_FALSE(unknown.ok()) << "unknown key";
    EXPECT_NE(unknown.status().message().find("bogus"),
              std::string::npos)
        << "error message names the offending key";
    EXPECT_FALSE(parseSpecText("name x\nphase k 0 1us\n").ok())
        << "zero launches";
    EXPECT_FALSE(parseSpecText("name x\nphase k\n").ok())
        << "truncated phase";
    EXPECT_FALSE(parseSpecText("name x\npinned_host maybe\n"
                               "phase k 1 1us\n").ok());
}

TEST(SpecParse, MissingFileIsIoError)
{
    const auto spec = loadSpecFile("/nonexistent/path.spec");
    EXPECT_FALSE(spec.ok());
    EXPECT_EQ(spec.status().code(), ErrorCode::IoError);
}

TEST(SpecParse, RooflinePhases)
{
    const auto spec = parseSpecText(
        "name r\n"
        "rphase gemm_k 4 1200 256MiB\n"
        "rphase stream_k 2 0.5 1GiB 1048576\n").take();
    ASSERT_EQ(spec.phases.size(), 2u);
    EXPECT_EQ(spec.phases[0].ket, 0);
    EXPECT_DOUBLE_EQ(spec.phases[0].gflops, 1200.0);
    EXPECT_EQ(spec.phases[0].mem_bytes, size::mib(256));
    EXPECT_EQ(spec.phases[1].threads, 1048576);
    EXPECT_FALSE(parseSpecText("name r\nrphase k 0 1 1MiB\n").ok());
    EXPECT_FALSE(parseSpecText("name r\nrphase k 1\n").ok());
}

TEST(SpecRun, RooflinePhaseGetsDeviceDerivedKet)
{
    const auto spec = parseSpecText(
        "name roofline_app\n"
        "input 1MiB\n"
        "rphase stream_k 1 0 1GiB\n").take();
    const SpecWorkload workload(spec);
    rt::SystemConfig cfg;
    const auto res = runWorkload(workload, cfg);
    // 1 GiB through HBM at ~3350 GB/s is ~320 us.
    EXPECT_NEAR(res.metrics.ket.sum(),
                static_cast<double>(
                    transferTime(size::gib(1), 3350.0)),
                static_cast<double>(time::us(30.0)));
}

// -------------------------------------------------------- execution

TEST(SpecRun, ParsedSpecRunsEndToEnd)
{
    const auto spec = parseSpecText(kGood).take();
    const SpecWorkload workload(spec);
    rt::SystemConfig base, cc;
    cc.cc = true;
    const auto rb = runWorkload(workload, base);
    const auto rc = runWorkload(workload, cc);
    EXPECT_EQ(rb.metrics.launches, 133);
    EXPECT_GT(rc.end_to_end, rb.end_to_end);
    // The 6 MiB final_k module makes its first CC launch spike.
    double max_klo = 0.0;
    for (const auto &e :
         rc.trace.ofKind(trace::EventKind::Launch)) {
        if (rc.trace.labelName(e.label) == "final_k")
            max_klo = std::max(max_klo,
                               static_cast<double>(e.duration()));
    }
    EXPECT_GT(max_klo, static_cast<double>(time::ms(1.0)));
}

TEST(SpecRun, UvmVariantOfParsedSpec)
{
    const auto spec = parseSpecText(kGood).take();
    const SpecWorkload workload(spec);
    rt::SystemConfig cfg;
    WorkloadParams p;
    p.uvm = true;
    const auto res = runWorkload(workload, cfg, p);
    EXPECT_EQ(res.metrics.copyTotal(), 0);
    EXPECT_GT(res.metrics.alloc_managed, 0);
}

} // namespace
} // namespace hcc::workloads
