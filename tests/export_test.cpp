/**
 * @file
 * Tests for the trace exporters (Chrome trace JSON, CSV).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "trace/compare.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

namespace hcc::trace {
namespace {

Tracer
sampleTrace()
{
    Tracer t;
    TraceEvent launch;
    launch.kind = EventKind::Launch;
    launch.start = time::us(10.0);
    launch.end = time::us(18.0);
    launch.stream = 0;
    launch.queue_wait = time::us(2.0);
    const auto corr = t.record(launch, "my_kernel");

    TraceEvent kernel;
    kernel.kind = EventKind::Kernel;
    kernel.start = time::us(20.0);
    kernel.end = time::us(120.0);
    kernel.stream = 0;
    kernel.correlation = corr;
    kernel.queue_wait = time::us(3.0);
    t.record(kernel, "my_kernel");

    TraceEvent copy;
    copy.kind = EventKind::MemcpyH2D;
    copy.start = time::us(130.0);
    copy.end = time::us(200.0);
    copy.bytes = 4096;
    copy.encrypted_paging = true;
    t.record(copy, "memcpy");
    return t;
}

TEST(ChromeExport, ProducesValidLookingJson)
{
    const auto json = chromeTraceJson(sampleTrace());
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');
    EXPECT_NE(json.find("\"name\": \"my_kernel\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"Kernel\""), std::string::npos);
    EXPECT_NE(json.find("\"encrypted_paging\": true"),
              std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeExport, HostAndDeviceTracksSeparated)
{
    const auto json = chromeTraceJson(sampleTrace());
    // Launch on pid 1 (host), kernel/copy on pid 2 (device).
    EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
}

TEST(ChromeExport, EscapesSpecialCharacters)
{
    Tracer t;
    TraceEvent e;
    e.kind = EventKind::Kernel;
    e.start = 0;
    e.end = 1;
    t.record(e, "weird\"name\\with\nstuff");
    const auto json = chromeTraceJson(t);
    EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"),
              std::string::npos);
}

TEST(ChromeExport, EmptyTraceIsEmptyArray)
{
    Tracer t;
    const auto json = chromeTraceJson(t);
    EXPECT_NE(json.find('['), std::string::npos);
    EXPECT_EQ(json.find('{'), std::string::npos);
}

TEST(ChromeExport, CounterTracksFromRegistry)
{
    obs::Registry reg;
    obs::Gauge &g = reg.gauge("tee.bounce.occupancy");
    // Recorded out of simulated-time order (as a bounce release can
    // be): the exporter must sort before emitting.
    g.set(2, time::us(50.0));
    g.set(1, time::us(10.0));
    reg.counter("not.a.gauge").add(7);
    const auto json = chromeTraceJson(sampleTrace(), &reg);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"tee.bounce.occupancy\""),
              std::string::npos);
    EXPECT_EQ(json.find("not.a.gauge"), std::string::npos);
    const auto first = json.find("\"ph\": \"C\"");
    EXPECT_NE(json.find("\"ts\": 10", first), std::string::npos);
    EXPECT_LT(json.find("\"ts\": 10", first), json.find("\"ts\": 50"));
}

TEST(ChromeExport, OutputIsParseableJson)
{
    obs::Registry reg;
    reg.gauge("runtime.launch_queue.depth").set(3, time::us(1.0));
    const auto text = chromeTraceJson(sampleTrace(), &reg);
    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(text, v, err)) << err;
    ASSERT_TRUE(v.isArray());
    int counters = 0;
    for (const auto &e : v.array) {
        const auto *ph = e.find("ph");
        ASSERT_TRUE(ph);
        if (ph->string == "C") {
            ++counters;
            EXPECT_EQ(e.find("pid")->number, 3.0);
            ASSERT_TRUE(e.find("args"));
            EXPECT_TRUE(e.find("args")->find("value"));
        }
    }
    EXPECT_EQ(counters, 1);
    EXPECT_EQ(v.array.size(), 4u);  // 3 "X" events + 1 "C" sample
}

TEST(ChromeExport, QueueWaitArgsPerEvent)
{
    const auto json = chromeTraceJson(sampleTrace());
    // Exact-ps queue wait on every event, plus the kind-specific
    // LQT/KQT aliases the paper's figures are built from.
    EXPECT_NE(json.find("\"queue_wait_ps\": 2000000"),
              std::string::npos);
    EXPECT_NE(json.find("\"lqt_ps\": 2000000"), std::string::npos);
    EXPECT_NE(json.find("\"kqt_ps\": 3000000"), std::string::npos);
    EXPECT_NE(json.find("\"correlation\": "), std::string::npos);
    // The plain copy gets neither alias.
    EXPECT_EQ(json.find("\"kqt_ps\": 0"), std::string::npos);
}

TEST(ChromeExport, CriticalPathArgsAndFlowEvents)
{
    const auto t = sampleTrace();
    const auto crit = analyzeCritical(t).path;
    const auto json = chromeTraceJson(t, nullptr, &crit);
    EXPECT_NE(json.find("\"on_critical_path\": true"),
              std::string::npos);
    EXPECT_NE(json.find("\"slack_ps\": "), std::string::npos);
    // Flow arrows between consecutive on-path spans.
    EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"critpath\""), std::string::npos);
    // Still parseable JSON with balanced pairs per flow id.
    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(json, v, err)) << err;
    int starts = 0, finishes = 0;
    for (const auto &e : v.array) {
        const auto *ph = e.find("ph");
        if (ph && ph->string == "s")
            ++starts;
        if (ph && ph->string == "f")
            ++finishes;
    }
    EXPECT_EQ(starts, finishes);
    EXPECT_EQ(starts,
              static_cast<int>(crit.segments.size()) - 1);
}

TEST(ChromeExport, OffPathEventMarkedFalse)
{
    Tracer t;
    TraceEvent long_k;
    long_k.kind = EventKind::Kernel;
    long_k.start = time::us(10);
    long_k.end = time::us(110);
    long_k.stream = 0;
    t.record(long_k, "gating");
    TraceEvent idle;
    idle.kind = EventKind::Kernel;
    idle.start = time::us(20);
    idle.end = time::us(50);
    idle.stream = 1;
    t.record(idle, "idle");
    const auto crit = analyzeCritical(t).path;
    const auto json = chromeTraceJson(t, nullptr, &crit);
    EXPECT_NE(json.find("\"on_critical_path\": false"),
              std::string::npos);
}

TEST(CsvExport, HeaderAndRows)
{
    std::ostringstream oss;
    exportCsv(sampleTrace(), oss);
    const std::string csv = oss.str();
    EXPECT_EQ(csv.find("kind,name,start_us"), 0u);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
    EXPECT_NE(csv.find("MemcpyH2D,memcpy"), std::string::npos);
    EXPECT_NE(csv.find(",4096,"), std::string::npos);
}

TEST(CsvExport, QuotesNamesWithCommasAndQuotes)
{
    Tracer t;
    TraceEvent e;
    e.kind = EventKind::Kernel;
    e.start = 0;
    e.end = 1;
    t.record(e, "gemm<float, 32>(\"tiled\")");
    std::ostringstream oss;
    exportCsv(t, oss);
    // RFC 4180: the whole field quoted, embedded quotes doubled.
    EXPECT_NE(oss.str().find("\"gemm<float, 32>(\"\"tiled\"\")\""),
              std::string::npos);
}

// --------------------------------------------------------- compare

Tracer
mkTrace(SimTime launch_dur, SimTime kernel_dur, int n)
{
    Tracer t;
    SimTime cursor = 0;
    for (int i = 0; i < n; ++i) {
        TraceEvent l;
        l.kind = EventKind::Launch;
        l.start = cursor;
        l.end = cursor + launch_dur;
        t.record(l, "k");
        TraceEvent k;
        k.kind = EventKind::Kernel;
        k.start = l.end;
        k.end = l.end + kernel_dur;
        t.record(k, "k");
        cursor = k.end;
    }
    return t;
}

TEST(Compare, AggregatesPerKind)
{
    const auto a = mkTrace(time::us(6), time::us(100), 10);
    const auto b = mkTrace(time::us(9), time::us(100), 10);
    const auto d = compareTraces(a, b);
    ASSERT_EQ(d.kinds.size(), 2u);
    const auto &launch = d.kinds[0];
    EXPECT_EQ(launch.kind, EventKind::Launch);
    EXPECT_EQ(launch.count_a, 10u);
    EXPECT_EQ(launch.delta(), time::us(30));
    EXPECT_NEAR(launch.ratio(), 1.5, 1e-9);
    const auto &kernel = d.kinds[1];
    EXPECT_EQ(kernel.delta(), 0);
    EXPECT_EQ(d.unaligned, 0u);
}

TEST(Compare, TopEventsAreWorstRegressions)
{
    auto a = mkTrace(time::us(5), time::us(50), 5);
    auto b = mkTrace(time::us(5), time::us(50), 5);
    // Inject one big regression into b.
    TraceEvent big;
    big.kind = EventKind::Launch;
    big.start = time::ms(1);
    big.end = time::ms(3);
    b.record(big, "spike");
    TraceEvent small;
    small.kind = EventKind::Launch;
    small.start = time::ms(1);
    small.end = time::ms(1) + time::us(5);
    a.record(small, "spike");
    const auto d = compareTraces(a, b, 3);
    ASSERT_FALSE(d.top_events.empty());
    EXPECT_EQ(d.top_events.front().name, "spike");
    EXPECT_NEAR(static_cast<double>(d.top_events.front().delta()),
                static_cast<double>(time::ms(2) - time::us(5)),
                1e3);
}

TEST(Compare, ToleratesCountMismatch)
{
    const auto a = mkTrace(time::us(5), time::us(50), 3);
    const auto b = mkTrace(time::us(5), time::us(50), 5);
    const auto d = compareTraces(a, b);
    EXPECT_EQ(d.unaligned, 4u);  // 2 launches + 2 kernels extra
}

TEST(Compare, ImprovementsExcludedFromTopList)
{
    const auto a = mkTrace(time::us(50), time::us(50), 3);
    const auto b = mkTrace(time::us(5), time::us(50), 3);  // faster!
    const auto d = compareTraces(a, b);
    EXPECT_TRUE(d.top_events.empty());
}

TEST(Compare, ReportMentionsKindsAndSpans)
{
    const auto a = mkTrace(time::us(5), time::us(50), 2);
    const auto b = mkTrace(time::us(9), time::us(50), 2);
    const auto r = compareTraces(a, b).report();
    EXPECT_NE(r.find("end-to-end"), std::string::npos);
    EXPECT_NE(r.find("Launch"), std::string::npos);
    EXPECT_NE(r.find("Kernel"), std::string::npos);
}

} // namespace
} // namespace hcc::trace
