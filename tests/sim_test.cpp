/**
 * @file
 * Tests for the simulation kernel: timelines, pools, event queue
 * determinism and ordering.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.hpp"
#include "sim/event_queue.hpp"
#include "sim/timeline.hpp"

namespace hcc::sim {
namespace {

// ------------------------------------------------------------ timeline

TEST(TimelineTest, BackToBackReservations)
{
    Timeline t("ce");
    const auto a = t.reserve(0, 100);
    EXPECT_EQ(a.start, 0);
    EXPECT_EQ(a.end, 100);
    const auto b = t.reserve(0, 50);
    EXPECT_EQ(b.start, 100) << "FIFO resource: b queues behind a";
    EXPECT_EQ(b.end, 150);
    EXPECT_EQ(t.totalQueuing(), 100);
    EXPECT_EQ(t.busyTime(), 150);
    EXPECT_EQ(t.reservations(), 2u);
}

TEST(TimelineTest, IdleGapWhenReadyLate)
{
    Timeline t;
    t.reserve(0, 10);
    const auto b = t.reserve(100, 10);
    EXPECT_EQ(b.start, 100) << "no queuing when resource is idle";
    EXPECT_EQ(t.totalQueuing(), 0);
}

TEST(TimelineTest, ZeroDurationAllowed)
{
    Timeline t;
    const auto a = t.reserve(5, 0);
    EXPECT_EQ(a.start, 5);
    EXPECT_EQ(a.end, 5);
}

TEST(TimelineTest, ResetClearsState)
{
    Timeline t;
    t.reserve(0, 100);
    t.reset();
    EXPECT_EQ(t.freeAt(), 0);
    EXPECT_EQ(t.busyTime(), 0);
    EXPECT_EQ(t.reservations(), 0u);
}

TEST(TimelineTest, IntervalsNeverOverlap)
{
    Timeline t;
    SimTime prev_end = 0;
    for (int i = 0; i < 100; ++i) {
        const auto iv = t.reserve(i * 3, 7);
        EXPECT_GE(iv.start, prev_end);
        prev_end = iv.end;
    }
}

// ---------------------------------------------------------------- pool

TEST(TimelinePoolTest, SpreadsAcrossMembers)
{
    TimelinePool pool("copy", 2);
    const auto a = pool.reserve(0, 100);
    const auto b = pool.reserve(0, 100);
    EXPECT_EQ(a.start, 0);
    EXPECT_EQ(b.start, 0) << "second member should take the overflow";
    const auto c = pool.reserve(0, 10);
    EXPECT_EQ(c.start, 100) << "both busy until 100";
}

TEST(TimelinePoolTest, ReportsServingMember)
{
    TimelinePool pool("ce", 3);
    int m0 = -1, m1 = -1, m2 = -1;
    pool.reserve(0, 10, m0);
    pool.reserve(0, 10, m1);
    pool.reserve(0, 10, m2);
    EXPECT_NE(m0, m1);
    EXPECT_NE(m1, m2);
    EXPECT_NE(m0, m2);
}

TEST(TimelinePoolTest, ZeroDurationTiesRoundRobin)
{
    // Regression: the old selector minimized freeAt() and broke
    // ties toward member 0, so a burst of zero-duration
    // reservations (zero-byte copies on a copy-engine pool) all
    // piled onto the first member.  Ties on the actual start time
    // must rotate across the pool instead.
    TimelinePool pool("ce", 4);
    int m[4] = {-1, -1, -1, -1};
    for (int i = 0; i < 4; ++i) {
        const auto iv = pool.reserve(100, 0, m[i]);
        EXPECT_EQ(iv.start, 100);
    }
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j)
            EXPECT_NE(m[i], m[j])
                << "tied reservations must spread across members";
}

TEST(TimelinePoolTest, PicksMemberMinimizingActualStart)
{
    TimelinePool pool("ce", 2);
    int first = -1, second = -1;
    pool.reserve(0, 100, first);     // that member busy until 100
    // At ready=50 the other member starts immediately; the busy one
    // could only start at 100.
    const auto iv = pool.reserve(50, 10, second);
    EXPECT_EQ(iv.start, 50);
    EXPECT_NE(first, second);
}

TEST(TimelinePoolTest, ResetRestoresDeterministicSelection)
{
    TimelinePool pool("ce", 2);
    int m = -1;
    pool.reserve(0, 0, m);
    pool.reserve(0, 0, m);
    pool.reset();
    pool.reserve(0, 0, m);
    EXPECT_EQ(m, 0) << "reset must also rewind the tie cursor";
}

TEST(TimelinePoolTest, SingleMemberBehavesLikeTimeline)
{
    TimelinePool pool("x", 1);
    pool.reserve(0, 50);
    const auto b = pool.reserve(0, 10);
    EXPECT_EQ(b.start, 50);
}

TEST(TimelinePoolTest, RejectsEmptyPool)
{
    EXPECT_THROW(TimelinePool("bad", 0), FatalError);
}

TEST(TimelinePoolTest, EarliestFree)
{
    TimelinePool pool("p", 2);
    pool.reserve(0, 100);
    EXPECT_EQ(pool.earliestFree(), 0);
    pool.reserve(0, 200);
    EXPECT_EQ(pool.earliestFree(), 100);
}

// --------------------------------------------------------- event queue

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](SimTime) { order.push_back(3); });
    q.schedule(10, [&](SimTime) { order.push_back(1); });
    q.schedule(20, [&](SimTime) { order.push_back(2); });
    EXPECT_EQ(q.runAll(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&, i](SimTime) { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&](SimTime) { ++count; });
    q.schedule(20, [&](SimTime) { ++count; });
    q.schedule(21, [&](SimTime) { ++count; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, CallbackMaySchedule)
{
    EventQueue q;
    std::vector<SimTime> fired;
    q.schedule(1, [&](SimTime now) {
        fired.push_back(now);
        q.schedule(now + 5, [&](SimTime t2) { fired.push_back(t2); });
    });
    q.runAll();
    EXPECT_EQ(fired, (std::vector<SimTime>{1, 6}));
}

TEST(EventQueueTest, NextTimeAndEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTime(), -1);
    q.schedule(42, [](SimTime) {});
    EXPECT_EQ(q.nextTime(), 42);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, ResetDropsPending)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&](SimTime) { ++count; });
    q.reset();
    EXPECT_EQ(q.runAll(), 0u);
    EXPECT_EQ(count, 0);
    EXPECT_EQ(q.now(), 0);
}

TEST(EventQueueTest, ClockAdvancesMonotonically)
{
    EventQueue q;
    SimTime last = -1;
    for (int i = 0; i < 50; ++i) {
        q.schedule(i * 2, [&](SimTime now) {
            EXPECT_GT(now, last);
            last = now;
        });
    }
    q.runAll();
    EXPECT_EQ(last, 98);
}

// A trivially copyable callback padded past the inline threshold so
// its state must live in the arena.
template <std::size_t PadBytes>
struct PaddedCallback
{
    std::vector<int> *order;
    int id;
    unsigned char pad[PadBytes];

    void operator()(SimTime) { order->push_back(id); }
};

TEST(EventQueueTest, SameTimestampFifoAcrossArenaGrowth)
{
    // Enough oversized captures at one timestamp to spill the arena
    // across several slabs; FIFO tie-breaking must not depend on
    // where a callback's state lives.
    using Big = PaddedCallback<512>;
    static_assert(sizeof(Big) > EventQueue::kInlineBytes);
    EventQueue q;
    std::vector<int> order;
    constexpr int kEvents = 400; // ~400 * 512B >> one 64 KiB slab
    for (int i = 0; i < kEvents; ++i)
        q.schedule(7, Big{&order, i, {}});
    EXPECT_GT(q.arenaSlabs(), 1u);
    EXPECT_EQ(q.arenaLiveBlocks(), static_cast<std::size_t>(kEvents));
    EXPECT_EQ(q.runAll(), static_cast<std::size_t>(kEvents));
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kEvents));
    for (int i = 0; i < kEvents; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(q.arenaLiveBlocks(), 0u);
}

TEST(EventQueueTest, ResetReclaimsArenaSlabs)
{
    using Big = PaddedCallback<512>;
    EventQueue q;
    std::vector<int> order;
    auto fill = [&] {
        for (int i = 0; i < 300; ++i)
            q.schedule(q.now() + 1 + i, Big{&order, i, {}});
    };
    fill();
    q.runAll();
    q.reset();
    const std::size_t slabs_after_first = q.arenaSlabs();
    EXPECT_GT(slabs_after_first, 0u);
    // Steady state: later cycles reuse the rewound slabs instead of
    // growing the arena, whether drained by run or dropped by reset.
    for (int cycle = 0; cycle < 5; ++cycle) {
        fill();
        if (cycle % 2 == 0)
            q.runAll();
        q.reset();
        EXPECT_EQ(q.arenaSlabs(), slabs_after_first);
        EXPECT_EQ(q.arenaLiveBlocks(), 0u);
    }
}

TEST(EventQueueTest, CaptureSizesStraddleInlineThreshold)
{
    // 8-byte pointer + 4-byte id + pad, padded to an 8-byte multiple.
    using AtLimit = PaddedCallback<36>;   // 8 + 4 + 36 = 48 == limit
    using OverLimit = PaddedCallback<37>; // rounds up to 56 > limit
    static_assert(sizeof(AtLimit) == EventQueue::kInlineBytes);
    static_assert(sizeof(OverLimit) > EventQueue::kInlineBytes);

    EventQueue q;
    std::vector<int> order;
    q.schedule(1, AtLimit{&order, 0, {}});
    EXPECT_EQ(q.arenaLiveBlocks(), 0u); // fits inline
    q.schedule(2, OverLimit{&order, 1, {}});
    EXPECT_EQ(q.arenaLiveBlocks(), 1u); // one byte over: arena
    // Small but not trivially copyable: must also go to the arena
    // (heap byte-moves would break non-trivial captures).
    std::vector<int> payload{2};
    q.schedule(3, [&order, payload](SimTime) {
        order.push_back(payload[0]);
    });
    EXPECT_EQ(q.arenaLiveBlocks(), 2u);
    EXPECT_EQ(q.runAll(), 3u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.arenaLiveBlocks(), 0u);
}

} // namespace
} // namespace hcc::sim
