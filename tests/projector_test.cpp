/**
 * @file
 * Tests for the CC projector: per-category deltas and end-to-end
 * prediction accuracy against actual CC runs.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/calibration.hpp"
#include "perfmodel/projector.hpp"
#include "tee/secure_channel.hpp"
#include "runtime/context.hpp"
#include "workloads/workload.hpp"

namespace hcc::perfmodel {
namespace {

workloads::WorkloadResult
run(const std::string &app, bool cc)
{
    rt::SystemConfig cfg;
    cfg.cc = cc;
    return workloads::runWorkload(app, cfg);
}

TEST(Projector, PredictedOverlapRatesFollowTheTierModel)
{
    using tee::OverlapMode;
    // H2D: serial pays seal+copy back to back; double-buffer is
    // seal-limited; depth-4 speculation quadruples the seal
    // front-end but stays under the pinned-PCIe line rate.
    const double none = ccPredictedRateGbps(OverlapMode::None, false);
    const double db =
        ccPredictedRateGbps(OverlapMode::DoubleBuffer, false);
    const double spec =
        ccPredictedRateGbps(OverlapMode::Speculative, false);
    EXPECT_NEAR(none, 3.02, 0.05);
    EXPECT_NEAR(db, calib::kEmrAesGcm128GBs, 0.01);
    EXPECT_NEAR(spec, 4 * calib::kEmrAesGcm128GBs, 0.01);
    EXPECT_LT(spec, calib::kPciePinnedGBs);
    // Absurd depth saturates at the wire, never beyond it.
    EXPECT_DOUBLE_EQ(
        ccPredictedRateGbps(OverlapMode::Speculative, false, 1000),
        std::min(calib::kBounceCopyGBs, calib::kPciePinnedGBs));
    // D2H: the per-page inbound scrub caps both pipelined tiers at
    // the same bounce-copy rate — overlap cannot hide scrubbing.
    const double db_d2h =
        ccPredictedRateGbps(OverlapMode::DoubleBuffer, true);
    const double spec_d2h =
        ccPredictedRateGbps(OverlapMode::Speculative, true);
    EXPECT_DOUBLE_EQ(db_d2h, spec_d2h);
    EXPECT_LT(spec_d2h, db);
    EXPECT_GT(spec_d2h,
              ccPredictedRateGbps(OverlapMode::None, true));
}

TEST(Projector, EmptyTraceProjectsToItself)
{
    trace::Tracer t;
    const auto p = projectCc(t);
    EXPECT_EQ(p.base, 0);
    EXPECT_EQ(p.projected, 0);
    EXPECT_FALSE(p.uvm_seen);
    EXPECT_DOUBLE_EQ(p.slowdown(), 1.0);
}

TEST(Projector, TransferDeltaDominatesCopyHeavyApp)
{
    const auto base = run("gemm", false);
    const auto p = projectCc(base.trace);
    EXPECT_GT(p.mem_delta, p.launch_delta);
    EXPECT_GT(p.mem_delta, p.kernel_delta);
    EXPECT_GT(p.projected, p.base);
}

TEST(Projector, LaunchSideDeltasDominateLaunchHeavyApp)
{
    // For sc (1611 launches) the launch-path taxes — host launch +
    // dispatch (launch_delta) plus per-kernel decode amplification
    // (inside kernel_delta) — far outweigh the pure KET drift.
    const auto base = run("sc", false);
    const auto p = projectCc(base.trace);
    EXPECT_GT(p.launch_delta,
              static_cast<SimTime>(
                  static_cast<double>(p.kernel_delta) * 0.5));
    const SimTime ket_drift = static_cast<SimTime>(
        base.metrics.ket.sum() * 0.0048);
    EXPECT_GT(p.launch_delta, 10 * ket_drift);
}

TEST(Projector, FlagsManagedTraces)
{
    workloads::WorkloadParams params;
    params.uvm = true;
    rt::SystemConfig cfg;
    const auto base = workloads::runWorkload("gemm", cfg, params);
    const auto p = projectCc(base.trace);
    EXPECT_TRUE(p.uvm_seen);
}

TEST(Projector, ReportListsCategories)
{
    const auto base = run("2mm", false);
    const auto p = projectCc(base.trace);
    const auto r = p.report();
    EXPECT_NE(r.find("transfers"), std::string::npos);
    EXPECT_NE(r.find("launches"), std::string::npos);
    EXPECT_NE(r.find("projected P"), std::string::npos);
}

/** Prediction accuracy sweep over non-UVM apps. */
class ProjectorAccuracy
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(ProjectorAccuracy, WithinTwentyPercentOfActual)
{
    const std::string app = GetParam();
    const auto base = run(app, false);
    const auto actual = run(app, true);
    const auto p = projectCc(base.trace);
    const double actual_slowdown =
        static_cast<double>(actual.end_to_end)
        / static_cast<double>(base.end_to_end);
    EXPECT_FALSE(p.uvm_seen) << app;
    EXPECT_NEAR(p.slowdown() / actual_slowdown, 1.0, 0.20)
        << app << ": projected " << p.slowdown() << "x vs actual "
        << actual_slowdown << "x";
}

INSTANTIATE_TEST_SUITE_P(Apps, ProjectorAccuracy,
                         ::testing::Values("2mm", "3dconv", "sc",
                                           "hotspot", "gemm",
                                           "kmeans", "dwt2d", "cnn",
                                           "atax", "gramschm", "srad",
                                           "lud", "backprop",
                                           "lavamd"));

} // namespace
} // namespace hcc::perfmodel
