/**
 * @file
 * Tests for the performance-model decomposition: part accounting,
 * alpha/beta estimation, prediction accuracy on synthetic and real
 * traces.
 */

#include <gtest/gtest.h>

#include "perfmodel/model.hpp"
#include "runtime/context.hpp"
#include "trace/tracer.hpp"
#include "workloads/workload.hpp"

namespace hcc::perfmodel {
namespace {

trace::TraceEvent
ev(trace::EventKind kind, SimTime start, SimTime end,
   SimTime wait = 0)
{
    trace::TraceEvent e;
    e.kind = kind;
    e.start = start;
    e.end = end;
    e.queue_wait = wait;
    return e;
}

TEST(Decompose, SerialAppExactPrediction)
{
    // memcpy [0,100), launch [100,110), kernel [110,160), free
    // [160,200): no overlap anywhere.
    trace::Tracer t;
    t.record(ev(trace::EventKind::MemcpyH2D, 0, 100));
    t.record(ev(trace::EventKind::Launch, 100, 110));
    t.record(ev(trace::EventKind::Kernel, 110, 160));
    t.record(ev(trace::EventKind::Free, 160, 200));
    const auto d = decompose(t);
    EXPECT_EQ(d.t_mem, 100);
    EXPECT_EQ(d.t_launch, 10);
    EXPECT_EQ(d.t_kernel, 50);
    EXPECT_EQ(d.t_other, 40);
    EXPECT_DOUBLE_EQ(d.alpha, 0.0);
    EXPECT_DOUBLE_EQ(d.beta_mean, 0.0);
    EXPECT_EQ(d.predicted, 200);
    EXPECT_EQ(d.end_to_end, 200);
    EXPECT_DOUBLE_EQ(d.relativeError(), 0.0);
}

TEST(Decompose, FullyOverlappedCopyGivesAlphaOne)
{
    trace::Tracer t;
    t.record(ev(trace::EventKind::Kernel, 0, 1000));
    t.record(ev(trace::EventKind::MemcpyH2D, 100, 300));
    const auto d = decompose(t);
    EXPECT_DOUBLE_EQ(d.alpha, 1.0);
    EXPECT_EQ(d.predicted, 1000);
}

TEST(Decompose, KernelHiddenUnderLaunchGivesBetaOne)
{
    // Fig. 3's K1: launch activity covers the kernel completely.
    trace::Tracer t;
    t.record(ev(trace::EventKind::Launch, 0, 100));
    t.record(ev(trace::EventKind::Kernel, 10, 60));
    const auto d = decompose(t);
    EXPECT_DOUBLE_EQ(d.beta_mean, 1.0);
    EXPECT_EQ(d.predicted, 100);
}

TEST(Decompose, LqtExtendsTheLaunchSpan)
{
    trace::Tracer t;
    // Launch op [50,60) preceded by 50 of queuing: B = 60.
    t.record(ev(trace::EventKind::Launch, 50, 60, 50));
    const auto d = decompose(t);
    EXPECT_EQ(d.t_launch, 60);
}

TEST(Decompose, SyncOverlappedWithKernelNotDoubleCounted)
{
    trace::Tracer t;
    t.record(ev(trace::EventKind::Kernel, 0, 100));
    t.record(ev(trace::EventKind::Sync, 20, 120));
    const auto d = decompose(t);
    // Only the sync tail [100,120) lands in T_other.
    EXPECT_EQ(d.t_other, 20);
}

TEST(Decompose, EmptyTraceIsAllZero)
{
    trace::Tracer t;
    const auto d = decompose(t);
    EXPECT_EQ(d.end_to_end, 0);
    EXPECT_EQ(d.predicted, 0);
    EXPECT_DOUBLE_EQ(d.relativeError(), 0.0);
}

TEST(Decompose, ReportMentionsAllParts)
{
    trace::Tracer t;
    t.record(ev(trace::EventKind::Kernel, 0, 100));
    const auto d = decompose(t);
    const std::string r = d.report();
    EXPECT_NE(r.find("T_mem"), std::string::npos);
    EXPECT_NE(r.find("KLO+LQT"), std::string::npos);
    EXPECT_NE(r.find("P (model)"), std::string::npos);
}

// The model must predict real app traces accurately in both modes
// (this is the claim of Sec. V).
class ModelAccuracy
    : public ::testing::TestWithParam<std::tuple<const char *, bool>>
{};

TEST_P(ModelAccuracy, PredictsEndToEndWithinFivePercent)
{
    const auto [app, cc] = GetParam();
    rt::SystemConfig cfg;
    cfg.cc = cc;
    const auto res = workloads::runWorkload(app, cfg);
    const auto d = decompose(res.trace);
    EXPECT_LT(d.relativeError(), 0.05)
        << app << " cc=" << cc << ": predicted "
        << formatTime(d.predicted) << " vs measured "
        << formatTime(d.end_to_end);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, ModelAccuracy,
    ::testing::Combine(::testing::Values("2mm", "3dconv", "sc",
                                         "hotspot", "kmeans",
                                         "gramschm", "dwt2d", "cnn"),
                       ::testing::Bool()));

} // namespace
} // namespace hcc::perfmodel
