/**
 * @file
 * Serve-sweep driver and deterministic writers: expand the spec into
 * cells, run each in isolation on the shared thread pool, and merge
 * the SLO metrics into CSV / JSON / stats outputs that are
 * byte-identical across worker counts.
 */

#include "serve/serve.hpp"

#include <charconv>
#include <chrono>
#include <ostream>

#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "obs/report.hpp"
#include "sweep/sweep.hpp"

namespace hcc::serve {

namespace {

/** Shortest round-trip decimal form of a double (deterministic). */
std::string
formatDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

double
elapsedUs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The per-point JSON object shared by the cells array and the
 *  "serve_curve" stats member. */
std::string
pointJson(const ServeCellResult &c)
{
    std::string out;
    out += "{\"index\": " + std::to_string(c.cell.index);
    out += ", \"label\": \"" + sweep::jsonEscape(c.cell.label())
        + "\"";
    out += ", \"load\": " + formatLoad(c.cell.load);
    out += std::string(", \"cc\": ") + (c.cell.cc ? "true" : "false");
    out += ", \"overlap\": \""
        + std::string(tee::overlapModeName(c.cell.overlap)) + "\"";
    out += std::string(", \"ok\": ") + (c.ok ? "true" : "false");
    if (c.ok) {
        const ServePoint &p = c.point;
        out += ", \"requests\": " + std::to_string(p.requests);
        out += ", \"completed\": " + std::to_string(p.completed);
        out += ", \"preempted\": " + std::to_string(p.preempted);
        out += ", \"prefills\": " + std::to_string(p.prefills);
        out += ", \"tokens\": " + std::to_string(p.tokens);
        out += ", \"makespan_ps\": " + std::to_string(p.makespan);
        out += ", \"offered_tok_s\": " + formatDouble(p.offered_tok_s);
        out += ", \"goodput_tok_s\": " + formatDouble(p.goodput_tok_s);
        out += ", \"ttft_p50_ps\": " + std::to_string(p.ttft_p50);
        out += ", \"ttft_p95_ps\": " + std::to_string(p.ttft_p95);
        out += ", \"ttft_p99_ps\": " + std::to_string(p.ttft_p99);
        out += ", \"tpot_p50_ps\": " + std::to_string(p.tpot_p50);
        out += ", \"tpot_p95_ps\": " + std::to_string(p.tpot_p95);
        out += ", \"tpot_p99_ps\": " + std::to_string(p.tpot_p99);
        out += ", \"kv_fault_batches\": "
            + std::to_string(p.kv_fault_batches);
        out += ", \"kv_migrated_bytes\": "
            + std::to_string(p.kv_migrated_bytes);
        out += ", \"bottleneck\": \""
            + std::string(trace::bottleneckName(p.bottleneck)) + "\"";
        out += ", \"critical_path_ps\": "
            + std::to_string(p.critical_path_ps);
    } else {
        out += ", \"error\": \"" + sweep::jsonEscape(c.error) + "\"";
    }
    out += "}";
    return out;
}

} // namespace

std::size_t
ServeSpec::cellCount() const
{
    return loads.size() * cc_modes.size() * overlaps.size();
}

std::string
ServeCell::label() const
{
    std::string out = "l" + formatLoad(load);
    out += cc ? ".cc" : ".base";
    if (overlap != tee::OverlapMode::None) {
        out += '.';
        out += tee::overlapModeName(overlap);
    }
    return out;
}

std::size_t
ServeResult::failures() const
{
    std::size_t n = 0;
    for (const auto &c : cells)
        if (!c.ok)
            ++n;
    return n;
}

std::vector<ServeCell>
expandServeCells(const ServeSpec &spec)
{
    if (spec.loads.empty())
        fatal("serve: no offered loads given");
    if (spec.cc_modes.empty())
        fatal("serve: no cc modes given");
    if (spec.overlaps.empty())
        fatal("serve: no overlap tiers given");
    std::vector<ServeCell> cells;
    cells.reserve(spec.cellCount());
    for (double load : spec.loads)
        for (bool cc : spec.cc_modes)
            for (tee::OverlapMode overlap : spec.overlaps) {
                ServeCell cell;
                cell.index = cells.size();
                cell.load = load;
                cell.cc = cc;
                cell.overlap = overlap;
                cells.push_back(cell);
            }
    return cells;
}

ServeResult
runServe(const ServeSpec &spec, int jobs)
{
    const auto sweep_start = std::chrono::steady_clock::now();
    const std::vector<ServeCell> cells = expandServeCells(spec);

    ServeResult result;
    result.spec = spec;
    result.jobs = jobs < 1 ? 1 : jobs;
    result.cells.resize(cells.size());

    runIndexed(cells.size(), jobs, [&](std::size_t i) {
        const auto cell_start = std::chrono::steady_clock::now();
        ServeCellResult &out = result.cells[i];
        out.cell = cells[i];
        try {
            out.point = runServeCell(spec, cells[i]);
            out.ok = true;
        } catch (const FatalError &e) {
            out.ok = false;
            out.error = e.what();
        }
        out.wall_us = elapsedUs(cell_start);
    });

    result.wall_us = elapsedUs(sweep_start);
    return result;
}

void
writeServeCsv(const ServeResult &result, std::ostream &os)
{
    os << "index,label,load,cc,overlap,requests,completed,preempted,"
          "prefills,tokens,makespan_ps,offered_tok_s,goodput_tok_s,"
          "ttft_p50_ps,ttft_p95_ps,ttft_p99_ps,tpot_p50_ps,"
          "tpot_p95_ps,tpot_p99_ps,kv_fault_batches,"
          "kv_migrated_bytes,bottleneck,critical_path_ps,error\n";
    for (const auto &c : result.cells) {
        os << c.cell.index << ','
           << sweep::csvField(c.cell.label()) << ','
           << formatLoad(c.cell.load) << ','
           << (c.cell.cc ? 1 : 0) << ','
           << tee::overlapModeName(c.cell.overlap) << ',';
        if (c.ok) {
            const ServePoint &p = c.point;
            os << p.requests << ',' << p.completed << ','
               << p.preempted << ',' << p.prefills << ','
               << p.tokens << ',' << p.makespan << ','
               << formatDouble(p.offered_tok_s) << ','
               << formatDouble(p.goodput_tok_s) << ','
               << p.ttft_p50 << ',' << p.ttft_p95 << ','
               << p.ttft_p99 << ',' << p.tpot_p50 << ','
               << p.tpot_p95 << ',' << p.tpot_p99 << ','
               << p.kv_fault_batches << ','
               << p.kv_migrated_bytes << ','
               << trace::bottleneckName(p.bottleneck) << ','
               << p.critical_path_ps << ',';
        } else {
            os << ",,,,,,,,,,,,,,,,,,";
        }
        os << sweep::csvField(c.error) << '\n';
    }
}

void
writeServeJson(const ServeResult &result, std::ostream &os)
{
    os << "[\n";
    bool first = true;
    for (const auto &c : result.cells) {
        os << (first ? "" : ",\n");
        first = false;
        os << "  " << pointJson(c);
    }
    os << "\n]\n";
}

void
writeServeStats(const ServeResult &result, std::ostream &os)
{
    obs::ReportWriter report;
    std::string curve = "[";
    bool first = true;
    for (const auto &c : result.cells) {
        curve += first ? "" : ", ";
        first = false;
        curve += pointJson(c);
        if (c.ok)
            report.addSection("cell" + std::to_string(c.cell.index)
                                  + "." + c.cell.label() + ".",
                              c.point.stats.get());
    }
    curve += "]";
    report.addMember("serve_curve", curve);
    report.write(os);
}

} // namespace hcc::serve
