/**
 * @file
 * The continuous-batching scheduler: one isolated simulation per
 * serving cell, driven by the cell's arrival trace through the real
 * runtime.
 *
 * Scheduling policy (vLLM-style, deterministic):
 *  - FCFS head-of-line admission up to max_batch, gated by the KV
 *    budget (a lone request always fits — the budget is soft for it);
 *  - iteration-level batching: every decode iteration serves the
 *    whole active set, priced by the closed-loop model terms at the
 *    current batch size;
 *  - per-session KV caches are managed allocations touched by an
 *    attention kernel each iteration, so KV growth demand-faults
 *    through the GMMU (the CC encrypted-paging path);
 *  - KV pressure preempts the youngest session (LIFO): its device
 *    residency is dropped and it re-queues at the head, re-faulting
 *    its whole KV on re-admission;
 *  - an empty server idles the host clock to the next arrival via
 *    Context::advanceHostTo() (no trace event, no RNG draw).
 */

#include "serve/serve.hpp"

#include <algorithm>
#include <deque>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "gpu/kernel.hpp"
#include "runtime/context.hpp"

namespace hcc::serve {

namespace {

/** One admitted (or preempted-waiting) request's serving state. */
struct Session
{
    Request req;
    /** Managed KV-cache allocation; unallocated until admission. */
    rt::Buffer kv{};
    rt::Buffer prompt_host{}, prompt_dev{};
    /** Tokens generated so far. */
    int generated = 0;
    /** First-token completion time (-1 until it happens). */
    SimTime first_token = -1;

    bool admittedBefore() const { return kv.bytes != 0; }
};

} // namespace

ServePoint
runServeCell(const ServeSpec &spec, const ServeCell &cell)
{
    if (spec.max_batch <= 0)
        fatal("serve: max batch must be positive (got %d)",
              spec.max_batch);
    if (spec.kv_bytes_per_token == 0)
        fatal("serve: kv bytes per token must be positive");
    if (spec.kv_budget_bytes == 0)
        fatal("serve: kv budget must be positive");

    const std::vector<Request> trace =
        buildArrivalTrace(spec, cell.load);

    rt::SystemConfig sys;
    sys.cc = cell.cc;
    sys.seed = spec.seed;
    sys.channel.crypto_workers = spec.crypto_workers;
    sys.channel.tee_io = spec.tee_io;
    sys.channel.overlap = cell.overlap;
    rt::Context ctx(sys);

    // Stat handles up front: Registry creation is get-or-create but
    // not thread-safe against concurrent section dumps, and grabbing
    // them here keeps creation order identical in every cell.
    auto &c_requests = ctx.obs().counter("serve.requests");
    auto &c_completed = ctx.obs().counter("serve.completed");
    auto &c_preempted = ctx.obs().counter("serve.preempted");
    auto &c_prefills = ctx.obs().counter("serve.prefills");
    auto &c_tokens = ctx.obs().counter("serve.tokens");
    auto &g_occupancy = ctx.obs().gauge("serve.batch_occupancy");
    auto &g_queue = ctx.obs().gauge("serve.queue_depth");
    auto &g_kv = ctx.obs().gauge("serve.kv_reserved_bytes");
    auto &d_ttft = ctx.obs().distribution("serve.ttft_ps");
    auto &d_tpot = ctx.obs().distribution("serve.tpot_ps");

    const Bytes kvpt = spec.kv_bytes_per_token;
    const auto kvNow = [kvpt](const Session &s) -> Bytes {
        return static_cast<Bytes>(s.req.prompt_len + s.generated)
            * kvpt;
    };

    // Shared model state: weights resident for the whole run, one
    // token staging pair reused every iteration.
    const Bytes token_bytes = std::max<Bytes>(
        static_cast<Bytes>(spec.max_batch) * 8, 4096);
    rt::Buffer weights_dev =
        ctx.mallocDevice(ml::llmWeightBytes(spec.quant));
    rt::Buffer token_dev = ctx.mallocDevice(token_bytes);
    rt::Buffer token_host = ctx.hostPageable(token_bytes);

    // Server-ready point: arrivals are relative to it, so the CC
    // attestation handshake (a one-time cost) never skews TTFT.
    const SimTime start = ctx.now();

    const std::string decode_name =
        ml::llmBackendName(spec.backend) + "_decode_fused";
    const std::string attend_name =
        ml::llmBackendName(spec.backend) + "_kv_attend";
    const std::string prefill_name =
        ml::llmBackendName(spec.backend) + "_prefill";

    std::deque<Session> waiting;
    std::vector<Session> active;
    std::size_t next_arrival = 0;
    Bytes kv_used = 0;
    int completed = 0, preempted = 0, prefills = 0;
    std::int64_t tokens = 0;
    std::vector<SimTime> ttfts, tpots;
    ttfts.reserve(trace.size());
    tpots.reserve(trace.size());

    while (completed < spec.requests) {
        // 1. Enqueue every arrival that has happened by now.
        while (next_arrival < trace.size()
               && start + trace[next_arrival].arrival <= ctx.now()) {
            Session s;
            s.req = trace[next_arrival++];
            waiting.push_back(s);
            c_requests.add(1);
        }

        // 2. FCFS head-of-line admission under the KV budget.
        while (static_cast<int>(active.size()) < spec.max_batch
               && !waiting.empty()) {
            Session &head = waiting.front();
            if (!active.empty()
                && kv_used + kvNow(head) > spec.kv_budget_bytes)
                break;
            if (!head.admittedBefore()) {
                // Fresh request: prompt ingress (the CC channel tax
                // applies here), KV allocation and one prefill pass.
                const Bytes prompt_bytes = std::max<Bytes>(
                    static_cast<Bytes>(head.req.prompt_len) * 4,
                    4096);
                head.prompt_host = ctx.hostPageable(prompt_bytes);
                head.prompt_dev = ctx.mallocDevice(prompt_bytes);
                ctx.memcpy(head.prompt_dev, head.prompt_host,
                           prompt_bytes);
                head.kv = ctx.mallocManaged(
                    static_cast<Bytes>(head.req.prompt_len
                                       + head.req.gen_len)
                    * kvpt);
                gpu::KernelDesc prefill;
                prefill.name = prefill_name;
                prefill.duration = ml::llmPrefillTime(
                    spec.backend, spec.quant,
                    static_cast<double>(head.req.prompt_len));
                prefill.uvm_alloc = head.kv.uvm_handle;
                prefill.uvm_touch_bytes =
                    static_cast<Bytes>(head.req.prompt_len) * kvpt;
                ctx.launchKernel(prefill);
                ++prefills;
                c_prefills.add(1);
            }
            // Re-admission allocates nothing: the KV buffer is still
            // live, only its device residency was dropped — the next
            // attention touch re-faults it (encrypted under CC).
            kv_used += kvNow(head);
            active.push_back(std::move(head));
            waiting.pop_front();
        }

        // 3. Empty server: idle the host clock to the next arrival.
        if (active.empty()) {
            HCC_ASSERT(next_arrival < trace.size(),
                       "serve scheduler stalled with no work left");
            ctx.advanceHostTo(start + trace[next_arrival].arrival);
            continue;
        }

        // 4. One decode iteration over the whole active batch,
        // priced exactly like a closed-loop decode step at this
        // batch size.
        const int batch = static_cast<int>(active.size());
        const ml::LlmStepModel step =
            ml::llmStepModel(spec.backend, spec.quant, batch);
        gpu::KernelDesc decode;
        decode.name = decode_name;
        decode.duration = step.per_kernel;
        for (int k = 0; k < step.launches; ++k)
            ctx.launchKernel(decode);
        for (const Session &s : active) {
            gpu::KernelDesc attend;
            attend.name = attend_name;
            attend.duration = std::max(
                time::us(2), transferTime(kvNow(s), calib::kHbmGBs));
            attend.uvm_alloc = s.kv.uvm_handle;
            attend.uvm_touch_bytes = kvNow(s);
            ctx.launchKernel(attend);
        }
        ctx.deviceSynchronize();
        ctx.memcpy(token_host, token_dev,
                   static_cast<Bytes>(batch) * 8);
        ctx.advanceHostTo(
            ctx.now() + ml::llmFrameworkStepCost(spec.backend, batch));

        // 5. Bookkeeping: token completions, retirements.
        const SimTime now = ctx.now();
        for (auto it = active.begin(); it != active.end();) {
            Session &s = *it;
            ++s.generated;
            kv_used += kvpt;
            if (s.first_token < 0) {
                s.first_token = now;
                const SimTime ttft = now - (start + s.req.arrival);
                ttfts.push_back(ttft);
                d_ttft.add(static_cast<double>(ttft));
            }
            if (s.generated >= s.req.gen_len) {
                if (s.req.gen_len > 1) {
                    const SimTime tpot = (now - s.first_token)
                        / (s.req.gen_len - 1);
                    tpots.push_back(tpot);
                    d_tpot.add(static_cast<double>(tpot));
                }
                tokens += s.req.gen_len;
                c_tokens.add(
                    static_cast<std::uint64_t>(s.req.gen_len));
                kv_used -= kvNow(s);
                ctx.free(s.kv);
                ctx.free(s.prompt_dev);
                ctx.free(s.prompt_host);
                ++completed;
                c_completed.add(1);
                it = active.erase(it);
            } else {
                ++it;
            }
        }

        // 6. KV pressure: preempt youngest-first until under budget
        // (never the last session — the budget is soft for it).
        while (kv_used > spec.kv_budget_bytes && active.size() > 1) {
            Session victim = std::move(active.back());
            active.pop_back();
            kv_used -= kvNow(victim);
            ctx.cpuTouchManaged(victim.kv);
            waiting.push_front(std::move(victim));
            ++preempted;
            c_preempted.add(1);
        }

        g_occupancy.set(static_cast<std::int64_t>(active.size()), now);
        g_queue.set(static_cast<std::int64_t>(waiting.size()), now);
        g_kv.set(static_cast<std::int64_t>(kv_used), now);
    }

    ctx.free(token_host);
    ctx.free(token_dev);
    ctx.free(weights_dev);

    ServePoint point;
    point.requests = spec.requests;
    point.completed = completed;
    point.preempted = preempted;
    point.prefills = prefills;
    point.tokens = tokens;
    point.makespan = ctx.now() - start;

    double gen_sum = 0.0;
    for (const Request &r : trace)
        gen_sum += static_cast<double>(r.gen_len);
    point.offered_tok_s =
        cell.load * gen_sum / static_cast<double>(spec.requests);
    point.goodput_tok_s = point.makespan > 0
        ? static_cast<double>(tokens) / time::toSec(point.makespan)
        : 0.0;

    std::sort(ttfts.begin(), ttfts.end());
    std::sort(tpots.begin(), tpots.end());
    point.ttft_p50 = percentileNearestRank(ttfts, 50.0);
    point.ttft_p95 = percentileNearestRank(ttfts, 95.0);
    point.ttft_p99 = percentileNearestRank(ttfts, 99.0);
    point.tpot_p50 = percentileNearestRank(tpots, 50.0);
    point.tpot_p95 = percentileNearestRank(tpots, 95.0);
    point.tpot_p99 = percentileNearestRank(tpots, 99.0);

    point.kv_fault_batches = ctx.device().uvm().totalBatches();
    point.kv_migrated_bytes = ctx.device().uvm().totalMigrated();

    const trace::CriticalAnalysis crit = trace::analyzeCritical(
        ctx.tracer(), &ctx.obs(), /*with_slack=*/false);
    point.bottleneck = crit.path.bottleneck;
    point.critical_path_ps = crit.path.on_path_ps;

    point.stats = ctx.obsPtr();
    return point;
}

} // namespace hcc::serve
