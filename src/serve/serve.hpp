/**
 * @file
 * Open-loop LLM serving simulator (`hccsim serve`): a deterministic
 * request-arrival process (Poisson, optionally shaped by burst
 * windows) driving a continuous-batching scheduler over the real
 * CC runtime.
 *
 * Where the closed-loop serving model (ml/llm.hpp, Fig. 14) measures
 * steady-state decode throughput at a fixed batch, this subsystem
 * measures what an operator sees at the SLO boundary: time-to-first-
 * token (TTFT), per-output-token latency (TPOT) and goodput as
 * offered load sweeps toward saturation.  Every decode iteration is
 * priced by the *same* analytical terms the closed-loop model uses
 * (llmStepModel / llmPrefillTime / llmFrameworkStepCost), so a
 * scheduler iteration at batch b costs exactly what a closed-loop
 * decode step at batch b does; what the open loop adds is queueing,
 * batch-occupancy dynamics and KV-cache paging.
 *
 * Per-session KV caches are managed (UVM) allocations touched by an
 * attention kernel each decode step, so KV growth demand-faults new
 * pages through the GMMU interval-map path — under CC that is the
 * encrypted-paging tax (2-page fault batches vs 64), and a preempted
 * session's KV residency is dropped so re-admission re-faults its
 * whole working set.  That is how the CC-vs-native goodput gap widens
 * with load: more queueing -> more preemption -> more encrypted
 * paging, on top of the per-step launch tax.
 *
 * Determinism contract: one fully isolated simulation per (load, cc,
 * overlap) cell on the sweep thread pool; the arrival trace is a pure
 * function of (spec, load); all outputs are byte-identical across
 * `--jobs` and repeated runs.
 */

#ifndef HCC_SERVE_SERVE_HPP
#define HCC_SERVE_SERVE_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "ml/llm.hpp"
#include "obs/registry.hpp"
#include "tee/secure_channel.hpp"
#include "trace/critpath.hpp"

namespace hcc::serve {

/**
 * One arrival-rate burst window over the request-index fraction
 * [begin, end) of the trace (0 = first request, 1 = last).  Within a
 * window the Poisson rate is multiplied by @p multiplier; overlapping
 * windows multiply together.
 */
struct BurstWindow
{
    double begin = 0.0;
    double end = 0.0;
    double multiplier = 1.0;
};

/**
 * Declarative serving experiment: one arrival trace per offered
 * load, served under every (cc, overlap) tier.  Cells are expanded
 * in input order: loads (outer) x cc_modes x overlaps (inner); that
 * order is the merge order of every output.
 */
struct ServeSpec
{
    ml::LlmBackend backend = ml::LlmBackend::Vllm;
    ml::LlmQuant quant = ml::LlmQuant::Bf16;
    /** Requests per arrival trace. */
    int requests = 160;
    /** Continuous-batching admission ceiling. */
    int max_batch = 32;
    /** Mean prompt tokens per request (sampled in [1/2x, 3/2x]). */
    int prompt_len = 512;
    /** Mean generated tokens per request (sampled in [1/2x, 3/2x]). */
    int gen_len = 64;
    /** KV-cache bytes per token per session. */
    Bytes kv_bytes_per_token = size::kib(32);
    /** Aggregate KV budget; exceeding it preempts young sessions.
     *  Soft for a lone session (one request always fits). */
    Bytes kv_budget_bytes = size::mib(256);
    /** Offered loads (requests per second), one goodput point each. */
    std::vector<double> loads = {8.0, 24.0, 48.0, 96.0};
    /** Arrival-rate burst windows (empty = plain Poisson). */
    std::vector<BurstWindow> bursts;
    /** CC modes to serve each load under. */
    std::vector<bool> cc_modes = {false, true};
    /** Channel overlap tiers to serve each load under. */
    std::vector<tee::OverlapMode> overlaps = {tee::OverlapMode::None};
    /** Parallel encryption workers in the CC transfer path. */
    int crypto_workers = 1;
    /** Model the hypothetical TEE-IO hardware path. */
    bool tee_io = false;
    /** Seed of the arrival trace and the per-cell simulators. */
    std::uint64_t seed = 42;

    /** Number of cells the spec expands to. */
    std::size_t cellCount() const;
};

/** One request of an arrival trace.  @p arrival is relative to the
 *  server-ready point (post CC handshake), so TTFT curves compare
 *  steady-state tiers rather than the one-time attestation cost. */
struct Request
{
    int id = 0;
    SimTime arrival = 0;
    int prompt_len = 0;
    int gen_len = 0;
};

/**
 * Expand the deterministic arrival trace for @p load requests/s: a
 * Poisson process (inter-arrival dt ~ Exp(rate)) whose rate is shaped
 * by the spec's burst windows, with per-request prompt/gen lengths
 * sampled around the spec means.  Pure function of (spec, load) —
 * every tier of a load point serves the byte-identical trace.
 */
std::vector<Request> buildArrivalTrace(const ServeSpec &spec,
                                       double load);

/**
 * Nearest-rank percentile (exact, no interpolation): the ceil(p/100
 * * N)-th smallest element of @p sorted (ascending).  0 when empty.
 */
SimTime percentileNearestRank(const std::vector<SimTime> &sorted,
                              double pct);

/** One expanded serving cell (a single simulation to run). */
struct ServeCell
{
    /** Input-order position in the expanded spec. */
    std::size_t index = 0;
    /** Offered load, requests per second. */
    double load = 0.0;
    bool cc = false;
    tee::OverlapMode overlap = tee::OverlapMode::None;

    /** Stable id, e.g. "l24.cc" or "l96.cc.speculative". */
    std::string label() const;
};

/** The SLO metrics of one served cell. */
struct ServePoint
{
    int requests = 0;
    int completed = 0;
    /** KV-pressure evictions back to the wait queue. */
    int preempted = 0;
    /** Prefill passes (== admissions of fresh requests). */
    int prefills = 0;
    /** Generated tokens over the whole run. */
    std::int64_t tokens = 0;
    /** Server-ready to last retirement. */
    SimTime makespan = 0;
    /** Offered token rate: load x mean generated tokens/request. */
    double offered_tok_s = 0.0;
    /** Achieved token rate: tokens / makespan. */
    double goodput_tok_s = 0.0;
    SimTime ttft_p50 = 0, ttft_p95 = 0, ttft_p99 = 0;
    SimTime tpot_p50 = 0, tpot_p95 = 0, tpot_p99 = 0;
    /** UVM far-fault batches (the KV paging signal). */
    std::uint64_t kv_fault_batches = 0;
    /** Managed bytes demand-migrated (KV faults + re-faults). */
    Bytes kv_migrated_bytes = 0;
    trace::Bottleneck bottleneck = trace::Bottleneck::ComputeBound;
    /** On-path time inside traced events. */
    SimTime critical_path_ps = 0;
    /** The cell's full stats registry (serve.* + runtime stats). */
    std::shared_ptr<obs::Registry> stats;
};

/** Outcome of one cell. */
struct ServeCellResult
{
    ServeCell cell;
    /** False when the cell threw FatalError. */
    bool ok = false;
    /** The FatalError message when !ok. */
    std::string error;
    /** Valid iff ok. */
    ServePoint point;
    /** Host wall-clock the cell took, us (not deterministic). */
    double wall_us = 0.0;
};

/** Outcome of a whole serve sweep, cells in input order. */
struct ServeResult
{
    ServeSpec spec;
    std::vector<ServeCellResult> cells;
    int jobs = 1;
    /** Host wall-clock of the whole run, us. */
    double wall_us = 0.0;

    std::size_t failures() const;
    bool allOk() const { return failures() == 0; }
};

/** Expand @p spec into cells in deterministic input order. */
std::vector<ServeCell> expandServeCells(const ServeSpec &spec);

/** Serve one cell in its own isolated Context.  @throws FatalError
 *  on an invalid spec. */
ServePoint runServeCell(const ServeSpec &spec, const ServeCell &cell);

/** Serve every cell of @p spec on @p jobs workers (<= 1 = inline). */
ServeResult runServe(const ServeSpec &spec, int jobs);

/**
 * Parse a comma list of burst windows, each `begin:end:multiplier`
 * with 0 <= begin < end <= 1 and multiplier > 0 (e.g.
 * "0.5:0.8:4").  @throws FatalError.
 */
std::vector<BurstWindow> parseBurstList(const std::string &csv);

/** Shortest deterministic rendering of a load (and any double). */
std::string formatLoad(double load);

/**
 * Deterministic per-cell CSV (RFC-4180 quoting): one row per cell in
 * input order — byte-identical across worker counts.
 */
void writeServeCsv(const ServeResult &result, std::ostream &os);

/** Deterministic per-cell JSON array, same guarantees as the CSV. */
void writeServeJson(const ServeResult &result, std::ostream &os);

/**
 * Merged stats dump: every successful cell's registry as a section
 * prefixed "cell<index>.<label>." plus a "serve_curve" member with
 * the per-point SLO metrics, readable by `hccsim stats-diff`.
 */
void writeServeStats(const ServeResult &result, std::ostream &os);

} // namespace hcc::serve

#endif // HCC_SERVE_SERVE_HPP
