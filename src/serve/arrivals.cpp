/**
 * @file
 * The deterministic request-arrival process and the exact percentile
 * helper of the serving simulator.
 */

#include "serve/serve.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace hcc::serve {

namespace {

/** Stream salt of the arrival-trace RNG: the trace is drawn from its
 *  own stream so it never interleaves with simulator draws. */
constexpr std::uint64_t kArrivalStream = 0x53455256'41525231ULL;

/** Product of every burst window covering request fraction @p frac. */
double
burstMultiplier(const ServeSpec &spec, double frac)
{
    double mult = 1.0;
    for (const auto &w : spec.bursts)
        if (frac >= w.begin && frac < w.end)
            mult *= w.multiplier;
    return mult;
}

/** Sample a length in [mean/2, 3*mean/2] with a floor of @p lo. */
int
sampleLen(Rng &rng, int mean, int lo)
{
    const auto min_len =
        static_cast<std::int64_t>(std::max(lo, mean / 2));
    const auto max_len = std::max(
        min_len, static_cast<std::int64_t>(mean) * 3 / 2);
    return static_cast<int>(rng.uniformInt(min_len, max_len));
}

} // namespace

std::vector<Request>
buildArrivalTrace(const ServeSpec &spec, double load)
{
    if (load <= 0.0)
        fatal("serve: offered load must be positive (got %g)", load);
    if (spec.requests <= 0)
        fatal("serve: request count must be positive (got %d)",
              spec.requests);
    if (spec.prompt_len <= 0 || spec.gen_len <= 0)
        fatal("serve: prompt/gen lengths must be positive");
    for (const auto &w : spec.bursts)
        if (!(w.begin >= 0.0 && w.begin < w.end && w.end <= 1.0)
            || w.multiplier <= 0.0)
            fatal("serve: bad burst window %g:%g:%g", w.begin, w.end,
                  w.multiplier);

    Rng rng(spec.seed, kArrivalStream);
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(spec.requests));
    SimTime t = 0;
    for (int i = 0; i < spec.requests; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(spec.requests);
        const double rate = load * burstMultiplier(spec, frac);
        // Exponential inter-arrival via inverse CDF; log1p(-u) is
        // finite because uniform() < 1.
        const double dt_s = -std::log1p(-rng.uniform()) / rate;
        t += time::sec(dt_s);
        Request r;
        r.id = i;
        r.arrival = t;
        r.prompt_len = sampleLen(rng, spec.prompt_len, 16);
        r.gen_len = sampleLen(rng, spec.gen_len, 4);
        trace.push_back(r);
    }
    return trace;
}

SimTime
percentileNearestRank(const std::vector<SimTime> &sorted, double pct)
{
    if (sorted.empty())
        return 0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(pct / 100.0 * n));
    rank = std::clamp<std::size_t>(rank, 1, sorted.size());
    return sorted[rank - 1];
}

std::vector<BurstWindow>
parseBurstList(const std::string &csv)
{
    std::vector<BurstWindow> out;
    std::string item;
    std::istringstream iss(csv);
    while (std::getline(iss, item, ',')) {
        if (item.find_first_not_of(" \t") == std::string::npos)
            continue;
        BurstWindow w;
        char tail = 0;
        if (std::sscanf(item.c_str(), "%lf:%lf:%lf%c", &w.begin,
                        &w.end, &w.multiplier, &tail)
            != 3)
            fatal("serve: bad burst window '%s' "
                  "(want begin:end:multiplier)",
                  item.c_str());
        if (!(w.begin >= 0.0 && w.begin < w.end && w.end <= 1.0)
            || w.multiplier <= 0.0)
            fatal("serve: burst window '%s' out of range "
                  "(0 <= begin < end <= 1, multiplier > 0)",
                  item.c_str());
        out.push_back(w);
    }
    if (out.empty())
        fatal("serve: empty burst list");
    return out;
}

std::string
formatLoad(double load)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", load);
    return buf;
}

} // namespace hcc::serve
