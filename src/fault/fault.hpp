/**
 * @file
 * Deterministic fault injection across the CC stack.
 *
 * The paper's pipeline (Sec. VI-A) has real failure modes the base
 * cost model never exercises: an AES-GCM tag mismatch on the bounce
 * path, a failed SPDM handshake, bounce-slot exhaustion, PCIe replay,
 * TDX EPT-violation storms, UVM thrashing.  Each is a *recoverable*
 * event with a latency cost (retry, backoff, re-attestation,
 * stall-and-drain), and the point of this subsystem is to measure
 * that cost: an Injector owns one forked PCG32 stream per fault site,
 * draws a Bernoulli trial wherever the site is wired into the stack,
 * and accounts every recovery as `fault.*` counters plus (on the
 * channel path) trace spans.
 *
 * Determinism contract:
 *  - A site with rate 0 draws nothing, creates no stats and records
 *    no trace events — an all-rates-zero run is byte-identical to a
 *    build without the subsystem.
 *  - Each site forks its own stream from (seed, site index), so
 *    arming one site never perturbs the draw sequence of another.
 *  - The Injector lives per Context; parallel campaign cells never
 *    share one, so schedules are independent of worker count.
 */

#ifndef HCC_FAULT_FAULT_HPP
#define HCC_FAULT_FAULT_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "obs/registry.hpp"

namespace hcc::trace { class Tracer; }

namespace hcc::fault {

/** The injectable fault sites, one per wired component. */
enum class Site
{
    ChannelTagMismatch, //!< AES-GCM auth failure on a bounce chunk
    SpdmHandshake,      //!< SPDM session establishment failure
    BounceExhausted,    //!< bounce-buffer slots all busy; drain first
    PcieReplay,         //!< link-layer replay: payload retransmitted
    TdxEptStorm,        //!< EPT-violation storm: extra guest exits
    UvmThrash,          //!< migrated pages faulted right back
    SpecMiss,           //!< speculative IV prediction missed; re-seal
};

inline constexpr int kSiteCount = 7;

/** All sites, in enum order. */
const std::array<Site, kSiteCount> &allSites();

/** Canonical dotted name, e.g. "channel.tag_mismatch". */
const char *siteName(Site site);

/** Parse a dotted site name; nullopt when unknown. */
std::optional<Site> parseSite(const std::string &name);

/*
 * Recovery-model constants.  These live here rather than in
 * calibration.hpp because they are not measured host parameters: they
 * model the recovery *policy* (attempt budgets, backoff schedule) and
 * representative penalty latencies.
 */

/** Transfer-chunk attempts before the channel gives up (>= 1). */
inline constexpr int kMaxTransferAttempts = 3;
/** SPDM handshake attempts before session setup is fatal. */
inline constexpr int kMaxHandshakeAttempts = 3;
/** First retry backoff; doubles per subsequent attempt. */
inline constexpr SimTime kRetryBackoffBase = time::us(50.0);
/** Fixed link-layer penalty per PCIe replay, on top of the resend. */
inline constexpr SimTime kPcieReplayLatency = time::us(10.0);
/** Extra guest<->host round trips charged by one EPT storm. */
inline constexpr int kEptStormExits = 32;

/** Exponential backoff before retry @p attempt (1-based). */
constexpr SimTime
retryBackoff(int attempt)
{
    return kRetryBackoffBase * (SimTime{1} << (attempt - 1));
}

/** Per-site injection rates in [0, 1]; all zero by default. */
struct FaultConfig
{
    std::array<double, kSiteCount> rates{};

    double
    rate(Site site) const
    {
        return rates[static_cast<std::size_t>(site)];
    }

    void
    set(Site site, double rate)
    {
        rates[static_cast<std::size_t>(site)] = rate;
    }

    /** True when any site is armed. */
    bool
    any() const
    {
        for (const double r : rates)
            if (r > 0.0)
                return true;
        return false;
    }
};

/**
 * Parse a fault spec: comma-separated "site=rate" pairs, e.g.
 * "channel.tag_mismatch=0.05,pcie.replay=0.01".  Rates must be in
 * [0, 1].  An empty spec yields the all-zero config.
 */
Result<FaultConfig> parseFaultSpec(const std::string &spec);

/** Hook over the staged (encrypted) bounce-buffer bytes of a chunk. */
using StageHook = std::function<void(std::vector<std::uint8_t> &)>;

/**
 * Seed-driven fault source shared by all wired components of one
 * Context.  Not thread-safe — like the Registry it feeds, one
 * Injector belongs to one simulation cell.
 */
class Injector
{
  public:
    /**
     * @param config per-site rates; unarmed sites never draw.
     * @param seed forked per site, independent of component streams.
     * @param obs optional sink; `fault.<site>.*` counters are created
     *        lazily on first injection so unarmed runs keep their
     *        stats dumps byte-identical.
     */
    explicit Injector(const FaultConfig &config = FaultConfig{},
                      std::uint64_t seed = 1,
                      obs::Registry *obs = nullptr);

    /**
     * Bernoulli trial at @p site's configured rate.  Unarmed sites
     * return false without drawing.  Counts an injection on success.
     */
    bool shouldInject(Site site);

    /** Account a completed recovery and its added latency. */
    void recordRecovery(Site site, SimTime retry_time);

    /**
     * Account a recovery with a known timeline position; also records
     * an EventKind::Fault span "fault.<site>" when a tracer is
     * attached.
     */
    void recordRecoverySpan(Site site, SimTime start, SimTime end);

    /** Attach the trace sink recovery spans are recorded into. */
    void attachTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /**
     * Deterministically corrupt one byte of @p data (the modeled
     * effect of a tag-mismatch fault on a staged chunk).  Uses a
     * dedicated stream so it never perturbs site draws.
     */
    void corrupt(std::vector<std::uint8_t> &data);

    /**
     * Install a hook that observes or mutates every staged chunk on
     * the functional transfer path — the public injection point that
     * replaced SecureChannel's test-only tamper parameter.  Integrity
     * tests and fault campaigns share this mechanism.
     */
    void setStageHook(StageHook hook) { stage_hook_ = std::move(hook); }

    const StageHook &stageHook() const { return stage_hook_; }

    bool armed(Site site) const { return state(site).rate > 0.0; }

    std::uint64_t
    injected(Site site) const
    {
        return state(site).injected;
    }

    std::uint64_t
    recovered(Site site) const
    {
        return state(site).recovered;
    }

    SimTime
    retryTime(Site site) const
    {
        return state(site).retry_time;
    }

    const FaultConfig &config() const { return config_; }

    /**
     * Re-arm the injector with a new config and seed, exactly as if
     * it had been constructed with them: all site streams and the
     * corruption stream are re-forked from @p seed, injection counts
     * reset, and the lazy `fault.<site>.*` counter pointers cleared
     * (they are re-resolved on first injection).  Used by campaign
     * forking to arm a cell's faults at the fork point so every cell
     * shares one unarmed warmup prefix.
     */
    void arm(const FaultConfig &config, std::uint64_t seed);

    /**
     * Snapshot support: config, per-site rate/stream/counts and the
     * corruption stream.  Cached counter pointers are nulled on load;
     * they re-resolve lazily against the (restored) registry.
     */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        ar.pod(config_.rates);
        for (auto &st : sites_) {
            ar.pod(st.rate);
            st.rng.snapState(ar);
            ar.pod(st.injected);
            ar.pod(st.recovered);
            ar.pod(st.retry_time);
            if constexpr (Ar::kLoading) {
                st.obs_injected = nullptr;
                st.obs_recovered = nullptr;
                st.obs_retry_time_ps = nullptr;
            }
        }
        corrupt_rng_.snapState(ar);
    }

  private:
    struct SiteState
    {
        double rate = 0.0;
        Rng rng{0, 0};
        std::uint64_t injected = 0;
        std::uint64_t recovered = 0;
        SimTime retry_time = 0;
        obs::Counter *obs_injected = nullptr;
        obs::Counter *obs_recovered = nullptr;
        obs::Counter *obs_retry_time_ps = nullptr;
    };

    SiteState &state(Site site) { return sites_[static_cast<std::size_t>(site)]; }
    const SiteState &
    state(Site site) const
    {
        return sites_[static_cast<std::size_t>(site)];
    }

    /** Create the lazy counters for @p site on first use. */
    void ensureCounters(Site site, SiteState &st);

    FaultConfig config_;
    std::array<SiteState, kSiteCount> sites_;
    Rng corrupt_rng_;
    obs::Registry *obs_ = nullptr;
    trace::Tracer *tracer_ = nullptr;
    StageHook stage_hook_;
};

} // namespace hcc::fault

#endif // HCC_FAULT_FAULT_HPP
