#include "fault/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <utility>

#include "common/log.hpp"
#include "obs/report.hpp"
#include "runtime/context.hpp"

namespace hcc::fault {

namespace {

/** Shortest deterministic rendering of a rate/scale factor. */
std::string
formatDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/** RFC-4180 field quoting (quote when a comma/quote/newline occurs). */
std::string
csvField(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

/** JSON string escaping for cell labels and error messages. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

double
elapsedUs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Read a counter out of a finished cell's registry without creating
 * it: rate-zero cells never inject, so their registries must stay
 * untouched for the byte-identity guarantee.
 */
std::uint64_t
counterValue(const obs::Registry &reg, const std::string &name)
{
    const auto it = reg.entries().find(name);
    if (it == reg.entries().end() || !it->second.counter)
        return 0;
    return it->second.counter->value();
}

} // namespace

std::size_t
CampaignSpec::cellCount() const
{
    return overlaps.size() * seeds.size()
        * (1 + sites.size() * rates.size());
}

std::string
CampaignCell::label(const CampaignSpec &spec) const
{
    std::string out = spec.app;
    if (baseline) {
        out += ".baseline";
    } else {
        out += ".";
        out += siteName(site);
        out += ".r" + formatDouble(rate);
    }
    out += ".s" + std::to_string(seed);
    // Single-tier `none` campaigns keep their historical labels.
    if (overlap != tee::OverlapMode::None) {
        out += ".";
        out += tee::overlapModeName(overlap);
    }
    return out;
}

std::size_t
CampaignResult::failures() const
{
    std::size_t n = 0;
    for (const auto &c : cells)
        n += c.ok ? 0 : 1;
    return n;
}

std::vector<CampaignCell>
expandCampaign(const CampaignSpec &spec)
{
    std::vector<CampaignCell> cells;
    cells.reserve(spec.cellCount());
    for (tee::OverlapMode tier : spec.overlaps) {
        for (std::uint64_t seed : spec.seeds) {
            CampaignCell base;
            base.index = cells.size();
            base.baseline = true;
            base.seed = seed;
            base.overlap = tier;
            cells.push_back(base);
            for (Site site : spec.sites) {
                for (double rate : spec.rates) {
                    CampaignCell cell;
                    cell.index = cells.size();
                    cell.site = site;
                    cell.rate = rate;
                    cell.seed = seed;
                    cell.overlap = tier;
                    cells.push_back(cell);
                }
            }
        }
    }
    return cells;
}

CampaignResult
runFaultCampaign(const CampaignSpec &spec, int jobs,
                 obs::Registry *campaign_obs)
{
    if (spec.sites.empty())
        fatal("fault campaign needs at least one site");
    if (spec.rates.empty())
        fatal("fault campaign needs at least one rate");
    if (spec.seeds.empty())
        fatal("fault campaign needs at least one seed");
    if (spec.overlaps.empty())
        fatal("fault campaign needs at least one overlap tier");
    for (double rate : spec.rates)
        if (rate <= 0.0 || rate > 1.0)
            fatal("campaign rate %g out of (0, 1]", rate);

    const auto cells = expandCampaign(spec);
    // Finish suite registration on this thread before workers look
    // apps up (same reasoning as runSweep()).
    workloads::WorkloadRegistry::instance();

    CampaignResult result;
    result.spec = spec;
    result.jobs = jobs < 1 ? 1 : jobs;
    result.cells.resize(cells.size());

    struct Shard
    {
        snap::ForkGroupSpec group;
        std::vector<std::size_t> indices;
    };
    std::vector<Shard> shards;
    const std::size_t per_group =
        1 + spec.sites.size() * spec.rates.size();
    const std::size_t per_tier = spec.seeds.size() * per_group;

    auto baseGroup = [&](tee::OverlapMode tier) {
        snap::ForkGroupSpec group;
        group.app = spec.app;
        group.sys.cc = true;
        group.sys.channel.crypto_workers = spec.crypto_workers;
        group.sys.channel.tee_io = spec.tee_io;
        group.sys.channel.overlap = tier;
        group.params.uvm = spec.uvm;
        group.params.scale = spec.scale;
        group.snapshot_budget_bytes = spec.snapshot_budget_bytes;
        return group;
    };

    if (spec.fork_point.mode != snap::ForkPoint::Mode::None) {
        // Split modes: one snapshot tree per overlap tier.  The
        // tier's whole (seed x site x rate) block forks off one
        // prefix simulated under a seed-independent identity seed;
        // every cell carries a Reseed arm that switches the restored
        // state to its own seed at the fork point, then arms its
        // faults (cross-seed prefix sharing).  The cold control
        // (--no-snapshot) replays the identical derivation inside
        // runForkGroup, so grouping must not depend on the snapshot
        // flag.
        for (std::size_t t = 0; t < spec.overlaps.size(); ++t) {
            Shard shard;
            shard.group = baseGroup(spec.overlaps[t]);
            const std::uint64_t ident = snap::identitySeed(
                spec.app, shard.group.sys, shard.group.params);
            shard.group.sys.seed = ident;
            shard.group.params.seed = ident;
            const std::size_t begin = t * per_tier;
            for (std::size_t i = begin; i < begin + per_tier; ++i) {
                snap::ForkCell fork_cell;
                snap::ForkArm arm;
                arm.kind = snap::ForkArm::Kind::Reseed;
                arm.seed = cells[i].seed;
                fork_cell.arms.push_back(arm);
                if (!cells[i].baseline)
                    fork_cell.faults.set(cells[i].site,
                                         cells[i].rate);
                shard.group.cells.push_back(std::move(fork_cell));
                shard.indices.push_back(i);
            }
            shards.push_back(std::move(shard));
        }
    } else {
        // Legacy mode: group by (tier, seed) — every cell of one
        // group shares its entire unfaulted schedule.  When the pool
        // is wider than the group count, groups split into contiguous
        // shards — each shard redoes the prefix, trading some replay
        // savings for parallelism.  Cell outputs are a pure function
        // of the cell spec either way, so sharding (and therefore
        // --jobs) never changes a byte of output.
        const std::size_t n_groups =
            spec.overlaps.size() * spec.seeds.size();
        const std::size_t shards_per_group = std::min(
            per_group,
            std::max<std::size_t>(
                1, static_cast<std::size_t>(result.jobs) / n_groups));
        const std::size_t chunk =
            (per_group + shards_per_group - 1) / shards_per_group;
        for (std::size_t g = 0; g < n_groups; ++g) {
            const std::size_t begin = g * per_group;
            const std::size_t end = begin + per_group;
            const tee::OverlapMode tier =
                spec.overlaps[g / spec.seeds.size()];
            const std::uint64_t seed =
                spec.seeds[g % spec.seeds.size()];
            for (std::size_t s = begin; s < end; s += chunk) {
                Shard shard;
                shard.group = baseGroup(tier);
                shard.group.sys.seed = seed;
                shard.group.params.seed = seed;
                for (std::size_t i = s; i < std::min(end, s + chunk);
                     ++i) {
                    snap::ForkCell fork_cell;
                    if (!cells[i].baseline)
                        fork_cell.faults.set(cells[i].site,
                                             cells[i].rate);
                    shard.group.cells.push_back(fork_cell);
                    shard.indices.push_back(i);
                }
                shards.push_back(std::move(shard));
            }
        }
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<snap::ForkGroupOutcome> outcomes(shards.size());
    result.pool = runIndexed(
        shards.size(), result.jobs, [&](std::size_t si) {
            outcomes[si] = snap::runForkGroup(
                shards[si].group, spec.fork_point, spec.no_snapshot);
        });
    result.wall_us = elapsedUs(start);

    for (std::size_t si = 0; si < shards.size(); ++si) {
        result.snapshot_hits += outcomes[si].snapshot_hits;
        result.peak_resident_bytes =
            std::max(result.peak_resident_bytes,
                     outcomes[si].peak_resident_bytes);
        for (std::size_t j = 0; j < shards[si].indices.size(); ++j) {
            const std::size_t idx = shards[si].indices[j];
            auto &cell_outcome = outcomes[si].cells[j];
            CampaignCellResult &out = result.cells[idx];
            out.cell = cells[idx];
            out.ok = cell_outcome.ok;
            out.error = std::move(cell_outcome.error);
            out.result = std::move(cell_outcome.result);
            out.wall_us = cell_outcome.wall_us;
        }
    }

    // Post-pool, main-thread: pull the fault counters out of each
    // cell and anchor slowdowns to the same-tier, same-seed baseline.
    std::map<std::pair<int, std::uint64_t>, SimTime> baseline_e2e;
    for (const auto &c : result.cells)
        if (c.ok && c.cell.baseline)
            baseline_e2e[{static_cast<int>(c.cell.overlap),
                          c.cell.seed}] = c.result.end_to_end;
    for (auto &c : result.cells) {
        if (!c.ok)
            continue;
        if (!c.cell.baseline && c.result.stats) {
            const std::string prefix =
                std::string("fault.") + siteName(c.cell.site);
            const auto &reg = *c.result.stats;
            c.injected = counterValue(reg, prefix + ".injected");
            c.recovered = counterValue(reg, prefix + ".recovered");
            c.retry_time_ps =
                counterValue(reg, prefix + ".retry_time_ps");
        }
        const auto it = baseline_e2e.find(
            {static_cast<int>(c.cell.overlap), c.cell.seed});
        if (it != baseline_e2e.end() && it->second > 0)
            c.slowdown = static_cast<double>(c.result.end_to_end)
                / static_cast<double>(it->second);
    }

    if (campaign_obs != nullptr) {
        // Post-join, caller's thread only: gauges are not
        // thread-safe by design.  host.* wall-clock telemetry,
        // excluded from deterministic dumps.
        campaign_obs->gauge("host.sweep.snapshot_hits")
            .set(static_cast<std::int64_t>(result.snapshot_hits));
        campaign_obs->gauge("host.sweep.snapshot_resident_bytes")
            .set(static_cast<std::int64_t>(
                result.peak_resident_bytes));
    }
    return result;
}

void
writeCampaignCsv(const CampaignResult &result, std::ostream &os)
{
    os << "index,label,site,rate,seed,status,end_to_end_ps,slowdown,"
          "injected,recovered,retry_time_ps,bottleneck,"
          "critical_path_ps,error\n";
    for (const auto &c : result.cells) {
        os << c.cell.index << ','
           << csvField(c.cell.label(result.spec)) << ','
           << (c.cell.baseline ? "baseline" : siteName(c.cell.site))
           << ',' << formatDouble(c.cell.rate) << ',' << c.cell.seed
           << ',' << (c.ok ? "ok" : "failed") << ',';
        if (c.ok) {
            char slow[32];
            std::snprintf(slow, sizeof(slow), "%.6f", c.slowdown);
            os << c.result.end_to_end << ',' << slow << ','
               << c.injected << ',' << c.recovered << ','
               << c.retry_time_ps << ','
               << trace::bottleneckName(c.result.critical.bottleneck)
               << ',' << c.result.critical.on_path_ps << ',';
        } else {
            os << ",,,,,,,";
        }
        os << csvField(c.error) << '\n';
    }
}

void
writeCampaignJson(const CampaignResult &result, std::ostream &os)
{
    os << "[\n";
    bool first = true;
    for (const auto &c : result.cells) {
        os << (first ? "" : ",\n");
        first = false;
        os << "  {\"index\": " << c.cell.index << ", \"label\": \""
           << jsonEscape(c.cell.label(result.spec))
           << "\", \"site\": \""
           << (c.cell.baseline ? "baseline"
                               : siteName(c.cell.site))
           << "\", \"rate\": " << formatDouble(c.cell.rate)
           << ", \"seed\": " << c.cell.seed << ", \"ok\": "
           << (c.ok ? "true" : "false");
        if (c.ok) {
            char slow[32];
            std::snprintf(slow, sizeof(slow), "%.6f", c.slowdown);
            os << ", \"end_to_end_ps\": " << c.result.end_to_end
               << ", \"slowdown\": " << slow
               << ", \"injected\": " << c.injected
               << ", \"recovered\": " << c.recovered
               << ", \"retry_time_ps\": " << c.retry_time_ps
               << ", \"bottleneck\": \""
               << trace::bottleneckName(c.result.critical.bottleneck)
               << "\", \"critical_path_ps\": "
               << c.result.critical.on_path_ps;
        } else {
            os << ", \"error\": \"" << jsonEscape(c.error) << "\"";
        }
        os << "}";
    }
    os << "\n]\n";
}

void
writeCampaignStats(const CampaignResult &result, std::ostream &os)
{
    obs::ReportWriter report;
    for (const auto &c : result.cells) {
        if (!c.ok)
            continue;
        report.addSection(
            "cell" + std::to_string(c.cell.index) + "."
                + c.cell.label(result.spec) + ".",
            c.result.stats.get());
    }
    report.write(os);
}

} // namespace hcc::fault
