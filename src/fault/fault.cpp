#include "fault/fault.hpp"

#include <cstdlib>

#include "common/log.hpp"
#include "trace/tracer.hpp"

namespace hcc::fault {

namespace {

/** Stream salt for the injector's master fork; arbitrary constant. */
constexpr std::uint64_t kFaultStream = 0xfa177;

const char *const kSiteNames[kSiteCount] = {
    "channel.tag_mismatch",
    "spdm.handshake",
    "bounce.exhausted",
    "pcie.replay",
    "tdx.ept_storm",
    "uvm.thrash",
    "spec.miss",
};

} // namespace

const std::array<Site, kSiteCount> &
allSites()
{
    static const std::array<Site, kSiteCount> sites = {
        Site::ChannelTagMismatch, Site::SpdmHandshake,
        Site::BounceExhausted,    Site::PcieReplay,
        Site::TdxEptStorm,        Site::UvmThrash,
        Site::SpecMiss,
    };
    return sites;
}

const char *
siteName(Site site)
{
    return kSiteNames[static_cast<std::size_t>(site)];
}

std::optional<Site>
parseSite(const std::string &name)
{
    for (const Site site : allSites())
        if (name == siteName(site))
            return site;
    return std::nullopt;
}

Result<FaultConfig>
parseFaultSpec(const std::string &spec)
{
    FaultConfig config;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            return errorf(ErrorCode::ParseError,
                          "fault spec item '%s' is not site=rate",
                          item.c_str());
        const std::string name = item.substr(0, eq);
        const auto site = parseSite(name);
        if (!site)
            return errorf(ErrorCode::ParseError,
                          "unknown fault site '%s'", name.c_str());
        const std::string rate_text = item.substr(eq + 1);
        char *end = nullptr;
        const double rate = std::strtod(rate_text.c_str(), &end);
        if (rate_text.empty() || end == nullptr || *end != '\0')
            return errorf(ErrorCode::ParseError,
                          "bad fault rate '%s' for site '%s'",
                          rate_text.c_str(), name.c_str());
        if (rate < 0.0 || rate > 1.0)
            return errorf(ErrorCode::InvalidArgument,
                          "fault rate %g for site '%s' outside [0, 1]",
                          rate, name.c_str());
        config.set(*site, rate);
    }
    return config;
}

Injector::Injector(const FaultConfig &config, std::uint64_t seed,
                   obs::Registry *obs)
    : config_(config), corrupt_rng_(0, 0), obs_(obs)
{
    arm(config, seed);
}

void
Injector::arm(const FaultConfig &config, std::uint64_t seed)
{
    config_ = config;
    Rng master(seed, kFaultStream);
    for (int i = 0; i < kSiteCount; ++i) {
        auto &st = sites_[static_cast<std::size_t>(i)];
        st.rate = config_.rates[static_cast<std::size_t>(i)];
        HCC_ASSERT(st.rate >= 0.0 && st.rate <= 1.0,
                   "fault rate outside [0, 1]");
        // Fork unconditionally so adding a site later never reseeds
        // the streams of existing ones.
        st.rng = master.fork(static_cast<std::uint64_t>(i) + 1);
        st.injected = 0;
        st.recovered = 0;
        st.retry_time = 0;
        st.obs_injected = nullptr;
        st.obs_recovered = nullptr;
        st.obs_retry_time_ps = nullptr;
    }
    corrupt_rng_ = master.fork(0xc0ffee);
}

bool
Injector::shouldInject(Site site)
{
    auto &st = state(site);
    if (st.rate <= 0.0)
        return false;
    // uniform() is in [0, 1): rate 1 always fires, rate 0 never.
    if (st.rng.uniform() >= st.rate)
        return false;
    ++st.injected;
    ensureCounters(site, st);
    if (st.obs_injected)
        st.obs_injected->bump(1);
    return true;
}

void
Injector::recordRecovery(Site site, SimTime retry_time)
{
    auto &st = state(site);
    ++st.recovered;
    st.retry_time += retry_time;
    ensureCounters(site, st);
    if (st.obs_recovered) {
        st.obs_recovered->bump(1);
        st.obs_retry_time_ps->bump(
            static_cast<std::uint64_t>(retry_time));
    }
}

void
Injector::recordRecoverySpan(Site site, SimTime start, SimTime end)
{
    recordRecovery(site, end - start);
    if (tracer_) {
        trace::TraceEvent event;
        event.kind = trace::EventKind::Fault;
        event.start = start;
        event.end = end;
        tracer_->record(event,
                        std::string("fault.") + siteName(site));
    }
}

void
Injector::corrupt(std::vector<std::uint8_t> &data)
{
    if (data.empty())
        return;
    const auto pos = static_cast<std::size_t>(
        corrupt_rng_.next64() % data.size());
    const auto bit = static_cast<std::uint8_t>(
        1u << (corrupt_rng_.next32() & 7u));
    data[pos] ^= bit;
}

void
Injector::ensureCounters(Site site, SiteState &st)
{
    if (!obs_ || st.obs_injected)
        return;
    const std::string prefix = std::string("fault.") + siteName(site);
    st.obs_injected = &obs_->counter(prefix + ".injected");
    st.obs_recovered = &obs_->counter(prefix + ".recovered");
    st.obs_retry_time_ps = &obs_->counter(prefix + ".retry_time_ps");
}

} // namespace hcc::fault
