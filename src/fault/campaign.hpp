/**
 * @file
 * Fault-injection campaigns: run one workload across a (site, rate,
 * seed) grid and measure how each injected failure mode stretches the
 * end-to-end time relative to an unfaulted baseline of the same seed.
 *
 * A campaign expands to one rate-zero *baseline* cell per (overlap
 * tier, seed) plus one cell per (site, rate) pair under it, in
 * deterministic input order.  Cells run through the same
 * work-stealing pool as `hccsim sweep` (common/thread_pool.hpp);
 * each cell owns its Context / Registry / Injector, so outputs are
 * byte-identical regardless of the job count.  After the pool joins,
 * each cell's `fault.*` counters are read back out of its stats
 * registry and its slowdown is computed against the same-tier,
 * same-seed baseline.
 *
 * With a non-`none` fork point the cells of one tier form a single
 * snapshot tree: the prefix is simulated once under a
 * seed-independent identity seed, each seed reseeds at the fork
 * point (cross-seed prefix sharing), and each (site, rate) leaf arms
 * its faults on the restored state — so a 10k-cell campaign pays for
 * one prefix per tier instead of one per cell.
 */

#ifndef HCC_FAULT_CAMPAIGN_HPP
#define HCC_FAULT_CAMPAIGN_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "fault/fault.hpp"
#include "obs/registry.hpp"
#include "snap/fork.hpp"
#include "tee/secure_channel.hpp"
#include "workloads/workload.hpp"

namespace hcc::fault {

/** What to run: one app, one shape, a sites x rates x seeds grid. */
struct CampaignSpec
{
    /** Workload name (see `hccsim list`). */
    std::string app = "cnn";
    /** Run the UVM variant of the app. */
    bool uvm = false;
    /** Problem-size multiplier. */
    double scale = 1.0;
    /** Crypto worker threads inside each cell's SecureChannel. */
    int crypto_workers = 1;
    /** Model TEE-I/O (TDISP) instead of bounce-buffer CC. */
    bool tee_io = false;
    /** Channel overlap tiers to exercise; each tier gets its own
     *  baseline + grid block (the spec.miss site only fires in
     *  Speculative mode). */
    std::vector<tee::OverlapMode> overlaps = {tee::OverlapMode::None};
    /** Fault sites to exercise (empty is invalid; the CLI defaults
     *  to allSites()). */
    std::vector<Site> sites;
    /** Per-site injection probabilities to exercise, each in (0,1].
     *  Zero rates are redundant: every seed already gets a baseline
     *  cell. */
    std::vector<double> rates;
    /** Master seeds; each gets its own baseline cell. */
    std::vector<std::uint64_t> seeds;

    /**
     * Where to cut each cell into a shared prefix and a per-cell
     * suffix (snap/fork.hpp).  All cells of one seed share their
     * entire unfaulted schedule, so any non-`none` fork point lets
     * the engine simulate that prefix once per seed and replay only
     * suffixes.  `none` (the default) keeps the original semantics:
     * faults armed at Context construction, every cell simulated in
     * full — note the *arming point* is part of the semantics, so
     * `none` and the split modes are different experiments (see
     * docs/SNAPSHOT.md).
     */
    snap::ForkPoint fork_point;
    /** Run split cells cold instead of snapshot-forking them (the
     *  byte-identity control arm; same outputs, no speedup). */
    bool no_snapshot = false;
    /**
     * Ceiling on resident in-memory snapshot bytes per fork group
     * (0 = unlimited); over it the engine LRU-evicts interior tree
     * snapshots and deterministically rebuilds them on demand.
     */
    std::size_t snapshot_budget_bytes =
        snap::kDefaultSnapshotBudgetBytes;

    /** Per tier: baseline cells + grid cells. */
    std::size_t cellCount() const;
};

/** One run of the campaign grid. */
struct CampaignCell
{
    std::size_t index = 0;
    /** Unfaulted reference run (site/rate are meaningless). */
    bool baseline = false;
    Site site = Site::ChannelTagMismatch;
    double rate = 0.0;
    std::uint64_t seed = 1;
    /** Channel overlap tier this cell runs under. */
    tee::OverlapMode overlap = tee::OverlapMode::None;

    /** "cnn.baseline.s1" / "cnn.channel.tag_mismatch.r0.01.s1"; an
     *  overlap tier other than `none` appends its name, e.g.
     *  "cnn.baseline.s1.speculative". */
    std::string label(const CampaignSpec &spec) const;
};

/** Outcome of one cell. */
struct CampaignCellResult
{
    CampaignCell cell;
    bool ok = false;
    /** FatalError message when !ok. */
    std::string error;
    workloads::WorkloadResult result;

    // Read back from the cell's "fault.<site>.*" counters (zero for
    // baseline cells, whose injector never creates them).
    std::uint64_t injected = 0;
    std::uint64_t recovered = 0;
    std::uint64_t retry_time_ps = 0;

    /** end_to_end / same-seed baseline end_to_end (0 when the
     *  baseline failed or this cell failed). */
    double slowdown = 0.0;

    /** Host wall-clock for this cell, microseconds. */
    double wall_us = 0.0;
};

/** Everything `hccsim faults` reports. */
struct CampaignResult
{
    CampaignSpec spec;
    std::vector<CampaignCellResult> cells;
    int jobs = 1;
    /** Host wall-clock for the whole campaign, microseconds. */
    double wall_us = 0.0;
    ThreadPool::Stats pool;
    /** Cells replayed from an in-memory snapshot (0 in legacy and
     *  cold-split modes). */
    std::size_t snapshot_hits = 0;
    /** High-water mark of resident snapshot bytes over all fork
     *  groups (also published as host.sweep.snapshot_resident_bytes
     *  when a registry is passed to runFaultCampaign). */
    std::size_t peak_resident_bytes = 0;

    std::size_t failures() const;
    bool allOk() const { return failures() == 0; }
};

/** Deterministic cell order: per overlap tier, per seed, baseline
 *  first, then site-major x rate-minor in spec order. */
std::vector<CampaignCell> expandCampaign(const CampaignSpec &spec);

/**
 * Run the whole campaign across @p jobs workers.  Per-cell
 * FatalErrors become failed cells, not process death.  Output is a
 * pure function of @p spec — independent of @p jobs.  Host-side
 * campaign telemetry (peak resident snapshot bytes) is published
 * into @p campaign_obs (may be null) under "host.sweep.*", excluded
 * from deterministic dumps.
 */
CampaignResult runFaultCampaign(const CampaignSpec &spec, int jobs,
                                obs::Registry *campaign_obs = nullptr);

/** One row per cell (stable column set; failed cells keep their
 *  row with empty measurement fields). */
void writeCampaignCsv(const CampaignResult &result, std::ostream &os);

/** Same rows as the CSV, as a JSON array. */
void writeCampaignJson(const CampaignResult &result, std::ostream &os);

/** Merged per-cell stats dump ("cell<i>.<label>." sections), for
 *  stats-diff gating of campaign baselines. */
void writeCampaignStats(const CampaignResult &result, std::ostream &os);

} // namespace hcc::fault

#endif // HCC_FAULT_CAMPAIGN_HPP
