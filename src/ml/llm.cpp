#include "ml/llm.hpp"

#include <algorithm>
#include <cmath>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace hcc::ml {

namespace {

/** Effective dense throughput (TFLOP/s) per backend/format. */
double
effTflops(LlmBackend backend, LlmQuant quant)
{
    const double base =
        backend == LlmBackend::Vllm ? 500.0 : 300.0;
    // AWQ pays a dequantization tax on every GEMM.
    return quant == LlmQuant::Awq4 ? base * 0.72 : base;
}

/** Fixed per-decode-step dequantization overhead for AWQ. */
constexpr SimTime kAwqDequantFixed = time::us(1200.0);

/** Kernel launches per decode step. */
int
launchesPerStep(LlmBackend backend)
{
    // 32 transformer layers: HF runs ~7 kernels per layer; vLLM's
    // fused attention/MLP kernels run ~3.
    return backend == LlmBackend::Vllm ? 96 : 224;
}

} // namespace

Bytes
llmWeightBytes(LlmQuant quant)
{
    if (quant == LlmQuant::Bf16)
        return static_cast<Bytes>(kLlamaParams * 2.0);
    // 4-bit weights + per-group scales/zeros.
    return static_cast<Bytes>(kLlamaParams * 0.5 * 1.12);
}

LlmStepModel
llmStepModel(LlmBackend backend, LlmQuant quant, int batch)
{
    LlmStepModel model;
    model.launches = launchesPerStep(backend);

    // Decode-step device time: memory-bound term (stream all weights
    // once per token) vs compute-bound term (2*P FLOPs per token per
    // sequence), plus AWQ's dequant overhead.
    const SimTime weight_stream =
        transferTime(llmWeightBytes(quant), calib::kHbmGBs);
    const double step_gflop = 2.0 * kLlamaParams * batch / 1e9;
    const double tflops = effTflops(backend, quant);
    const SimTime compute = time::sec(step_gflop / (tflops * 1e3));
    SimTime device_step = std::max(weight_stream, compute);
    if (quant == LlmQuant::Awq4)
        device_step += kAwqDequantFixed;
    model.per_kernel = std::max<SimTime>(
        time::us(2.0), device_step / model.launches);
    return model;
}

SimTime
llmPrefillTime(LlmBackend backend, LlmQuant quant,
               double prompt_tokens)
{
    const double prefill_gflop =
        2.0 * kLlamaParams * prompt_tokens / 1e9;
    const double tflops = effTflops(backend, quant);
    return time::sec(prefill_gflop / (tflops * 1e3));
}

SimTime
llmFrameworkStepCost(LlmBackend backend, int batch)
{
    if (backend == LlmBackend::Vllm) {
        // Continuous batching scheduler: cheap, mildly batch-dep.
        return time::us(400.0) + time::us(2.0) * batch;
    }
    // HF python loop + padding bookkeeping per element.
    return time::us(2500.0) + time::us(18.0) * batch;
}

std::string
llmBackendName(LlmBackend backend)
{
    return backend == LlmBackend::Vllm ? "vLLM" : "HF";
}

std::string
llmQuantName(LlmQuant quant)
{
    return quant == LlmQuant::Awq4 ? "AWQ" : "BF16";
}

void
llmServeSegment(rt::Context &ctx, const LlmConfig &config,
                LlmServeState &state, int to_step)
{
    gpu::KernelDesc decode_kd;
    decode_kd.name = llmBackendName(config.backend) + "_decode";
    decode_kd.duration = state.per_kernel;
    for (int step = state.next_step; step < to_step; ++step) {
        for (int k = 0; k < state.launches; ++k)
            ctx.launchKernel(decode_kd);
        ctx.deviceSynchronize();
        // Sampled token ids come back every step.
        ctx.memcpy(state.token_host, state.token_dev,
                   static_cast<Bytes>(config.batch) * 8);
        state.framework_total +=
            llmFrameworkStepCost(config.backend, config.batch);
    }
    state.next_step = to_step;
}

LlmServeState
llmServePrefix(rt::Context &ctx, const LlmConfig &config,
               int warm_steps)
{
    if (config.batch <= 0 || config.gen_len <= 0)
        fatal("llm serving needs positive batch and generation len");

    const Bytes weights = llmWeightBytes(config.quant);

    LlmServeState state;
    const LlmStepModel step =
        llmStepModel(config.backend, config.quant, config.batch);
    state.launches = step.launches;
    state.per_kernel = step.per_kernel;

    // Device state: weights + KV cache.
    state.weights_dev = ctx.mallocDevice(weights);
    const Bytes kv_bytes = static_cast<Bytes>(config.batch)
        * static_cast<Bytes>(config.prompt_len + config.gen_len)
        * size::kib(128.0) / 1024;  // ~128 B/token/layer x 32 layers
    state.kv_dev = ctx.mallocDevice(std::max<Bytes>(kv_bytes, 4096));

    // Request ingress: prompts cross the host-device boundary.
    const Bytes prompt_bytes = static_cast<Bytes>(config.batch)
        * static_cast<Bytes>(config.prompt_len) * 4;
    state.prompt_host =
        ctx.hostPageable(std::max<Bytes>(prompt_bytes, 4096));
    state.prompt_dev =
        ctx.mallocDevice(std::max<Bytes>(prompt_bytes, 4096));
    state.token_dev = ctx.mallocDevice(4096);
    state.token_host = ctx.hostPageable(4096);

    state.serve_start = ctx.now();
    ctx.memcpy(state.prompt_dev, state.prompt_host,
               state.prompt_dev.bytes);

    // Prefill: one compute-bound pass over the prompt.
    const SimTime prefill = llmPrefillTime(
        config.backend, config.quant,
        static_cast<double>(config.batch) * config.prompt_len);
    {
        gpu::KernelDesc kd;
        kd.name = llmBackendName(config.backend) + "_prefill";
        kd.duration = prefill;
        ctx.launchKernel(kd);
        ctx.deviceSynchronize();
    }

    llmServeSegment(ctx, config, state,
                  std::clamp(warm_steps, 0, config.gen_len));
    return state;
}

LlmResult
llmServeFinish(rt::Context &ctx, const LlmConfig &config,
               LlmServeState state)
{
    llmServeSegment(ctx, config, state, config.gen_len);
    const SimTime total =
        (ctx.now() - state.serve_start) + state.framework_total;

    LlmResult result;
    result.step_time = total / config.gen_len;
    result.tokens_per_s =
        static_cast<double>(config.batch) * config.gen_len
        / time::toSec(total);

    ctx.free(state.weights_dev);
    ctx.free(state.kv_dev);
    ctx.free(state.prompt_host);
    ctx.free(state.prompt_dev);
    ctx.free(state.token_dev);
    ctx.free(state.token_host);
    return result;
}

LlmResult
serveLlm(rt::Context &ctx, const LlmConfig &config)
{
    return llmServeFinish(ctx, config,
                          llmServePrefix(ctx, config, 0));
}

std::vector<LlmResult>
runLlmSweep(const std::vector<LlmSweepCell> &cells, int jobs)
{
    std::vector<LlmResult> results(cells.size());
    runIndexed(cells.size(), jobs, [&](std::size_t i) {
        rt::Context ctx(cells[i].sys);
        results[i] = serveLlm(ctx, cells[i].config);
    });
    return results;
}

} // namespace hcc::ml
