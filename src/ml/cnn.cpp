#include "ml/cnn.hpp"

#include <algorithm>
#include <cmath>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace hcc::ml {

namespace {

/** CIFAR-100 input: 3 x 32 x 32 values per image. */
constexpr Bytes kImageValues = 3 * 32 * 32;

/** FP32 CUDA-core throughput at full occupancy (TFLOP/s). */
constexpr double kFp32PeakTflops = 60.0;

/**
 * Batch at which FP32 utilization reaches half of peak: small
 * batches cannot fill the device.
 */
constexpr double kFp32HalfUtilBatch = 48.0;

/**
 * Tensor-core speedup over FP32 saturates with batch (mixed
 * precision only pays off once the GEMMs are large enough).
 */
constexpr double kAmpMaxSpeedup = 2.6;
constexpr double kAmpHalfBatch = 256.0;

/** Extra kernels AMP inserts (precision casts, loss scaling). */
constexpr double kAmpKernelFactor = 1.35;

/** Per-cast-kernel execution time added by AMP. */
constexpr SimTime kAmpCastKernelKet = time::us(14.0);

/** FP16 end-to-end speedup over FP32 compute (weights + activations
 *  natively half precision). */
constexpr double kFp16ComputeSpeedup = 2.2;

/** Optimizer/loss kernels per step beyond the layer kernels. */
constexpr int kOptimizerKernels = 6;

double
fp32Utilization(int batch)
{
    const double b = static_cast<double>(batch);
    return b / (b + kFp32HalfUtilBatch);
}

double
ampSpeedup(int batch)
{
    const double b = static_cast<double>(batch);
    return 1.0 + (kAmpMaxSpeedup - 1.0) * b / (b + kAmpHalfBatch);
}

} // namespace

std::string
cnnModelName(CnnModel model)
{
    switch (model) {
      case CnnModel::Vgg16: return "VGG16";
      case CnnModel::ResNet50: return "ResNet50";
      case CnnModel::MobileNetV2: return "MobileNetV2";
      case CnnModel::SqueezeNet: return "SqueezeNet";
      case CnnModel::Attention92: return "Attention92";
      case CnnModel::InceptionV4: return "Inception-v4";
    }
    return "?";
}

std::string
precisionName(Precision precision)
{
    switch (precision) {
      case Precision::Fp32: return "FP32";
      case Precision::Amp: return "AMP";
      case Precision::Fp16: return "FP16";
    }
    return "?";
}

const std::vector<CnnModel> &
allCnnModels()
{
    static const std::vector<CnnModel> models = {
        CnnModel::Vgg16, CnnModel::ResNet50, CnnModel::MobileNetV2,
        CnnModel::SqueezeNet, CnnModel::Attention92,
        CnnModel::InceptionV4,
    };
    return models;
}

const CnnModelSpec &
cnnModelSpec(CnnModel model)
{
    // {fwd+bwd GFLOP/image on 32x32 input, kernels/step, params}.
    // fwd+bwd ~ 3x forward FLOPs.
    static const CnnModelSpec vgg{1.00, 180, size::mib(58)};
    static const CnnModelSpec resnet{0.39, 420, size::mib(94)};
    static const CnnModelSpec mobilenet{0.25, 360, size::mib(14)};
    static const CnnModelSpec squeezenet{0.22, 130, size::mib(5)};
    static const CnnModelSpec attention{0.72, 540, size::mib(200)};
    static const CnnModelSpec inception{0.90, 640, size::mib(160)};
    switch (model) {
      case CnnModel::Vgg16: return vgg;
      case CnnModel::ResNet50: return resnet;
      case CnnModel::MobileNetV2: return mobilenet;
      case CnnModel::SqueezeNet: return squeezenet;
      case CnnModel::Attention92: return attention;
      case CnnModel::InceptionV4: return inception;
    }
    panic("unreachable cnn model");
}

namespace {

/** One training step (warm-up and steady-state are identical). */
void
cnnStep(rt::Context &ctx, const CnnTrainConfig &config,
        CnnTrainState &state)
{
    // Prefetch the next batch while this step computes.
    auto &next = state.use_a ? state.images_dev_b
                             : state.images_dev_a;
    ctx.memcpyAsync(next, state.images_host, state.batch_bytes,
                    *state.copy_stream);
    state.use_a = !state.use_a;
    const std::string kname = cnnModelName(config.model) + "_layer";
    const std::string oname = cnnModelName(config.model) + "_opt";
    for (int k = 0; k < state.layer_kernels; ++k) {
        gpu::KernelDesc kd;
        kd.name = kname;
        kd.duration = state.per_kernel;
        ctx.launchKernel(kd);
    }
    for (int k = 0; k < kOptimizerKernels; ++k) {
        gpu::KernelDesc kd;
        kd.name = oname;
        kd.duration = time::us(25.0);
        ctx.launchKernel(kd);
    }
    ctx.deviceSynchronize();
    ctx.memcpy(state.loss_host, state.loss_dev, 4096);
}

} // namespace

void
cnnTrainSegment(rt::Context &ctx, const CnnTrainConfig &config,
                CnnTrainState &state, int to_step)
{
    for (int s = state.next_step; s < to_step; ++s)
        cnnStep(ctx, config, state);
    state.next_step = to_step;
}

CnnTrainState
cnnTrainPrefix(rt::Context &ctx, const CnnTrainConfig &config,
               int warm_steps)
{
    if (config.batch_size <= 0 || config.steps <= 0)
        fatal("cnn training needs positive batch size and steps");
    const auto &spec = cnnModelSpec(config.model);

    CnnTrainState state;
    // Input payload: FP32 by default; FP16 halves it (quantized
    // pipeline feeds half-precision tensors end to end).
    const Bytes value_bytes = config.precision == Precision::Fp16
        ? 2 : 4;
    state.batch_bytes = kImageValues * value_bytes
        * static_cast<Bytes>(config.batch_size);

    // Step compute time from the throughput model.
    const double gflop = spec.gflop_per_image
        * static_cast<double>(config.batch_size);
    double tflops = kFp32PeakTflops * fp32Utilization(config.batch_size);
    state.layer_kernels = spec.kernels_per_step;
    SimTime cast_time = 0;
    if (config.precision == Precision::Amp) {
        tflops *= ampSpeedup(config.batch_size);
        const int cast_kernels = static_cast<int>(
            spec.kernels_per_step * (kAmpKernelFactor - 1.0));
        state.layer_kernels += cast_kernels;
        cast_time = kAmpCastKernelKet * cast_kernels;
    } else if (config.precision == Precision::Fp16) {
        tflops *= kFp16ComputeSpeedup;
    }
    const SimTime compute = time::sec(gflop / (tflops * 1e3));
    state.per_kernel =
        std::max<SimTime>(time::us(2.0),
                          (compute + cast_time) / state.layer_kernels);

    // Device-side state: double-buffered batch staging (the
    // dataloader prefetches the next batch over a copy stream while
    // the current step computes, PyTorch pin_memory+non_blocking
    // style).
    state.images_host = ctx.mallocHost(state.batch_bytes);
    state.images_dev_a = ctx.mallocDevice(state.batch_bytes);
    state.images_dev_b = ctx.mallocDevice(state.batch_bytes);
    state.params = ctx.mallocDevice(spec.param_bytes);
    state.loss_dev = ctx.mallocDevice(4096);
    state.loss_host = ctx.hostPageable(4096);
    state.copy_stream = ctx.createStream();

    // Warm-up step (first-launch effects excluded from steady state).
    cnnStep(ctx, config, state);

    state.steady_start = ctx.now();
    cnnTrainSegment(ctx, config, state,
                    std::clamp(warm_steps, 0, config.steps));
    return state;
}

CnnTrainResult
cnnTrainFinish(rt::Context &ctx, const CnnTrainConfig &config,
               CnnTrainState state)
{
    cnnTrainSegment(ctx, config, state, config.steps);
    const SimTime steady = ctx.now() - state.steady_start;

    CnnTrainResult result;
    result.step_time = steady / config.steps;
    result.throughput = static_cast<double>(config.batch_size)
        / time::toSec(result.step_time);
    const double steps_per_epoch =
        std::ceil(static_cast<double>(kCifarTrainImages)
                  / config.batch_size);
    result.train_time_200_epochs = static_cast<SimTime>(
        static_cast<double>(result.step_time) * steps_per_epoch
        * 200.0);

    ctx.free(state.images_host);
    ctx.free(state.images_dev_a);
    ctx.free(state.images_dev_b);
    ctx.free(state.params);
    ctx.free(state.loss_dev);
    ctx.free(state.loss_host);
    return result;
}

CnnTrainResult
trainCnn(rt::Context &ctx, const CnnTrainConfig &config)
{
    return cnnTrainFinish(ctx, config,
                          cnnTrainPrefix(ctx, config, 0));
}

std::vector<CnnTrainResult>
runCnnSweep(const std::vector<CnnSweepCell> &cells, int jobs)
{
    std::vector<CnnTrainResult> results(cells.size());
    runIndexed(cells.size(), jobs, [&](std::size_t i) {
        rt::Context ctx(cells[i].sys);
        results[i] = trainCnn(ctx, cells[i].config);
    });
    return results;
}

} // namespace hcc::ml
