/**
 * @file
 * CNN training model (Sec. VII-B, Fig. 13).
 *
 * Six CIFAR-100 models are described by per-image compute cost and
 * per-step kernel count; a training step is driven through the real
 * runtime (batch H2D, layer kernel launches, loss readback), so the
 * CC launch and transfer taxes shape the step time exactly as they
 * shape the microbenchmarks.  Precision modes change the arithmetic
 * throughput, the kernel count (AMP inserts cast kernels) and the
 * transferred bytes (FP16 halves the input payload).
 */

#ifndef HCC_ML_CNN_HPP
#define HCC_ML_CNN_HPP

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "runtime/context.hpp"

namespace hcc::ml {

/** The six evaluated models. */
enum class CnnModel
{
    Vgg16,
    ResNet50,
    MobileNetV2,
    SqueezeNet,
    Attention92,
    InceptionV4,
};

/** Training numeric configuration. */
enum class Precision { Fp32, Amp, Fp16 };

std::string cnnModelName(CnnModel model);
std::string precisionName(Precision precision);
const std::vector<CnnModel> &allCnnModels();

/** Static per-model characteristics. */
struct CnnModelSpec
{
    /** Forward+backward compute per image (GFLOP, CIFAR-100 input). */
    double gflop_per_image = 0.0;
    /** Kernel launches per training step at FP32. */
    int kernels_per_step = 0;
    /** Parameter bytes (optimizer state update traffic). */
    Bytes param_bytes = 0;
};

/** Lookup of the calibrated model spec. */
const CnnModelSpec &cnnModelSpec(CnnModel model);

/** One training run's configuration. */
struct CnnTrainConfig
{
    CnnModel model = CnnModel::Vgg16;
    int batch_size = 64;
    Precision precision = Precision::Fp32;
    /** Steps to simulate (steady state is reached quickly). */
    int steps = 30;
};

/** Training measurement. */
struct CnnTrainResult
{
    /** Mean steady-state step time. */
    SimTime step_time = 0;
    /** Images per second. */
    double throughput = 0.0;
    /** Extrapolated time for 200 CIFAR-100 epochs. */
    SimTime train_time_200_epochs = 0;
};

/** Run @p config's training loop in @p ctx and measure. */
CnnTrainResult trainCnn(rt::Context &ctx, const CnnTrainConfig &config);

/**
 * Split-phase training, mirroring the llm trio (llm.hpp): the
 * training loop's state crossing a prefix/suffix cut at a step
 * boundary.  trainCnn() is exactly
 * cnnTrainFinish(ctx, cfg, cnnTrainPrefix(ctx, cfg, 0)).
 */
struct CnnTrainState
{
    /** Per-layer-kernel duration derived from the config. */
    SimTime per_kernel = 0;
    /** Layer (+ AMP cast) kernels per step. */
    int layer_kernels = 0;
    /** Input payload per step. */
    Bytes batch_bytes = 0;
    rt::Buffer images_host, images_dev_a, images_dev_b;
    rt::Buffer params, loss_dev, loss_host;
    /** Dataloader prefetch stream (optional: Stream has no default
     *  construction outside a Context). */
    std::optional<rt::Stream> copy_stream;
    /** Double-buffer flip: which staging buffer the next prefetch
     *  fills. */
    bool use_a = true;
    /** Start of the steady-state window (after the warm-up step). */
    SimTime steady_start = 0;
    /** Next steady-state step to run. */
    int next_step = 0;
};

/** Allocations, the warm-up step and the first @p warm_steps
 *  steady-state steps. */
CnnTrainState cnnTrainPrefix(rt::Context &ctx,
                             const CnnTrainConfig &config,
                             int warm_steps);

/** Advance the training loop in place: steady-state steps
 *  [state.next_step, to_step).  Prefix + segments + finish issues
 *  the identical call sequence as trainCnn(). */
void cnnTrainSegment(rt::Context &ctx, const CnnTrainConfig &config,
                     CnnTrainState &state, int to_step);

/** The remaining steps, result computation and frees. */
CnnTrainResult cnnTrainFinish(rt::Context &ctx,
                              const CnnTrainConfig &config,
                              CnnTrainState state);

/** One cell of a CNN batch sweep: a config and the system to run it
 *  under.  Each cell gets its own rt::Context, so cells are
 *  independent and safe to run on parallel workers. */
struct CnnSweepCell
{
    rt::SystemConfig sys;
    CnnTrainConfig config;
};

/**
 * Train every cell on @p jobs workers (<= 1 = inline on the calling
 * thread).  Results come back in input order regardless of worker
 * scheduling, so callers can index them like the cell list.
 */
std::vector<CnnTrainResult>
runCnnSweep(const std::vector<CnnSweepCell> &cells, int jobs);

/** CIFAR-100 training-set size (for epoch extrapolation). */
constexpr int kCifarTrainImages = 50000;

} // namespace hcc::ml

#endif // HCC_ML_CNN_HPP
