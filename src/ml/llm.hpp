/**
 * @file
 * LLM serving model (Sec. VII-B, Fig. 14): Llama-3-8B inference on
 * two backends (HuggingFace, vLLM) with BF16 or AWQ 4-bit weights.
 *
 * Decode steps are memory-bound at small batch (every token streams
 * the full weight set from HBM — where AWQ's 4x smaller weights win)
 * and compute-bound at large batch (where AWQ's dequantization
 * overhead makes BF16 win back, the paper's batch-64/128 crossover).
 * The serving loop runs through the real runtime so CC launch and
 * I/O taxes apply per decode step; vLLM's fused kernels and
 * continuous batching give it fewer launches and less per-step
 * framework overhead than HF in every configuration.
 */

#ifndef HCC_ML_LLM_HPP
#define HCC_ML_LLM_HPP

#include <string>
#include <vector>

#include "common/units.hpp"
#include "runtime/context.hpp"

namespace hcc::ml {

/** Serving frameworks compared in Fig. 14. */
enum class LlmBackend { HuggingFace, Vllm };

/** Weight formats compared in Fig. 14. */
enum class LlmQuant { Bf16, Awq4 };

std::string llmBackendName(LlmBackend backend);
std::string llmQuantName(LlmQuant quant);

/** One serving configuration. */
struct LlmConfig
{
    LlmBackend backend = LlmBackend::HuggingFace;
    LlmQuant quant = LlmQuant::Bf16;
    /** Concurrent request batch size. */
    int batch = 1;
    /** Prompt tokens per request. */
    int prompt_len = 512;
    /** Generated tokens per request. */
    int gen_len = 64;
};

/** Measured serving throughput. */
struct LlmResult
{
    /** Generated tokens per second across the batch. */
    double tokens_per_s = 0.0;
    /** Mean decode step time. */
    SimTime step_time = 0;
};

// ------------------------------------------------------ model terms
//
// The analytical pieces of the serving model, exposed so the
// closed-loop trio below and the open-loop continuous-batching
// scheduler (serve/) derive decode-step costs from the *same*
// arithmetic: a scheduler iteration at batch b prices exactly like a
// closed-loop decode step at batch b.

/** Weight footprint per format (BF16, or 4-bit + group scales). */
Bytes llmWeightBytes(LlmQuant quant);

/** Per-decode-step launch plan derived from the config. */
struct LlmStepModel
{
    /** Duration of each decode kernel. */
    SimTime per_kernel = 0;
    /** Kernel launches per decode step. */
    int launches = 0;
};

/**
 * Decode-step device time at batch @p batch: memory-bound term
 * (every token streams the full weight set from HBM) vs
 * compute-bound term (2*P FLOPs per token per sequence), plus AWQ's
 * fixed dequantization overhead, split across the backend's launch
 * count (>= 2 us per kernel).
 */
LlmStepModel llmStepModel(LlmBackend backend, LlmQuant quant,
                          int batch);

/** Prefill device time for @p prompt_tokens total prompt tokens
 *  (across the whole batch): one compute-bound pass. */
SimTime llmPrefillTime(LlmBackend backend, LlmQuant quant,
                       double prompt_tokens);

/** Framework (CPU-side scheduling) overhead per decode step. */
SimTime llmFrameworkStepCost(LlmBackend backend, int batch);

/** Run the serving loop for @p config inside @p ctx. */
LlmResult serveLlm(rt::Context &ctx, const LlmConfig &config);

/**
 * Split-phase serving, for the campaign fork engine: the serving
 * loop's state crossing a prefix/suffix cut at a decode-step
 * boundary.  serveLlm() is exactly
 * llmServeFinish(ctx, cfg, llmServePrefix(ctx, cfg, 0)).
 */
struct LlmServeState
{
    /** Per-decode-kernel duration derived from the config. */
    SimTime per_kernel = 0;
    /** Kernel launches per decode step. */
    int launches = 0;
    rt::Buffer weights_dev, kv_dev, prompt_host, prompt_dev;
    rt::Buffer token_dev, token_host;
    SimTime serve_start = 0;
    SimTime framework_total = 0;
    /** Next decode step to run. */
    int next_step = 0;
};

/**
 * Allocations, prompt ingress, prefill and the first @p warm_steps
 * decode steps.
 */
LlmServeState llmServePrefix(rt::Context &ctx, const LlmConfig &config,
                             int warm_steps);

/**
 * Advance the serving loop in place: decode steps
 * [state.next_step, to_step).  Chained fork points cut the session
 * at several step boundaries; prefix + segments + finish issues the
 * identical call sequence as serveLlm().
 */
void llmServeSegment(rt::Context &ctx, const LlmConfig &config,
                     LlmServeState &state, int to_step);

/** The remaining decode steps, result computation and frees. */
LlmResult llmServeFinish(rt::Context &ctx, const LlmConfig &config,
                         LlmServeState state);

/** One cell of an LLM serving sweep (own rt::Context per cell). */
struct LlmSweepCell
{
    rt::SystemConfig sys;
    LlmConfig config;
};

/** Serve every cell on @p jobs workers; results in input order. */
std::vector<LlmResult>
runLlmSweep(const std::vector<LlmSweepCell> &cells, int jobs);

/** Llama-3-8B parameter count. */
constexpr double kLlamaParams = 8.03e9;

} // namespace hcc::ml

#endif // HCC_ML_LLM_HPP
