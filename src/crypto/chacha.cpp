#include "crypto/chacha.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/log.hpp"

namespace hcc::crypto {

namespace {

std::uint32_t
rotl(std::uint32_t x, int n)
{
    return (x << n) | (x >> (32 - n));
}

void
quarterRound(std::uint32_t &a, std::uint32_t &b, std::uint32_t &c,
             std::uint32_t &d)
{
    a += b; d ^= a; d = rotl(d, 16);
    c += d; b ^= c; b = rotl(b, 12);
    a += b; d ^= a; d = rotl(d, 8);
    c += d; b ^= c; b = rotl(b, 7);
}

std::uint32_t
loadLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0])
        | (static_cast<std::uint32_t>(p[1]) << 8)
        | (static_cast<std::uint32_t>(p[2]) << 16)
        | (static_cast<std::uint32_t>(p[3]) << 24);
}

void
storeLe32(std::uint32_t v, std::uint8_t *p)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

void
storeLe64(std::uint64_t v, std::uint8_t *p)
{
    for (int i = 0; i < 8; ++i) {
        p[i] = static_cast<std::uint8_t>(v & 0xff);
        v >>= 8;
    }
}

/** One 64-byte ChaCha20 block. */
void
chachaBlock(const std::uint8_t key[kChaChaKeyLen],
            const std::uint8_t nonce[kChaChaNonceLen],
            std::uint32_t counter, std::uint8_t out[64])
{
    std::uint32_t s[16];
    s[0] = 0x61707865;
    s[1] = 0x3320646e;
    s[2] = 0x79622d32;
    s[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i)
        s[4 + i] = loadLe32(key + 4 * i);
    s[12] = counter;
    for (int i = 0; i < 3; ++i)
        s[13 + i] = loadLe32(nonce + 4 * i);

    std::uint32_t w[16];
    std::memcpy(w, s, sizeof(w));
    for (int round = 0; round < 10; ++round) {
        quarterRound(w[0], w[4], w[8], w[12]);
        quarterRound(w[1], w[5], w[9], w[13]);
        quarterRound(w[2], w[6], w[10], w[14]);
        quarterRound(w[3], w[7], w[11], w[15]);
        quarterRound(w[0], w[5], w[10], w[15]);
        quarterRound(w[1], w[6], w[11], w[12]);
        quarterRound(w[2], w[7], w[8], w[13]);
        quarterRound(w[3], w[4], w[9], w[14]);
    }
    for (int i = 0; i < 16; ++i)
        storeLe32(w[i] + s[i], out + 4 * i);
}

} // namespace

void
chacha20Xor(const std::uint8_t key[kChaChaKeyLen],
            const std::uint8_t nonce[kChaChaNonceLen],
            std::uint32_t counter, std::span<const std::uint8_t> in,
            std::span<std::uint8_t> out)
{
    HCC_ASSERT(out.size() >= in.size(), "chacha output too small");
    std::uint8_t ks[64];
    std::size_t off = 0;
    while (off < in.size()) {
        chachaBlock(key, nonce, counter++, ks);
        const std::size_t n =
            std::min<std::size_t>(64, in.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] = in[off + i] ^ ks[i];
        off += n;
    }
}

void
poly1305(const std::uint8_t key[32],
         std::span<const std::uint8_t> message,
         std::uint8_t tag[kPolyTagLen])
{
    using u128 = unsigned __int128;

    // r with the RFC 8439 clamping; s is the final addend.
    std::uint8_t rb[16];
    std::memcpy(rb, key, 16);
    rb[3] &= 15; rb[7] &= 15; rb[11] &= 15; rb[15] &= 15;
    rb[4] &= 252; rb[8] &= 252; rb[12] &= 252;

    // 26-bit limbs of r.
    const std::uint64_t r0 = loadLe32(rb) & 0x3ffffff;
    const std::uint64_t r1 = (loadLe32(rb + 3) >> 2) & 0x3ffffff;
    const std::uint64_t r2 = (loadLe32(rb + 6) >> 4) & 0x3ffffff;
    const std::uint64_t r3 = (loadLe32(rb + 9) >> 6) & 0x3ffffff;
    const std::uint64_t r4 = (loadLe32(rb + 12) >> 8) & 0x3ffffff;
    const std::uint64_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5,
                        s4 = r4 * 5;

    std::uint64_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

    std::size_t off = 0;
    while (off < message.size()) {
        std::uint8_t block[17] = {};
        const std::size_t n =
            std::min<std::size_t>(16, message.size() - off);
        std::memcpy(block, message.data() + off, n);
        block[n] = 1;  // the 2^(8*n) bit
        off += n;

        h0 += loadLe32(block) & 0x3ffffff;
        h1 += (loadLe32(block + 3) >> 2) & 0x3ffffff;
        h2 += (loadLe32(block + 6) >> 4) & 0x3ffffff;
        h3 += (loadLe32(block + 9) >> 6) & 0x3ffffff;
        h4 += (loadLe32(block + 12) >> 8)
            | (static_cast<std::uint64_t>(block[16]) << 24);

        const u128 d0 = static_cast<u128>(h0) * r0
            + static_cast<u128>(h1) * s4 + static_cast<u128>(h2) * s3
            + static_cast<u128>(h3) * s2 + static_cast<u128>(h4) * s1;
        const u128 d1 = static_cast<u128>(h0) * r1
            + static_cast<u128>(h1) * r0 + static_cast<u128>(h2) * s4
            + static_cast<u128>(h3) * s3 + static_cast<u128>(h4) * s2;
        const u128 d2 = static_cast<u128>(h0) * r2
            + static_cast<u128>(h1) * r1 + static_cast<u128>(h2) * r0
            + static_cast<u128>(h3) * s4 + static_cast<u128>(h4) * s3;
        const u128 d3 = static_cast<u128>(h0) * r3
            + static_cast<u128>(h1) * r2 + static_cast<u128>(h2) * r1
            + static_cast<u128>(h3) * r0 + static_cast<u128>(h4) * s4;
        const u128 d4 = static_cast<u128>(h0) * r4
            + static_cast<u128>(h1) * r3 + static_cast<u128>(h2) * r2
            + static_cast<u128>(h3) * r1 + static_cast<u128>(h4) * r0;

        std::uint64_t c;
        c = static_cast<std::uint64_t>(d0 >> 26);
        h0 = static_cast<std::uint64_t>(d0) & 0x3ffffff;
        const u128 e1 = d1 + c;
        c = static_cast<std::uint64_t>(e1 >> 26);
        h1 = static_cast<std::uint64_t>(e1) & 0x3ffffff;
        const u128 e2 = d2 + c;
        c = static_cast<std::uint64_t>(e2 >> 26);
        h2 = static_cast<std::uint64_t>(e2) & 0x3ffffff;
        const u128 e3 = d3 + c;
        c = static_cast<std::uint64_t>(e3 >> 26);
        h3 = static_cast<std::uint64_t>(e3) & 0x3ffffff;
        const u128 e4 = d4 + c;
        c = static_cast<std::uint64_t>(e4 >> 26);
        h4 = static_cast<std::uint64_t>(e4) & 0x3ffffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x3ffffff;
        h1 += c;
    }

    // Full carry and reduction mod 2^130 - 5.
    std::uint64_t c = h1 >> 26; h1 &= 0x3ffffff;
    h2 += c; c = h2 >> 26; h2 &= 0x3ffffff;
    h3 += c; c = h3 >> 26; h3 &= 0x3ffffff;
    h4 += c; c = h4 >> 26; h4 &= 0x3ffffff;
    h0 += c * 5; c = h0 >> 26; h0 &= 0x3ffffff;
    h1 += c;

    // Compute h + -p and select.
    std::uint64_t g0 = h0 + 5; c = g0 >> 26; g0 &= 0x3ffffff;
    std::uint64_t g1 = h1 + c; c = g1 >> 26; g1 &= 0x3ffffff;
    std::uint64_t g2 = h2 + c; c = g2 >> 26; g2 &= 0x3ffffff;
    std::uint64_t g3 = h3 + c; c = g3 >> 26; g3 &= 0x3ffffff;
    std::uint64_t g4 = h4 + c - (1ull << 26);
    const std::uint64_t mask =
        (g4 >> 63) - 1;  // all-ones iff g4 did not underflow
    h0 = (h0 & ~mask) | (g0 & mask);
    h1 = (h1 & ~mask) | (g1 & mask);
    h2 = (h2 & ~mask) | (g2 & mask);
    h3 = (h3 & ~mask) | (g3 & mask);
    h4 = (h4 & ~mask) | (g4 & mask);

    // Serialize h and add s (mod 2^128).
    const std::uint64_t lo =
        h0 | (h1 << 26) | (h2 << 52);
    const std::uint64_t hi =
        (h2 >> 12) | (h3 << 14) | (h4 << 40);

    std::uint64_t s_lo = 0, s_hi = 0;
    for (int i = 7; i >= 0; --i) {
        s_lo = (s_lo << 8) | key[16 + i];
        s_hi = (s_hi << 8) | key[24 + i];
    }
    const std::uint64_t out_lo = lo + s_lo;
    const std::uint64_t out_hi = hi + s_hi + (out_lo < lo ? 1 : 0);
    storeLe64(out_lo, tag);
    storeLe64(out_hi, tag + 8);
}

ChaChaPoly::ChaChaPoly(std::span<const std::uint8_t> key)
{
    if (key.size() != kChaChaKeyLen)
        fatal("chacha20-poly1305 key must be 32 bytes, got %zu",
              key.size());
    std::copy(key.begin(), key.end(), key_.begin());
}

void
ChaChaPoly::computeTag(const std::uint8_t nonce[kChaChaNonceLen],
                       std::span<const std::uint8_t> aad,
                       std::span<const std::uint8_t> ciphertext,
                       std::uint8_t tag[kPolyTagLen]) const
{
    // One-time Poly1305 key: first 32 bytes of block counter 0.
    std::uint8_t otk_block[64] = {};
    std::uint8_t zeros[64] = {};
    chacha20Xor(key_.data(), nonce, 0, zeros, otk_block);

    // MAC input: aad || pad16 || ct || pad16 || len64(aad)||len64(ct).
    std::vector<std::uint8_t> mac;
    mac.reserve(aad.size() + ciphertext.size() + 48);
    mac.insert(mac.end(), aad.begin(), aad.end());
    mac.resize((mac.size() + 15) / 16 * 16, 0);
    mac.insert(mac.end(), ciphertext.begin(), ciphertext.end());
    mac.resize((mac.size() + 15) / 16 * 16, 0);
    std::uint8_t lens[16];
    storeLe64(aad.size(), lens);
    storeLe64(ciphertext.size(), lens + 8);
    mac.insert(mac.end(), lens, lens + 16);

    poly1305(otk_block, mac, tag);
}

void
ChaChaPoly::seal(const std::uint8_t nonce[kChaChaNonceLen],
                 std::span<const std::uint8_t> aad,
                 std::span<const std::uint8_t> plaintext,
                 std::span<std::uint8_t> ciphertext,
                 std::uint8_t tag[kPolyTagLen]) const
{
    HCC_ASSERT(ciphertext.size() >= plaintext.size(),
               "chachapoly ciphertext buffer too small");
    chacha20Xor(key_.data(), nonce, 1, plaintext,
                ciphertext.subspan(0, plaintext.size()));
    computeTag(nonce, aad, ciphertext.subspan(0, plaintext.size()),
               tag);
}

bool
ChaChaPoly::open(const std::uint8_t nonce[kChaChaNonceLen],
                 std::span<const std::uint8_t> aad,
                 std::span<const std::uint8_t> ciphertext,
                 const std::uint8_t tag[kPolyTagLen],
                 std::span<std::uint8_t> plaintext) const
{
    HCC_ASSERT(plaintext.size() >= ciphertext.size(),
               "chachapoly plaintext buffer too small");
    std::uint8_t expect[kPolyTagLen];
    computeTag(nonce, aad, ciphertext, expect);
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < kPolyTagLen; ++i)
        acc |= static_cast<std::uint8_t>(expect[i] ^ tag[i]);
    if (acc != 0) {
        std::memset(plaintext.data(), 0, plaintext.size());
        return false;
    }
    chacha20Xor(key_.data(), nonce, 1, ciphertext,
                plaintext.subspan(0, ciphertext.size()));
    return true;
}

} // namespace hcc::crypto
