#include "crypto/accel.hpp"

#include "common/log.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define HCC_X86_ACCEL 1
#include <immintrin.h>
#endif

namespace hcc::crypto::accel {

#ifdef HCC_X86_ACCEL

bool
aesniAvailable()
{
    static const bool ok = __builtin_cpu_supports("aes") != 0;
    return ok;
}

bool
pclmulAvailable()
{
    static const bool ok = __builtin_cpu_supports("pclmul") != 0;
    return ok;
}

namespace {

#define HCC_ACCEL_TARGET                                              \
    __attribute__((target("aes,pclmul,ssse3,sse4.1")))

/** One AES encryption of up to four independent blocks in flight. */
HCC_ACCEL_TARGET inline void
encryptWide(const __m128i *ks, int rounds, __m128i *blocks, int n)
{
    for (int i = 0; i < n; ++i)
        blocks[i] = _mm_xor_si128(blocks[i], ks[0]);
    for (int r = 1; r < rounds; ++r) {
        for (int i = 0; i < n; ++i)
            blocks[i] = _mm_aesenc_si128(blocks[i], ks[r]);
    }
    for (int i = 0; i < n; ++i)
        blocks[i] = _mm_aesenclast_si128(blocks[i], ks[rounds]);
}

/** Byte reversal mask: GHASH operands are bit/byte reflected. */
HCC_ACCEL_TARGET inline __m128i
bswapMask()
{
    return _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                        14, 15);
}

/**
 * Carry-less multiply in the GCM field with the bit-reflection
 * fixup (shift-left-1) and reduction modulo x^128+x^7+x^2+x+1, per
 * the Intel carry-less-multiplication white paper.  Operands and
 * result are byte-reflected GHASH field elements.
 */
HCC_ACCEL_TARGET inline __m128i
gfmul(__m128i a, __m128i b)
{
    __m128i tmp3 = _mm_clmulepi64_si128(a, b, 0x00);
    __m128i tmp4 = _mm_clmulepi64_si128(a, b, 0x10);
    __m128i tmp5 = _mm_clmulepi64_si128(a, b, 0x01);
    __m128i tmp6 = _mm_clmulepi64_si128(a, b, 0x11);

    tmp4 = _mm_xor_si128(tmp4, tmp5);
    tmp5 = _mm_slli_si128(tmp4, 8);
    tmp4 = _mm_srli_si128(tmp4, 8);
    tmp3 = _mm_xor_si128(tmp3, tmp5);
    tmp6 = _mm_xor_si128(tmp6, tmp4);

    // Shift the 256-bit product <tmp6:tmp3> left by one bit: the
    // reflected representation computes a*b*x^-127; this makes it
    // the field product.
    __m128i tmp7 = _mm_srli_epi32(tmp3, 31);
    __m128i tmp8 = _mm_srli_epi32(tmp6, 31);
    tmp3 = _mm_slli_epi32(tmp3, 1);
    tmp6 = _mm_slli_epi32(tmp6, 1);
    __m128i tmp9 = _mm_srli_si128(tmp7, 12);
    tmp8 = _mm_slli_si128(tmp8, 4);
    tmp7 = _mm_slli_si128(tmp7, 4);
    tmp3 = _mm_or_si128(tmp3, tmp7);
    tmp6 = _mm_or_si128(tmp6, tmp8);
    tmp6 = _mm_or_si128(tmp6, tmp9);

    // Reduce the low 128 bits.
    tmp7 = _mm_slli_epi32(tmp3, 31);
    tmp8 = _mm_slli_epi32(tmp3, 30);
    tmp9 = _mm_slli_epi32(tmp3, 25);
    tmp7 = _mm_xor_si128(tmp7, tmp8);
    tmp7 = _mm_xor_si128(tmp7, tmp9);
    tmp8 = _mm_srli_si128(tmp7, 4);
    tmp7 = _mm_slli_si128(tmp7, 12);
    tmp3 = _mm_xor_si128(tmp3, tmp7);

    __m128i tmp2 = _mm_srli_epi32(tmp3, 1);
    tmp4 = _mm_srli_epi32(tmp3, 2);
    tmp5 = _mm_srli_epi32(tmp3, 7);
    tmp2 = _mm_xor_si128(tmp2, tmp4);
    tmp2 = _mm_xor_si128(tmp2, tmp5);
    tmp2 = _mm_xor_si128(tmp2, tmp8);
    tmp3 = _mm_xor_si128(tmp3, tmp2);
    return _mm_xor_si128(tmp6, tmp3);
}

HCC_ACCEL_TARGET void
encryptBlocksImpl(const std::uint8_t *rk, int rounds,
                  const std::uint8_t *in, std::uint8_t *out,
                  std::size_t nblocks)
{
    __m128i ks[15];
    for (int r = 0; r <= rounds; ++r) {
        ks[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rk + 16 * r));
    }
    std::size_t i = 0;
    __m128i b[4];
    for (; i + 4 <= nblocks; i += 4) {
        const auto *src =
            reinterpret_cast<const __m128i *>(in + 16 * i);
        for (int k = 0; k < 4; ++k)
            b[k] = _mm_loadu_si128(src + k);
        encryptWide(ks, rounds, b, 4);
        auto *dst = reinterpret_cast<__m128i *>(out + 16 * i);
        for (int k = 0; k < 4; ++k)
            _mm_storeu_si128(dst + k, b[k]);
    }
    for (; i < nblocks; ++i) {
        b[0] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(in + 16 * i));
        encryptWide(ks, rounds, b, 1);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 16 * i),
                         b[0]);
    }
}

HCC_ACCEL_TARGET void
decryptBlockImpl(const std::uint8_t *rk, int rounds,
                 const std::uint8_t *in, std::uint8_t *out)
{
    // Equivalent inverse cipher: AESIMC on the middle round keys,
    // applied in reverse order.
    __m128i dk[15];
    dk[0] = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(rk + 16 * rounds));
    for (int r = 1; r < rounds; ++r) {
        dk[r] = _mm_aesimc_si128(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(rk + 16 * (rounds - r))));
    }
    dk[rounds] =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(rk));

    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i *>(in));
    b = _mm_xor_si128(b, dk[0]);
    for (int r = 1; r < rounds; ++r)
        b = _mm_aesdec_si128(b, dk[r]);
    b = _mm_aesdeclast_si128(b, dk[rounds]);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out), b);
}

HCC_ACCEL_TARGET void
ghashBlocksImpl(const std::uint8_t h[16], std::uint8_t z[16],
                const std::uint8_t *blocks, std::size_t nblocks)
{
    const __m128i mask = bswapMask();
    const __m128i hv = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(h)), mask);
    __m128i acc = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(z)), mask);
    for (std::size_t i = 0; i < nblocks; ++i) {
        const __m128i x = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(blocks + 16 * i)),
            mask);
        acc = gfmul(_mm_xor_si128(acc, x), hv);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i *>(z),
                     _mm_shuffle_epi8(acc, mask));
}

#undef HCC_ACCEL_TARGET

} // namespace

void
aesniEncryptBlocks(const std::uint8_t *rk, int rounds,
                   const std::uint8_t *in, std::uint8_t *out,
                   std::size_t nblocks)
{
    encryptBlocksImpl(rk, rounds, in, out, nblocks);
}

void
aesniDecryptBlock(const std::uint8_t *rk, int rounds,
                  const std::uint8_t *in, std::uint8_t *out)
{
    decryptBlockImpl(rk, rounds, in, out);
}

void
pclmulGhashBlocks(const std::uint8_t h[16], std::uint8_t z[16],
                  const std::uint8_t *blocks, std::size_t nblocks)
{
    ghashBlocksImpl(h, z, blocks, nblocks);
}

#else // !HCC_X86_ACCEL

bool
aesniAvailable()
{
    return false;
}

bool
pclmulAvailable()
{
    return false;
}

void
aesniEncryptBlocks(const std::uint8_t *, int, const std::uint8_t *,
                   std::uint8_t *, std::size_t)
{
    panic("AES-NI kernel reached on a build without x86 support");
}

void
aesniDecryptBlock(const std::uint8_t *, int, const std::uint8_t *,
                  std::uint8_t *)
{
    panic("AES-NI kernel reached on a build without x86 support");
}

void
pclmulGhashBlocks(const std::uint8_t *, std::uint8_t *,
                  const std::uint8_t *, std::size_t)
{
    panic("PCLMUL kernel reached on a build without x86 support");
}

#endif // HCC_X86_ACCEL

} // namespace hcc::crypto::accel
