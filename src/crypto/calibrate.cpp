#include "crypto/calibrate.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/log.hpp"
#include "crypto/chacha.hpp"
#include "crypto/ctr.hpp"
#include "crypto/gcm.hpp"
#include "crypto/ghash.hpp"
#include "crypto/sha256.hpp"
#include "crypto/xts.hpp"

namespace hcc::crypto {

namespace {

using Clock = std::chrono::steady_clock;

/** Buffer size each iteration processes (bulk regime). */
constexpr std::size_t kCalibBuf = 1 << 20;

/**
 * Run @p iter (which processes kCalibBuf bytes per call) until the
 * time budget is spent, at least once.
 */
template <typename Fn>
CalibrationResult
measure(CipherAlgo algo, double per_algo_ms, Fn &&iter)
{
    const auto budget =
        std::chrono::duration<double, std::milli>(per_algo_ms);
    const auto start = Clock::now();
    std::uint64_t bytes = 0;
    do {
        iter();
        bytes += kCalibBuf;
    } while (Clock::now() - start < budget);
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();

    CalibrationResult r;
    r.algo = algo;
    r.bytes = bytes;
    r.seconds = secs;
    r.gbs = secs > 0.0 ? static_cast<double>(bytes) / secs / 1e9 : 0.0;
    return r;
}

/** Deterministic pseudo-random fill (keys, payload). */
void
fill(std::uint8_t *p, std::size_t n, std::uint32_t seed)
{
    std::uint32_t x = seed * 0x9e3779b9u + 1u;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        p[i] = static_cast<std::uint8_t>(x);
    }
}

} // namespace

std::vector<CalibrationResult>
calibrateHostCrypto(double per_algo_ms, obs::Registry *obs)
{
    if (per_algo_ms <= 0.0)
        fatal("calibration budget must be positive, got %g ms",
              per_algo_ms);

    std::vector<std::uint8_t> in(kCalibBuf);
    std::vector<std::uint8_t> out(kCalibBuf);
    fill(in.data(), in.size(), 1);

    std::uint8_t key32[32];
    std::uint8_t key64[64];
    fill(key32, sizeof(key32), 2);
    fill(key64, sizeof(key64), 3);

    std::vector<CalibrationResult> results;
    results.reserve(allCipherAlgos().size());

    for (CipherAlgo algo : allCipherAlgos()) {
        switch (algo) {
          case CipherAlgo::AesGcm128: {
            AesGcm gcm(std::span<const std::uint8_t>(key32, 16));
            GcmIv iv{};
            std::uint8_t tag[kGcmTagLen];
            results.push_back(measure(algo, per_algo_ms, [&] {
                gcm.seal(iv, {}, in, out, tag);
            }));
            break;
          }
          case CipherAlgo::AesGcm256: {
            AesGcm gcm(std::span<const std::uint8_t>(key32, 32));
            GcmIv iv{};
            std::uint8_t tag[kGcmTagLen];
            results.push_back(measure(algo, per_algo_ms, [&] {
                gcm.seal(iv, {}, in, out, tag);
            }));
            break;
          }
          case CipherAlgo::AesCtr128: {
            Aes aes(std::span<const std::uint8_t>(key32, 16));
            std::uint8_t ctr0[16] = {};
            results.push_back(measure(algo, per_algo_ms, [&] {
                ctrXcrypt(aes, ctr0, in, out);
            }));
            break;
          }
          case CipherAlgo::GhashOnly: {
            std::uint8_t h[16];
            fill(h, sizeof(h), 4);
            GhashKey key(h);
            results.push_back(measure(algo, per_algo_ms, [&] {
                Ghash ghash(key);
                ghash.update(in);
                std::uint8_t d[16];
                ghash.digest(d);
            }));
            break;
          }
          case CipherAlgo::AesXts128: {
            AesXts xts(std::span<const std::uint8_t>(key64, 32));
            results.push_back(measure(algo, per_algo_ms, [&] {
                xts.encrypt(0, in, out);
            }));
            break;
          }
          case CipherAlgo::Sha256: {
            results.push_back(measure(algo, per_algo_ms, [&] {
                (void)Sha256::digest(in);
            }));
            break;
          }
          case CipherAlgo::ChaCha20Poly1305: {
            ChaChaPoly aead(std::span<const std::uint8_t>(key32, 32));
            std::uint8_t nonce[kChaChaNonceLen] = {};
            std::uint8_t tag[kPolyTagLen];
            results.push_back(measure(algo, per_algo_ms, [&] {
                aead.seal(nonce, {}, in, out, tag);
            }));
            break;
          }
        }
    }

    if (obs) {
        for (const auto &r : results) {
            obs->gauge("host.crypto." + cipherAlgoName(r.algo) + ".mbs")
                .set(static_cast<std::int64_t>(
                    std::llround(r.gbs * 1000.0)));
        }
    }
    return results;
}

void
applyCalibration(CpuCryptoModel &model,
                 const std::vector<CalibrationResult> &results)
{
    for (const auto &r : results) {
        if (r.gbs > 0.0)
            model.setThroughputOverride(r.algo, r.gbs);
    }
}

} // namespace hcc::crypto
