/**
 * @file
 * Runtime selection of the functional crypto implementation.
 *
 * The simulator charges *modeled* time for bulk crypto, so the
 * functional implementation only has to be correct — but tests and
 * functional benchmarks pay its real host cost, so three tiers exist:
 *
 *  - Scalar: the byte-oriented reference code (S-box + xtime
 *    MixColumns AES, Shoup 4-bit GHASH).  Slowest, simplest, the
 *    cross-check oracle for everything else.
 *  - TTable: portable word-oriented fast path (T-table AES rounds,
 *    Shoup 8-bit GHASH, 4-block CTR batches).  The default on
 *    machines without x86 crypto extensions.
 *  - Aesni: AES-NI + PCLMULQDQ intrinsics, used when the build
 *    target is x86-64 and the CPU reports support.
 *
 * Selection order (first match wins):
 *  1. setActiveCryptoImpl() — the CLI `--crypto-impl` flag or a test.
 *  2. The HCC_CRYPTO_IMPL environment variable
 *     ("scalar" | "ttable" | "aesni").
 *  3. The best implementation the CPU supports.
 *
 * An unsupported or unparsable request falls back to the best
 * supported tier with a warning, so a pinned CI configuration never
 * hard-fails on foreign hardware.  All tiers produce byte-identical
 * output; crypto_test cross-checks them on every vector.
 */

#ifndef HCC_CRYPTO_IMPL_HPP
#define HCC_CRYPTO_IMPL_HPP

#include <optional>
#include <string>
#include <vector>

namespace hcc::crypto {

/** Functional crypto implementation tiers, slowest to fastest. */
enum class CryptoImpl
{
    Scalar,  //!< byte-oriented reference code
    TTable,  //!< portable word-oriented fast path
    Aesni,   //!< AES-NI + PCLMULQDQ intrinsics (x86-64 only)
};

/** Short lower-case name ("scalar" | "ttable" | "aesni"). */
std::string cryptoImplName(CryptoImpl impl);

/** Parse a name as accepted by HCC_CRYPTO_IMPL / --crypto-impl. */
std::optional<CryptoImpl> parseCryptoImpl(const std::string &name);

/** Whether this build + CPU can execute @p impl. */
bool cryptoImplSupported(CryptoImpl impl);

/** All supported implementations, slowest first. */
std::vector<CryptoImpl> supportedCryptoImpls();

/** The fastest supported implementation. */
CryptoImpl bestCryptoImpl();

/**
 * The implementation new crypto contexts bind to (see selection
 * order above).  Existing Aes/AesGcm/... objects keep the
 * implementation they were constructed with.
 */
CryptoImpl activeCryptoImpl();

/**
 * Process-wide override (strongest selection tier); pass
 * std::nullopt to clear it and fall back to env / auto-detection.
 * An unsupported implementation is rejected with a warning and
 * leaves the previous state untouched.
 * @return the implementation now active.
 */
CryptoImpl setActiveCryptoImpl(std::optional<CryptoImpl> impl);

} // namespace hcc::crypto

#endif // HCC_CRYPTO_IMPL_HPP
