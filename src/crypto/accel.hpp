/**
 * @file
 * Hardware-accelerated crypto kernels (CryptoImpl::Aesni tier).
 *
 * Raw-pointer kernels over the byte-level round-key schedule, kept
 * behind a plain interface so aes.cpp / ghash.cpp stay free of
 * intrinsics and target attributes.  On non-x86 builds every
 * availability probe returns false and the kernels panic if reached
 * (dispatch guarantees they are not).
 */

#ifndef HCC_CRYPTO_ACCEL_HPP
#define HCC_CRYPTO_ACCEL_HPP

#include <cstddef>
#include <cstdint>

namespace hcc::crypto::accel {

/** Whether the CPU executes AES-NI (and the build can emit it). */
bool aesniAvailable();

/** Whether the CPU executes PCLMULQDQ. */
bool pclmulAvailable();

/**
 * Encrypt @p nblocks consecutive 16-byte blocks with AES-NI.
 * @param rk byte-level round keys, 16 * (rounds + 1) bytes.
 * @param rounds 10, 12 or 14.
 */
void aesniEncryptBlocks(const std::uint8_t *rk, int rounds,
                        const std::uint8_t *in, std::uint8_t *out,
                        std::size_t nblocks);

/**
 * Decrypt one 16-byte block with AES-NI (equivalent-inverse-cipher
 * round keys are derived on the fly via AESIMC).
 */
void aesniDecryptBlock(const std::uint8_t *rk, int rounds,
                       const std::uint8_t *in, std::uint8_t *out);

/**
 * GHASH absorb of @p nblocks full 16-byte blocks via PCLMULQDQ:
 * for each block X, Z <- (Z ^ X) * H.
 * @param h the hash subkey H (big-endian GCM byte order).
 * @param z the 16-byte accumulator, updated in place (same order).
 */
void pclmulGhashBlocks(const std::uint8_t h[16], std::uint8_t z[16],
                       const std::uint8_t *blocks,
                       std::size_t nblocks);

} // namespace hcc::crypto::accel

#endif // HCC_CRYPTO_ACCEL_HPP
