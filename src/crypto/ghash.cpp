#include "crypto/ghash.hpp"

#include <cstring>

namespace hcc::crypto {

namespace {

std::uint64_t
loadBe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v = (v << 8) | p[i];
    return v;
}

void
storeBe64(std::uint64_t v, std::uint8_t *p)
{
    for (int i = 7; i >= 0; --i) {
        p[i] = static_cast<std::uint8_t>(v & 0xff);
        v >>= 8;
    }
}

// Reduction constants for a 4-bit shift in the reflected GCM field:
// last4[r] = r * 0xE1 << (some alignment), per Shoup's method.
constexpr std::uint64_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460,
    0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560,
    0x9180, 0x8da0, 0xa9c0, 0xb5e0,
};

} // namespace

Ghash::Ghash(const std::uint8_t h[16])
{
    std::uint64_t vh = loadBe64(h);
    std::uint64_t vl = loadBe64(h + 8);

    // Table entry 8 (MSB-of-nibble position) holds H itself.
    hl_[8] = vl;
    hh_[8] = vh;

    for (int i = 4; i > 0; i >>= 1) {
        const std::uint32_t t =
            static_cast<std::uint32_t>(vl & 1) * 0xe1000000u;
        vl = (vh << 63) | (vl >> 1);
        vh = (vh >> 1) ^ (static_cast<std::uint64_t>(t) << 32);
        hl_[static_cast<std::size_t>(i)] = vl;
        hh_[static_cast<std::size_t>(i)] = vh;
    }
    for (int i = 2; i <= 8; i *= 2) {
        for (int j = 1; j < i; ++j) {
            const auto base = static_cast<std::size_t>(i);
            const auto off = static_cast<std::size_t>(j);
            hh_[base + off] = hh_[base] ^ hh_[off];
            hl_[base + off] = hl_[base] ^ hl_[off];
        }
    }
}

void
Ghash::reset()
{
    zl_ = 0;
    zh_ = 0;
}

void
Ghash::mulH()
{
    std::uint8_t x[16];
    storeBe64(zh_, x);
    storeBe64(zl_, x + 8);

    std::uint8_t lo = x[15] & 0xf;
    std::uint64_t zh = hh_[lo];
    std::uint64_t zl = hl_[lo];

    for (int i = 15; i >= 0; --i) {
        lo = x[i] & 0xf;
        const std::uint8_t hi = x[i] >> 4;
        if (i != 15) {
            const std::uint64_t rem = zl & 0xf;
            zl = (zh << 60) | (zl >> 4);
            zh = (zh >> 4) ^ (kLast4[rem] << 48);
            zh ^= hh_[lo];
            zl ^= hl_[lo];
        }
        const std::uint64_t rem = zl & 0xf;
        zl = (zh << 60) | (zl >> 4);
        zh = (zh >> 4) ^ (kLast4[rem] << 48);
        zh ^= hh_[hi];
        zl ^= hl_[hi];
    }
    zh_ = zh;
    zl_ = zl;
}

void
Ghash::updateBlock(const std::uint8_t block[16])
{
    zh_ ^= loadBe64(block);
    zl_ ^= loadBe64(block + 8);
    mulH();
}

void
Ghash::update(std::span<const std::uint8_t> data)
{
    std::size_t off = 0;
    while (off + 16 <= data.size()) {
        updateBlock(data.data() + off);
        off += 16;
    }
    if (off < data.size()) {
        std::uint8_t last[16] = {};
        std::memcpy(last, data.data() + off, data.size() - off);
        updateBlock(last);
    }
}

void
Ghash::digest(std::uint8_t out[16]) const
{
    storeBe64(zh_, out);
    storeBe64(zl_, out + 8);
}

} // namespace hcc::crypto
