#include "crypto/ghash.hpp"

#include <cstring>

#include "crypto/accel.hpp"
#include "crypto/endian.hpp"

namespace hcc::crypto {

namespace {

/**
 * Multiply a field element by x (one right shift in the reflected
 * GCM representation, 0xE1 reduction feedback).
 */
constexpr void
shiftRight1(std::uint64_t &vh, std::uint64_t &vl)
{
    const std::uint64_t lsb = vl & 1;
    vl = (vh << 63) | (vl >> 1);
    vh = (vh >> 1) ^ (lsb ? 0xe100000000000000ULL : 0);
}

// Reduction constants for a 4-bit shift in the reflected GCM field:
// last4[r] = r * 0xE1 << (some alignment), per Shoup's method.
constexpr std::uint64_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460,
    0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560,
    0x9180, 0x8da0, 0xa9c0, 0xb5e0,
};

/**
 * Reduction table for an 8-bit shift: kLast8.t[b] is the feedback
 * XORed into the top of Z when byte b is shifted out, i.e. the high
 * half of b run through eight single-bit reducing shifts.
 */
struct Last8
{
    std::uint64_t t[256];

    constexpr Last8() : t{}
    {
        for (int b = 0; b < 256; ++b) {
            std::uint64_t vh = 0;
            std::uint64_t vl = static_cast<std::uint64_t>(b);
            for (int i = 0; i < 8; ++i)
                shiftRight1(vh, vl);
            t[b] = vh;
        }
    }
};

constexpr Last8 kLast8{};

/**
 * (zh, zl) <- (zh, zl) * K via K's 8-bit tables: a register-only
 * Horner loop over the 16 bytes of Z, least-significant (byte 15)
 * first.  Free function so two independent multiplications can be
 * interleaved by the scheduler (the aggregated pair update).
 */
inline void
mulVia8(const std::array<std::uint64_t, 256> &hh,
        const std::array<std::uint64_t, 256> &hl, std::uint64_t &zh_io,
        std::uint64_t &zl_io)
{
    std::uint64_t vl = zl_io;
    std::uint64_t vh = zh_io;

    std::uint64_t zh = hh[vl & 0xff];
    std::uint64_t zl = hl[vl & 0xff];
    for (int i = 1; i < 8; ++i) {
        vl >>= 8;
        const std::uint64_t rem = zl & 0xff;
        zl = (zh << 56) | (zl >> 8);
        zh = (zh >> 8) ^ kLast8.t[rem];
        zh ^= hh[vl & 0xff];
        zl ^= hl[vl & 0xff];
    }
    for (int i = 0; i < 8; ++i) {
        const std::uint64_t rem = zl & 0xff;
        zl = (zh << 56) | (zl >> 8);
        zh = (zh >> 8) ^ kLast8.t[rem];
        zh ^= hh[vh & 0xff];
        zl ^= hl[vh & 0xff];
        vh >>= 8;
    }
    zh_io = zh;
    zl_io = zl;
}

/**
 * Fill an 8-bit Shoup table pair for the element (vh, vl): entry
 * 0x80 holds the element, each halving of the index multiplies by x,
 * composites XOR.
 */
void
buildTables8(std::uint64_t vh, std::uint64_t vl,
             std::array<std::uint64_t, 256> &hh,
             std::array<std::uint64_t, 256> &hl)
{
    hl[0x80] = vl;
    hh[0x80] = vh;
    for (int i = 0x40; i > 0; i >>= 1) {
        shiftRight1(vh, vl);
        hl[static_cast<std::size_t>(i)] = vl;
        hh[static_cast<std::size_t>(i)] = vh;
    }
    for (int i = 2; i <= 0x80; i *= 2) {
        for (int j = 1; j < i; ++j) {
            const auto base = static_cast<std::size_t>(i);
            const auto off = static_cast<std::size_t>(j);
            hh[base + off] = hh[base] ^ hh[off];
            hl[base + off] = hl[base] ^ hl[off];
        }
    }
}

} // namespace

GhashKey::GhashKey(const std::uint8_t h[16])
    : GhashKey(h, activeCryptoImpl())
{}

GhashKey::GhashKey(const std::uint8_t h[16], CryptoImpl impl)
    : impl_(impl)
{
    std::memcpy(h_.data(), h, 16);

    std::uint64_t vh = loadBe64(h);
    std::uint64_t vl = loadBe64(h + 8);

    // 4-bit tables: entry 8 (MSB-of-nibble position) holds H itself,
    // entries 4, 2, 1 are successive multiplications by x.
    hl4_[8] = vl;
    hh4_[8] = vh;
    for (int i = 4; i > 0; i >>= 1) {
        shiftRight1(vh, vl);
        hl4_[static_cast<std::size_t>(i)] = vl;
        hh4_[static_cast<std::size_t>(i)] = vh;
    }
    for (int i = 2; i <= 8; i *= 2) {
        for (int j = 1; j < i; ++j) {
            const auto base = static_cast<std::size_t>(i);
            const auto off = static_cast<std::size_t>(j);
            hh4_[base + off] = hh4_[base] ^ hh4_[off];
            hl4_[base + off] = hl4_[base] ^ hl4_[off];
        }
    }

    // 8-bit tables for H, then H^k for k = 2..4 (each computed by one
    // more multiplication by H) with their own table pairs for the
    // aggregated quad update.
    buildTables8(loadBe64(h), loadBe64(h + 8), hh8_, hl8_);
    std::uint64_t ph = loadBe64(h);
    std::uint64_t pl = loadBe64(h + 8);
    mulVia8(hh8_, hl8_, ph, pl);
    buildTables8(ph, pl, h2h8_, h2l8_);
    mulVia8(hh8_, hl8_, ph, pl);
    buildTables8(ph, pl, h3h8_, h3l8_);
    mulVia8(hh8_, hl8_, ph, pl);
    buildTables8(ph, pl, h4h8_, h4l8_);
}

Ghash::Ghash(const std::uint8_t h[16])
    : owned_(std::in_place, h), key_(&*owned_)
{}

Ghash::Ghash(const std::uint8_t h[16], CryptoImpl impl)
    : owned_(std::in_place, h, impl), key_(&*owned_)
{}

Ghash::Ghash(const GhashKey &key)
    : key_(&key)
{}

void
Ghash::reset()
{
    zl_ = 0;
    zh_ = 0;
}

void
Ghash::mulH4()
{
    std::uint8_t x[16];
    storeBe64(zh_, x);
    storeBe64(zl_, x + 8);

    const auto &hh = key_->hh4_;
    const auto &hl = key_->hl4_;
    std::uint8_t lo = x[15] & 0xf;
    std::uint64_t zh = hh[lo];
    std::uint64_t zl = hl[lo];

    for (int i = 15; i >= 0; --i) {
        lo = x[i] & 0xf;
        const std::uint8_t hi = x[i] >> 4;
        if (i != 15) {
            const std::uint64_t rem = zl & 0xf;
            zl = (zh << 60) | (zl >> 4);
            zh = (zh >> 4) ^ (kLast4[rem] << 48);
            zh ^= hh[lo];
            zl ^= hl[lo];
        }
        const std::uint64_t rem = zl & 0xf;
        zl = (zh << 60) | (zl >> 4);
        zh = (zh >> 4) ^ (kLast4[rem] << 48);
        zh ^= hh[hi];
        zl ^= hl[hi];
    }
    zh_ = zh;
    zl_ = zl;
}

void
Ghash::mulH8()
{
    mulVia8(key_->hh8_, key_->hl8_, zh_, zl_);
}

void
Ghash::updateBlock(const std::uint8_t block[16])
{
    if (key_->impl_ == CryptoImpl::Aesni) {
        std::uint8_t z[16];
        digest(z);
        accel::pclmulGhashBlocks(key_->h_.data(), z, block, 1);
        zh_ = loadBe64(z);
        zl_ = loadBe64(z + 8);
        return;
    }
    zh_ ^= loadBe64(block);
    zl_ ^= loadBe64(block + 8);
    if (key_->impl_ == CryptoImpl::Scalar)
        mulH4();
    else
        mulH8();
}

void
Ghash::updateBlocks(const std::uint8_t *blocks, std::size_t nblocks)
{
    switch (key_->impl_) {
      case CryptoImpl::Aesni: {
        std::uint8_t z[16];
        digest(z);
        accel::pclmulGhashBlocks(key_->h_.data(), z, blocks, nblocks);
        zh_ = loadBe64(z);
        zl_ = loadBe64(z + 8);
        return;
      }
      case CryptoImpl::TTable: {
        // Aggregated update: the per-block recurrence is serial by
        // construction, but Z over a quad expands to
        // (Z ^ X0)·H⁴ ^ X1·H³ ^ X2·H² ^ X3·H — four independent
        // multiplications the core overlaps; a pair does the same
        // with H², and the remainder falls back to one at a time.
        std::size_t i = 0;
        for (; i + 4 <= nblocks; i += 4) {
            std::uint64_t ah = zh_ ^ loadBe64(blocks + 16 * i);
            std::uint64_t al = zl_ ^ loadBe64(blocks + 16 * i + 8);
            std::uint64_t bh = loadBe64(blocks + 16 * (i + 1));
            std::uint64_t bl = loadBe64(blocks + 16 * (i + 1) + 8);
            std::uint64_t ch = loadBe64(blocks + 16 * (i + 2));
            std::uint64_t cl = loadBe64(blocks + 16 * (i + 2) + 8);
            std::uint64_t dh = loadBe64(blocks + 16 * (i + 3));
            std::uint64_t dl = loadBe64(blocks + 16 * (i + 3) + 8);
            mulVia8(key_->h4h8_, key_->h4l8_, ah, al);
            mulVia8(key_->h3h8_, key_->h3l8_, bh, bl);
            mulVia8(key_->h2h8_, key_->h2l8_, ch, cl);
            mulVia8(key_->hh8_, key_->hl8_, dh, dl);
            zh_ = ah ^ bh ^ ch ^ dh;
            zl_ = al ^ bl ^ cl ^ dl;
        }
        for (; i + 2 <= nblocks; i += 2) {
            std::uint64_t ah = zh_ ^ loadBe64(blocks + 16 * i);
            std::uint64_t al = zl_ ^ loadBe64(blocks + 16 * i + 8);
            std::uint64_t bh = loadBe64(blocks + 16 * (i + 1));
            std::uint64_t bl = loadBe64(blocks + 16 * (i + 1) + 8);
            mulVia8(key_->h2h8_, key_->h2l8_, ah, al);
            mulVia8(key_->hh8_, key_->hl8_, bh, bl);
            zh_ = ah ^ bh;
            zl_ = al ^ bl;
        }
        for (; i < nblocks; ++i) {
            zh_ ^= loadBe64(blocks + 16 * i);
            zl_ ^= loadBe64(blocks + 16 * i + 8);
            mulH8();
        }
        return;
      }
      case CryptoImpl::Scalar:
        for (std::size_t i = 0; i < nblocks; ++i) {
            zh_ ^= loadBe64(blocks + 16 * i);
            zl_ ^= loadBe64(blocks + 16 * i + 8);
            mulH4();
        }
        return;
    }
}

void
Ghash::update(std::span<const std::uint8_t> data)
{
    const std::size_t full = data.size() / 16;
    if (full > 0)
        updateBlocks(data.data(), full);
    const std::size_t off = full * 16;
    if (off < data.size()) {
        std::uint8_t last[16] = {};
        std::memcpy(last, data.data() + off, data.size() - off);
        updateBlock(last);
    }
}

void
Ghash::digest(std::uint8_t out[16]) const
{
    storeBe64(zh_, out);
    storeBe64(zl_, out + 8);
}

} // namespace hcc::crypto
