#include "crypto/impl.hpp"

#include <atomic>
#include <cstdlib>

#include "common/log.hpp"
#include "crypto/accel.hpp"

namespace hcc::crypto {

namespace {

/**
 * Session override set via setActiveCryptoImpl (CLI / tests).
 * Encoded as an atomic int (-1 = unset) because sweep workers read
 * it through activeCryptoImpl() while constructing per-run crypto
 * contexts; std::optional would tear.
 */
constexpr int kNoOverride = -1;
std::atomic<int> g_override{kNoOverride};

/** Resolve the HCC_CRYPTO_IMPL environment variable once. */
std::optional<CryptoImpl>
envImpl()
{
    static const std::optional<CryptoImpl> resolved = [] {
        std::optional<CryptoImpl> out;
        if (const char *env = std::getenv("HCC_CRYPTO_IMPL")) {
            const auto parsed = parseCryptoImpl(env);
            if (!parsed) {
                warn("HCC_CRYPTO_IMPL='%s' is not a known "
                     "implementation (scalar|ttable|aesni); ignoring",
                     env);
            } else if (!cryptoImplSupported(*parsed)) {
                warn("HCC_CRYPTO_IMPL='%s' is not supported on this "
                     "CPU; falling back to '%s'", env,
                     cryptoImplName(bestCryptoImpl()).c_str());
            } else {
                out = *parsed;
            }
        }
        return out;
    }();
    return resolved;
}

} // namespace

std::string
cryptoImplName(CryptoImpl impl)
{
    switch (impl) {
      case CryptoImpl::Scalar: return "scalar";
      case CryptoImpl::TTable: return "ttable";
      case CryptoImpl::Aesni: return "aesni";
    }
    return "?";
}

std::optional<CryptoImpl>
parseCryptoImpl(const std::string &name)
{
    if (name == "scalar")
        return CryptoImpl::Scalar;
    if (name == "ttable" || name == "portable")
        return CryptoImpl::TTable;
    if (name == "aesni")
        return CryptoImpl::Aesni;
    return std::nullopt;
}

bool
cryptoImplSupported(CryptoImpl impl)
{
    switch (impl) {
      case CryptoImpl::Scalar:
      case CryptoImpl::TTable:
        return true;
      case CryptoImpl::Aesni:
        return accel::aesniAvailable() && accel::pclmulAvailable();
    }
    return false;
}

std::vector<CryptoImpl>
supportedCryptoImpls()
{
    std::vector<CryptoImpl> out = {CryptoImpl::Scalar,
                                   CryptoImpl::TTable};
    if (cryptoImplSupported(CryptoImpl::Aesni))
        out.push_back(CryptoImpl::Aesni);
    return out;
}

CryptoImpl
bestCryptoImpl()
{
    return cryptoImplSupported(CryptoImpl::Aesni) ? CryptoImpl::Aesni
                                                  : CryptoImpl::TTable;
}

CryptoImpl
activeCryptoImpl()
{
    const int ov = g_override.load(std::memory_order_relaxed);
    if (ov != kNoOverride)
        return static_cast<CryptoImpl>(ov);
    if (const auto env = envImpl())
        return *env;
    return bestCryptoImpl();
}

CryptoImpl
setActiveCryptoImpl(std::optional<CryptoImpl> impl)
{
    if (impl && !cryptoImplSupported(*impl)) {
        warn("crypto implementation '%s' is not supported on this "
             "CPU; keeping '%s'",
             cryptoImplName(*impl).c_str(),
             cryptoImplName(activeCryptoImpl()).c_str());
        return activeCryptoImpl();
    }
    g_override.store(impl ? static_cast<int>(*impl) : kNoOverride,
                     std::memory_order_relaxed);
    return activeCryptoImpl();
}

} // namespace hcc::crypto
