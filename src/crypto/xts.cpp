#include "crypto/xts.hpp"

#include <cstring>

#include "common/log.hpp"

namespace hcc::crypto {

namespace {

std::span<const std::uint8_t>
firstHalf(std::span<const std::uint8_t> key)
{
    if (key.size() != 32 && key.size() != 64)
        fatal("AES-XTS key must be 32 or 64 bytes, got %zu", key.size());
    return key.subspan(0, key.size() / 2);
}

std::span<const std::uint8_t>
secondHalf(std::span<const std::uint8_t> key)
{
    return key.subspan(key.size() / 2);
}

} // namespace

void
xtsMulAlpha(std::uint8_t tweak[16])
{
    // Little-endian polynomial: shift left by one bit across bytes;
    // on carry out of byte 15, reduce with x^128 = x^7 + x^2 + x + 1.
    std::uint8_t carry = 0;
    for (int i = 0; i < 16; ++i) {
        const std::uint8_t next_carry = tweak[i] >> 7;
        tweak[i] = static_cast<std::uint8_t>((tweak[i] << 1) | carry);
        carry = next_carry;
    }
    if (carry)
        tweak[0] ^= 0x87;
}

AesXts::AesXts(std::span<const std::uint8_t> key)
    : AesXts(key, activeCryptoImpl())
{}

AesXts::AesXts(std::span<const std::uint8_t> key, CryptoImpl impl)
    : dataAes_(firstHalf(key), impl), tweakAes_(secondHalf(key), impl)
{}

void
AesXts::crypt(std::uint64_t data_unit, std::span<const std::uint8_t> in,
              std::span<std::uint8_t> out, Dir dir) const
{
    if (in.empty() || in.size() % kAesBlock != 0) {
        fatal("AES-XTS data unit length %zu is not a positive multiple "
              "of 16", in.size());
    }
    HCC_ASSERT(out.size() >= in.size(), "xts output too small");

    // Tweak: data unit number, little-endian, zero padded, encrypted
    // under K2.
    std::uint8_t tweak[16] = {};
    for (int i = 0; i < 8; ++i) {
        tweak[i] = static_cast<std::uint8_t>(data_unit & 0xff);
        data_unit >>= 8;
    }
    tweakAes_.encryptBlock(tweak, tweak);

    std::uint8_t block[16];
    for (std::size_t off = 0; off < in.size(); off += kAesBlock) {
        for (std::size_t i = 0; i < kAesBlock; ++i)
            block[i] = in[off + i] ^ tweak[i];
        if (dir == Dir::Encrypt)
            dataAes_.encryptBlock(block, block);
        else
            dataAes_.decryptBlock(block, block);
        for (std::size_t i = 0; i < kAesBlock; ++i)
            out[off + i] = block[i] ^ tweak[i];
        xtsMulAlpha(tweak);
    }
}

void
AesXts::encrypt(std::uint64_t data_unit, std::span<const std::uint8_t> in,
                std::span<std::uint8_t> out) const
{
    crypt(data_unit, in, out, Dir::Encrypt);
}

void
AesXts::decrypt(std::uint64_t data_unit, std::span<const std::uint8_t> in,
                std::span<std::uint8_t> out) const
{
    crypt(data_unit, in, out, Dir::Decrypt);
}

} // namespace hcc::crypto
