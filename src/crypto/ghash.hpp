/**
 * @file
 * GHASH: the universal hash over GF(2^128) used by GCM and GMAC
 * (NIST SP 800-38D).
 *
 * Three tiers (impl.hpp): Shoup 4-bit tables (scalar reference),
 * Shoup 8-bit tables with a multi-block update loop (portable fast
 * path), and PCLMULQDQ carry-less multiplication.  The key-dependent
 * tables live in GhashKey so one precomputation can be shared by
 * every per-message Ghash accumulator (AesGcm computes a tag per
 * sealed chunk; rebuilding a 4 KiB table each time would dominate
 * small-chunk cost).
 */

#ifndef HCC_CRYPTO_GHASH_HPP
#define HCC_CRYPTO_GHASH_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/impl.hpp"

namespace hcc::crypto {

/**
 * Precomputed multiplication tables for one hash subkey
 * H = E_K(0^128).  Immutable after construction; safe to share
 * across threads and Ghash instances.
 */
class GhashKey
{
  public:
    explicit GhashKey(const std::uint8_t h[16]);
    GhashKey(const std::uint8_t h[16], CryptoImpl impl);

    CryptoImpl impl() const { return impl_; }

  private:
    friend class Ghash;

    CryptoImpl impl_ = CryptoImpl::Scalar;
    /** H in GCM byte order (PCLMUL path uses it directly). */
    std::array<std::uint8_t, 16> h_{};
    // Shoup 4-bit tables (scalar tier): entry i = i * H over the
    // nibble bit-semantics, 16 entries.
    std::array<std::uint64_t, 16> hl4_{};
    std::array<std::uint64_t, 16> hh4_{};
    // Shoup 8-bit tables (portable fast tier): 256 entries, 4 KiB.
    std::array<std::uint64_t, 256> hl8_{};
    std::array<std::uint64_t, 256> hh8_{};
    // Same for H², H³ and H⁴ — the 4-way aggregated update computes
    // Z <- (Z^X0)·H⁴ ^ X1·H³ ^ X2·H² ^ X3·H per quad, turning the
    // inherently serial per-block chain into four independent Horner
    // chains the out-of-order core overlaps.
    std::array<std::uint64_t, 256> h2l8_{};
    std::array<std::uint64_t, 256> h2h8_{};
    std::array<std::uint64_t, 256> h3l8_{};
    std::array<std::uint64_t, 256> h3h8_{};
    std::array<std::uint64_t, 256> h4l8_{};
    std::array<std::uint64_t, 256> h4h8_{};
};

/**
 * Incremental GHASH computation keyed by H = E_K(0^128).
 */
class Ghash
{
  public:
    /** Construct with an internally owned key table. */
    explicit Ghash(const std::uint8_t h[16]);
    Ghash(const std::uint8_t h[16], CryptoImpl impl);

    /**
     * Construct over a shared precomputed key; @p key must outlive
     * this accumulator.
     */
    explicit Ghash(const GhashKey &key);

    /** Reset the accumulator to zero (key tables are retained). */
    void reset();

    /**
     * Absorb data; internally zero-pads the final partial block of
     * each update, so callers must feed whole logical fields (GCM
     * feeds AAD, then ciphertext, then the length block).
     */
    void update(std::span<const std::uint8_t> data);

    /** Absorb exactly one 16-byte block. */
    void updateBlock(const std::uint8_t block[16]);

    /** Copy the current accumulator value out (does not finalize). */
    void digest(std::uint8_t out[16]) const;

  private:
    /** Absorb @p nblocks full blocks (the multi-block hot loop). */
    void updateBlocks(const std::uint8_t *blocks,
                      std::size_t nblocks);

    // Z <- (Z ^ X) * H via the key's 4-bit or 8-bit tables.
    void mulH4();
    void mulH8();

    std::optional<GhashKey> owned_;
    const GhashKey *key_ = nullptr;
    std::uint64_t zl_ = 0;
    std::uint64_t zh_ = 0;
};

} // namespace hcc::crypto

#endif // HCC_CRYPTO_GHASH_HPP
