/**
 * @file
 * GHASH: the universal hash over GF(2^128) used by GCM and GMAC
 * (NIST SP 800-38D).  Uses Shoup's 4-bit table method so functional
 * benchmarking is not absurdly slow.
 */

#ifndef HCC_CRYPTO_GHASH_HPP
#define HCC_CRYPTO_GHASH_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace hcc::crypto {

/**
 * Incremental GHASH computation keyed by H = E_K(0^128).
 */
class Ghash
{
  public:
    /** Construct from the 16-byte hash subkey H. */
    explicit Ghash(const std::uint8_t h[16]);

    /** Reset the accumulator to zero (key tables are retained). */
    void reset();

    /**
     * Absorb data; internally zero-pads the final partial block of
     * each update, so callers must feed whole logical fields (GCM
     * feeds AAD, then ciphertext, then the length block).
     */
    void update(std::span<const std::uint8_t> data);

    /** Absorb exactly one 16-byte block. */
    void updateBlock(const std::uint8_t block[16]);

    /** Copy the current accumulator value out (does not finalize). */
    void digest(std::uint8_t out[16]) const;

  private:
    // Z <- (Z ^ X) * H via 4-bit tables.
    void mulH();

    std::array<std::uint64_t, 16> hl_{};
    std::array<std::uint64_t, 16> hh_{};
    std::uint64_t zl_ = 0;
    std::uint64_t zh_ = 0;
};

} // namespace hcc::crypto

#endif // HCC_CRYPTO_GHASH_HPP
