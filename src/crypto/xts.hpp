/**
 * @file
 * AES-XTS (IEEE 1619 / NIST SP 800-38E): the counter-less tweakable
 * block cipher Intel TME-MK uses for transparent DRAM encryption.
 * The MemoryEncryptionEngine model in src/tee wraps this.
 *
 * Restriction: data unit length must be a positive multiple of the
 * AES block size (TME-MK operates on 64-byte cache lines, which
 * always satisfies this), so ciphertext stealing is not implemented.
 */

#ifndef HCC_CRYPTO_XTS_HPP
#define HCC_CRYPTO_XTS_HPP

#include <cstdint>
#include <span>

#include "crypto/aes.hpp"

namespace hcc::crypto {

/**
 * AES-XTS context holding the data key (K1) and tweak key (K2).
 */
class AesXts
{
  public:
    /**
     * @param key Concatenated K1 || K2: 32 bytes (XTS-AES-128) or
     *            64 bytes (XTS-AES-256).
     */
    explicit AesXts(std::span<const std::uint8_t> key);

    /** Same, pinned to an implementation tier (tests/benchmarks). */
    AesXts(std::span<const std::uint8_t> key, CryptoImpl impl);

    /**
     * Encrypt one data unit.
     * @param data_unit logical unit number (e.g. cache-line or
     *        sector index), encoded little-endian into the tweak.
     * @param in plaintext; length must be a positive multiple of 16.
     * @param out ciphertext (may alias @p in).
     */
    void encrypt(std::uint64_t data_unit,
                 std::span<const std::uint8_t> in,
                 std::span<std::uint8_t> out) const;

    /** Decrypt one data unit (inverse of encrypt). */
    void decrypt(std::uint64_t data_unit,
                 std::span<const std::uint8_t> in,
                 std::span<std::uint8_t> out) const;

  private:
    enum class Dir { Encrypt, Decrypt };

    void crypt(std::uint64_t data_unit,
               std::span<const std::uint8_t> in,
               std::span<std::uint8_t> out, Dir dir) const;

    Aes dataAes_;
    Aes tweakAes_;
};

/** Multiply a 128-bit tweak by alpha in the XTS field (in place). */
void xtsMulAlpha(std::uint8_t tweak[16]);

} // namespace hcc::crypto

#endif // HCC_CRYPTO_XTS_HPP
