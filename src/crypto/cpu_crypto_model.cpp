#include "crypto/cpu_crypto_model.hpp"

#include <cmath>

#include "common/calibration.hpp"
#include "common/log.hpp"

namespace hcc::crypto {

std::string
cipherAlgoName(CipherAlgo algo)
{
    switch (algo) {
      case CipherAlgo::AesGcm128: return "aes-gcm-128";
      case CipherAlgo::AesGcm256: return "aes-gcm-256";
      case CipherAlgo::AesCtr128: return "aes-ctr-128";
      case CipherAlgo::GhashOnly: return "ghash";
      case CipherAlgo::AesXts128: return "aes-xts-128";
      case CipherAlgo::Sha256: return "sha-256";
      case CipherAlgo::ChaCha20Poly1305: return "chacha20-poly1305";
    }
    return "?";
}

std::string
cpuKindName(CpuKind cpu)
{
    switch (cpu) {
      case CpuKind::IntelEmr: return "Intel EMR Xeon 6530";
      case CpuKind::NvidiaGrace: return "NVIDIA Grace";
    }
    return "?";
}

const std::vector<CipherAlgo> &
allCipherAlgos()
{
    static const std::vector<CipherAlgo> algos = {
        CipherAlgo::AesGcm128, CipherAlgo::AesGcm256,
        CipherAlgo::AesCtr128, CipherAlgo::GhashOnly,
        CipherAlgo::AesXts128, CipherAlgo::Sha256,
        CipherAlgo::ChaCha20Poly1305,
    };
    return algos;
}

CpuCryptoModel::CpuCryptoModel(CpuKind cpu)
    : cpu_(cpu)
{}

void
CpuCryptoModel::setThroughputOverride(CipherAlgo algo, double gbs)
{
    if (gbs <= 0.0)
        fatal("crypto throughput override must be positive, got %g", gbs);
    overrides_[static_cast<std::size_t>(algo)] = gbs;
}

void
CpuCryptoModel::clearThroughputOverride(CipherAlgo algo)
{
    overrides_[static_cast<std::size_t>(algo)].reset();
}

bool
CpuCryptoModel::hasThroughputOverride(CipherAlgo algo) const
{
    return overrides_[static_cast<std::size_t>(algo)].has_value();
}

double
CpuCryptoModel::throughputGBs(CipherAlgo algo) const
{
    using namespace calib;
    if (const auto &ov = overrides_[static_cast<std::size_t>(algo)])
        return *ov;
    if (cpu_ == CpuKind::IntelEmr) {
        switch (algo) {
          case CipherAlgo::AesGcm128: return kEmrAesGcm128GBs;
          case CipherAlgo::AesGcm256: return kEmrAesGcm256GBs;
          case CipherAlgo::AesCtr128: return kEmrAesCtr128GBs;
          case CipherAlgo::GhashOnly: return kEmrGhashGBs;
          case CipherAlgo::AesXts128: return kEmrAesXts128GBs;
          case CipherAlgo::Sha256: return kEmrSha256GBs;
          case CipherAlgo::ChaCha20Poly1305: return kEmrChaChaPolyGBs;
        }
    } else {
        switch (algo) {
          case CipherAlgo::AesGcm128: return kGraceAesGcm128GBs;
          case CipherAlgo::AesGcm256: return kGraceAesGcm256GBs;
          case CipherAlgo::AesCtr128: return kGraceAesCtr128GBs;
          case CipherAlgo::GhashOnly: return kGraceGhashGBs;
          case CipherAlgo::AesXts128: return kGraceAesXts128GBs;
          case CipherAlgo::Sha256: return kGraceSha256GBs;
          case CipherAlgo::ChaCha20Poly1305: return kGraceChaChaPolyGBs;
        }
    }
    panic("unreachable cipher algo");
}

double
CpuCryptoModel::effectiveGBs(CipherAlgo algo, int workers) const
{
    if (workers < 1)
        fatal("crypto worker count must be >= 1, got %d", workers);
    // Geometric efficiency decay: worker i contributes eff^(i-1).
    double scale = 0.0;
    double f = 1.0;
    for (int i = 0; i < workers; ++i) {
        scale += f;
        f *= kWorkerEfficiency;
    }
    return throughputGBs(algo) * scale;
}

SimTime
CpuCryptoModel::cost(CipherAlgo algo, Bytes bytes, int workers) const
{
    if (bytes == 0)
        return kSetupCost;
    return kSetupCost + transferTime(bytes, effectiveGBs(algo, workers));
}

} // namespace hcc::crypto
