#include "crypto/gcm.hpp"

#include <cstring>

#include "common/log.hpp"
#include "crypto/ctr.hpp"
#include "crypto/ghash.hpp"

namespace hcc::crypto {

namespace {

void
storeBe64(std::uint64_t v, std::uint8_t *p)
{
    for (int i = 7; i >= 0; --i) {
        p[i] = static_cast<std::uint8_t>(v & 0xff);
        v >>= 8;
    }
}

// Constant-time-ish tag comparison (single pass, no early exit).
bool
tagsEqual(const std::uint8_t *a, const std::uint8_t *b)
{
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < kGcmTagLen; ++i)
        acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

} // namespace

AesGcm::AesGcm(std::span<const std::uint8_t> key, obs::Registry *obs)
    : aes_(key)
{
    if (key.size() != 16 && key.size() != 32)
        fatal("AES-GCM key must be 16 or 32 bytes, got %zu", key.size());
    const std::uint8_t zero[16] = {};
    aes_.encryptBlock(zero, h_.data());
    if (obs) {
        obs_seal_calls_ = &obs->counter("crypto.aes_gcm.seal_calls");
        obs_open_calls_ = &obs->counter("crypto.aes_gcm.open_calls");
        obs_auth_failures_ =
            &obs->counter("crypto.aes_gcm.auth_failures");
        obs_bytes_sealed_ =
            &obs->counter("crypto.aes_gcm.bytes_sealed");
        obs_bytes_opened_ =
            &obs->counter("crypto.aes_gcm.bytes_opened");
    }
}

void
AesGcm::computeTag(const GcmIv &iv, std::span<const std::uint8_t> aad,
                   std::span<const std::uint8_t> ciphertext,
                   std::uint8_t tag[kGcmTagLen]) const
{
    Ghash ghash(h_.data());
    ghash.update(aad);
    ghash.update(ciphertext);

    std::uint8_t len_block[16];
    storeBe64(static_cast<std::uint64_t>(aad.size()) * 8, len_block);
    storeBe64(static_cast<std::uint64_t>(ciphertext.size()) * 8,
              len_block + 8);
    ghash.updateBlock(len_block);

    std::uint8_t s[16];
    ghash.digest(s);

    // J0 for a 96-bit IV: IV || 0^31 || 1.
    std::uint8_t j0[16] = {};
    std::memcpy(j0, iv.data(), iv.size());
    j0[15] = 1;

    std::uint8_t ekj0[16];
    aes_.encryptBlock(j0, ekj0);
    for (std::size_t i = 0; i < kGcmTagLen; ++i)
        tag[i] = s[i] ^ ekj0[i];
}

void
AesGcm::seal(const GcmIv &iv, std::span<const std::uint8_t> aad,
             std::span<const std::uint8_t> plaintext,
             std::span<std::uint8_t> ciphertext,
             std::uint8_t tag[kGcmTagLen]) const
{
    HCC_ASSERT(ciphertext.size() >= plaintext.size(),
               "gcm ciphertext buffer too small");

    // Encryption counter starts at inc32(J0).
    std::uint8_t ctr[16] = {};
    std::memcpy(ctr, iv.data(), iv.size());
    ctr[15] = 1;
    inc32(ctr);
    ctrXcrypt(aes_, ctr, plaintext,
              ciphertext.subspan(0, plaintext.size()));

    computeTag(iv, aad, ciphertext.subspan(0, plaintext.size()), tag);
    if (obs_seal_calls_) {
        obs_seal_calls_->add(1);
        obs_bytes_sealed_->add(plaintext.size());
    }
}

bool
AesGcm::open(const GcmIv &iv, std::span<const std::uint8_t> aad,
             std::span<const std::uint8_t> ciphertext,
             const std::uint8_t tag[kGcmTagLen],
             std::span<std::uint8_t> plaintext) const
{
    HCC_ASSERT(plaintext.size() >= ciphertext.size(),
               "gcm plaintext buffer too small");

    if (obs_open_calls_)
        obs_open_calls_->add(1);
    std::uint8_t expect[kGcmTagLen];
    computeTag(iv, aad, ciphertext, expect);
    if (!tagsEqual(expect, tag)) {
        std::memset(plaintext.data(), 0, plaintext.size());
        if (obs_auth_failures_)
            obs_auth_failures_->add(1);
        return false;
    }

    std::uint8_t ctr[16] = {};
    std::memcpy(ctr, iv.data(), iv.size());
    ctr[15] = 1;
    inc32(ctr);
    ctrXcrypt(aes_, ctr, ciphertext,
              plaintext.subspan(0, ciphertext.size()));
    if (obs_bytes_opened_)
        obs_bytes_opened_->add(ciphertext.size());
    return true;
}

GcmIvSequence::GcmIvSequence(std::uint32_t channel_id)
    : channel_(channel_id)
{}

GcmIv
GcmIvSequence::next()
{
    GcmIv iv{};
    iv[0] = static_cast<std::uint8_t>(channel_ >> 24);
    iv[1] = static_cast<std::uint8_t>(channel_ >> 16);
    iv[2] = static_cast<std::uint8_t>(channel_ >> 8);
    iv[3] = static_cast<std::uint8_t>(channel_);
    std::uint64_t c = counter_++;
    for (int i = 11; i >= 4; --i) {
        iv[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(c & 0xff);
        c >>= 8;
    }
    return iv;
}

} // namespace hcc::crypto
