#include "crypto/gcm.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "crypto/ctr.hpp"
#include "crypto/endian.hpp"
#include "crypto/ghash.hpp"

namespace hcc::crypto {

namespace {

// Branchless tag comparison.  The accumulator is volatile so the
// compiler cannot turn the loop into an early-exit memcmp or fold the
// final test into per-byte branches; every byte is always inspected.
bool
tagsEqual(const std::uint8_t *a, const std::uint8_t *b)
{
    volatile std::uint8_t acc = 0;
    for (std::size_t i = 0; i < kGcmTagLen; ++i)
        acc = acc | static_cast<std::uint8_t>(a[i] ^ b[i]);
    // (x | -x) >> 7 is 1 iff x != 0; 1 - that is a branch-free bool.
    const std::uint8_t x = acc;
    return static_cast<std::uint8_t>(
               1 - ((x | static_cast<std::uint8_t>(-x)) >> 7)) != 0;
}

} // namespace

AesGcm::AesGcm(std::span<const std::uint8_t> key, obs::Registry *obs)
    : AesGcm(key, activeCryptoImpl(), obs)
{}

AesGcm::AesGcm(std::span<const std::uint8_t> key, CryptoImpl impl,
               obs::Registry *obs)
    : aes_(key, impl)
{
    if (key.size() != 16 && key.size() != 32)
        fatal("AES-GCM key must be 16 or 32 bytes, got %zu", key.size());
    const std::uint8_t zero[16] = {};
    aes_.encryptBlock(zero, h_.data());
    // Precompute the GHASH tables once; every computeTag shares them.
    ghash_key_.emplace(h_.data(), impl);
    if (obs) {
        obs_seal_calls_ = &obs->counter("crypto.aes_gcm.seal_calls");
        obs_open_calls_ = &obs->counter("crypto.aes_gcm.open_calls");
        obs_auth_failures_ =
            &obs->counter("crypto.aes_gcm.auth_failures");
        obs_bytes_sealed_ =
            &obs->counter("crypto.aes_gcm.bytes_sealed");
        obs_bytes_opened_ =
            &obs->counter("crypto.aes_gcm.bytes_opened");
    }
}

void
AesGcm::finishTag(Ghash &ghash, const GcmIv &iv, std::size_t aad_len,
                  std::size_t ct_len,
                  std::uint8_t tag[kGcmTagLen]) const
{
    std::uint8_t len_block[16];
    storeBe64(static_cast<std::uint64_t>(aad_len) * 8, len_block);
    storeBe64(static_cast<std::uint64_t>(ct_len) * 8, len_block + 8);
    ghash.updateBlock(len_block);

    std::uint8_t s[16];
    ghash.digest(s);

    // J0 for a 96-bit IV: IV || 0^31 || 1.
    std::uint8_t j0[16] = {};
    std::memcpy(j0, iv.data(), iv.size());
    j0[15] = 1;

    std::uint8_t ekj0[16];
    aes_.encryptBlock(j0, ekj0);
    for (std::size_t i = 0; i < kGcmTagLen; ++i)
        tag[i] = s[i] ^ ekj0[i];
}

void
AesGcm::computeTag(const GcmIv &iv, std::span<const std::uint8_t> aad,
                   std::span<const std::uint8_t> ciphertext,
                   std::uint8_t tag[kGcmTagLen]) const
{
    Ghash ghash(*ghash_key_);
    ghash.update(aad);
    ghash.update(ciphertext);
    finishTag(ghash, iv, aad.size(), ciphertext.size(), tag);
}

void
AesGcm::seal(const GcmIv &iv, std::span<const std::uint8_t> aad,
             std::span<const std::uint8_t> plaintext,
             std::span<std::uint8_t> ciphertext,
             std::uint8_t tag[kGcmTagLen]) const
{
    HCC_ASSERT(ciphertext.size() >= plaintext.size(),
               "gcm ciphertext buffer too small");

    // Encryption counter starts at inc32(J0).
    std::uint8_t ctr[16] = {};
    std::memcpy(ctr, iv.data(), iv.size());
    ctr[15] = 1;
    inc32(ctr);

    // Fused encrypt-then-hash: process in chunks small enough that
    // the ciphertext is still in L1 when GHASH reads it back, instead
    // of two full passes over the payload.  Chunks are whole blocks,
    // so Ghash::update's tail padding only triggers on the last one.
    Ghash ghash(*ghash_key_);
    ghash.update(aad);
    constexpr std::size_t kFuseChunk = 4096;
    static_assert(kFuseChunk % 16 == 0);
    std::size_t off = 0;
    while (off < plaintext.size()) {
        const std::size_t n =
            std::min(kFuseChunk, plaintext.size() - off);
        ctrXcrypt(aes_, ctr, plaintext.subspan(off, n),
                  ciphertext.subspan(off, n));
        ghash.update(ciphertext.subspan(off, n));
        inc32By(ctr, static_cast<std::uint32_t>(n / 16));
        off += n;
    }
    finishTag(ghash, iv, aad.size(), plaintext.size(), tag);
    if (obs_seal_calls_) {
        obs_seal_calls_->add(1);
        obs_bytes_sealed_->add(plaintext.size());
    }
}

bool
AesGcm::open(const GcmIv &iv, std::span<const std::uint8_t> aad,
             std::span<const std::uint8_t> ciphertext,
             const std::uint8_t tag[kGcmTagLen],
             std::span<std::uint8_t> plaintext) const
{
    HCC_ASSERT(plaintext.size() >= ciphertext.size(),
               "gcm plaintext buffer too small");

    if (obs_open_calls_)
        obs_open_calls_->add(1);

    std::uint8_t ctr[16] = {};
    std::memcpy(ctr, iv.data(), iv.size());
    ctr[15] = 1;
    inc32(ctr);

    // Fused hash-then-decrypt, mirroring seal: GHASH reads each
    // ciphertext chunk while it is cache-hot, and the chunk is
    // decrypted in the same pass.  The tag is checked before
    // returning; on mismatch the speculatively written plaintext is
    // zeroed, so callers never observe unauthenticated bytes.
    Ghash ghash(*ghash_key_);
    ghash.update(aad);
    constexpr std::size_t kFuseChunk = 4096;
    std::size_t off = 0;
    while (off < ciphertext.size()) {
        const std::size_t n =
            std::min(kFuseChunk, ciphertext.size() - off);
        ghash.update(ciphertext.subspan(off, n));
        ctrXcrypt(aes_, ctr, ciphertext.subspan(off, n),
                  plaintext.subspan(off, n));
        inc32By(ctr, static_cast<std::uint32_t>(n / 16));
        off += n;
    }
    std::uint8_t expect[kGcmTagLen];
    finishTag(ghash, iv, aad.size(), ciphertext.size(), expect);
    if (!tagsEqual(expect, tag)) {
        std::memset(plaintext.data(), 0, plaintext.size());
        if (obs_auth_failures_)
            obs_auth_failures_->add(1);
        return false;
    }
    if (obs_bytes_opened_)
        obs_bytes_opened_->add(ciphertext.size());
    return true;
}

GcmIvSequence::GcmIvSequence(std::uint32_t channel_id)
    : channel_(channel_id)
{}

GcmIv
GcmIvSequence::next()
{
    GcmIv iv{};
    iv[0] = static_cast<std::uint8_t>(channel_ >> 24);
    iv[1] = static_cast<std::uint8_t>(channel_ >> 16);
    iv[2] = static_cast<std::uint8_t>(channel_ >> 8);
    iv[3] = static_cast<std::uint8_t>(channel_);
    std::uint64_t c = counter_++;
    for (int i = 11; i >= 4; --i) {
        iv[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(c & 0xff);
        c >>= 8;
    }
    return iv;
}

} // namespace hcc::crypto
