/**
 * @file
 * Calibrated CPU crypto throughput model (paper Fig. 4b).
 *
 * The functional AES in this library is byte-oriented C++ and runs
 * far below AES-NI speeds, so the simulator charges time from this
 * model instead: single-core bulk throughputs measured in the paper
 * for an Intel Emerald Rapids Xeon and an NVIDIA Grace CPU, plus a
 * per-operation setup cost and an optional multi-worker scaling law
 * (for the PipeLLM-style parallel-encryption ablation).
 */

#ifndef HCC_CRYPTO_CPU_CRYPTO_MODEL_HPP
#define HCC_CRYPTO_CPU_CRYPTO_MODEL_HPP

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hcc::crypto {

/** CPUs the paper measures in Fig. 4b. */
enum class CpuKind { IntelEmr, NvidiaGrace };

/** Crypto algorithms in the Fig. 4b comparison. */
enum class CipherAlgo
{
    AesGcm128,
    AesGcm256,
    AesCtr128,
    GhashOnly,  //!< GMAC construction: integrity without secrecy.
    AesXts128,  //!< TME-MK algorithm.
    Sha256,
    ChaCha20Poly1305,
};

/** Human-readable algorithm name (matches the paper's labels). */
std::string cipherAlgoName(CipherAlgo algo);

/** Human-readable CPU name. */
std::string cpuKindName(CpuKind cpu);

/** All modeled algorithms, in Fig. 4b presentation order. */
const std::vector<CipherAlgo> &allCipherAlgos();

/**
 * Throughput/latency model for software crypto on a given CPU.
 */
class CpuCryptoModel
{
  public:
    explicit CpuCryptoModel(CpuKind cpu = CpuKind::IntelEmr);

    /**
     * Calibrated single-core bulk throughput in GB/s: a per-instance
     * override if one was set (hccsim crypto-calibrate feeds these),
     * otherwise the paper's Fig. 4b constant for the modeled CPU.
     */
    double throughputGBs(CipherAlgo algo) const;

    /**
     * Replace the modeled throughput for @p algo with a measured
     * value.  @p gbs must be positive.
     */
    void setThroughputOverride(CipherAlgo algo, double gbs);

    /** Drop the override for @p algo, reverting to the constant. */
    void clearThroughputOverride(CipherAlgo algo);

    /** True if @p algo currently uses a measured override. */
    bool hasThroughputOverride(CipherAlgo algo) const;

    /**
     * Time to process @p bytes with @p workers parallel threads.
     * Parallel scaling is sub-linear (synchronization + memory
     * bandwidth contention): efficiency decays per added worker.
     */
    SimTime cost(CipherAlgo algo, Bytes bytes, int workers = 1) const;

    /** Effective aggregate GB/s with @p workers threads. */
    double effectiveGBs(CipherAlgo algo, int workers) const;

    CpuKind cpu() const { return cpu_; }

    /** Fixed per-invocation setup (key/IV schedule, dispatch). */
    static constexpr SimTime kSetupCost = time::ns(450.0);

    /** Per-added-worker parallel efficiency. */
    static constexpr double kWorkerEfficiency = 0.88;

  private:
    static constexpr std::size_t kNumAlgos = 7;

    CpuKind cpu_;
    std::array<std::optional<double>, kNumAlgos> overrides_{};
};

} // namespace hcc::crypto

#endif // HCC_CRYPTO_CPU_CRYPTO_MODEL_HPP
