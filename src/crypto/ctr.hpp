/**
 * @file
 * AES-CTR keystream encryption (NIST SP 800-38A) with the 32-bit
 * big-endian counter increment GCM uses (inc32).
 *
 * The keystream is generated in 4-block batches (Aes::encryptBlocks)
 * and XORed into the payload via 64-bit words, with a byte-wise tail
 * for the final partial block — the bulk-crypto hot loop of every
 * functional CC transfer.
 */

#ifndef HCC_CRYPTO_CTR_HPP
#define HCC_CRYPTO_CTR_HPP

#include <cstdint>
#include <span>

#include "crypto/aes.hpp"

namespace hcc::crypto {

/** Increment the last 32 bits of a 16-byte counter block (mod 2^32). */
void inc32(std::uint8_t counter[16]);

/** Advance the counter by @p nblocks inc32 steps in one go. */
void inc32By(std::uint8_t counter[16], std::uint32_t nblocks);

/**
 * XOR @p in with the AES-CTR keystream generated from @p counter0,
 * writing to @p out (may alias @p in).  The counter block is
 * incremented with inc32 per block; the caller's copy is not mutated.
 */
void ctrXcrypt(const Aes &aes, const std::uint8_t counter0[16],
               std::span<const std::uint8_t> in,
               std::span<std::uint8_t> out);

} // namespace hcc::crypto

#endif // HCC_CRYPTO_CTR_HPP
