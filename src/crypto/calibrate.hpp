/**
 * @file
 * Host crypto self-calibration: measure what this machine's
 * functional implementations actually sustain (GB/s per CipherAlgo)
 * and optionally feed the numbers back into the CpuCryptoModel.
 *
 * The paper's Fig. 4b constants describe an Intel EMR Xeon / NVIDIA
 * Grace running OpenSSL; `hccsim crypto-calibrate` replaces them with
 * throughputs measured here, so simulated crypto time can reflect the
 * host the simulator runs on rather than the paper's testbed.  All
 * measurements are wall-clock and land under `host.crypto.*` — they
 * never enter deterministic stat dumps.
 */

#ifndef HCC_CRYPTO_CALIBRATE_HPP
#define HCC_CRYPTO_CALIBRATE_HPP

#include <vector>

#include "crypto/cpu_crypto_model.hpp"
#include "obs/registry.hpp"

namespace hcc::crypto {

/** One measured algorithm. */
struct CalibrationResult
{
    CipherAlgo algo = CipherAlgo::AesGcm128;
    /** Measured bulk throughput, GB/s (1e9 bytes per second). */
    double gbs = 0.0;
    /** Total bytes processed during the measurement. */
    std::uint64_t bytes = 0;
    /** Elapsed wall-clock seconds. */
    double seconds = 0.0;
};

/**
 * Measure functional throughput of every modeled CipherAlgo on this
 * host with the currently active CryptoImpl.
 *
 * Each algorithm repeatedly processes a 1 MiB buffer until roughly
 * @p per_algo_ms wall-clock milliseconds have elapsed (at least one
 * iteration always runs).  If @p obs is non-null, each result is
 * published as gauge "host.crypto.<algo>.mbs" (MB/s, rounded).
 */
std::vector<CalibrationResult>
calibrateHostCrypto(double per_algo_ms, obs::Registry *obs = nullptr);

/**
 * Install every measured throughput as an override on @p model, so
 * subsequent CpuCryptoModel::cost() charges host-measured time.
 */
void applyCalibration(CpuCryptoModel &model,
                      const std::vector<CalibrationResult> &results);

} // namespace hcc::crypto

#endif // HCC_CRYPTO_CALIBRATE_HPP
