/**
 * @file
 * Big-endian word load/store helpers shared by the crypto hot loops
 * (AES T-table state words, GHASH accumulator, GCM length block).
 *
 * On GCC/Clang these compile to a single mov+bswap; the portable
 * fallback is the classic byte loop.  Keeping them in one header
 * matters: the byte-loop idiom is NOT reliably recognized by the
 * optimizer, and these run per 16-byte block on the bulk path.
 */

#ifndef HCC_CRYPTO_ENDIAN_HPP
#define HCC_CRYPTO_ENDIAN_HPP

#include <bit>
#include <cstdint>
#include <cstring>

namespace hcc::crypto {

inline std::uint32_t
loadBe32(const std::uint8_t *p)
{
#if defined(__GNUC__) || defined(__clang__)
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    if constexpr (std::endian::native == std::endian::little)
        v = __builtin_bswap32(v);
    return v;
#else
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16)
        | (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
#endif
}

inline void
storeBe32(std::uint32_t v, std::uint8_t *p)
{
#if defined(__GNUC__) || defined(__clang__)
    if constexpr (std::endian::native == std::endian::little)
        v = __builtin_bswap32(v);
    std::memcpy(p, &v, 4);
#else
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
#endif
}

inline std::uint64_t
loadBe64(const std::uint8_t *p)
{
#if defined(__GNUC__) || defined(__clang__)
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    if constexpr (std::endian::native == std::endian::little)
        v = __builtin_bswap64(v);
    return v;
#else
    return (std::uint64_t{loadBe32(p)} << 32) | loadBe32(p + 4);
#endif
}

inline void
storeBe64(std::uint64_t v, std::uint8_t *p)
{
#if defined(__GNUC__) || defined(__clang__)
    if constexpr (std::endian::native == std::endian::little)
        v = __builtin_bswap64(v);
    std::memcpy(p, &v, 8);
#else
    storeBe32(static_cast<std::uint32_t>(v >> 32), p);
    storeBe32(static_cast<std::uint32_t>(v), p + 4);
#endif
}

} // namespace hcc::crypto

#endif // HCC_CRYPTO_ENDIAN_HPP
