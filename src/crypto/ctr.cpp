#include "crypto/ctr.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace hcc::crypto {

void
inc32(std::uint8_t counter[16])
{
    for (int i = 15; i >= 12; --i) {
        if (++counter[i] != 0)
            break;
    }
}

void
ctrXcrypt(const Aes &aes, const std::uint8_t counter0[16],
          std::span<const std::uint8_t> in, std::span<std::uint8_t> out)
{
    HCC_ASSERT(out.size() >= in.size(), "ctr output too small");
    std::uint8_t ctr[16];
    std::memcpy(ctr, counter0, 16);

    std::size_t off = 0;
    std::uint8_t ks[16];
    while (off < in.size()) {
        aes.encryptBlock(ctr, ks);
        inc32(ctr);
        const std::size_t n = std::min<std::size_t>(16, in.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] = in[off + i] ^ ks[i];
        off += n;
    }
}

} // namespace hcc::crypto
