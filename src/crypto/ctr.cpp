#include "crypto/ctr.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace hcc::crypto {

namespace {

/** Number of counter blocks encrypted per batch. */
constexpr std::size_t kCtrBatch = 4;

/** XOR @p n bytes (n a multiple of 8) via 64-bit words. */
inline void
xorWords(std::uint8_t *out, const std::uint8_t *in,
         const std::uint8_t *ks, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 8) {
        std::uint64_t a;
        std::uint64_t b;
        std::memcpy(&a, in + i, 8);
        std::memcpy(&b, ks + i, 8);
        a ^= b;
        std::memcpy(out + i, &a, 8);
    }
}

} // namespace

void
inc32(std::uint8_t counter[16])
{
    for (int i = 15; i >= 12; --i) {
        if (++counter[i] != 0)
            break;
    }
}

void
inc32By(std::uint8_t counter[16], std::uint32_t nblocks)
{
    std::uint32_t c = (static_cast<std::uint32_t>(counter[12]) << 24) |
                      (static_cast<std::uint32_t>(counter[13]) << 16) |
                      (static_cast<std::uint32_t>(counter[14]) << 8) |
                      static_cast<std::uint32_t>(counter[15]);
    c += nblocks;
    counter[12] = static_cast<std::uint8_t>(c >> 24);
    counter[13] = static_cast<std::uint8_t>(c >> 16);
    counter[14] = static_cast<std::uint8_t>(c >> 8);
    counter[15] = static_cast<std::uint8_t>(c);
}

void
ctrXcrypt(const Aes &aes, const std::uint8_t counter0[16],
          std::span<const std::uint8_t> in, std::span<std::uint8_t> out)
{
    HCC_ASSERT(out.size() >= in.size(), "ctr output too small");
    std::uint8_t ctr[16];
    std::memcpy(ctr, counter0, 16);

    std::size_t off = 0;
    std::uint8_t ks[kCtrBatch * 16];

    // Bulk loop: generate a batch of keystream blocks in one call
    // (the cipher never sees materialized counter blocks), XOR
    // word-wise.
    while (in.size() - off >= sizeof(ks)) {
        aes.ctrKeystream(ctr, ks, kCtrBatch);
        inc32By(ctr, kCtrBatch);
        xorWords(out.data() + off, in.data() + off, ks, sizeof(ks));
        off += sizeof(ks);
    }

    // Remaining whole blocks, then the byte-wise partial tail.
    while (off < in.size()) {
        aes.ctrKeystream(ctr, ks, 1);
        inc32(ctr);
        const std::size_t n = std::min<std::size_t>(16, in.size() - off);
        if (n == 16) {
            xorWords(out.data() + off, in.data() + off, ks, 16);
        } else {
            for (std::size_t i = 0; i < n; ++i)
                out[off + i] = in[off + i] ^ ks[i];
        }
        off += n;
    }
}

} // namespace hcc::crypto
