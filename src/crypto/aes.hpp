/**
 * @file
 * AES block cipher (FIPS-197), implemented from scratch.
 *
 * The simulator charges *modeled* time for bulk encryption (see
 * cpu_crypto_model.hpp); this functional implementation is used to
 * actually encrypt, authenticate and verify the bytes that flow
 * through the confidential-computing transfer path, so that tests can
 * assert end-to-end confidentiality and integrity invariants rather
 * than trusting the model.
 *
 * Three implementation tiers share one key schedule (impl.hpp):
 * the byte-oriented scalar reference (S-box + xtime MixColumns), a
 * word-oriented T-table fast path, and AES-NI intrinsics when the
 * CPU supports them.  All tiers are cross-checked against each
 * other in tests.
 *
 * Constant-time caveat: the scalar and T-table tiers index tables
 * with secret-dependent values and are therefore NOT constant-time
 * (cache-timing side channels exist); only the AES-NI tier is.
 * This code protects a simulation, not production secrets — see
 * docs/CRYPTO.md.
 */

#ifndef HCC_CRYPTO_AES_HPP
#define HCC_CRYPTO_AES_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "crypto/impl.hpp"

namespace hcc::crypto {

/** AES block size in bytes. */
constexpr std::size_t kAesBlock = 16;

/**
 * AES-128/192/256 block cipher with precomputed key schedule.
 */
class Aes
{
  public:
    /**
     * Expand the key schedule.
     * @param key 16, 24 or 32 bytes.
     * @param impl implementation tier; defaults to the process-wide
     *        selection (activeCryptoImpl()).
     * @throws FatalError on any other key length.
     */
    explicit Aes(std::span<const std::uint8_t> key);
    Aes(std::span<const std::uint8_t> key, CryptoImpl impl);

    /** Encrypt one 16-byte block (in and out may alias). */
    void encryptBlock(const std::uint8_t in[kAesBlock],
                      std::uint8_t out[kAesBlock]) const;

    /**
     * Encrypt @p nblocks consecutive 16-byte blocks (in and out may
     * alias exactly).  The bulk entry point: the T-table and AES-NI
     * tiers amortize per-call setup across the run.
     */
    void encryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                       std::size_t nblocks) const;

    /**
     * Write the AES-CTR keystream for @p nblocks consecutive counter
     * values into @p ks (16 bytes per block): block i encrypts
     * @p counter0 with its last 32 bits incremented by i (mod 2^32,
     * big-endian).  The T-table tier exploits the shared 96-bit
     * prefix to hoist round 0 and most of round 1 out of the
     * per-block work.
     */
    void ctrKeystream(const std::uint8_t counter0[kAesBlock],
                      std::uint8_t *ks, std::size_t nblocks) const;

    /** Decrypt one 16-byte block (in and out may alias). */
    void decryptBlock(const std::uint8_t in[kAesBlock],
                      std::uint8_t out[kAesBlock]) const;

    /** Scalar reference encryption, regardless of impl(). */
    void encryptBlockScalar(const std::uint8_t in[kAesBlock],
                            std::uint8_t out[kAesBlock]) const;

    /** Scalar reference decryption, regardless of impl(). */
    void decryptBlockScalar(const std::uint8_t in[kAesBlock],
                            std::uint8_t out[kAesBlock]) const;

    /** Number of rounds (10, 12 or 14). */
    int rounds() const { return rounds_; }

    /** Key length in bytes (16, 24 or 32). */
    std::size_t keyBytes() const { return key_bytes_; }

    /** Implementation tier this context dispatches to. */
    CryptoImpl impl() const { return impl_; }

  private:
    void encryptBlockTTable(const std::uint8_t in[kAesBlock],
                            std::uint8_t out[kAesBlock]) const;

    int rounds_ = 0;
    std::size_t key_bytes_ = 0;
    CryptoImpl impl_ = CryptoImpl::Scalar;
    // Round keys: (rounds+1) * 16 bytes; max 15 * 16 = 240.
    std::array<std::uint8_t, 240> rk_{};
    // The same schedule as big-endian 32-bit words (T-table path).
    std::array<std::uint32_t, 60> ek_{};
};

} // namespace hcc::crypto

#endif // HCC_CRYPTO_AES_HPP
