/**
 * @file
 * AES block cipher (FIPS-197), implemented from scratch.
 *
 * The simulator charges *modeled* time for bulk encryption (see
 * cpu_crypto_model.hpp); this functional implementation is used to
 * actually encrypt, authenticate and verify the bytes that flow
 * through the confidential-computing transfer path, so that tests can
 * assert end-to-end confidentiality and integrity invariants rather
 * than trusting the model.
 *
 * This is a straightforward byte-oriented implementation (S-box +
 * xtime MixColumns), optimized for clarity and reviewability, not for
 * throughput.  It is constant-table, not constant-time; it protects a
 * simulation, not production secrets.
 */

#ifndef HCC_CRYPTO_AES_HPP
#define HCC_CRYPTO_AES_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace hcc::crypto {

/** AES block size in bytes. */
constexpr std::size_t kAesBlock = 16;

/**
 * AES-128/192/256 block cipher with precomputed key schedule.
 */
class Aes
{
  public:
    /**
     * Expand the key schedule.
     * @param key 16, 24 or 32 bytes.
     * @throws FatalError on any other length.
     */
    explicit Aes(std::span<const std::uint8_t> key);

    /** Encrypt one 16-byte block (in and out may alias). */
    void encryptBlock(const std::uint8_t in[kAesBlock],
                      std::uint8_t out[kAesBlock]) const;

    /** Decrypt one 16-byte block (in and out may alias). */
    void decryptBlock(const std::uint8_t in[kAesBlock],
                      std::uint8_t out[kAesBlock]) const;

    /** Number of rounds (10, 12 or 14). */
    int rounds() const { return rounds_; }

    /** Key length in bytes (16, 24 or 32). */
    std::size_t keyBytes() const { return key_bytes_; }

  private:
    int rounds_ = 0;
    std::size_t key_bytes_ = 0;
    // Round keys: (rounds+1) * 16 bytes; max 15 * 16 = 240.
    std::array<std::uint8_t, 240> rk_{};
};

} // namespace hcc::crypto

#endif // HCC_CRYPTO_AES_HPP
