/**
 * @file
 * SHA-256 (FIPS 180-4), implemented from scratch.
 *
 * Used functionally by the attestation layer (measurement registers,
 * HMAC-signed quotes) and benchmarked alongside the ciphers; the
 * simulator charges modeled time (cpu_crypto_model.hpp) for bulk
 * hashing.
 */

#ifndef HCC_CRYPTO_SHA256_HPP
#define HCC_CRYPTO_SHA256_HPP

#include <array>
#include <cstdint>
#include <span>

namespace hcc::crypto {

/** SHA-256 digest length in bytes. */
constexpr std::size_t kSha256DigestLen = 32;

/** A SHA-256 digest. */
using Sha256Digest = std::array<std::uint8_t, kSha256DigestLen>;

/**
 * Incremental SHA-256.
 */
class Sha256
{
  public:
    Sha256();

    /** Absorb data (any length, any number of calls). */
    void update(std::span<const std::uint8_t> data);

    /** Finalize and return the digest; the object is then reset. */
    Sha256Digest finalize();

    /** One-shot convenience. */
    static Sha256Digest digest(std::span<const std::uint8_t> data);

  private:
    void processBlock(const std::uint8_t block[64]);
    void reset();

    std::array<std::uint32_t, 8> state_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * HMAC-SHA-256 (RFC 2104): keyed MAC used to stand in for the quote
 * signature in the attestation model.
 */
Sha256Digest hmacSha256(std::span<const std::uint8_t> key,
                        std::span<const std::uint8_t> message);

} // namespace hcc::crypto

#endif // HCC_CRYPTO_SHA256_HPP
