/**
 * @file
 * ChaCha20-Poly1305 AEAD (RFC 8439), implemented from scratch.
 *
 * The paper's Observation 2 weighs alternative ciphers for the CC
 * transfer path; this functional implementation backs the
 * ablation_crypto study the same way the AES-GCM implementation
 * backs the stock path.
 */

#ifndef HCC_CRYPTO_CHACHA_HPP
#define HCC_CRYPTO_CHACHA_HPP

#include <array>
#include <cstdint>
#include <span>

namespace hcc::crypto {

/** ChaCha20 key length. */
constexpr std::size_t kChaChaKeyLen = 32;
/** ChaCha20 nonce length (IETF variant). */
constexpr std::size_t kChaChaNonceLen = 12;
/** Poly1305 tag length. */
constexpr std::size_t kPolyTagLen = 16;

/**
 * Generate/apply the ChaCha20 keystream: out = in XOR keystream.
 * @param counter initial 32-bit block counter.
 */
void chacha20Xor(const std::uint8_t key[kChaChaKeyLen],
                 const std::uint8_t nonce[kChaChaNonceLen],
                 std::uint32_t counter,
                 std::span<const std::uint8_t> in,
                 std::span<std::uint8_t> out);

/** One-shot Poly1305 MAC with a 32-byte one-time key. */
void poly1305(const std::uint8_t key[32],
              std::span<const std::uint8_t> message,
              std::uint8_t tag[kPolyTagLen]);

/**
 * ChaCha20-Poly1305 AEAD bound to one key.
 */
class ChaChaPoly
{
  public:
    explicit ChaChaPoly(std::span<const std::uint8_t> key);

    /** Encrypt and authenticate (RFC 8439 construction). */
    void seal(const std::uint8_t nonce[kChaChaNonceLen],
              std::span<const std::uint8_t> aad,
              std::span<const std::uint8_t> plaintext,
              std::span<std::uint8_t> ciphertext,
              std::uint8_t tag[kPolyTagLen]) const;

    /** Verify and decrypt; zeroes plaintext and returns false on
     *  authentication failure. */
    [[nodiscard]] bool open(const std::uint8_t
                                nonce[kChaChaNonceLen],
                            std::span<const std::uint8_t> aad,
                            std::span<const std::uint8_t> ciphertext,
                            const std::uint8_t tag[kPolyTagLen],
                            std::span<std::uint8_t> plaintext) const;

  private:
    void computeTag(const std::uint8_t nonce[kChaChaNonceLen],
                    std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> ciphertext,
                    std::uint8_t tag[kPolyTagLen]) const;

    std::array<std::uint8_t, kChaChaKeyLen> key_{};
};

} // namespace hcc::crypto

#endif // HCC_CRYPTO_CHACHA_HPP
