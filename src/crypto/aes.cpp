#include "crypto/aes.hpp"

#include <cstring>

#include "common/log.hpp"
#include "crypto/accel.hpp"
#include "crypto/endian.hpp"

namespace hcc::crypto {

namespace {

// FIPS-197 S-box.
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

// Inverse S-box, generated as the inverse permutation of kSbox.
struct InvSbox
{
    std::uint8_t t[256];

    constexpr InvSbox() : t{}
    {
        for (int i = 0; i < 256; ++i)
            t[kSbox[i]] = static_cast<std::uint8_t>(i);
    }
};

constexpr InvSbox kInvSbox{};

constexpr std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

// GF(2^8) multiply, used by InvMixColumns.
constexpr std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

// ------------------------------------------------------------- T tables
//
// Te0[x] packs one S-box substitution and one MixColumns column:
// Te0[x] = (2*S[x], S[x], S[x], 3*S[x]) as a big-endian word; Te1..3
// are byte rotations of Te0, so one round of SubBytes + ShiftRows +
// MixColumns + AddRoundKey becomes four table lookups and four XORs
// per output word.

constexpr std::uint32_t
rotr8(std::uint32_t w)
{
    return (w >> 8) | (w << 24);
}

struct TeTables
{
    std::uint32_t t0[256];
    std::uint32_t t1[256];
    std::uint32_t t2[256];
    std::uint32_t t3[256];

    constexpr TeTables() : t0{}, t1{}, t2{}, t3{}
    {
        for (int i = 0; i < 256; ++i) {
            const std::uint8_t s = kSbox[i];
            const std::uint8_t s2 = xtime(s);
            const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
            t0[i] = (static_cast<std::uint32_t>(s2) << 24)
                | (static_cast<std::uint32_t>(s) << 16)
                | (static_cast<std::uint32_t>(s) << 8)
                | static_cast<std::uint32_t>(s3);
            t1[i] = rotr8(t0[i]);
            t2[i] = rotr8(t1[i]);
            t3[i] = rotr8(t2[i]);
        }
    }
};

constexpr TeTables kTe{};

/**
 * N blocks interleaved through the T-table rounds.  Each round's
 * four table reductions form one serial XOR chain per state word, so
 * a single block exposes only four independent chains to the
 * out-of-order core; interleaving multiplies that and hides most of
 * the L1 load latency.  N is a compile-time constant so the state
 * arrays scalarize into registers.
 */
template <int N>
inline void
ttableTailRounds(const std::uint32_t *rk, int nfull,
                 std::uint32_t (&s)[N][4], std::uint8_t *out)
{
    for (int r = 0; r < nfull; ++r, rk += 4) {
        std::uint32_t t[N][4];
        for (int n = 0; n < N; ++n) {
            t[n][0] = kTe.t0[s[n][0] >> 24]
                ^ kTe.t1[(s[n][1] >> 16) & 0xff]
                ^ kTe.t2[(s[n][2] >> 8) & 0xff] ^ kTe.t3[s[n][3] & 0xff]
                ^ rk[0];
            t[n][1] = kTe.t0[s[n][1] >> 24]
                ^ kTe.t1[(s[n][2] >> 16) & 0xff]
                ^ kTe.t2[(s[n][3] >> 8) & 0xff] ^ kTe.t3[s[n][0] & 0xff]
                ^ rk[1];
            t[n][2] = kTe.t0[s[n][2] >> 24]
                ^ kTe.t1[(s[n][3] >> 16) & 0xff]
                ^ kTe.t2[(s[n][0] >> 8) & 0xff] ^ kTe.t3[s[n][1] & 0xff]
                ^ rk[2];
            t[n][3] = kTe.t0[s[n][3] >> 24]
                ^ kTe.t1[(s[n][0] >> 16) & 0xff]
                ^ kTe.t2[(s[n][1] >> 8) & 0xff] ^ kTe.t3[s[n][2] & 0xff]
                ^ rk[3];
        }
        for (int n = 0; n < N; ++n)
            for (int j = 0; j < 4; ++j)
                s[n][j] = t[n][j];
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    auto fin = [](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                  std::uint32_t d) {
        return (static_cast<std::uint32_t>(kSbox[a >> 24]) << 24)
            | (static_cast<std::uint32_t>(kSbox[(b >> 16) & 0xff])
               << 16)
            | (static_cast<std::uint32_t>(kSbox[(c >> 8) & 0xff]) << 8)
            | static_cast<std::uint32_t>(kSbox[d & 0xff]);
    };
    for (int n = 0; n < N; ++n) {
        storeBe32(fin(s[n][0], s[n][1], s[n][2], s[n][3]) ^ rk[0],
                  out + 16 * n);
        storeBe32(fin(s[n][1], s[n][2], s[n][3], s[n][0]) ^ rk[1],
                  out + 16 * n + 4);
        storeBe32(fin(s[n][2], s[n][3], s[n][0], s[n][1]) ^ rk[2],
                  out + 16 * n + 8);
        storeBe32(fin(s[n][3], s[n][0], s[n][1], s[n][2]) ^ rk[3],
                  out + 16 * n + 12);
    }
}

template <int N>
inline void
ttableEncryptWide(const std::uint32_t *ek, int rounds,
                  const std::uint8_t *in, std::uint8_t *out)
{
    std::uint32_t s[N][4];
    for (int n = 0; n < N; ++n)
        for (int j = 0; j < 4; ++j)
            s[n][j] = loadBe32(in + 16 * n + 4 * j) ^ ek[j];
    ttableTailRounds<N>(ek + 4, rounds - 1, s, out);
}

/**
 * CTR-specialized variant: the N counter blocks share their first 12
 * bytes, so round 0 and three of the four table terms in every
 * round-1 word depend only on the shared prefix and are computed once
 * per call.  Per block, round 1 shrinks from 16 table loads to 4, and
 * the counter blocks are never materialized in memory — the low word
 * is just c + n.
 */
template <int N>
inline void
ttableCtrWide(const std::uint32_t *ek, int rounds, std::uint32_t w0,
              std::uint32_t w1, std::uint32_t w2, std::uint32_t c,
              std::uint8_t *ks)
{
    const std::uint32_t s0 = w0 ^ ek[0];
    const std::uint32_t s1 = w1 ^ ek[1];
    const std::uint32_t s2 = w2 ^ ek[2];
    const std::uint32_t *rk = ek + 4;
    const std::uint32_t k0 = kTe.t0[s0 >> 24]
        ^ kTe.t1[(s1 >> 16) & 0xff] ^ kTe.t2[(s2 >> 8) & 0xff] ^ rk[0];
    const std::uint32_t k1 = kTe.t0[s1 >> 24]
        ^ kTe.t1[(s2 >> 16) & 0xff] ^ kTe.t3[s0 & 0xff] ^ rk[1];
    const std::uint32_t k2 = kTe.t0[s2 >> 24]
        ^ kTe.t2[(s0 >> 8) & 0xff] ^ kTe.t3[s1 & 0xff] ^ rk[2];
    const std::uint32_t k3 = kTe.t1[(s0 >> 16) & 0xff]
        ^ kTe.t2[(s1 >> 8) & 0xff] ^ kTe.t3[s2 & 0xff] ^ rk[3];

    std::uint32_t s[N][4];
    for (int n = 0; n < N; ++n) {
        const std::uint32_t s3 =
            (c + static_cast<std::uint32_t>(n)) ^ ek[3];
        s[n][0] = k0 ^ kTe.t3[s3 & 0xff];
        s[n][1] = k1 ^ kTe.t2[(s3 >> 8) & 0xff];
        s[n][2] = k2 ^ kTe.t1[(s3 >> 16) & 0xff];
        s[n][3] = k3 ^ kTe.t0[s3 >> 24];
    }
    ttableTailRounds<N>(ek + 8, rounds - 2, s, ks);
}

// ------------------------------------------------------ scalar rounds

void
subBytes(std::uint8_t s[16])
{
    for (int i = 0; i < 16; ++i)
        s[i] = kSbox[s[i]];
}

void
invSubBytes(std::uint8_t s[16])
{
    for (int i = 0; i < 16; ++i)
        s[i] = kInvSbox.t[s[i]];
}

// State layout: s[r + 4*c] (column-major, FIPS-197 convention when the
// input block is copied column by column).
void
shiftRows(std::uint8_t s[16])
{
    std::uint8_t t;
    // Row 1: rotate left by 1.
    t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    // Row 2: rotate left by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: rotate left by 3 (== right by 1).
    t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
}

void
invShiftRows(std::uint8_t s[16])
{
    std::uint8_t t;
    // Row 1: rotate right by 1.
    t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
    // Row 2: rotate right by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: rotate right by 3 (== left by 1).
    t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
}

void
mixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1];
        const std::uint8_t a2 = col[2], a3 = col[3];
        const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(a0 ^ a1));
        col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(a1 ^ a2));
        col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(a2 ^ a3));
        col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(a3 ^ a0));
    }
}

void
invMixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1];
        const std::uint8_t a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(
            gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d)
            ^ gmul(a3, 0x09));
        col[1] = static_cast<std::uint8_t>(
            gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b)
            ^ gmul(a3, 0x0d));
        col[2] = static_cast<std::uint8_t>(
            gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e)
            ^ gmul(a3, 0x0b));
        col[3] = static_cast<std::uint8_t>(
            gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09)
            ^ gmul(a3, 0x0e));
    }
}

void
addRoundKey(std::uint8_t s[16], const std::uint8_t *rk)
{
    for (int i = 0; i < 16; ++i)
        s[i] ^= rk[i];
}

} // namespace

Aes::Aes(std::span<const std::uint8_t> key)
    : Aes(key, activeCryptoImpl())
{}

Aes::Aes(std::span<const std::uint8_t> key, CryptoImpl impl)
    : impl_(impl)
{
    key_bytes_ = key.size();
    switch (key.size()) {
      case 16: rounds_ = 10; break;
      case 24: rounds_ = 12; break;
      case 32: rounds_ = 14; break;
      default:
        fatal("AES key must be 16, 24 or 32 bytes, got %zu", key.size());
    }
    if (!cryptoImplSupported(impl_))
        fatal("crypto implementation '%s' is not supported here",
              cryptoImplName(impl_).c_str());

    // FIPS-197 key expansion over 4-byte words.
    const std::size_t nk = key.size() / 4;
    const std::size_t total_words =
        4 * (static_cast<std::size_t>(rounds_) + 1);
    std::memcpy(rk_.data(), key.data(), key.size());

    std::uint8_t rcon = 0x01;
    for (std::size_t w = nk; w < total_words; ++w) {
        std::uint8_t tmp[4];
        std::memcpy(tmp, rk_.data() + 4 * (w - 1), 4);
        if (w % nk == 0) {
            // RotWord + SubWord + Rcon.
            const std::uint8_t t0 = tmp[0];
            tmp[0] = static_cast<std::uint8_t>(kSbox[tmp[1]] ^ rcon);
            tmp[1] = kSbox[tmp[2]];
            tmp[2] = kSbox[tmp[3]];
            tmp[3] = kSbox[t0];
            rcon = xtime(rcon);
        } else if (nk > 6 && w % nk == 4) {
            // AES-256 extra SubWord.
            for (auto &b : tmp)
                b = kSbox[b];
        }
        for (int i = 0; i < 4; ++i) {
            rk_[4 * w + static_cast<std::size_t>(i)] =
                rk_[4 * (w - nk) + static_cast<std::size_t>(i)]
                ^ tmp[i];
        }
    }

    // Word view of the same schedule for the T-table path.
    for (std::size_t w = 0; w < total_words; ++w)
        ek_[w] = loadBe32(rk_.data() + 4 * w);
}

void
Aes::encryptBlockScalar(const std::uint8_t in[kAesBlock],
                        std::uint8_t out[kAesBlock]) const
{
    std::uint8_t s[16];
    std::memcpy(s, in, 16);
    addRoundKey(s, rk_.data());
    for (int r = 1; r < rounds_; ++r) {
        subBytes(s);
        shiftRows(s);
        mixColumns(s);
        addRoundKey(s, rk_.data() + 16 * r);
    }
    subBytes(s);
    shiftRows(s);
    addRoundKey(s, rk_.data() + 16 * rounds_);
    std::memcpy(out, s, 16);
}

void
Aes::encryptBlockTTable(const std::uint8_t in[kAesBlock],
                        std::uint8_t out[kAesBlock]) const
{
    ttableEncryptWide<1>(ek_.data(), rounds_, in, out);
}

void
Aes::encryptBlock(const std::uint8_t in[kAesBlock],
                  std::uint8_t out[kAesBlock]) const
{
    switch (impl_) {
      case CryptoImpl::Scalar:
        encryptBlockScalar(in, out);
        return;
      case CryptoImpl::TTable:
        encryptBlockTTable(in, out);
        return;
      case CryptoImpl::Aesni:
        accel::aesniEncryptBlocks(rk_.data(), rounds_, in, out, 1);
        return;
    }
}

void
Aes::encryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                   std::size_t nblocks) const
{
    switch (impl_) {
      case CryptoImpl::Scalar:
        for (std::size_t i = 0; i < nblocks; ++i)
            encryptBlockScalar(in + 16 * i, out + 16 * i);
        return;
      case CryptoImpl::TTable: {
        std::size_t i = 0;
        for (; i + 4 <= nblocks; i += 4)
            ttableEncryptWide<4>(ek_.data(), rounds_, in + 16 * i,
                                 out + 16 * i);
        for (; i + 2 <= nblocks; i += 2)
            ttableEncryptWide<2>(ek_.data(), rounds_, in + 16 * i,
                                 out + 16 * i);
        if (i < nblocks)
            ttableEncryptWide<1>(ek_.data(), rounds_, in + 16 * i,
                                 out + 16 * i);
        return;
      }
      case CryptoImpl::Aesni:
        accel::aesniEncryptBlocks(rk_.data(), rounds_, in, out,
                                  nblocks);
        return;
    }
}

void
Aes::ctrKeystream(const std::uint8_t counter0[kAesBlock],
                  std::uint8_t *ks, std::size_t nblocks) const
{
    if (impl_ == CryptoImpl::TTable) {
        const std::uint32_t w0 = loadBe32(counter0);
        const std::uint32_t w1 = loadBe32(counter0 + 4);
        const std::uint32_t w2 = loadBe32(counter0 + 8);
        const std::uint32_t c = loadBe32(counter0 + 12);
        std::size_t i = 0;
        for (; i + 4 <= nblocks; i += 4)
            ttableCtrWide<4>(ek_.data(), rounds_, w0, w1, w2,
                             c + static_cast<std::uint32_t>(i),
                             ks + 16 * i);
        for (; i < nblocks; ++i)
            ttableCtrWide<1>(ek_.data(), rounds_, w0, w1, w2,
                             c + static_cast<std::uint32_t>(i),
                             ks + 16 * i);
        return;
    }

    // Generic tiers: materialize the counter blocks in the output
    // buffer and bulk-encrypt in place (in == out aliasing is
    // explicitly supported by encryptBlocks).
    const std::uint32_t c = loadBe32(counter0 + 12);
    for (std::size_t i = 0; i < nblocks; ++i) {
        std::memcpy(ks + 16 * i, counter0, 12);
        storeBe32(c + static_cast<std::uint32_t>(i), ks + 16 * i + 12);
    }
    encryptBlocks(ks, ks, nblocks);
}

void
Aes::decryptBlockScalar(const std::uint8_t in[kAesBlock],
                        std::uint8_t out[kAesBlock]) const
{
    std::uint8_t s[16];
    std::memcpy(s, in, 16);
    addRoundKey(s, rk_.data() + 16 * rounds_);
    for (int r = rounds_ - 1; r >= 1; --r) {
        invShiftRows(s);
        invSubBytes(s);
        addRoundKey(s, rk_.data() + 16 * r);
        invMixColumns(s);
    }
    invShiftRows(s);
    invSubBytes(s);
    addRoundKey(s, rk_.data());
    std::memcpy(out, s, 16);
}

void
Aes::decryptBlock(const std::uint8_t in[kAesBlock],
                  std::uint8_t out[kAesBlock]) const
{
    // Decryption is off the bulk path (CTR/GCM only ever encrypt;
    // XTS/MEE decrypt per cache line), so only AES-NI specializes it.
    if (impl_ == CryptoImpl::Aesni) {
        accel::aesniDecryptBlock(rk_.data(), rounds_, in, out);
        return;
    }
    decryptBlockScalar(in, out);
}

} // namespace hcc::crypto
