/**
 * @file
 * AES-GCM authenticated encryption (NIST SP 800-38D).
 *
 * This is the algorithm NVIDIA's CC stack uses in software (with
 * AES-NI) for all CPU<->GPU PCIe traffic; the SecureChannel in
 * src/tee runs real bytes through this implementation so integrity
 * violations (bounce-buffer tampering) are actually detected.
 *
 * IV handling: only 96-bit IVs are supported, enforced by the GcmIv
 * type — J0 is IV || 0^31 || 1 and no GHASH-based IV derivation is
 * implemented.  This matches the CC transfer path (the driver's
 * nonces are fixed-width channel||counter values) and avoids the
 * non-96-bit pitfalls SP 800-38D warns about.
 *
 * Thread safety: seal/open are const and may be called concurrently
 * from multiple threads on one AesGcm (the SecureChannel worker pool
 * does); the obs counters they bump are atomic.
 */

#ifndef HCC_CRYPTO_GCM_HPP
#define HCC_CRYPTO_GCM_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/aes.hpp"
#include "crypto/ghash.hpp"
#include "obs/registry.hpp"

namespace hcc::crypto {

/** GCM authentication tag length used throughout (full 16 bytes). */
constexpr std::size_t kGcmTagLen = 16;

/** A 96-bit GCM IV (the only width supported; see file comment). */
using GcmIv = std::array<std::uint8_t, 12>;

static_assert(std::tuple_size_v<GcmIv> == 12,
              "GCM J0 construction assumes a 96-bit IV");

/**
 * AES-GCM context bound to one key.
 */
class AesGcm
{
  public:
    /**
     * @param key 16 or 32 bytes (AES-128-GCM or AES-256-GCM).
     * @param obs optional stats sink; publishes
     *        "crypto.aes_gcm.{seal_calls,open_calls,auth_failures,
     *        bytes_sealed,bytes_opened}".
     */
    explicit AesGcm(std::span<const std::uint8_t> key,
                    obs::Registry *obs = nullptr);

    /** Same, pinned to an implementation tier (tests/benchmarks). */
    AesGcm(std::span<const std::uint8_t> key, CryptoImpl impl,
           obs::Registry *obs = nullptr);

    /**
     * Encrypt and authenticate.
     * @param iv 96-bit nonce; must be unique per key.
     * @param aad additional authenticated (but not encrypted) data.
     * @param plaintext input.
     * @param ciphertext output, same length as plaintext.
     * @param tag output authentication tag.
     */
    void seal(const GcmIv &iv, std::span<const std::uint8_t> aad,
              std::span<const std::uint8_t> plaintext,
              std::span<std::uint8_t> ciphertext,
              std::uint8_t tag[kGcmTagLen]) const;

    /**
     * Verify and decrypt.
     * @return true if the tag verified and @p plaintext was written;
     *         false on authentication failure (plaintext is zeroed).
     */
    [[nodiscard]] bool open(const GcmIv &iv,
                            std::span<const std::uint8_t> aad,
                            std::span<const std::uint8_t> ciphertext,
                            const std::uint8_t tag[kGcmTagLen],
                            std::span<std::uint8_t> plaintext) const;

    /** Implementation tier of the underlying AES/GHASH. */
    CryptoImpl impl() const { return aes_.impl(); }

  private:
    void computeTag(const GcmIv &iv, std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> ciphertext,
                    std::uint8_t tag[kGcmTagLen]) const;

    /** Fold the length block into @p ghash and mask with E_K(J0). */
    void finishTag(Ghash &ghash, const GcmIv &iv, std::size_t aad_len,
                   std::size_t ct_len,
                   std::uint8_t tag[kGcmTagLen]) const;

    Aes aes_;
    std::array<std::uint8_t, 16> h_{};
    /** Precomputed GHASH tables, shared by every seal/open. */
    std::optional<GhashKey> ghash_key_;
    // Stat pointers (not a Registry*) so const seal/open can bump them.
    obs::Counter *obs_seal_calls_ = nullptr;
    obs::Counter *obs_open_calls_ = nullptr;
    obs::Counter *obs_auth_failures_ = nullptr;
    obs::Counter *obs_bytes_sealed_ = nullptr;
    obs::Counter *obs_bytes_opened_ = nullptr;
};

/**
 * Monotonic IV source: a per-channel invocation counter, mirroring
 * how the driver derives unique nonces for each PCIe transfer.
 */
class GcmIvSequence
{
  public:
    explicit GcmIvSequence(std::uint32_t channel_id = 0);

    /** Next unique IV. */
    GcmIv next();

    std::uint64_t issued() const { return counter_; }

    /** Snapshot support: the invocation counter (the channel id is
     *  construction-fixed). */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        ar.pod(counter_);
    }

  private:
    std::uint32_t channel_;
    std::uint64_t counter_ = 0;
};

} // namespace hcc::crypto

#endif // HCC_CRYPTO_GCM_HPP
