/**
 * @file
 * AES-GCM authenticated encryption (NIST SP 800-38D).
 *
 * This is the algorithm NVIDIA's CC stack uses in software (with
 * AES-NI) for all CPU<->GPU PCIe traffic; the SecureChannel in
 * src/tee runs real bytes through this implementation so integrity
 * violations (bounce-buffer tampering) are actually detected.
 */

#ifndef HCC_CRYPTO_GCM_HPP
#define HCC_CRYPTO_GCM_HPP

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.hpp"
#include "obs/registry.hpp"

namespace hcc::crypto {

/** GCM authentication tag length used throughout (full 16 bytes). */
constexpr std::size_t kGcmTagLen = 16;

/** A 96-bit GCM IV. */
using GcmIv = std::array<std::uint8_t, 12>;

/**
 * AES-GCM context bound to one key.
 */
class AesGcm
{
  public:
    /**
     * @param key 16 or 32 bytes (AES-128-GCM or AES-256-GCM).
     * @param obs optional stats sink; publishes
     *        "crypto.aes_gcm.{seal_calls,open_calls,auth_failures,
     *        bytes_sealed,bytes_opened}".
     */
    explicit AesGcm(std::span<const std::uint8_t> key,
                    obs::Registry *obs = nullptr);

    /**
     * Encrypt and authenticate.
     * @param iv 96-bit nonce; must be unique per key.
     * @param aad additional authenticated (but not encrypted) data.
     * @param plaintext input.
     * @param ciphertext output, same length as plaintext.
     * @param tag output authentication tag.
     */
    void seal(const GcmIv &iv, std::span<const std::uint8_t> aad,
              std::span<const std::uint8_t> plaintext,
              std::span<std::uint8_t> ciphertext,
              std::uint8_t tag[kGcmTagLen]) const;

    /**
     * Verify and decrypt.
     * @return true if the tag verified and @p plaintext was written;
     *         false on authentication failure (plaintext is zeroed).
     */
    [[nodiscard]] bool open(const GcmIv &iv,
                            std::span<const std::uint8_t> aad,
                            std::span<const std::uint8_t> ciphertext,
                            const std::uint8_t tag[kGcmTagLen],
                            std::span<std::uint8_t> plaintext) const;

  private:
    void computeTag(const GcmIv &iv, std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> ciphertext,
                    std::uint8_t tag[kGcmTagLen]) const;

    Aes aes_;
    std::array<std::uint8_t, 16> h_{};
    // Stat pointers (not a Registry*) so const seal/open can bump them.
    obs::Counter *obs_seal_calls_ = nullptr;
    obs::Counter *obs_open_calls_ = nullptr;
    obs::Counter *obs_auth_failures_ = nullptr;
    obs::Counter *obs_bytes_sealed_ = nullptr;
    obs::Counter *obs_bytes_opened_ = nullptr;
};

/**
 * Monotonic IV source: a per-channel invocation counter, mirroring
 * how the driver derives unique nonces for each PCIe transfer.
 */
class GcmIvSequence
{
  public:
    explicit GcmIvSequence(std::uint32_t channel_id = 0);

    /** Next unique IV. */
    GcmIv next();

    std::uint64_t issued() const { return counter_; }

  private:
    std::uint32_t channel_;
    std::uint64_t counter_ = 0;
};

} // namespace hcc::crypto

#endif // HCC_CRYPTO_GCM_HPP
