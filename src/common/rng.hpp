/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * We use PCG32 (O'Neill) rather than std::mt19937 so that streams are
 * cheap to fork per component and results are identical across
 * standard-library implementations.
 *
 * The draw paths are header-inline: the simulator's per-launch cost
 * model makes three lognormal and one normal draw per kernel launch,
 * so the call overhead of out-of-line one-liners is measurable on
 * large cells.  Only the Box-Muller pair generation (log/sqrt/sin/
 * cos) stays out of line — its cost is the math, not the call.
 */

#ifndef HCC_COMMON_RNG_HPP
#define HCC_COMMON_RNG_HPP

#include <cmath>
#include <cstdint>

#include "common/log.hpp"

namespace hcc {

/**
 * PCG32 generator: 64-bit state, 32-bit output, selectable stream.
 */
class Rng
{
  public:
    /** Construct from a seed and an optional stream id. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t
    next32()
    {
        const std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        const auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        const auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    /** Next raw 64-bit value (two 32-bit draws). */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next32()) << 32) | next32();
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53-bit mantissa from a 64-bit draw.
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached second draw). */
    double
    normal()
    {
        if (hasSpare_) {
            hasSpare_ = false;
            return spare_;
        }
        return normalPair();
    }

    /** Normal with mean @p mu and standard deviation @p sigma. */
    double normal(double mu, double sigma)
    {
        return mu + sigma * normal();
    }

    /**
     * Lognormal draw parameterized directly by the desired median and
     * multiplicative spread sigma (log-space standard deviation).
     * Used for launch-overhead jitter whose distribution has a long
     * right tail, as observed in the paper's Fig. 11a.
     */
    double
    lognormal(double median, double sigma)
    {
        HCC_ASSERT(median > 0.0, "lognormal median must be positive");
        return median * std::exp(sigma * normal());
    }

    /** Fork a child generator with an independent stream. */
    Rng fork(std::uint64_t stream_salt);

    /**
     * Snapshot support (snap/archive.hpp): the full draw position —
     * PCG state and stream plus the Box-Muller spare cache, so a
     * restored generator replays the exact same sequence, including
     * an interrupted normal() pair.
     */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        ar.pod(state_);
        ar.pod(inc_);
        ar.pod(hasSpare_);
        ar.pod(spare_);
    }

  private:
    /** Generate a fresh Box-Muller pair; caches one, returns one. */
    double normalPair();

    std::uint64_t state_;
    std::uint64_t inc_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace hcc

#endif // HCC_COMMON_RNG_HPP
