/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * We use PCG32 (O'Neill) rather than std::mt19937 so that streams are
 * cheap to fork per component and results are identical across
 * standard-library implementations.
 */

#ifndef HCC_COMMON_RNG_HPP
#define HCC_COMMON_RNG_HPP

#include <cstdint>

namespace hcc {

/**
 * PCG32 generator: 64-bit state, 32-bit output, selectable stream.
 */
class Rng
{
  public:
    /** Construct from a seed and an optional stream id. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next32();

    /** Next raw 64-bit value (two 32-bit draws). */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached second draw). */
    double normal();

    /** Normal with mean @p mu and standard deviation @p sigma. */
    double normal(double mu, double sigma);

    /**
     * Lognormal draw parameterized directly by the desired median and
     * multiplicative spread sigma (log-space standard deviation).
     * Used for launch-overhead jitter whose distribution has a long
     * right tail, as observed in the paper's Fig. 11a.
     */
    double lognormal(double median, double sigma);

    /** Fork a child generator with an independent stream. */
    Rng fork(std::uint64_t stream_salt);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace hcc

#endif // HCC_COMMON_RNG_HPP
