/**
 * @file
 * Plain-text table and CSV emitters used by the benchmark harnesses to
 * print paper-style rows/series.
 */

#ifndef HCC_COMMON_TABLE_HPP
#define HCC_COMMON_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace hcc {

/**
 * Fixed-column text table with an optional title, printed with aligned
 * columns.  Cells are strings; helpers format numbers consistently.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void header(std::vector<std::string> cols);

    /** Append a data row; must match the header arity if one is set. */
    void row(std::vector<std::string> cells);

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

    /** Emit as CSV (header first if present). */
    std::string csv() const;

    std::size_t rowCount() const { return rows_.size(); }

    /** Format a double with @p decimals places. */
    static std::string num(double v, int decimals = 2);

    /** Format a ratio as "N.NNx". */
    static std::string ratio(double v, int decimals = 2);

    /** Format a percentage as "N.N%". */
    static std::string pct(double v, int decimals = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hcc

#endif // HCC_COMMON_TABLE_HPP
