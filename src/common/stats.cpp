#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hpp"

namespace hcc {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
SampleSet::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
SampleSet::addAll(const std::vector<double> &xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

double
SampleSet::sum() const
{
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double
SampleSet::mean() const
{
    return samples_.empty()
        ? 0.0 : sum() / static_cast<double>(samples_.size());
}

double
SampleSet::min() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.front();
}

double
SampleSet::max() const
{
    ensureSorted();
    return samples_.empty() ? 0.0 : samples_.back();
}

void
SampleSet::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleSet::percentile(double p) const
{
    HCC_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_[0];
    const double rank =
        p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<double>
SampleSet::sorted() const
{
    ensureSorted();
    return samples_;
}

std::vector<std::pair<double, double>>
SampleSet::cdf(std::size_t drop_top) const
{
    ensureSorted();
    std::vector<std::pair<double, double>> pts;
    if (samples_.empty())
        return pts;
    const std::size_t n = samples_.size() > drop_top
        ? samples_.size() - drop_top : 0;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        pts.emplace_back(samples_[i],
                         static_cast<double>(i + 1)
                             / static_cast<double>(n));
    }
    return pts;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        HCC_ASSERT(x > 0.0, "geomean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0)
        / static_cast<double>(xs.size());
}

} // namespace hcc
