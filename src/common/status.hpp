/**
 * @file
 * Typed, recoverable error reporting: hcc::Status and hcc::Result<T>.
 *
 * The error-handling split (gem5-flavoured, see log.hpp):
 *  - Status / Result<T>  — *recoverable* operational failures the
 *    caller is expected to handle: an authentication tag mismatch on
 *    the CC transfer path, a failed SPDM handshake, a malformed spec
 *    or stats file.  These travel as values, carry a machine-readable
 *    ErrorCode plus a human message, and never unwind the stack.
 *  - FatalError (fatal()) — unrecoverable user errors where no caller
 *    can do better than report and exit (bad CLI configuration caught
 *    at the top level).
 *  - panic()/HCC_ASSERT — programmer misuse / simulator bugs; aborts.
 *
 * Accessing the value of an error Result is programmer misuse and
 * panics, so a forgotten `.ok()` check fails loudly in tests instead
 * of silently reading a default-constructed value.
 */

#ifndef HCC_COMMON_STATUS_HPP
#define HCC_COMMON_STATUS_HPP

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "common/log.hpp"

namespace hcc {

/** Machine-readable category of a Status. */
enum class ErrorCode
{
    Ok,
    InvalidArgument,    //!< caller passed a semantically bad value
    ParseError,         //!< malformed text input (spec/stats/flag)
    IoError,            //!< file missing, unreadable or unwritable
    NotFound,           //!< named entity does not exist
    IntegrityError,     //!< authentication/decryption failure
    HandshakeError,     //!< SPDM/attestation session setup failure
    ResourceExhausted,  //!< a bounded pool ran dry
    RetriesExhausted,   //!< recovery gave up after bounded retries
    Internal,           //!< unexpected but reportable condition
};

/** Canonical name of an error code. */
inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::InvalidArgument: return "invalid-argument";
      case ErrorCode::ParseError: return "parse-error";
      case ErrorCode::IoError: return "io-error";
      case ErrorCode::NotFound: return "not-found";
      case ErrorCode::IntegrityError: return "integrity-error";
      case ErrorCode::HandshakeError: return "handshake-error";
      case ErrorCode::ResourceExhausted: return "resource-exhausted";
      case ErrorCode::RetriesExhausted: return "retries-exhausted";
      case ErrorCode::Internal: return "internal";
    }
    return "?";
}

/**
 * The outcome of a fallible operation: Ok, or an ErrorCode plus a
 * human-readable message.  Cheap to move, comparable on code.
 */
class Status
{
  public:
    /** Ok status. */
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    [[nodiscard]] bool ok() const { return code_ == ErrorCode::Ok; }

    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "parse-error: line 3: unknown key 'bogus'" (or "ok"). */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(errorCodeName(code_)) + ": " + message_;
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/** printf-style Status construction. */
__attribute__((format(printf, 2, 3))) inline Status
errorf(ErrorCode code, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string msg(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(msg.data(), msg.size() + 1, fmt, ap2);
    va_end(ap2);
    return Status(code, std::move(msg));
}

/**
 * A value or an error Status.  The simulator's typed replacement for
 * bool returns and throw-on-parse-error.
 *
 * @code
 *   Result<AppSpec> r = parseSpecText(text);
 *   if (!r.ok())
 *       return r.status();   // propagate
 *   use(r.value());
 * @endcode
 */
template <typename T>
class Result
{
  public:
    /** Success. */
    Result(T value) : value_(std::move(value)) {}

    /** Failure; @p status must not be Ok (programmer misuse). */
    Result(Status status) : status_(std::move(status))
    {
        HCC_ASSERT(!status_.ok(),
                   "Result built from an Ok status without a value");
    }

    [[nodiscard]] bool ok() const { return value_.has_value(); }

    const Status &status() const { return status_; }

    /** The value; panics when called on an error (check ok() first). */
    T &
    value()
    {
        HCC_ASSERT(ok(), status_.toString().c_str());
        return *value_;
    }

    const T &
    value() const
    {
        HCC_ASSERT(ok(), status_.toString().c_str());
        return *value_;
    }

    /** Move the value out (panics on error). */
    T
    take()
    {
        HCC_ASSERT(ok(), status_.toString().c_str());
        return std::move(*value_);
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace hcc

#endif // HCC_COMMON_STATUS_HPP
