#include "common/units.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hcc {

SimTime
transferTime(Bytes bytes, double gb_per_s)
{
    if (bytes == 0)
        return 0;
    if (gb_per_s <= 0.0)
        return 0;
    // bytes / (GB/s) = seconds * 1e-9; convert to picoseconds.
    const double ps = static_cast<double>(bytes) / gb_per_s * 1e3;
    return std::max<SimTime>(1, static_cast<SimTime>(ps));
}

double
bandwidthGBs(Bytes bytes, SimTime elapsed)
{
    if (elapsed <= 0)
        return 0.0;
    return static_cast<double>(bytes) / (static_cast<double>(elapsed) * 1e-3);
}

std::string
formatTime(SimTime t)
{
    char buf[64];
    const double a = std::abs(static_cast<double>(t));
    if (a >= 1e12)
        std::snprintf(buf, sizeof(buf), "%.3f s", time::toSec(t));
    else if (a >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.3f ms", time::toMs(t));
    else if (a >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.3f us", time::toUs(t));
    else if (a >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.3f ns", time::toNs(t));
    else
        std::snprintf(buf, sizeof(buf), "%lld ps",
                      static_cast<long long>(t));
    return buf;
}

std::string
formatBytes(Bytes b)
{
    char buf[64];
    if (b >= (1ull << 30))
        std::snprintf(buf, sizeof(buf), "%.2f GiB", size::toGiB(b));
    else if (b >= (1ull << 20))
        std::snprintf(buf, sizeof(buf), "%.2f MiB", size::toMiB(b));
    else if (b >= (1ull << 10))
        std::snprintf(buf, sizeof(buf), "%.2f KiB", size::toKiB(b));
    else
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(b));
    return buf;
}

} // namespace hcc
