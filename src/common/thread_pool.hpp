/**
 * @file
 * Work-stealing thread pool for the embarrassingly-parallel outer
 * loops of the simulator: sweep grids, compare pairs, figure benches.
 *
 * Each worker owns a deque; submission round-robins tasks across the
 * deques, a worker pops its own deque LIFO (cache-warm) and steals
 * FIFO from its neighbours when it runs dry.  Tasks are expected to
 * be coarse (one whole simulation each), so a single pool mutex is
 * cheap and keeps the implementation obviously race-free under
 * ThreadSanitizer.
 *
 * The pool executes tasks on *worker* threads: anything a task
 * touches must either be task-local (the sweep engine gives every
 * run its own SimContext/Registry/Rng/Tracer) or thread-safe.  Tasks
 * must not throw — the sweep layer converts per-run FatalErrors into
 * failed cells before they reach the pool; a task that does leak an
 * exception is counted in Stats::uncaught rather than terminating
 * the process.
 */

#ifndef HCC_COMMON_THREAD_POOL_HPP
#define HCC_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hcc {

/**
 * Fixed-size work-stealing pool.  Construction spawns the workers;
 * destruction drains nothing — call wait() first if completion
 * matters (runIndexed() does).
 */
class ThreadPool
{
  public:
    /** Post-run execution counters (see stats()). */
    struct Stats
    {
        /** Tasks executed to completion. */
        std::uint64_t executed = 0;
        /** Tasks a worker stole from another worker's deque. */
        std::uint64_t stolen = 0;
        /** Tasks that leaked an exception (a bug in the caller). */
        std::uint64_t uncaught = 0;
        /** Sum of per-task wall-clock across all workers, us. */
        double busy_us = 0.0;
        /** Worker threads the pool ran with. */
        int jobs = 0;

        /**
         * Fraction of worker capacity spent running tasks during
         * @p wall_us of pool wall-clock (0 when unknowable).
         */
        double utilization(double wall_us) const;
    };

    /** @param jobs worker threads; < 1 is clamped to 1. */
    explicit ThreadPool(int jobs);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int jobs() const { return static_cast<int>(workers_.size()); }

    /** Enqueue @p task; runs on some worker, in no defined order. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Execution counters; call after wait() for stable values. */
    Stats stats() const;

    /** Default worker count: hardware_concurrency, at least 1. */
    static int defaultJobs();

  private:
    void workerLoop(std::size_t self);
    bool takeTask(std::size_t self, std::function<void()> &task,
                  bool &stole);

    struct WorkerQueue
    {
        std::deque<std::function<void()>> tasks;
    };

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::vector<WorkerQueue> queues_;
    std::vector<std::thread> workers_;
    std::size_t next_queue_ = 0;
    std::size_t pending_ = 0;
    bool stopping_ = false;
    Stats stats_;
};

/**
 * Run fn(0) .. fn(n-1) across @p jobs workers and block until all
 * finish.  jobs <= 1 runs inline on the calling thread (no pool);
 * either way results written by fn into index i of a caller-owned
 * vector land in deterministic input order.
 * @return the pool's execution stats (inline runs fill executed/
 *         busy_us with jobs = 1).
 */
ThreadPool::Stats runIndexed(std::size_t n, int jobs,
                             const std::function<void(std::size_t)> &fn);

} // namespace hcc

#endif // HCC_COMMON_THREAD_POOL_HPP
