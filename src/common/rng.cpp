#include "common/rng.hpp"

#include <cmath>

#include "common/log.hpp"

namespace hcc {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u)
{
    next32();
    state_ += seed;
    next32();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    HCC_ASSERT(lo <= hi, "empty integer range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next64());
    return lo + static_cast<std::int64_t>(next64() % span);
}

double
Rng::normalPair()
{
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586476925286766559;
    spare_ = mag * std::sin(two_pi * u2);
    hasSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

Rng
Rng::fork(std::uint64_t stream_salt)
{
    return Rng(next64(), inc_ ^ (stream_salt * 0x9e3779b97f4a7c15ULL));
}

} // namespace hcc
