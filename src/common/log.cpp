#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace hcc {

namespace {

// Atomic so sweep workers logging concurrently with a main-thread
// setLogLevel() race neither each other nor the CLI (--log-level is
// applied before the pool spins up, but tests flip it mid-process).
std::atomic<LogLevel> g_level{LogLevel::Warn};

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

void
emit(LogLevel level, const std::string &msg)
{
    if (level < g_level.load(std::memory_order_relaxed))
        return;
    // One fprintf per message: atomic at the stdio level, so lines
    // from concurrent sweep workers never interleave mid-line.
    std::fprintf(stderr, "[%s] %s\n", logLevelName(level),
                 msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Silent: return "silent";
    }
    return "?";
}

std::optional<LogLevel>
parseLogLevel(const std::string &name)
{
    for (LogLevel level : {LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error,
                           LogLevel::Silent}) {
        if (name == logLevelName(level))
            return level;
    }
    return std::nullopt;
}

void
logf(LogLevel level, const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(level, vformat(fmt, ap));
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Info, vformat(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Warn, vformat(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "[panic] %s\n", msg.c_str());
    // abort() skips atexit/stream teardown; flush every open stdio
    // stream first so a dying campaign worker's buffered lines (and
    // this panic message, when stderr is redirected to a full-buffered
    // file) reach the sink before the process dies.
    std::fflush(nullptr);
    std::abort();
}

} // namespace hcc
