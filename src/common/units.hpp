/**
 * @file
 * Simulation time and data-size units.
 *
 * All simulated time is kept as a 64-bit signed count of picoseconds.
 * Picosecond resolution is required because small PCIe transactions
 * (e.g. a 64 B payload at ~25 GB/s) complete in a few nanoseconds and we
 * accumulate many of them; double-precision seconds would silently lose
 * precision over multi-second traces.
 */

#ifndef HCC_COMMON_UNITS_HPP
#define HCC_COMMON_UNITS_HPP

#include <cstdint>
#include <string>

namespace hcc {

/** Simulated time in picoseconds. */
using SimTime = std::int64_t;

/** Data sizes in bytes. */
using Bytes = std::uint64_t;

namespace time {

constexpr SimTime ps(double v) { return static_cast<SimTime>(v); }
constexpr SimTime ns(double v) { return static_cast<SimTime>(v * 1e3); }
constexpr SimTime us(double v) { return static_cast<SimTime>(v * 1e6); }
constexpr SimTime ms(double v) { return static_cast<SimTime>(v * 1e9); }
constexpr SimTime sec(double v) { return static_cast<SimTime>(v * 1e12); }

constexpr double toNs(SimTime t) { return static_cast<double>(t) * 1e-3; }
constexpr double toUs(SimTime t) { return static_cast<double>(t) * 1e-6; }
constexpr double toMs(SimTime t) { return static_cast<double>(t) * 1e-9; }
constexpr double toSec(SimTime t) { return static_cast<double>(t) * 1e-12; }

} // namespace time

namespace size {

constexpr Bytes kib(double v) { return static_cast<Bytes>(v * 1024.0); }
constexpr Bytes mib(double v)
{
    return static_cast<Bytes>(v * 1024.0 * 1024.0);
}
constexpr Bytes gib(double v)
{
    return static_cast<Bytes>(v * 1024.0 * 1024.0 * 1024.0);
}

constexpr double toKiB(Bytes b) { return static_cast<double>(b) / 1024.0; }
constexpr double toMiB(Bytes b)
{
    return static_cast<double>(b) / (1024.0 * 1024.0);
}
constexpr double toGiB(Bytes b)
{
    return static_cast<double>(b) / (1024.0 * 1024.0 * 1024.0);
}

} // namespace size

/**
 * Time to move @p bytes at @p gbps gigabytes per second (decimal GB).
 * Returns at least 1 ps for non-zero sizes so durations never degenerate
 * to zero-length intervals.
 */
SimTime transferTime(Bytes bytes, double gb_per_s);

/** Effective bandwidth in GB/s for @p bytes moved in @p elapsed. */
double bandwidthGBs(Bytes bytes, SimTime elapsed);

/** Render a time as a human-readable string ("1.23 ms"). */
std::string formatTime(SimTime t);

/** Render a byte count as a human-readable string ("64.0 MiB"). */
std::string formatBytes(Bytes b);

} // namespace hcc

#endif // HCC_COMMON_UNITS_HPP
