#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/log.hpp"

namespace hcc {

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{}

void
TextTable::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
TextTable::row(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size()) {
        fatal("table row arity %zu does not match header arity %zu",
              cells.size(), header_.size());
    }
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size()) {
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
            }
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

std::string
TextTable::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
TextTable::csv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            oss << cells[i];
            if (i + 1 < cells.size())
                oss << ',';
        }
        oss << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return oss.str();
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::ratio(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", decimals, v);
    return buf;
}

std::string
TextTable::pct(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v);
    return buf;
}

} // namespace hcc
