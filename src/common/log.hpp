/**
 * @file
 * Minimal logging and error-reporting facilities, gem5-flavoured.
 *
 * fatal() is for user errors (bad configuration, invalid parameters):
 * it throws FatalError so tests can assert on misuse.  panic() is for
 * internal invariant violations (simulator bugs): it aborts.
 */

#ifndef HCC_COMMON_LOG_HPP
#define HCC_COMMON_LOG_HPP

#include <cstdarg>
#include <optional>
#include <stdexcept>
#include <string>

namespace hcc {

/** Exception thrown by fatal() on unrecoverable user errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

enum class LogLevel { Debug, Info, Warn, Error, Silent };

/** Set the global log threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/**
 * Parse a level name ("debug", "info", "warn", "error", "silent");
 * std::nullopt on anything else.
 */
std::optional<LogLevel> parseLogLevel(const std::string &name);

/** The canonical name of a level (inverse of parseLogLevel). */
const char *logLevelName(LogLevel level);

/** printf-style logging at the given level. */
void logf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Informational message for the user. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something is suspicious but the simulation can proceed. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable user error (bad config/arguments).
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Internal invariant violation: a simulator bug. Aborts the process.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace hcc

/** Assert an internal invariant; panics with location info on failure. */
#define HCC_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::hcc::panic("assertion failed at %s:%d: %s (%s)",              \
                         __FILE__, __LINE__, #cond, msg);                   \
        }                                                                   \
    } while (0)

#endif // HCC_COMMON_LOG_HPP
