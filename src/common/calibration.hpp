/**
 * @file
 * Calibration constants for the simulated CC system.
 *
 * Every latency, bandwidth and multiplier the simulator charges is
 * declared here, in one place, with the paper evidence it is derived
 * from.  The headline ratios the paper reports (copy 5.80x, KLO 1.42x,
 * UVM KET 188.87x, ...) are NOT hard-coded anywhere: they must emerge
 * from these per-mechanism costs flowing through the simulated code
 * paths.  EXPERIMENTS.md records how well they do.
 *
 * Sources: Table I (platform), Sec. VI measurements, Fig. 4b crypto
 * throughputs, [16] (tdx_hypercall +470%), [52]-[54] (UVM fault
 * latency 20-50us).
 */

#ifndef HCC_COMMON_CALIBRATION_HPP
#define HCC_COMMON_CALIBRATION_HPP

#include "common/units.hpp"

namespace hcc::calib {

// ---------------------------------------------------------------------
// PCIe link (gen5 x16, Table I) and host memory
// ---------------------------------------------------------------------

/** Effective DMA bandwidth for pinned host memory, non-CC (GB/s). */
constexpr double kPciePinnedGBs = 26.0;

/**
 * Effective bandwidth for pageable host memory, non-CC (GB/s): the
 * driver stages through an internal pinned buffer, roughly halving
 * throughput (Fig. 4a gap between pinned and pageable).
 */
constexpr double kPciePageableGBs = 12.5;

/** Host memcpy bandwidth (single core, DDR5-4800) in GB/s. */
constexpr double kHostMemcpyGBs = 14.0;

/** GPU HBM3 device-to-device copy bandwidth (GB/s). */
constexpr double kHbmD2DGBs = 2200.0;

/** Fixed per-cudaMemcpy host-side setup latency, non-CC. */
constexpr SimTime kMemcpySetupBase = time::us(9.0);

/** PCIe round-trip latency component per DMA transaction. */
constexpr SimTime kPcieDmaLatency = time::us(1.2);

/** MMIO doorbell write cost seen from a regular VM. */
constexpr SimTime kMmioDoorbellBase = time::ns(800.0);

// ---------------------------------------------------------------------
// Software cryptography (Fig. 4b, single core)
// ---------------------------------------------------------------------

/** AES-GCM-128 authenticated encryption, Intel EMR w/ AES-NI (GB/s). */
constexpr double kEmrAesGcm128GBs = 3.36;
/** AES-GCM-256, Intel EMR (GB/s). */
constexpr double kEmrAesGcm256GBs = 2.88;
/** AES-CTR-128 (confidentiality only), Intel EMR (GB/s). */
constexpr double kEmrAesCtr128GBs = 6.40;
/** GHASH only (integrity only, GMAC construction), Intel EMR (GB/s). */
constexpr double kEmrGhashGBs = 8.90;
/** AES-XTS-128 (TME-MK algorithm), Intel EMR (GB/s). */
constexpr double kEmrAesXts128GBs = 5.10;
/** SHA-256, Intel EMR (GB/s). */
constexpr double kEmrSha256GBs = 2.05;
/** ChaCha20-Poly1305, Intel EMR (GB/s). */
constexpr double kEmrChaChaPolyGBs = 2.60;

/** AES-GCM-128 on NVIDIA Grace (ARM crypto extensions), GB/s. */
constexpr double kGraceAesGcm128GBs = 4.30;
constexpr double kGraceAesGcm256GBs = 3.60;
constexpr double kGraceAesCtr128GBs = 7.10;
constexpr double kGraceGhashGBs = 7.60;
constexpr double kGraceAesXts128GBs = 5.60;
constexpr double kGraceSha256GBs = 2.70;
constexpr double kGraceChaChaPolyGBs = 3.10;

/**
 * Pipeline efficiency of the CC transfer path.  The measured CC peak
 * (3.03 GB/s) sits just below the AES-GCM single-core ceiling
 * (3.36 GB/s): the staging copy and DMA stages are overlapped with
 * encryption, leaving ~90% of the crypto ceiling.
 */
constexpr double kCcPipelineEfficiency = 0.90;

/** Per-chunk bounce-buffer staging granularity. */
constexpr Bytes kBounceChunkBytes = size::mib(4.0);

/**
 * Streaming memcpy into the shared bounce buffer (single core,
 * non-temporal stores).  The CPU worker encrypts a chunk and then
 * copies the ciphertext into the bounce slot serially, so the CC
 * path's ceiling is 1/(1/GCM + 1/this) = ~3.03 GB/s, matching the
 * paper's measured CC peak.
 */
constexpr double kBounceCopyGBs = 30.0;

/** Bounce-buffer pool slots (pool = slots * chunk = 64 MiB swiotlb). */
constexpr int kBounceSlots = 16;

/** GPU-side ingress/egress crypto engine bandwidth (GB/s). */
constexpr double kGpuCryptoGBs = 60.0;

/** Bandwidth efficiency of the hypothetical TEE-IO hardware path. */
constexpr double kTeeIoEfficiency = 0.95;

/**
 * Extra CPU-side cost per 4 KiB page on device-to-host CC transfers:
 * inbound ciphertext lands in shared bounce pages and must be
 * scrubbed into TD-private pages with per-page attribute handling.
 * This makes CC D2H markedly slower than CC H2D (the paper's peak —
 * 3.03 GB/s — is pin-h2d) and drives the worst-case 19.69x copy
 * blowup of D2H-heavy pinned apps like 2dconv.
 */
constexpr SimTime kCcInboundPerPage = time::us(1.7);

// ---------------------------------------------------------------------
// TDX taxes ([16]: tdx_hypercall latency > 470% of native vmcall)
// ---------------------------------------------------------------------

/** Native (non-TDX) VM exit / vmcall round trip. */
constexpr SimTime kVmcallLatency = time::us(2.2);

/** TD -> TDX module -> host -> back round trip (tdx_hypercall). */
constexpr SimTime kTdxHypercallLatency = time::us(12.5);

/** Seamcall (TD <-> TDX module only) latency. */
constexpr SimTime kSeamcallLatency = time::us(3.0);

/** set_memory_decrypted / page-attribute conversion per 4 KiB page. */
constexpr SimTime kPageConvertPerPage = time::us(1.6);

/** dma_alloc bounce-buffer carve-out, fixed part. */
constexpr SimTime kDmaAllocFixed = time::us(18.0);

/** MMIO doorbell write from a TD (trapped via #VE + hypercall). */
constexpr SimTime kMmioDoorbellTd = time::us(6.0);

// ---------------------------------------------------------------------
// Driver memory management (Fig. 6 mechanisms)
// ---------------------------------------------------------------------

/** cudaMalloc fixed driver cost, non-CC. */
constexpr SimTime kDeviceAllocFixedBase = time::us(95.0);
/** cudaMalloc per-MiB cost (VA mapping + page tables), non-CC. */
constexpr SimTime kDeviceAllocPerMiB = time::ns(220.0);
/** Number of guest->host driver round trips per cudaMalloc. */
constexpr int kDeviceAllocVmExits = 38;

/** cudaMallocHost fixed driver cost, non-CC. */
constexpr SimTime kHostAllocFixedBase = time::us(120.0);
/** cudaMallocHost per-MiB pinning cost, non-CC. */
constexpr SimTime kHostAllocPerMiB = time::us(38.0);
/** Guest->host driver round trips per cudaMallocHost. */
constexpr int kHostAllocVmExits = 44;

/** cudaFree fixed cost, non-CC. */
constexpr SimTime kFreeFixedBase = time::us(55.0);
/** cudaFree per-MiB cost (unmap + TLB shootdown), non-CC. */
constexpr SimTime kFreePerMiB = time::ns(150.0);
/** Guest->host driver round trips per cudaFree. */
constexpr int kFreeVmExits = 52;

/**
 * cudaMallocManaged is lazy: it only reserves VA space, so it is
 * cheaper than cudaMalloc (paper: 0.51x of the non-UVM alloc).
 */
constexpr SimTime kManagedAllocFixedBase = time::us(48.0);
constexpr SimTime kManagedAllocPerMiB = time::ns(80.0);
constexpr int kManagedAllocVmExits = 19;

/**
 * Freeing managed memory must tear down state on both sides and
 * unmap migrated pages (paper: 3.13x of the non-UVM free, non-CC).
 */
constexpr SimTime kManagedFreeFixedBase = time::us(170.0);
constexpr SimTime kManagedFreePerMiB = time::us(2.2);
constexpr int kManagedFreeVmExits = 88;

/**
 * Extra per-MiB cost of freeing managed memory under CC: every
 * resident encrypted page's shared mapping must be converted back
 * to private (drives the paper's 18.20x CC-UVM free).
 */
constexpr SimTime kManagedFreeCcPerMiB = time::us(9.5);

/**
 * Shared driver metadata (pushbuffers, fence pages) touched by each
 * cudaMalloc; under CC these pages are converted private<->shared.
 */
constexpr Bytes kDeviceAllocCcSharedBytes = size::mib(1.0);

/**
 * Extra per-MiB cost of cudaMallocHost under CC: pinned memory is
 * re-implemented over managed mappings (Observation 1), adding
 * registration and mapping metadata per page.
 */
constexpr SimTime kHostAllocCcPerMiB = time::us(185.0);

/**
 * Extra fixed cost of cudaFree under CC: unmap, re-encrypt shared
 * metadata and cross-TD TLB shootdowns (drives the paper's 10.54x).
 */
constexpr SimTime kFreeCcFixedExtra = time::us(1080.0);

/** Extra fixed cost of cudaMallocManaged under CC. */
constexpr SimTime kManagedAllocCcExtra = time::us(200.0);

/** Graph instantiation cost per captured node. */
constexpr SimTime kGraphInstantiatePerNode = time::us(7.5);

/** Graph instantiation fixed cost. */
constexpr SimTime kGraphInstantiateFixed = time::us(35.0);

/** Device-side dispatch cost per graph node at graph launch. */
constexpr SimTime kGraphNodeDispatch = time::us(1.4);

/** Host-side API overhead of an async memcpy issue. */
constexpr SimTime kAsyncIssueCost = time::us(2.1);

/** Host-side overhead of a synchronize call returning immediately. */
constexpr SimTime kSyncApiCost = time::us(1.5);

// ---------------------------------------------------------------------
// Kernel launch path (Figs. 7, 8, 11, 12a)
// ---------------------------------------------------------------------

/** Median host-side cudaLaunchKernel cost, non-CC. */
constexpr SimTime kLaunchMedianBase = time::us(6.2);
/** Lognormal sigma of KLO, non-CC. */
constexpr double kLaunchSigmaBase = 0.22;
/** Lognormal sigma of KLO, CC (heavier tail, Fig. 11a). */
constexpr double kLaunchSigmaCc = 0.34;
/** Guest->host round trips on the hot launch path (doorbell etc.). */
constexpr int kLaunchVmExits = 1;

/**
 * First launches of a kernel upload its module (SASS image) to the
 * device and configure execution state.  The extra cost is a fixed
 * setup plus the module transfer: at pageable DMA speed normally,
 * but through the encrypted bounce-buffer path (plus a hypercall and
 * a dma_direct_alloc, Fig. 8) under CC — so kernels with large
 * modules (dwt2d's unrolled wavelet kernels) see the biggest CC
 * first-launch amplification (the paper's 5.31x).
 */
constexpr SimTime kModuleSetupCost = time::us(55.0);
/** Module upload rate, non-CC (pageable-path DMA), GB/s. */
constexpr double kModuleUploadBaseGBs = 12.5;
/** Module upload rate under CC (encrypted path), GB/s. */
constexpr double kModuleUploadCcGBs = 3.0;
/**
 * Module staging pages converted private->shared on a CC first
 * launch, capped: big modules re-use a bounded staging window.
 */
constexpr Bytes kModuleConvertCap = size::mib(2.0);
/** Module size assumed when a kernel does not specify one. */
constexpr Bytes kDefaultModuleBytes = size::kib(16.0);
/** Geometric decay of the first-launch extra per subsequent launch. */
constexpr double kFirstLaunchDecay = 0.38;
/** Number of launches over which the extra applies. */
constexpr int kFirstLaunchWindow = 5;

/**
 * Extra per-launch driver work under CC (launch descriptor
 * validation against the protected command buffer).
 */
constexpr SimTime kLaunchCcExtra = time::us(1.3);

/**
 * Doorbell writes are write-combined: only every Nth launch pays the
 * MMIO doorbell cost (and hence, under CC, the #VE trap).
 */
constexpr int kLaunchDoorbellBatch = 4;

/** Host-side inter-launch dispatch gap (stream bookkeeping). */
constexpr SimTime kInterLaunchGapBase = time::us(1.9);

/** Multiplier on the dispatch gap when running inside a TD. */
constexpr double kCcDispatchFactor = 1.45;

/** Lognormal sigma of the inter-launch gap jitter. */
constexpr double kDispatchGapSigma = 0.45;

/** Software launch queue depth per stream; full queue blocks host. */
constexpr int kLaunchQueueDepth = 1024;

/** Command-processor decode + schedule per kernel, non-CC. */
constexpr SimTime kCmdProcDecodeBase = time::us(2.6);
/**
 * Under CC the command fetch crosses the trapped MMIO path and the
 * GPU validates the encrypted command buffer, amplifying KQT for
 * sparse launches (paper: KQT avg 2.32x).
 */
constexpr SimTime kCmdProcDecodeCc = time::us(6.3);

/** Lognormal sigma of per-command decode-time variation. */
constexpr double kCmdProcDecodeSigma = 0.25;

// ---------------------------------------------------------------------
// UVM / encrypted paging (Fig. 9; [52]-[54])
// ---------------------------------------------------------------------

/** Base far-fault service latency (GMMU -> host UVM driver). */
constexpr SimTime kUvmFaultLatencyBase = time::us(28.0);

/** Pages per fault-service batch, non-CC (prefetcher assisted). */
constexpr int kUvmBatchPagesBase = 64;

/**
 * Pages per batch under CC encrypted paging: prefetch and large-page
 * migration are defeated because every page must round-trip through
 * the bounce buffer with per-page conversion.
 */
constexpr int kUvmBatchPagesCc = 2;

/** OS page size used by UVM migration accounting. */
constexpr Bytes kUvmPageBytes = 4096;

/** Hypercalls per CC fault batch (fault report + mapping + doorbell). */
constexpr int kUvmCcHypercallsPerBatch = 3;

// ---------------------------------------------------------------------
// GPU compute (Table I: H100 NVL)
// ---------------------------------------------------------------------

/** Number of SMs on the modeled device. */
constexpr int kNumSms = 132;
/** Per-SM nominal FP32 throughput (GFLOP/s) at boost clock. */
constexpr double kSmGflops = 512.0;
/** Dense FP16/BF16 tensor throughput, full device (TFLOP/s). */
constexpr double kTensorTflops = 756.0;
/** HBM3 bandwidth (GB/s). */
constexpr double kHbmGBs = 3350.0;
/** Device memory capacity (bytes). */
constexpr Bytes kHbmCapacity = size::gib(94.0);

// ---------------------------------------------------------------------
// Non-UVM KET jitter under CC (paper: +0.48% average)
// ---------------------------------------------------------------------

/** Mean relative KET inflation under CC for non-UVM kernels. */
constexpr double kKetCcJitterMean = 0.0048;
/** Std-dev of that inflation. */
constexpr double kKetCcJitterSigma = 0.0030;

} // namespace hcc::calib

#endif // HCC_COMMON_CALIBRATION_HPP
