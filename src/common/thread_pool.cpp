#include "common/thread_pool.hpp"

#include <chrono>

#include "common/log.hpp"

namespace hcc {

namespace {

double
elapsedUs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

double
ThreadPool::Stats::utilization(double wall_us) const
{
    if (jobs <= 0 || wall_us <= 0.0)
        return 0.0;
    const double capacity = wall_us * jobs;
    const double u = busy_us / capacity;
    return u > 1.0 ? 1.0 : u;
}

ThreadPool::ThreadPool(int jobs)
{
    if (jobs < 1)
        jobs = 1;
    queues_.resize(static_cast<std::size_t>(jobs));
    stats_.jobs = jobs;
    workers_.reserve(static_cast<std::size_t>(jobs));
    for (int i = 0; i < jobs; ++i) {
        workers_.emplace_back(
            [this, i] { workerLoop(static_cast<std::size_t>(i)); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    HCC_ASSERT(task != nullptr, "null task submitted to pool");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queues_[next_queue_].tasks.push_back(std::move(task));
        next_queue_ = (next_queue_ + 1) % queues_.size();
        ++pending_;
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool::Stats
ThreadPool::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

int
ThreadPool::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

bool
ThreadPool::takeTask(std::size_t self, std::function<void()> &task,
                     bool &stole)
{
    // Own deque first, newest task (LIFO keeps the footprint warm)...
    auto &own = queues_[self].tasks;
    if (!own.empty()) {
        task = std::move(own.back());
        own.pop_back();
        stole = false;
        return true;
    }
    // ...then steal the oldest task from a neighbour (FIFO steals
    // take the work its owner is furthest from reaching).
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        auto &victim = queues_[(self + k) % queues_.size()].tasks;
        if (!victim.empty()) {
            task = std::move(victim.front());
            victim.pop_front();
            stole = true;
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        std::function<void()> task;
        bool stole = false;
        if (takeTask(self, task, stole)) {
            lock.unlock();
            const auto start = std::chrono::steady_clock::now();
            bool leaked = false;
            try {
                task();
            } catch (...) {
                leaked = true;
            }
            const double us = elapsedUs(start);
            lock.lock();
            ++stats_.executed;
            if (stole)
                ++stats_.stolen;
            if (leaked)
                ++stats_.uncaught;
            stats_.busy_us += us;
            if (--pending_ == 0)
                idle_cv_.notify_all();
            continue;
        }
        if (stopping_)
            return;
        work_cv_.wait(lock);
    }
}

ThreadPool::Stats
runIndexed(std::size_t n, int jobs,
           const std::function<void(std::size_t)> &fn)
{
    if (jobs <= 1) {
        ThreadPool::Stats stats;
        stats.jobs = 1;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                ++stats.uncaught;
            }
            ++stats.executed;
        }
        stats.busy_us = elapsedUs(start);
        return stats;
    }
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
    return pool.stats();
}

} // namespace hcc
