/**
 * @file
 * Statistics helpers used throughout the measurement layer: running
 * summary statistics, exact percentiles over retained samples, CDFs
 * (the paper's Fig. 11), and geometric means for normalized ratios.
 */

#ifndef HCC_COMMON_STATS_HPP
#define HCC_COMMON_STATS_HPP

#include <cstddef>
#include <utility>
#include <vector>

namespace hcc {

/**
 * Welford-style running summary: count, mean, variance, min, max.
 * O(1) memory; used for high-volume event streams.
 */
class RunningStats
{
  public:
    void add(double x);
    void merge(const RunningStats &other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

    /** Snapshot support (snap/archive.hpp): full Welford state. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        ar.pod(n_);
        ar.pod(mean_);
        ar.pod(m2_);
        ar.pod(min_);
        ar.pod(max_);
    }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Sample set retaining all values: exact percentiles, CDF extraction.
 */
class SampleSet
{
  public:
    void add(double x);
    void addAll(const std::vector<double> &xs);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    double sum() const;
    double mean() const;
    double min() const;
    double max() const;

    /**
     * Exact percentile with linear interpolation.
     * @param p in [0, 100].
     */
    double percentile(double p) const;
    double median() const { return percentile(50.0); }

    /** Sorted copy of the samples. */
    std::vector<double> sorted() const;

    /**
     * Empirical CDF as (value, cumulative fraction) points, one per
     * sample, matching how the paper plots Fig. 11.
     * @param drop_top number of largest samples to exclude from the
     *        plotted points (the paper drops the top 5 launch
     *        durations for scale); the mean is never affected.
     */
    std::vector<std::pair<double, double>> cdf(std::size_t drop_top = 0)
        const;

    const std::vector<double> &values() const { return samples_; }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;

    void ensureSorted() const;
};

/** Geometric mean of strictly-positive values; 0 if empty. */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean; 0 if empty. */
double mean(const std::vector<double> &xs);

} // namespace hcc

#endif // HCC_COMMON_STATS_HPP
