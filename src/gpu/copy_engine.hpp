/**
 * @file
 * Copy engine (DMA) model and the memory transfer paths.
 *
 * Non-CC paths:
 *   - pinned:   direct DMA at line rate (Fig. 4a upper curve);
 *   - pageable: the driver stages user pages through an internal
 *     pinned buffer, pipelining a host memcpy with the DMA — the
 *     memcpy is the bottleneck (Fig. 4a middle curve);
 *   - D2D: HBM-to-HBM blit at HBM bandwidth.
 * CC paths delegate to the SecureChannel (software AES-GCM through
 * the bounce buffer); pinned memory has no privileged path under TDX
 * and behaves like the encrypted pageable path (Observation 1).
 */

#ifndef HCC_GPU_COPY_ENGINE_HPP
#define HCC_GPU_COPY_ENGINE_HPP

#include "common/calibration.hpp"
#include "common/units.hpp"
#include "obs/registry.hpp"
#include "pcie/link.hpp"
#include "sim/timeline.hpp"
#include "tee/secure_channel.hpp"
#include "tee/tdx.hpp"

namespace hcc::gpu {

/** Host memory kinds with distinct transfer behaviour. */
enum class HostMemKind { Pageable, Pinned, Managed };

/** Everything a transfer needs to charge costs to. */
struct TransferContext
{
    pcie::PcieLink &link;
    tee::TdxModule &tdx;
    /** Non-null iff the device is in CC mode. */
    tee::SecureChannel *channel = nullptr;

    bool cc() const { return channel != nullptr; }
};

/** Result of scheduling a copy. */
struct CopyTiming
{
    sim::Interval total;
    /** True when the copy went through the encrypted UVM-style path
     *  (reported as "managed"/D2D by the profiler, per Fig. 5). */
    bool encrypted_paging = false;
};

/**
 * The device's copy engines plus the host-side staging resources.
 */
class CopyEngine
{
  public:
    /**
     * @param obs optional stats sink; publishes
     *        "gpu.copy.{ops,bytes}_{h2d,d2h,d2d}" counters and
     *        attaches the engine/staging timelines as
     *        "sim.timeline.gpu_ce.*" / "sim.timeline.host_staging.*".
     */
    explicit CopyEngine(int engines = 2, obs::Registry *obs = nullptr);

    /** Schedule a host-to-device or device-to-host copy. */
    CopyTiming copy(SimTime ready, Bytes bytes, pcie::Direction dir,
                    HostMemKind host_kind, TransferContext &ctx);

    /** Schedule a device-to-device copy. */
    CopyTiming copyD2D(SimTime ready, Bytes bytes,
                       TransferContext &ctx);

    int engineCount() const { return engines_.size(); }

    /** Snapshot support: engine pool + staging timeline positions. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        engines_.snapState(ar);
        staging_.snapState(ar);
    }

  private:
    CopyTiming basePinned(SimTime ready, Bytes bytes,
                          pcie::Direction dir, TransferContext &ctx);
    CopyTiming basePageable(SimTime ready, Bytes bytes,
                            pcie::Direction dir, TransferContext &ctx);

    /** Bump an ops/bytes pair (null-safe). */
    void noteCopy(obs::Counter *ops, obs::Counter *bytes_counter,
                  Bytes bytes);

    sim::TimelinePool engines_;
    sim::Timeline staging_;
    obs::Counter *obs_ops_h2d_ = nullptr;
    obs::Counter *obs_bytes_h2d_ = nullptr;
    obs::Counter *obs_ops_d2h_ = nullptr;
    obs::Counter *obs_bytes_d2h_ = nullptr;
    obs::Counter *obs_ops_d2d_ = nullptr;
    obs::Counter *obs_bytes_d2d_ = nullptr;
};

} // namespace hcc::gpu

#endif // HCC_GPU_COPY_ENGINE_HPP
