/**
 * @file
 * Unified Virtual Memory manager model (Sec. II-B).
 *
 * Managed allocations migrate to the GPU on demand: a kernel touching
 * a non-resident page raises a far fault serviced by the host UVM
 * driver (20-50 us each, [52]-[54]).  Faults are serviced in batches:
 * the prefetcher coalesces 64 pages per batch in normal operation,
 * but under CC ("encrypted paging") prefetching is defeated — every
 * little batch must round-trip through the bounce buffer with
 * per-batch hypercalls and software crypto, which is the mechanism
 * behind the paper's 188.87x average (up to 164030x) UVM KET blowup
 * (Fig. 9, Observation 5).
 */

#ifndef HCC_GPU_UVM_HPP
#define HCC_GPU_UVM_HPP

#include <cstdint>
#include <map>

#include "common/calibration.hpp"
#include "common/units.hpp"
#include "gpu/copy_engine.hpp"
#include "gpu/gmmu.hpp"
#include "obs/registry.hpp"

namespace hcc::fault { class Injector; }

namespace hcc::gpu {

/** Tunables of the UVM subsystem (defaults from calibration). */
struct UvmConfig
{
    /** Pages per fault-service batch, non-CC. */
    int batch_pages_base = calib::kUvmBatchPagesBase;
    /** Pages per batch under CC encrypted paging. */
    int batch_pages_cc = calib::kUvmBatchPagesCc;
    /** Far-fault service latency. */
    SimTime fault_latency = calib::kUvmFaultLatencyBase;
    /** Device memory available to managed data (oversubscription
     *  beyond this evicts the least-recently-touched allocation). */
    Bytes device_capacity = calib::kHbmCapacity;
};

/** Result of servicing the faults of one kernel's touch set. */
struct FaultService
{
    /** Time added to the kernel's execution. */
    SimTime added = 0;
    /** Fault batches serviced. */
    int batches = 0;
    /** Bytes migrated host -> device. */
    Bytes migrated = 0;
    /** Bytes evicted (written back) to make room. */
    Bytes evicted = 0;
};

/**
 * Per-device manager of managed (cudaMallocManaged) memory.
 */
class UvmManager
{
  public:
    /**
     * @param obs optional stats sink; publishes
     *        "gpu.uvm.{allocations,fault_batches,bytes_migrated,
     *        bytes_evicted,fault_time_ps}" and threads through to the
     *        owned GMMU's "gpu.gmmu.*" stats.
     * @param fault optional injector arming the "uvm.thrash" site: a
     *        thrash event re-services a kernel's fault batches once
     *        (the migrated pages were immediately faulted back).
     */
    explicit UvmManager(const UvmConfig &config = UvmConfig{},
                        obs::Registry *obs = nullptr,
                        fault::Injector *fault = nullptr);

    /** Register a managed allocation; returns its handle. */
    std::uint64_t createAllocation(Bytes bytes);

    /** Tear down an allocation. */
    void freeAllocation(std::uint64_t handle);

    /** Allocation size; fatal on unknown handle. */
    Bytes allocationBytes(std::uint64_t handle) const;

    /** Device-resident bytes of an allocation. */
    Bytes residentBytes(std::uint64_t handle) const;

    /**
     * A kernel touches the first @p touch_bytes of @p handle on the
     * device: service the far faults for the non-resident portion.
     * Residency is updated; a second touch of the same range is free.
     */
    FaultService touchOnDevice(std::uint64_t handle, Bytes touch_bytes,
                               TransferContext &ctx);

    /**
     * The CPU touches the allocation (or it is prefetched back):
     * device residency is dropped, so the next device touch faults
     * again.
     */
    void invalidateDeviceResidency(std::uint64_t handle);

    /**
     * Mark the first @p bytes device-resident without fault service
     * (an explicit memcpy/prefetch already moved them).
     */
    void markResident(std::uint64_t handle, Bytes bytes);

    /** Number of live allocations. */
    std::size_t liveAllocations() const { return allocs_.size(); }

    /** Total fault batches serviced on this device. */
    std::uint64_t totalBatches() const { return total_batches_; }
    /** Total bytes migrated on demand. */
    Bytes totalMigrated() const { return total_migrated_; }

    /** The device MMU backing the managed mappings. */
    Gmmu &gmmu() { return gmmu_; }
    const Gmmu &gmmu() const { return gmmu_; }

    /** Total managed bytes currently device-resident. */
    Bytes totalResident() const { return total_resident_; }
    /** Total bytes evicted under capacity pressure. */
    Bytes totalEvicted() const { return total_evicted_; }
    const UvmConfig &config() const { return config_; }

    /** Snapshot support: allocations, LRU order, migration totals,
     *  handle/vpn/pfn allocators and the owned GMMU. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        const std::size_t n = ar.size(allocs_.size());
        if constexpr (Ar::kLoading) {
            allocs_.clear();
            for (std::size_t i = 0; i < n; ++i) {
                std::uint64_t handle = 0;
                Allocation a{};
                ar.pod(handle);
                ar.pod(a);
                allocs_.emplace(handle, a);
            }
        } else {
            for (auto &[handle, a] : allocs_) {
                std::uint64_t h = handle;
                ar.pod(h);
                ar.pod(a);
            }
        }
        ar.podVec(lru_);
        ar.pod(next_handle_);
        ar.pod(total_batches_);
        ar.pod(total_migrated_);
        ar.pod(total_resident_);
        ar.pod(total_evicted_);
        gmmu_.snapState(ar);
        ar.pod(next_vpn_);
        ar.pod(next_pfn_);
    }

  private:
    struct Allocation
    {
        Bytes bytes = 0;
        Bytes resident = 0;
        /** Base virtual page (GMMU big pages) of the range. */
        std::uint64_t base_vpn = 0;
    };

    /** GMMU big pages covering @p bytes. */
    static std::uint64_t gmmuPages(Bytes bytes);

    /** Update the GMMU to reflect @p alloc's residency change. */
    void syncMappings(Allocation &alloc, Bytes new_resident);

    /**
     * Evict least-recently-touched allocations until @p needed bytes
     * fit; charges the writeback to @p ctx's D2H path.
     * @return time spent writing back.
     */
    SimTime makeRoom(std::uint64_t requester, Bytes needed,
                     TransferContext &ctx, Bytes &evicted);

    /** Move @p handle to the back (most recent) of the LRU order. */
    void touchLru(std::uint64_t handle);

    UvmConfig config_;
    std::map<std::uint64_t, Allocation> allocs_;
    /** Front = least recently touched. */
    std::vector<std::uint64_t> lru_;
    std::uint64_t next_handle_ = 1;
    std::uint64_t total_batches_ = 0;
    Bytes total_migrated_ = 0;
    Bytes total_resident_ = 0;
    Bytes total_evicted_ = 0;
    Gmmu gmmu_;
    std::uint64_t next_vpn_ = 1;
    std::uint64_t next_pfn_ = 1;
    obs::Counter *obs_allocations_ = nullptr;
    obs::Counter *obs_fault_batches_ = nullptr;
    obs::Counter *obs_bytes_migrated_ = nullptr;
    obs::Counter *obs_bytes_evicted_ = nullptr;
    obs::Counter *obs_fault_time_ps_ = nullptr;
    fault::Injector *fault_ = nullptr;
};

} // namespace hcc::gpu

#endif // HCC_GPU_UVM_HPP
