/**
 * @file
 * GPU memory management unit (GMMU) model.
 *
 * Functional multi-level page table over the device virtual address
 * space plus a TLB cost model: translations hit the TLB for a cheap
 * fixed cost or walk the (4-level) radix table, and accesses to
 * unmapped managed pages report a far fault — the signal the UVM
 * manager turns into migration batches (Sec. II-B).
 *
 * Hot-path design (docs/PERF.md): the page table is an ordered
 * interval map of contiguous [vpn, vpn+pages) -> pfn ranges, so
 * mapping or unmapping an N-page migration batch is O(log ranges)
 * with splits/merges instead of N hash-map operations, and a TLB
 * shoot-down is one scan of the (small) TLB instead of N probes.
 */

#ifndef HCC_GPU_GMMU_HPP
#define HCC_GPU_GMMU_HPP

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "common/units.hpp"
#include "obs/registry.hpp"

namespace hcc::gpu {

/** GMMU page size (64 KiB big pages, the driver's default). */
constexpr Bytes kGmmuPageBytes = 64 * 1024;

/** Outcome of a translation. */
enum class TranslateResult
{
    TlbHit,
    TlbMissWalkHit,  //!< walked the page table, found a mapping
    FarFault,        //!< no mapping: page is not device resident
};

/** One translation's accounting. */
struct Translation
{
    TranslateResult result = TranslateResult::FarFault;
    /** Physical frame number (valid unless FarFault). */
    std::uint64_t pfn = 0;
    /** Latency charged for this translation. */
    SimTime latency = 0;
};

/**
 * Per-GPU-context MMU: radix page table + small fully-associative
 * LRU TLB.
 */
class Gmmu
{
  public:
    /**
     * @param tlb_entries TLB capacity (translations cached).
     * @param obs optional stats sink; publishes
     *        "gpu.gmmu.{tlb_hits,tlb_misses,far_faults}".
     */
    explicit Gmmu(int tlb_entries = 64, obs::Registry *obs = nullptr);

    /**
     * Map @p pages pages starting at virtual page number @p vpn to
     * consecutive physical frames starting at @p pfn.  One range
     * operation regardless of @p pages; remapping an already mapped
     * page overwrites it (without TLB shoot-down, as before).
     */
    void map(std::uint64_t vpn, std::uint64_t pfn,
             std::uint64_t pages);

    /** Remove mappings (and shoot down affected TLB entries). */
    void unmap(std::uint64_t vpn, std::uint64_t pages);

    /** Translate a device virtual address's page. */
    Translation translate(std::uint64_t vpn);

    /** Whether a virtual page is currently mapped. */
    bool isMapped(std::uint64_t vpn) const;

    std::uint64_t mappedPages() const { return mapped_pages_; }
    /** Contiguous ranges in the interval map (introspection). */
    std::size_t mappedRanges() const { return ranges_.size(); }
    std::uint64_t tlbHits() const { return tlb_hits_; }
    std::uint64_t tlbMisses() const { return tlb_misses_; }
    std::uint64_t farFaults() const { return far_faults_; }

    /** TLB hit latency. */
    static constexpr SimTime kTlbHitLatency = time::ns(4.0);
    /** Per-level page walk latency (4 levels). */
    static constexpr SimTime kWalkLevelLatency = time::ns(90.0);
    /** Radix levels walked on a TLB miss. */
    static constexpr int kWalkLevels = 4;

    /**
     * Snapshot support: the interval map, the TLB contents in LRU
     * order, and the hit/miss/fault totals.  tlb_index_ is a lookup
     * structure over tlb_lru_ and is rebuilt on restore.
     */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        std::size_t n = ar.size(ranges_.size());
        if constexpr (Ar::kLoading) {
            ranges_.clear();
            for (std::size_t i = 0; i < n; ++i) {
                std::uint64_t vpn = 0;
                Range r{};
                ar.pod(vpn);
                ar.pod(r);
                ranges_.emplace(vpn, r);
            }
        } else {
            for (auto &[vpn, r] : ranges_) {
                std::uint64_t v = vpn;
                ar.pod(v);
                ar.pod(r);
            }
        }
        ar.pod(mapped_pages_);
        n = ar.size(tlb_lru_.size());
        if constexpr (Ar::kLoading) {
            tlb_lru_.clear();
            tlb_index_.clear();
            for (std::size_t i = 0; i < n; ++i) {
                std::pair<std::uint64_t, std::uint64_t> e;
                ar.pod(e);
                tlb_lru_.push_back(e);
                tlb_index_[e.first] = std::prev(tlb_lru_.end());
            }
        } else {
            for (auto &e : tlb_lru_)
                ar.pod(e);
        }
        ar.pod(tlb_hits_);
        ar.pod(tlb_misses_);
        ar.pod(far_faults_);
    }

  private:
    /** One contiguous mapping: [start, start+pages) -> pfn.. */
    struct Range
    {
        std::uint64_t pages;
        std::uint64_t pfn;
    };

    void tlbInsert(std::uint64_t vpn, std::uint64_t pfn);
    bool tlbLookup(std::uint64_t vpn, std::uint64_t &pfn);

    /**
     * Remove [vpn, vpn+pages) from the interval map, splitting
     * partially covered ranges; returns how many previously mapped
     * pages were removed.
     */
    std::uint64_t eraseRange(std::uint64_t vpn, std::uint64_t pages);

    /** Page-table walk: pfn for @p vpn, or false if unmapped. */
    bool walk(std::uint64_t vpn, std::uint64_t &pfn) const;

    // Functional page table (sparse radix collapsed into an interval
    // map: level structure only affects the modeled walk cost).
    std::map<std::uint64_t, Range> ranges_;
    std::uint64_t mapped_pages_ = 0;

    // LRU TLB: list front = most recent; map -> list iterator.
    int tlb_capacity_;
    std::list<std::pair<std::uint64_t, std::uint64_t>> tlb_lru_;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, std::uint64_t>>::iterator>
        tlb_index_;

    std::uint64_t tlb_hits_ = 0;
    std::uint64_t tlb_misses_ = 0;
    std::uint64_t far_faults_ = 0;
    obs::Counter *obs_tlb_hits_ = nullptr;
    obs::Counter *obs_tlb_misses_ = nullptr;
    obs::Counter *obs_far_faults_ = nullptr;
};

} // namespace hcc::gpu

#endif // HCC_GPU_GMMU_HPP
