#include "gpu/uvm.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "fault/fault.hpp"

namespace hcc::gpu {

UvmManager::UvmManager(const UvmConfig &config, obs::Registry *obs,
                       fault::Injector *fault)
    : config_(config), gmmu_(64, obs), fault_(fault)
{
    if (config_.batch_pages_base <= 0 || config_.batch_pages_cc <= 0)
        fatal("UVM batch sizes must be positive");
    if (obs) {
        obs_allocations_ = &obs->counter("gpu.uvm.allocations");
        obs_fault_batches_ = &obs->counter("gpu.uvm.fault_batches");
        obs_bytes_migrated_ = &obs->counter("gpu.uvm.bytes_migrated");
        obs_bytes_evicted_ = &obs->counter("gpu.uvm.bytes_evicted");
        obs_fault_time_ps_ = &obs->counter("gpu.uvm.fault_time_ps");
    }
}

std::uint64_t
UvmManager::gmmuPages(Bytes bytes)
{
    return (bytes + kGmmuPageBytes - 1) / kGmmuPageBytes;
}

void
UvmManager::syncMappings(Allocation &alloc, Bytes new_resident)
{
    const std::uint64_t old_pages = gmmuPages(alloc.resident);
    const std::uint64_t new_pages = gmmuPages(new_resident);
    if (new_pages > old_pages) {
        gmmu_.map(alloc.base_vpn + old_pages, next_pfn_,
                  new_pages - old_pages);
        next_pfn_ += new_pages - old_pages;
    } else if (new_pages < old_pages) {
        gmmu_.unmap(alloc.base_vpn + new_pages,
                    old_pages - new_pages);
    }
    total_resident_ += new_resident;
    total_resident_ -= alloc.resident;
    alloc.resident = new_resident;
}

void
UvmManager::touchLru(std::uint64_t handle)
{
    const auto it = std::find(lru_.begin(), lru_.end(), handle);
    if (it != lru_.end())
        lru_.erase(it);
    lru_.push_back(handle);
}

SimTime
UvmManager::makeRoom(std::uint64_t requester, Bytes needed,
                     TransferContext &ctx, Bytes &evicted)
{
    SimTime cost = 0;
    // Evict least-recently-touched allocations (not the requester)
    // until the new pages fit.
    for (std::size_t i = 0;
         i < lru_.size()
         && total_resident_ + needed > config_.device_capacity;
         /* advance inside */) {
        const std::uint64_t victim = lru_[i];
        if (victim == requester) {
            ++i;
            continue;
        }
        auto &alloc = allocs_.at(victim);
        const Bytes writeback = alloc.resident;
        if (writeback > 0) {
            // Dirty pages go home through the D2H path — which is
            // the expensive direction under CC.
            if (ctx.cc()) {
                cost += ctx.channel->transferDuration(
                    writeback, ctx.link,
                    pcie::Direction::DeviceToHost);
            } else {
                cost += ctx.link.dmaDuration(writeback);
            }
            evicted += writeback;
            total_evicted_ += writeback;
            syncMappings(alloc, 0);
        }
        lru_.erase(lru_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return cost;
}

std::uint64_t
UvmManager::createAllocation(Bytes bytes)
{
    const std::uint64_t handle = next_handle_++;
    Allocation alloc;
    alloc.bytes = bytes;
    alloc.resident = 0;
    alloc.base_vpn = next_vpn_;
    next_vpn_ += gmmuPages(bytes) + 1;  // +1: guard page gap
    allocs_[handle] = alloc;
    lru_.push_back(handle);
    if (obs_allocations_)
        obs_allocations_->bump(1);
    return handle;
}

void
UvmManager::freeAllocation(std::uint64_t handle)
{
    const auto it = allocs_.find(handle);
    if (it == allocs_.end())
        fatal("freeing unknown managed allocation %llu",
              static_cast<unsigned long long>(handle));
    syncMappings(it->second, 0);
    allocs_.erase(it);
    const auto lit = std::find(lru_.begin(), lru_.end(), handle);
    if (lit != lru_.end())
        lru_.erase(lit);
}

Bytes
UvmManager::allocationBytes(std::uint64_t handle) const
{
    const auto it = allocs_.find(handle);
    if (it == allocs_.end())
        fatal("unknown managed allocation %llu",
              static_cast<unsigned long long>(handle));
    return it->second.bytes;
}

Bytes
UvmManager::residentBytes(std::uint64_t handle) const
{
    const auto it = allocs_.find(handle);
    if (it == allocs_.end())
        fatal("unknown managed allocation %llu",
              static_cast<unsigned long long>(handle));
    return it->second.resident;
}

void
UvmManager::invalidateDeviceResidency(std::uint64_t handle)
{
    const auto it = allocs_.find(handle);
    if (it == allocs_.end())
        fatal("unknown managed allocation %llu",
              static_cast<unsigned long long>(handle));
    syncMappings(it->second, 0);
}

void
UvmManager::markResident(std::uint64_t handle, Bytes bytes)
{
    const auto it = allocs_.find(handle);
    if (it == allocs_.end())
        fatal("unknown managed allocation %llu",
              static_cast<unsigned long long>(handle));
    touchLru(handle);
    syncMappings(it->second,
                 std::min(it->second.bytes,
                          std::max(it->second.resident, bytes)));
}

FaultService
UvmManager::touchOnDevice(std::uint64_t handle, Bytes touch_bytes,
                          TransferContext &ctx)
{
    auto it = allocs_.find(handle);
    if (it == allocs_.end())
        fatal("unknown managed allocation %llu",
              static_cast<unsigned long long>(handle));
    auto &alloc = it->second;
    touch_bytes = std::min(touch_bytes, alloc.bytes);
    touchLru(handle);

    FaultService svc;
    if (touch_bytes <= alloc.resident)
        return svc;

    const Bytes miss_bytes = touch_bytes - alloc.resident;

    // Capacity pressure: evict before faulting new pages in.
    if (total_resident_ + miss_bytes > config_.device_capacity)
        svc.added += makeRoom(handle, miss_bytes, ctx, svc.evicted);

    const Bytes pages =
        (miss_bytes + calib::kUvmPageBytes - 1) / calib::kUvmPageBytes;

    const int batch_pages = ctx.cc() ? config_.batch_pages_cc
                                     : config_.batch_pages_base;
    const Bytes batch_bytes =
        static_cast<Bytes>(batch_pages) * calib::kUvmPageBytes;
    const auto batches = static_cast<int>(
        (pages + static_cast<Bytes>(batch_pages) - 1)
        / static_cast<Bytes>(batch_pages));

    // Range-batched servicing: every batch but the last is exactly
    // batch_bytes, so its (pure) transfer cost is computed once and
    // multiplied instead of re-derived per batch.  Time and stats are
    // identical to the per-batch loop this replaces.
    const Bytes last_batch =
        miss_bytes - static_cast<Bytes>(batches - 1) * batch_bytes;
    const SimTime pre_service = svc.added;
    svc.added += config_.fault_latency * batches;
    if (ctx.cc()) {
        // Fault report + mapping update cross the TD boundary, then
        // the pages migrate through the encrypted path.  Round trips
        // are linear in count, so one call covers all batches.
        svc.added += ctx.tdx.guestHostRoundTrips(
            calib::kUvmCcHypercallsPerBatch * batches);
        if (batches > 1)
            svc.added +=
                ctx.channel->transferDuration(batch_bytes, ctx.link)
                * (batches - 1);
        svc.added +=
            ctx.channel->transferDuration(last_batch, ctx.link);
    } else {
        if (batches > 1)
            svc.added +=
                ctx.link.dmaDuration(batch_bytes) * (batches - 1);
        svc.added += ctx.link.dmaDuration(last_batch);
    }
    svc.batches = batches;
    svc.migrated = miss_bytes;
    if (fault_ && fault_->shouldInject(fault::Site::UvmThrash)) {
        // Thrash: the batches just migrated are faulted straight
        // back and must be serviced a second time — the whole
        // batched service cost (sans eviction) repeats.
        const SimTime rework = svc.added - pre_service;
        svc.added += rework;
        svc.batches *= 2;
        fault_->recordRecovery(fault::Site::UvmThrash, rework);
    }
    syncMappings(alloc, touch_bytes);
    total_batches_ += static_cast<std::uint64_t>(svc.batches);
    total_migrated_ += miss_bytes;
    if (obs_fault_batches_) {
        obs_fault_batches_->bump(
            static_cast<std::uint64_t>(svc.batches));
        obs_bytes_migrated_->bump(miss_bytes);
        obs_bytes_evicted_->bump(svc.evicted);
        obs_fault_time_ps_->bump(static_cast<std::uint64_t>(svc.added));
    }
    return svc;
}

} // namespace hcc::gpu
