/**
 * @file
 * Kernel descriptors: what the runtime hands the GPU when launching.
 *
 * Kernels carry an explicit execution-time model rather than code.
 * For the paper's purposes a kernel is characterized by its duration
 * (the KET it would have on an idle non-CC device) and its unified-
 * memory behaviour (how many managed bytes it touches and how many of
 * them are already resident); everything else the figures measure —
 * KLO, LQT, KQT, UVM amplification — is produced by the machinery the
 * kernel passes through.
 */

#ifndef HCC_GPU_KERNEL_HPP
#define HCC_GPU_KERNEL_HPP

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace hcc::gpu {

/** Launch configuration (informational; occupancy not modeled). */
struct LaunchDims
{
    int grid_x = 1;
    int grid_y = 1;
    int grid_z = 1;
    int block_x = 128;
    int block_y = 1;
    int block_z = 1;

    std::int64_t
    totalThreads() const
    {
        return static_cast<std::int64_t>(grid_x) * grid_y * grid_z
            * block_x * block_y * block_z;
    }
};

/** A kernel to launch. */
struct KernelDesc
{
    /** Kernel symbol name (first-launch tracking is keyed by this). */
    std::string name;
    /** Launch configuration. */
    LaunchDims dims;
    /**
     * Execution time on an idle, non-CC device with resident data.
     * When 0, the duration is derived from the roofline model (the
     * gflops / mem_bytes fields below must then describe the kernel).
     */
    SimTime duration = 0;
    /**
     * Managed (UVM) bytes this kernel touches.  Zero for non-UVM
     * kernels.  Non-resident pages are migrated on demand and their
     * service time is added to the kernel's execution.
     */
    Bytes uvm_touch_bytes = 0;
    /** Handle of the managed allocation touched (0 = none). */
    std::uint64_t uvm_alloc = 0;
    /**
     * Compiled module (SASS image) size uploaded on first launch;
     * 0 selects the calibrated default.
     */
    Bytes module_bytes = 0;
    /** FP32 work for the roofline model (GFLOP); used when
     *  duration == 0. */
    double gflops = 0.0;
    /** HBM traffic for the roofline model (bytes read + written);
     *  used when duration == 0. */
    Bytes mem_bytes = 0;
};

/**
 * Roofline duration: the kernel is bound by whichever of compute
 * (FP32 at occupancy-scaled peak) and memory (HBM bandwidth) takes
 * longer.  Occupancy scales with the launch's thread count.
 */
SimTime rooflineDuration(const KernelDesc &kernel);

/** Result of scheduling one kernel on the device. */
struct KernelSchedule
{
    /** When the launch command reached the command processor. */
    SimTime enqueued = 0;
    /** Execution start on the compute engine. */
    SimTime start = 0;
    /** Execution end. */
    SimTime end = 0;
    /**
     * Kernel queuing time: command arrival to dispatch (decode and
     * channel queueing), as the profiler reports it.  Waiting on a
     * same-stream predecessor is an execution dependency, not queue
     * time, and is excluded.
     */
    SimTime queue_time = 0;
    SimTime kqt() const { return queue_time; }
    /** Executed duration (the KET, including any UVM service). */
    SimTime ket() const { return end - start; }
    /** Portion of the KET that was UVM fault servicing. */
    SimTime uvm_service = 0;
    /** Far-fault batches serviced during execution. */
    int fault_batches = 0;
};

} // namespace hcc::gpu

#endif // HCC_GPU_KERNEL_HPP
