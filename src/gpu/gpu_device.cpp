#include "gpu/gpu_device.hpp"

#include <algorithm>

#include "common/calibration.hpp"
#include "common/log.hpp"

namespace hcc::gpu {

GpuDevice::GpuDevice(const GpuConfig &config, obs::Registry *obs,
                     fault::Injector *fault)
    : config_(config),
      cmd_proc_(config.cc_mode, config.seed ^ 0xdec0deULL),
      compute_(config.concurrent_kernels),
      copy_(config.copy_engines, obs),
      uvm_(config.uvm, obs, fault),
      rng_(config.seed)
{
    if (obs)
        obs_kernels_ = &obs->counter("gpu.kernels.executed");
}

SimTime
GpuDevice::perturbDuration(SimTime duration)
{
    if (!config_.cc_mode || duration == 0)
        return duration;
    // Non-UVM KET under CC is statistically indistinguishable from
    // base except for a +0.48% mean drift (Observation 5): small
    // perturbations from trapped timer/doorbell interactions.
    const double factor = 1.0
        + rng_.normal(calib::kKetCcJitterMean,
                      calib::kKetCcJitterSigma);
    const double scaled =
        static_cast<double>(duration) * std::max(0.9, factor);
    return static_cast<SimTime>(scaled);
}

KernelSchedule
GpuDevice::executeKernel(SimTime cmd_arrival, SimTime stream_ready,
                         const KernelDesc &kernel, TransferContext &ctx)
{
    const auto decode =
        cmd_proc_.decode(cmd_arrival, CommandKind::KernelLaunch);
    const SimTime ready = std::max(decode.end, stream_ready);

    const SimTime base_duration = kernel.duration > 0
        ? kernel.duration : rooflineDuration(kernel);
    SimTime ket = perturbDuration(base_duration);
    FaultService svc;
    if (kernel.uvm_alloc != 0 && kernel.uvm_touch_bytes > 0)
        svc = uvm_.touchOnDevice(kernel.uvm_alloc,
                                 kernel.uvm_touch_bytes, ctx);
    ket += svc.added;

    const auto exec = compute_.execute(ready, ket);
    if (obs_kernels_)
        obs_kernels_->bump(1);

    KernelSchedule sched;
    sched.enqueued = cmd_arrival;
    sched.start = exec.start;
    sched.end = exec.end;
    sched.queue_time = decode.end - cmd_arrival;
    sched.uvm_service = svc.added;
    sched.fault_batches = svc.batches;
    return sched;
}

CopyTiming
GpuDevice::executeCopy(SimTime cmd_arrival, Bytes bytes,
                       pcie::Direction dir, HostMemKind host_kind,
                       TransferContext &ctx)
{
    const CommandKind kind = dir == pcie::Direction::HostToDevice
        ? CommandKind::CopyH2D : CommandKind::CopyD2H;
    const auto decode = cmd_proc_.decode(cmd_arrival, kind);
    auto timing = copy_.copy(decode.end, bytes, dir, host_kind, ctx);
    timing.total.start = cmd_arrival;
    return timing;
}

CopyTiming
GpuDevice::executeCopyD2D(SimTime cmd_arrival, Bytes bytes,
                          TransferContext &ctx)
{
    const auto decode =
        cmd_proc_.decode(cmd_arrival, CommandKind::CopyD2D);
    auto timing = copy_.copyD2D(decode.end, bytes, ctx);
    timing.total.start = cmd_arrival;
    return timing;
}

} // namespace hcc::gpu
