#include "gpu/command_processor.hpp"

namespace hcc::gpu {

CommandProcessor::CommandProcessor(bool cc_mode, std::uint64_t seed)
    : cc_(cc_mode), decoder_("gpu.cmdproc"), rng_(seed)
{}

sim::Interval
CommandProcessor::decode(SimTime ready, CommandKind kind)
{
    const SimTime median = cc_ ? calib::kCmdProcDecodeCc
                               : calib::kCmdProcDecodeBase;
    SimTime cost = static_cast<SimTime>(rng_.lognormal(
        static_cast<double>(median), calib::kCmdProcDecodeSigma));
    // Semaphore/synchronization packets are lighter than full
    // launch/copy descriptors.
    if (kind == CommandKind::Semaphore)
        cost /= 4;
    return decoder_.reserve(ready, cost);
}

} // namespace hcc::gpu
