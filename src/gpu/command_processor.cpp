#include "gpu/command_processor.hpp"

namespace hcc::gpu {

CommandProcessor::CommandProcessor(bool cc_mode, std::uint64_t seed)
    : cc_(cc_mode), decoder_("gpu.cmdproc"), rng_(seed)
{}

} // namespace hcc::gpu
