/**
 * @file
 * GPU command processor (channel engine) model.
 *
 * All work reaches the GPU as commands written into MMIO-configured
 * channels and decoded by the command processor before being handed
 * to an engine (Sec. II-A).  Decode is a serial per-command cost; it
 * rises under CC because the command buffers arrive through the
 * trapped/validated path — this is the mechanism behind the paper's
 * KQT amplification for sparse launches (Fig. 7c).
 */

#ifndef HCC_GPU_COMMAND_PROCESSOR_HPP
#define HCC_GPU_COMMAND_PROCESSOR_HPP

#include "common/calibration.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/timeline.hpp"

namespace hcc::gpu {

/** Kinds of commands a channel can carry. */
enum class CommandKind { KernelLaunch, CopyH2D, CopyD2H, CopyD2D,
                         Semaphore };

/**
 * Single serial command decoder shared by all channels of a context.
 */
class CommandProcessor
{
  public:
    /**
     * @param cc_mode whether the device is in CC mode.
     * @param seed RNG seed for per-command decode jitter.
     */
    explicit CommandProcessor(bool cc_mode,
                              std::uint64_t seed = 0xc0dec);

    /**
     * Decode one command arriving at @p ready.
     * @return interval occupied on the decoder; the command is
     *         available to its target engine at interval.end.
     */
    sim::Interval
    decode(SimTime ready, CommandKind kind)
    {
        const SimTime median = cc_ ? calib::kCmdProcDecodeCc
                                   : calib::kCmdProcDecodeBase;
        SimTime cost = static_cast<SimTime>(rng_.lognormal(
            static_cast<double>(median), calib::kCmdProcDecodeSigma));
        // Semaphore/synchronization packets are lighter than full
        // launch/copy descriptors.
        if (kind == CommandKind::Semaphore)
            cost /= 4;
        return decoder_.reserve(ready, cost);
    }

    bool ccMode() const { return cc_; }
    std::uint64_t commandsDecoded() const { return decoder_.reservations(); }
    SimTime busyTime() const { return decoder_.busyTime(); }
    void reset() { decoder_.reset(); }

    /** Reseed-at-fork: put the decode-jitter RNG exactly where a
     *  processor constructed with @p seed would start. */
    void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

    /** Snapshot support: decoder timeline + jitter RNG position. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        decoder_.snapState(ar);
        rng_.snapState(ar);
    }

  private:
    bool cc_;
    sim::Timeline decoder_;
    Rng rng_;
};

} // namespace hcc::gpu

#endif // HCC_GPU_COMMAND_PROCESSOR_HPP
