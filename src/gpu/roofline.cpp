#include "gpu/kernel.hpp"

#include <algorithm>

#include "common/calibration.hpp"

namespace hcc::gpu {

SimTime
rooflineDuration(const KernelDesc &kernel)
{
    // Occupancy: a launch needs roughly one warp-heavy block per SM
    // to saturate the device; scale with available parallelism.
    const double threads =
        static_cast<double>(kernel.dims.totalThreads());
    const double full = static_cast<double>(calib::kNumSms) * 2048.0;
    const double occupancy =
        std::min(1.0, std::max(threads / full, 1.0 / 128.0));

    const double peak_gflops = static_cast<double>(calib::kNumSms)
        * calib::kSmGflops * occupancy;
    const double compute_s =
        peak_gflops > 0.0 ? kernel.gflops / peak_gflops : 0.0;
    const double memory_s = static_cast<double>(kernel.mem_bytes)
        / (calib::kHbmGBs * 1e9);

    // A kernel never finishes faster than a launch quantum.
    const SimTime floor = time::us(1.5);
    return std::max(floor,
                    time::sec(std::max(compute_s, memory_s)));
}

} // namespace hcc::gpu
