#include "gpu/copy_engine.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hcc::gpu {

CopyEngine::CopyEngine(int engines, obs::Registry *obs)
    : engines_("gpu.ce", engines), staging_("host.staging")
{
    if (obs) {
        engines_.attachObs(obs, "sim.timeline.gpu_ce");
        staging_.attachObs(obs, "sim.timeline.host_staging");
        obs_ops_h2d_ = &obs->counter("gpu.copy.ops_h2d");
        obs_bytes_h2d_ = &obs->counter("gpu.copy.bytes_h2d");
        obs_ops_d2h_ = &obs->counter("gpu.copy.ops_d2h");
        obs_bytes_d2h_ = &obs->counter("gpu.copy.bytes_d2h");
        obs_ops_d2d_ = &obs->counter("gpu.copy.ops_d2d");
        obs_bytes_d2d_ = &obs->counter("gpu.copy.bytes_d2d");
    }
}

void
CopyEngine::noteCopy(obs::Counter *ops, obs::Counter *bytes_counter,
                     Bytes bytes)
{
    if (ops) {
        ops->add(1);
        bytes_counter->add(bytes);
    }
}

CopyTiming
CopyEngine::basePinned(SimTime ready, Bytes bytes, pcie::Direction dir,
                       TransferContext &ctx)
{
    // One guest->host trip to program the engine, then a single DMA
    // at line rate, tracked on both the engine and the link.
    SimTime t = ready + ctx.tdx.mmioDoorbell();
    const auto dma = ctx.link.dma(t, bytes, dir);
    engines_.reserve(t, dma.end - t);
    return {{ready, dma.end}, false};
}

CopyTiming
CopyEngine::basePageable(SimTime ready, Bytes bytes,
                         pcie::Direction dir, TransferContext &ctx)
{
    // Chunked pipeline: host memcpy into the driver's pinned staging
    // buffer overlapped with the DMA of the previous chunk.  The
    // memcpy stage is the bottleneck.
    SimTime t = ready + ctx.tdx.mmioDoorbell();
    if (bytes == 0)
        return {{ready, t}, false};

    SimTime done = t;
    Bytes remaining = bytes;
    while (remaining > 0) {
        const Bytes chunk =
            std::min<Bytes>(remaining, calib::kBounceChunkBytes);
        remaining -= chunk;
        const auto stage = staging_.reserve(
            t, transferTime(chunk, calib::kHostMemcpyGBs));
        const auto dma = ctx.link.dma(stage.end, chunk, dir);
        engines_.reserve(stage.end, dma.end - stage.end);
        done = std::max(done, dma.end);
    }
    return {{ready, done}, false};
}

CopyTiming
CopyEngine::copy(SimTime ready, Bytes bytes, pcie::Direction dir,
                 HostMemKind host_kind, TransferContext &ctx)
{
    if (dir == pcie::Direction::HostToDevice)
        noteCopy(obs_ops_h2d_, obs_bytes_h2d_, bytes);
    else
        noteCopy(obs_ops_d2h_, obs_bytes_d2h_, bytes);
    if (ctx.cc()) {
        // Every host<->device copy rides the encrypted path; pinned
        // and managed memory degrade to encrypted paging semantics
        // (Observation 1 / Fig. 5's "managed" reclassification).
        const auto timing = ctx.channel->scheduleTransfer(
            ready, bytes, dir, ctx.link, ctx.tdx);
        engines_.reserve(timing.total.start,
                         timing.total.duration());
        const bool paging = host_kind != HostMemKind::Pageable;
        return {timing.total, paging};
    }
    if (host_kind == HostMemKind::Pinned)
        return basePinned(ready, bytes, dir, ctx);
    return basePageable(ready, bytes, dir, ctx);
}

CopyTiming
CopyEngine::copyD2D(SimTime ready, Bytes bytes, TransferContext &ctx)
{
    noteCopy(obs_ops_d2d_, obs_bytes_d2d_, bytes);
    const SimTime t = ready + ctx.tdx.mmioDoorbell();
    const auto iv = engines_.reserve(
        t, transferTime(bytes, calib::kHbmD2DGBs));
    return {{ready, iv.end}, false};
}

} // namespace hcc::gpu
