#include "gpu/gmmu.hpp"

#include "common/log.hpp"

namespace hcc::gpu {

Gmmu::Gmmu(int tlb_entries, obs::Registry *obs)
    : tlb_capacity_(tlb_entries)
{
    if (tlb_entries <= 0)
        fatal("GMMU TLB needs at least one entry");
    if (obs) {
        obs_tlb_hits_ = &obs->counter("gpu.gmmu.tlb_hits");
        obs_tlb_misses_ = &obs->counter("gpu.gmmu.tlb_misses");
        obs_far_faults_ = &obs->counter("gpu.gmmu.far_faults");
    }
}

void
Gmmu::map(std::uint64_t vpn, std::uint64_t pfn, std::uint64_t pages)
{
    for (std::uint64_t i = 0; i < pages; ++i)
        table_[vpn + i] = pfn + i;
}

void
Gmmu::unmap(std::uint64_t vpn, std::uint64_t pages)
{
    for (std::uint64_t i = 0; i < pages; ++i) {
        table_.erase(vpn + i);
        tlbInvalidate(vpn + i);
    }
}

bool
Gmmu::isMapped(std::uint64_t vpn) const
{
    return table_.find(vpn) != table_.end();
}

void
Gmmu::tlbInsert(std::uint64_t vpn, std::uint64_t pfn)
{
    const auto it = tlb_index_.find(vpn);
    if (it != tlb_index_.end()) {
        tlb_lru_.erase(it->second);
        tlb_index_.erase(it);
    }
    tlb_lru_.emplace_front(vpn, pfn);
    tlb_index_[vpn] = tlb_lru_.begin();
    if (static_cast<int>(tlb_lru_.size()) > tlb_capacity_) {
        tlb_index_.erase(tlb_lru_.back().first);
        tlb_lru_.pop_back();
    }
}

bool
Gmmu::tlbLookup(std::uint64_t vpn, std::uint64_t &pfn)
{
    const auto it = tlb_index_.find(vpn);
    if (it == tlb_index_.end())
        return false;
    pfn = it->second->second;
    // Move to MRU position.
    tlb_lru_.splice(tlb_lru_.begin(), tlb_lru_, it->second);
    return true;
}

void
Gmmu::tlbInvalidate(std::uint64_t vpn)
{
    const auto it = tlb_index_.find(vpn);
    if (it != tlb_index_.end()) {
        tlb_lru_.erase(it->second);
        tlb_index_.erase(it);
    }
}

Translation
Gmmu::translate(std::uint64_t vpn)
{
    Translation t;
    if (tlbLookup(vpn, t.pfn)) {
        ++tlb_hits_;
        if (obs_tlb_hits_)
            obs_tlb_hits_->add(1);
        t.result = TranslateResult::TlbHit;
        t.latency = kTlbHitLatency;
        return t;
    }
    ++tlb_misses_;
    if (obs_tlb_misses_)
        obs_tlb_misses_->add(1);
    const auto it = table_.find(vpn);
    t.latency = kTlbHitLatency + kWalkLevelLatency * kWalkLevels;
    if (it == table_.end()) {
        ++far_faults_;
        if (obs_far_faults_)
            obs_far_faults_->add(1);
        t.result = TranslateResult::FarFault;
        return t;
    }
    t.result = TranslateResult::TlbMissWalkHit;
    t.pfn = it->second;
    tlbInsert(vpn, t.pfn);
    return t;
}

} // namespace hcc::gpu
