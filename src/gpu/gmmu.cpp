#include "gpu/gmmu.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hcc::gpu {

Gmmu::Gmmu(int tlb_entries, obs::Registry *obs)
    : tlb_capacity_(tlb_entries)
{
    if (tlb_entries <= 0)
        fatal("GMMU TLB needs at least one entry");
    if (obs) {
        obs_tlb_hits_ = &obs->counter("gpu.gmmu.tlb_hits");
        obs_tlb_misses_ = &obs->counter("gpu.gmmu.tlb_misses");
        obs_far_faults_ = &obs->counter("gpu.gmmu.far_faults");
    }
}

std::uint64_t
Gmmu::eraseRange(std::uint64_t vpn, std::uint64_t pages)
{
    const std::uint64_t end = vpn + pages;
    std::uint64_t removed = 0;
    auto it = ranges_.upper_bound(vpn);
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.pages > vpn)
            it = prev;
    }
    while (it != ranges_.end() && it->first < end) {
        const std::uint64_t r_start = it->first;
        const std::uint64_t r_pages = it->second.pages;
        const std::uint64_t r_end = r_start + r_pages;
        const std::uint64_t r_pfn = it->second.pfn;
        it = ranges_.erase(it);
        if (r_start < vpn)
            ranges_.emplace(r_start, Range{vpn - r_start, r_pfn});
        if (r_end > end) {
            it = ranges_
                     .emplace(end, Range{r_end - end,
                                         r_pfn + (end - r_start)})
                     .first;
        }
        removed +=
            std::min(r_end, end) - std::max(r_start, vpn);
    }
    return removed;
}

void
Gmmu::map(std::uint64_t vpn, std::uint64_t pfn, std::uint64_t pages)
{
    if (pages == 0)
        return;
    // Overwrite semantics: drop any previous mapping of the range.
    mapped_pages_ -= eraseRange(vpn, pages);
    auto it = ranges_.emplace(vpn, Range{pages, pfn}).first;
    // Coalesce with the left neighbour when both vpn and pfn runs
    // are contiguous (the common case: UVM maps batches in order).
    if (it != ranges_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.pages == vpn
            && prev->second.pfn + prev->second.pages == pfn) {
            prev->second.pages += it->second.pages;
            ranges_.erase(it);
            it = prev;
        }
    }
    // And with the right neighbour.
    auto next = std::next(it);
    if (next != ranges_.end()
        && it->first + it->second.pages == next->first
        && it->second.pfn + it->second.pages == next->second.pfn) {
        it->second.pages += next->second.pages;
        ranges_.erase(next);
    }
    mapped_pages_ += pages;
}

void
Gmmu::unmap(std::uint64_t vpn, std::uint64_t pages)
{
    if (pages == 0)
        return;
    mapped_pages_ -= eraseRange(vpn, pages);
    // Range shoot-down: one scan of the (small) TLB instead of a
    // probe per page.
    const std::uint64_t end = vpn + pages;
    for (auto it = tlb_lru_.begin(); it != tlb_lru_.end();) {
        if (it->first >= vpn && it->first < end) {
            tlb_index_.erase(it->first);
            it = tlb_lru_.erase(it);
        } else {
            ++it;
        }
    }
}

bool
Gmmu::walk(std::uint64_t vpn, std::uint64_t &pfn) const
{
    auto it = ranges_.upper_bound(vpn);
    if (it == ranges_.begin())
        return false;
    --it;
    if (vpn >= it->first + it->second.pages)
        return false;
    pfn = it->second.pfn + (vpn - it->first);
    return true;
}

bool
Gmmu::isMapped(std::uint64_t vpn) const
{
    std::uint64_t pfn;
    return walk(vpn, pfn);
}

void
Gmmu::tlbInsert(std::uint64_t vpn, std::uint64_t pfn)
{
    const auto it = tlb_index_.find(vpn);
    if (it != tlb_index_.end()) {
        tlb_lru_.erase(it->second);
        tlb_index_.erase(it);
    }
    tlb_lru_.emplace_front(vpn, pfn);
    tlb_index_[vpn] = tlb_lru_.begin();
    if (static_cast<int>(tlb_lru_.size()) > tlb_capacity_) {
        tlb_index_.erase(tlb_lru_.back().first);
        tlb_lru_.pop_back();
    }
}

bool
Gmmu::tlbLookup(std::uint64_t vpn, std::uint64_t &pfn)
{
    const auto it = tlb_index_.find(vpn);
    if (it == tlb_index_.end())
        return false;
    pfn = it->second->second;
    // Move to MRU position.
    tlb_lru_.splice(tlb_lru_.begin(), tlb_lru_, it->second);
    return true;
}

Translation
Gmmu::translate(std::uint64_t vpn)
{
    Translation t;
    if (tlbLookup(vpn, t.pfn)) {
        ++tlb_hits_;
        if (obs_tlb_hits_)
            obs_tlb_hits_->bump(1);
        t.result = TranslateResult::TlbHit;
        t.latency = kTlbHitLatency;
        return t;
    }
    ++tlb_misses_;
    if (obs_tlb_misses_)
        obs_tlb_misses_->bump(1);
    t.latency = kTlbHitLatency + kWalkLevelLatency * kWalkLevels;
    std::uint64_t pfn;
    if (!walk(vpn, pfn)) {
        ++far_faults_;
        if (obs_far_faults_)
            obs_far_faults_->bump(1);
        t.result = TranslateResult::FarFault;
        return t;
    }
    t.result = TranslateResult::TlbMissWalkHit;
    t.pfn = pfn;
    tlbInsert(vpn, t.pfn);
    return t;
}

} // namespace hcc::gpu
