#include "gpu/gmmu.hpp"

#include "common/log.hpp"

namespace hcc::gpu {

Gmmu::Gmmu(int tlb_entries)
    : tlb_capacity_(tlb_entries)
{
    if (tlb_entries <= 0)
        fatal("GMMU TLB needs at least one entry");
}

void
Gmmu::map(std::uint64_t vpn, std::uint64_t pfn, std::uint64_t pages)
{
    for (std::uint64_t i = 0; i < pages; ++i)
        table_[vpn + i] = pfn + i;
}

void
Gmmu::unmap(std::uint64_t vpn, std::uint64_t pages)
{
    for (std::uint64_t i = 0; i < pages; ++i) {
        table_.erase(vpn + i);
        tlbInvalidate(vpn + i);
    }
}

bool
Gmmu::isMapped(std::uint64_t vpn) const
{
    return table_.find(vpn) != table_.end();
}

void
Gmmu::tlbInsert(std::uint64_t vpn, std::uint64_t pfn)
{
    const auto it = tlb_index_.find(vpn);
    if (it != tlb_index_.end()) {
        tlb_lru_.erase(it->second);
        tlb_index_.erase(it);
    }
    tlb_lru_.emplace_front(vpn, pfn);
    tlb_index_[vpn] = tlb_lru_.begin();
    if (static_cast<int>(tlb_lru_.size()) > tlb_capacity_) {
        tlb_index_.erase(tlb_lru_.back().first);
        tlb_lru_.pop_back();
    }
}

bool
Gmmu::tlbLookup(std::uint64_t vpn, std::uint64_t &pfn)
{
    const auto it = tlb_index_.find(vpn);
    if (it == tlb_index_.end())
        return false;
    pfn = it->second->second;
    // Move to MRU position.
    tlb_lru_.splice(tlb_lru_.begin(), tlb_lru_, it->second);
    return true;
}

void
Gmmu::tlbInvalidate(std::uint64_t vpn)
{
    const auto it = tlb_index_.find(vpn);
    if (it != tlb_index_.end()) {
        tlb_lru_.erase(it->second);
        tlb_index_.erase(it);
    }
}

Translation
Gmmu::translate(std::uint64_t vpn)
{
    Translation t;
    if (tlbLookup(vpn, t.pfn)) {
        ++tlb_hits_;
        t.result = TranslateResult::TlbHit;
        t.latency = kTlbHitLatency;
        return t;
    }
    ++tlb_misses_;
    const auto it = table_.find(vpn);
    t.latency = kTlbHitLatency + kWalkLevelLatency * kWalkLevels;
    if (it == table_.end()) {
        ++far_faults_;
        t.result = TranslateResult::FarFault;
        return t;
    }
    t.result = TranslateResult::TlbMissWalkHit;
    t.pfn = it->second;
    tlbInsert(vpn, t.pfn);
    return t;
}

} // namespace hcc::gpu
