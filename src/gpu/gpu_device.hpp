/**
 * @file
 * The GPU device: aggregates the command processor, compute engine,
 * copy engines and UVM manager, and exposes the scheduling entry
 * points the runtime drives.
 */

#ifndef HCC_GPU_GPU_DEVICE_HPP
#define HCC_GPU_GPU_DEVICE_HPP

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "gpu/command_processor.hpp"
#include "gpu/compute_engine.hpp"
#include "gpu/copy_engine.hpp"
#include "gpu/kernel.hpp"
#include "gpu/uvm.hpp"

namespace hcc::fault { class Injector; }

namespace hcc::gpu {

/** Static device configuration. */
struct GpuConfig
{
    /** Device in CC mode (set before binding to a TD). */
    bool cc_mode = false;
    /** Number of DMA copy engines. */
    int copy_engines = 2;
    /** Max concurrently resident kernels. */
    int concurrent_kernels = 16;
    /** RNG seed for per-kernel CC execution jitter. */
    std::uint64_t seed = 0x600dcafe;
    /** UVM subsystem tunables. */
    UvmConfig uvm;
};

/**
 * One GPU (Table I: H100 NVL class).
 */
class GpuDevice
{
  public:
    /**
     * @param obs optional stats sink, threaded through to the copy
     *        engines and UVM manager; the device itself publishes
     *        "gpu.kernels.executed".
     * @param fault optional injector, threaded through to the UVM
     *        manager ("uvm.thrash" site).
     */
    explicit GpuDevice(const GpuConfig &config = GpuConfig{},
                       obs::Registry *obs = nullptr,
                       fault::Injector *fault = nullptr);

    /**
     * Execute a kernel whose launch command arrives at
     * @p cmd_arrival and whose stream ordering allows execution no
     * earlier than @p stream_ready.  UVM faults for the kernel's
     * touch set are serviced as part of its execution time.
     */
    KernelSchedule executeKernel(SimTime cmd_arrival,
                                 SimTime stream_ready,
                                 const KernelDesc &kernel,
                                 TransferContext &ctx);

    /** Schedule a host<->device copy (command decode + transfer). */
    CopyTiming executeCopy(SimTime cmd_arrival, Bytes bytes,
                           pcie::Direction dir, HostMemKind host_kind,
                           TransferContext &ctx);

    /** Schedule a device-to-device copy. */
    CopyTiming executeCopyD2D(SimTime cmd_arrival, Bytes bytes,
                              TransferContext &ctx);

    bool ccMode() const { return config_.cc_mode; }
    const GpuConfig &config() const { return config_; }

    CommandProcessor &commandProcessor() { return cmd_proc_; }
    ComputeEngine &computeEngine() { return compute_; }
    CopyEngine &copyEngine() { return copy_; }
    UvmManager &uvm() { return uvm_; }
    const UvmManager &uvm() const { return uvm_; }

    /**
     * Reseed-at-fork support (snap::runForkGroup): move the jitter
     * RNGs to the exact state a device constructed with @p seed in
     * its GpuConfig would hold, without touching engine timelines.
     */
    void
    reseedAtFork(std::uint64_t seed)
    {
        config_.seed = seed;
        rng_ = Rng(seed);
        cmd_proc_.reseed(seed ^ 0xdec0deULL);
    }

    /** Snapshot support: every engine plus the jitter RNG. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        cmd_proc_.snapState(ar);
        compute_.snapState(ar);
        copy_.snapState(ar);
        uvm_.snapState(ar);
        rng_.snapState(ar);
    }

  private:
    /** Per-kernel execution-time perturbation under CC. */
    SimTime perturbDuration(SimTime duration);

    GpuConfig config_;
    CommandProcessor cmd_proc_;
    ComputeEngine compute_;
    CopyEngine copy_;
    UvmManager uvm_;
    Rng rng_;
    obs::Counter *obs_kernels_ = nullptr;
};

} // namespace hcc::gpu

#endif // HCC_GPU_GPU_DEVICE_HPP
