#include "gpu/compute_engine.hpp"

namespace hcc::gpu {

ComputeEngine::ComputeEngine(int concurrent_kernels)
    : slots_("gpu.sm", concurrent_kernels)
{}

} // namespace hcc::gpu
