#include "gpu/compute_engine.hpp"

namespace hcc::gpu {

ComputeEngine::ComputeEngine(int concurrent_kernels)
    : slots_("gpu.sm", concurrent_kernels)
{}

sim::Interval
ComputeEngine::execute(SimTime ready, SimTime duration)
{
    return slots_.reserve(ready, duration);
}

} // namespace hcc::gpu
