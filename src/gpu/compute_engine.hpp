/**
 * @file
 * Compute engine model: the pool of GPCs/SMs that executes kernels.
 *
 * Kernel execution time is supplied by the kernel descriptor (plus
 * UVM service time computed by the device); the engine models
 * *concurrency*: up to a fixed number of kernels can be resident at
 * once (across streams), beyond which kernels queue — this is what
 * lets multi-stream overlap (Fig. 12c) actually overlap, while
 * same-stream kernels are serialized by the stream logic above.
 */

#ifndef HCC_GPU_COMPUTE_ENGINE_HPP
#define HCC_GPU_COMPUTE_ENGINE_HPP

#include "common/units.hpp"
#include "sim/timeline.hpp"

namespace hcc::gpu {

/**
 * Fixed-width kernel execution resource.
 */
class ComputeEngine
{
  public:
    /** @param concurrent_kernels max kernels resident at once. */
    explicit ComputeEngine(int concurrent_kernels = 16);

    /**
     * Execute a kernel of @p duration becoming ready at @p ready.
     * @return the occupied interval on the granting slot.
     */
    sim::Interval execute(SimTime ready, SimTime duration)
    {
        return slots_.reserve(ready, duration);
    }

    int concurrency() const { return slots_.size(); }
    SimTime earliestFree() const { return slots_.earliestFree(); }
    void reset() { slots_.reset(); }

    /** Snapshot support. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        slots_.snapState(ar);
    }

  private:
    sim::TimelinePool slots_;
};

} // namespace hcc::gpu

#endif // HCC_GPU_COMPUTE_ENGINE_HPP
