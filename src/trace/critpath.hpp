/**
 * @file
 * Trace-derived critical-path analysis and bottleneck classifier.
 *
 * The Fig. 3 decomposition (analysis.hpp) is additive: it sums KLO,
 * queue waits, copies and kernel time without asking which of them
 * actually *gated* the end-to-end span once streams overlap.  This
 * layer answers that question from the recorded trace alone:
 *
 *  1. A DAG over the events of one run, built in a single pass over
 *     the chunk-paged EventView.  Edges:
 *       - per-stream program order (kernels/async copies serialize on
 *         their stream),
 *       - Launch -> Kernel via the `correlation` id (GraphLaunch
 *         fans out to every node kernel),
 *       - Sync join points (a synchronize cannot retire before the
 *         device work it waits on),
 *       - timestamp-implied host serialization (the host API chain:
 *         launches, allocs, frees, syncs and blocking copies).
 *     Fault recovery spans are annotations *inside* other events and
 *     join no chain; their time is re-attributed by overlap instead.
 *
 *  2. A longest-path walk: starting from the event that ends last,
 *     repeatedly bind to the predecessor that released it (latest
 *     finishing candidate; ties break to the higher event index, so
 *     the walk is deterministic).  The walk telescopes the full
 *     [firstStart, lastEnd] span into integer-picosecond segments, so
 *     the per-category shares sum *exactly* to `end_to_end`.
 *
 *  3. CPM-style slack per event (how much an event could grow
 *     without moving the end of the run) for overlap what-ifs.
 *
 *  4. A deterministic rule-based classifier mapping the shares to a
 *     bottleneck label (crypto-bound, link-bound, launch-bound,
 *     uvm-thrash, fault-bound, compute-bound).  Thresholds are
 *     documented in docs/CRITICAL_PATH.md.
 *
 * analyze() (analysis.hpp) is implemented on the same single
 * traversal, so every sweep cell gets metrics + critical path for
 * one pass over its events.
 */

#ifndef HCC_TRACE_CRITPATH_HPP
#define HCC_TRACE_CRITPATH_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "obs/registry.hpp"
#include "trace/analysis.hpp"
#include "trace/tracer.hpp"

namespace hcc::trace {

/** Where one picosecond of the critical path is spent. */
enum class PathCategory
{
    Compute,  //!< kernel execution (and plain device-local blits)
    Crypto,   //!< AES/MEE share of CC copy time (busy-ratio split)
    Link,     //!< PCIe wire + staging share of copy time
    Launch,   //!< launch operations, LQT gaps and dispatch waits
    Uvm,      //!< managed paging: prefetch/writeback/encrypted paging
    Sync,     //!< synchronize API tails on the path
    Alloc,    //!< device/host/managed allocation and free calls
    Fault,    //!< injected-fault recovery spans overlapping the path
    Other,    //!< untraced host time between API calls
};

constexpr std::size_t kPathCategoryCount = 9;

/** Lower-case category name ("compute", "crypto", ...). */
std::string_view pathCategoryName(PathCategory category);

/** Deterministic bottleneck labels (codes are stable, see docs). */
enum class Bottleneck
{
    ComputeBound = 0,
    CryptoBound = 1,
    LinkBound = 2,
    LaunchBound = 3,
    UvmThrash = 4,
    FaultBound = 5,
};

/** Label as reported ("compute-bound", "uvm-thrash", ...). */
std::string_view bottleneckName(Bottleneck bottleneck);

/** One on-path slice of a traced event. */
struct PathSegment
{
    /** Event index into Tracer::events(). */
    std::uint32_t event = 0;
    /** The slice of the event that lies on the path. */
    SimTime begin = 0;
    SimTime end = 0;
    /** Display category (crypto/link copies carry the larger side). */
    PathCategory category = PathCategory::Other;

    SimTime duration() const { return end - begin; }
};

/** The critical path of one run. */
struct CriticalPath
{
    /** lastEnd - firstStart of the trace (= AppMetrics.end_to_end). */
    SimTime end_to_end = 0;
    /** Path time spent inside traced events (gaps excluded). */
    SimTime on_path_ps = 0;
    /** Exact partition of end_to_end by category (sums to it). */
    std::array<SimTime, kPathCategoryCount> shares{};
    Bottleneck bottleneck = Bottleneck::ComputeBound;
    /** Number of on-path slices.  Equals segments.size() when the
     *  segment list is materialized; ForkAnalyzer counts without
     *  building the list. */
    std::size_t on_path_events = 0;
    /** On-path slices, ascending in time and event index.  Left
     *  empty by ForkAnalyzer (campaign cells never export them). */
    std::vector<PathSegment> segments;
    /** Per-event slack (ps an event can grow without moving the
     *  end), indexed like Tracer::events(). */
    std::vector<SimTime> slack;

    SimTime share(PathCategory c) const
    {
        return shares[static_cast<std::size_t>(c)];
    }
};

/** Metrics and critical path from one traversal of the trace. */
struct CriticalAnalysis
{
    AppMetrics metrics;
    CriticalPath path;
};

/**
 * Run the shared single pass: Fig. 3 metrics plus the critical path.
 * @param obs when given, the run's registry supplies the crypto/link
 *        busy ratio used to split CC copy time and the UVM fault
 *        signal for the classifier; counters are only read, never
 *        created.
 * @param with_slack also run the CPM latest-finish sweep that fills
 *        CriticalPath::slack.  The path, shares and bottleneck never
 *        depend on it — only the slack report tables and the JSON
 *        export do — so bulk consumers (the campaign fork engine,
 *        which analyzes thousands of cells) pass false and skip one
 *        full O(events) pass; `slack` is then left empty.
 */
CriticalAnalysis analyzeCritical(const Tracer &tracer,
                                 const obs::Registry *obs = nullptr,
                                 bool with_slack = true);

/**
 * Incremental re-analysis for the snapshot fork engine.
 *
 * A fork group runs one shared prefix and replays N per-cell
 * suffixes on top of it; analyzeCritical() would rescan the full
 * trace for every cell even though the prefix events never change.
 * capture() scans the prefix once and keeps the scan state (metrics
 * accumulators, DAG chains, correlation map); analyze() then copies
 * that state, scans only the appended suffix events, and walks the
 * path backward until it crosses into the prefix, where a memoized
 * replay of the prefix walk (keyed by entry event, built on first
 * use) supplies the remaining shares.  The result is bit-identical
 * to analyzeCritical() with with_slack = false, except that
 * `segments` and `slack` stay empty (on_path_events still counts the
 * slices) and the metrics sample sets come back compacted to their
 * totals (compactSampleMetrics) — campaign cells only consume the
 * sums, shares, bottleneck and the published critpath.* counters.
 *
 * Per-cell fault spans and crypto/link busy ratios are applied live,
 * so faulted cells that perturb the suffix (or even overlap cached
 * prefix slices) stay exact.  Not thread-safe: use one instance per
 * fork group, on the group's worker.
 */
class ForkAnalyzer
{
  public:
    ForkAnalyzer();
    ~ForkAnalyzer();
    ForkAnalyzer(ForkAnalyzer &&) noexcept;
    ForkAnalyzer &operator=(ForkAnalyzer &&) noexcept;

    /** Scan the fork-point prefix (the tracer as captured). */
    void capture(const Tracer &prefix_tracer);
    bool captured() const;

    /**
     * Snapshot-tree support: a deep copy carrying the captured
     * prefix scan and the memoized prefix walks.  A tree node clones
     * its parent's analyzer and extendCapture()s it over the node's
     * segment, so incremental critical-path analysis telescopes
     * along the fork chain instead of rescanning deeper prefixes
     * from scratch.
     */
    ForkAnalyzer clone() const;

    /**
     * Grow the captured prefix over events appended since capture()
     * (the chained segment just run on the restored Context).
     * Memoized prefix walks stay valid: the old prefix events are
     * unchanged and walks only descend toward lower indices.
     */
    void extendCapture(const Tracer &tracer);

    /**
     * Analyze a trace that extends the captured prefix.  @p tracer
     * must contain the prefix events unchanged (the restore-in-place
     * snapshot engine guarantees this).
     */
    CriticalAnalysis analyze(const Tracer &tracer,
                             const obs::Registry *obs);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * The classifier alone (exposed for tests): maps exact shares to a
 * label.  @p uvm_fault_ps is the registry's gpu.uvm.fault_time_ps
 * (demand faults inside kernels leave no trace events).
 */
Bottleneck
classifyShares(const std::array<SimTime, kPathCategoryCount> &shares,
               SimTime end_to_end, SimTime uvm_fault_ps = 0);

/** Publish the path as critpath.* counters in @p registry. */
void publishCriticalPath(const CriticalPath &path,
                         obs::Registry &registry);

/** The path as a one-line JSON object (deterministic field order). */
std::string criticalPathJson(const CriticalPath &path);

/** `"critical_path": {...}` member text for stats dumps. */
std::string criticalPathJsonMember(const CriticalPath &path);

/**
 * Human report: summary, per-category shares, top-N on-path
 * contributors and top-N slack carriers (overlap candidates).
 */
std::string criticalReport(const CriticalPath &path,
                           const Tracer &tracer, int top_n);

/** Full machine-readable dump for `hccsim critical --critical-out`. */
void writeCriticalJson(const CriticalPath &path, const Tracer &tracer,
                       std::ostream &os);

} // namespace hcc::trace

#endif // HCC_TRACE_CRITPATH_HPP
