/**
 * @file
 * Trace comparison: the paper's event-level analysis (Sec. VI-B) as
 * a tool.  Aligns a base and a CC trace of the same program by event
 * order within each kind and reports where the extra time went —
 * per event kind and for the worst individual offenders.
 */

#ifndef HCC_TRACE_COMPARE_HPP
#define HCC_TRACE_COMPARE_HPP

#include <string>
#include <vector>

#include "common/units.hpp"
#include "trace/tracer.hpp"

namespace hcc::trace {

/** Aggregate delta for one event kind. */
struct KindDelta
{
    EventKind kind = EventKind::Launch;
    std::size_t count_a = 0;
    std::size_t count_b = 0;
    SimTime total_a = 0;
    SimTime total_b = 0;

    SimTime delta() const { return total_b - total_a; }
    double
    ratio() const
    {
        return total_a > 0
            ? static_cast<double>(total_b)
                  / static_cast<double>(total_a)
            : 0.0;
    }
};

/** One aligned event pair with a large delta. */
struct EventDelta
{
    EventKind kind = EventKind::Launch;
    std::string name;
    /** Ordinal of the event within its kind. */
    std::size_t index = 0;
    SimTime duration_a = 0;
    SimTime duration_b = 0;

    SimTime delta() const { return duration_b - duration_a; }
};

/** Full comparison result. */
struct TraceDiff
{
    /** End-to-end spans. */
    SimTime span_a = 0;
    SimTime span_b = 0;
    /** Per-kind aggregates (only kinds present in either trace). */
    std::vector<KindDelta> kinds;
    /** The largest individual regressions, sorted by delta. */
    std::vector<EventDelta> top_events;
    /** Events that could not be aligned (count mismatch), per kind. */
    std::size_t unaligned = 0;

    /** Render a human-readable report. */
    std::string report() const;
};

/**
 * Compare two traces of the same program (a = baseline, b = changed,
 * e.g. base vs CC).  Events are aligned by order within each kind;
 * differing counts are tolerated (extras counted as unaligned).
 * @param top_n how many worst event regressions to retain.
 */
TraceDiff compareTraces(const Tracer &a, const Tracer &b,
                        std::size_t top_n = 10);

} // namespace hcc::trace

#endif // HCC_TRACE_COMPARE_HPP
