/**
 * @file
 * Trace export: Chrome trace-event JSON (loadable in Perfetto /
 * chrome://tracing) and CSV, so simulated timelines can be inspected
 * with the same tooling people use on real Nsight exports.
 */

#ifndef HCC_TRACE_EXPORT_HPP
#define HCC_TRACE_EXPORT_HPP

#include <iosfwd>
#include <string>

#include "trace/tracer.hpp"

namespace hcc::trace {

/**
 * Emit the trace as a Chrome trace-event JSON array of complete ("X")
 * events.  Tracks: host API activity (launch/alloc/sync, pid 1) and
 * device activity per stream (kernels/copies, pid 2, tid = stream).
 */
void exportChromeTrace(const Tracer &tracer, std::ostream &os);

/** Convenience: render the Chrome trace to a string. */
std::string chromeTraceJson(const Tracer &tracer);

/** Emit the raw events as CSV (one row per event). */
void exportCsv(const Tracer &tracer, std::ostream &os);

} // namespace hcc::trace

#endif // HCC_TRACE_EXPORT_HPP
