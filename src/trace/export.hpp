/**
 * @file
 * Trace export: Chrome trace-event JSON (loadable in Perfetto /
 * chrome://tracing) and CSV, so simulated timelines can be inspected
 * with the same tooling people use on real Nsight exports.
 */

#ifndef HCC_TRACE_EXPORT_HPP
#define HCC_TRACE_EXPORT_HPP

#include <iosfwd>
#include <string>

#include "obs/registry.hpp"
#include "trace/tracer.hpp"

namespace hcc::trace {

/**
 * Emit the trace as a Chrome trace-event JSON array of complete ("X")
 * events.  Tracks: host API activity (launch/alloc/sync, pid 1) and
 * device activity per stream (kernels/copies, pid 2, tid = stream).
 * When @p obs is given, every gauge with recorded samples is
 * additionally rendered as a Perfetto counter track (ph "C", pid 3)
 * so stats like bounce-buffer occupancy plot over simulated time.
 */
void exportChromeTrace(const Tracer &tracer, std::ostream &os,
                       const obs::Registry *obs = nullptr);

/** Convenience: render the Chrome trace to a string. */
std::string chromeTraceJson(const Tracer &tracer,
                            const obs::Registry *obs = nullptr);

/**
 * Emit the raw events as CSV (one row per event, RFC 4180: fields
 * containing commas, quotes or newlines are quoted).
 */
void exportCsv(const Tracer &tracer, std::ostream &os);

} // namespace hcc::trace

#endif // HCC_TRACE_EXPORT_HPP
