/**
 * @file
 * Trace export: Chrome trace-event JSON (loadable in Perfetto /
 * chrome://tracing) and CSV, so simulated timelines can be inspected
 * with the same tooling people use on real Nsight exports.
 */

#ifndef HCC_TRACE_EXPORT_HPP
#define HCC_TRACE_EXPORT_HPP

#include <iosfwd>
#include <string>

#include "obs/registry.hpp"
#include "trace/critpath.hpp"
#include "trace/tracer.hpp"

namespace hcc::trace {

/**
 * Emit the trace as a Chrome trace-event JSON array of complete ("X")
 * events.  Tracks: host API activity (launch/alloc/sync, pid 1) and
 * device activity per stream (kernels/copies, pid 2, tid = stream).
 * Every event carries its exact queue_wait_ps and correlation as
 * args (Kernel events also as kqt_ps, Launch/GraphLaunch as lqt_ps)
 * so KQT/LQT are inspectable per-span in the Perfetto UI.
 * When @p obs is given, every gauge with recorded samples is
 * additionally rendered as a Perfetto counter track (ph "C", pid 3)
 * so stats like bounce-buffer occupancy plot over simulated time.
 * When @p critical is given, on-path events carry
 * on_critical_path/slack_ps args and consecutive on-path spans are
 * linked with Perfetto flow events (cat "critpath").
 */
void exportChromeTrace(const Tracer &tracer, std::ostream &os,
                       const obs::Registry *obs = nullptr,
                       const CriticalPath *critical = nullptr);

/** Convenience: render the Chrome trace to a string. */
std::string chromeTraceJson(const Tracer &tracer,
                            const obs::Registry *obs = nullptr,
                            const CriticalPath *critical = nullptr);

/**
 * Emit the raw events as CSV (one row per event, RFC 4180: fields
 * containing commas, quotes or newlines are quoted).
 */
void exportCsv(const Tracer &tracer, std::ostream &os);

} // namespace hcc::trace

#endif // HCC_TRACE_EXPORT_HPP
