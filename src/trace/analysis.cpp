#include "trace/analysis.hpp"

#include <algorithm>
#include <limits>

namespace hcc::trace {

// analyze() lives in critpath.cpp: the Fig. 3 metrics and the
// critical path share one pass over the events (see critpath.hpp).

void
compactSampleMetrics(AppMetrics &metrics)
{
    const auto compact = [](SampleSet &set) {
        if (set.empty())
            return;
        const double total = set.sum();
        SampleSet one;
        one.add(total);
        set = std::move(one);
    };
    compact(metrics.klo);
    compact(metrics.lqt);
    compact(metrics.kqt);
    compact(metrics.ket);
}

SimTime
unionCoverage(std::vector<std::pair<SimTime, SimTime>> spans)
{
    if (spans.empty())
        return 0;
    std::sort(spans.begin(), spans.end());
    SimTime covered = 0;
    SimTime cur_start = spans.front().first;
    SimTime cur_end = spans.front().second;
    for (std::size_t i = 1; i < spans.size(); ++i) {
        const auto &[s, e] = spans[i];
        if (s > cur_end) {
            covered += cur_end - cur_start;
            cur_start = s;
            cur_end = e;
        } else {
            cur_end = std::max(cur_end, e);
        }
    }
    covered += cur_end - cur_start;
    return covered;
}

SimTime
overlapWith(SimTime s, SimTime e,
            const std::vector<std::pair<SimTime, SimTime>> &spans)
{
    if (e <= s)
        return 0;
    std::vector<std::pair<SimTime, SimTime>> clipped;
    clipped.reserve(spans.size());
    for (const auto &[a, b] : spans) {
        const SimTime lo = std::max(a, s);
        const SimTime hi = std::min(b, e);
        if (hi > lo)
            clipped.emplace_back(lo, hi);
    }
    return unionCoverage(std::move(clipped));
}

std::vector<EventPoint>
eventScatter(const Tracer &tracer, EventKind kind,
             std::size_t drop_longest)
{
    auto events = tracer.ofKind(kind);
    if (drop_longest > 0 && drop_longest < events.size()) {
        std::sort(events.begin(), events.end(),
                  [](const TraceEvent &a, const TraceEvent &b) {
                      return a.duration() > b.duration();
                  });
        events.erase(events.begin(),
                     events.begin()
                         + static_cast<std::ptrdiff_t>(drop_longest));
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.start < b.start;
              });
    std::vector<EventPoint> pts;
    pts.reserve(events.size());
    for (const auto &e : events) {
        pts.push_back({time::toUs(e.start),
                       time::toUs(e.duration())});
    }
    return pts;
}

double
kernelToLaunchRatio(const AppMetrics &m)
{
    const double denom =
        static_cast<double>(m.sumKlo() + m.sumLqt());
    if (denom <= 0.0)
        return std::numeric_limits<double>::max();
    return static_cast<double>(m.sumKet()) / denom;
}

} // namespace hcc::trace
