#include "trace/analysis.hpp"

#include <algorithm>
#include <limits>

namespace hcc::trace {

AppMetrics
analyze(const Tracer &tracer)
{
    AppMetrics m;
    for (const auto &e : tracer.events()) {
        const auto d = static_cast<double>(e.duration());
        switch (e.kind) {
          case EventKind::Launch:
            m.klo.add(d);
            m.lqt.add(static_cast<double>(e.queue_wait));
            ++m.launches;
            break;
          case EventKind::GraphLaunch:
            m.klo.add(d);
            m.lqt.add(static_cast<double>(e.queue_wait));
            ++m.launches;
            break;
          case EventKind::Kernel:
            m.kqt.add(static_cast<double>(e.queue_wait));
            m.ket.add(d);
            ++m.kernels;
            break;
          case EventKind::MemcpyH2D:
            m.copy_h2d += e.duration();
            break;
          case EventKind::MemcpyD2H:
            m.copy_d2h += e.duration();
            break;
          case EventKind::MemcpyD2D:
            m.copy_d2d += e.duration();
            break;
          case EventKind::MallocDevice:
            m.alloc_device += e.duration();
            break;
          case EventKind::MallocHost:
            m.alloc_host += e.duration();
            break;
          case EventKind::MallocManaged:
            m.alloc_managed += e.duration();
            break;
          case EventKind::Free:
            m.free_time += e.duration();
            break;
          case EventKind::Sync:
            m.sync_time += e.duration();
            break;
          case EventKind::Fault:
            m.fault_time += e.duration();
            ++m.fault_recoveries;
            break;
        }
    }
    m.end_to_end = tracer.span();
    return m;
}

SimTime
unionCoverage(std::vector<std::pair<SimTime, SimTime>> spans)
{
    if (spans.empty())
        return 0;
    std::sort(spans.begin(), spans.end());
    SimTime covered = 0;
    SimTime cur_start = spans.front().first;
    SimTime cur_end = spans.front().second;
    for (std::size_t i = 1; i < spans.size(); ++i) {
        const auto &[s, e] = spans[i];
        if (s > cur_end) {
            covered += cur_end - cur_start;
            cur_start = s;
            cur_end = e;
        } else {
            cur_end = std::max(cur_end, e);
        }
    }
    covered += cur_end - cur_start;
    return covered;
}

SimTime
overlapWith(SimTime s, SimTime e,
            const std::vector<std::pair<SimTime, SimTime>> &spans)
{
    if (e <= s)
        return 0;
    std::vector<std::pair<SimTime, SimTime>> clipped;
    clipped.reserve(spans.size());
    for (const auto &[a, b] : spans) {
        const SimTime lo = std::max(a, s);
        const SimTime hi = std::min(b, e);
        if (hi > lo)
            clipped.emplace_back(lo, hi);
    }
    return unionCoverage(std::move(clipped));
}

std::vector<EventPoint>
eventScatter(const Tracer &tracer, EventKind kind,
             std::size_t drop_longest)
{
    auto events = tracer.ofKind(kind);
    if (drop_longest > 0 && drop_longest < events.size()) {
        std::sort(events.begin(), events.end(),
                  [](const TraceEvent &a, const TraceEvent &b) {
                      return a.duration() > b.duration();
                  });
        events.erase(events.begin(),
                     events.begin()
                         + static_cast<std::ptrdiff_t>(drop_longest));
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.start < b.start;
              });
    std::vector<EventPoint> pts;
    pts.reserve(events.size());
    for (const auto &e : events) {
        pts.push_back({time::toUs(e.start),
                       time::toUs(e.duration())});
    }
    return pts;
}

double
kernelToLaunchRatio(const AppMetrics &m)
{
    const double denom =
        static_cast<double>(m.sumKlo() + m.sumLqt());
    if (denom <= 0.0)
        return std::numeric_limits<double>::max();
    return static_cast<double>(m.sumKet()) / denom;
}

} // namespace hcc::trace
