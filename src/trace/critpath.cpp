/**
 * @file
 * Critical-path engine: shared trace scan, longest-path walk, slack,
 * bottleneck classifier and reporters.  See critpath.hpp for the
 * model; docs/CRITICAL_PATH.md for the edge rules and thresholds.
 */

#include "trace/critpath.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/log.hpp"
#include "common/table.hpp"

namespace hcc::trace {
namespace {

constexpr std::uint32_t kNone = 0xffffffffu;

std::size_t
idx(PathCategory c)
{
    return static_cast<std::size_t>(c);
}

/**
 * Host-serialized events: the calling thread cannot issue the next
 * API call before these return.  Blocking copies (stream < 0) ride
 * the host; async copies and kernels live on device chains instead.
 */
bool
isHostSerial(const TraceEvent &e)
{
    switch (e.kind) {
      case EventKind::Launch:
      case EventKind::GraphLaunch:
      case EventKind::MallocDevice:
      case EventKind::MallocHost:
      case EventKind::MallocManaged:
      case EventKind::Free:
      case EventKind::Sync:
        return true;
      case EventKind::MemcpyH2D:
      case EventKind::MemcpyD2H:
      case EventKind::MemcpyD2D:
        return e.stream < 0;
      case EventKind::Kernel:
      case EventKind::Fault:
        return false;
    }
    return false;
}

bool
isDeviceSide(const TraceEvent &e)
{
    switch (e.kind) {
      case EventKind::Kernel:
        return true;
      case EventKind::MemcpyH2D:
      case EventKind::MemcpyD2H:
      case EventKind::MemcpyD2D:
        return e.stream >= 0;
      case EventKind::Launch:
      case EventKind::GraphLaunch:
      case EventKind::MallocDevice:
      case EventKind::MallocHost:
      case EventKind::MallocManaged:
      case EventKind::Free:
      case EventKind::Sync:
      case EventKind::Fault:
        return false;
    }
    return false;
}

bool
isCopy(EventKind k)
{
    return k == EventKind::MemcpyH2D || k == EventKind::MemcpyD2H
           || k == EventKind::MemcpyD2D;
}

/** Managed/prefetch traffic counts as UVM, not link. */
bool
isUvmCopy(const Tracer &t, const TraceEvent &e)
{
    if (e.encrypted_paging)
        return true;
    const auto name = t.name(e);
    return name == "memPrefetch" || name == "memcpy-managed";
}

PathCategory
copyCategory(const Tracer &t, const TraceEvent &e)
{
    if (isUvmCopy(t, e))
        return PathCategory::Uvm;
    if (e.kind == EventKind::MemcpyD2D)
        return PathCategory::Compute; // device-local blit
    return PathCategory::Link;
}

/** Category charged for the on-path slice of an event. */
PathCategory
eventCategory(const Tracer &t, const TraceEvent &e)
{
    switch (e.kind) {
      case EventKind::Kernel:
        return PathCategory::Compute;
      case EventKind::MemcpyH2D:
      case EventKind::MemcpyD2H:
      case EventKind::MemcpyD2D:
        return copyCategory(t, e);
      case EventKind::Launch:
      case EventKind::GraphLaunch:
        return PathCategory::Launch;
      case EventKind::MallocDevice:
      case EventKind::MallocHost:
      case EventKind::MallocManaged:
      case EventKind::Free:
        return PathCategory::Alloc;
      case EventKind::Sync:
        return PathCategory::Sync;
      case EventKind::Fault:
        return PathCategory::Fault;
    }
    return PathCategory::Other;
}

/** The single pass shared by analyze() and analyzeCritical(). */
struct Scan
{
    AppMetrics metrics;
    /** Program-order predecessor (host chain or stream chain). */
    std::vector<std::uint32_t> chain;
    /** Kernel -> its Launch/GraphLaunch (via correlation). */
    std::vector<std::uint32_t> corr;
    /** (sync event, waited-on device event), ascending sync index. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> sync_edges;
    /** Merged fault-recovery coverage, sorted and disjoint. */
    std::vector<std::pair<SimTime, SimTime>> fault_spans;
    /** Walk start: latest-ending non-fault event (tie: higher idx). */
    std::uint32_t tail = kNone;
    SimTime last_nonfault_end = 0;
};

Scan
scanTrace(const Tracer &tracer, bool build_graph)
{
    Scan s;
    AppMetrics &m = s.metrics;
    const auto ev = tracer.events();
    const std::size_t n = ev.size();
    if (build_graph) {
        s.chain.assign(n, kNone);
        s.corr.assign(n, kNone);
    }
    std::vector<std::pair<SimTime, SimTime>> sync_spans;
    std::uint32_t last_host = kNone;
    std::vector<std::uint32_t> last_dev; // per stream id
    std::unordered_map<std::uint64_t, std::uint32_t> launch_of;

    std::uint32_t i = 0;
    for (auto it = ev.begin(); it != ev.end(); ++it, ++i) {
        const TraceEvent &e = *it;
        const auto d = static_cast<double>(e.duration());
        switch (e.kind) {
          case EventKind::Launch:
          case EventKind::GraphLaunch:
            m.klo.add(d);
            m.lqt.add(static_cast<double>(e.queue_wait));
            ++m.launches;
            break;
          case EventKind::Kernel:
            m.kqt.add(static_cast<double>(e.queue_wait));
            m.ket.add(d);
            ++m.kernels;
            break;
          case EventKind::MemcpyH2D:
            m.copy_h2d += e.duration();
            break;
          case EventKind::MemcpyD2H:
            m.copy_d2h += e.duration();
            break;
          case EventKind::MemcpyD2D:
            m.copy_d2d += e.duration();
            break;
          case EventKind::MallocDevice:
            m.alloc_device += e.duration();
            break;
          case EventKind::MallocHost:
            m.alloc_host += e.duration();
            break;
          case EventKind::MallocManaged:
            m.alloc_managed += e.duration();
            break;
          case EventKind::Free:
            m.free_time += e.duration();
            break;
          case EventKind::Sync:
            m.sync_time += e.duration();
            sync_spans.emplace_back(e.start, e.end);
            break;
          case EventKind::Fault:
            m.fault_time += e.duration();
            ++m.fault_recoveries;
            s.fault_spans.emplace_back(e.start, e.end);
            break;
        }
        if (e.kind != EventKind::Fault
            && (s.tail == kNone || e.end >= s.last_nonfault_end)) {
            s.tail = i;
            s.last_nonfault_end = e.end;
        }
        if (!build_graph)
            continue;

        // DAG edges.  Every edge source has a lower index than its
        // target and is timestamp-consistent, so record order is a
        // topological order.  Fault spans join no chain.
        if (isDeviceSide(e)) {
            const auto st = static_cast<std::size_t>(e.stream);
            if (st >= last_dev.size())
                last_dev.resize(st + 1, kNone);
            if (last_dev[st] != kNone
                && ev[last_dev[st]].end <= e.start)
                s.chain[i] = last_dev[st];
            last_dev[st] = i;
            if (e.kind == EventKind::Kernel) {
                const auto f = launch_of.find(e.correlation);
                if (f != launch_of.end()
                    && ev[f->second].end <= e.start)
                    s.corr[i] = f->second;
            }
        } else if (isHostSerial(e)) {
            if (last_host != kNone
                && ev[last_host].end <= e.start)
                s.chain[i] = last_host;
            if (e.kind == EventKind::Sync) {
                // Join edges: the sync retires only after the device
                // work it waits on.  These are finish-time edges —
                // the predecessor gates e.end, not e.start.
                if (e.stream >= 0) {
                    const auto st =
                        static_cast<std::size_t>(e.stream);
                    if (st < last_dev.size()
                        && last_dev[st] != kNone
                        && ev[last_dev[st]].end <= e.end)
                        s.sync_edges.emplace_back(i, last_dev[st]);
                } else {
                    for (const auto dv : last_dev) {
                        if (dv != kNone && ev[dv].end <= e.end)
                            s.sync_edges.emplace_back(i, dv);
                    }
                }
            }
            last_host = i;
            if (e.kind == EventKind::Launch
                || e.kind == EventKind::GraphLaunch)
                launch_of[e.correlation] = i;
        }
    }
    m.end_to_end = tracer.span();

    // Satellite fix: fault-recovery spans overlapping a Sync window
    // were double-counted in both fault_time and sync_time.  The
    // recovery owns that wall time; subtract the overlap from sync.
    if (!s.fault_spans.empty()) {
        std::sort(s.fault_spans.begin(), s.fault_spans.end());
        std::vector<std::pair<SimTime, SimTime>> merged;
        for (const auto &sp : s.fault_spans) {
            if (!merged.empty() && sp.first <= merged.back().second)
                merged.back().second =
                    std::max(merged.back().second, sp.second);
            else
                merged.push_back(sp);
        }
        s.fault_spans = std::move(merged);
        for (const auto &[a, b] : sync_spans)
            m.sync_time -= overlapWith(a, b, s.fault_spans);
    }
    return s;
}

std::uint64_t
counterValue(const obs::Registry *reg, const std::string &name)
{
    if (reg == nullptr)
        return 0;
    const auto it = reg->entries().find(name);
    if (it == reg->entries().end() || !it->second.counter)
        return 0;
    return it->second.counter->value();
}

} // namespace

std::string_view
pathCategoryName(PathCategory category)
{
    switch (category) {
      case PathCategory::Compute: return "compute";
      case PathCategory::Crypto: return "crypto";
      case PathCategory::Link: return "link";
      case PathCategory::Launch: return "launch";
      case PathCategory::Uvm: return "uvm";
      case PathCategory::Sync: return "sync";
      case PathCategory::Alloc: return "alloc";
      case PathCategory::Fault: return "fault";
      case PathCategory::Other: return "other";
    }
    return "other";
}

std::string_view
bottleneckName(Bottleneck bottleneck)
{
    switch (bottleneck) {
      case Bottleneck::ComputeBound: return "compute-bound";
      case Bottleneck::CryptoBound: return "crypto-bound";
      case Bottleneck::LinkBound: return "link-bound";
      case Bottleneck::LaunchBound: return "launch-bound";
      case Bottleneck::UvmThrash: return "uvm-thrash";
      case Bottleneck::FaultBound: return "fault-bound";
    }
    return "compute-bound";
}

AppMetrics
analyze(const Tracer &tracer)
{
    return scanTrace(tracer, /*build_graph=*/false).metrics;
}

Bottleneck
classifyShares(const std::array<SimTime, kPathCategoryCount> &shares,
               SimTime end_to_end, SimTime uvm_fault_ps)
{
    if (end_to_end <= 0)
        return Bottleneck::ComputeBound;
    // All comparisons are exact integer "share >= N% of end_to_end";
    // SimTime tops out around 10^16 ps (hours), so *100 cannot
    // overflow int64.  Rules fire in priority order.
    const auto atLeast = [&](SimTime part, SimTime percent) {
        return part * 100 >= end_to_end * percent;
    };
    const SimTime crypto = shares[idx(PathCategory::Crypto)];
    const SimTime link = shares[idx(PathCategory::Link)];
    const SimTime uvm = shares[idx(PathCategory::Uvm)];
    if (atLeast(shares[idx(PathCategory::Fault)], 10))
        return Bottleneck::FaultBound;
    if (atLeast(uvm, 20)
        || (atLeast(uvm, 5) && atLeast(uvm_fault_ps, 20)))
        return Bottleneck::UvmThrash;
    if (atLeast(crypto, 15) && crypto >= link)
        return Bottleneck::CryptoBound;
    if (atLeast(link, 15))
        return Bottleneck::LinkBound;
    if (atLeast(shares[idx(PathCategory::Launch)], 30)
        && shares[idx(PathCategory::Launch)]
               > shares[idx(PathCategory::Compute)])
        return Bottleneck::LaunchBound;
    return Bottleneck::ComputeBound;
}

CriticalAnalysis
analyzeCritical(const Tracer &tracer, const obs::Registry *obs)
{
    Scan s = scanTrace(tracer, /*build_graph=*/true);
    CriticalAnalysis out;
    out.metrics = std::move(s.metrics);
    CriticalPath &cp = out.path;
    cp.end_to_end = out.metrics.end_to_end;
    const auto ev = tracer.events();
    const std::size_t n = ev.size();
    cp.slack.assign(n, 0);
    const SimTime uvm_faults =
        static_cast<SimTime>(counterValue(obs,
                                          "gpu.uvm.fault_time_ps"));
    if (n == 0)
        return out;

    if (s.tail == kNone) {
        // Degenerate trace of only fault spans: all recovery.
        cp.shares[idx(PathCategory::Fault)] = cp.end_to_end;
        cp.bottleneck =
            classifyShares(cp.shares, cp.end_to_end, uvm_faults);
        return out;
    }

    // ---- CPM latest-finish pass -> per-event slack ---------------
    // Record order is a topological order (all edge sources have
    // lower indices), so one reverse sweep relaxes every successor
    // before its predecessors are visited.
    std::vector<SimTime> lf(n, s.last_nonfault_end);
    std::size_t se = s.sync_edges.size();
    for (std::uint32_t i2 = static_cast<std::uint32_t>(n); i2-- > 0;) {
        const TraceEvent &e = ev[i2];
        if (e.kind == EventKind::Fault)
            continue;
        const SimTime latest_start = lf[i2] - e.duration();
        if (s.chain[i2] != kNone)
            lf[s.chain[i2]] =
                std::min(lf[s.chain[i2]], latest_start);
        if (s.corr[i2] != kNone)
            lf[s.corr[i2]] = std::min(lf[s.corr[i2]], latest_start);
        while (se > 0 && s.sync_edges[se - 1].first == i2) {
            // Finish-time edge: the waitee may grow by however much
            // the sync's own finish could slip.
            const auto p = s.sync_edges[--se].second;
            lf[p] = std::min(lf[p], ev[p].end + (lf[i2] - e.end));
        }
        cp.slack[i2] = std::max<SimTime>(0, lf[i2] - e.end);
    }

    // ---- crypto/link split of CC copy time -----------------------
    // The trace shows one opaque copy span; the registry knows how
    // busy the crypto engines vs the PCIe wire were.  Split on-path
    // link time by that global ratio, exactly, in integer ps.
    const std::uint64_t crypto_busy =
        counterValue(obs, "sim.timeline.cc_crypto.busy_ps")
        + counterValue(obs, "sim.timeline.cc_gpu_crypto.busy_ps");
    const std::uint64_t link_busy =
        counterValue(obs, "pcie.link.busy_ps_h2d")
        + counterValue(obs, "pcie.link.busy_ps_d2h");
    const std::uint64_t split_den = crypto_busy + link_busy;
    const PathCategory copy_display =
        (split_den > 0 && crypto_busy >= link_busy)
            ? PathCategory::Crypto
            : PathCategory::Link;

    const auto &faults = s.fault_spans;
    const auto addShare = [&](SimTime a, SimTime b, PathCategory c) {
        if (b <= a)
            return;
        SimTime v = b - a;
        if (!faults.empty() && c != PathCategory::Fault) {
            // Recovery spans overlay other events; the overlapped
            // path time belongs to the fault, not the carrier.
            const SimTime f = overlapWith(a, b, faults);
            cp.shares[idx(PathCategory::Fault)] += f;
            v -= f;
        }
        if (c == PathCategory::Link && split_den > 0) {
            const auto cpart = static_cast<SimTime>(
                static_cast<unsigned __int128>(v) * crypto_busy
                / split_den);
            cp.shares[idx(PathCategory::Crypto)] += cpart;
            cp.shares[idx(PathCategory::Link)] += v - cpart;
        } else {
            cp.shares[idx(c)] += v;
        }
    };

    // Gap before an event: what the waiting event was blocked on.
    const auto addGap = [&](SimTime a, SimTime b,
                            const TraceEvent &e) {
        if (b <= a)
            return;
        switch (e.kind) {
          case EventKind::Kernel:
            // KQT: enqueued but not yet dispatched.
            addShare(a, b, PathCategory::Launch);
            break;
          case EventKind::Launch:
          case EventKind::GraphLaunch: {
            // The measured LQT part of the gap is queue
            // back-pressure; anything beyond it is untraced host
            // work between launches.
            const SimTime lqt =
                std::min(b - a, std::max<SimTime>(0, e.queue_wait));
            addShare(b - lqt, b, PathCategory::Launch);
            addShare(a, b - lqt, PathCategory::Other);
            break;
          }
          case EventKind::Sync:
            addShare(a, b, PathCategory::Sync);
            break;
          case EventKind::MemcpyH2D:
          case EventKind::MemcpyD2H:
          case EventKind::MemcpyD2D:
            addShare(a, b, copyCategory(tracer, e));
            break;
          case EventKind::MallocDevice:
          case EventKind::MallocHost:
          case EventKind::MallocManaged:
          case EventKind::Free:
          case EventKind::Fault:
            addShare(a, b, PathCategory::Other);
            break;
        }
    };

    // ---- backward binding walk -----------------------------------
    // From the latest-ending event, repeatedly bind to the candidate
    // predecessor that released it: the latest-finishing one with
    // end <= the current path time; ties break to the higher event
    // index.  The visited segments and gaps telescope over
    // [firstStart, lastEnd] with no overlap, so shares sum exactly.
    std::uint32_t cur = s.tail;
    SimTime cur_t = ev[cur].end;

    // Fault spans may outlast the last real event (or precede the
    // first one, handled at termination).
    addShare(cur_t, tracer.lastEnd(), PathCategory::Fault);

    for (;;) {
        const TraceEvent &e = ev[cur];
        std::uint32_t best = kNone;
        SimTime best_end = std::numeric_limits<SimTime>::min();
        const auto consider = [&](std::uint32_t p) {
            if (p == kNone)
                return;
            const SimTime pe = ev[p].end;
            if (pe > cur_t)
                return;
            if (best == kNone || pe > best_end
                || (pe == best_end && p > best)) {
                best = p;
                best_end = pe;
            }
        };
        consider(s.chain[cur]);
        consider(s.corr[cur]);
        if (e.kind == EventKind::Sync) {
            const auto range = std::equal_range(
                s.sync_edges.begin(), s.sync_edges.end(),
                std::make_pair(cur, std::uint32_t{0}),
                [](const auto &a, const auto &b) {
                    return a.first < b.first;
                });
            for (auto it = range.first; it != range.second; ++it)
                consider(it->second);
        }

        const SimTime seg_begin =
            best == kNone ? e.start : std::max(e.start, best_end);
        cp.segments.push_back({cur, seg_begin, cur_t,
                               eventCategory(tracer, e)
                                       == PathCategory::Link
                                   ? copy_display
                                   : eventCategory(tracer, e)});
        addShare(seg_begin, cur_t, eventCategory(tracer, e));
        cp.on_path_ps += cur_t - seg_begin;

        if (best == kNone) {
            // Head: time before the walk's first event (other
            // streams' ramp-up, or fault spans before t0).
            addShare(tracer.firstStart(), e.start,
                     PathCategory::Other);
            break;
        }
        addGap(best_end, e.start, e);
        cur = best;
        cur_t = best_end;
    }
    // The walk visits strictly decreasing indices; flip to
    // ascending time order for exporters.
    std::reverse(cp.segments.begin(), cp.segments.end());

    SimTime total = 0;
    for (const auto sh : cp.shares)
        total += sh;
    HCC_ASSERT(total == cp.end_to_end,
               "critical-path shares must partition end_to_end");
    cp.bottleneck = classifyShares(cp.shares, cp.end_to_end,
                                   uvm_faults);
    return out;
}

void
publishCriticalPath(const CriticalPath &path, obs::Registry &registry)
{
    registry.counter("critpath.end_to_end_ps")
        .add(static_cast<std::uint64_t>(path.end_to_end));
    registry.counter("critpath.on_path_ps")
        .add(static_cast<std::uint64_t>(path.on_path_ps));
    registry.counter("critpath.events_on_path")
        .add(path.segments.size());
    registry.counter("critpath.bottleneck_code")
        .add(static_cast<std::uint64_t>(path.bottleneck));
    for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
        const auto cat = static_cast<PathCategory>(c);
        registry
            .counter("critpath.share."
                     + std::string(pathCategoryName(cat)) + "_ps")
            .add(static_cast<std::uint64_t>(path.shares[c]));
    }
}

std::string
criticalPathJson(const CriticalPath &path)
{
    std::ostringstream os;
    os << "{\"bottleneck\": \"" << bottleneckName(path.bottleneck)
       << "\", \"end_to_end_ps\": " << path.end_to_end
       << ", \"on_path_ps\": " << path.on_path_ps
       << ", \"events_on_path\": " << path.segments.size()
       << ", \"shares\": {";
    for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
        if (c != 0)
            os << ", ";
        os << '"'
           << pathCategoryName(static_cast<PathCategory>(c))
           << "_ps\": " << path.shares[c];
    }
    os << "}}";
    return os.str();
}

std::string
criticalPathJsonMember(const CriticalPath &path)
{
    return "\"critical_path\": " + criticalPathJson(path);
}

namespace {

std::string
sharePct(SimTime part, SimTime whole)
{
    if (whole <= 0)
        return TextTable::pct(0.0);
    return TextTable::pct(100.0 * static_cast<double>(part)
                          / static_cast<double>(whole));
}

} // namespace

std::string
criticalReport(const CriticalPath &path, const Tracer &tracer,
               int top_n)
{
    const auto ev = tracer.events();
    std::ostringstream os;

    TextTable sum("critical path");
    sum.header({"metric", "value"});
    sum.row({"end-to-end", formatTime(path.end_to_end)});
    sum.row({"on-path (in events)",
             formatTime(path.on_path_ps) + "  ("
                 + sharePct(path.on_path_ps, path.end_to_end) + ")"});
    sum.row({"path segments",
             std::to_string(path.segments.size())});
    sum.row({"bottleneck",
             std::string(bottleneckName(path.bottleneck))});
    sum.print(os);
    os << "\n";

    TextTable shares("critical-path shares");
    shares.header({"category", "time", "share"});
    for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
        if (path.shares[c] == 0)
            continue;
        shares.row({std::string(pathCategoryName(
                        static_cast<PathCategory>(c))),
                    formatTime(path.shares[c]),
                    sharePct(path.shares[c], path.end_to_end)});
    }
    if (shares.rowCount() == 0)
        shares.row({"compute", formatTime(0), sharePct(0, 1)});
    shares.print(os);
    os << "\n";

    // Top on-path contributors, grouped by (kind, label).
    struct Contrib
    {
        SimTime ps = 0;
        std::size_t count = 0;
    };
    std::map<std::pair<EventKind, LabelId>, Contrib> by_label;
    for (const auto &seg : path.segments) {
        const TraceEvent &e = ev[seg.event];
        auto &c = by_label[{e.kind, e.label}];
        c.ps += seg.duration();
        ++c.count;
    }
    std::vector<std::pair<std::pair<EventKind, LabelId>, Contrib>>
        ranked(by_label.begin(), by_label.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.ps != b.second.ps)
                      return a.second.ps > b.second.ps;
                  return a.first < b.first;
              });
    TextTable top("top on-path contributors");
    top.header({"kind", "label", "segments", "time", "share"});
    const auto limit = static_cast<std::size_t>(std::max(top_n, 1));
    for (std::size_t r = 0; r < ranked.size() && r < limit; ++r) {
        const auto &[key, c] = ranked[r];
        std::string label(tracer.labelName(key.second));
        if (label.empty())
            label = "-";
        top.row({std::string(eventKindName(key.first)), label,
                 std::to_string(c.count), formatTime(c.ps),
                 sharePct(c.ps, path.end_to_end)});
    }
    top.print(os);
    os << "\n";

    // Largest slack among device-side work: these are the overlap
    // candidates a PipeLLM-style mitigation could hide.
    std::vector<std::uint32_t> idle;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(path.slack.size()); ++i) {
        const TraceEvent &e = ev[i];
        if (path.slack[i] > 0
            && (e.kind == EventKind::Kernel || isCopy(e.kind)))
            idle.push_back(i);
    }
    std::sort(idle.begin(), idle.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (path.slack[a] != path.slack[b])
                      return path.slack[a] > path.slack[b];
                  return a < b;
              });
    if (idle.size() > limit)
        idle.resize(limit);
    TextTable slack("largest slack (overlap candidates)");
    slack.header({"kind", "label", "start", "duration", "slack"});
    for (const auto i : idle) {
        const TraceEvent &e = ev[i];
        std::string label(tracer.name(e));
        if (label.empty())
            label = "-";
        slack.row({std::string(eventKindName(e.kind)), label,
                   formatTime(e.start), formatTime(e.duration()),
                   formatTime(path.slack[i])});
    }
    if (slack.rowCount() > 0) {
        slack.print(os);
        os << "\n";
    }
    return os.str();
}

void
writeCriticalJson(const CriticalPath &path, const Tracer &tracer,
                  std::ostream &os)
{
    const auto ev = tracer.events();
    os << "{\n  \"hccsim_critical_version\": 1,\n  "
       << criticalPathJsonMember(path) << ",\n  \"segments\": [";
    bool first = true;
    for (const auto &seg : path.segments) {
        const TraceEvent &e = ev[seg.event];
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"event\": " << seg.event << ", \"kind\": \""
           << eventKindName(e.kind) << "\", \"label\": \""
           << tracer.name(e) << "\", \"category\": \""
           << pathCategoryName(seg.category)
           << "\", \"begin_ps\": " << seg.begin
           << ", \"end_ps\": " << seg.end << ", \"slack_ps\": "
           << (seg.event < path.slack.size()
                   ? path.slack[seg.event]
                   : 0)
           << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace hcc::trace
