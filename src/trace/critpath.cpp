/**
 * @file
 * Critical-path engine: shared trace scan, longest-path walk, slack,
 * bottleneck classifier and reporters.  See critpath.hpp for the
 * model; docs/CRITICAL_PATH.md for the edge rules and thresholds.
 */

#include "trace/critpath.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/log.hpp"
#include "common/table.hpp"
#include "obs/report.hpp"

namespace hcc::trace {
namespace {

constexpr std::uint32_t kNone = 0xffffffffu;

std::size_t
idx(PathCategory c)
{
    return static_cast<std::size_t>(c);
}

/**
 * Host-serialized events: the calling thread cannot issue the next
 * API call before these return.  Blocking copies (stream < 0) ride
 * the host; async copies and kernels live on device chains instead.
 */
bool
isHostSerial(const TraceEvent &e)
{
    switch (e.kind) {
      case EventKind::Launch:
      case EventKind::GraphLaunch:
      case EventKind::MallocDevice:
      case EventKind::MallocHost:
      case EventKind::MallocManaged:
      case EventKind::Free:
      case EventKind::Sync:
        return true;
      case EventKind::MemcpyH2D:
      case EventKind::MemcpyD2H:
      case EventKind::MemcpyD2D:
        return e.stream < 0;
      case EventKind::Kernel:
      case EventKind::Fault:
        return false;
    }
    return false;
}

bool
isDeviceSide(const TraceEvent &e)
{
    switch (e.kind) {
      case EventKind::Kernel:
        return true;
      case EventKind::MemcpyH2D:
      case EventKind::MemcpyD2H:
      case EventKind::MemcpyD2D:
        return e.stream >= 0;
      case EventKind::Launch:
      case EventKind::GraphLaunch:
      case EventKind::MallocDevice:
      case EventKind::MallocHost:
      case EventKind::MallocManaged:
      case EventKind::Free:
      case EventKind::Sync:
      case EventKind::Fault:
        return false;
    }
    return false;
}

bool
isCopy(EventKind k)
{
    return k == EventKind::MemcpyH2D || k == EventKind::MemcpyD2H
           || k == EventKind::MemcpyD2D;
}

/** Managed/prefetch traffic counts as UVM, not link. */
bool
isUvmCopy(const Tracer &t, const TraceEvent &e)
{
    if (e.encrypted_paging)
        return true;
    const auto name = t.name(e);
    return name == "memPrefetch" || name == "memcpy-managed";
}

PathCategory
copyCategory(const Tracer &t, const TraceEvent &e)
{
    if (isUvmCopy(t, e))
        return PathCategory::Uvm;
    if (e.kind == EventKind::MemcpyD2D)
        return PathCategory::Compute; // device-local blit
    return PathCategory::Link;
}

/** Category charged for the on-path slice of an event. */
PathCategory
eventCategory(const Tracer &t, const TraceEvent &e)
{
    switch (e.kind) {
      case EventKind::Kernel:
        return PathCategory::Compute;
      case EventKind::MemcpyH2D:
      case EventKind::MemcpyD2H:
      case EventKind::MemcpyD2D:
        return copyCategory(t, e);
      case EventKind::Launch:
      case EventKind::GraphLaunch:
        return PathCategory::Launch;
      case EventKind::MallocDevice:
      case EventKind::MallocHost:
      case EventKind::MallocManaged:
      case EventKind::Free:
        return PathCategory::Alloc;
      case EventKind::Sync:
        return PathCategory::Sync;
      case EventKind::Fault:
        return PathCategory::Fault;
    }
    return PathCategory::Other;
}

/**
 * The single pass shared by analyze(), analyzeCritical() and
 * ForkAnalyzer.  Resumable: scanRange() carries every piece of loop
 * state in the struct, so the fork engine scans the shared prefix
 * once, copies the state per cell and scans only the suffix.
 */
struct Scan
{
    AppMetrics metrics;
    /** Program-order predecessor (host chain or stream chain). */
    std::vector<std::uint32_t> chain;
    /** Kernel -> its Launch/GraphLaunch (via correlation). */
    std::vector<std::uint32_t> corr;
    /** (sync event, waited-on device event), ascending sync index. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> sync_edges;
    /** Merged fault-recovery coverage, sorted and disjoint (raw and
     *  unmerged until finalizeScan()). */
    std::vector<std::pair<SimTime, SimTime>> fault_spans;
    /** Walk start: latest-ending non-fault event (tie: higher idx). */
    std::uint32_t tail = kNone;
    SimTime last_nonfault_end = 0;

    // Mid-scan carry state (loop locals of the classic one-shot
    // scan, kept here so a later scanRange() call can resume).
    /** Sync windows, for the fault-overlap fixup in finalizeScan. */
    std::vector<std::pair<SimTime, SimTime>> sync_spans;
    std::uint32_t last_host = kNone;
    std::vector<std::uint32_t> last_dev; // per stream id
    // Correlation -> launch index.  Ids are handed out sequentially
    // by the tracer (one per recorded event at most), so a flat
    // array indexed by id covers every in-range correlation without
    // hashing; the map only backs the (never seen in practice) case
    // of an id beyond the event count.
    std::vector<std::uint32_t> launch_flat;
    std::unordered_map<std::uint64_t, std::uint32_t> launch_of;
};

/** Scan events [from, to), resuming from @p s's carry state. */
void
scanRange(Scan &s, const Tracer &tracer, std::size_t from,
          std::size_t to, bool build_graph)
{
    AppMetrics &m = s.metrics;
    const auto ev = tracer.events();
    if (build_graph) {
        s.chain.resize(to, kNone);
        s.corr.resize(to, kNone);
        s.launch_flat.resize(to + 2, kNone);
    }
    const auto launchLookup =
        [&](std::uint64_t c) -> std::uint32_t {
        if (c < s.launch_flat.size())
            return s.launch_flat[c];
        const auto f = s.launch_of.find(c);
        return f == s.launch_of.end() ? kNone : f->second;
    };
    const auto launchStore = [&](std::uint64_t c, std::uint32_t i) {
        if (c < s.launch_flat.size())
            s.launch_flat[c] = i;
        else
            s.launch_of[c] = i;
    };
    auto &sync_spans = s.sync_spans;
    auto &last_host = s.last_host;
    auto &last_dev = s.last_dev;

    for (std::size_t pos = from; pos < to; ++pos) {
        const auto i = static_cast<std::uint32_t>(pos);
        const TraceEvent &e = ev[pos];
        const auto d = static_cast<double>(e.duration());
        switch (e.kind) {
          case EventKind::Launch:
          case EventKind::GraphLaunch:
            m.klo.add(d);
            m.lqt.add(static_cast<double>(e.queue_wait));
            ++m.launches;
            break;
          case EventKind::Kernel:
            m.kqt.add(static_cast<double>(e.queue_wait));
            m.ket.add(d);
            ++m.kernels;
            break;
          case EventKind::MemcpyH2D:
            m.copy_h2d += e.duration();
            break;
          case EventKind::MemcpyD2H:
            m.copy_d2h += e.duration();
            break;
          case EventKind::MemcpyD2D:
            m.copy_d2d += e.duration();
            break;
          case EventKind::MallocDevice:
            m.alloc_device += e.duration();
            break;
          case EventKind::MallocHost:
            m.alloc_host += e.duration();
            break;
          case EventKind::MallocManaged:
            m.alloc_managed += e.duration();
            break;
          case EventKind::Free:
            m.free_time += e.duration();
            break;
          case EventKind::Sync:
            m.sync_time += e.duration();
            sync_spans.emplace_back(e.start, e.end);
            break;
          case EventKind::Fault:
            m.fault_time += e.duration();
            ++m.fault_recoveries;
            s.fault_spans.emplace_back(e.start, e.end);
            break;
        }
        if (e.kind != EventKind::Fault
            && (s.tail == kNone || e.end >= s.last_nonfault_end)) {
            s.tail = i;
            s.last_nonfault_end = e.end;
        }
        if (!build_graph)
            continue;

        // DAG edges.  Every edge source has a lower index than its
        // target and is timestamp-consistent, so record order is a
        // topological order.  Fault spans join no chain.
        if (isDeviceSide(e)) {
            const auto st = static_cast<std::size_t>(e.stream);
            if (st >= last_dev.size())
                last_dev.resize(st + 1, kNone);
            if (last_dev[st] != kNone
                && ev[last_dev[st]].end <= e.start)
                s.chain[i] = last_dev[st];
            last_dev[st] = i;
            if (e.kind == EventKind::Kernel) {
                const auto f = launchLookup(e.correlation);
                if (f != kNone && ev[f].end <= e.start)
                    s.corr[i] = f;
            }
        } else if (isHostSerial(e)) {
            if (last_host != kNone
                && ev[last_host].end <= e.start)
                s.chain[i] = last_host;
            if (e.kind == EventKind::Sync) {
                // Join edges: the sync retires only after the device
                // work it waits on.  These are finish-time edges —
                // the predecessor gates e.end, not e.start.
                if (e.stream >= 0) {
                    const auto st =
                        static_cast<std::size_t>(e.stream);
                    if (st < last_dev.size()
                        && last_dev[st] != kNone
                        && ev[last_dev[st]].end <= e.end)
                        s.sync_edges.emplace_back(i, last_dev[st]);
                } else {
                    for (const auto dv : last_dev) {
                        if (dv != kNone && ev[dv].end <= e.end)
                            s.sync_edges.emplace_back(i, dv);
                    }
                }
            }
            last_host = i;
            if (e.kind == EventKind::Launch
                || e.kind == EventKind::GraphLaunch)
                launchStore(e.correlation, i);
        }
    }
}

/** End-of-scan fixups (once, after the last scanRange call). */
void
finalizeScan(Scan &s, const Tracer &tracer)
{
    AppMetrics &m = s.metrics;
    m.end_to_end = tracer.span();

    // Satellite fix: fault-recovery spans overlapping a Sync window
    // were double-counted in both fault_time and sync_time.  The
    // recovery owns that wall time; subtract the overlap from sync.
    if (!s.fault_spans.empty()) {
        std::sort(s.fault_spans.begin(), s.fault_spans.end());
        std::vector<std::pair<SimTime, SimTime>> merged;
        for (const auto &sp : s.fault_spans) {
            if (!merged.empty() && sp.first <= merged.back().second)
                merged.back().second =
                    std::max(merged.back().second, sp.second);
            else
                merged.push_back(sp);
        }
        s.fault_spans = std::move(merged);
        for (const auto &[a, b] : s.sync_spans)
            m.sync_time -= overlapWith(a, b, s.fault_spans);
    }
}

Scan
scanTrace(const Tracer &tracer, bool build_graph)
{
    Scan s;
    scanRange(s, tracer, 0, tracer.size(), build_graph);
    finalizeScan(s, tracer);
    return s;
}

std::uint64_t
counterValue(const obs::Registry *reg, const std::string &name)
{
    if (reg == nullptr)
        return 0;
    const auto it = reg->entries().find(name);
    if (it == reg->entries().end() || !it->second.counter)
        return 0;
    return it->second.counter->value();
}

/**
 * Crypto vs link busy time for the CC copy split.  Crypto is the CPU
 * seal plus GPU open engines, minus the seal time the pipelined
 * overlap modes hid behind the wire (tee.channel.pipeline.
 * hidden_crypto_ps — overlapped crypto isn't a serial cost, so
 * attributing it to the Crypto share would double-charge the copy).
 * Link is the PCIe occupancy plus the bounce-copy stage, which in
 * the pipelined modes occupies its own timeline on the datapath
 * side.  All counters read 0 when absent, so OverlapMode::None runs
 * see exactly the historical split.
 */
std::pair<std::uint64_t, std::uint64_t>
ccCopySplitBusy(const obs::Registry *obs)
{
    std::uint64_t crypto =
        counterValue(obs, "sim.timeline.cc_crypto.busy_ps")
        + counterValue(obs, "sim.timeline.cc_gpu_crypto.busy_ps");
    const std::uint64_t hidden = counterValue(
        obs, "tee.channel.pipeline.hidden_crypto_ps");
    crypto -= std::min(crypto, hidden);
    const std::uint64_t link =
        counterValue(obs, "pcie.link.busy_ps_h2d")
        + counterValue(obs, "pcie.link.busy_ps_d2h")
        + counterValue(obs, "sim.timeline.cc_stage.busy_ps");
    return {crypto, link};
}

/**
 * The backward binding walk shared by analyzeCritical() and
 * ForkAnalyzer: from @p start_cur, repeatedly bind to the candidate
 * predecessor that released the current event (latest finishing end
 * <= the current path time; ties to the higher index).  The visited
 * segments and gaps telescope over [firstStart, lastEnd] with no
 * overlap, so the emitted charges sum exactly to the span.
 *
 * Hooks (all charging goes through them):
 *   segment(event, begin, end, raw_cat) — an on-path slice; the hook
 *       charges it (walker never does).  Called even for zero-length
 *       slices: they count as path events.
 *   share(a, b, cat) — a gap or head charge.
 *   handoff(best) -> bool — called after the gap to @p best has been
 *       charged; return true to stop the walk and let the caller
 *       account for everything from @p best down (memoized replay).
 */
template <typename SegmentFn, typename ShareFn, typename HandoffFn>
void
walkCritical(const Tracer &tracer, const Scan &s,
             std::uint32_t start_cur, SegmentFn &&segment,
             ShareFn &&share, HandoffFn &&handoff)
{
    const auto ev = tracer.events();
    std::uint32_t cur = start_cur;
    SimTime cur_t = ev[cur].end;
    for (;;) {
        const TraceEvent &e = ev[cur];
        std::uint32_t best = kNone;
        SimTime best_end = std::numeric_limits<SimTime>::min();
        const auto consider = [&](std::uint32_t p) {
            if (p == kNone)
                return;
            const SimTime pe = ev[p].end;
            if (pe > cur_t)
                return;
            if (best == kNone || pe > best_end
                || (pe == best_end && p > best)) {
                best = p;
                best_end = pe;
            }
        };
        consider(s.chain[cur]);
        consider(s.corr[cur]);
        if (e.kind == EventKind::Sync) {
            const auto range = std::equal_range(
                s.sync_edges.begin(), s.sync_edges.end(),
                std::make_pair(cur, std::uint32_t{0}),
                [](const auto &a, const auto &b) {
                    return a.first < b.first;
                });
            for (auto it = range.first; it != range.second; ++it)
                consider(it->second);
        }

        const SimTime seg_begin =
            best == kNone ? e.start : std::max(e.start, best_end);
        segment(cur, seg_begin, cur_t, eventCategory(tracer, e));

        if (best == kNone) {
            // Head: time before the walk's first event (other
            // streams' ramp-up, or fault spans before t0).
            share(tracer.firstStart(), e.start, PathCategory::Other);
            return;
        }

        // Gap before the event: what the waiting event was blocked
        // on.
        const SimTime a = best_end;
        const SimTime b = e.start;
        if (b > a) {
            switch (e.kind) {
              case EventKind::Kernel:
                // KQT: enqueued but not yet dispatched.
                share(a, b, PathCategory::Launch);
                break;
              case EventKind::Launch:
              case EventKind::GraphLaunch: {
                // The measured LQT part of the gap is queue
                // back-pressure; anything beyond it is untraced host
                // work between launches.
                const SimTime lqt = std::min(
                    b - a, std::max<SimTime>(0, e.queue_wait));
                share(b - lqt, b, PathCategory::Launch);
                share(a, b - lqt, PathCategory::Other);
                break;
              }
              case EventKind::Sync:
                share(a, b, PathCategory::Sync);
                break;
              case EventKind::MemcpyH2D:
              case EventKind::MemcpyD2H:
              case EventKind::MemcpyD2D:
                share(a, b, copyCategory(tracer, e));
                break;
              case EventKind::MallocDevice:
              case EventKind::MallocHost:
              case EventKind::MallocManaged:
              case EventKind::Free:
              case EventKind::Fault:
                share(a, b, PathCategory::Other);
                break;
            }
        }
        if (handoff(best))
            return;
        cur = best;
        cur_t = best_end;
    }
}

} // namespace

std::string_view
pathCategoryName(PathCategory category)
{
    switch (category) {
      case PathCategory::Compute: return "compute";
      case PathCategory::Crypto: return "crypto";
      case PathCategory::Link: return "link";
      case PathCategory::Launch: return "launch";
      case PathCategory::Uvm: return "uvm";
      case PathCategory::Sync: return "sync";
      case PathCategory::Alloc: return "alloc";
      case PathCategory::Fault: return "fault";
      case PathCategory::Other: return "other";
    }
    return "other";
}

std::string_view
bottleneckName(Bottleneck bottleneck)
{
    switch (bottleneck) {
      case Bottleneck::ComputeBound: return "compute-bound";
      case Bottleneck::CryptoBound: return "crypto-bound";
      case Bottleneck::LinkBound: return "link-bound";
      case Bottleneck::LaunchBound: return "launch-bound";
      case Bottleneck::UvmThrash: return "uvm-thrash";
      case Bottleneck::FaultBound: return "fault-bound";
    }
    return "compute-bound";
}

AppMetrics
analyze(const Tracer &tracer)
{
    return scanTrace(tracer, /*build_graph=*/false).metrics;
}

Bottleneck
classifyShares(const std::array<SimTime, kPathCategoryCount> &shares,
               SimTime end_to_end, SimTime uvm_fault_ps)
{
    if (end_to_end <= 0)
        return Bottleneck::ComputeBound;
    // All comparisons are exact integer "share >= N% of end_to_end";
    // SimTime tops out around 10^16 ps (hours), so *100 cannot
    // overflow int64.  Rules fire in priority order.
    const auto atLeast = [&](SimTime part, SimTime percent) {
        return part * 100 >= end_to_end * percent;
    };
    const SimTime crypto = shares[idx(PathCategory::Crypto)];
    const SimTime link = shares[idx(PathCategory::Link)];
    const SimTime uvm = shares[idx(PathCategory::Uvm)];
    if (atLeast(shares[idx(PathCategory::Fault)], 10))
        return Bottleneck::FaultBound;
    if (atLeast(uvm, 20)
        || (atLeast(uvm, 5) && atLeast(uvm_fault_ps, 20)))
        return Bottleneck::UvmThrash;
    if (atLeast(crypto, 15) && crypto >= link)
        return Bottleneck::CryptoBound;
    if (atLeast(link, 15))
        return Bottleneck::LinkBound;
    if (atLeast(shares[idx(PathCategory::Launch)], 30)
        && shares[idx(PathCategory::Launch)]
               > shares[idx(PathCategory::Compute)])
        return Bottleneck::LaunchBound;
    return Bottleneck::ComputeBound;
}

CriticalAnalysis
analyzeCritical(const Tracer &tracer, const obs::Registry *obs,
                bool with_slack)
{
    Scan s = scanTrace(tracer, /*build_graph=*/true);
    CriticalAnalysis out;
    out.metrics = std::move(s.metrics);
    CriticalPath &cp = out.path;
    cp.end_to_end = out.metrics.end_to_end;
    const auto ev = tracer.events();
    const std::size_t n = ev.size();
    if (with_slack)
        cp.slack.assign(n, 0);
    const SimTime uvm_faults =
        static_cast<SimTime>(counterValue(obs,
                                          "gpu.uvm.fault_time_ps"));
    if (n == 0)
        return out;

    if (s.tail == kNone) {
        // Degenerate trace of only fault spans: all recovery.
        cp.shares[idx(PathCategory::Fault)] = cp.end_to_end;
        cp.bottleneck =
            classifyShares(cp.shares, cp.end_to_end, uvm_faults);
        return out;
    }

    // ---- CPM latest-finish pass -> per-event slack ---------------
    // Record order is a topological order (all edge sources have
    // lower indices), so one reverse sweep relaxes every successor
    // before its predecessors are visited.  The binding walk below
    // never reads lf/slack, so bulk callers skip this pass.
    if (with_slack) {
        std::vector<SimTime> lf(n, s.last_nonfault_end);
        std::size_t se = s.sync_edges.size();
        for (std::uint32_t i2 = static_cast<std::uint32_t>(n);
             i2-- > 0;) {
            const TraceEvent &e = ev[i2];
            if (e.kind == EventKind::Fault)
                continue;
            const SimTime latest_start = lf[i2] - e.duration();
            if (s.chain[i2] != kNone)
                lf[s.chain[i2]] =
                    std::min(lf[s.chain[i2]], latest_start);
            if (s.corr[i2] != kNone)
                lf[s.corr[i2]] =
                    std::min(lf[s.corr[i2]], latest_start);
            while (se > 0 && s.sync_edges[se - 1].first == i2) {
                // Finish-time edge: the waitee may grow by however
                // much the sync's own finish could slip.
                const auto p = s.sync_edges[--se].second;
                lf[p] = std::min(lf[p], ev[p].end + (lf[i2] - e.end));
            }
            cp.slack[i2] = std::max<SimTime>(0, lf[i2] - e.end);
        }
    }

    // ---- crypto/link split of CC copy time -----------------------
    // The trace shows one opaque copy span; the registry knows how
    // busy the crypto engines vs the PCIe wire were.  Split on-path
    // link time by that global ratio, exactly, in integer ps
    // (overlap-hidden crypto is deducted — see ccCopySplitBusy).
    const auto [crypto_busy, link_busy] = ccCopySplitBusy(obs);
    const std::uint64_t split_den = crypto_busy + link_busy;
    const PathCategory copy_display =
        (split_den > 0 && crypto_busy >= link_busy)
            ? PathCategory::Crypto
            : PathCategory::Link;

    const auto &faults = s.fault_spans;
    const auto addShare = [&](SimTime a, SimTime b, PathCategory c) {
        if (b <= a)
            return;
        SimTime v = b - a;
        if (!faults.empty() && c != PathCategory::Fault) {
            // Recovery spans overlay other events; the overlapped
            // path time belongs to the fault, not the carrier.
            const SimTime f = overlapWith(a, b, faults);
            cp.shares[idx(PathCategory::Fault)] += f;
            v -= f;
        }
        if (c == PathCategory::Link && split_den > 0) {
            const auto cpart = static_cast<SimTime>(
                static_cast<unsigned __int128>(v) * crypto_busy
                / split_den);
            cp.shares[idx(PathCategory::Crypto)] += cpart;
            cp.shares[idx(PathCategory::Link)] += v - cpart;
        } else {
            cp.shares[idx(c)] += v;
        }
    };

    // ---- backward binding walk -----------------------------------
    // Fault spans may outlast the last real event (or precede the
    // first one, handled at the walker's head charge).
    addShare(ev[s.tail].end, tracer.lastEnd(), PathCategory::Fault);

    walkCritical(
        tracer, s, s.tail,
        [&](std::uint32_t e_idx, SimTime a, SimTime b,
            PathCategory raw) {
            cp.segments.push_back(
                {e_idx, a, b,
                 raw == PathCategory::Link ? copy_display : raw});
            addShare(a, b, raw);
            cp.on_path_ps += b - a;
        },
        addShare, [](std::uint32_t) { return false; });
    cp.on_path_events = cp.segments.size();
    // The walk visits strictly decreasing indices; flip to
    // ascending time order for exporters.
    std::reverse(cp.segments.begin(), cp.segments.end());

    SimTime total = 0;
    for (const auto sh : cp.shares)
        total += sh;
    HCC_ASSERT(total == cp.end_to_end,
               "critical-path shares must partition end_to_end");
    cp.bottleneck = classifyShares(cp.shares, cp.end_to_end,
                                   uvm_faults);
    return out;
}

// ---- ForkAnalyzer ------------------------------------------------

namespace {

/**
 * Memoized replay of the prefix portion of the walk, keyed by the
 * event where the walk crossed into the prefix.  The walk below an
 * entry event is a pure function of the prefix graph (all edges
 * point to lower indices), so it is recorded once; only the charges
 * depend on the cell (fault overlap, crypto/link split) and are
 * reapplied from the records.
 */
struct PrefixWalk
{
    /** One recorded share charge (post gap-split, pre fault/link). */
    struct Rec
    {
        SimTime a = 0;
        SimTime b = 0;
        PathCategory cat = PathCategory::Other;
    };
    SimTime on_path = 0;       //!< sum of on-path slice lengths
    std::size_t events = 0;    //!< number of slices (incl. empty)
    /** Per-category sums of every non-Link record — the fast path
     *  when no cell fault span reaches back into the prefix. */
    std::array<SimTime, kPathCategoryCount> sums{};
    /** Link records always replay: the crypto/link busy split uses
     *  the cell's final counters. */
    std::vector<Rec> link;
    /** Every record, ascending in time (the walk emits them
     *  tail-to-head; build reverses once).  The records partition
     *  [firstStart, entry end] contiguously, so ends are sorted and
     *  fault overlap localizes to a binary-searchable index range. */
    std::vector<Rec> all;
    SimTime max_end = 0;       //!< latest end over all records
};

} // namespace

struct ForkAnalyzer::Impl
{
    std::size_t n_prefix = 0;
    Scan base;
    /** Per-cell working copy of `base`.  Copy-assigned (not
     *  constructed) every analyze() call so its vectors keep their
     *  full-trace capacity: after the first cell, extending the
     *  prefix state is pure memcpy into warm pages — no allocation,
     *  no first-touch page faults. */
    Scan scratch;
    std::unordered_map<std::uint32_t, PrefixWalk> walks;

    const PrefixWalk &
    walkFrom(const Tracer &tracer, std::uint32_t entry)
    {
        auto it = walks.find(entry);
        if (it != walks.end())
            return it->second;
        PrefixWalk w;
        const auto record = [&](SimTime a, SimTime b,
                                PathCategory cat) {
            if (b <= a)
                return;
            w.all.push_back({a, b, cat});
            w.max_end = std::max(w.max_end, b);
            if (cat == PathCategory::Link)
                w.link.push_back({a, b, cat});
            else
                w.sums[idx(cat)] += b - a;
        };
        // Prefix events and their edges are identical in every
        // cell's tracer, so recording against whichever cell asked
        // first is sound.
        walkCritical(
            tracer, base, entry,
            [&](std::uint32_t, SimTime a, SimTime b,
                PathCategory raw) {
                ++w.events;
                w.on_path += b - a;
                record(a, b, raw);
            },
            record, [](std::uint32_t) { return false; });
        std::reverse(w.all.begin(), w.all.end());
        return walks.emplace(entry, std::move(w)).first->second;
    }
};

ForkAnalyzer::ForkAnalyzer() = default;
ForkAnalyzer::~ForkAnalyzer() = default;
ForkAnalyzer::ForkAnalyzer(ForkAnalyzer &&) noexcept = default;
ForkAnalyzer &
ForkAnalyzer::operator=(ForkAnalyzer &&) noexcept = default;

bool
ForkAnalyzer::captured() const
{
    return impl_ != nullptr;
}

ForkAnalyzer
ForkAnalyzer::clone() const
{
    HCC_ASSERT(impl_ != nullptr,
               "ForkAnalyzer cloned before capture");
    ForkAnalyzer out;
    out.impl_ = std::make_unique<Impl>(*impl_);
    return out;
}

void
ForkAnalyzer::extendCapture(const Tracer &tracer)
{
    HCC_ASSERT(impl_ != nullptr,
               "ForkAnalyzer extended before capture");
    HCC_ASSERT(tracer.size() >= impl_->n_prefix,
               "fork trace shorter than its captured prefix");
    scanRange(impl_->base, tracer, impl_->n_prefix, tracer.size(),
              /*build_graph=*/true);
    impl_->n_prefix = tracer.size();
}

void
ForkAnalyzer::capture(const Tracer &prefix_tracer)
{
    impl_ = std::make_unique<Impl>();
    impl_->n_prefix = prefix_tracer.size();
    // Unfinalized on purpose: the fault merge and the sync-overlap
    // fixup run once per cell over the complete span sets, exactly
    // like the one-shot scan would.
    scanRange(impl_->base, prefix_tracer, 0, impl_->n_prefix,
              /*build_graph=*/true);
}

CriticalAnalysis
ForkAnalyzer::analyze(const Tracer &tracer, const obs::Registry *obs)
{
    HCC_ASSERT(impl_ != nullptr, "ForkAnalyzer used before capture");
    Impl &im = *impl_;
    const std::size_t n = tracer.size();
    HCC_ASSERT(n >= im.n_prefix,
               "fork trace shorter than its captured prefix");

    Scan &s = im.scratch;
    s = im.base;
    scanRange(s, tracer, im.n_prefix, n, /*build_graph=*/true);
    finalizeScan(s, tracer);

    CriticalAnalysis out;
    // Light metrics: copy the scalars only, with the four sample
    // vectors swapped aside so the struct copy is cheap and the
    // scratch keeps its warm buffers for the next cell, then compact
    // each set to its insertion-order total (bit-identical sums to
    // compacting a cold run's full set — see compactSampleMetrics).
    {
        AppMetrics &sm = s.metrics;
        SampleSet klo, lqt, kqt, ket;
        std::swap(klo, sm.klo);
        std::swap(lqt, sm.lqt);
        std::swap(kqt, sm.kqt);
        std::swap(ket, sm.ket);
        out.metrics = sm;
        std::swap(klo, sm.klo);
        std::swap(lqt, sm.lqt);
        std::swap(kqt, sm.kqt);
        std::swap(ket, sm.ket);
        const auto compact = [](const SampleSet &src, SampleSet &dst) {
            if (!src.empty())
                dst.add(src.sum());
        };
        compact(sm.klo, out.metrics.klo);
        compact(sm.lqt, out.metrics.lqt);
        compact(sm.kqt, out.metrics.kqt);
        compact(sm.ket, out.metrics.ket);
    }
    CriticalPath &cp = out.path;
    cp.end_to_end = out.metrics.end_to_end;
    const SimTime uvm_faults =
        static_cast<SimTime>(counterValue(obs,
                                          "gpu.uvm.fault_time_ps"));
    if (n == 0)
        return out;
    if (s.tail == kNone) {
        cp.shares[idx(PathCategory::Fault)] = cp.end_to_end;
        cp.bottleneck =
            classifyShares(cp.shares, cp.end_to_end, uvm_faults);
        return out;
    }

    const auto [crypto_busy, link_busy] = ccCopySplitBusy(obs);
    const std::uint64_t split_den = crypto_busy + link_busy;

    const auto &faults = s.fault_spans;
    const auto addShare = [&](SimTime a, SimTime b, PathCategory c) {
        if (b <= a)
            return;
        SimTime v = b - a;
        if (!faults.empty() && c != PathCategory::Fault) {
            const SimTime f = overlapWith(a, b, faults);
            cp.shares[idx(PathCategory::Fault)] += f;
            v -= f;
        }
        if (c == PathCategory::Link && split_den > 0) {
            const auto cpart = static_cast<SimTime>(
                static_cast<unsigned __int128>(v) * crypto_busy
                / split_den);
            cp.shares[idx(PathCategory::Crypto)] += cpart;
            cp.shares[idx(PathCategory::Link)] += v - cpart;
        } else {
            cp.shares[idx(c)] += v;
        }
    };

    const auto applyPrefix = [&](std::uint32_t entry) {
        const PrefixWalk &w = im.walkFrom(tracer, entry);
        cp.on_path_ps += w.on_path;
        cp.on_path_events += w.events;
        const auto splitLink = [&](SimTime v) {
            return split_den > 0
                ? static_cast<SimTime>(
                      static_cast<unsigned __int128>(v) * crypto_busy
                      / split_den)
                : SimTime{0};
        };
        // Charge every record as if no fault span touched it: plain
        // per-category sums, plus the cell-ratio crypto/link split
        // of each Link record (the per-record floor division must be
        // replayed — it does not distribute over the sum).
        for (std::size_t c = 0; c < kPathCategoryCount; ++c)
            cp.shares[c] += w.sums[c];
        for (const auto &r : w.link) {
            const SimTime v = r.b - r.a;
            if (split_den > 0) {
                const SimTime cpart = splitLink(v);
                cp.shares[idx(PathCategory::Crypto)] += cpart;
                cp.shares[idx(PathCategory::Link)] += v - cpart;
            } else {
                cp.shares[idx(PathCategory::Link)] += v;
            }
        }
        // Fault spans are armed after the fork point, so they reach
        // back into the walk's interval only through in-flight
        // device events (the entry event's slice can end deep in the
        // suffix).  Re-attribute exactly for the few records the
        // spans actually touch — the records ascend in time with
        // sorted ends, so each span binary-searches its first record
        // and a shared cursor keeps the whole sweep linear.
        if (faults.empty() || faults.front().first >= w.max_end)
            return;
        const auto adjust = [&](const PrefixWalk::Rec &r) {
            if (r.cat == PathCategory::Fault)
                return; // charged in full either way
            const SimTime f = overlapWith(r.a, r.b, faults);
            if (f == 0)
                return;
            cp.shares[idx(PathCategory::Fault)] += f;
            if (r.cat == PathCategory::Link && split_den > 0) {
                const SimTime v = r.b - r.a;
                const SimTime cpart_full = splitLink(v);
                const SimTime cpart = splitLink(v - f);
                cp.shares[idx(PathCategory::Crypto)] +=
                    cpart - cpart_full;
                cp.shares[idx(PathCategory::Link)] +=
                    (v - f - cpart) - (v - cpart_full);
            } else {
                cp.shares[idx(r.cat)] -= f;
            }
        };
        std::size_t ri = 0;
        std::size_t last = w.all.size(); // no record processed yet
        for (const auto &[fa, fb] : faults) {
            if (fa >= w.max_end)
                break;
            if (ri >= w.all.size())
                break;
            if (w.all[ri].b <= fa) {
                const auto it = std::upper_bound(
                    w.all.begin()
                        + static_cast<std::ptrdiff_t>(ri),
                    w.all.end(), fa,
                    [](SimTime v, const PrefixWalk::Rec &r) {
                        return v < r.b;
                    });
                ri = static_cast<std::size_t>(it - w.all.begin());
            }
            while (ri < w.all.size() && w.all[ri].a < fb) {
                if (ri != last) {
                    adjust(w.all[ri]);
                    last = ri;
                }
                if (w.all[ri].b <= fb)
                    ++ri;
                else
                    break;
            }
        }
    };

    const auto ev = tracer.events();
    addShare(ev[s.tail].end, tracer.lastEnd(), PathCategory::Fault);
    if (s.tail < im.n_prefix) {
        // Degenerate suffix (fraction 1.0): the whole walk is the
        // memoized prefix replay.
        applyPrefix(s.tail);
    } else {
        walkCritical(
            tracer, s, s.tail,
            [&](std::uint32_t, SimTime a, SimTime b,
                PathCategory raw) {
                ++cp.on_path_events;
                cp.on_path_ps += b - a;
                addShare(a, b, raw);
            },
            addShare,
            [&](std::uint32_t best) {
                if (best >= im.n_prefix)
                    return false;
                applyPrefix(best);
                return true;
            });
    }

    SimTime total = 0;
    for (const auto sh : cp.shares)
        total += sh;
    HCC_ASSERT(total == cp.end_to_end,
               "fork-analyzed shares must partition end_to_end");
    cp.bottleneck = classifyShares(cp.shares, cp.end_to_end,
                                   uvm_faults);
    return out;
}

void
publishCriticalPath(const CriticalPath &path, obs::Registry &registry)
{
    registry.counter("critpath.end_to_end_ps")
        .add(static_cast<std::uint64_t>(path.end_to_end));
    registry.counter("critpath.on_path_ps")
        .add(static_cast<std::uint64_t>(path.on_path_ps));
    registry.counter("critpath.events_on_path")
        .add(path.on_path_events);
    registry.counter("critpath.bottleneck_code")
        .add(static_cast<std::uint64_t>(path.bottleneck));
    for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
        const auto cat = static_cast<PathCategory>(c);
        registry
            .counter("critpath.share."
                     + std::string(pathCategoryName(cat)) + "_ps")
            .add(static_cast<std::uint64_t>(path.shares[c]));
    }
}

std::string
criticalPathJson(const CriticalPath &path)
{
    std::ostringstream os;
    os << "{\"bottleneck\": \"" << bottleneckName(path.bottleneck)
       << "\", \"end_to_end_ps\": " << path.end_to_end
       << ", \"on_path_ps\": " << path.on_path_ps
       << ", \"events_on_path\": " << path.on_path_events
       << ", \"shares\": {";
    for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
        if (c != 0)
            os << ", ";
        os << '"'
           << pathCategoryName(static_cast<PathCategory>(c))
           << "_ps\": " << path.shares[c];
    }
    os << "}}";
    return os.str();
}

std::string
criticalPathJsonMember(const CriticalPath &path)
{
    return obs::ReportWriter::member("critical_path",
                                     criticalPathJson(path));
}

namespace {

std::string
sharePct(SimTime part, SimTime whole)
{
    if (whole <= 0)
        return TextTable::pct(0.0);
    return TextTable::pct(100.0 * static_cast<double>(part)
                          / static_cast<double>(whole));
}

} // namespace

std::string
criticalReport(const CriticalPath &path, const Tracer &tracer,
               int top_n)
{
    const auto ev = tracer.events();
    std::ostringstream os;

    TextTable sum("critical path");
    sum.header({"metric", "value"});
    sum.row({"end-to-end", formatTime(path.end_to_end)});
    sum.row({"on-path (in events)",
             formatTime(path.on_path_ps) + "  ("
                 + sharePct(path.on_path_ps, path.end_to_end) + ")"});
    sum.row({"path segments",
             std::to_string(path.segments.size())});
    sum.row({"bottleneck",
             std::string(bottleneckName(path.bottleneck))});
    sum.print(os);
    os << "\n";

    TextTable shares("critical-path shares");
    shares.header({"category", "time", "share"});
    for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
        if (path.shares[c] == 0)
            continue;
        shares.row({std::string(pathCategoryName(
                        static_cast<PathCategory>(c))),
                    formatTime(path.shares[c]),
                    sharePct(path.shares[c], path.end_to_end)});
    }
    if (shares.rowCount() == 0)
        shares.row({"compute", formatTime(0), sharePct(0, 1)});
    shares.print(os);
    os << "\n";

    // Top on-path contributors, grouped by (kind, label).
    struct Contrib
    {
        SimTime ps = 0;
        std::size_t count = 0;
    };
    std::map<std::pair<EventKind, LabelId>, Contrib> by_label;
    for (const auto &seg : path.segments) {
        const TraceEvent &e = ev[seg.event];
        auto &c = by_label[{e.kind, e.label}];
        c.ps += seg.duration();
        ++c.count;
    }
    std::vector<std::pair<std::pair<EventKind, LabelId>, Contrib>>
        ranked(by_label.begin(), by_label.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.ps != b.second.ps)
                      return a.second.ps > b.second.ps;
                  return a.first < b.first;
              });
    TextTable top("top on-path contributors");
    top.header({"kind", "label", "segments", "time", "share"});
    const auto limit = static_cast<std::size_t>(std::max(top_n, 1));
    for (std::size_t r = 0; r < ranked.size() && r < limit; ++r) {
        const auto &[key, c] = ranked[r];
        std::string label(tracer.labelName(key.second));
        if (label.empty())
            label = "-";
        top.row({std::string(eventKindName(key.first)), label,
                 std::to_string(c.count), formatTime(c.ps),
                 sharePct(c.ps, path.end_to_end)});
    }
    top.print(os);
    os << "\n";

    // Largest slack among device-side work: these are the overlap
    // candidates a PipeLLM-style mitigation could hide.
    std::vector<std::uint32_t> idle;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(path.slack.size()); ++i) {
        const TraceEvent &e = ev[i];
        if (path.slack[i] > 0
            && (e.kind == EventKind::Kernel || isCopy(e.kind)))
            idle.push_back(i);
    }
    std::sort(idle.begin(), idle.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (path.slack[a] != path.slack[b])
                      return path.slack[a] > path.slack[b];
                  return a < b;
              });
    if (idle.size() > limit)
        idle.resize(limit);
    TextTable slack("largest slack (overlap candidates)");
    slack.header({"kind", "label", "start", "duration", "slack"});
    for (const auto i : idle) {
        const TraceEvent &e = ev[i];
        std::string label(tracer.name(e));
        if (label.empty())
            label = "-";
        slack.row({std::string(eventKindName(e.kind)), label,
                   formatTime(e.start), formatTime(e.duration()),
                   formatTime(path.slack[i])});
    }
    if (slack.rowCount() > 0) {
        slack.print(os);
        os << "\n";
    }
    return os.str();
}

void
writeCriticalJson(const CriticalPath &path, const Tracer &tracer,
                  std::ostream &os)
{
    const auto ev = tracer.events();
    os << "{\n  \"hccsim_critical_version\": 1,\n  "
       << criticalPathJsonMember(path) << ",\n  \"segments\": [";
    bool first = true;
    for (const auto &seg : path.segments) {
        const TraceEvent &e = ev[seg.event];
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"event\": " << seg.event << ", \"kind\": \""
           << eventKindName(e.kind) << "\", \"label\": \""
           << tracer.name(e) << "\", \"category\": \""
           << pathCategoryName(seg.category)
           << "\", \"begin_ps\": " << seg.begin
           << ", \"end_ps\": " << seg.end << ", \"slack_ps\": "
           << (seg.event < path.slack.size()
                   ? path.slack[seg.event]
                   : 0)
           << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace hcc::trace
