#include "trace/compare.hpp"

#include <algorithm>
#include <sstream>

namespace hcc::trace {

namespace {

const std::vector<EventKind> &
allKinds()
{
    static const std::vector<EventKind> kinds = {
        EventKind::Launch, EventKind::GraphLaunch, EventKind::Kernel,
        EventKind::MemcpyH2D, EventKind::MemcpyD2H,
        EventKind::MemcpyD2D, EventKind::MallocDevice,
        EventKind::MallocHost, EventKind::MallocManaged,
        EventKind::Free, EventKind::Sync, EventKind::Fault,
    };
    return kinds;
}

} // namespace

std::string
TraceDiff::report() const
{
    std::ostringstream oss;
    oss << "end-to-end: " << formatTime(span_a) << " -> "
        << formatTime(span_b) << " ("
        << (span_a > 0 ? static_cast<double>(span_b)
                     / static_cast<double>(span_a)
                       : 0.0)
        << "x)\n\nper event kind:\n";
    for (const auto &k : kinds) {
        oss << "  " << eventKindName(k.kind) << ": "
            << formatTime(k.total_a) << " -> "
            << formatTime(k.total_b) << " (+"
            << formatTime(k.delta()) << ", " << k.count_a << "/"
            << k.count_b << " events)\n";
    }
    if (!top_events.empty()) {
        oss << "\nworst individual regressions:\n";
        for (const auto &e : top_events) {
            oss << "  " << eventKindName(e.kind) << " '" << e.name
                << "' #" << e.index << ": "
                << formatTime(e.duration_a) << " -> "
                << formatTime(e.duration_b) << " (+"
                << formatTime(e.delta()) << ")\n";
        }
    }
    if (unaligned > 0)
        oss << "\n(" << unaligned << " events had no counterpart)\n";
    return oss.str();
}

TraceDiff
compareTraces(const Tracer &a, const Tracer &b, std::size_t top_n)
{
    TraceDiff diff;
    diff.span_a = a.span();
    diff.span_b = b.span();

    std::vector<EventDelta> candidates;
    for (const auto kind : allKinds()) {
        const auto ea = a.ofKind(kind);
        const auto eb = b.ofKind(kind);
        if (ea.empty() && eb.empty())
            continue;

        KindDelta kd;
        kd.kind = kind;
        kd.count_a = ea.size();
        kd.count_b = eb.size();
        for (const auto &e : ea)
            kd.total_a += e.duration();
        for (const auto &e : eb)
            kd.total_b += e.duration();
        diff.kinds.push_back(kd);

        const std::size_t aligned = std::min(ea.size(), eb.size());
        diff.unaligned += std::max(ea.size(), eb.size()) - aligned;
        for (std::size_t i = 0; i < aligned; ++i) {
            EventDelta ed;
            ed.kind = kind;
            ed.name = std::string(b.labelName(eb[i].label));
            ed.index = i;
            ed.duration_a = ea[i].duration();
            ed.duration_b = eb[i].duration();
            candidates.push_back(std::move(ed));
        }
    }

    std::sort(candidates.begin(), candidates.end(),
              [](const EventDelta &x, const EventDelta &y) {
                  return x.delta() > y.delta();
              });
    if (candidates.size() > top_n)
        candidates.resize(top_n);
    // Drop non-regressions from the "worst" list.
    while (!candidates.empty() && candidates.back().delta() <= 0)
        candidates.pop_back();
    diff.top_events = std::move(candidates);
    return diff;
}

} // namespace hcc::trace
