#include "trace/export.hpp"

#include <ostream>
#include <sstream>

namespace hcc::trace {

namespace {

/** JSON-escape a label (our names are simple, but be safe). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

bool
isHostSide(EventKind kind)
{
    switch (kind) {
      case EventKind::Launch:
      case EventKind::GraphLaunch:
      case EventKind::MallocDevice:
      case EventKind::MallocHost:
      case EventKind::MallocManaged:
      case EventKind::Free:
      case EventKind::Sync:
        return true;
      default:
        return false;
    }
}

} // namespace

void
exportChromeTrace(const Tracer &tracer, std::ostream &os)
{
    os << "[\n";
    bool first = true;
    for (const auto &e : tracer.events()) {
        if (!first)
            os << ",\n";
        first = false;
        const bool host = isHostSide(e.kind);
        const int pid = host ? 1 : 2;
        const int tid = host ? 0 : (e.stream < 0 ? 0 : e.stream);
        os << "  {\"name\": \"" << jsonEscape(e.name) << "\", "
           << "\"cat\": \"" << eventKindName(e.kind) << "\", "
           << "\"ph\": \"X\", "
           << "\"ts\": " << time::toUs(e.start) << ", "
           << "\"dur\": " << time::toUs(e.duration()) << ", "
           << "\"pid\": " << pid << ", \"tid\": " << tid << ", "
           << "\"args\": {\"bytes\": " << e.bytes
           << ", \"queue_wait_us\": " << time::toUs(e.queue_wait)
           << ", \"correlation\": " << e.correlation
           << ", \"encrypted_paging\": "
           << (e.encrypted_paging ? "true" : "false") << "}}";
    }
    os << "\n]\n";
}

std::string
chromeTraceJson(const Tracer &tracer)
{
    std::ostringstream oss;
    exportChromeTrace(tracer, oss);
    return oss.str();
}

void
exportCsv(const Tracer &tracer, std::ostream &os)
{
    os << "kind,name,start_us,end_us,duration_us,stream,"
          "correlation,bytes,queue_wait_us,encrypted_paging\n";
    for (const auto &e : tracer.events()) {
        os << eventKindName(e.kind) << ',' << e.name << ','
           << time::toUs(e.start) << ',' << time::toUs(e.end) << ','
           << time::toUs(e.duration()) << ',' << e.stream << ','
           << e.correlation << ',' << e.bytes << ','
           << time::toUs(e.queue_wait) << ','
           << (e.encrypted_paging ? 1 : 0) << '\n';
    }
}

} // namespace hcc::trace
