#include "trace/export.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

namespace hcc::trace {

namespace {

/** JSON-escape a label (our names are simple, but be safe). */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

bool
isHostSide(EventKind kind)
{
    switch (kind) {
      case EventKind::Launch:
      case EventKind::GraphLaunch:
      case EventKind::MallocDevice:
      case EventKind::MallocHost:
      case EventKind::MallocManaged:
      case EventKind::Free:
      case EventKind::Sync:
        return true;
      default:
        return false;
    }
}

/**
 * Render every sampled gauge of @p obs as Perfetto counter events.
 * Samples are re-sorted by timestamp per gauge: components record
 * them in call order, which need not be monotonic in simulated time.
 */
void
emitCounterTracks(const obs::Registry &obs, std::ostream &os,
                  bool &first)
{
    for (const auto &[name, entry] : obs.entries()) {
        if (entry.kind != obs::Registry::Kind::Gauge)
            continue;
        const obs::Gauge &gauge = *entry.gauge;
        if (gauge.samples().empty())
            continue;
        auto samples = gauge.samples();
        std::stable_sort(samples.begin(), samples.end(),
                         [](const obs::Gauge::Sample &a,
                            const obs::Gauge::Sample &b) {
                             return a.ts < b.ts;
                         });
        for (const auto &sample : samples) {
            if (!first)
                os << ",\n";
            first = false;
            os << "  {\"name\": \"" << jsonEscape(name) << "\", "
               << "\"ph\": \"C\", "
               << "\"ts\": " << time::toUs(sample.ts) << ", "
               << "\"pid\": 3, "
               << "\"args\": {\"value\": " << sample.value << "}}";
        }
    }
}

} // namespace

void
exportChromeTrace(const Tracer &tracer, std::ostream &os,
                  const obs::Registry *obs,
                  const CriticalPath *critical)
{
    os << "[\n";
    bool first = true;
    // Segment events come out of the walk in ascending event-index
    // order, so one cursor tracks membership during the event loop.
    std::size_t seg_cursor = 0;
    const std::size_t seg_count =
        critical ? critical->segments.size() : 0;
    std::size_t i = 0;
    for (const auto &e : tracer.events()) {
        if (!first)
            os << ",\n";
        first = false;
        const bool host = isHostSide(e.kind);
        const int pid = host ? 1 : 2;
        const int tid = host ? 0 : (e.stream < 0 ? 0 : e.stream);
        os << "  {\"name\": \"" << jsonEscape(tracer.name(e)) << "\", "
           << "\"cat\": \"" << eventKindName(e.kind) << "\", "
           << "\"ph\": \"X\", "
           << "\"ts\": " << time::toUs(e.start) << ", "
           << "\"dur\": " << time::toUs(e.duration()) << ", "
           << "\"pid\": " << pid << ", \"tid\": " << tid << ", "
           << "\"args\": {\"bytes\": " << e.bytes
           << ", \"queue_wait_us\": " << time::toUs(e.queue_wait)
           << ", \"queue_wait_ps\": " << e.queue_wait
           << ", \"correlation\": " << e.correlation;
        if (e.kind == EventKind::Kernel)
            os << ", \"kqt_ps\": " << e.queue_wait;
        else if (e.kind == EventKind::Launch
                 || e.kind == EventKind::GraphLaunch)
            os << ", \"lqt_ps\": " << e.queue_wait;
        if (critical) {
            bool on_path = false;
            while (seg_cursor < seg_count
                   && critical->segments[seg_cursor].event < i)
                ++seg_cursor;
            if (seg_cursor < seg_count
                && critical->segments[seg_cursor].event == i)
                on_path = true;
            os << ", \"on_critical_path\": "
               << (on_path ? "true" : "false");
            if (i < critical->slack.size())
                os << ", \"slack_ps\": " << critical->slack[i];
        }
        os << ", \"encrypted_paging\": "
           << (e.encrypted_paging ? "true" : "false") << "}}";
        ++i;
    }
    if (critical) {
        // Flow arrows linking consecutive on-path spans: a "s"tart
        // binds to the slice enclosing its ts, the matching
        // "f"inish (bp "e") binds to the next on-path slice.
        const auto ev = tracer.events();
        for (std::size_t k = 1; k < seg_count; ++k) {
            const auto &a = critical->segments[k - 1];
            const auto &b = critical->segments[k];
            const TraceEvent &ea = ev[a.event];
            const TraceEvent &eb = ev[b.event];
            const bool ha = isHostSide(ea.kind);
            const bool hb = isHostSide(eb.kind);
            if (!first)
                os << ",\n";
            first = false;
            os << "  {\"name\": \"critical_path\", "
               << "\"cat\": \"critpath\", \"ph\": \"s\", \"id\": "
               << k << ", \"ts\": " << time::toUs(ea.start)
               << ", \"pid\": " << (ha ? 1 : 2) << ", \"tid\": "
               << (ha ? 0 : (ea.stream < 0 ? 0 : ea.stream))
               << "},\n";
            os << "  {\"name\": \"critical_path\", "
               << "\"cat\": \"critpath\", \"ph\": \"f\", "
               << "\"bp\": \"e\", \"id\": " << k << ", \"ts\": "
               << time::toUs(eb.start) << ", \"pid\": "
               << (hb ? 1 : 2) << ", \"tid\": "
               << (hb ? 0 : (eb.stream < 0 ? 0 : eb.stream))
               << "}";
        }
    }
    if (obs)
        emitCounterTracks(*obs, os, first);
    os << "\n]\n";
}

std::string
chromeTraceJson(const Tracer &tracer, const obs::Registry *obs,
                const CriticalPath *critical)
{
    std::ostringstream oss;
    exportChromeTrace(tracer, oss, obs, critical);
    return oss.str();
}

namespace {

/**
 * RFC 4180 field quoting: plain fields pass through untouched; a
 * field containing a comma, quote or newline is wrapped in quotes
 * with embedded quotes doubled.
 */
std::string
csvField(std::string_view field)
{
    if (field.find_first_of(",\"\r\n") == std::string_view::npos)
        return std::string(field);
    std::string out;
    out.reserve(field.size() + 2);
    out += '"';
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
exportCsv(const Tracer &tracer, std::ostream &os)
{
    os << "kind,name,start_us,end_us,duration_us,stream,"
          "correlation,bytes,queue_wait_us,encrypted_paging\n";
    for (const auto &e : tracer.events()) {
        os << eventKindName(e.kind) << ','
           << csvField(tracer.name(e)) << ','
           << time::toUs(e.start) << ',' << time::toUs(e.end) << ','
           << time::toUs(e.duration()) << ',' << e.stream << ','
           << e.correlation << ',' << e.bytes << ','
           << time::toUs(e.queue_wait) << ','
           << (e.encrypted_paging ? 1 : 0) << '\n';
    }
}

} // namespace hcc::trace
