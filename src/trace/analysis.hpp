/**
 * @file
 * Trace analysis: extracts the paper's metrics from a Tracer.
 *
 * Definitions follow Sec. V / Fig. 3:
 *   KLO — duration of a host-side launch operation,
 *   LQT — wait before the next consecutive launch can start,
 *   KQT — wait between kernel enqueue and execution start,
 *   KET — kernel execution duration,
 *   T_mem — memcpy time, T_other — alloc/free/sync.
 */

#ifndef HCC_TRACE_ANALYSIS_HPP
#define HCC_TRACE_ANALYSIS_HPP

#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "trace/tracer.hpp"

namespace hcc::trace {

/** Per-application summary of the paper's metrics. */
struct AppMetrics
{
    // Launch-side (part B).
    SampleSet klo;   //!< per-launch overheads
    SampleSet lqt;   //!< per-gap launch queuing times
    // Kernel-side (part C).
    SampleSet kqt;   //!< per-kernel queuing times
    SampleSet ket;   //!< per-kernel execution times
    // Memory (parts A and D).
    SimTime copy_h2d = 0;
    SimTime copy_d2h = 0;
    SimTime copy_d2d = 0;
    SimTime alloc_device = 0;
    SimTime alloc_host = 0;
    SimTime alloc_managed = 0;
    SimTime free_time = 0;
    SimTime sync_time = 0;
    /** Injected-fault recovery time (hcc::fault spans). */
    SimTime fault_time = 0;
    /** End-to-end span of the trace. */
    SimTime end_to_end = 0;
    int launches = 0;
    int kernels = 0;
    int fault_recoveries = 0;

    SimTime copyTotal() const { return copy_h2d + copy_d2h + copy_d2d; }
    SimTime sumKlo() const { return static_cast<SimTime>(klo.sum()); }
    SimTime sumLqt() const { return static_cast<SimTime>(lqt.sum()); }
    SimTime sumKqt() const { return static_cast<SimTime>(kqt.sum()); }
    SimTime sumKet() const { return static_cast<SimTime>(ket.sum()); }
};

/** Extract the per-app metrics from a trace. */
AppMetrics analyze(const Tracer &tracer);

/**
 * Collapse each per-launch/per-kernel sample set to a single sample
 * carrying its insertion-order total.  sumKlo()/sumLqt()/sumKqt()/
 * sumKet() are unchanged bit for bit (the total is the same
 * left-to-right accumulation sum() would have produced); counts,
 * means and percentiles over the individual samples are lost.
 *
 * Campaign cells use this: sweep/fault writers only consume the sums
 * and the integer launch/kernel counts, and dropping the vectors
 * keeps a 10k-cell campaign's result memory (and the per-cell
 * copy-out cost) flat.  The full-detail paths (`hccsim run`,
 * `critical`, reports) never compact.
 */
void compactSampleMetrics(AppMetrics &metrics);

/**
 * Merge intervals and return total covered time — used for the
 * overlap (alpha/beta) estimation in the performance model.
 */
SimTime unionCoverage(std::vector<std::pair<SimTime, SimTime>> spans);

/**
 * Time of interval [s, e) covered by the union of @p spans.
 */
SimTime overlapWith(SimTime s, SimTime e,
                    const std::vector<std::pair<SimTime, SimTime>>
                        &spans);

/** An (x = start us, y = duration us) point for Fig. 10 scatters. */
struct EventPoint
{
    double start_us = 0.0;
    double duration_us = 0.0;
};

/**
 * Fig. 10 scatter series for one event kind, with the longest
 * @p drop_longest events removed for display (paper's method).
 */
std::vector<EventPoint> eventScatter(const Tracer &tracer,
                                     EventKind kind,
                                     std::size_t drop_longest = 1);

/**
 * Kernel-to-Launch Ratio (Observation 6): sum(KET) over
 * sum(KLO + LQT).  Returns +inf-like large value when the
 * denominator is zero.
 */
double kernelToLaunchRatio(const AppMetrics &m);

} // namespace hcc::trace

#endif // HCC_TRACE_ANALYSIS_HPP
