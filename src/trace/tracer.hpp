/**
 * @file
 * Event tracer: the simulator's Nsight Systems.
 *
 * Every runtime API call and device activity is recorded as a timed
 * event.  The analysis layer (analysis.hpp) extracts the paper's
 * metrics — KLO, LQT, KQT, KET, copy/alloc breakdowns and CDFs —
 * from these traces, exactly as the paper derives them from Nsight
 * reports.
 */

#ifndef HCC_TRACE_TRACER_HPP
#define HCC_TRACE_TRACER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hcc::trace {

/** Categories of traced events. */
enum class EventKind
{
    Launch,        //!< host-side cudaLaunchKernel (duration = KLO)
    Kernel,        //!< device-side execution (duration = KET)
    MemcpyH2D,
    MemcpyD2H,
    MemcpyD2D,
    MallocDevice,  //!< cudaMalloc
    MallocHost,    //!< cudaMallocHost
    MallocManaged, //!< cudaMallocManaged
    Free,          //!< cudaFree
    Sync,          //!< host blocked in a synchronize call
    GraphLaunch,   //!< cudaGraphLaunch batch submission
};

/** Printable kind name. */
std::string eventKindName(EventKind kind);

/** One traced event. */
struct TraceEvent
{
    EventKind kind = EventKind::Launch;
    /** Kernel or API label. */
    std::string name;
    SimTime start = 0;
    SimTime end = 0;
    /** Stream the event belongs to (-1: none). */
    int stream = -1;
    /** Links a Launch to its Kernel event. */
    std::uint64_t correlation = 0;
    /** Payload size for memory events. */
    Bytes bytes = 0;
    /**
     * Queue wait attributed to the event: for Kernel events the KQT;
     * for Launch events the LQT that preceded this launch.
     */
    SimTime queue_wait = 0;
    /** Copy reclassified as encrypted paging (Fig. 5 "managed"). */
    bool encrypted_paging = false;

    SimTime duration() const { return end - start; }
};

/**
 * Append-only event sink for one application run.
 */
class Tracer
{
  public:
    /** Record an event; returns its correlation id. */
    std::uint64_t record(TraceEvent event);

    const std::vector<TraceEvent> &events() const { return events_; }
    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }

    /** All events of one kind, in record order. */
    std::vector<TraceEvent> ofKind(EventKind kind) const;

    /** Earliest start over all events (0 if empty). */
    SimTime firstStart() const;
    /** Latest end over all events (0 if empty). */
    SimTime lastEnd() const;
    /** lastEnd - firstStart. */
    SimTime span() const { return lastEnd() - firstStart(); }

    void clear();

  private:
    std::vector<TraceEvent> events_;
    std::uint64_t next_correlation_ = 1;
};

} // namespace hcc::trace

#endif // HCC_TRACE_TRACER_HPP
