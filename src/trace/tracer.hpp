/**
 * @file
 * Event tracer: the simulator's Nsight Systems.
 *
 * Every runtime API call and device activity is recorded as a timed
 * event.  The analysis layer (analysis.hpp) extracts the paper's
 * metrics — KLO, LQT, KQT, KET, copy/alloc breakdowns and CDFs —
 * from these traces, exactly as the paper derives them from Nsight
 * reports.
 *
 * Hot-path design (docs/PERF.md): a large cell records millions of
 * events, so TraceEvent is a trivially copyable record carrying a
 * 32-bit interned label id instead of an owning std::string, and the
 * Tracer stores events in fixed-size chunk pages instead of one
 * reallocating vector.  Label strings live in a per-run intern table
 * owned by the Tracer; resolve ids with labelName().
 */

#ifndef HCC_TRACE_TRACER_HPP
#define HCC_TRACE_TRACER_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "common/units.hpp"

namespace hcc::trace {

/** Categories of traced events. */
enum class EventKind
{
    Launch,        //!< host-side cudaLaunchKernel (duration = KLO)
    Kernel,        //!< device-side execution (duration = KET)
    MemcpyH2D,
    MemcpyD2H,
    MemcpyD2D,
    MallocDevice,  //!< cudaMalloc
    MallocHost,    //!< cudaMallocHost
    MallocManaged, //!< cudaMallocManaged
    Free,          //!< cudaFree
    Sync,          //!< host blocked in a synchronize call
    GraphLaunch,   //!< cudaGraphLaunch batch submission
    Fault,         //!< injected-fault recovery span (hcc::fault)
};

/** Printable kind name (view into static storage). */
std::string_view eventKindName(EventKind kind);

/** Id of an interned label string (see Tracer::intern). */
using LabelId = std::uint32_t;

/** One traced event.  Trivially copyable; labels are interned. */
struct TraceEvent
{
    EventKind kind = EventKind::Launch;
    /** Kernel or API label, interned in the owning Tracer (0: ""). */
    LabelId label = 0;
    SimTime start = 0;
    SimTime end = 0;
    /** Stream the event belongs to (-1: none). */
    int stream = -1;
    /** Links a Launch to its Kernel event. */
    std::uint64_t correlation = 0;
    /** Payload size for memory events. */
    Bytes bytes = 0;
    /**
     * Queue wait attributed to the event: for Kernel events the KQT;
     * for Launch events the LQT that preceded this launch.
     */
    SimTime queue_wait = 0;
    /** Copy reclassified as encrypted paging (Fig. 5 "managed"). */
    bool encrypted_paging = false;

    SimTime duration() const { return end - start; }
};

/**
 * Append-only event sink for one application run.
 *
 * Events are stored in pages of kChunkEvents so recording never
 * relocates previously recorded events; events() returns a
 * lightweight forward view over the pages (random access via
 * operator[] stays O(1) because every page except the last is full).
 */
class Tracer
{
  public:
    /** Events per storage page. */
    static constexpr std::size_t kChunkEvents = 4096;

    Tracer();
    Tracer(const Tracer &other);
    Tracer &operator=(const Tracer &other);
    Tracer(Tracer &&other) noexcept = default;
    Tracer &operator=(Tracer &&other) noexcept = default;

    /**
     * Intern @p name, returning its stable id.  The same string
     * always maps to the same id within one Tracer; "" is id 0.
     * Re-interning the most recently queried label (the common case:
     * one kernel launched in a loop) skips the hash lookup.
     */
    LabelId
    intern(std::string_view name)
    {
        if (name == std::string_view(names_[last_interned_]))
            return last_interned_;
        return internSlow(name);
    }

    /** The string for an interned id (fatal on unknown ids). */
    std::string_view labelName(LabelId id) const;

    /** Convenience: the label string of @p event. */
    std::string_view name(const TraceEvent &event) const
    {
        return labelName(event.label);
    }

    /** Record an event (label pre-set); returns its correlation id. */
    std::uint64_t
    record(TraceEvent event)
    {
        HCC_ASSERT(event.end >= event.start,
                   "event ends before it starts");
        if (event.correlation == 0)
            event.correlation = next_correlation_++;
        else
            next_correlation_ = std::max(next_correlation_,
                                         event.correlation + 1);
        if (chunks_.empty()
            || chunks_.back().size() == kChunkEvents)
            addChunk();
        if (size_ == 0) {
            min_start_ = event.start;
            max_end_ = event.end;
        } else {
            min_start_ = std::min(min_start_, event.start);
            max_end_ = std::max(max_end_, event.end);
        }
        ++size_;
        chunks_.back().push_back(event);
        return event.correlation;
    }

    /** Record an event, interning @p name as its label. */
    std::uint64_t
    record(TraceEvent event, std::string_view name)
    {
        event.label = intern(name);
        return record(event);
    }

    /** Forward iterator over the chunked event pages. */
    class EventIterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = TraceEvent;
        using difference_type = std::ptrdiff_t;
        using pointer = const TraceEvent *;
        using reference = const TraceEvent &;

        EventIterator() = default;
        EventIterator(const std::vector<std::vector<TraceEvent>> *chunks,
                      std::size_t chunk, std::size_t pos)
            : chunks_(chunks), chunk_(chunk), pos_(pos)
        {
        }

        reference operator*() const { return (*chunks_)[chunk_][pos_]; }
        pointer operator->() const { return &**this; }

        EventIterator &
        operator++()
        {
            if (++pos_ == (*chunks_)[chunk_].size()) {
                ++chunk_;
                pos_ = 0;
            }
            return *this;
        }

        EventIterator
        operator++(int)
        {
            EventIterator tmp = *this;
            ++*this;
            return tmp;
        }

        bool
        operator==(const EventIterator &other) const
        {
            return chunk_ == other.chunk_ && pos_ == other.pos_;
        }
        bool
        operator!=(const EventIterator &other) const
        {
            return !(*this == other);
        }

      private:
        const std::vector<std::vector<TraceEvent>> *chunks_ = nullptr;
        std::size_t chunk_ = 0;
        std::size_t pos_ = 0;
    };

    /** Non-owning view over all recorded events, in record order. */
    class EventView
    {
      public:
        explicit EventView(const Tracer &tracer) : tracer_(&tracer) {}

        EventIterator
        begin() const
        {
            return {&tracer_->chunks_, 0, 0};
        }
        EventIterator
        end() const
        {
            return {&tracer_->chunks_, tracer_->chunks_.size(), 0};
        }

        std::size_t size() const { return tracer_->size(); }
        bool empty() const { return tracer_->empty(); }

        const TraceEvent &
        operator[](std::size_t i) const
        {
            return tracer_->chunks_[i / kChunkEvents][i % kChunkEvents];
        }

      private:
        const Tracer *tracer_;
    };

    EventView events() const { return EventView(*this); }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** All events of one kind, in record order (materialized). */
    std::vector<TraceEvent> ofKind(EventKind kind) const;

    /** Earliest start over all events (0 if empty). */
    SimTime firstStart() const { return size_ ? min_start_ : 0; }
    /** Latest end over all events (0 if empty). */
    SimTime lastEnd() const { return size_ ? max_end_ : 0; }
    /** lastEnd - firstStart. */
    SimTime span() const { return lastEnd() - firstStart(); }

    /** Drop all events (interned labels stay valid). */
    void clear();

    /**
     * A watermark of the append-only state: everything truncateTo()
     * needs to rewind this tracer to an earlier point.  Only valid
     * for the tracer it was taken from, while the marked events are
     * still an unchanged prefix (recording only appends, so that
     * holds until a restore from a *different* capture rewrites the
     * pages).
     */
    struct Mark
    {
        std::size_t events = 0;
        std::size_t labels = 0;
        SimTime min_start = 0;
        SimTime max_end = 0;
        std::uint64_t next_correlation = 1;
        LabelId last_interned = 0;
    };

    Mark mark() const
    {
        return {size_,          names_.size(),     min_start_,
                max_end_,       next_correlation_, last_interned_};
    }

    /**
     * Rewind to @p m by truncating the chunk pages and the intern
     * table — the restore-in-place fast path (snapState's byte load
     * rebuilds the same state from a full copy).  The caller owns
     * the prefix-unchanged guarantee; see Mark.
     */
    void truncateTo(const Mark &m);

    /**
     * Snapshot support: event chunk pages, the intern table (ids are
     * table positions, so they remain valid across a restore), span
     * watermarks and the correlation counter.  Restoring into the
     * tracer that was captured amounts to truncating the append-only
     * chunk pages and intern table back to the capture point; the
     * self-contained byte form also restores into a fresh Tracer.
     */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        ar.pod(size_);
        ar.pod(min_start_);
        ar.pod(max_end_);
        ar.pod(next_correlation_);
        ar.pod(last_interned_);
        const std::size_t n_names = ar.size(names_.size());
        if constexpr (Ar::kLoading) {
            names_.clear();
            index_.clear();
            for (std::size_t i = 0; i < n_names; ++i) {
                std::string s;
                ar.str(s);
                names_.push_back(std::move(s));
                index_.emplace(std::string_view(names_.back()),
                               static_cast<LabelId>(i));
            }
        } else {
            for (auto &s : names_)
                ar.str(s);
        }
        const std::size_t n_chunks = ar.size(chunks_.size());
        if constexpr (Ar::kLoading)
            chunks_.resize(n_chunks);
        for (auto &chunk : chunks_)
            ar.podVec(chunk);
    }

  private:
    LabelId internSlow(std::string_view name);
    void addChunk();

    std::vector<std::vector<TraceEvent>> chunks_;
    std::size_t size_ = 0;
    SimTime min_start_ = 0;
    SimTime max_end_ = 0;
    std::uint64_t next_correlation_ = 1;
    /** Label storage; deque keeps element addresses stable. */
    std::deque<std::string> names_;
    /** Views into names_ -> id.  Rebuilt on copy. */
    std::unordered_map<std::string_view, LabelId> index_;
    /** Id whose name matched the last intern() query. */
    LabelId last_interned_ = 0;
};

} // namespace hcc::trace

#endif // HCC_TRACE_TRACER_HPP
