#include "trace/tracer.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hcc::trace {

std::string
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Launch: return "Launch";
      case EventKind::Kernel: return "Kernel";
      case EventKind::MemcpyH2D: return "MemcpyH2D";
      case EventKind::MemcpyD2H: return "MemcpyD2H";
      case EventKind::MemcpyD2D: return "MemcpyD2D";
      case EventKind::MallocDevice: return "MallocDevice";
      case EventKind::MallocHost: return "MallocHost";
      case EventKind::MallocManaged: return "MallocManaged";
      case EventKind::Free: return "Free";
      case EventKind::Sync: return "Sync";
      case EventKind::GraphLaunch: return "GraphLaunch";
    }
    return "?";
}

std::uint64_t
Tracer::record(TraceEvent event)
{
    HCC_ASSERT(event.end >= event.start, "event ends before it starts");
    if (event.correlation == 0)
        event.correlation = next_correlation_++;
    else
        next_correlation_ = std::max(next_correlation_,
                                     event.correlation + 1);
    const std::uint64_t id = event.correlation;
    events_.push_back(std::move(event));
    return id;
}

std::vector<TraceEvent>
Tracer::ofKind(EventKind kind) const
{
    std::vector<TraceEvent> out;
    for (const auto &e : events_) {
        if (e.kind == kind)
            out.push_back(e);
    }
    return out;
}

SimTime
Tracer::firstStart() const
{
    if (events_.empty())
        return 0;
    SimTime t = events_.front().start;
    for (const auto &e : events_)
        t = std::min(t, e.start);
    return t;
}

SimTime
Tracer::lastEnd() const
{
    if (events_.empty())
        return 0;
    SimTime t = events_.front().end;
    for (const auto &e : events_)
        t = std::max(t, e.end);
    return t;
}

void
Tracer::clear()
{
    events_.clear();
    next_correlation_ = 1;
}

} // namespace hcc::trace
