#include "trace/tracer.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hcc::trace {

std::string_view
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Launch: return "Launch";
      case EventKind::Kernel: return "Kernel";
      case EventKind::MemcpyH2D: return "MemcpyH2D";
      case EventKind::MemcpyD2H: return "MemcpyD2H";
      case EventKind::MemcpyD2D: return "MemcpyD2D";
      case EventKind::MallocDevice: return "MallocDevice";
      case EventKind::MallocHost: return "MallocHost";
      case EventKind::MallocManaged: return "MallocManaged";
      case EventKind::Free: return "Free";
      case EventKind::Sync: return "Sync";
      case EventKind::GraphLaunch: return "GraphLaunch";
      case EventKind::Fault: return "Fault";
    }
    return "?";
}

Tracer::Tracer()
{
    names_.emplace_back();
    index_.emplace(std::string_view(names_.front()), LabelId{0});
}

Tracer::Tracer(const Tracer &other)
    : chunks_(other.chunks_),
      size_(other.size_),
      min_start_(other.min_start_),
      max_end_(other.max_end_),
      next_correlation_(other.next_correlation_),
      names_(other.names_)
{
    // The string_view keys of index_ must point into *our* copy of
    // the label storage, not the source's, so rebuild rather than
    // copy the map.
    index_.reserve(names_.size());
    for (std::size_t id = 0; id < names_.size(); ++id) {
        index_.emplace(std::string_view(names_[id]),
                       static_cast<LabelId>(id));
    }
}

Tracer &
Tracer::operator=(const Tracer &other)
{
    if (this != &other) {
        Tracer tmp(other);
        *this = std::move(tmp);
    }
    return *this;
}

LabelId
Tracer::internSlow(std::string_view name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return last_interned_ = it->second;
    const auto id = static_cast<LabelId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(std::string_view(names_.back()), id);
    return last_interned_ = id;
}

void
Tracer::addChunk()
{
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkEvents);
}

std::string_view
Tracer::labelName(LabelId id) const
{
    HCC_ASSERT(id < names_.size(), "unknown trace label id");
    return names_[id];
}

std::vector<TraceEvent>
Tracer::ofKind(EventKind kind) const
{
    std::vector<TraceEvent> out;
    for (const auto &chunk : chunks_) {
        for (const auto &e : chunk) {
            if (e.kind == kind)
                out.push_back(e);
        }
    }
    return out;
}

void
Tracer::clear()
{
    chunks_.clear();
    size_ = 0;
    min_start_ = 0;
    max_end_ = 0;
    next_correlation_ = 1;
}

void
Tracer::truncateTo(const Mark &m)
{
    HCC_ASSERT(m.events <= size_ && m.labels <= names_.size()
                   && m.labels >= 1,
               "trace mark does not describe a prefix of this tracer");
    // Newest-first, so each index_ view stays valid until its erase.
    while (names_.size() > m.labels) {
        index_.erase(std::string_view(names_.back()));
        names_.pop_back();
    }
    const std::size_t keep_chunks =
        (m.events + kChunkEvents - 1) / kChunkEvents;
    chunks_.resize(keep_chunks);
    if (keep_chunks > 0)
        chunks_.back().resize(m.events
                              - (keep_chunks - 1) * kChunkEvents);
    size_ = m.events;
    min_start_ = m.min_start;
    max_end_ = m.max_end;
    next_correlation_ = m.next_correlation;
    last_interned_ = m.last_interned;
}

} // namespace hcc::trace
