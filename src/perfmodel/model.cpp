#include "perfmodel/model.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "trace/analysis.hpp"

namespace hcc::perfmodel {

double
Decomposition::relativeError() const
{
    if (end_to_end == 0)
        return 0.0;
    return std::abs(static_cast<double>(predicted - end_to_end))
        / static_cast<double>(end_to_end);
}

std::string
Decomposition::report() const
{
    std::ostringstream oss;
    char err[32];
    std::snprintf(err, sizeof(err), "%.2f%%",
                  relativeError() * 100.0);
    oss << "T_mem (A, raw)       " << formatTime(t_mem)
        << "  alpha = " << alpha << "\n"
        << "sum(KLO+LQT) (B)     " << formatTime(t_launch) << "\n"
        << "sum(KET+KQT) (C,raw) " << formatTime(t_kernel)
        << "  mean beta = " << beta_mean << "\n"
        << "T_other (D)          " << formatTime(t_other) << "\n"
        << "P (measured)         " << formatTime(end_to_end) << "\n"
        << "P (model)            " << formatTime(predicted)
        << "  (err " << err << ")\n"
        << "residual             " << formatTime(residual) << "\n";
    return oss.str();
}

Decomposition
decompose(const trace::Tracer &tracer)
{
    using trace::EventKind;
    Decomposition d;
    d.end_to_end = tracer.span();

    // Collect the interval families.
    std::vector<std::pair<SimTime, SimTime>> mem_spans;
    std::vector<std::pair<SimTime, SimTime>> launch_spans;
    std::vector<std::pair<SimTime, SimTime>> kernel_spans;
    std::vector<std::pair<SimTime, SimTime>> sync_spans;

    for (const auto &e : tracer.events()) {
        switch (e.kind) {
          case EventKind::MemcpyH2D:
          case EventKind::MemcpyD2H:
          case EventKind::MemcpyD2D:
            mem_spans.emplace_back(e.start, e.end);
            d.t_mem += e.duration();
            break;
          case EventKind::Launch:
          case EventKind::GraphLaunch:
            // The LQT precedes the launch operation itself.
            launch_spans.emplace_back(e.start - e.queue_wait, e.end);
            d.t_launch += e.duration() + e.queue_wait;
            break;
          case EventKind::Kernel:
            // Part C interval: queue wait + execution.
            kernel_spans.emplace_back(e.start - e.queue_wait, e.end);
            d.t_kernel += e.duration() + e.queue_wait;
            break;
          case EventKind::MallocDevice:
          case EventKind::MallocHost:
          case EventKind::MallocManaged:
          case EventKind::Free:
            d.t_other += e.duration();
            break;
          case EventKind::Sync:
            sync_spans.emplace_back(e.start, e.end);
            break;
          case EventKind::Fault:
            // Recovery spans overlap the transfers they retried;
            // their cost is already inside the memcpy durations.
            break;
        }
    }

    // alpha: fraction of memcpy time overlapped with launch or
    // kernel activity.
    std::vector<std::pair<SimTime, SimTime>> bc_spans = launch_spans;
    bc_spans.insert(bc_spans.end(), kernel_spans.begin(),
                    kernel_spans.end());
    SimTime mem_overlapped = 0;
    for (const auto &[s, e] : mem_spans)
        mem_overlapped += trace::overlapWith(s, e, bc_spans);
    d.alpha = d.t_mem > 0
        ? static_cast<double>(mem_overlapped)
              / static_cast<double>(d.t_mem)
        : 0.0;

    // beta_i: fraction of each kernel's (KQT+KET) hidden under
    // launch activity (Fig. 3: K1's beta of 1 means part C is fully
    // covered by part B).
    SimTime kernel_visible = 0;
    double beta_sum = 0.0;
    for (const auto &[s, e] : kernel_spans) {
        const SimTime hidden = trace::overlapWith(s, e, launch_spans);
        const SimTime dur = e - s;
        kernel_visible += dur - hidden;
        beta_sum += dur > 0
            ? static_cast<double>(hidden) / static_cast<double>(dur)
            : 0.0;
    }
    d.beta_mean = kernel_spans.empty()
        ? 0.0 : beta_sum / static_cast<double>(kernel_spans.size());

    // Sync time overlapped with kernel execution is already counted
    // in part C; only the residue lands in T_other.
    for (const auto &[s, e] : sync_spans) {
        const SimTime hidden = trace::overlapWith(s, e, kernel_spans);
        d.t_other += (e - s) - hidden;
    }

    const auto non_overlapped_mem = static_cast<SimTime>(
        (1.0 - d.alpha) * static_cast<double>(d.t_mem));
    d.predicted = non_overlapped_mem + d.t_launch + kernel_visible
        + d.t_other;
    d.residual = d.end_to_end - d.predicted;
    return d;
}

} // namespace hcc::perfmodel
