/**
 * @file
 * The paper's GPU performance model (Sec. V, Fig. 3).
 *
 * End-to-end time P decomposes into four parts:
 *   A: (1 - alpha) * T_mem           — non-overlapped data transfer
 *   B: sum(KLO + LQT)                — launch operations and queuing
 *   C: sum((1 - beta_i)(KET + KQT))  — kernel time not hidden by B
 *   D: T_other                       — alloc/free/sync residue
 * alpha is the fraction of memcpy time overlapped with other work;
 * beta_i is the fraction of kernel i's (KQT + KET) interval that is
 * hidden under launch activity.  Both are estimated from the trace by
 * exact interval intersection, then the model's prediction is
 * compared against the measured end-to-end span.
 */

#ifndef HCC_PERFMODEL_MODEL_HPP
#define HCC_PERFMODEL_MODEL_HPP

#include <string>

#include "common/units.hpp"
#include "trace/tracer.hpp"

namespace hcc::perfmodel {

/** The four-part decomposition plus the estimated overlap factors. */
struct Decomposition
{
    SimTime t_mem = 0;          //!< total memcpy time (part A, raw)
    SimTime t_launch = 0;       //!< sum(KLO + LQT)  (part B)
    SimTime t_kernel = 0;       //!< sum(KET + KQT)  (part C, raw)
    SimTime t_other = 0;        //!< alloc + free + non-overlapped sync
    SimTime end_to_end = 0;     //!< measured P

    double alpha = 0.0;         //!< memcpy overlap fraction
    double beta_mean = 0.0;     //!< mean kernel-hidden fraction

    /** Model-predicted P. */
    SimTime predicted = 0;
    /** Anything the four parts do not explain (host idle, API). */
    SimTime residual = 0;

    /** |predicted - measured| / measured. */
    double relativeError() const;

    /** Render a human-readable report. */
    std::string report() const;
};

/** Run the decomposition over a trace. */
Decomposition decompose(const trace::Tracer &tracer);

} // namespace hcc::perfmodel

#endif // HCC_PERFMODEL_MODEL_HPP
