/**
 * @file
 * CC-overhead projector: predict how an application measured in a
 * regular VM would perform inside a TD, from its base trace alone.
 *
 * This is the actionable corollary of the paper's model: each traced
 * event is re-costed through the same mechanism models the simulator
 * charges under CC (encrypted transfer path per direction, hypercall
 * taxes on allocation/free, warm-launch and first-launch deltas,
 * decode amplification), and the deltas are accumulated onto the
 * measured end-to-end time.  It assumes the base run's overlap
 * structure carries over (accurate for copy-then-execute apps; the
 * projection degrades for heavily overlapped or UVM workloads, which
 * is reported via the `uvm_seen` flag).
 */

#ifndef HCC_PERFMODEL_PROJECTOR_HPP
#define HCC_PERFMODEL_PROJECTOR_HPP

#include <string>

#include "common/units.hpp"
#include "tee/secure_channel.hpp"
#include "trace/tracer.hpp"

namespace hcc::perfmodel {

/**
 * Predicted steady-state CC transfer rate in GB/s for an overlap
 * tier, from the calibrated constants alone (no simulation): the
 * analytic mirror of SecureChannel::steadyStateGbps at one crypto
 * worker.  None fuses seal + bounce copy into one serial stage;
 * DoubleBuffer overlaps them but keeps seals serialized; Speculative
 * runs up to @p spec_depth seals concurrently.  `hccsim project`
 * compares these against achieved per-mode rates to report
 * predicted-vs-achieved recovery.
 */
double ccPredictedRateGbps(tee::OverlapMode mode, bool d2h,
                           int spec_depth = 4);

/** Outcome of projecting a base trace into CC mode. */
struct CcProjection
{
    /** Measured base end-to-end. */
    SimTime base = 0;
    /** Projected CC end-to-end. */
    SimTime projected = 0;

    // Accumulated per-category deltas (projected - base).
    SimTime mem_delta = 0;
    SimTime launch_delta = 0;
    SimTime kernel_delta = 0;
    SimTime alloc_delta = 0;

    /** Managed/encrypted-paging events were present: projection is
     *  unreliable (demand paging re-costs are footprint-dependent). */
    bool uvm_seen = false;

    /** Projected slowdown factor. */
    double
    slowdown() const
    {
        return base > 0
            ? static_cast<double>(projected)
                  / static_cast<double>(base)
            : 1.0;
    }

    /** Human-readable summary. */
    std::string report() const;
};

/** Project a base (non-CC) trace into CC mode. */
CcProjection projectCc(const trace::Tracer &base_trace);

} // namespace hcc::perfmodel

#endif // HCC_PERFMODEL_PROJECTOR_HPP
