#include "perfmodel/projector.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/calibration.hpp"
#include "crypto/cpu_crypto_model.hpp"
#include "runtime/host_costs.hpp"
#include "tee/tdx.hpp"

namespace hcc::perfmodel {

namespace {

using namespace calib;

/** Effective CC transfer rate per direction (the pipeline
 *  bottleneck at the serial baseline, see
 *  SecureChannel::workerChunkCost). */
double
ccRateGbps(bool d2h)
{
    return ccPredictedRateGbps(tee::OverlapMode::None, d2h);
}

/** Expected (deterministic) part of a warm launch's cost. */
double
warmLaunchMean(bool cc)
{
    // Lognormal mean = median * exp(sigma^2 / 2).
    const double sigma = cc ? kLaunchSigmaCc : kLaunchSigmaBase;
    double t = static_cast<double>(kLaunchMedianBase)
        * std::exp(sigma * sigma / 2.0);
    if (cc)
        t += static_cast<double>(kLaunchCcExtra);
    // Amortized doorbell share.
    t += static_cast<double>(cc ? kMmioDoorbellTd
                                : kMmioDoorbellBase)
        / kLaunchDoorbellBatch;
    return t;
}

} // namespace

double
ccPredictedRateGbps(tee::OverlapMode mode, bool d2h, int spec_depth)
{
    crypto::CpuCryptoModel model(crypto::CpuKind::IntelEmr);
    const double gcm =
        model.throughputGBs(crypto::CipherAlgo::AesGcm128);
    // Per-MiB stage times: encrypt, and the bounce copy (+ inbound
    // page scrubbing on D2H).
    const double mib = 1024.0 * 1024.0;
    const double seal_us = mib / (gcm * 1e3);
    double copy_us = mib / (kBounceCopyGBs * 1e3);
    if (d2h) {
        copy_us += static_cast<double>(kCcInboundPerPage) * 1e-6
            * (mib / static_cast<double>(kUvmPageBytes));
    }
    const double seal_rate = mib / (seal_us * 1e3);
    const double copy_rate = mib / (copy_us * 1e3);
    // The software stage(s) feeding the link.
    double front = 0.0;
    switch (mode) {
    case tee::OverlapMode::None:
        front = mib / ((seal_us + copy_us) * 1e3);
        break;
    case tee::OverlapMode::DoubleBuffer:
        front = std::min(seal_rate, copy_rate);
        break;
    case tee::OverlapMode::Speculative:
        front = std::min(
            seal_rate * static_cast<double>(std::max(1, spec_depth)),
            copy_rate);
        break;
    }
    return std::min({front, kPciePinnedGBs, kGpuCryptoGBs});
}

std::string
CcProjection::report() const
{
    std::ostringstream oss;
    oss << "base P       " << formatTime(base) << "\n"
        << "projected P  " << formatTime(projected) << "  ("
        << slowdown() << "x)\n"
        << "  transfers  +" << formatTime(mem_delta) << "\n"
        << "  launches   +" << formatTime(launch_delta) << "\n"
        << "  kernels    +" << formatTime(kernel_delta) << "\n"
        << "  alloc/free +" << formatTime(alloc_delta) << "\n";
    if (uvm_seen)
        oss << "  WARNING: managed memory seen — projection "
               "unreliable\n";
    return oss.str();
}

CcProjection
projectCc(const trace::Tracer &base_trace)
{
    using trace::EventKind;

    CcProjection p;
    p.base = base_trace.span();

    // Scratch TDX modules so the alloc/free re-costing uses the very
    // same functions the simulator charges.
    tee::TdxModule vm(false), td(true);

    const double h2d_cc = ccRateGbps(false);
    const double d2h_cc = ccRateGbps(true);
    const double launch_scale =
        warmLaunchMean(true) / warmLaunchMean(false);
    const double decode_scale =
        static_cast<double>(kCmdProcDecodeCc)
        / static_cast<double>(kCmdProcDecodeBase);

    // Occurrence count per launch symbol, keyed by the trace's
    // interned label id (same string <=> same id within one trace).
    std::vector<int> first_seen;

    for (const auto &e : base_trace.events()) {
        if (e.encrypted_paging)
            p.uvm_seen = true;
        switch (e.kind) {
          case EventKind::MemcpyH2D:
          case EventKind::MemcpyD2H: {
            const bool d2h = e.kind == EventKind::MemcpyD2H;
            const SimTime cc_time = kMemcpySetupBase
                + kMmioDoorbellTd + kTdxHypercallLatency
                + transferTime(e.bytes, d2h ? d2h_cc : h2d_cc);
            p.mem_delta += std::max<SimTime>(0,
                                             cc_time - e.duration());
            break;
          }
          case EventKind::MemcpyD2D:
            // HBM blit unchanged; doorbell trap delta only.
            p.mem_delta += kMmioDoorbellTd - kMmioDoorbellBase;
            break;
          case EventKind::Launch:
          case EventKind::GraphLaunch: {
            // Warm part scales; the first launch of each symbol
            // additionally pays the CC module-upload delta.
            const double warm_delta =
                static_cast<double>(e.duration())
                * (launch_scale - 1.0);
            p.launch_delta += static_cast<SimTime>(warm_delta);
            // Dispatch gap (LQT share) scales too.
            p.launch_delta += static_cast<SimTime>(
                static_cast<double>(e.queue_wait)
                * (kCcDispatchFactor - 1.0));
            // First launches in the decay window pay the CC module
            // upload delta; the very first also carves a bounce
            // buffer and converts the staging window.
            if (e.label >= first_seen.size())
                first_seen.resize(e.label + 1, 0);
            const int occurrence = first_seen[e.label]++;
            if (occurrence < kFirstLaunchWindow) {
                const Bytes module =
                    e.bytes > 0 ? e.bytes : kDefaultModuleBytes;
                const SimTime base_x =
                    transferTime(module, kModuleUploadBaseGBs);
                const SimTime cc_x =
                    transferTime(module, kModuleUploadCcGBs);
                p.launch_delta += static_cast<SimTime>(
                    static_cast<double>(cc_x - base_x)
                    * std::pow(kFirstLaunchDecay, occurrence));
                if (occurrence == 0) {
                    p.launch_delta +=
                        kDmaAllocFixed + kPageConvertPerPage;
                    if (module > size::kib(256.0)) {
                        const Bytes conv =
                            std::min(module, kModuleConvertCap);
                        p.launch_delta += kPageConvertPerPage
                            * static_cast<SimTime>(
                                  conv / kUvmPageBytes);
                    }
                }
            }
            break;
          }
          case EventKind::Kernel: {
            p.kernel_delta += static_cast<SimTime>(
                static_cast<double>(e.duration())
                * kKetCcJitterMean);
            // KQT (decode) amplification.
            p.kernel_delta += static_cast<SimTime>(
                static_cast<double>(e.queue_wait)
                * (decode_scale - 1.0));
            break;
          }
          case EventKind::MallocDevice:
            p.alloc_delta += rt::deviceAllocCost(e.bytes, td)
                - rt::deviceAllocCost(e.bytes, vm);
            break;
          case EventKind::MallocHost:
            p.alloc_delta += rt::hostAllocCost(e.bytes, td)
                - rt::hostAllocCost(e.bytes, vm);
            break;
          case EventKind::MallocManaged:
            p.uvm_seen = true;
            p.alloc_delta += rt::managedAllocCost(e.bytes, td)
                - rt::managedAllocCost(e.bytes, vm);
            break;
          case EventKind::Free:
            // The trace does not distinguish managed frees; use the
            // plain path (managed apps are flagged unreliable).
            p.alloc_delta += rt::freeCost(e.bytes, td)
                - rt::freeCost(e.bytes, vm);
            break;
          case EventKind::Sync:
          case EventKind::Fault:
            break;
        }
    }

    p.projected = p.base + p.mem_delta + p.launch_delta
        + p.kernel_delta + p.alloc_delta;
    return p;
}

} // namespace hcc::perfmodel
