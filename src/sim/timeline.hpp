/**
 * @file
 * Resource timelines: the core scheduling primitive of the simulator.
 *
 * Every hardware resource (host CPU thread, copy engine, compute
 * engine, PCIe link, crypto worker, command processor) is modeled as a
 * timeline on which operations reserve contiguous busy intervals.  An
 * operation that becomes ready at time R on a resource free at F
 * starts at max(R, F); the gap F - R (when positive) is queuing delay,
 * which is exactly the quantity the paper's KQT/LQT metrics measure.
 */

#ifndef HCC_SIM_TIMELINE_HPP
#define HCC_SIM_TIMELINE_HPP

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/units.hpp"
#include "obs/registry.hpp"

namespace hcc::sim {

/** A reserved busy interval on a timeline. */
struct Interval
{
    SimTime start = 0;
    SimTime end = 0;

    SimTime duration() const { return end - start; }
};

/**
 * Single-server FIFO resource.  Reservations are strictly ordered:
 * each new reservation starts no earlier than the previous one ended.
 */
class Timeline
{
  public:
    explicit Timeline(std::string name = "timeline");

    /**
     * Reserve @p duration starting no earlier than @p ready.
     * @return the granted interval; the implied queuing delay is
     *         interval.start - ready.
     */
    Interval
    reserve(SimTime ready, SimTime duration)
    {
        HCC_ASSERT(ready >= 0, "reservation in negative time");
        HCC_ASSERT(duration >= 0, "negative duration");
        Interval iv;
        iv.start = std::max(ready, free_at_);
        iv.end = iv.start + duration;
        queuing_ += iv.start - ready;
        busy_ += duration;
        free_at_ = iv.end;
        ++count_;
        if (obs_reservations_) {
            obs_reservations_->bump(1);
            obs_busy_ps_->bump(static_cast<std::uint64_t>(duration));
            obs_queuing_ps_->bump(
                static_cast<std::uint64_t>(iv.start - ready));
        }
        return iv;
    }

    /** Earliest time a new reservation could start. */
    SimTime freeAt() const { return free_at_; }

    /** Total busy time reserved so far. */
    SimTime busyTime() const { return busy_; }

    /** Number of reservations made. */
    std::size_t reservations() const { return count_; }

    /** Sum of queuing delays suffered by reservations. */
    SimTime totalQueuing() const { return queuing_; }

    const std::string &name() const { return name_; }

    /**
     * Publish per-reservation counters under
     * "<prefix>.{reservations,busy_ps,queuing_ps}".  Members of a
     * TimelinePool attach under the same prefix, so pool stats
     * aggregate automatically.
     */
    void attachObs(obs::Registry *obs, const std::string &prefix);

    /** Reset to an idle state at time zero. */
    void reset();

    /** Snapshot support: the scheduling position (free_at_) and the
     *  accumulated busy/queuing/count stats.  Attached obs counters
     *  are registry entries and are restored by the registry. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        ar.pod(free_at_);
        ar.pod(busy_);
        ar.pod(queuing_);
        ar.pod(count_);
    }

  private:
    std::string name_;
    SimTime free_at_ = 0;
    SimTime busy_ = 0;
    SimTime queuing_ = 0;
    std::size_t count_ = 0;
    obs::Counter *obs_reservations_ = nullptr;
    obs::Counter *obs_busy_ps_ = nullptr;
    obs::Counter *obs_queuing_ps_ = nullptr;
};

/**
 * Pool of identical single-server timelines (e.g. the H100's multiple
 * copy engines): each reservation is granted on the member that can
 * start it earliest.
 */
class TimelinePool
{
  public:
    TimelinePool(std::string name, int members);

    /** Reserve on the earliest-available member. */
    Interval reserve(SimTime ready, SimTime duration)
    {
        int member = 0;
        return reserve(ready, duration, member);
    }

    /** Reserve and report which member served it. */
    Interval
    reserve(SimTime ready, SimTime duration, int &member)
    {
        // Pick the member that can *start* the work earliest, not the
        // one with the smallest freeAt(): several members free before
        // `ready` all start at `ready`, and minimizing freeAt() alone
        // parked every such reservation on the lowest-index member,
        // skewing per-member busy/queuing stats.  Ties rotate
        // round-robin from the cursor so equally-idle members share
        // the load.
        SimTime best_start = std::numeric_limits<SimTime>::max();
        for (const auto &m : members_) {
            const SimTime start = std::max(ready, m.freeAt());
            if (start < best_start) {
                best_start = start;
                if (best_start == ready)
                    break;  // can't start any earlier than `ready`
            }
        }
        // Scan from the cursor, wrapping once — same pick as a
        // modular walk, without a division per step.
        const std::size_t n = members_.size();
        std::size_t pick = 0;
        bool found = false;
        for (std::size_t i = rr_cursor_; i < n; ++i) {
            if (std::max(ready, members_[i].freeAt()) == best_start) {
                pick = i;
                found = true;
                break;
            }
        }
        if (!found) {
            for (std::size_t i = 0; i < rr_cursor_; ++i) {
                if (std::max(ready, members_[i].freeAt())
                    == best_start) {
                    pick = i;
                    break;
                }
            }
        }
        rr_cursor_ = pick + 1 == n ? 0 : pick + 1;
        member = static_cast<int>(pick);
        return members_[pick].reserve(ready, duration);
    }

    /** Attach every member's counters under one shared @p prefix. */
    void attachObs(obs::Registry *obs, const std::string &prefix);

    int size() const { return static_cast<int>(members_.size()); }
    const Timeline &member(int i) const { return members_.at(i); }
    SimTime earliestFree() const;
    void reset();

    /** Snapshot support: every member plus the round-robin cursor
     *  (the cursor is part of the deterministic pick order). */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        for (auto &m : members_)
            m.snapState(ar);
        ar.pod(rr_cursor_);
    }

  private:
    std::string name_;
    std::vector<Timeline> members_;
    /** Next member to try first when start times tie. */
    std::size_t rr_cursor_ = 0;
};

} // namespace hcc::sim

#endif // HCC_SIM_TIMELINE_HPP
