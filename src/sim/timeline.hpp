/**
 * @file
 * Resource timelines: the core scheduling primitive of the simulator.
 *
 * Every hardware resource (host CPU thread, copy engine, compute
 * engine, PCIe link, crypto worker, command processor) is modeled as a
 * timeline on which operations reserve contiguous busy intervals.  An
 * operation that becomes ready at time R on a resource free at F
 * starts at max(R, F); the gap F - R (when positive) is queuing delay,
 * which is exactly the quantity the paper's KQT/LQT metrics measure.
 */

#ifndef HCC_SIM_TIMELINE_HPP
#define HCC_SIM_TIMELINE_HPP

#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/registry.hpp"

namespace hcc::sim {

/** A reserved busy interval on a timeline. */
struct Interval
{
    SimTime start = 0;
    SimTime end = 0;

    SimTime duration() const { return end - start; }
};

/**
 * Single-server FIFO resource.  Reservations are strictly ordered:
 * each new reservation starts no earlier than the previous one ended.
 */
class Timeline
{
  public:
    explicit Timeline(std::string name = "timeline");

    /**
     * Reserve @p duration starting no earlier than @p ready.
     * @return the granted interval; the implied queuing delay is
     *         interval.start - ready.
     */
    Interval reserve(SimTime ready, SimTime duration);

    /** Earliest time a new reservation could start. */
    SimTime freeAt() const { return free_at_; }

    /** Total busy time reserved so far. */
    SimTime busyTime() const { return busy_; }

    /** Number of reservations made. */
    std::size_t reservations() const { return count_; }

    /** Sum of queuing delays suffered by reservations. */
    SimTime totalQueuing() const { return queuing_; }

    const std::string &name() const { return name_; }

    /**
     * Publish per-reservation counters under
     * "<prefix>.{reservations,busy_ps,queuing_ps}".  Members of a
     * TimelinePool attach under the same prefix, so pool stats
     * aggregate automatically.
     */
    void attachObs(obs::Registry *obs, const std::string &prefix);

    /** Reset to an idle state at time zero. */
    void reset();

  private:
    std::string name_;
    SimTime free_at_ = 0;
    SimTime busy_ = 0;
    SimTime queuing_ = 0;
    std::size_t count_ = 0;
    obs::Counter *obs_reservations_ = nullptr;
    obs::Counter *obs_busy_ps_ = nullptr;
    obs::Counter *obs_queuing_ps_ = nullptr;
};

/**
 * Pool of identical single-server timelines (e.g. the H100's multiple
 * copy engines): each reservation is granted on the member that can
 * start it earliest.
 */
class TimelinePool
{
  public:
    TimelinePool(std::string name, int members);

    /** Reserve on the earliest-available member. */
    Interval reserve(SimTime ready, SimTime duration);

    /** Reserve and report which member served it. */
    Interval reserve(SimTime ready, SimTime duration, int &member);

    /** Attach every member's counters under one shared @p prefix. */
    void attachObs(obs::Registry *obs, const std::string &prefix);

    int size() const { return static_cast<int>(members_.size()); }
    const Timeline &member(int i) const { return members_.at(i); }
    SimTime earliestFree() const;
    void reset();

  private:
    std::string name_;
    std::vector<Timeline> members_;
    /** Next member to try first when start times tie. */
    std::size_t rr_cursor_ = 0;
};

} // namespace hcc::sim

#endif // HCC_SIM_TIMELINE_HPP
