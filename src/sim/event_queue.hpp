/**
 * @file
 * A small discrete-event kernel.
 *
 * Most of the simulator uses resource timelines (timeline.hpp) and
 * needs no callbacks, but a few mechanisms are genuinely event-driven:
 * asynchronous stream completions, overlap accounting, and deferred
 * UVM fault servicing.  This queue provides deterministic ordering:
 * ties are broken by insertion sequence number.
 */

#ifndef HCC_SIM_EVENT_QUEUE_HPP
#define HCC_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"
#include "obs/registry.hpp"

namespace hcc::sim {

/** Callback invoked when its scheduled time is reached. */
using EventFn = std::function<void(SimTime now)>;

/**
 * Deterministic min-heap event queue.
 */
class EventQueue
{
  public:
    /** Schedule @p fn at absolute time @p when. */
    void schedule(SimTime when, EventFn fn);

    /** Time of the earliest pending event; -1 if empty. */
    SimTime nextTime() const;

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    /** Current simulated time (advanced by run* methods). */
    SimTime now() const { return now_; }

    /**
     * Execute events up to and including time @p until.
     * @return number of events executed.
     */
    std::size_t runUntil(SimTime until);

    /** Execute everything. @return number of events executed. */
    std::size_t runAll();

    /** Drop all pending events and reset the clock. */
    void reset();

    /**
     * Publish "sim.event_queue.{scheduled,executed}" counters and the
     * "sim.event_queue.depth" gauge (whose max watermark is the peak
     * depth); run* methods also profile their own wall-clock cost.
     */
    void attachObs(obs::Registry *obs);

  private:
    /** Record the current depth as a gauge sample at @p when. */
    void sampleDepth(SimTime when);

    obs::Registry *obs_ = nullptr;
    obs::Counter *obs_scheduled_ = nullptr;
    obs::Counter *obs_executed_ = nullptr;
    obs::Gauge *obs_depth_ = nullptr;

    struct Entry
    {
        SimTime when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t seq_ = 0;
    SimTime now_ = 0;
};

} // namespace hcc::sim

#endif // HCC_SIM_EVENT_QUEUE_HPP
