/**
 * @file
 * A small discrete-event kernel.
 *
 * Most of the simulator uses resource timelines (timeline.hpp) and
 * needs no callbacks, but a few mechanisms are genuinely event-driven:
 * asynchronous stream completions, overlap accounting, and deferred
 * UVM fault servicing.  This queue provides deterministic ordering:
 * ties are broken by insertion sequence number.
 *
 * Hot-path design (docs/PERF.md): entries hold their callback inline
 * (small-buffer optimization) when the capture is trivially copyable
 * and fits kInlineBytes; larger or non-trivial captures live in a
 * per-queue slab arena (event_arena.hpp).  Either way scheduling an
 * event performs no per-event heap allocation, and the hand-rolled
 * binary heap moves plain trivially-copyable entries instead of
 * copying std::function objects.
 */

#ifndef HCC_SIM_EVENT_QUEUE_HPP
#define HCC_SIM_EVENT_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "obs/registry.hpp"
#include "sim/event_arena.hpp"

namespace hcc::sim {

/**
 * Deterministic min-heap event queue over arena-backed callbacks.
 */
class EventQueue
{
  public:
    /** Captures up to this many bytes are stored inline. */
    static constexpr std::size_t kInlineBytes = 48;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue() { destroyPending(); }

    /**
     * Schedule callable @p fn (invoked as fn(SimTime now)) at
     * absolute time @p when.
     */
    template <typename F>
    void
    schedule(SimTime when, F &&fn)
    {
        HCC_ASSERT(when >= now_, "event scheduled in the past");
        using Fn = std::decay_t<F>;
        static_assert(alignof(Fn) <= EventArena::kGranule,
                      "over-aligned event callback");
        Entry e;
        e.when = when;
        e.seq = seq_++;
        e.invoke = [](void *state, SimTime now) {
            (*static_cast<Fn *>(state))(now);
        };
        e.trivial = std::is_trivially_copyable_v<Fn>;
        e.state_bytes = static_cast<std::uint32_t>(sizeof(Fn));
        if constexpr (std::is_trivially_copyable_v<Fn>
                      && sizeof(Fn) <= kInlineBytes
                      && alignof(Fn) <= alignof(std::max_align_t)) {
            e.state = nullptr;
            e.destroy = nullptr;
            ::new (static_cast<void *>(e.inline_buf))
                Fn(std::forward<F>(fn));
        } else {
            void *mem = arena_.allocate(sizeof(Fn));
            ::new (mem) Fn(std::forward<F>(fn));
            e.state = mem;
            e.destroy = [](EventArena &arena, void *state) {
                static_cast<Fn *>(state)->~Fn();
                arena.deallocate(state, sizeof(Fn));
            };
        }
        push(e);
        if (obs_scheduled_) {
            obs_scheduled_->bump(1);
            sampleDepth(now_);
        }
    }

    /** Time of the earliest pending event; -1 if empty. */
    SimTime
    nextTime() const
    {
        return heap_.empty() ? -1 : heap_.front().when;
    }

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    /** Current simulated time (advanced by run* methods). */
    SimTime now() const { return now_; }

    /**
     * Execute events up to and including time @p until.
     * @return number of events executed.
     */
    std::size_t runUntil(SimTime until);

    /** Execute everything. @return number of events executed. */
    std::size_t runAll();

    /** Drop all pending events, reset the clock, rewind the arena. */
    void reset();

    /**
     * Publish "sim.event_queue.{scheduled,executed}" counters and the
     * "sim.event_queue.depth" gauge (whose max watermark is the peak
     * depth); run* methods also profile their own wall-clock cost.
     */
    void attachObs(obs::Registry *obs);

    /** Arena slabs allocated so far (introspection for tests). */
    std::size_t arenaSlabs() const { return arena_.slabCount(); }
    /** Arena-resident callback states (inline captures excluded). */
    std::size_t arenaLiveBlocks() const
    {
        return arena_.liveBlocks();
    }

    /** Trim untouched arena slabs back to the OS (cell teardown in
     *  long campaigns; also invoked automatically by every snapshot
     *  capture — see EventArena::releaseFreeSlabs). */
    void releaseFreeSlabs() { arena_.releaseFreeSlabs(); }

    /**
     * Whether the pending set can be snapshotted: every scheduled
     * callback must be trivially copyable, since a snapshot restores
     * captures by byte copy.  All simulator-scheduled callbacks are;
     * only hand-written test callables with non-trivial captures
     * are not.
     */
    bool
    canSnapshot() const
    {
        for (const auto &e : heap_)
            if (!e.trivial)
                return false;
        return true;
    }

    /**
     * Snapshot support (in-process restore only: entries carry their
     * invoke/destroy function pointers verbatim).  Saves the clock,
     * the tie-break sequence counter, and every pending entry with
     * its capture bytes; restoring drops the current pending set and
     * rebuilds the heap and arena from the archive.
     */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        if constexpr (Ar::kLoading) {
            destroyPending();
            heap_.clear();
            arena_.reset();
        } else {
            HCC_ASSERT(canSnapshot(),
                       "pending event callback is not snapshottable");
            // A capture marks a quiet point (the fork engine drains
            // queues before cutting), so trim arena slabs the bump
            // cursor left behind: a snapshot-tree campaign holds many
            // captured Contexts alive at once, and without this each
            // would pin its peak-watermark slab footprint for the
            // whole campaign.
            arena_.releaseFreeSlabs();
        }
        ar.pod(now_);
        ar.pod(seq_);
        const std::size_t n = ar.size(heap_.size());
        if constexpr (Ar::kLoading)
            heap_.resize(n);
        // The vector *is* the heap (a valid heap array); saving it in
        // index order restores the identical pop order.
        for (auto &e : heap_) {
            ar.pod(e.when);
            ar.pod(e.seq);
            ar.pod(e.invoke);
            ar.pod(e.destroy);
            ar.pod(e.trivial);
            ar.pod(e.state_bytes);
            if constexpr (Ar::kLoading) {
                if (e.destroy != nullptr) {
                    e.state = arena_.allocate(e.state_bytes);
                    ar.raw(e.state, e.state_bytes);
                } else {
                    e.state = nullptr;
                    ar.raw(e.inline_buf, e.state_bytes);
                }
            } else {
                ar.raw(e.statePtr(), e.state_bytes);
            }
        }
    }

  private:
    /**
     * One scheduled event.  Trivially copyable by construction: the
     * inline buffer only ever holds trivially copyable captures, so
     * heap moves are plain byte copies.
     */
    struct Entry
    {
        SimTime when;
        std::uint64_t seq;
        void (*invoke)(void *state, SimTime now);
        /** Non-null only for arena-backed states. */
        void (*destroy)(EventArena &arena, void *state);
        /** Arena block, or nullptr when the capture is inline. */
        void *state;
        /** sizeof the capture (snapshot byte-copy length). */
        std::uint32_t state_bytes;
        /** Capture is trivially copyable (snapshot-eligible). */
        bool trivial;
        alignas(std::max_align_t) unsigned char
            inline_buf[kInlineBytes];

        void *
        statePtr()
        {
            return state != nullptr ? state
                                    : static_cast<void *>(inline_buf);
        }
    };
    static_assert(std::is_trivially_copyable_v<Entry>);

    /** Min-heap order: earliest time first, FIFO within a tie. */
    static bool
    before(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void push(const Entry &entry);
    /** Remove the root (heap_ must not be empty). */
    void popTop();
    /** Run destructors of all pending arena-backed callbacks. */
    void destroyPending();

    /** Record the current depth as a gauge sample at @p when. */
    void sampleDepth(SimTime when);

    obs::Registry *obs_ = nullptr;
    obs::Counter *obs_scheduled_ = nullptr;
    obs::Counter *obs_executed_ = nullptr;
    obs::Gauge *obs_depth_ = nullptr;

    std::vector<Entry> heap_;
    EventArena arena_;
    std::uint64_t seq_ = 0;
    SimTime now_ = 0;
};

} // namespace hcc::sim

#endif // HCC_SIM_EVENT_QUEUE_HPP
