#include "sim/timeline.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"

namespace hcc::sim {

Timeline::Timeline(std::string name)
    : name_(std::move(name))
{}

void
Timeline::attachObs(obs::Registry *obs, const std::string &prefix)
{
    if (!obs)
        return;
    obs_reservations_ = &obs->counter(prefix + ".reservations");
    obs_busy_ps_ = &obs->counter(prefix + ".busy_ps");
    obs_queuing_ps_ = &obs->counter(prefix + ".queuing_ps");
}

void
Timeline::reset()
{
    free_at_ = 0;
    busy_ = 0;
    queuing_ = 0;
    count_ = 0;
}

TimelinePool::TimelinePool(std::string name, int members)
    : name_(std::move(name))
{
    if (members <= 0)
        fatal("timeline pool '%s' needs at least one member",
              name_.c_str());
    members_.reserve(static_cast<std::size_t>(members));
    for (int i = 0; i < members; ++i)
        members_.emplace_back(name_ + "[" + std::to_string(i) + "]");
}

void
TimelinePool::attachObs(obs::Registry *obs, const std::string &prefix)
{
    for (auto &m : members_)
        m.attachObs(obs, prefix);
}

SimTime
TimelinePool::earliestFree() const
{
    SimTime best = members_.front().freeAt();
    for (const auto &m : members_)
        best = std::min(best, m.freeAt());
    return best;
}

void
TimelinePool::reset()
{
    for (auto &m : members_)
        m.reset();
    rr_cursor_ = 0;
}

} // namespace hcc::sim
