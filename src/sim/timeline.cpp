#include "sim/timeline.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"

namespace hcc::sim {

Timeline::Timeline(std::string name)
    : name_(std::move(name))
{}

Interval
Timeline::reserve(SimTime ready, SimTime duration)
{
    HCC_ASSERT(ready >= 0, "reservation in negative time");
    HCC_ASSERT(duration >= 0, "negative duration");
    Interval iv;
    iv.start = std::max(ready, free_at_);
    iv.end = iv.start + duration;
    queuing_ += iv.start - ready;
    busy_ += duration;
    free_at_ = iv.end;
    ++count_;
    if (obs_reservations_) {
        obs_reservations_->add(1);
        obs_busy_ps_->add(static_cast<std::uint64_t>(duration));
        obs_queuing_ps_->add(
            static_cast<std::uint64_t>(iv.start - ready));
    }
    return iv;
}

void
Timeline::attachObs(obs::Registry *obs, const std::string &prefix)
{
    if (!obs)
        return;
    obs_reservations_ = &obs->counter(prefix + ".reservations");
    obs_busy_ps_ = &obs->counter(prefix + ".busy_ps");
    obs_queuing_ps_ = &obs->counter(prefix + ".queuing_ps");
}

void
Timeline::reset()
{
    free_at_ = 0;
    busy_ = 0;
    queuing_ = 0;
    count_ = 0;
}

TimelinePool::TimelinePool(std::string name, int members)
    : name_(std::move(name))
{
    if (members <= 0)
        fatal("timeline pool '%s' needs at least one member",
              name_.c_str());
    members_.reserve(static_cast<std::size_t>(members));
    for (int i = 0; i < members; ++i)
        members_.emplace_back(name_ + "[" + std::to_string(i) + "]");
}

Interval
TimelinePool::reserve(SimTime ready, SimTime duration)
{
    int member = 0;
    return reserve(ready, duration, member);
}

Interval
TimelinePool::reserve(SimTime ready, SimTime duration, int &member)
{
    // Pick the member that can *start* the work earliest, not the one
    // with the smallest freeAt(): several members free before `ready`
    // all start at `ready`, and minimizing freeAt() alone parked every
    // such reservation on the lowest-index member, skewing per-member
    // busy/queuing stats.  Ties rotate round-robin from the cursor so
    // equally-idle members share the load.
    SimTime best_start = std::numeric_limits<SimTime>::max();
    for (const auto &m : members_)
        best_start = std::min(best_start, std::max(ready, m.freeAt()));
    std::size_t pick = 0;
    for (std::size_t k = 0; k < members_.size(); ++k) {
        const std::size_t i = (rr_cursor_ + k) % members_.size();
        if (std::max(ready, members_[i].freeAt()) == best_start) {
            pick = i;
            break;
        }
    }
    rr_cursor_ = (pick + 1) % members_.size();
    member = static_cast<int>(pick);
    return members_[pick].reserve(ready, duration);
}

void
TimelinePool::attachObs(obs::Registry *obs, const std::string &prefix)
{
    for (auto &m : members_)
        m.attachObs(obs, prefix);
}

SimTime
TimelinePool::earliestFree() const
{
    SimTime best = members_.front().freeAt();
    for (const auto &m : members_)
        best = std::min(best, m.freeAt());
    return best;
}

void
TimelinePool::reset()
{
    for (auto &m : members_)
        m.reset();
    rr_cursor_ = 0;
}

} // namespace hcc::sim
