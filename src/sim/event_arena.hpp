/**
 * @file
 * Slab arena backing the event queue's callback states.
 *
 * Callbacks too large (or not trivially copyable, hence unsafe to
 * byte-move inside the heap) to live inline in an event-queue entry
 * get their state here instead of on the global heap: allocation is
 * a size-class free-list pop or a bump of the current 64 KiB slab,
 * and reset() rewinds the arena without returning slabs to the OS,
 * so steady-state scheduling never calls malloc.
 */

#ifndef HCC_SIM_EVENT_ARENA_HPP
#define HCC_SIM_EVENT_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/log.hpp"

namespace hcc::sim {

/**
 * Bump-pointer slab allocator with 64-byte size-class free lists.
 * Not thread-safe (one arena per queue, one queue per context).
 */
class EventArena
{
  public:
    /** Bytes per slab. */
    static constexpr std::size_t kSlabBytes = 64 * 1024;
    /** Allocation granule; also every block's alignment. */
    static constexpr std::size_t kGranule = 64;

    EventArena() = default;
    EventArena(const EventArena &) = delete;
    EventArena &operator=(const EventArena &) = delete;

    /**
     * A block of at least @p bytes, aligned to kGranule.  @p bytes
     * must not exceed kSlabBytes.
     */
    void *
    allocate(std::size_t bytes)
    {
        HCC_ASSERT(bytes > 0 && bytes <= kSlabBytes,
                   "arena block out of range");
        const std::size_t cls = sizeClass(bytes);
        if (cls < free_lists_.size() && free_lists_[cls] != nullptr) {
            FreeNode *node = free_lists_[cls];
            free_lists_[cls] = node->next;
            ++live_blocks_;
            return node;
        }
        const std::size_t block = cls * kGranule;
        while (active_ < slabs_.size()
               && kSlabBytes - cursor_ < block) {
            ++active_;
            cursor_ = 0;
        }
        if (active_ == slabs_.size()) {
            slabs_.push_back(
                std::make_unique<unsigned char[]>(kSlabBytes
                                                  + kGranule));
            cursor_ = 0;
        }
        void *p = slabBase(active_) + cursor_;
        cursor_ += block;
        ++live_blocks_;
        return p;
    }

    /** Return a block to its size-class free list. */
    void
    deallocate(void *p, std::size_t bytes)
    {
        const std::size_t cls = sizeClass(bytes);
        if (cls >= free_lists_.size())
            free_lists_.resize(cls + 1, nullptr);
        auto *node = static_cast<FreeNode *>(p);
        node->next = free_lists_[cls];
        free_lists_[cls] = node;
        HCC_ASSERT(live_blocks_ > 0, "arena double free");
        --live_blocks_;
    }

    /** Rewind to empty, keeping every slab for reuse. */
    void
    reset()
    {
        free_lists_.clear();
        active_ = 0;
        cursor_ = 0;
        live_blocks_ = 0;
    }

    /**
     * Return the slabs the bump cursor has not reached to the OS.
     * Slabs above `active_` hold no live blocks and no free-list
     * nodes (free nodes are carved from allocated blocks, which only
     * ever come from slabs at or below the cursor), so dropping them
     * is always safe.  Long campaigns call this on cell teardown,
     * and every snapshot capture calls it too (EventQueue::snapState)
     * — after a reset() it trims the arena back to one slab instead
     * of holding the peak-watermark footprint for the whole run, and
     * at capture time it keeps each live snapshot-tree Context at
     * its working-set footprint rather than its historical peak.
     */
    void
    releaseFreeSlabs()
    {
        if (slabs_.size() > active_ + 1)
            slabs_.resize(active_ + 1);
    }

    /** Slabs currently held (grows to the peak watermark; shrinks
     *  only via releaseFreeSlabs()). */
    std::size_t slabCount() const { return slabs_.size(); }
    /** Blocks currently handed out. */
    std::size_t liveBlocks() const { return live_blocks_; }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    static std::size_t
    sizeClass(std::size_t bytes)
    {
        // At least one granule so a freed block can hold a FreeNode.
        return (bytes + kGranule - 1) / kGranule;
    }

    unsigned char *
    slabBase(std::size_t slab) const
    {
        // Round the slab's storage up to the granule so every block
        // is kGranule-aligned (the slab over-allocates one granule).
        auto addr =
            reinterpret_cast<std::uintptr_t>(slabs_[slab].get());
        addr = (addr + kGranule - 1) & ~(kGranule - 1);
        return reinterpret_cast<unsigned char *>(addr);
    }

    std::vector<std::unique_ptr<unsigned char[]>> slabs_;
    /** Slab the bump cursor lives in. */
    std::size_t active_ = 0;
    /** Bump offset within the active slab. */
    std::size_t cursor_ = 0;
    /** Intrusive free list heads, indexed by size class. */
    std::vector<FreeNode *> free_lists_;
    std::size_t live_blocks_ = 0;
};

} // namespace hcc::sim

#endif // HCC_SIM_EVENT_ARENA_HPP
