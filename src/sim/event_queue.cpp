#include "sim/event_queue.hpp"

#include <utility>

#include "common/log.hpp"

namespace hcc::sim {

void
EventQueue::schedule(SimTime when, EventFn fn)
{
    HCC_ASSERT(when >= now_, "event scheduled in the past");
    heap_.push(Entry{when, seq_++, std::move(fn)});
    if (obs_scheduled_) {
        obs_scheduled_->add(1);
        sampleDepth(now_);
    }
}

SimTime
EventQueue::nextTime() const
{
    return heap_.empty() ? -1 : heap_.top().when;
}

std::size_t
EventQueue::runUntil(SimTime until)
{
    obs::ProfileScope profile(obs_, "event_queue_run");
    std::size_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        // Copy out before popping: the callback may schedule more.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        if (obs_executed_) {
            obs_executed_->add(1);
            sampleDepth(now_);
        }
        e.fn(now_);
        ++executed;
    }
    if (until > now_)
        now_ = until;
    return executed;
}

std::size_t
EventQueue::runAll()
{
    obs::ProfileScope profile(obs_, "event_queue_run");
    std::size_t executed = 0;
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        if (obs_executed_) {
            obs_executed_->add(1);
            sampleDepth(now_);
        }
        e.fn(now_);
        ++executed;
    }
    return executed;
}

void
EventQueue::reset()
{
    heap_ = {};
    seq_ = 0;
    now_ = 0;
}

void
EventQueue::attachObs(obs::Registry *obs)
{
    obs_ = obs;
    if (!obs)
        return;
    obs_scheduled_ = &obs->counter("sim.event_queue.scheduled");
    obs_executed_ = &obs->counter("sim.event_queue.executed");
    obs_depth_ = &obs->gauge("sim.event_queue.depth");
}

void
EventQueue::sampleDepth(SimTime when)
{
    obs_depth_->set(static_cast<std::int64_t>(heap_.size()), when);
}

} // namespace hcc::sim
