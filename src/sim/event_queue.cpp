#include "sim/event_queue.hpp"

#include <utility>

#include "common/log.hpp"

namespace hcc::sim {

void
EventQueue::schedule(SimTime when, EventFn fn)
{
    HCC_ASSERT(when >= now_, "event scheduled in the past");
    heap_.push(Entry{when, seq_++, std::move(fn)});
}

SimTime
EventQueue::nextTime() const
{
    return heap_.empty() ? -1 : heap_.top().when;
}

std::size_t
EventQueue::runUntil(SimTime until)
{
    std::size_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        // Copy out before popping: the callback may schedule more.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.fn(now_);
        ++executed;
    }
    if (until > now_)
        now_ = until;
    return executed;
}

std::size_t
EventQueue::runAll()
{
    std::size_t executed = 0;
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.fn(now_);
        ++executed;
    }
    return executed;
}

void
EventQueue::reset()
{
    heap_ = {};
    seq_ = 0;
    now_ = 0;
}

} // namespace hcc::sim
