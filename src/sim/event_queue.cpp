#include "sim/event_queue.hpp"

#include "common/log.hpp"

namespace hcc::sim {

void
EventQueue::push(const Entry &entry)
{
    heap_.push_back(entry);
    // Sift up.
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::popTop()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.empty())
        return;
    // Sift down.
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
        const std::size_t left = 2 * i + 1;
        if (left >= n)
            break;
        const std::size_t right = left + 1;
        std::size_t smallest = i;
        if (before(heap_[left], heap_[smallest]))
            smallest = left;
        if (right < n && before(heap_[right], heap_[smallest]))
            smallest = right;
        if (smallest == i)
            break;
        std::swap(heap_[i], heap_[smallest]);
        i = smallest;
    }
}

std::size_t
EventQueue::runUntil(SimTime until)
{
    obs::ProfileScope profile(obs_, "event_queue_run");
    std::size_t executed = 0;
    while (!heap_.empty() && heap_.front().when <= until) {
        // Copy out before popping: the callback may schedule more.
        Entry e = heap_.front();
        popTop();
        now_ = e.when;
        if (obs_executed_) {
            obs_executed_->bump(1);
            sampleDepth(now_);
        }
        e.invoke(e.statePtr(), now_);
        if (e.destroy != nullptr)
            e.destroy(arena_, e.state);
        ++executed;
    }
    if (until > now_)
        now_ = until;
    return executed;
}

std::size_t
EventQueue::runAll()
{
    obs::ProfileScope profile(obs_, "event_queue_run");
    std::size_t executed = 0;
    while (!heap_.empty()) {
        Entry e = heap_.front();
        popTop();
        now_ = e.when;
        if (obs_executed_) {
            obs_executed_->bump(1);
            sampleDepth(now_);
        }
        e.invoke(e.statePtr(), now_);
        if (e.destroy != nullptr)
            e.destroy(arena_, e.state);
        ++executed;
    }
    return executed;
}

void
EventQueue::destroyPending()
{
    for (auto &e : heap_) {
        if (e.destroy != nullptr)
            e.destroy(arena_, e.state);
    }
}

void
EventQueue::reset()
{
    destroyPending();
    heap_.clear();
    arena_.reset();
    seq_ = 0;
    now_ = 0;
}

void
EventQueue::attachObs(obs::Registry *obs)
{
    obs_ = obs;
    if (!obs)
        return;
    obs_scheduled_ = &obs->counter("sim.event_queue.scheduled");
    obs_executed_ = &obs->counter("sim.event_queue.executed");
    obs_depth_ = &obs->gauge("sim.event_queue.depth");
}

void
EventQueue::sampleDepth(SimTime when)
{
    obs_depth_->set(static_cast<std::int64_t>(heap_.size()), when);
}

} // namespace hcc::sim
