#include "obs/registry.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "snap/archive.hpp"

namespace hcc::obs {

void
Gauge::decimate()
{
    // Keep every other retained sample, in place.
    const std::size_t kept = (samples_.size() + 1) / 2;
    for (std::size_t i = 1; i < kept; ++i)
        samples_[i] = samples_[2 * i];
    dropped_ += samples_.size() - kept;
    samples_.resize(kept);
    stride_ *= 2;
    skip_ = 0;
}

namespace {

const char *
kindName(Registry::Kind kind)
{
    switch (kind) {
      case Registry::Kind::Counter: return "counter";
      case Registry::Kind::Gauge: return "gauge";
      case Registry::Kind::Distribution: return "distribution";
    }
    return "?";
}

} // namespace

Registry::Entry &
Registry::entry(const std::string &name, Kind kind)
{
    if (name.empty())
        fatal("stat name must not be empty");
    auto [it, inserted] = stats_.try_emplace(name);
    Entry &e = it->second;
    if (inserted) {
        e.kind = kind;
        switch (kind) {
          case Kind::Counter:
            e.counter = std::make_unique<Counter>();
            break;
          case Kind::Gauge:
            e.gauge = std::make_unique<Gauge>();
            break;
          case Kind::Distribution:
            e.distribution = std::make_unique<Distribution>();
            break;
        }
    } else if (e.kind != kind) {
        fatal("stat '%s' already registered as a %s, requested as %s",
              name.c_str(), kindName(e.kind), kindName(kind));
    }
    return e;
}

Counter &
Registry::counter(const std::string &name)
{
    return *entry(name, Kind::Counter).counter;
}

Gauge &
Registry::gauge(const std::string &name)
{
    return *entry(name, Kind::Gauge).gauge;
}

Distribution &
Registry::distribution(const std::string &name)
{
    return *entry(name, Kind::Distribution).distribution;
}

bool
Registry::contains(const std::string &name) const
{
    return stats_.find(name) != stats_.end();
}

std::unique_ptr<Registry>
Registry::clone() const
{
    // Direct deep copy (the fork engine clones once per campaign
    // cell, so this skips the archive round-trip).  Entries arrive
    // in map order, so inserting with an end() hint is O(1) each.
    auto out = std::make_unique<Registry>();
    for (const auto &[name, e] : stats_) {
        Entry copy;
        copy.kind = e.kind;
        switch (e.kind) {
          case Kind::Counter:
            copy.counter = std::make_unique<Counter>();
            copy.counter->bump(e.counter->value());
            break;
          case Kind::Gauge:
            copy.gauge = std::make_unique<Gauge>(*e.gauge);
            break;
          case Kind::Distribution:
            copy.distribution =
                std::make_unique<Distribution>(*e.distribution);
            break;
        }
        out->stats_.emplace_hint(out->stats_.end(), name,
                                 std::move(copy));
    }
    return out;
}

Registry &
Registry::discard()
{
    // Thread-local rather than process-global: components built
    // without a registry (tests, ad-hoc benches) route updates here,
    // and two SimContexts constructing on different sweep workers
    // must not race on one shared map.  Discarded stats are never
    // read back, so per-thread sinks are indistinguishable.
    thread_local Registry sink;
    return sink;
}

ProfileScope::ProfileScope(Registry *reg, const std::string &name)
{
    if (!reg)
        return;
    dist_ = &reg->distribution("host.profile." + name + "_us");
    start_ = std::chrono::steady_clock::now();
}

ProfileScope::~ProfileScope()
{
    if (!dist_)
        return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    dist_->add(std::chrono::duration<double, std::micro>(elapsed)
                   .count());
}

} // namespace hcc::obs
