/**
 * @file
 * hcc::obs — the simulator-wide metrics registry (gem5-flavoured
 * hierarchical statistics).
 *
 * Every instrumented component publishes named stats under a dotted
 * path ("tee.bounce.bytes_h2d", "gpu.uvm.bytes_migrated", ...).  A
 * Registry is owned per simulated guest (rt::Context) so that base
 * and CC runs of a compare never mix, and the whole inventory can be
 * dumped deterministically after a run (stats_io.hpp), diffed against
 * a baseline (`hccsim stats-diff`), or rendered as Perfetto counter
 * tracks alongside the event timeline (trace/export.hpp).
 *
 * Three stat kinds:
 *  - Counter: monotonically increasing unsigned count (events, bytes,
 *    simulated picoseconds).
 *  - Gauge: signed instantaneous level (queue depth, pool occupancy)
 *    with min/max watermarks; when a simulated timestamp accompanies
 *    an update, the (time, value) pair is retained as a sample so the
 *    trace exporter can draw a counter track.
 *  - Distribution: running summary (count/sum/min/max/mean) of a
 *    stream of values.
 *
 * Stats whose path starts with "host." hold *wall-clock* host
 * measurements (ProfileScope) and are excluded from deterministic
 * dumps: they profile the simulator itself, not the simulation.
 *
 * Thread safety: stat *creation* (counter()/gauge()/...) is not
 * thread-safe — components grab their handles up front on the main
 * thread.  Counter *updates* are atomic (relaxed), because the
 * SecureChannel crypto worker pool bumps seal/open counters from
 * multiple threads; Gauge and Distribution updates remain
 * main-thread-only.
 */

#ifndef HCC_OBS_REGISTRY_HPP
#define HCC_OBS_REGISTRY_HPP

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace hcc::obs {

/**
 * Monotonically increasing event/byte/time-sum counter.  Updates are
 * relaxed-atomic so parallel crypto workers can share one counter;
 * reads on the main thread after joining the workers see the total.
 */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Single-writer fast path: plain load + store instead of an
     * atomic read-modify-write (which is a full bus-locked operation
     * on x86 and dominates tight simulation loops).  Only valid for
     * counters updated from one thread at a time — the rule all
     * stats except the crypto worker-pool counters already follow
     * (see file header).
     */
    void bump(std::uint64_t n = 1)
    {
        value_.store(value_.load(std::memory_order_relaxed) + n,
                     std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Snapshot support: the count (atomics archive by value). */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        std::uint64_t v = value();
        ar.pod(v);
        if constexpr (Ar::kLoading)
            value_.store(v, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/**
 * Instantaneous signed level with watermarks and optional timed
 * samples for counter-track rendering.
 */
class Gauge
{
  public:
    /** One retained (simulated time, level) observation. */
    struct Sample
    {
        SimTime ts = 0;
        std::int64_t value = 0;
    };

    /**
     * Retention bound.  Below it every accepted change is kept; on
     * reaching it the series is decimated in place (every other
     * sample kept) and the retention stride doubles, so memory stays
     * bounded while coverage of the whole run is preserved.  The
     * process is a pure function of the change sequence, hence
     * deterministic.
     */
    static constexpr std::size_t kMaxSamples = 1 << 16;

    /**
     * Set the level; @p when >= 0 additionally records a sample at
     * that simulated time (consecutive equal levels are coalesced).
     */
    void
    set(std::int64_t v, SimTime when = -1)
    {
        const bool changed = !touched_ || v != value_;
        value_ = v;
        if (!touched_) {
            min_ = max_ = v;
            touched_ = true;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        if (when < 0 || !changed)
            return;
        if (stride_ > 1 && ++skip_ < stride_) {
            ++dropped_;
            return;
        }
        skip_ = 0;
        samples_.push_back({when, v});
        if (samples_.size() >= kMaxSamples)
            decimate();
    }

    /** Relative update, same sampling semantics as set(). */
    void adjust(std::int64_t delta, SimTime when = -1)
    {
        set(value_ + delta, when);
    }

    std::int64_t value() const { return value_; }
    std::int64_t min() const { return min_; }
    std::int64_t max() const { return max_; }

    const std::vector<Sample> &samples() const { return samples_; }
    /** Accepted changes not retained (decimated or strided out). */
    std::uint64_t droppedSamples() const { return dropped_; }
    /** Current retention stride (1 until kMaxSamples is first hit). */
    std::uint64_t sampleStride() const { return stride_; }

    /** Snapshot support: level, watermarks, and the whole decimator
     *  state (retained samples, stride, skip phase) — a restored
     *  gauge continues the identical deterministic sample series. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        ar.pod(value_);
        ar.pod(min_);
        ar.pod(max_);
        ar.pod(touched_);
        ar.podVec(samples_);
        ar.pod(dropped_);
        ar.pod(stride_);
        ar.pod(skip_);
    }

  private:
    /** Halve the retained series in place and double the stride. */
    void decimate();

    std::int64_t value_ = 0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
    bool touched_ = false;
    std::vector<Sample> samples_;
    std::uint64_t dropped_ = 0;
    std::uint64_t stride_ = 1;
    /** Accepted changes since the last retained sample. */
    std::uint64_t skip_ = 0;
};

/** Running summary of a value stream (count/sum/min/max/mean). */
class Distribution
{
  public:
    void add(double x) { stats_.add(x); }

    std::size_t count() const { return stats_.count(); }
    double sum() const { return stats_.sum(); }
    double mean() const { return stats_.mean(); }
    double min() const { return stats_.min(); }
    double max() const { return stats_.max(); }

    /** Snapshot support. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        stats_.snapState(ar);
    }

  private:
    RunningStats stats_;
};

/**
 * Name -> stat map with gem5-style dotted paths.  Stats are created
 * on first access and live as long as the registry; handles returned
 * by counter()/gauge()/distribution() are stable.
 */
class Registry
{
  public:
    /** Stat kinds, as stored and as serialized ("type" field). */
    enum class Kind { Counter, Gauge, Distribution };

    /** Get or create; fatal if @p name exists with another kind. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Distribution &distribution(const std::string &name);

    /** Whether any stat named @p name exists. */
    bool contains(const std::string &name) const;

    std::size_t size() const { return stats_.size(); }

    /** One registered stat (exactly one pointer is non-null). */
    struct Entry
    {
        Kind kind = Kind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Distribution> distribution;
    };

    /** Stats in name order (std::map iteration is sorted). */
    const std::map<std::string, Entry> &entries() const
    {
        return stats_;
    }

    /**
     * Per-thread sink for components constructed without a registry:
     * updates land here and are never dumped.  Keeps instrumentation
     * branch-free (see orDiscard()) and race-free when contexts are
     * constructed on parallel sweep workers.
     */
    static Registry &discard();

    /**
     * Snapshot support.  Saving records every entry's name, kind and
     * value state.  Restoring writes the captured values back into
     * the *same* entries — handles returned before the capture stay
     * valid — and erases entries created after the capture (lazily
     * registered fault.* or critpath.* stats from a replayed
     * suffix), so a restored run can never see or dump a stat its
     * prefix did not create.  Holders of handles to post-capture
     * entries must drop them on restore (fault::Injector does).
     */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        if constexpr (Ar::kLoading) {
            const std::size_t n = ar.size(0);
            // Names arrive in map (sorted) order; walk both sorted
            // sequences and drop live entries the archive lacks.
            auto it = stats_.begin();
            for (std::size_t i = 0; i < n; ++i) {
                std::string name;
                std::uint32_t kind = 0;
                ar.str(name);
                ar.pod(kind);
                while (it != stats_.end() && it->first < name)
                    it = stats_.erase(it);
                Entry &e = entry(name, static_cast<Kind>(kind));
                if (it == stats_.end() || it->first != name)
                    it = stats_.find(name);
                ++it;
                switch (e.kind) {
                  case Kind::Counter: e.counter->snapState(ar); break;
                  case Kind::Gauge: e.gauge->snapState(ar); break;
                  case Kind::Distribution:
                    e.distribution->snapState(ar);
                    break;
                }
            }
            while (it != stats_.end())
                it = stats_.erase(it);
        } else {
            ar.size(stats_.size());
            for (auto &[name, e] : stats_) {
                std::string n = name;
                ar.str(n);
                std::uint32_t kind = static_cast<std::uint32_t>(e.kind);
                ar.pod(kind);
                switch (e.kind) {
                  case Kind::Counter: e.counter->snapState(ar); break;
                  case Kind::Gauge: e.gauge->snapState(ar); break;
                  case Kind::Distribution:
                    e.distribution->snapState(ar);
                    break;
                }
            }
        }
    }

    /**
     * Deep value copy (fresh Counter/Gauge/Distribution objects).
     * Forked campaign cells share one live registry; each cell's
     * published stats must survive the next cell's restore, so the
     * engine clones the registry into every WorkloadResult.
     */
    std::unique_ptr<Registry> clone() const;

  private:
    Entry &entry(const std::string &name, Kind kind);

    std::map<std::string, Entry> stats_;
};

/** Resolve an optional registry to a usable one. */
inline Registry &
orDiscard(Registry *reg)
{
    return reg ? *reg : Registry::discard();
}

/**
 * RAII wall-clock timer over one of the *simulator's* hot paths
 * (crypto, event processing, a whole workload run).  Records elapsed
 * microseconds into the distribution "host.profile.<name>_us" — a
 * host.* path, so profiles never pollute deterministic stat dumps.
 */
class ProfileScope
{
  public:
    /** @param reg may be null: the scope then measures nothing. */
    ProfileScope(Registry *reg, const std::string &name);
    ~ProfileScope();

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    Distribution *dist_ = nullptr;
    std::chrono::steady_clock::time_point start_;
};

} // namespace hcc::obs

#endif // HCC_OBS_REGISTRY_HPP
