/**
 * @file
 * Serialization and regression-diffing of obs::Registry contents.
 *
 * The JSON dump is *deterministic*: stats are emitted in name order,
 * integers exactly, doubles in shortest round-trip form, and host.*
 * wall-clock stats are excluded unless asked for — so two runs with
 * the same seed produce byte-identical files, which is what makes
 * `hccsim stats-diff` a usable CI regression gate.
 *
 * Dump shape:
 * @code
 * {
 *   "hccsim_stats_version": 1,
 *   "stats": {
 *     "gpu.uvm.bytes_migrated": {"type": "counter", "value": 4096},
 *     "tee.bounce.occupancy": {"type": "gauge", "value": 0,
 *                              "min": 0, "max": 3, "samples": 42},
 *     "x.y": {"type": "distribution", "count": 2, "sum": 3.5,
 *             "min": 1.0, "max": 2.5, "mean": 1.75}
 *   }
 * }
 * @endcode
 */

#ifndef HCC_OBS_STATS_IO_HPP
#define HCC_OBS_STATS_IO_HPP

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "obs/registry.hpp"

namespace hcc::obs {

/**
 * One (prefix, registry) section of a dump.  `hccsim run` dumps a
 * single unprefixed section; `hccsim compare` dumps the base and CC
 * registries under "base." / "cc." prefixes.
 */
using StatsSections =
    std::vector<std::pair<std::string, const Registry *>>;

/**
 * Write the deterministic JSON dump.
 * @param extra_members pre-rendered top-level JSON member text (e.g.
 *        `"critical_path": {...}`) emitted verbatim between the
 *        version field and "stats"; "" emits nothing.  The parser
 *        ignores unknown top-level members, so dumps stay loadable.
 */
void writeStatsJson(std::ostream &os, const StatsSections &sections,
                    bool include_host = false,
                    const std::string &extra_members = "");

/** Single-registry convenience, as a string. */
std::string statsJson(const Registry &registry,
                      bool include_host = false);

/** One stat as loaded back from a dump: its type + numeric fields. */
struct StatSnapshot
{
    std::string type;
    /** Field name ("value", "max", ...) -> numeric value. */
    std::map<std::string, double> fields;
};

/** A whole dump, keyed by stat name. */
using StatsMap = std::map<std::string, StatSnapshot>;

/**
 * Parse a dump produced by writeStatsJson.
 * @return the map, or a ParseError status on malformed input.
 */
Result<StatsMap> parseStatsJson(const std::string &text);

/** Load and parse a dump file (IoError when unreadable). */
Result<StatsMap> loadStatsFile(const std::string &path);

/** One detected difference between two dumps. */
struct StatDrift
{
    std::string stat;
    std::string field;     //!< "" for presence/type problems
    double baseline = 0.0;
    double current = 0.0;
    /** "drift", "missing", "added", or "type". */
    std::string what;

    double delta() const { return current - baseline; }
    /** Relative drift against the larger magnitude (0 when equal). */
    double relative() const;
};

/** Result of diffing two dumps. */
struct StatsDiffResult
{
    std::vector<StatDrift> drifts;
    std::size_t compared = 0;

    bool pass() const { return drifts.empty(); }

    /** Human-readable table of the drifts (or an all-clear line). */
    std::string report() const;
};

/**
 * Compare @p current against @p baseline.  A numeric field matches
 * when |cur - base| <= tolerance * max(|cur|, |base|); stats or
 * fields present on only one side, and type changes, always count as
 * drift.
 * @param tolerance relative fraction (0.05 = 5%); 0 demands equality.
 */
StatsDiffResult diffStats(const StatsMap &baseline,
                          const StatsMap &current,
                          double tolerance = 0.0);

} // namespace hcc::obs

#endif // HCC_OBS_STATS_IO_HPP
