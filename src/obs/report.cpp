#include "obs/report.hpp"

#include <ostream>
#include <sstream>
#include <utility>

namespace hcc::obs {

std::string
ReportWriter::member(const std::string &name,
                     const std::string &rendered_json)
{
    return "\"" + name + "\": " + rendered_json;
}

ReportWriter &
ReportWriter::addSection(std::string prefix, const Registry *registry)
{
    sections_.emplace_back(std::move(prefix), registry);
    return *this;
}

ReportWriter &
ReportWriter::addMember(const std::string &name,
                        const std::string &rendered_json)
{
    return addRenderedMember(member(name, rendered_json));
}

ReportWriter &
ReportWriter::addRenderedMember(std::string member_text)
{
    members_.push_back(std::move(member_text));
    return *this;
}

ReportWriter &
ReportWriter::includeHost(bool on)
{
    include_host_ = on;
    return *this;
}

void
ReportWriter::write(std::ostream &os) const
{
    // Compose the members exactly as the hand-spliced extra_members
    // strings did: writeStatsJson indents the first member and the
    // joiner continues the same two-space indent, so a multi-member
    // report reads `  a,\n  b,\n` — byte-identical to the historic
    // single-member dumps when only one member is present.
    std::string members;
    for (const auto &m : members_) {
        if (!members.empty())
            members += ",\n  ";
        members += m;
    }
    writeStatsJson(os, sections_, include_host_, members);
}

std::string
ReportWriter::str() const
{
    std::ostringstream oss;
    write(oss);
    return oss.str();
}

} // namespace hcc::obs
