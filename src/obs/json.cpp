#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace hcc::obs::json {

const Value *
Value::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

/** Nesting limit: stats dumps and traces are at most ~4 deep. */
constexpr int kMaxDepth = 64;

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {}

    bool
    run(Value &out)
    {
        skipWs();
        if (!value(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        error_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    eat(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("bad literal, expected '") + word
                        + "'");
        pos_ += len;
        return true;
    }

    bool
    hex4(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return fail("truncated \\u escape");
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    /** Append code point as UTF-8 (surrogate pairs not recombined). */
    static void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xc0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            s += static_cast<char>(0xe0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    string(std::string &out)
    {
        if (!eat('"'))
            return fail("expected '\"'");
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned cp = 0;
                if (!hex4(cp))
                    return false;
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    number(Value &out)
    {
        const std::size_t start = pos_;
        if (eat('-')) {}
        while (pos_ < text_.size()
               && std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (eat('.')) {
            while (pos_ < text_.size()
                   && std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size()
            && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size()
                && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size()
                   && std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        out.number = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0') {
            pos_ = start;
            return fail("bad number");
        }
        out.type = Value::Type::Number;
        return true;
    }

    bool
    value(Value &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{': return object(out, depth);
          case '[': return array(out, depth);
          case '"':
            out.type = Value::Type::String;
            return string(out.string);
          case 't':
            out.type = Value::Type::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.type = Value::Type::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.type = Value::Type::Null;
            return literal("null", 4);
          default:
            return number(out);
        }
    }

    bool
    object(Value &out, int depth)
    {
        out.type = Value::Type::Object;
        eat('{');
        skipWs();
        if (eat('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (!eat(':'))
                return fail("expected ':'");
            skipWs();
            Value v;
            if (!value(v, depth + 1))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (eat(','))
                continue;
            if (eat('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(Value &out, int depth)
    {
        out.type = Value::Type::Array;
        eat('[');
        skipWs();
        if (eat(']'))
            return true;
        while (true) {
            skipWs();
            Value v;
            if (!value(v, depth + 1))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (eat(','))
                continue;
            if (eat(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string &error)
{
    return Parser(text, error).run(out);
}

} // namespace hcc::obs::json
