/**
 * @file
 * ReportWriter: builder for the deterministic stats report document.
 *
 * Every stats-emitting output path (`run/compare/critical --stats-out`,
 * the faults campaign dump, the serve curve dump) produces the same
 * document shape — a version field, optional typed top-level members
 * (the critical-path block, the serve latency curves), then the
 * name-ordered "stats" object.  Before this class each path spliced
 * its members into writeStatsJson's pre-rendered `extra_members`
 * string by hand; ReportWriter owns that composition, so adding a
 * member is one call instead of string surgery, and every path stays
 * byte-identical with the dumps the CI baselines were captured from
 * (write() delegates to writeStatsJson, the single serializer).
 */

#ifndef HCC_OBS_REPORT_HPP
#define HCC_OBS_REPORT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/stats_io.hpp"

namespace hcc::obs {

/** See file comment. */
class ReportWriter
{
  public:
    /** Render one top-level member, `"name": <rendered_json>`.  The
     *  shared renderer, so members composed outside a ReportWriter
     *  (e.g. trace::criticalPathJsonMember) match its output. */
    static std::string member(const std::string &name,
                              const std::string &rendered_json);

    /** Append a stats section: @p registry's stats under @p prefix
     *  ("" for an unprefixed single-run dump, "base."/"cc." for
     *  compare, "cell<i>.<label>." for per-cell campaign dumps).
     *  Sections are emitted in insertion order. */
    ReportWriter &addSection(std::string prefix,
                             const Registry *registry);

    /** Append the top-level member `"name": <rendered_json>`. */
    ReportWriter &addMember(const std::string &name,
                            const std::string &rendered_json);

    /** Append a pre-rendered member (already `"name": ...`). */
    ReportWriter &addRenderedMember(std::string member_text);

    /** Include host.* wall-clock stats (default: excluded, so dumps
     *  stay deterministic). */
    ReportWriter &includeHost(bool on);

    /** Write the document. */
    void write(std::ostream &os) const;

    /** The document as a string. */
    std::string str() const;

  private:
    StatsSections sections_;
    std::vector<std::string> members_;
    bool include_host_ = false;
};

} // namespace hcc::obs

#endif // HCC_OBS_REPORT_HPP
