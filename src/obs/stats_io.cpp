#include "obs/stats_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/log.hpp"
#include "common/table.hpp"
#include "obs/json.hpp"

namespace hcc::obs {

namespace {

/** Shortest round-trip decimal form of a double (deterministic). */
std::string
formatDouble(double v)
{
    char buf[64];
    const auto res =
        std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

bool
isHostStat(const std::string &name)
{
    return name.rfind("host.", 0) == 0;
}

/** Stat names are dotted identifiers; escape defensively anyway. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

void
writeEntry(std::ostream &os, const Registry::Entry &e)
{
    switch (e.kind) {
      case Registry::Kind::Counter:
        os << "{\"type\": \"counter\", \"value\": "
           << e.counter->value() << "}";
        break;
      case Registry::Kind::Gauge:
        os << "{\"type\": \"gauge\", \"value\": " << e.gauge->value()
           << ", \"min\": " << e.gauge->min()
           << ", \"max\": " << e.gauge->max()
           << ", \"samples\": " << e.gauge->samples().size() << "}";
        break;
      case Registry::Kind::Distribution:
        os << "{\"type\": \"distribution\", \"count\": "
           << e.distribution->count()
           << ", \"sum\": " << formatDouble(e.distribution->sum())
           << ", \"min\": " << formatDouble(e.distribution->min())
           << ", \"max\": " << formatDouble(e.distribution->max())
           << ", \"mean\": " << formatDouble(e.distribution->mean())
           << "}";
        break;
    }
}

} // namespace

void
writeStatsJson(std::ostream &os, const StatsSections &sections,
               bool include_host, const std::string &extra_members)
{
    os << "{\n  \"hccsim_stats_version\": 1,\n";
    if (!extra_members.empty())
        os << "  " << extra_members << ",\n";
    os << "  \"stats\": {";
    bool first = true;
    for (const auto &[prefix, registry] : sections) {
        HCC_ASSERT(registry != nullptr, "null registry in dump");
        for (const auto &[name, entry] : registry->entries()) {
            if (!include_host && isHostStat(name))
                continue;
            os << (first ? "\n" : ",\n");
            first = false;
            os << "    \"" << jsonEscape(prefix + name) << "\": ";
            writeEntry(os, entry);
        }
    }
    os << "\n  }\n}\n";
}

std::string
statsJson(const Registry &registry, bool include_host)
{
    std::ostringstream oss;
    writeStatsJson(oss, {{"", &registry}}, include_host);
    return oss.str();
}

Result<StatsMap>
parseStatsJson(const std::string &text)
{
    json::Value doc;
    std::string error;
    if (!json::parse(text, doc, error))
        return errorf(ErrorCode::ParseError,
                      "malformed stats JSON: %s", error.c_str());
    const json::Value *stats = doc.find("stats");
    if (stats == nullptr || !stats->isObject())
        return errorf(ErrorCode::ParseError,
                      "stats JSON has no \"stats\" object");

    StatsMap out;
    for (const auto &[name, body] : stats->object) {
        if (!body.isObject())
            return errorf(ErrorCode::ParseError,
                          "stat '%s' is not an object", name.c_str());
        StatSnapshot snap;
        for (const auto &[field, v] : body.object) {
            if (field == "type" && v.isString())
                snap.type = v.string;
            else if (v.isNumber())
                snap.fields[field] = v.number;
            else
                return errorf(ErrorCode::ParseError,
                              "stat '%s' field '%s' is not numeric",
                              name.c_str(), field.c_str());
        }
        out[name] = std::move(snap);
    }
    return out;
}

Result<StatsMap>
loadStatsFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return errorf(ErrorCode::IoError,
                      "cannot open stats file '%s'", path.c_str());
    std::ostringstream oss;
    oss << in.rdbuf();
    if (in.bad())
        return errorf(ErrorCode::IoError,
                      "failed reading stats file '%s'", path.c_str());
    return parseStatsJson(oss.str());
}

double
StatDrift::relative() const
{
    const double scale =
        std::max(std::fabs(baseline), std::fabs(current));
    if (scale == 0.0)
        return 0.0;
    return std::fabs(current - baseline) / scale;
}

std::string
StatsDiffResult::report() const
{
    std::ostringstream oss;
    if (pass()) {
        oss << "stats-diff: " << compared
            << " stats compared, no drift beyond tolerance\n";
        return oss.str();
    }
    TextTable t("stats-diff: " + std::to_string(drifts.size())
                + " drifting of " + std::to_string(compared)
                + " compared");
    t.header({"stat", "field", "baseline", "current", "drift"});
    for (const auto &d : drifts) {
        std::string drift;
        if (d.what == "drift") {
            std::ostringstream rel;
            rel.precision(3);
            rel << std::fixed << d.relative() * 100.0 << "%";
            drift = rel.str();
        } else {
            drift = d.what;
        }
        t.row({d.stat, d.field, formatDouble(d.baseline),
               formatDouble(d.current), drift});
    }
    t.print(oss);
    return oss.str();
}

StatsDiffResult
diffStats(const StatsMap &baseline, const StatsMap &current,
          double tolerance)
{
    StatsDiffResult result;

    for (const auto &[name, base] : baseline) {
        const auto it = current.find(name);
        if (it == current.end()) {
            result.drifts.push_back(
                {name, "", base.fields.count("value")
                     ? base.fields.at("value") : 0.0,
                 0.0, "missing"});
            continue;
        }
        const StatSnapshot &cur = it->second;
        ++result.compared;
        if (base.type != cur.type) {
            result.drifts.push_back({name, "type", 0.0, 0.0, "type"});
            continue;
        }
        for (const auto &[field, bval] : base.fields) {
            const auto fit = cur.fields.find(field);
            if (fit == cur.fields.end()) {
                result.drifts.push_back(
                    {name, field, bval, 0.0, "missing"});
                continue;
            }
            StatDrift d{name, field, bval, fit->second, "drift"};
            if (d.relative() > tolerance)
                result.drifts.push_back(d);
        }
        for (const auto &[field, cval] : cur.fields) {
            if (base.fields.find(field) == base.fields.end()) {
                result.drifts.push_back(
                    {name, field, 0.0, cval, "added"});
            }
        }
    }
    for (const auto &[name, cur] : current) {
        if (baseline.find(name) == baseline.end()) {
            result.drifts.push_back(
                {name, "", 0.0, cur.fields.count("value")
                     ? cur.fields.at("value") : 0.0,
                 "added"});
        }
    }
    return result;
}

} // namespace hcc::obs
