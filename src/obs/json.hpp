/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Just enough of RFC 8259 for the observability layer's own needs:
 * `hccsim stats-diff` reads the stats dumps the simulator writes, and
 * tests round-trip the Chrome trace export through it to prove the
 * exporters emit valid JSON.  Parse only — serialization stays with
 * the purpose-built writers (stats_io.cpp, trace/export.cpp).
 */

#ifndef HCC_OBS_JSON_HPP
#define HCC_OBS_JSON_HPP

#include <string>
#include <utility>
#include <vector>

namespace hcc::obs::json {

/** A parsed JSON value (tagged union, no clever tricks). */
struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /** Key order as written; duplicate keys are kept as written. */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** First member named @p key; nullptr if absent or not an object. */
    const Value *find(const std::string &key) const;
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage is an error).
 * @param error set to a human-readable message with an offset on
 *        failure.
 * @return whether @p out was filled.
 */
bool parse(const std::string &text, Value &out, std::string &error);

} // namespace hcc::obs::json

#endif // HCC_OBS_JSON_HPP
