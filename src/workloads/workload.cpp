#include "workloads/workload.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"

namespace hcc::workloads {

// Defined in spec.cpp; wired here so that any registry access sees
// the built-in suites without an explicit init call.
void ensureSuitesRegistered();

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    ensureSuitesRegistered();
    return registry;
}

std::unique_ptr<Workload::Resume>
Workload::runPrefix(rt::Context &, const WorkloadParams &,
                    double) const
{
    fatal("workload '%s' is not forkable", name().c_str());
}

void
Workload::runSuffix(rt::Context &, const WorkloadParams &,
                    const Resume &) const
{
    fatal("workload '%s' is not forkable", name().c_str());
}

std::unique_ptr<Workload::Resume>
Workload::runSegment(rt::Context &, const WorkloadParams &,
                     const Resume &, double) const
{
    fatal("workload '%s' is not forkable", name().c_str());
}

std::unique_ptr<Workload::Resume>
Workload::reseedResume(const Resume &, const WorkloadParams &) const
{
    // No workload-local stochastic state by default; the Context's
    // reseedAtFork() already covered everything.
    return nullptr;
}

void
WorkloadRegistry::add(std::unique_ptr<Workload> workload)
{
    HCC_ASSERT(workload != nullptr, "null workload");
    if (find(workload->name()) != nullptr)
        fatal("duplicate workload '%s'", workload->name().c_str());
    workloads_.push_back(std::move(workload));
}

const Workload *
WorkloadRegistry::find(const std::string &name) const
{
    for (const auto &w : workloads_) {
        if (w->name() == name)
            return w.get();
    }
    return nullptr;
}

const Workload &
WorkloadRegistry::get(const std::string &name) const
{
    const Workload *w = find(name);
    if (w == nullptr)
        fatal("unknown workload '%s'", name.c_str());
    return *w;
}

std::vector<const Workload *>
WorkloadRegistry::all() const
{
    std::vector<const Workload *> out;
    out.reserve(workloads_.size());
    for (const auto &w : workloads_)
        out.push_back(w.get());
    return out;
}

std::vector<const Workload *>
WorkloadRegistry::ofSuite(const std::string &suite) const
{
    std::vector<const Workload *> out;
    for (const auto &w : workloads_) {
        if (w->suite() == suite)
            out.push_back(w.get());
    }
    return out;
}

WorkloadResult
runWorkload(const Workload &workload, const rt::SystemConfig &config,
            const WorkloadParams &params)
{
    if (params.uvm && !workload.supportsUvm()) {
        fatal("workload '%s' has no UVM variant",
              workload.name().c_str());
    }
    rt::Context ctx(config);
    const auto wall_start = std::chrono::steady_clock::now();
    {
        obs::ProfileScope profile(&ctx.obs(), "workload_run");
        workload.run(ctx, params);
    }
    // Self-reported simulator throughput.  host.* gauges carry
    // wall-clock measurements and are excluded from deterministic
    // stats dumps, so this never perturbs byte-identity.
    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    if (wall_s > 0.0 && !ctx.tracer().empty()) {
        ctx.obs()
            .gauge("host.sim.events_per_sec")
            .set(static_cast<std::int64_t>(
                     static_cast<double>(ctx.tracer().size())
                     / wall_s),
                 -1);  // no timed sample: keep counter tracks clean
    }

    WorkloadResult result;
    result.name = workload.name();
    result.cc = config.cc;
    result.uvm = params.uvm;
    // The Context dies with this frame, so take the trace rather
    // than copying the full event store.
    result.trace = std::move(ctx.tracer());
    // One traversal yields the Fig. 3 metrics *and* the critical
    // path; the registry supplies the crypto/link busy split.
    auto crit = trace::analyzeCritical(result.trace, &ctx.obs());
    result.metrics = std::move(crit.metrics);
    result.critical = std::move(crit.path);
    trace::publishCriticalPath(result.critical, ctx.obs());
    result.tdx = ctx.tdx().stats();
    result.end_to_end = result.metrics.end_to_end;
    result.stats = ctx.obsPtr();
    return result;
}

WorkloadResult
runWorkload(const std::string &name, const rt::SystemConfig &config,
            const WorkloadParams &params)
{
    return runWorkload(WorkloadRegistry::instance().get(name), config,
                       params);
}

const std::vector<std::string> &
evaluationApps()
{
    static const std::vector<std::string> apps = {
        // Polybench
        "2dconv", "3dconv", "2mm", "3mm", "atax", "bicg", "corr",
        "gemm", "gramschm", "mvt", "syrk",
        // Rodinia
        "bfs", "dwt2d", "gaussian", "hotspot", "kmeans", "nw",
        "pathfinder", "sc",
        // Graph suites + CNN microapp
        "graphbig_bfs", "graphbig_pr", "tigr_bfs", "tigr_sssp", "cnn",
    };
    return apps;
}

const std::vector<std::string> &
uvmApps()
{
    static const std::vector<std::string> apps = {
        "2dconv", "3dconv", "2mm", "3mm", "atax", "bicg", "corr",
        "gemm", "gramschm", "mvt", "syrk", "bfs",
        "graphbig_bfs", "graphbig_pr", "tigr_bfs", "tigr_sssp",
    };
    return apps;
}

} // namespace hcc::workloads
