/**
 * @file
 * Graph-processing application specs: GraphBIG [94] and Tigr [95].
 *
 * Graph apps are the UVM-heavy end of the evaluation: irregular
 * access over large adjacency structures, so in managed mode most of
 * the footprint faults over during traversal.
 */

#include "common/units.hpp"
#include "workloads/spec.hpp"

namespace hcc::workloads {

namespace {

using hcc::size::mib;
using hcc::time::us;

} // namespace

void
registerGraphSuites()
{
    // GraphBIG BFS: level-synchronous, two kernels per level.
    registerSpec(AppSpec{
        .name = "graphbig_bfs",
        .suite = "graphbig",
        .pinned_host = false,
        .inputs = {mib(96)},
        .outputs = {mib(8)},
        .d2d_copies = {},
        .scratch = mib(8),
        .phases = {{"bfs_topdown_kernel", 15, us(400.0), 0.5, 0,
                    false},
                   {"bfs_update_kernel", 15, us(400.0), 0.4, 0,
                    false}},
        .uvm_capable = true,
        .uvm_touch_override = mib(104),
    });

    // GraphBIG PageRank: heavier per-iteration kernels.
    registerSpec(AppSpec{
        .name = "graphbig_pr",
        .suite = "graphbig",
        .pinned_host = false,
        .inputs = {mib(96)},
        .outputs = {mib(8)},
        .d2d_copies = {},
        .scratch = mib(16),
        .phases = {{"pagerank_kernel", 30, us(600.0), 0.25, 0,
                    false}},
        .uvm_capable = true,
        .uvm_touch_override = mib(104),
    });

    // Tigr BFS: transformed-graph traversal.
    registerSpec(AppSpec{
        .name = "tigr_bfs",
        .suite = "tigr",
        .pinned_host = false,
        .inputs = {mib(64)},
        .outputs = {mib(4)},
        .d2d_copies = {},
        .scratch = mib(4),
        .phases = {{"tigr_bfs_kernel", 18, us(250.0), 0.5, 0, false},
                   {"tigr_bfs_relabel", 18, us(250.0), 0.4, 0,
                    false}},
        .uvm_capable = true,
        .uvm_touch_override = mib(68),
    });

    // Tigr SSSP: more rounds, single kernel per round.
    registerSpec(AppSpec{
        .name = "tigr_sssp",
        .suite = "tigr",
        .pinned_host = false,
        .inputs = {mib(64)},
        .outputs = {mib(4)},
        .d2d_copies = {},
        .scratch = mib(4),
        .phases = {{"tigr_sssp_kernel", 40, us(350.0), 0.4, 0,
                    false}},
        .uvm_capable = true,
        .uvm_touch_override = mib(68),
    });
}

} // namespace hcc::workloads
