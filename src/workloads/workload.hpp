/**
 * @file
 * Workload framework: named applications that drive the runtime API
 * with the launch/copy patterns of the paper's benchmark suites
 * (Rodinia, Polybench, UVMBench, GraphBIG, Tigr).
 *
 * Workloads are registered in a global registry at static-init time;
 * benches and tests look them up by name and run them under base and
 * CC configurations to regenerate the figures.
 */

#ifndef HCC_WORKLOADS_WORKLOAD_HPP
#define HCC_WORKLOADS_WORKLOAD_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "runtime/context.hpp"
#include "tee/tdx.hpp"
#include "trace/analysis.hpp"
#include "trace/critpath.hpp"
#include "trace/tracer.hpp"

namespace hcc::workloads {

/** Per-run parameters. */
struct WorkloadParams
{
    /** Problem-size multiplier applied to buffers and KETs. */
    double scale = 1.0;
    /** Run the UVM (cudaMallocManaged) variant. */
    bool uvm = false;
    /** Seed for KET jitter (same seed => same kernel durations in
     *  base and CC runs, so ratios are clean). */
    std::uint64_t seed = 42;
};

/** Everything a bench needs from one run. */
struct WorkloadResult
{
    std::string name;
    bool cc = false;
    bool uvm = false;
    trace::Tracer trace;
    trace::AppMetrics metrics;
    /** Critical path + bottleneck label (critpath.hpp). */
    trace::CriticalPath critical;
    tee::TdxStats tdx;
    SimTime end_to_end = 0;
    /** The run's stats registry (shared out of the dead Context). */
    std::shared_ptr<obs::Registry> stats;
};

/**
 * Abstract workload.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short app name as the paper uses it ("2dconv", "sc", ...). */
    virtual std::string name() const = 0;
    /** Originating suite ("polybench", "rodinia", "graphbig", ...). */
    virtual std::string suite() const = 0;
    /** Whether a managed-memory variant exists. */
    virtual bool supportsUvm() const = 0;
    /** Issue the app's API calls against @p ctx. */
    virtual void run(rt::Context &ctx, const WorkloadParams &params)
        const = 0;

    // ------------------------------------------ split-phase running
    //
    // A forkable workload can run as a *prefix* (allocations, input
    // transfers and the first warm launches) followed by a *suffix*
    // (the remaining launches, final sync, output transfers and
    // frees), with the hard contract that
    //
    //     run(ctx, p)
    //  == { auto r = runPrefix(ctx, p, f); runSuffix(ctx, p, *r); }
    //
    // issues the *identical* API call sequence for every fraction f
    // in [0, 1].  The campaign fork engine (snap/fork.hpp) runs the
    // prefix once per cell group, snapshots the Context, and replays
    // only the suffix per cell.  The Resume object carries the
    // workload-local state crossing the cut (buffer handles, the KET
    // jitter stream position); it is immutable after runPrefix so one
    // instance can serve every cell forked from the same snapshot.

    /** Opaque workload state handed from runPrefix to runSuffix. */
    struct Resume
    {
        virtual ~Resume() = default;
    };

    /** Whether the split-phase protocol is implemented. */
    virtual bool forkable() const { return false; }

    /**
     * The workload's fork_after marker: the fraction of launches a
     * `--fork-point auto` prefix covers.  High for launch-dominated
     * apps (long shareable warmup), only meaningful when forkable().
     */
    virtual double defaultForkPoint() const { return 0.9; }

    /**
     * Run setup plus the first floor(total_launches * fraction)
     * launches.  Only valid when forkable().
     */
    virtual std::unique_ptr<Resume>
    runPrefix(rt::Context &ctx, const WorkloadParams &params,
              double fraction) const;

    /** Run everything run() does after the prefix cut. */
    virtual void runSuffix(rt::Context &ctx,
                           const WorkloadParams &params,
                           const Resume &resume) const;

    /**
     * Chained-fork support: advance @p from (the state at some cut)
     * to the state at @p to_fraction, issuing exactly the launches
     * run() issues between the two cuts.  The returned Resume is a
     * new object; @p from is untouched, so a snapshot-tree node can
     * keep handing it to every child.  The composition invariant
     * extends the split-phase contract: for any increasing cut path
     * f0 < f1 < ... < 1, prefix(f0) + segment(f1) + ... + suffix
     * issues the identical API call sequence as run().  Only valid
     * when forkable(); the default is fatal.
     */
    virtual std::unique_ptr<Resume>
    runSegment(rt::Context &ctx, const WorkloadParams &params,
               const Resume &from, double to_fraction) const;

    /**
     * Cross-seed fork support: re-derive the workload-local
     * stochastic state of @p resume (e.g. the KET jitter stream) for
     * @p params.seed, exactly as runPrefix under that seed would
     * have derived it.  Deterministic position state (buffer
     * handles, launch cursor) is copied unchanged.  Returns nullptr
     * when the workload keeps no seed-derived state of its own — the
     * caller then continues with @p resume as-is.  Called by the
     * fork engine right after rt::Context::reseedAtFork().
     */
    virtual std::unique_ptr<Resume>
    reseedResume(const Resume &resume,
                 const WorkloadParams &params) const;
};

/**
 * Global name -> workload registry.
 */
class WorkloadRegistry
{
  public:
    static WorkloadRegistry &instance();

    /** Register a workload (fatal on duplicate name). */
    void add(std::unique_ptr<Workload> workload);

    /** Find by name; nullptr when missing. */
    const Workload *find(const std::string &name) const;

    /** Find by name; fatal when missing. */
    const Workload &get(const std::string &name) const;

    /** All workloads in registration order. */
    std::vector<const Workload *> all() const;

    /** All workloads of one suite. */
    std::vector<const Workload *> ofSuite(const std::string &suite)
        const;

  private:
    WorkloadRegistry() = default;
    std::vector<std::unique_ptr<Workload>> workloads_;
};

/** Run @p workload under @p config and collect metrics. */
WorkloadResult runWorkload(const Workload &workload,
                           const rt::SystemConfig &config,
                           const WorkloadParams &params
                               = WorkloadParams{});

/** Convenience: run by registry name. */
WorkloadResult runWorkload(const std::string &name,
                           const rt::SystemConfig &config,
                           const WorkloadParams &params
                               = WorkloadParams{});

/**
 * The canonical evaluation app list (Figs. 5-11), in presentation
 * order.
 */
const std::vector<std::string> &evaluationApps();

/** The UVM-capable subset used in Fig. 9's UVM bars. */
const std::vector<std::string> &uvmApps();

} // namespace hcc::workloads

#endif // HCC_WORKLOADS_WORKLOAD_HPP
