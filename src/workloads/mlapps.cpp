/**
 * @file
 * ML serving apps in the workload registry.
 *
 * "llm" mirrors the fig14 microbench's slowest column — Llama-3-8B
 * on HuggingFace with BF16 weights at batch 8 (224 launches per
 * decode step) — so `hccsim run/critical --app llm` reproduces the
 * cell whose CPU-GPU serialization the paper's Sec. VII-B dissects.
 */

#include <algorithm>
#include <memory>

#include "common/log.hpp"
#include "ml/llm.hpp"
#include "workloads/workload.hpp"

namespace hcc::workloads {
namespace {

class LlmWorkload final : public Workload
{
  public:
    std::string name() const override { return "llm"; }
    std::string suite() const override { return "ml"; }
    bool supportsUvm() const override { return false; }

    void
    run(rt::Context &ctx, const WorkloadParams &params) const override
    {
        ml::serveLlm(ctx, configFor(params));
    }

    bool forkable() const override { return true; }

    // Decode launches dominate the serving session, so nearly the
    // whole schedule is shareable warmup.
    double defaultForkPoint() const override { return 0.9; }

    std::unique_ptr<Resume>
    runPrefix(rt::Context &ctx, const WorkloadParams &params,
              double fraction) const override
    {
        const ml::LlmConfig cfg = configFor(params);
        const double f = std::clamp(fraction, 0.0, 1.0);
        // The prefix cuts at a decode-step boundary: prefill plus
        // the first ~fraction of the generated tokens.
        const int warm = static_cast<int>(
            static_cast<double>(cfg.gen_len) * f);
        auto resume = std::make_unique<LlmResume>();
        resume->state = ml::llmServePrefix(ctx, cfg, warm);
        return resume;
    }

    void
    runSuffix(rt::Context &ctx, const WorkloadParams &params,
              const Resume &resume) const override
    {
        const auto *r = dynamic_cast<const LlmResume *>(&resume);
        if (!r)
            fatal("llm runSuffix got a foreign resume state");
        ml::llmServeFinish(ctx, configFor(params), r->state);
    }

    std::unique_ptr<Resume>
    runSegment(rt::Context &ctx, const WorkloadParams &params,
               const Resume &from, double to_fraction) const override
    {
        const auto *r = dynamic_cast<const LlmResume *>(&from);
        if (!r)
            fatal("llm runSegment got a foreign resume state");
        const ml::LlmConfig cfg = configFor(params);
        // Same decode-step rounding as runPrefix, so chained cuts
        // tile the serving session without gaps or overlaps.
        const double f = std::clamp(to_fraction, 0.0, 1.0);
        const int to_step = static_cast<int>(
            static_cast<double>(cfg.gen_len) * f);
        auto next = std::make_unique<LlmResume>();
        next->state = r->state;
        ml::llmServeSegment(ctx, cfg, next->state, to_step);
        return next;
    }

    // No reseedResume override: the serving loop keeps no
    // workload-local stochastic state (decode durations are derived
    // from the config, jitter lives in the Context's streams).

  private:
    struct LlmResume final : Resume
    {
        ml::LlmServeState state;
    };

    static ml::LlmConfig
    configFor(const WorkloadParams &params)
    {
        ml::LlmConfig cfg;
        cfg.backend = ml::LlmBackend::HuggingFace;
        cfg.quant = ml::LlmQuant::Bf16;
        cfg.batch = 8;
        // scale stretches the serving session, not the model.
        cfg.gen_len = std::max(
            1, static_cast<int>(static_cast<double>(cfg.gen_len)
                                * params.scale));
        return cfg;
    }
};

} // namespace

void
registerMlApps()
{
    WorkloadRegistry::instance().add(
        std::make_unique<LlmWorkload>());
}

} // namespace hcc::workloads
