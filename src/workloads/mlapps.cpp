/**
 * @file
 * ML apps in the workload registry, written as Sessions (session.hpp)
 * so the fork engine, the snapshot TreeRunner and the serve scheduler
 * all drive them through the same step-cursor API.
 *
 * "llm" mirrors the fig14 microbench's slowest column — Llama-3-8B
 * on HuggingFace with BF16 weights at batch 8 (224 launches per
 * decode step) — so `hccsim run/critical --app llm` reproduces the
 * cell whose CPU-GPU serialization the paper's Sec. VII-B dissects.
 * "cnntrain" is the fig13 training loop (ResNet50/FP32/batch 64):
 * launch-dominated, so like llm nearly all of it is shareable warmup.
 */

#include <algorithm>
#include <memory>

#include "common/log.hpp"
#include "ml/cnn.hpp"
#include "ml/llm.hpp"
#include "workloads/session.hpp"
#include "workloads/workload.hpp"

namespace hcc::workloads {
namespace {

/** The llm trio as a Session. */
class LlmSession final : public Session
{
  public:
    explicit LlmSession(const ml::LlmConfig &config)
        : config_(config)
    {}

    int totalSteps() const override { return config_.gen_len; }
    int cursor() const override { return state_.next_step; }

    void
    open(rt::Context &ctx) override
    {
        state_ = ml::llmServePrefix(ctx, config_, 0);
    }

    void
    advance(rt::Context &ctx, int to_step) override
    {
        ml::llmServeSegment(ctx, config_, state_,
                            std::max(to_step, state_.next_step));
    }

    void
    finish(rt::Context &ctx) override
    {
        result_ = ml::llmServeFinish(ctx, config_, state_);
    }

    std::unique_ptr<Session>
    clone() const override
    {
        return std::make_unique<LlmSession>(*this);
    }

    const ml::LlmResult &result() const { return result_; }

  private:
    ml::LlmConfig config_;
    ml::LlmServeState state_;
    ml::LlmResult result_;
};

class LlmWorkload final : public SessionWorkload
{
  public:
    std::string name() const override { return "llm"; }
    std::string suite() const override { return "ml"; }
    bool supportsUvm() const override { return false; }

    // Decode launches dominate the serving session, so nearly the
    // whole schedule is shareable warmup.
    double defaultForkPoint() const override { return 0.9; }

    std::unique_ptr<Session>
    makeSession(const WorkloadParams &params) const override
    {
        ml::LlmConfig cfg;
        cfg.backend = ml::LlmBackend::HuggingFace;
        cfg.quant = ml::LlmQuant::Bf16;
        cfg.batch = 8;
        // scale stretches the serving session, not the model.
        cfg.gen_len = std::max(
            1, static_cast<int>(static_cast<double>(cfg.gen_len)
                                * params.scale));
        return std::make_unique<LlmSession>(cfg);
    }

    // No reseedResume override: the serving loop keeps no
    // workload-local stochastic state (decode durations are derived
    // from the config, jitter lives in the Context's streams).
};

/** The cnn trio as a Session. */
class CnnSession final : public Session
{
  public:
    explicit CnnSession(const ml::CnnTrainConfig &config)
        : config_(config)
    {}

    int totalSteps() const override { return config_.steps; }
    int cursor() const override { return state_.next_step; }

    void
    open(rt::Context &ctx) override
    {
        state_ = ml::cnnTrainPrefix(ctx, config_, 0);
    }

    void
    advance(rt::Context &ctx, int to_step) override
    {
        ml::cnnTrainSegment(ctx, config_, state_,
                            std::max(to_step, state_.next_step));
    }

    void
    finish(rt::Context &ctx) override
    {
        result_ = ml::cnnTrainFinish(ctx, config_, state_);
    }

    std::unique_ptr<Session>
    clone() const override
    {
        return std::make_unique<CnnSession>(*this);
    }

    const ml::CnnTrainResult &result() const { return result_; }

  private:
    ml::CnnTrainConfig config_;
    ml::CnnTrainState state_;
    ml::CnnTrainResult result_;
};

class CnnTrainWorkload final : public SessionWorkload
{
  public:
    std::string name() const override { return "cnntrain"; }
    std::string suite() const override { return "ml"; }
    bool supportsUvm() const override { return false; }

    // Steady-state steps dominate the schedule after one warm-up
    // step, same shape as llm decode.
    double defaultForkPoint() const override { return 0.9; }

    std::unique_ptr<Session>
    makeSession(const WorkloadParams &params) const override
    {
        ml::CnnTrainConfig cfg;
        cfg.model = ml::CnnModel::ResNet50;
        cfg.batch_size = 64;
        cfg.precision = ml::Precision::Fp32;
        // scale stretches the measured window, not the model.
        cfg.steps = std::max(
            1, static_cast<int>(static_cast<double>(cfg.steps)
                                * params.scale));
        return std::make_unique<CnnSession>(cfg);
    }
};

} // namespace

void
registerMlApps()
{
    WorkloadRegistry::instance().add(
        std::make_unique<LlmWorkload>());
    WorkloadRegistry::instance().add(
        std::make_unique<CnnTrainWorkload>());
}

} // namespace hcc::workloads
