/**
 * @file
 * ML serving apps in the workload registry.
 *
 * "llm" mirrors the fig14 microbench's slowest column — Llama-3-8B
 * on HuggingFace with BF16 weights at batch 8 (224 launches per
 * decode step) — so `hccsim run/critical --app llm` reproduces the
 * cell whose CPU-GPU serialization the paper's Sec. VII-B dissects.
 */

#include <algorithm>
#include <memory>

#include "ml/llm.hpp"
#include "workloads/workload.hpp"

namespace hcc::workloads {
namespace {

class LlmWorkload final : public Workload
{
  public:
    std::string name() const override { return "llm"; }
    std::string suite() const override { return "ml"; }
    bool supportsUvm() const override { return false; }

    void
    run(rt::Context &ctx, const WorkloadParams &params) const override
    {
        ml::LlmConfig cfg;
        cfg.backend = ml::LlmBackend::HuggingFace;
        cfg.quant = ml::LlmQuant::Bf16;
        cfg.batch = 8;
        // scale stretches the serving session, not the model.
        cfg.gen_len = std::max(
            1, static_cast<int>(static_cast<double>(cfg.gen_len)
                                * params.scale));
        ml::serveLlm(ctx, cfg);
    }
};

} // namespace

void
registerMlApps()
{
    WorkloadRegistry::instance().add(
        std::make_unique<LlmWorkload>());
}

} // namespace hcc::workloads
