#include "workloads/spec_file.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace hcc::workloads {

namespace {

/** Split a token into (numeric prefix, unit suffix). */
bool
splitNumberUnit(const std::string &token, double &value,
                std::string &unit)
{
    std::size_t i = 0;
    while (i < token.size()
           && (std::isdigit(static_cast<unsigned char>(token[i]))
               || token[i] == '.' || token[i] == '-')) {
        ++i;
    }
    if (i == 0)
        return false;
    try {
        value = std::stod(token.substr(0, i));
    } catch (...) {
        return false;
    }
    unit = token.substr(i);
    return true;
}

bool
parseBool(const std::string &token, bool &out)
{
    if (token == "true" || token == "1" || token == "yes") {
        out = true;
        return true;
    }
    if (token == "false" || token == "0" || token == "no") {
        out = false;
        return true;
    }
    return false;
}

} // namespace

Bytes
parseSize(const std::string &token)
{
    double value = 0.0;
    std::string unit;
    if (!splitNumberUnit(token, value, unit) || value < 0.0)
        fatal("bad size literal '%s'", token.c_str());
    if (unit.empty() || unit == "B")
        return static_cast<Bytes>(value);
    if (unit == "KiB" || unit == "K")
        return size::kib(value);
    if (unit == "MiB" || unit == "M")
        return size::mib(value);
    if (unit == "GiB" || unit == "G")
        return size::gib(value);
    fatal("unknown size unit '%s' in '%s'", unit.c_str(),
          token.c_str());
}

SimTime
parseDuration(const std::string &token)
{
    double value = 0.0;
    std::string unit;
    if (!splitNumberUnit(token, value, unit) || value < 0.0)
        fatal("bad duration literal '%s'", token.c_str());
    if (unit == "ns")
        return time::ns(value);
    if (unit == "us")
        return time::us(value);
    if (unit == "ms")
        return time::ms(value);
    if (unit == "s")
        return time::sec(value);
    fatal("unknown time unit '%s' in '%s' (use ns/us/ms/s)",
          unit.c_str(), token.c_str());
}

namespace {

/**
 * Throwing parse body: fatal() doubles as the parse-abort mechanism
 * so the deeply nested literal parsers (parseSize, parseDuration)
 * need no error plumbing.  The public surface converts the throw to
 * a typed Status — callers never see the exception.
 */
AppSpec
parseSpecTextImpl(const std::string &text)
{
    AppSpec spec;
    spec.suite = "custom";

    std::istringstream lines(text);
    std::string line;
    int lineno = 0;
    while (std::getline(lines, line)) {
        ++lineno;
        // Strip comments.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);

        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;  // blank line

        auto need = [&](const char *what) {
            std::string v;
            if (!(ls >> v)) {
                fatal("line %d: '%s' needs %s", lineno, key.c_str(),
                      what);
            }
            return v;
        };

        if (key == "name") {
            spec.name = need("a name");
        } else if (key == "suite") {
            spec.suite = need("a suite name");
        } else if (key == "pinned_host") {
            if (!parseBool(need("true/false"), spec.pinned_host))
                fatal("line %d: bad boolean", lineno);
        } else if (key == "input") {
            spec.inputs.push_back(parseSize(need("a size")));
        } else if (key == "output") {
            spec.outputs.push_back(parseSize(need("a size")));
        } else if (key == "d2d") {
            spec.d2d_copies.push_back(parseSize(need("a size")));
        } else if (key == "scratch") {
            spec.scratch = parseSize(need("a size"));
        } else if (key == "uvm_touch") {
            spec.uvm_touch_override = parseSize(need("a size"));
        } else if (key == "uvm_capable") {
            if (!parseBool(need("true/false"), spec.uvm_capable))
                fatal("line %d: bad boolean", lineno);
        } else if (key == "phase") {
            KernelPhase phase;
            phase.kernel = need("a kernel name");
            try {
                phase.launches = std::stoi(need("a launch count"));
            } catch (...) {
                fatal("line %d: bad launch count", lineno);
            }
            if (phase.launches <= 0)
                fatal("line %d: launches must be positive", lineno);
            phase.ket = parseDuration(need("a kernel time"));
            std::string tok;
            if (ls >> tok)
                phase.jitter_sigma = std::stod(tok);
            if (ls >> tok)
                phase.d2h_per_iter = parseSize(tok);
            if (ls >> tok)
                phase.module_bytes = parseSize(tok);
            spec.phases.push_back(std::move(phase));
        } else if (key == "rphase") {
            // rphase <kernel> <launches> <gflops> <mem> [threads]
            KernelPhase phase;
            phase.kernel = need("a kernel name");
            try {
                phase.launches = std::stoi(need("a launch count"));
                phase.gflops = std::stod(need("a GFLOP count"));
            } catch (...) {
                fatal("line %d: bad rphase numbers", lineno);
            }
            if (phase.launches <= 0 || phase.gflops < 0.0)
                fatal("line %d: bad rphase values", lineno);
            phase.mem_bytes = parseSize(need("an HBM byte count"));
            phase.ket = 0;  // roofline-derived
            std::string tok;
            if (ls >> tok) {
                try {
                    phase.threads = std::stoll(tok);
                } catch (...) {
                    fatal("line %d: bad thread count", lineno);
                }
            }
            spec.phases.push_back(std::move(phase));
        } else {
            fatal("line %d: unknown key '%s'", lineno, key.c_str());
        }
    }

    if (spec.name.empty())
        fatal("spec is missing 'name'");
    if (spec.phases.empty())
        fatal("spec '%s' has no phases", spec.name.c_str());
    return spec;
}

} // namespace

Result<AppSpec>
parseSpecText(const std::string &text)
{
    try {
        return parseSpecTextImpl(text);
    } catch (const FatalError &e) {
        return errorf(ErrorCode::ParseError, "%s", e.what());
    }
}

Result<AppSpec>
loadSpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return errorf(ErrorCode::IoError,
                      "cannot open spec file '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return errorf(ErrorCode::IoError,
                      "failed reading spec file '%s'", path.c_str());
    return parseSpecText(buf.str());
}

} // namespace hcc::workloads
