/**
 * @file
 * Polybench-GPU application specs [93].
 *
 * Buffer sizes, launch counts and kernel durations reproduce the
 * *event patterns* the paper reports for each app: 2mm/3mm/atax/
 * bicg/corr have 2-4 launches (KQT-amplification cases, Fig. 7c),
 * 3dconv launches one kernel 254 times in a loop (low KLR, Fig. 10D),
 * 2dconv is a tiny kernel over a large D2H-heavy pinned footprint
 * (the 19.69x copy and 164030x CC-UVM KET outlier), and gramschm is
 * compute-dominated (CC-UVM KET only 1.08x).
 */

#include "common/units.hpp"
#include "workloads/spec.hpp"

namespace hcc::workloads {

namespace {

using hcc::size::kib;
using hcc::size::mib;
using hcc::time::ms;
using hcc::time::us;

} // namespace

void
registerPolybench()
{
    // 2dconv: single tiny kernel, large pinned result written back.
    registerSpec(AppSpec{
        .name = "2dconv",
        .suite = "polybench",
        .pinned_host = true,
        .inputs = {mib(12)},
        .outputs = {mib(156)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"convolution2d_kernel", 1, us(9.0), 0.05, 0,
                    false}},
        .uvm_capable = true,
        .uvm_touch_override = mib(168),
    });

    // 3dconv: one kernel launched 254 times in a loop.
    registerSpec(AppSpec{
        .name = "3dconv",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(32)},
        .outputs = {mib(32)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"convolution3d_kernel", 254, us(45.0), 0.10, 0,
                    false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // 2mm: two GEMM-style kernels.
    registerSpec(AppSpec{
        .name = "2mm",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(16), mib(16), mib(16)},
        .outputs = {mib(16)},
        .d2d_copies = {},
        .scratch = mib(16),
        .phases = {{"mm2_kernel1", 1, ms(1.0), 0.05, 0, false},
                   {"mm2_kernel2", 1, ms(1.0), 0.05, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // 3mm: three GEMM-style kernels.
    registerSpec(AppSpec{
        .name = "3mm",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(16), mib(16), mib(16), mib(16)},
        .outputs = {mib(16)},
        .d2d_copies = {},
        .scratch = mib(32),
        .phases = {{"mm3_kernel1", 1, us(750.0), 0.05, 0, false},
                   {"mm3_kernel2", 1, us(750.0), 0.05, 0, false},
                   {"mm3_kernel3", 1, us(750.0), 0.05, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // atax: matrix-times-vector twice, 2 short launches.
    registerSpec(AppSpec{
        .name = "atax",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(32), kib(256)},
        .outputs = {kib(256)},
        .d2d_copies = {},
        .scratch = kib(256),
        .phases = {{"atax_kernel1", 1, us(160.0), 0.08, 0, false},
                   {"atax_kernel2", 1, us(160.0), 0.08, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // bicg: same structure as atax.
    registerSpec(AppSpec{
        .name = "bicg",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(32), kib(256)},
        .outputs = {kib(512)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"bicg_kernel1", 1, us(160.0), 0.08, 0, false},
                   {"bicg_kernel2", 1, us(160.0), 0.08, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // corr: correlation, 4 launches.
    registerSpec(AppSpec{
        .name = "corr",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(24)},
        .outputs = {mib(24)},
        .d2d_copies = {},
        .scratch = mib(1),
        .phases = {{"corr_mean", 1, us(400.0), 0.06, 0, false},
                   {"corr_std", 1, us(400.0), 0.06, 0, false},
                   {"corr_center", 1, us(400.0), 0.06, 0, false},
                   {"corr_corr", 1, us(400.0), 0.06, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // gemm: single large kernel.
    registerSpec(AppSpec{
        .name = "gemm",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(16), mib(16)},
        .outputs = {mib(16)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"gemm_kernel", 1, ms(2.0), 0.05, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // gramschm: long-running orthogonalization kernels; compute
    // dominates so even CC-UVM barely moves its KET (1.08x).
    registerSpec(AppSpec{
        .name = "gramschm",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(8), mib(8)},
        .outputs = {mib(8)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"gramschmidt_kernel1", 1, ms(870.0), 0.03, 0,
                    false},
                   {"gramschmidt_kernel2", 1, ms(870.0), 0.03, 0,
                    false},
                   {"gramschmidt_kernel3", 1, ms(870.0), 0.03, 0,
                    false}},
        .uvm_capable = true,
        .uvm_touch_override = mib(24),
    });

    // mvt: two matrix-vector kernels.
    registerSpec(AppSpec{
        .name = "mvt",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(32), kib(512)},
        .outputs = {kib(512)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"mvt_kernel1", 1, us(200.0), 0.08, 0, false},
                   {"mvt_kernel2", 1, us(200.0), 0.08, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // syrk: symmetric rank-k update, one kernel.
    registerSpec(AppSpec{
        .name = "syrk",
        .suite = "polybench",
        .pinned_host = false,
        .inputs = {mib(16)},
        .outputs = {mib(16)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"syrk_kernel", 1, ms(1.25), 0.05, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });
}

} // namespace hcc::workloads
