/**
 * @file
 * Text format for user-defined workloads, so downstream users can
 * model their own applications without recompiling:
 *
 * @code
 * # my_app.spec — lines are "key value...", '#' comments
 * name my_app
 * suite custom
 * pinned_host true
 * input 64MiB
 * input 256KiB
 * output 64MiB
 * d2d 8MiB
 * scratch 16MiB
 * uvm_touch 96MiB
 * # phase <kernel> <launches> <ket> [jitter] [d2h_per_iter] [module]
 * phase stencil_k 120 45us 0.1
 * phase reduce_k 120 8us 0.15 4KiB
 * phase final_k 1 2ms 0.05 0 6MiB
 * @endcode
 *
 * Sizes accept B/KiB/MiB/GiB suffixes; times accept ns/us/ms/s.
 */

#ifndef HCC_WORKLOADS_SPEC_FILE_HPP
#define HCC_WORKLOADS_SPEC_FILE_HPP

#include <string>

#include "common/status.hpp"
#include "workloads/spec.hpp"

namespace hcc::workloads {

/**
 * Parse the spec text format.
 * @return the spec, or a ParseError status with a line-numbered
 *         message on any syntax or semantic error.
 */
Result<AppSpec> parseSpecText(const std::string &text);

/** Load and parse a spec file from disk (IoError when unreadable). */
Result<AppSpec> loadSpecFile(const std::string &path);

/** Parse "64MiB"-style size literals. */
Bytes parseSize(const std::string &token);

/** Parse "45us"-style duration literals. */
SimTime parseDuration(const std::string &token);

} // namespace hcc::workloads

#endif // HCC_WORKLOADS_SPEC_FILE_HPP
