/**
 * @file
 * Spec-driven workloads: most benchmark apps are fully described by
 * their buffer sizes, host-memory kind and kernel phases, so they are
 * declared as data (polybench.cpp, rodinia.cpp, graphs.cpp) and
 * executed by one generic driver.
 *
 * The copy-then-execute structure follows Sec. VI-A: allocate, H2D
 * the inputs, run the kernel phases, D2H the outputs, free.  The UVM
 * variant replaces explicit copies with managed allocations whose
 * pages fault over on first kernel touch (Sec. II-B).
 */

#ifndef HCC_WORKLOADS_SPEC_HPP
#define HCC_WORKLOADS_SPEC_HPP

#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace hcc::workloads {

/** One group of launches of the same kernel. */
struct KernelPhase
{
    /** Kernel symbol name. */
    std::string kernel;
    /** Number of back-to-back launches. */
    int launches = 1;
    /** Nominal per-launch KET (idle, non-CC, resident data). */
    SimTime ket = time::us(100);
    /** Lognormal sigma of per-launch KET variation. */
    double jitter_sigma = 0.08;
    /** Per-iteration device-to-host readback (kmeans/bfs style). */
    Bytes d2h_per_iter = 0;
    /** Synchronize the device after the phase. */
    bool sync_after = false;
    /** Kernel module size (0 = calibrated default). */
    Bytes module_bytes = 0;
    /** Roofline work (GFLOP); used when ket == 0. */
    double gflops = 0.0;
    /** Roofline HBM traffic (bytes); used when ket == 0. */
    Bytes mem_bytes = 0;
    /** Threads per launch (occupancy for the roofline model). */
    std::int64_t threads = 256 * 1024;
    /**
     * Per-iteration host-to-device streaming copy, issued before
     * each launch through a reused staging buffer (bigxfer style):
     * moves launches x h2d_per_iter bytes while allocating only one
     * buffer, so transfer time scales independently of the CC
     * pinned-allocation tax.
     */
    Bytes h2d_per_iter = 0;
};

/** Declarative description of one application. */
struct AppSpec
{
    std::string name;
    std::string suite;
    /** Host buffers allocated pinned (cudaMallocHost) vs pageable. */
    bool pinned_host = false;
    /** Input buffer sizes, H2D'd at the start. */
    std::vector<Bytes> inputs;
    /** Output buffer sizes, D2H'd at the end. */
    std::vector<Bytes> outputs;
    /** Device-to-device shuffles issued after the H2D stage. */
    std::vector<Bytes> d2d_copies;
    /** Device-only scratch allocation. */
    Bytes scratch = 0;
    /** Kernel phases, run in order. */
    std::vector<KernelPhase> phases;
    /** Whether a managed-memory variant exists. */
    bool uvm_capable = true;
    /**
     * Managed bytes the kernels touch in UVM mode; 0 means the sum
     * of the input buffers.
     */
    Bytes uvm_touch_override = 0;
    /**
     * fork_after warmup marker: fraction of launches a
     * `--fork-point auto` campaign prefix covers.  The default keeps
     * almost the whole launch schedule shareable; specs whose suffix
     * must retain more work can lower it.
     */
    double fork_after = 0.9;

    Bytes totalInputBytes() const;
    Bytes totalOutputBytes() const;
    int totalLaunches() const;
};

/** Generic driver executing an AppSpec. */
class SpecWorkload : public Workload
{
  public:
    explicit SpecWorkload(AppSpec spec);

    std::string name() const override { return spec_.name; }
    std::string suite() const override { return spec_.suite; }
    bool supportsUvm() const override { return spec_.uvm_capable; }
    void run(rt::Context &ctx, const WorkloadParams &params)
        const override;

    bool forkable() const override { return true; }
    double defaultForkPoint() const override
    {
        return spec_.fork_after;
    }
    std::unique_ptr<Resume>
    runPrefix(rt::Context &ctx, const WorkloadParams &params,
              double fraction) const override;
    void runSuffix(rt::Context &ctx, const WorkloadParams &params,
                   const Resume &resume) const override;
    std::unique_ptr<Resume>
    runSegment(rt::Context &ctx, const WorkloadParams &params,
               const Resume &from, double to_fraction) const override;
    std::unique_ptr<Resume>
    reseedResume(const Resume &resume,
                 const WorkloadParams &params) const override;

    const AppSpec &spec() const { return spec_; }

  private:
    struct SpecResume;

    /** Allocations + input transfers; returns the launch cursor. */
    SpecResume setup(rt::Context &ctx,
                     const WorkloadParams &params) const;
    /** Launches with ordinal in [st.next_launch, to_launch). */
    void runLaunchRange(rt::Context &ctx,
                        const WorkloadParams &params, SpecResume &st,
                        int to_launch) const;
    /** Final sync, output transfers, frees. */
    void teardown(rt::Context &ctx, SpecResume &st) const;

    AppSpec spec_;
};

/** Register a spec-driven workload in the global registry. */
void registerSpec(AppSpec spec);

/** Force registration of all built-in suites (idempotent). */
void ensureSuitesRegistered();

} // namespace hcc::workloads

#endif // HCC_WORKLOADS_SPEC_HPP
