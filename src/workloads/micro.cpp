#include "workloads/micro.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "perfmodel/model.hpp"
#include "trace/analysis.hpp"

namespace hcc::workloads {

namespace {

rt::SystemConfig
microConfig(bool cc, std::uint64_t seed)
{
    rt::SystemConfig cfg;
    cfg.cc = cc;
    cfg.seed = seed;
    return cfg;
}

} // namespace

LaunchIndexResult
runLaunchIndexMicro(bool cc, int n, std::uint64_t seed)
{
    if (n <= 0)
        fatal("launch-index micro needs a positive launch count");
    rt::Context ctx(microConfig(cc, seed));

    gpu::KernelDesc k0{"sleep_k0", {}, time::ms(100.0), 0, 0};
    gpu::KernelDesc k1{"sleep_k1", {}, time::ms(100.0), 0, 0};
    for (int i = 0; i < n; ++i)
        ctx.launchKernel(k0);
    for (int i = 0; i < n; ++i)
        ctx.launchKernel(k1);
    ctx.deviceSynchronize();

    LaunchIndexResult result;
    for (const auto &e :
         ctx.tracer().ofKind(trace::EventKind::Launch)) {
        if (ctx.tracer().labelName(e.label) == "sleep_k0")
            result.k0_klo.push_back(e.duration());
        else
            result.k1_klo.push_back(e.duration());
    }
    return result;
}

std::vector<FusionPoint>
runFusionSweep(bool cc, SimTime total_ket,
               const std::vector<int> &launch_counts,
               std::uint64_t seed)
{
    std::vector<FusionPoint> points;
    points.reserve(launch_counts.size());
    for (int n : launch_counts) {
        if (n <= 0)
            fatal("fusion sweep launch count must be positive");
        rt::Context ctx(microConfig(cc, seed));
        const SimTime start = ctx.now();
        gpu::KernelDesc k{"fused_sleep", {}, total_ket / n, 0, 0};
        for (int i = 0; i < n; ++i)
            ctx.launchKernel(k);
        ctx.deviceSynchronize();

        const auto m = trace::analyze(ctx.tracer());
        FusionPoint p;
        p.launches = n;
        p.sum_klo = m.sumKlo();
        p.sum_lqt = m.sumLqt();
        p.end_to_end = ctx.now() - start;
        points.push_back(p);
    }
    return points;
}

OverlapPoint
runOverlapMicro(bool cc, int streams, Bytes total_bytes, SimTime ket,
                std::uint64_t seed)
{
    if (streams <= 0)
        fatal("overlap micro needs at least one stream");
    rt::Context ctx(microConfig(cc, seed));

    const Bytes per_stream = total_bytes / static_cast<Bytes>(streams);
    std::vector<rt::Stream> ss;
    std::vector<rt::Buffer> host, dev;
    for (int i = 0; i < streams; ++i) {
        ss.push_back(ctx.createStream());
        host.push_back(ctx.mallocHost(per_stream));
        dev.push_back(ctx.mallocDevice(per_stream));
    }

    const SimTime start = ctx.now();
    // Listing 2: per stream, queue the copy then the kernel.
    for (int i = 0; i < streams; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        ctx.memcpyAsync(dev[idx], host[idx], per_stream, ss[idx]);
        gpu::KernelDesc k{"overlap_sleep", {}, ket, 0, 0};
        ctx.launchKernel(k, ss[idx]);
    }
    ctx.deviceSynchronize();
    const SimTime end = ctx.now();

    OverlapPoint p;
    p.streams = streams;
    p.total_bytes = total_bytes;
    p.ket = ket;
    p.end_to_end = end - start;
    p.alpha = perfmodel::decompose(ctx.tracer()).alpha;
    return p;
}

} // namespace hcc::workloads
