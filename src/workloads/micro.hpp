/**
 * @file
 * Microbenchmarks of Sec. VII-A (Fig. 12): nanosleep-style kernels of
 * controlled duration used to study launch-count effects, kernel
 * fusion and transfer/compute overlapping.
 */

#ifndef HCC_WORKLOADS_MICRO_HPP
#define HCC_WORKLOADS_MICRO_HPP

#include <vector>

#include "common/units.hpp"
#include "runtime/context.hpp"

namespace hcc::workloads {

/** Fig. 12a: per-launch KLO for two kernels launched back to back. */
struct LaunchIndexResult
{
    /** KLO of launch i of kernel K0 (first), then K1 (second). */
    std::vector<SimTime> k0_klo;
    std::vector<SimTime> k1_klo;
};

/**
 * Launch K0 @p n times then K1 @p n times (Listing 1 style) and
 * report each launch's KLO.
 */
LaunchIndexResult runLaunchIndexMicro(bool cc, int n,
                                      std::uint64_t seed = 1);

/** One point of the Fig. 12b fusion sweep. */
struct FusionPoint
{
    int launches = 0;
    SimTime sum_klo = 0;
    SimTime sum_lqt = 0;
    SimTime end_to_end = 0;
};

/**
 * Fig. 12b: keep total KET fixed and split it across 1..N launches
 * (fusing kernels reduces the launch count; a fully fused kernel is
 * a single launch).
 */
std::vector<FusionPoint> runFusionSweep(bool cc, SimTime total_ket,
                                        const std::vector<int>
                                            &launch_counts,
                                        std::uint64_t seed = 1);

/** One point of the Fig. 12c overlap study. */
struct OverlapPoint
{
    int streams = 0;
    Bytes total_bytes = 0;
    SimTime ket = 0;
    SimTime end_to_end = 0;
    /**
     * The performance model's alpha: fraction of total memcpy time
     * overlapped with kernel/launch activity.  0 = fully exposed
     * transfers, 1 = fully hidden.
     */
    double alpha = 0.0;
};

/**
 * Fig. 12c (Listing 2): split @p total_bytes across @p streams, each
 * stream doing async H2D then a kernel of @p ket; measure how much
 * of the transfer is hidden.
 */
OverlapPoint runOverlapMicro(bool cc, int streams, Bytes total_bytes,
                             SimTime ket, std::uint64_t seed = 1);

} // namespace hcc::workloads

#endif // HCC_WORKLOADS_MICRO_HPP
