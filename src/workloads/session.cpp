#include "workloads/session.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hcc::workloads {

int
SessionWorkload::stepAtFraction(double fraction, int total_steps)
{
    const double f = std::clamp(fraction, 0.0, 1.0);
    return static_cast<int>(static_cast<double>(total_steps) * f);
}

void
SessionWorkload::run(rt::Context &ctx,
                     const WorkloadParams &params) const
{
    auto session = makeSession(params);
    session->open(ctx);
    session->finish(ctx);
}

std::unique_ptr<Workload::Resume>
SessionWorkload::runPrefix(rt::Context &ctx,
                           const WorkloadParams &params,
                           double fraction) const
{
    auto session = makeSession(params);
    session->open(ctx);
    session->advance(
        ctx, stepAtFraction(fraction, session->totalSteps()));
    auto resume = std::make_unique<SessionResume>();
    resume->session = std::move(session);
    return resume;
}

void
SessionWorkload::runSuffix(rt::Context &ctx,
                           const WorkloadParams &params,
                           const Resume &resume) const
{
    (void)params;
    // Clone: the Resume stays immutable so every cell forked from
    // the same snapshot can replay the same suffix.
    auto session = sessionOf(resume).clone();
    session->finish(ctx);
}

std::unique_ptr<Workload::Resume>
SessionWorkload::runSegment(rt::Context &ctx,
                            const WorkloadParams &params,
                            const Resume &from,
                            double to_fraction) const
{
    (void)params;
    auto session = sessionOf(from).clone();
    session->advance(
        ctx, stepAtFraction(to_fraction, session->totalSteps()));
    auto next = std::make_unique<SessionResume>();
    next->session = std::move(session);
    return next;
}

const Session &
SessionWorkload::sessionOf(const Resume &resume)
{
    const auto *r = dynamic_cast<const SessionResume *>(&resume);
    if (!r || !r->session)
        fatal("session workload got a foreign resume state");
    return *r->session;
}

} // namespace hcc::workloads
