/**
 * @file
 * Transfer-dominated microbench apps for the overlap ablation
 * (docs/OVERLAP.md).
 *
 * "bigxfer" is the fig04a large-size regime distilled into one app:
 * hundreds of MiB of pinned H2D/D2H traffic around a near-zero
 * kernel, so the CC bounce-buffer pipeline *is* the end-to-end time
 * and the `--overlap` tiers separate cleanly.  It is deliberately
 * not part of the paper's evaluation app list ("all") — grids opt in
 * by name.
 */

#include "common/units.hpp"
#include "workloads/spec.hpp"

namespace hcc::workloads {

namespace {

using hcc::size::mib;
using hcc::time::us;

} // namespace

void
registerTransferApps()
{
    // bigxfer: stream 8 x 64 MiB of pinned H2D traffic through one
    // reused buffer around a near-zero kernel, with a small pinned
    // result out.  H2D dominates by construction: the streaming loop
    // keeps the CC pinned-allocation tax off the ablation's
    // denominator, and a large output would pay the per-page D2H
    // scrub no overlap tier can hide.  Base runs at the pinned-PCIe
    // rate; CC runs expose the seal/stage/DMA/open pipeline of every
    // 4 MiB bounce chunk.
    registerSpec(AppSpec{
        .name = "bigxfer",
        .suite = "micro",
        .pinned_host = true,
        .inputs = {mib(64)},
        .outputs = {mib(8)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {KernelPhase{.kernel = "xfer_stream_kernel",
                               .launches = 8,
                               .ket = us(25.0),
                               .jitter_sigma = 0.05,
                               .h2d_per_iter = mib(64)}},
        .uvm_capable = false,
        .uvm_touch_override = 0,
    });
}

} // namespace hcc::workloads
