/**
 * @file
 * Rodinia application specs [92] plus the paper's "cnn" microapp.
 *
 * Event-pattern anchors from the paper: dwt2d makes only 10 launches
 * across several distinct kernels (first-launch KLO spike, 5.31x),
 * sc/streamcluster makes 1611 launches of short kernels (launch-
 * dominated, Fig. 10C), kmeans alternates kernel + readback (the LQT
 * outlier), and cnn is compute-heavy with large D2D shuffles (its
 * copy overhead is the minimum, 1.17x).
 */

#include "common/units.hpp"
#include "workloads/spec.hpp"

namespace hcc::workloads {

namespace {

using hcc::size::kib;
using hcc::size::mib;
using hcc::time::ms;
using hcc::time::us;

} // namespace

void
registerRodinia()
{
    // bfs: level-synchronous traversal with a per-level flag readback.
    registerSpec(AppSpec{
        .name = "bfs",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(36), mib(4)},
        .outputs = {mib(4)},
        .d2d_copies = {},
        .scratch = kib(4),
        .phases = {{"bfs_kernel", 12, us(70.0), 0.45, kib(4), false},
                   {"bfs_kernel2", 12, us(45.0), 0.45, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // dwt2d: 10 launches over several distinct wavelet kernels.
    registerSpec(AppSpec{
        .name = "dwt2d",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(16)},
        .outputs = {mib(16)},
        .d2d_copies = {},
        .scratch = mib(16),
        // Heavily unrolled wavelet kernels ship multi-MiB modules,
        // so every first launch crosses the encrypted upload path —
        // dwt2d is the paper's KLO outlier (5.31x).
        .phases = {{"c_CopySrcToComponents", 1, us(90.0), 0.1, 0,
                    false, mib(9)},
                   {"fdwt53_kernel", 2, us(140.0), 0.1, 0, false,
                    mib(9)},
                   {"rdwt53_kernel", 2, us(140.0), 0.1, 0, false,
                    mib(9)},
                   {"c_CopyCompToDst", 1, us(90.0), 0.1, 0, false,
                    mib(9)},
                   {"fdwt97_kernel", 2, us(150.0), 0.1, 0, false,
                    mib(9)},
                   {"rdwt97_kernel", 2, us(150.0), 0.1, 0, false,
                    mib(9)}},
        .uvm_capable = false,
        .uvm_touch_override = 0,
    });

    // gaussian: elimination sweep, hundreds of tiny kernels.
    registerSpec(AppSpec{
        .name = "gaussian",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(16)},
        .outputs = {mib(16)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"Fan1", 120, us(22.0), 0.15, 0, false},
                   {"Fan2", 120, us(28.0), 0.15, 0, false}},
        .uvm_capable = false,
        .uvm_touch_override = 0,
    });

    // hotspot: iterative stencil.
    registerSpec(AppSpec{
        .name = "hotspot",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(24), mib(24)},
        .outputs = {mib(24)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"calculate_temp", 60, us(180.0), 0.1, 0, false}},
        .uvm_capable = false,
        .uvm_touch_override = 0,
    });

    // kmeans: iterate kernel + centroid readback; swap at the end.
    registerSpec(AppSpec{
        .name = "kmeans",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(48), mib(1)},
        .outputs = {mib(4)},
        .d2d_copies = {},
        .scratch = mib(4),
        .phases = {{"kmeans_kernel_c", 20, us(600.0), 0.12, mib(1),
                    false},
                   {"kmeans_swap", 1, us(100.0), 0.1, 0, false}},
        .uvm_capable = false,
        .uvm_touch_override = 0,
    });

    // nw: Needleman-Wunsch anti-diagonal sweeps.
    registerSpec(AppSpec{
        .name = "nw",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(32), mib(32)},
        .outputs = {mib(32)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"needle_cuda_shared_1", 128, us(30.0), 0.12, 0,
                    false},
                   {"needle_cuda_shared_2", 128, us(30.0), 0.12, 0,
                    false}},
        .uvm_capable = false,
        .uvm_touch_override = 0,
    });

    // pathfinder: dynamic-programming sweep.
    registerSpec(AppSpec{
        .name = "pathfinder",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(40)},
        .outputs = {mib(1)},
        .d2d_copies = {},
        .scratch = mib(1),
        .phases = {{"dynproc_kernel", 100, us(45.0), 0.12, 0, false}},
        .uvm_capable = false,
        .uvm_touch_override = 0,
    });

    // sc (streamcluster): 1611 launches of a short kernel.
    registerSpec(AppSpec{
        .name = "sc",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(24)},
        .outputs = {mib(8)},
        .d2d_copies = {},
        .scratch = mib(8),
        .phases = {{"kernel_compute_cost", 1611, us(8.0), 0.2, 0,
                    false}},
        .uvm_capable = false,
        .uvm_touch_override = 0,
    });

    // srad: speckle-reducing anisotropic diffusion, iterative pairs.
    registerSpec(AppSpec{
        .name = "srad",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(32)},
        .outputs = {mib(32)},
        .d2d_copies = {},
        .scratch = mib(32),
        .phases = {{"srad_cuda_1", 50, us(140.0), 0.1, 0, false},
                   {"srad_cuda_2", 50, us(140.0), 0.1, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // lud: LU decomposition — shrinking kernels over diagonals.
    registerSpec(AppSpec{
        .name = "lud",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(32)},
        .outputs = {mib(32)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"lud_diagonal", 64, us(18.0), 0.15, 0, false},
                   {"lud_perimeter", 64, us(35.0), 0.15, 0, false},
                   {"lud_internal", 64, us(55.0), 0.2, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // backprop: two layers forward + backward, few launches.
    registerSpec(AppSpec{
        .name = "backprop",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(36), mib(2)},
        .outputs = {mib(2)},
        .d2d_copies = {},
        .scratch = mib(4),
        .phases = {{"bpnn_layerforward", 2, us(900.0), 0.06, 0,
                    false},
                   {"bpnn_adjust_weights", 2, us(900.0), 0.06, 0,
                    false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // lavaMD: particle interactions, one heavy kernel.
    registerSpec(AppSpec{
        .name = "lavamd",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {mib(20), mib(20)},
        .outputs = {mib(20)},
        .d2d_copies = {},
        .scratch = 0,
        .phases = {{"kernel_gpu_cuda", 1, ms(14.0), 0.04, 0, false}},
        .uvm_capable = true,
        .uvm_touch_override = 0,
    });

    // cnn: inference microapp — heavy compute, large D2D shuffles,
    // tiny host<->device traffic (its copy ratio is the 1.17x floor).
    registerSpec(AppSpec{
        .name = "cnn",
        .suite = "rodinia",
        .pinned_host = false,
        .inputs = {kib(64)},
        .outputs = {kib(64)},
        .d2d_copies = {mib(341), mib(341), mib(341)},
        .scratch = mib(128),
        .phases = {{"conv_forward", 60, ms(2.2), 0.08, 0, false},
                   {"fc_forward", 30, us(800.0), 0.08, 0, false}},
        .uvm_capable = false,
        .uvm_touch_override = 0,
    });
}

} // namespace hcc::workloads
